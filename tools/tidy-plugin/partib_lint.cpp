// partib_lint — standalone implementation of the five partib-* checks.
//
// The authoritative, AST-accurate implementation of these checks is the
// clang-tidy plugin next to this file (PartibTidyModule.cpp).  That plugin
// needs the clang-tidy development headers, which not every build host has
// (the CI lint job does; a bare container often does not).  This tool
// re-implements the same checks over a hand-rolled C++ lexer so that
//
//   * the checks run (and gate CI) on any host with a C++20 compiler, and
//   * the FileCheck fixtures under test/ exercise one diagnostic grammar
//     shared by both implementations:
//
//       <file>:<line>:<col>: warning: <message> [<check-name>]
//
// Suppression follows clang-tidy's comment conventions: NOLINT /
// NOLINT(check,...) on the offending line, NOLINTNEXTLINE(...) on the
// line before it, and NOLINTBEGIN(...) / NOLINTEND(...) ranges.
//
// Checks:
//   partib-no-alloc-in-hot-path   heap allocation inside a PARTIB_HOT
//                                 function body (new, malloc family,
//                                 make_unique/make_shared)
//   partib-no-wall-clock-in-sim   wall-clock / libc randomness in the
//                                 deterministic simulation layers
//                                 (src/sim, src/fabric, src/verbs,
//                                 src/part) — time must come from the
//                                 DES engine, randomness from seeded RNGs
//   partib-diag-rule-registered   every rule id named by check::report()
//                                 or a Diagnostic::rule assignment must
//                                 exist in src/check/rules.inc
//   partib-mutex-wrapper-only     raw std::mutex-family types outside
//                                 src/common/ — use common::Mutex, whose
//                                 annotations and observer hooks the
//                                 concurrency auditors depend on
//   partib-no-raw-atomic-spin     atomic flag reads spun on in a loop
//                                 condition inside src/mpi or src/part —
//                                 producer threads hand work to the
//                                 bridge via the shard API
//                                 (runtime/sharded_engine.hpp), they do
//                                 not busy-wait on ad-hoc atomics
//
// Usage:
//   partib_lint [--rules=<path/to/rules.inc>] [--as-path=<virtual path>]
//               <file>...
//
// --as-path substitutes a virtual path for the (single) input file, so a
// fixture under test/ can pretend to live in src/sim/ and trigger the
// path-scoped checks.  Exit status: 0 = clean, 1 = findings, 2 = usage or
// I/O error.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace {

// ---------------------------------------------------------------------------
// Check names
// ---------------------------------------------------------------------------

constexpr const char* kAllocCheck = "partib-no-alloc-in-hot-path";
constexpr const char* kWallClockCheck = "partib-no-wall-clock-in-sim";
constexpr const char* kDiagRuleCheck = "partib-diag-rule-registered";
constexpr const char* kMutexCheck = "partib-mutex-wrapper-only";
constexpr const char* kAtomicSpinCheck = "partib-no-raw-atomic-spin";

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

enum class Tok { kIdent, kString, kPunct };

struct Token {
  Tok kind;
  std::string text;  // identifier spelling, string *contents*, or punct char
  int line;
  int col;
};

/// One NOLINT-style suppression region (inclusive line range).  Line-level
/// suppressions are ranges of length one.
struct Suppression {
  int first_line;
  int last_line;             // INT_MAX while a NOLINTBEGIN is unclosed
  std::set<std::string> checks;  // empty set = all checks
};

struct LexedFile {
  std::vector<Token> tokens;
  std::vector<Suppression> suppressions;
};

bool ident_start(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}
bool ident_char(char c) { return ident_start(c) || (c >= '0' && c <= '9'); }

/// Parse the body of a NOLINT-family comment directive into a suppression
/// set.  `rest` starts right after the directive keyword.
std::set<std::string> parse_check_list(std::string_view rest) {
  std::set<std::string> checks;
  if (rest.empty() || rest.front() != '(') return checks;  // bare = all
  const std::size_t close = rest.find(')');
  std::string_view list = rest.substr(1, close == std::string_view::npos
                                             ? std::string_view::npos
                                             : close - 1);
  std::size_t pos = 0;
  while (pos < list.size()) {
    std::size_t comma = list.find(',', pos);
    if (comma == std::string_view::npos) comma = list.size();
    std::string_view item = list.substr(pos, comma - pos);
    while (!item.empty() && item.front() == ' ') item.remove_prefix(1);
    while (!item.empty() && item.back() == ' ') item.remove_suffix(1);
    if (!item.empty()) checks.emplace(item);
    pos = comma + 1;
  }
  if (checks.empty()) checks.emplace("*");  // "NOLINT()" — treat as all
  return checks;
}

/// Scan a comment's text for NOLINT directives and record suppressions.
void scan_comment(std::string_view text, int line, LexedFile* out) {
  for (std::size_t i = 0; i + 6 <= text.size(); ++i) {
    if (text.compare(i, 6, "NOLINT") != 0) continue;
    std::string_view rest = text.substr(i + 6);
    if (rest.rfind("NEXTLINE", 0) == 0) {
      out->suppressions.push_back(
          {line + 1, line + 1, parse_check_list(rest.substr(8))});
      i += 13;
    } else if (rest.rfind("BEGIN", 0) == 0) {
      out->suppressions.push_back(
          {line, 0x7fffffff, parse_check_list(rest.substr(5))});
      i += 10;
    } else if (rest.rfind("END", 0) == 0) {
      const std::set<std::string> checks = parse_check_list(rest.substr(3));
      // Close the innermost still-open BEGIN with the same check list.
      for (auto it = out->suppressions.rbegin();
           it != out->suppressions.rend(); ++it) {
        if (it->last_line == 0x7fffffff && it->checks == checks) {
          it->last_line = line;
          break;
        }
      }
      i += 8;
    } else {
      out->suppressions.push_back({line, line, parse_check_list(rest)});
      i += 5;
    }
  }
}

LexedFile lex(const std::string& src) {
  LexedFile out;
  int line = 1;
  int col = 1;
  std::size_t i = 0;
  const std::size_t n = src.size();

  auto advance = [&](std::size_t count) {
    for (std::size_t k = 0; k < count && i < n; ++k, ++i) {
      if (src[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
  };

  while (i < n) {
    const char c = src[i];
    // Line comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      std::size_t end = src.find('\n', i);
      if (end == std::string::npos) end = n;
      scan_comment(std::string_view(src).substr(i, end - i), line, &out);
      advance(end - i);
      continue;
    }
    // Block comment (may span lines; directives indexed by opening line).
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      std::size_t end = src.find("*/", i + 2);
      end = end == std::string::npos ? n : end + 2;
      scan_comment(std::string_view(src).substr(i, end - i), line, &out);
      advance(end - i);
      continue;
    }
    // Raw string literal.
    if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
      std::size_t p = i + 2;
      while (p < n && src[p] != '(') ++p;
      const std::string delim =
          ")" + src.substr(i + 2, p - (i + 2)) + "\"";
      std::size_t end = src.find(delim, p);
      end = end == std::string::npos ? n : end + delim.size();
      out.tokens.push_back({Tok::kString,
                            src.substr(p + 1, end - delim.size() - (p + 1)),
                            line, col});
      advance(end - i);
      continue;
    }
    // String / char literal.
    if (c == '"' || c == '\'') {
      const int tline = line;
      const int tcol = col;
      std::size_t p = i + 1;
      while (p < n && src[p] != c) {
        if (src[p] == '\\' && p + 1 < n) ++p;
        ++p;
      }
      if (c == '"') {
        out.tokens.push_back(
            {Tok::kString, src.substr(i + 1, p - i - 1), tline, tcol});
      }
      advance(p + 1 - i);
      continue;
    }
    // Identifier / keyword.
    if (ident_start(c)) {
      std::size_t p = i + 1;
      while (p < n && ident_char(src[p])) ++p;
      out.tokens.push_back(
          {Tok::kIdent, src.substr(i, p - i), line, col});
      advance(p - i);
      continue;
    }
    // Number (skipped; consume so "0x2e" dots don't become punct).
    if (c >= '0' && c <= '9') {
      std::size_t p = i + 1;
      while (p < n && (ident_char(src[p]) || src[p] == '.' ||
                       ((src[p] == '+' || src[p] == '-') &&
                        (src[p - 1] == 'e' || src[p - 1] == 'E' ||
                         src[p - 1] == 'p' || src[p - 1] == 'P')))) {
        ++p;
      }
      advance(p - i);
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
        c == '\v') {
      advance(1);
      continue;
    }
    out.tokens.push_back({Tok::kPunct, std::string(1, c), line, col});
    advance(1);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Findings
// ---------------------------------------------------------------------------

struct Finding {
  int line;
  int col;
  std::string message;
  const char* check;
};

class Linter {
 public:
  Linter(std::string path, const std::set<std::string>* rules)
      : path_(std::move(path)), rules_(rules) {}

  std::vector<Finding> run(const LexedFile& file) {
    findings_.clear();
    check_alloc_in_hot_path(file.tokens);
    if (in_sim_layer()) check_wall_clock(file.tokens);
    if (rules_ != nullptr) check_diag_rules(file.tokens);
    if (!in_common()) check_raw_mutex(file.tokens);
    if (in_mpi_or_part()) check_atomic_spin(file.tokens);

    std::vector<Finding> kept;
    for (const Finding& f : findings_) {
      if (!suppressed(file.suppressions, f)) kept.push_back(f);
    }
    std::sort(kept.begin(), kept.end(), [](const Finding& a,
                                           const Finding& b) {
      return a.line != b.line ? a.line < b.line : a.col < b.col;
    });
    return kept;
  }

 private:
  bool path_has_dir(std::string_view dir) const {
    const std::string needle = "/" + std::string(dir) + "/";
    return path_.find(needle) != std::string::npos ||
           path_.rfind(std::string(dir) + "/", 0) == 0;
  }

  bool in_sim_layer() const {
    // src/backend is in scope even though shm/ibv are real-time: they must
    // read the clock through common::mono_now() (the audited exemption in
    // common/clock.hpp), never a raw chrono/libc source — and the DES
    // backend shares the directory, where a leak would corrupt replay.
    return path_has_dir("src/sim") || path_has_dir("src/fabric") ||
           path_has_dir("src/verbs") || path_has_dir("src/part") ||
           path_has_dir("src/backend");
  }

  bool in_common() const { return path_has_dir("src/common"); }

  bool in_mpi_or_part() const {
    return path_has_dir("src/mpi") || path_has_dir("src/part");
  }

  static bool suppressed(const std::vector<Suppression>& supp,
                         const Finding& f) {
    for (const Suppression& s : supp) {
      if (f.line < s.first_line || f.line > s.last_line) continue;
      if (s.checks.empty() || s.checks.count("*") != 0 ||
          s.checks.count(f.check) != 0) {
        return true;
      }
    }
    return false;
  }

  void add(const Token& at, std::string message, const char* check) {
    findings_.push_back({at.line, at.col, std::move(message), check});
  }

  // --- partib-no-alloc-in-hot-path ---------------------------------------
  //
  // A PARTIB_HOT marker introduces a hot function; its body is the first
  // top-level brace block before any ';' at paren depth zero (a ';' first
  // means the marker sat on a bodiless declaration).

  void check_alloc_in_hot_path(const std::vector<Token>& toks) {
    static const std::set<std::string> kAllocCalls = {
        "malloc",      "calloc",      "realloc",     "aligned_alloc",
        "posix_memalign", "strdup",   "make_unique", "make_shared"};
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (toks[i].kind != Tok::kIdent || toks[i].text != "PARTIB_HOT") {
        continue;
      }
      // Skip the macro's own definition ('#define PARTIB_HOT ...' in
      // common/thread_annotations.hpp) — it marks nothing hot.
      if (i >= 2 && toks[i - 1].kind == Tok::kIdent &&
          toks[i - 1].text == "define" && toks[i - 2].kind == Tok::kPunct &&
          toks[i - 2].text == "#") {
        continue;
      }
      // Find the body start.
      std::size_t j = i + 1;
      int paren = 0;
      while (j < toks.size()) {
        const Token& t = toks[j];
        if (t.kind == Tok::kPunct) {
          if (t.text == "(") ++paren;
          if (t.text == ")") --paren;
          if (t.text == ";" && paren == 0) break;  // declaration only
          if (t.text == "{" && paren == 0) break;  // body
        }
        ++j;
      }
      if (j >= toks.size() || toks[j].text != "{") continue;
      // Walk the body.
      int depth = 0;
      for (; j < toks.size(); ++j) {
        const Token& t = toks[j];
        if (t.kind == Tok::kPunct) {
          if (t.text == "{") ++depth;
          if (t.text == "}" && --depth == 0) break;
          continue;
        }
        if (t.kind != Tok::kIdent) continue;
        if (t.text == "new") {
          add(t, "heap allocation ('new') inside a PARTIB_HOT function",
              kAllocCheck);
          continue;
        }
        if (kAllocCalls.count(t.text) != 0 && j + 1 < toks.size() &&
            toks[j + 1].kind == Tok::kPunct &&
            (toks[j + 1].text == "(" || toks[j + 1].text == "<")) {
          add(t,
              "heap allocation ('" + t.text +
                  "') inside a PARTIB_HOT function",
              kAllocCheck);
        }
      }
      i = j;
    }
  }

  // --- partib-no-wall-clock-in-sim ----------------------------------------

  void check_wall_clock(const std::vector<Token>& toks) {
    static const std::set<std::string> kBannedCalls = {
        "time", "rand", "srand", "clock", "gettimeofday", "drand48",
        "random"};
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != Tok::kIdent) continue;
      if (t.text == "system_clock" || t.text == "steady_clock" ||
          t.text == "high_resolution_clock") {
        add(t,
            "wall-clock source 'std::chrono::" + t.text +
                "' in the deterministic simulation layer; time comes from "
                "sim::Engine::now()",
            kWallClockCheck);
        continue;
      }
      if (kBannedCalls.count(t.text) == 0) continue;
      if (i + 1 >= toks.size() || toks[i + 1].kind != Tok::kPunct ||
          toks[i + 1].text != "(") {
        continue;  // not a call
      }
      // Reject member calls (x.time(), x->time()) and class-qualified
      // calls other than std:: (Engine::time() is somebody's method).
      if (i > 0 && toks[i - 1].kind == Tok::kPunct) {
        const std::string& p = toks[i - 1].text;
        if (p == "." || p == ">") continue;  // '.' or '->' (lexed .., > )
        if (p == ":") {
          const bool std_qualified =
              i >= 3 && toks[i - 2].kind == Tok::kPunct &&
              toks[i - 2].text == ":" && toks[i - 3].kind == Tok::kIdent &&
              toks[i - 3].text == "std";
          if (!std_qualified) continue;
        }
      }
      // Reject declarations: `Time time(...)` has an identifier (the
      // type) immediately before — but statement keywords are not types.
      static const std::set<std::string> kStmtKeywords = {
          "return", "co_return", "co_yield", "else", "do"};
      if (i > 0 && toks[i - 1].kind == Tok::kIdent &&
          kStmtKeywords.count(toks[i - 1].text) == 0) {
        continue;
      }
      add(t,
          "non-deterministic libc call '" + t.text +
              "()' in the simulation layer; use the DES clock or a seeded "
              "RNG",
          kWallClockCheck);
    }
  }

  // --- partib-diag-rule-registered ----------------------------------------

  void check_diag_rules(const std::vector<Token>& toks) {
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != Tok::kIdent) continue;
      // check::report("rule.id", ...)
      if (t.text == "report" && i + 2 < toks.size() &&
          toks[i + 1].kind == Tok::kPunct && toks[i + 1].text == "(" &&
          toks[i + 2].kind == Tok::kString) {
        validate_rule(toks[i + 2]);
      }
      // Diagnostic::rule member assignment / initialisation.
      if (t.text == "rule" && i + 2 < toks.size() &&
          toks[i + 1].kind == Tok::kPunct && toks[i + 1].text == "=" &&
          toks[i + 2].kind == Tok::kString) {
        validate_rule(toks[i + 2]);
      }
    }
  }

  void validate_rule(const Token& lit) {
    if (rules_->count(lit.text) != 0) return;
    add(lit,
        "diagnostic names rule id '" + lit.text +
            "' which is not registered in src/check/rules.inc",
        kDiagRuleCheck);
  }

  // --- partib-mutex-wrapper-only ------------------------------------------

  void check_raw_mutex(const std::vector<Token>& toks) {
    static const std::set<std::string> kRawTypes = {
        "mutex",        "recursive_mutex",     "timed_mutex",
        "shared_mutex", "recursive_timed_mutex", "shared_timed_mutex",
        "condition_variable", "condition_variable_any"};
    if (toks.size() < 4) return;
    for (std::size_t i = 0; i + 3 < toks.size(); ++i) {
      if (toks[i].kind != Tok::kIdent || toks[i].text != "std") continue;
      if (toks[i + 1].kind != Tok::kPunct || toks[i + 1].text != ":") {
        continue;
      }
      if (toks[i + 2].kind != Tok::kPunct || toks[i + 2].text != ":") {
        continue;
      }
      if (toks[i + 3].kind == Tok::kIdent &&
          kRawTypes.count(toks[i + 3].text) != 0) {
        add(toks[i],
            "raw 'std::" + toks[i + 3].text +
                "' outside src/common/; use common::Mutex / common::CondVar "
                "(common/mutex.hpp) so thread-safety annotations and the "
                "lock-order auditor see it",
            kMutexCheck);
      }
    }
  }

  // --- partib-no-raw-atomic-spin ------------------------------------------
  //
  // A producer thread that busy-waits on a std::atomic (or atomic_flag)
  // inside the MPI / partitioned layers is bypassing the claim/hand-off
  // contract: exactly-once ownership comes from one fetch_or on the claim
  // bitmap and completion flows back through the bridge's drain + arrival
  // mirror (runtime/sharded_engine.hpp), never from polling shared flags.
  // The lexer is type-blind, so this flags *any* member call to the
  // atomic wait-idiom methods inside a while/for/do-while condition.
  // That blindness is deliberate: `test` is also the MPI-style request
  // test, and spinning on that inside the library is just as wrong — the
  // single-threaded DES engine can make no progress while the caller
  // spins.  A justified exception carries a NOLINT with the reason.

  void check_atomic_spin(const std::vector<Token>& toks) {
    static const std::set<std::string> kSpinCalls = {
        "load",         "exchange",
        "test",         "test_and_set",
        "compare_exchange_weak", "compare_exchange_strong"};
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      if (toks[i].kind != Tok::kIdent ||
          (toks[i].text != "while" && toks[i].text != "for")) {
        continue;
      }
      if (toks[i + 1].kind != Tok::kPunct || toks[i + 1].text != "(") {
        continue;
      }
      // Walk the balanced loop header (for a `for`, all three clauses:
      // re-reading an atomic each iteration is the same polling pattern
      // whichever clause it sits in).  `do { } while (cond);` lands here
      // too — the trailing `while (` scans the same way.
      int depth = 0;
      for (std::size_t j = i + 1; j < toks.size(); ++j) {
        const Token& t = toks[j];
        if (t.kind == Tok::kPunct) {
          if (t.text == "(") ++depth;
          if (t.text == ")" && --depth == 0) {
            i = j;
            break;
          }
          continue;
        }
        if (t.kind != Tok::kIdent || kSpinCalls.count(t.text) == 0) continue;
        if (j == 0 || j + 1 >= toks.size()) continue;
        // Member call only: preceded by '.' or '->', followed by '('.
        const Token& prev = toks[j - 1];
        const Token& next = toks[j + 1];
        const bool member =
            prev.kind == Tok::kPunct &&
            (prev.text == "." ||
             (prev.text == ">" && j >= 2 &&
              toks[j - 2].kind == Tok::kPunct && toks[j - 2].text == "-"));
        if (!member) continue;
        if (next.kind != Tok::kPunct || next.text != "(") continue;
        add(t,
            "raw atomic '" + t.text +
                "()' spin in a loop condition; producers hand off through "
                "the shard API (runtime::ShardedProgressEngine / "
                "ProducerHandle) instead of spinning",
            kAtomicSpinCheck);
      }
    }
  }

  std::string path_;
  const std::set<std::string>* rules_;
  std::vector<Finding> findings_;
};

// ---------------------------------------------------------------------------
// rules.inc parsing
// ---------------------------------------------------------------------------

std::optional<std::set<std::string>> load_rules(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::stringstream ss;
  ss << in.rdbuf();
  const LexedFile lexed = lex(ss.str());
  std::set<std::string> rules;
  const auto& toks = lexed.tokens;
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if (toks[i].kind == Tok::kIdent && toks[i].text == "PARTIB_RULE" &&
        toks[i + 1].kind == Tok::kPunct && toks[i + 1].text == "(" &&
        toks[i + 2].kind == Tok::kString) {
      rules.insert(toks[i + 2].text);
    }
  }
  return rules;
}

}  // namespace

int main(int argc, char** argv) {
  std::optional<std::set<std::string>> rules;
  std::string as_path;
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--rules=", 0) == 0) {
      rules = load_rules(std::string(arg.substr(8)));
      if (!rules) {
        std::fprintf(stderr, "partib_lint: cannot read rules file '%s'\n",
                     std::string(arg.substr(8)).c_str());
        return 2;
      }
    } else if (arg.rfind("--as-path=", 0) == 0) {
      as_path = std::string(arg.substr(10));
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: partib_lint [--rules=<rules.inc>] [--as-path=<virtual "
          "path>] <file>...\n");
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "partib_lint: unknown flag '%s'\n", argv[i]);
      return 2;
    } else {
      files.emplace_back(arg);
    }
  }
  if (files.empty()) {
    std::fprintf(stderr, "partib_lint: no input files\n");
    return 2;
  }
  if (!as_path.empty() && files.size() != 1) {
    std::fprintf(stderr,
                 "partib_lint: --as-path requires exactly one input file\n");
    return 2;
  }

  bool any = false;
  for (const std::string& file : files) {
    std::ifstream in(file);
    if (!in) {
      std::fprintf(stderr, "partib_lint: cannot read '%s'\n", file.c_str());
      return 2;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    const LexedFile lexed = lex(ss.str());
    const std::string display = as_path.empty() ? file : as_path;
    Linter linter(display, rules ? &*rules : nullptr);
    for (const Finding& f : linter.run(lexed)) {
      std::printf("%s:%d:%d: warning: %s [%s]\n", display.c_str(), f.line,
                  f.col, f.message.c_str(), f.check);
      any = true;
    }
  }
  return any ? 1 : 0;
}
