// Fixture: partib-mutex-wrapper-only stays silent on the wrapper types
// and on justified, suppressed raw-mutex uses.  Linted as
// src/runner/mutex_silent.cpp.

// SILENT-NOT: warning:

struct Pool {
  common::Mutex state_mutex{"runner.pool_state"};
  common::CondVar work_available;
};

void locked_section(Pool& pool) {
  common::MutexLock lock(pool.state_mutex);
}

// A deliberately-raw mutex (e.g. inside an auditor that must not audit
// itself) carries an inline justification and a suppression:
// NOLINTNEXTLINE(partib-mutex-wrapper-only)
std::mutex g_shadow_mu;

// NOLINTBEGIN(partib-mutex-wrapper-only)
std::mutex g_region_a;
std::mutex g_region_b;
// NOLINTEND(partib-mutex-wrapper-only)
