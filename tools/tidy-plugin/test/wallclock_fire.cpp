// Fixture: partib-no-wall-clock-in-sim fires on wall-clock and libc
// randomness inside the simulation layers.  Linted as
// src/sim/wallclock_fire.cpp.

// CHECK: src/sim/wallclock_fire.cpp:[[@LINE+2]]:23: warning: wall-clock source 'std::chrono::system_clock' in the deterministic simulation layer; time comes from sim::Engine::now() [partib-no-wall-clock-in-sim]
long wall_now() {
  return std::chrono::system_clock::now().time_since_epoch().count();
}

// CHECK: src/sim/wallclock_fire.cpp:[[@LINE+2]]:10: warning: non-deterministic libc call 'rand()' in the simulation layer; use the DES clock or a seeded RNG [partib-no-wall-clock-in-sim]
int jitter() {
  return rand() % 7;
}

// CHECK: src/sim/wallclock_fire.cpp:[[@LINE+2]]:10: warning: non-deterministic libc call 'time()' in the simulation layer; use the DES clock or a seeded RNG [partib-no-wall-clock-in-sim]
long stamp() {
  return time(nullptr);
}

// CHECK: src/sim/wallclock_fire.cpp:[[@LINE+2]]:3: warning: non-deterministic libc call 'srand()' in the simulation layer; use the DES clock or a seeded RNG [partib-no-wall-clock-in-sim]
void reseed(unsigned s) {
  srand(s);
}
