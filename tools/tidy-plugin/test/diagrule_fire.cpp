// Fixture: partib-diag-rule-registered fires when a diagnostic names a
// rule id absent from src/check/rules.inc.  Linted as
// src/check/diagrule_fire.cpp with --rules pointing at the real registry.

// CHECK: src/check/diagrule_fire.cpp:[[@LINE+2]]:10: warning: diagnostic names rule id 'part.no_such_rule' which is not registered in src/check/rules.inc [partib-diag-rule-registered]
void bad_report(int rank) {
  report("part.no_such_rule", "psend", rank, "oops");
}

// CHECK: src/check/diagrule_fire.cpp:[[@LINE+3]]:12: warning: diagnostic names rule id 'qp.transiton' which is not registered in src/check/rules.inc [partib-diag-rule-registered]
void bad_assignment() {
  Diagnostic d;
  d.rule = "qp.transiton";  // typo'd id
  diag_emit(d);
}
