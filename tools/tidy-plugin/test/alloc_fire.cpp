// Fixture: partib-no-alloc-in-hot-path fires on heap allocation inside a
// PARTIB_HOT function body.  Linted as src/part/alloc_fire.cpp; never
// compiled, so the declarations are free-standing.

// Cold function: allocation is fine, no marker, no finding.
int* cold(int n) { return new int(n); }

// CHECK: src/part/alloc_fire.cpp:[[@LINE+3]]:12: warning: heap allocation ('new') inside a PARTIB_HOT function [partib-no-alloc-in-hot-path]
// CHECK: src/part/alloc_fire.cpp:[[@LINE+4]]:17: warning: heap allocation ('make_unique') inside a PARTIB_HOT function [partib-no-alloc-in-hot-path]
PARTIB_HOT int hot_path(int n) {
  int* p = new int(n);
  int result = *p;
  auto q = std::make_unique<int>(n);
  delete p;
  return result + *q;
}

// CHECK: src/part/alloc_fire.cpp:[[@LINE+2]]:29: warning: heap allocation ('malloc') inside a PARTIB_HOT function [partib-no-alloc-in-hot-path]
PARTIB_HOT void* hot_malloc(unsigned long n) {
  return static_cast<char*>(malloc(n));
}
