# Driver for the partib_lint FileCheck fixtures (lit-style, without lit).
#
#   cmake -DLINT=<partib_lint> -DFILECHECK=<FileCheck> -DFIXTURE=<file>
#         -DAS_PATH=<virtual path> -DRULES=<rules.inc> -DMODE=<fire|silent>
#         -DOUT=<scratch file> -P run_lint_test.cmake
#
# fire:   lint must exit 1 and its output must satisfy the fixture's
#         CHECK lines (FileCheck uses the fixture itself as the check file).
# silent: lint must exit 0 with empty output; FileCheck additionally runs
#         the fixture's SILENT-NOT lines over the (empty) output.

foreach(var LINT FILECHECK FIXTURE AS_PATH RULES MODE OUT)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "run_lint_test.cmake: missing -D${var}=")
  endif()
endforeach()

execute_process(
  COMMAND ${LINT} --rules=${RULES} --as-path=${AS_PATH} ${FIXTURE}
  OUTPUT_VARIABLE lint_out
  ERROR_VARIABLE lint_err
  RESULT_VARIABLE lint_res)
file(WRITE ${OUT} "${lint_out}")

if(lint_res GREATER 1)
  message(FATAL_ERROR "partib_lint usage/I-O error (${lint_res}): ${lint_err}")
endif()

if(MODE STREQUAL "fire")
  if(lint_res EQUAL 0)
    message(FATAL_ERROR "expected findings on ${FIXTURE}, got none")
  endif()
  execute_process(
    COMMAND ${FILECHECK} ${FIXTURE} --input-file=${OUT}
    ERROR_VARIABLE fc_err
    RESULT_VARIABLE fc_res)
  if(NOT fc_res EQUAL 0)
    message(FATAL_ERROR
            "FileCheck mismatch for ${FIXTURE}:\n${fc_err}\n"
            "lint output was:\n${lint_out}")
  endif()
elseif(MODE STREQUAL "silent")
  if(NOT lint_res EQUAL 0)
    message(FATAL_ERROR
            "expected silence on ${FIXTURE}, got findings:\n${lint_out}")
  endif()
  execute_process(
    COMMAND ${FILECHECK} ${FIXTURE} --input-file=${OUT}
            --check-prefix=SILENT --allow-empty
    ERROR_VARIABLE fc_err
    RESULT_VARIABLE fc_res)
  if(NOT fc_res EQUAL 0)
    message(FATAL_ERROR "FileCheck mismatch for ${FIXTURE}:\n${fc_err}")
  endif()
else()
  message(FATAL_ERROR "MODE must be fire or silent, got '${MODE}'")
endif()
