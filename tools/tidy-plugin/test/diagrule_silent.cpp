// Fixture: partib-diag-rule-registered stays silent on registered ids and
// on rule ids that are not string literals (runtime-extended rules are a
// supported path; the static check only covers what it can see).  Linted
// as src/check/diagrule_silent.cpp.

// SILENT-NOT: warning:

void good_report(int rank) {
  report("qp.transition", "qp0", rank, "detail");
  report("check.lock_order", "runner.pool_state", rank, "detail");
}

void good_assignment() {
  Diagnostic d;
  d.rule = "assert";
  diag_emit(d);
}

void dynamic_rule(const char* rule, int rank) {
  report(rule, "obj", rank, "registered at runtime");  // not checkable
}
