// Fixture: partib-mutex-wrapper-only fires on raw std synchronisation
// types outside src/common/.  Linted as src/runner/mutex_fire.cpp.

// CHECK: src/runner/mutex_fire.cpp:[[@LINE+2]]:3: warning: raw 'std::mutex' outside src/common/; use common::Mutex / common::CondVar (common/mutex.hpp) so thread-safety annotations and the lock-order auditor see it [partib-mutex-wrapper-only]
struct Queue {
  std::mutex mu;
  int depth = 0;
};

// CHECK: src/runner/mutex_fire.cpp:[[@LINE+1]]:1: warning: raw 'std::condition_variable' outside src/common/; use common::Mutex / common::CondVar (common/mutex.hpp) so thread-safety annotations and the lock-order auditor see it [partib-mutex-wrapper-only]
std::condition_variable g_cv;

// CHECK: src/runner/mutex_fire.cpp:[[@LINE+1]]:1: warning: raw 'std::shared_mutex' outside src/common/; use common::Mutex / common::CondVar (common/mutex.hpp) so thread-safety annotations and the lock-order auditor see it [partib-mutex-wrapper-only]
std::shared_mutex g_table_mu;
