// Fixture: partib-no-raw-atomic-spin fires on atomic flag spin-waits in
// loop conditions inside the MPI / partitioned layers.  Linted as
// src/mpi/atomicspin_fire.cpp.

std::atomic<bool> done_{false};
std::atomic<unsigned> gen_{0};
std::atomic_flag spin_ = ATOMIC_FLAG_INIT;
std::atomic<bool> stop_{false};

void wait_for_bridge() {
  // CHECK: src/mpi/atomicspin_fire.cpp:[[@LINE+1]]:17: warning: raw atomic 'load()' spin in a loop condition; producers hand off through the shard API (runtime::ShardedProgressEngine / ProducerHandle) instead of spinning [partib-no-raw-atomic-spin]
  while (!done_.load(std::memory_order_acquire)) {
  }
}

void advance_generation() {
  unsigned seen = gen_.load(std::memory_order_relaxed);
  do {
    // CHECK: src/mpi/atomicspin_fire.cpp:[[@LINE+1]]:18: warning: raw atomic 'compare_exchange_weak()' spin in a loop condition; producers hand off through the shard API (runtime::ShardedProgressEngine / ProducerHandle) instead of spinning [partib-no-raw-atomic-spin]
  } while (!gen_.compare_exchange_weak(seen, seen + 1));
}

void take_spinlock() {
  // CHECK: src/mpi/atomicspin_fire.cpp:[[@LINE+1]]:16: warning: raw atomic 'test_and_set()' spin in a loop condition; producers hand off through the shard API (runtime::ShardedProgressEngine / ProducerHandle) instead of spinning [partib-no-raw-atomic-spin]
  while (spin_.test_and_set(std::memory_order_acquire)) {
  }
}

void poll_until_stopped(Worker* self) {
  // CHECK: src/mpi/atomicspin_fire.cpp:[[@LINE+1]]:23: warning: raw atomic 'load()' spin in a loop condition; producers hand off through the shard API (runtime::ShardedProgressEngine / ProducerHandle) instead of spinning [partib-no-raw-atomic-spin]
  while (self->ready_.load()) {
  }
  // CHECK: src/mpi/atomicspin_fire.cpp:[[@LINE+1]]:17: warning: raw atomic 'test()' spin in a loop condition; producers hand off through the shard API (runtime::ShardedProgressEngine / ProducerHandle) instead of spinning [partib-no-raw-atomic-spin]
  for (; !stop_.test(std::memory_order_relaxed);) {
  }
}
