// Fixture: partib-no-wall-clock-in-sim stays silent on DES-clock use,
// identifiers that merely contain banned names, member/qualified calls,
// and suppressed lines.  Linted as src/sim/wallclock_silent.cpp.

// SILENT-NOT: warning:

long des_now(Engine& engine) {
  return engine.now();  // the one legitimate clock
}

long member_named_time(const Wc& wc) {
  return wc.completion_time;     // field, not a call
}

long method_named_time(Trace& t) {
  return t.time();               // member call on a domain object
}

long qualified(Trace& t) {
  return Trace::time(t);         // class-qualified, not libc
}

long declaration() {
  Duration time(3);              // variable named 'time'
  return time.count();
}

unsigned suppressed_seed() {
  // Seeding the *host-side* shuffle for a stress harness is justified:
  // NOLINTNEXTLINE(partib-no-wall-clock-in-sim)
  return static_cast<unsigned>(time(nullptr));
}
