// Fixture: partib-no-alloc-in-hot-path stays silent on a clean hot
// function, on cold allocations, and on a NOLINT-suppressed allocation.
// Linted as src/part/alloc_silent.cpp.

// SILENT-NOT: warning:

int* cold(int n) { return new int(n); }

PARTIB_HOT int hot_clean(const int* ring, unsigned idx, unsigned mask) {
  // Fast path touches preallocated storage only.
  return ring[idx & mask];
}

PARTIB_HOT int* hot_justified(int n) {
  // One-time lazy init measured to be off the steady-state path.
  return new int(n);  // NOLINT(partib-no-alloc-in-hot-path)
}

// A bodiless PARTIB_HOT declaration marks nothing hot.
PARTIB_HOT int hot_decl(int n);

int cold_after_decl(int n) { return *(new int(n)); }
