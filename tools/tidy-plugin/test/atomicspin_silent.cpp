// Fixture: partib-no-raw-atomic-spin stays silent on non-loop atomic
// uses, atomics read in loop bodies, the shard hand-off API itself, and
// justified, suppressed spins.  Linted as src/part/atomicspin_silent.cpp.

// SILENT-NOT: warning:

std::atomic<bool> progress_scheduled_{false};
std::atomic<unsigned long> counters_[8];

// Straight-line coalescing exchange (the psend/precv/p2p idiom): not a
// loop condition, not a spin.
void schedule_progress() {
  if (progress_scheduled_.exchange(true, std::memory_order_acq_rel)) return;
}

// Atomic reads in a loop *body* are fine — the loop is bounded by the
// induction variable, nobody is waiting on the flag.
unsigned long sum_counters() {
  unsigned long total = 0;
  for (int i = 0; i < 8; ++i) {
    total += counters_[i].load(std::memory_order_relaxed);
  }
  return total;
}

// The sanctioned path: claim through the engine, hand off, no waiting.
void produce(partib::runtime::ProducerHandle& h, std::size_t channel,
             std::size_t first, std::size_t last) {
  for (std::size_t p = first; p <= last; ++p) {
    h.pready(channel, p);
  }
  h.flush();
}

// A deliberate spin (e.g. a test-only barrier) carries an inline
// justification and a suppression:
void test_only_barrier(std::atomic<int>& arrived, int n) {
  // NOLINTNEXTLINE(partib-no-raw-atomic-spin)
  while (arrived.load(std::memory_order_acquire) < n) {
  }
}
