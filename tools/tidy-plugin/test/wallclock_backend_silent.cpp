// Fixture: partib-no-wall-clock-in-sim stays silent on the sanctioned
// real-time idiom under src/backend — time through common::mono_now()
// (the audited exemption), diag stamping through diag_set_time(), and
// engine virtual time.  Linted as
// src/backend/wallclock_backend_silent.cpp.

// SILENT-NOT: warning:

long shm_now(Time epoch) {
  return common::mono_now() - epoch;  // the sanctioned monotonic source
}

void publish_clock(Time t) {
  diag_set_time(t);  // thread_local diag clock, fine from any backend
}

long des_now(sim::Engine& engine) {
  return engine.now();  // virtual time for the DES backend
}
