// Fixture: partib-no-wall-clock-in-sim covers src/backend — a raw clock
// read in a transport (even a real-time one) must fire; real-time code
// goes through common::mono_now(), the audited exemption in
// common/clock.hpp.  Linted as src/backend/wallclock_backend_fire.cpp.

// CHECK: src/backend/wallclock_backend_fire.cpp:[[@LINE+2]]:23: warning: wall-clock source 'std::chrono::steady_clock' in the deterministic simulation layer; time comes from sim::Engine::now() [partib-no-wall-clock-in-sim]
long transport_now() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

// CHECK: src/backend/wallclock_backend_fire.cpp:[[@LINE+2]]:10: warning: non-deterministic libc call 'clock()' in the simulation layer; use the DES clock or a seeded RNG [partib-no-wall-clock-in-sim]
long cpu_stamp() {
  return clock();
}
