// Clang-tidy plugin implementing the five partib-* checks over the AST.
//
// Built as a shared object only when the clang-tidy development headers are
// available (see CMakeLists.txt next to this file); loaded into stock
// clang-tidy with
//
//   clang-tidy -load=libpartib_tidy_plugin.so -checks=partib-* ...
//
// The checks mirror tools/tidy-plugin/partib_lint.cpp — the lexer-based
// fallback that runs on hosts without clang — and both emit the same
// diagnostic grammar, so the FileCheck fixtures under test/ validate
// either implementation.  Keep messages in sync when editing.

#include <fstream>
#include <set>
#include <string>

#include "clang-tidy/ClangTidyCheck.h"
#include "clang-tidy/ClangTidyModule.h"
#include "clang-tidy/ClangTidyModuleRegistry.h"
#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "clang/ASTMatchers/ASTMatchers.h"
#include "llvm/Support/Regex.h"

namespace clang::tidy::partib {

using namespace clang::ast_matchers;

namespace {

/// True when `loc` spells a file inside one of the deterministic
/// simulation layers.  src/backend included: real-time backends read the
/// clock only through common::mono_now() (common/clock.hpp, the audited
/// exemption), and the DES backend must stay wall-clock free for replay.
bool inSimLayer(const SourceManager &SM, SourceLocation loc) {
  static llvm::Regex re("(^|/)src/(sim|fabric|verbs|part|backend)/");
  return re.match(SM.getFilename(SM.getSpellingLoc(loc)));
}

bool inCommon(const SourceManager &SM, SourceLocation loc) {
  static llvm::Regex re("(^|/)src/common/");
  return re.match(SM.getFilename(SM.getSpellingLoc(loc)));
}

/// True inside the MPI / partitioned layers, where producer threads must
/// use the shard hand-off API rather than ad-hoc atomic spin-waits.
bool inMpiOrPart(const SourceManager &SM, SourceLocation loc) {
  static llvm::Regex re("(^|/)src/(mpi|part)/");
  return re.match(SM.getFilename(SM.getSpellingLoc(loc)));
}

}  // namespace

// ---------------------------------------------------------------------------
// partib-no-alloc-in-hot-path
// ---------------------------------------------------------------------------

class NoAllocInHotPathCheck : public ClangTidyCheck {
 public:
  using ClangTidyCheck::ClangTidyCheck;

  void registerMatchers(MatchFinder *finder) override {
    // PARTIB_HOT expands to __attribute__((annotate("partib_hot"))) under
    // clang precisely so this check can find hot functions in the AST.
    auto hotFunction = functionDecl(
        hasAttr(attr::Annotate),
        hasDescendant(stmt()));  // definition, not bare declaration
    finder->addMatcher(
        cxxNewExpr(hasAncestor(hotFunction)).bind("new"), this);
    finder->addMatcher(
        callExpr(hasAncestor(hotFunction),
                 callee(functionDecl(hasAnyName(
                     "malloc", "calloc", "realloc", "aligned_alloc",
                     "posix_memalign", "strdup", "::std::make_unique",
                     "::std::make_shared"))))
            .bind("call"),
        this);
  }

  void check(const MatchFinder::MatchResult &result) override {
    if (const auto *e = result.Nodes.getNodeAs<CXXNewExpr>("new")) {
      if (!isHot(result, e)) return;
      diag(e->getBeginLoc(),
           "heap allocation ('new') inside a PARTIB_HOT function");
      return;
    }
    if (const auto *e = result.Nodes.getNodeAs<CallExpr>("call")) {
      if (!isHot(result, e)) return;
      const auto *callee = e->getDirectCallee();
      diag(e->getBeginLoc(),
           "heap allocation ('%0') inside a PARTIB_HOT function")
          << (callee ? callee->getNameAsString() : std::string("alloc"));
    }
  }

 private:
  /// The attr::Annotate matcher above is spelling-agnostic; confirm the
  /// annotation really is "partib_hot" before reporting.
  template <typename NodeT>
  static bool isHot(const MatchFinder::MatchResult &result, const NodeT *e) {
    auto parents = result.Context->getParents(*e);
    while (!parents.empty()) {
      if (const auto *fd = parents[0].template get<FunctionDecl>()) {
        for (const auto *attr : fd->specific_attrs<AnnotateAttr>()) {
          if (attr->getAnnotation() == "partib_hot") return true;
        }
        return false;
      }
      parents = result.Context->getParents(parents[0]);
    }
    return false;
  }
};

// ---------------------------------------------------------------------------
// partib-no-wall-clock-in-sim
// ---------------------------------------------------------------------------

class NoWallClockInSimCheck : public ClangTidyCheck {
 public:
  using ClangTidyCheck::ClangTidyCheck;

  void registerMatchers(MatchFinder *finder) override {
    finder->addMatcher(
        callExpr(callee(functionDecl(hasAnyName(
                     "::time", "::std::time", "::rand", "::std::rand",
                     "::srand", "::std::srand", "::clock", "::std::clock",
                     "::gettimeofday", "::drand48", "::random"))))
            .bind("libc"),
        this);
    finder->addMatcher(
        declRefExpr(to(namedDecl(hasAnyName(
                        "::std::chrono::system_clock",
                        "::std::chrono::steady_clock",
                        "::std::chrono::high_resolution_clock"))))
            .bind("clock"),
        this);
    finder->addMatcher(
        typeLoc(loc(qualType(hasDeclaration(namedDecl(hasAnyName(
                    "::std::chrono::system_clock",
                    "::std::chrono::steady_clock",
                    "::std::chrono::high_resolution_clock"))))))
            .bind("clocktype"),
        this);
  }

  void check(const MatchFinder::MatchResult &result) override {
    const SourceManager &SM = *result.SourceManager;
    if (const auto *e = result.Nodes.getNodeAs<CallExpr>("libc")) {
      if (!inSimLayer(SM, e->getBeginLoc())) return;
      diag(e->getBeginLoc(),
           "non-deterministic libc call '%0()' in the simulation layer; "
           "use the DES clock or a seeded RNG")
          << e->getDirectCallee()->getNameAsString();
      return;
    }
    SourceLocation loc;
    std::string name;
    if (const auto *e = result.Nodes.getNodeAs<DeclRefExpr>("clock")) {
      loc = e->getBeginLoc();
      name = e->getDecl()->getNameAsString();
    } else if (const auto *tl =
                   result.Nodes.getNodeAs<TypeLoc>("clocktype")) {
      loc = tl->getBeginLoc();
      name = tl->getType().getAsString();
    } else {
      return;
    }
    if (!inSimLayer(SM, loc)) return;
    diag(loc,
         "wall-clock source 'std::chrono::%0' in the deterministic "
         "simulation layer; time comes from sim::Engine::now()")
        << name;
  }
};

// ---------------------------------------------------------------------------
// partib-diag-rule-registered
// ---------------------------------------------------------------------------

class DiagRuleRegisteredCheck : public ClangTidyCheck {
 public:
  DiagRuleRegisteredCheck(StringRef name, ClangTidyContext *context)
      : ClangTidyCheck(name, context),
        rulesFile_(Options.get("RulesFile", "src/check/rules.inc")) {
    loadRules();
  }

  void storeOptions(ClangTidyOptions::OptionMap &opts) override {
    Options.store(opts, "RulesFile", rulesFile_);
  }

  void registerMatchers(MatchFinder *finder) override {
    finder->addMatcher(
        callExpr(callee(functionDecl(hasName("::partib::check::report"))),
                 hasArgument(0, stringLiteral().bind("lit"))),
        this);
    finder->addMatcher(
        binaryOperator(
            hasOperatorName("="),
            hasLHS(memberExpr(member(hasName("rule")))),
            hasRHS(ignoringImplicit(stringLiteral().bind("lit")))),
        this);
  }

  void check(const MatchFinder::MatchResult &result) override {
    const auto *lit = result.Nodes.getNodeAs<StringLiteral>("lit");
    if (lit == nullptr || lit->getCharByteWidth() != 1) return;
    const std::string id = lit->getString().str();
    if (rules_.count(id) != 0) return;
    diag(lit->getBeginLoc(),
         "diagnostic names rule id '%0' which is not registered in "
         "src/check/rules.inc")
        << id;
  }

 private:
  void loadRules() {
    std::ifstream in(rulesFile_);
    std::string line;
    while (std::getline(in, line)) {
      const auto open = line.find("PARTIB_RULE(\"");
      if (open == std::string::npos) continue;
      const auto start = open + 13;
      const auto end = line.find('"', start);
      if (end != std::string::npos) {
        rules_.insert(line.substr(start, end - start));
      }
    }
  }

  std::string rulesFile_;
  std::set<std::string> rules_;
};

// ---------------------------------------------------------------------------
// partib-mutex-wrapper-only
// ---------------------------------------------------------------------------

class MutexWrapperOnlyCheck : public ClangTidyCheck {
 public:
  using ClangTidyCheck::ClangTidyCheck;

  void registerMatchers(MatchFinder *finder) override {
    finder->addMatcher(
        typeLoc(loc(qualType(hasDeclaration(cxxRecordDecl(hasAnyName(
                    "::std::mutex", "::std::recursive_mutex",
                    "::std::timed_mutex", "::std::recursive_timed_mutex",
                    "::std::shared_mutex", "::std::shared_timed_mutex",
                    "::std::condition_variable",
                    "::std::condition_variable_any"))))))
            .bind("type"),
        this);
  }

  void check(const MatchFinder::MatchResult &result) override {
    const auto *tl = result.Nodes.getNodeAs<TypeLoc>("type");
    const SourceManager &SM = *result.SourceManager;
    const SourceLocation loc = tl->getBeginLoc();
    if (!loc.isValid() || SM.isInSystemHeader(loc)) return;
    if (inCommon(SM, loc)) return;  // the wrapper itself lives there
    diag(loc,
         "raw '%0' outside src/common/; use common::Mutex / common::CondVar "
         "(common/mutex.hpp) so thread-safety annotations and the "
         "lock-order auditor see it")
        << tl->getType().getAsString();
  }
};

// ---------------------------------------------------------------------------
// partib-no-raw-atomic-spin
// ---------------------------------------------------------------------------

class NoRawAtomicSpinCheck : public ClangTidyCheck {
 public:
  using ClangTidyCheck::ClangTidyCheck;

  void registerMatchers(MatchFinder *finder) override {
    // A member call to one of the atomic wait-idiom methods on a
    // std::atomic / std::atomic_flag, sitting anywhere inside a loop
    // condition.  Unlike the lexer fallback this is type-accurate; the
    // lexer compensates by also flagging same-named calls on non-atomics
    // (see partib_lint.cpp for why that blindness is acceptable).
    auto atomicCall =
        cxxMemberCallExpr(
            on(hasType(hasUnqualifiedDesugaredType(recordType(hasDeclaration(
                cxxRecordDecl(hasAnyName("::std::atomic",
                                         "::std::atomic_flag"))))))),
            callee(cxxMethodDecl(hasAnyName(
                "load", "exchange", "test", "test_and_set",
                "compare_exchange_weak", "compare_exchange_strong"))))
            .bind("call");
    auto spinCond = expr(anyOf(atomicCall, hasDescendant(atomicCall)));
    finder->addMatcher(whileStmt(hasCondition(spinCond)), this);
    finder->addMatcher(doStmt(hasCondition(spinCond)), this);
    finder->addMatcher(forStmt(hasCondition(spinCond)), this);
  }

  void check(const MatchFinder::MatchResult &result) override {
    const auto *call = result.Nodes.getNodeAs<CXXMemberCallExpr>("call");
    if (call == nullptr) return;
    const SourceManager &SM = *result.SourceManager;
    if (!inMpiOrPart(SM, call->getExprLoc())) return;
    const auto *method = call->getMethodDecl();
    diag(call->getExprLoc(),
         "raw atomic '%0()' spin in a loop condition; producers hand off "
         "through the shard API (runtime::ShardedProgressEngine / "
         "ProducerHandle) instead of spinning")
        << (method ? method->getNameAsString() : std::string("load"));
  }
};

// ---------------------------------------------------------------------------
// Module registration
// ---------------------------------------------------------------------------

class PartibModule : public ClangTidyModule {
 public:
  void addCheckFactories(ClangTidyCheckFactories &factories) override {
    factories.registerCheck<NoAllocInHotPathCheck>(
        "partib-no-alloc-in-hot-path");
    factories.registerCheck<NoWallClockInSimCheck>(
        "partib-no-wall-clock-in-sim");
    factories.registerCheck<DiagRuleRegisteredCheck>(
        "partib-diag-rule-registered");
    factories.registerCheck<MutexWrapperOnlyCheck>(
        "partib-mutex-wrapper-only");
    factories.registerCheck<NoRawAtomicSpinCheck>(
        "partib-no-raw-atomic-spin");
  }
};

static ClangTidyModuleRegistry::Add<PartibModule> X(
    "partib-module", "partib project-specific checks");

// Anchor so -load keeps the module object alive.
volatile int PartibModuleAnchorSource = 0;

}  // namespace clang::tidy::partib
