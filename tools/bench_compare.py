#!/usr/bin/env python3
"""Hot-path benchmark regression gate.

Runs bench_micro_hotpaths several times, reduces each benchmark's timings
with a robust statistic (min by default: on shared/noisy CPUs the minimum
of N runs estimates the uncontended cost far better than the mean), and
compares against the committed baseline (BENCH_hotpaths.json at the repo
root).  A benchmark that lands more than --threshold above its baseline
`after_ns` fails the gate.

Typical use:

    # local, blocking (what bench/run_hotpaths.sh does):
    tools/bench_compare.py --binary build-rel/bench/bench_micro_hotpaths

    # CI, informational only (shared runners are too noisy to block on):
    tools/bench_compare.py --binary ... --warn-only --out results.json

    # refresh the baseline after an intentional perf change:
    tools/bench_compare.py --binary ... --update

The baseline file keeps two numbers per benchmark: `before_ns` (the
std::map engine / allocating fluid network, measured at the commit that
introduced the rewrite — a historical record, never updated by this tool)
and `after_ns` (the current expected cost, the comparison target).

The baseline may also carry a `relative_gates` list.  Each entry pins one
benchmark to a multiple of another FROM THE SAME RUN, which stays
meaningful on hosts whose absolute timings differ from the baseline's:

    {"bench": "BM_BackendDispatch", "baseline": "BM_PreadyFlush",
     "max_ratio": 1.05}

asserts that the backend-registry indirection costs at most 5% over the
direct-construction hot path.  Relative gates use the same --warn-only
escape hatch but ignore --threshold (the ratio bound is the contract).
"""

import argparse
import json
import os
import statistics
import subprocess
import sys

DEFAULT_BASELINE = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_hotpaths.json",
)


def run_once(binary, min_time):
    """One benchmark-binary invocation -> {name: real_time_ns}."""
    # NOTE: the pinned google-benchmark predates duration suffixes, so the
    # value must be a bare number ("0.05"), not "0.05s".
    cmd = [
        binary,
        "--benchmark_format=json",
        "--benchmark_min_time=%g" % min_time,
    ]
    out = subprocess.run(cmd, check=True, capture_output=True, text=True)
    doc = json.loads(out.stdout)
    times = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type", "iteration") != "iteration":
            continue  # skip aggregate rows if repetitions were requested
        unit = b.get("time_unit", "ns")
        scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}[unit]
        times[b["name"]] = b["real_time"] * scale
    return times


def measure(binary, runs, min_time, stat):
    samples = {}
    for i in range(runs):
        for name, t in run_once(binary, min_time).items():
            samples.setdefault(name, []).append(t)
        print("  run %d/%d done" % (i + 1, runs), file=sys.stderr)
    reduce_fn = {"min": min, "median": statistics.median}[stat]
    return {name: reduce_fn(ts) for name, ts in sorted(samples.items())}


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--binary", required=True,
                    help="path to bench_micro_hotpaths (Release build)")
    ap.add_argument("--baseline", default=DEFAULT_BASELINE,
                    help="baseline JSON (default: repo-root "
                         "BENCH_hotpaths.json)")
    ap.add_argument("--runs", type=int, default=6,
                    help="benchmark binary invocations to reduce over")
    ap.add_argument("--min-time", type=float, default=0.05,
                    help="--benchmark_min_time per invocation, seconds")
    ap.add_argument("--stat", choices=["min", "median"], default="min")
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="allowed regression fraction vs baseline after_ns")
    ap.add_argument("--update", action="store_true",
                    help="write measurements back as the new after_ns "
                         "baseline instead of comparing")
    ap.add_argument("--warn-only", action="store_true",
                    help="report regressions but exit 0 (for noisy CI "
                         "runners)")
    ap.add_argument("--out", default=None,
                    help="also dump raw measurements to this JSON file")
    args = ap.parse_args()

    measured = measure(args.binary, args.runs, args.min_time, args.stat)
    if not measured:
        print("error: benchmark binary produced no results", file=sys.stderr)
        return 2

    if args.out:
        with open(args.out, "w") as f:
            json.dump({"statistic": args.stat, "runs": args.runs,
                       "measured_ns": measured}, f, indent=2)
            f.write("\n")

    with open(args.baseline) as f:
        baseline = json.load(f)
    bench = baseline["benchmarks"]

    if args.update:
        for name, t in measured.items():
            bench.setdefault(name, {})["after_ns"] = round(t, 1)
        with open(args.baseline, "w") as f:
            json.dump(baseline, f, indent=2)
            f.write("\n")
        print("updated %s (%d benchmarks)" % (args.baseline, len(measured)))
        return 0

    failures = []
    width = max(len(n) for n in measured)
    print("%-*s %12s %12s %8s" % (width, "benchmark", "baseline", "now",
                                  "ratio"))
    for name, t in measured.items():
        base = bench.get(name, {}).get("after_ns")
        if base is None:
            print("%-*s %12s %12.0f %8s" % (width, name, "(new)", t, "-"))
            continue
        ratio = t / base
        flag = ""
        if ratio > 1.0 + args.threshold:
            failures.append((name, base, t, ratio))
            flag = "  REGRESSION"
        print("%-*s %12.0f %12.0f %7.2fx%s" % (width, name, base, t, ratio,
                                               flag))

    gate_failures = []
    for gate in baseline.get("relative_gates", []):
        name, ref = gate["bench"], gate["baseline"]
        if name not in measured or ref not in measured:
            print("relative gate %s vs %s: benchmark missing from run"
                  % (name, ref), file=sys.stderr)
            gate_failures.append((name, ref, gate["max_ratio"], None))
            continue
        ratio = measured[name] / measured[ref]
        ok = ratio <= gate["max_ratio"]
        print("relative gate: %s <= %.2fx %s  (measured %.2fx)%s"
              % (name, gate["max_ratio"], ref, ratio,
                 "" if ok else "  FAILED"))
        if not ok:
            gate_failures.append((name, ref, gate["max_ratio"], ratio))

    if failures or gate_failures:
        if failures:
            print("\n%d benchmark(s) regressed more than %.0f%%:"
                  % (len(failures), args.threshold * 100), file=sys.stderr)
            for name, base, t, ratio in failures:
                print("  %s: %.0f ns -> %.0f ns (%.2fx)"
                      % (name, base, t, ratio), file=sys.stderr)
        for name, ref, bound, ratio in gate_failures:
            print("  relative gate failed: %s vs %s, bound %.2fx, got %s"
                  % (name, ref, bound,
                     "no data" if ratio is None else "%.2fx" % ratio),
                  file=sys.stderr)
        if args.warn_only:
            print("(--warn-only: not failing the build)", file=sys.stderr)
            return 0
        print("If intentional, refresh the baseline with --update.",
              file=sys.stderr)
        return 1
    print("\nall benchmarks within %.0f%% of baseline"
          % (args.threshold * 100))
    return 0


if __name__ == "__main__":
    sys.exit(main())
