# Empty compiler generated dependencies file for partib_sim.
# This may be replaced when dependencies are built.
