file(REMOVE_RECURSE
  "libpartib_sim.a"
)
