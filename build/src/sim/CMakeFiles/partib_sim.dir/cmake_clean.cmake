file(REMOVE_RECURSE
  "CMakeFiles/partib_sim.dir/engine.cpp.o"
  "CMakeFiles/partib_sim.dir/engine.cpp.o.d"
  "CMakeFiles/partib_sim.dir/noise.cpp.o"
  "CMakeFiles/partib_sim.dir/noise.cpp.o.d"
  "CMakeFiles/partib_sim.dir/resources.cpp.o"
  "CMakeFiles/partib_sim.dir/resources.cpp.o.d"
  "libpartib_sim.a"
  "libpartib_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partib_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
