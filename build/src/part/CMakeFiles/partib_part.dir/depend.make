# Empty dependencies file for partib_part.
# This may be replaced when dependencies are built.
