file(REMOVE_RECURSE
  "CMakeFiles/partib_part.dir/options.cpp.o"
  "CMakeFiles/partib_part.dir/options.cpp.o.d"
  "CMakeFiles/partib_part.dir/precv.cpp.o"
  "CMakeFiles/partib_part.dir/precv.cpp.o.d"
  "CMakeFiles/partib_part.dir/psend.cpp.o"
  "CMakeFiles/partib_part.dir/psend.cpp.o.d"
  "libpartib_part.a"
  "libpartib_part.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partib_part.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
