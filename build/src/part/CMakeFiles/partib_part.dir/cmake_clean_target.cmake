file(REMOVE_RECURSE
  "libpartib_part.a"
)
