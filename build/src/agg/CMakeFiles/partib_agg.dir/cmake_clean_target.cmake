file(REMOVE_RECURSE
  "libpartib_agg.a"
)
