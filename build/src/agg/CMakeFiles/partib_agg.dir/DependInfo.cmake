
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/agg/strategies.cpp" "src/agg/CMakeFiles/partib_agg.dir/strategies.cpp.o" "gcc" "src/agg/CMakeFiles/partib_agg.dir/strategies.cpp.o.d"
  "/root/repo/src/agg/tuning_table.cpp" "src/agg/CMakeFiles/partib_agg.dir/tuning_table.cpp.o" "gcc" "src/agg/CMakeFiles/partib_agg.dir/tuning_table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/partib_common.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/partib_model.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
