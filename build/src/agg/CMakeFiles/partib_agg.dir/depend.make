# Empty dependencies file for partib_agg.
# This may be replaced when dependencies are built.
