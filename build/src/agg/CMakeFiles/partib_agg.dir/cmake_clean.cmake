file(REMOVE_RECURSE
  "CMakeFiles/partib_agg.dir/strategies.cpp.o"
  "CMakeFiles/partib_agg.dir/strategies.cpp.o.d"
  "CMakeFiles/partib_agg.dir/tuning_table.cpp.o"
  "CMakeFiles/partib_agg.dir/tuning_table.cpp.o.d"
  "libpartib_agg.a"
  "libpartib_agg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partib_agg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
