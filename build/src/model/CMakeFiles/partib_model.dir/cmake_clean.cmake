file(REMOVE_RECURSE
  "CMakeFiles/partib_model.dir/loggp.cpp.o"
  "CMakeFiles/partib_model.dir/loggp.cpp.o.d"
  "CMakeFiles/partib_model.dir/ploggp.cpp.o"
  "CMakeFiles/partib_model.dir/ploggp.cpp.o.d"
  "libpartib_model.a"
  "libpartib_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partib_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
