# Empty compiler generated dependencies file for partib_model.
# This may be replaced when dependencies are built.
