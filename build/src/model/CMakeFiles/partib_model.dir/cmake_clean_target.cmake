file(REMOVE_RECURSE
  "libpartib_model.a"
)
