file(REMOVE_RECURSE
  "libpartib_mpi.a"
)
