file(REMOVE_RECURSE
  "CMakeFiles/partib_mpi.dir/collectives.cpp.o"
  "CMakeFiles/partib_mpi.dir/collectives.cpp.o.d"
  "CMakeFiles/partib_mpi.dir/matcher.cpp.o"
  "CMakeFiles/partib_mpi.dir/matcher.cpp.o.d"
  "CMakeFiles/partib_mpi.dir/p2p.cpp.o"
  "CMakeFiles/partib_mpi.dir/p2p.cpp.o.d"
  "CMakeFiles/partib_mpi.dir/world.cpp.o"
  "CMakeFiles/partib_mpi.dir/world.cpp.o.d"
  "libpartib_mpi.a"
  "libpartib_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partib_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
