# Empty compiler generated dependencies file for partib_mpi.
# This may be replaced when dependencies are built.
