
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mpi/collectives.cpp" "src/mpi/CMakeFiles/partib_mpi.dir/collectives.cpp.o" "gcc" "src/mpi/CMakeFiles/partib_mpi.dir/collectives.cpp.o.d"
  "/root/repo/src/mpi/matcher.cpp" "src/mpi/CMakeFiles/partib_mpi.dir/matcher.cpp.o" "gcc" "src/mpi/CMakeFiles/partib_mpi.dir/matcher.cpp.o.d"
  "/root/repo/src/mpi/p2p.cpp" "src/mpi/CMakeFiles/partib_mpi.dir/p2p.cpp.o" "gcc" "src/mpi/CMakeFiles/partib_mpi.dir/p2p.cpp.o.d"
  "/root/repo/src/mpi/world.cpp" "src/mpi/CMakeFiles/partib_mpi.dir/world.cpp.o" "gcc" "src/mpi/CMakeFiles/partib_mpi.dir/world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/verbs/CMakeFiles/partib_verbs.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/partib_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/partib_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/partib_model.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/partib_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
