file(REMOVE_RECURSE
  "libpartib_common.a"
)
