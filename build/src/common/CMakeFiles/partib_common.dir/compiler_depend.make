# Empty compiler generated dependencies file for partib_common.
# This may be replaced when dependencies are built.
