file(REMOVE_RECURSE
  "CMakeFiles/partib_common.dir/env.cpp.o"
  "CMakeFiles/partib_common.dir/env.cpp.o.d"
  "CMakeFiles/partib_common.dir/log.cpp.o"
  "CMakeFiles/partib_common.dir/log.cpp.o.d"
  "CMakeFiles/partib_common.dir/time.cpp.o"
  "CMakeFiles/partib_common.dir/time.cpp.o.d"
  "CMakeFiles/partib_common.dir/units.cpp.o"
  "CMakeFiles/partib_common.dir/units.cpp.o.d"
  "libpartib_common.a"
  "libpartib_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partib_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
