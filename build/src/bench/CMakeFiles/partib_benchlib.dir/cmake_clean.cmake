file(REMOVE_RECURSE
  "CMakeFiles/partib_benchlib.dir/halo.cpp.o"
  "CMakeFiles/partib_benchlib.dir/halo.cpp.o.d"
  "CMakeFiles/partib_benchlib.dir/overhead.cpp.o"
  "CMakeFiles/partib_benchlib.dir/overhead.cpp.o.d"
  "CMakeFiles/partib_benchlib.dir/perceived.cpp.o"
  "CMakeFiles/partib_benchlib.dir/perceived.cpp.o.d"
  "CMakeFiles/partib_benchlib.dir/probe.cpp.o"
  "CMakeFiles/partib_benchlib.dir/probe.cpp.o.d"
  "CMakeFiles/partib_benchlib.dir/report.cpp.o"
  "CMakeFiles/partib_benchlib.dir/report.cpp.o.d"
  "CMakeFiles/partib_benchlib.dir/sweep.cpp.o"
  "CMakeFiles/partib_benchlib.dir/sweep.cpp.o.d"
  "libpartib_benchlib.a"
  "libpartib_benchlib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partib_benchlib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
