file(REMOVE_RECURSE
  "libpartib_benchlib.a"
)
