# Empty compiler generated dependencies file for partib_benchlib.
# This may be replaced when dependencies are built.
