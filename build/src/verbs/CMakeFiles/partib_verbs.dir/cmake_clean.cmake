file(REMOVE_RECURSE
  "CMakeFiles/partib_verbs.dir/verbs.cpp.o"
  "CMakeFiles/partib_verbs.dir/verbs.cpp.o.d"
  "libpartib_verbs.a"
  "libpartib_verbs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partib_verbs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
