# Empty compiler generated dependencies file for partib_verbs.
# This may be replaced when dependencies are built.
