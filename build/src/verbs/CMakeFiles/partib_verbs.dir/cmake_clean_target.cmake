file(REMOVE_RECURSE
  "libpartib_verbs.a"
)
