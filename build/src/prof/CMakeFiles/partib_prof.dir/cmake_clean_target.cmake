file(REMOVE_RECURSE
  "libpartib_prof.a"
)
