file(REMOVE_RECURSE
  "CMakeFiles/partib_prof.dir/profiler.cpp.o"
  "CMakeFiles/partib_prof.dir/profiler.cpp.o.d"
  "libpartib_prof.a"
  "libpartib_prof.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partib_prof.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
