# Empty dependencies file for partib_prof.
# This may be replaced when dependencies are built.
