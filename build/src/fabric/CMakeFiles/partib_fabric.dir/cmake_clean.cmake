file(REMOVE_RECURSE
  "CMakeFiles/partib_fabric.dir/fabric.cpp.o"
  "CMakeFiles/partib_fabric.dir/fabric.cpp.o.d"
  "CMakeFiles/partib_fabric.dir/fluid_network.cpp.o"
  "CMakeFiles/partib_fabric.dir/fluid_network.cpp.o.d"
  "CMakeFiles/partib_fabric.dir/nic_params.cpp.o"
  "CMakeFiles/partib_fabric.dir/nic_params.cpp.o.d"
  "CMakeFiles/partib_fabric.dir/trace.cpp.o"
  "CMakeFiles/partib_fabric.dir/trace.cpp.o.d"
  "libpartib_fabric.a"
  "libpartib_fabric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partib_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
