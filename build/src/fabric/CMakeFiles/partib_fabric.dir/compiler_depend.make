# Empty compiler generated dependencies file for partib_fabric.
# This may be replaced when dependencies are built.
