
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fabric/fabric.cpp" "src/fabric/CMakeFiles/partib_fabric.dir/fabric.cpp.o" "gcc" "src/fabric/CMakeFiles/partib_fabric.dir/fabric.cpp.o.d"
  "/root/repo/src/fabric/fluid_network.cpp" "src/fabric/CMakeFiles/partib_fabric.dir/fluid_network.cpp.o" "gcc" "src/fabric/CMakeFiles/partib_fabric.dir/fluid_network.cpp.o.d"
  "/root/repo/src/fabric/nic_params.cpp" "src/fabric/CMakeFiles/partib_fabric.dir/nic_params.cpp.o" "gcc" "src/fabric/CMakeFiles/partib_fabric.dir/nic_params.cpp.o.d"
  "/root/repo/src/fabric/trace.cpp" "src/fabric/CMakeFiles/partib_fabric.dir/trace.cpp.o" "gcc" "src/fabric/CMakeFiles/partib_fabric.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/partib_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/partib_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/partib_model.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
