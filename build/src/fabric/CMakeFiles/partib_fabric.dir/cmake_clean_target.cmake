file(REMOVE_RECURSE
  "libpartib_fabric.a"
)
