file(REMOVE_RECURSE
  "CMakeFiles/repro_figures_test.dir/repro/figures_test.cpp.o"
  "CMakeFiles/repro_figures_test.dir/repro/figures_test.cpp.o.d"
  "repro_figures_test"
  "repro_figures_test.pdb"
  "repro_figures_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_figures_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
