# Empty dependencies file for repro_figures_test.
# This may be replaced when dependencies are built.
