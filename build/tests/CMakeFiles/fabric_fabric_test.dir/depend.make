# Empty dependencies file for fabric_fabric_test.
# This may be replaced when dependencies are built.
