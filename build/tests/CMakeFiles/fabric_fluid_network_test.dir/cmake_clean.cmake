file(REMOVE_RECURSE
  "CMakeFiles/fabric_fluid_network_test.dir/fabric/fluid_network_test.cpp.o"
  "CMakeFiles/fabric_fluid_network_test.dir/fabric/fluid_network_test.cpp.o.d"
  "fabric_fluid_network_test"
  "fabric_fluid_network_test.pdb"
  "fabric_fluid_network_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fabric_fluid_network_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
