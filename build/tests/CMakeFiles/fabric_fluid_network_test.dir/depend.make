# Empty dependencies file for fabric_fluid_network_test.
# This may be replaced when dependencies are built.
