# Empty dependencies file for part_timer_test.
# This may be replaced when dependencies are built.
