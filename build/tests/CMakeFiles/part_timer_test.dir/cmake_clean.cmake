file(REMOVE_RECURSE
  "CMakeFiles/part_timer_test.dir/part/timer_test.cpp.o"
  "CMakeFiles/part_timer_test.dir/part/timer_test.cpp.o.d"
  "part_timer_test"
  "part_timer_test.pdb"
  "part_timer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/part_timer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
