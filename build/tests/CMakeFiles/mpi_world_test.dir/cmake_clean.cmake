file(REMOVE_RECURSE
  "CMakeFiles/mpi_world_test.dir/mpi/world_test.cpp.o"
  "CMakeFiles/mpi_world_test.dir/mpi/world_test.cpp.o.d"
  "mpi_world_test"
  "mpi_world_test.pdb"
  "mpi_world_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpi_world_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
