# Empty dependencies file for part_adaptive_test.
# This may be replaced when dependencies are built.
