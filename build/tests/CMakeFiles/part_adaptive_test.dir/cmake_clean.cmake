file(REMOVE_RECURSE
  "CMakeFiles/part_adaptive_test.dir/part/adaptive_test.cpp.o"
  "CMakeFiles/part_adaptive_test.dir/part/adaptive_test.cpp.o.d"
  "part_adaptive_test"
  "part_adaptive_test.pdb"
  "part_adaptive_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/part_adaptive_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
