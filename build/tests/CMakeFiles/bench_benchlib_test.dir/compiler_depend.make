# Empty compiler generated dependencies file for bench_benchlib_test.
# This may be replaced when dependencies are built.
