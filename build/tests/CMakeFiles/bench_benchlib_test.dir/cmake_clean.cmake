file(REMOVE_RECURSE
  "CMakeFiles/bench_benchlib_test.dir/bench/benchlib_test.cpp.o"
  "CMakeFiles/bench_benchlib_test.dir/bench/benchlib_test.cpp.o.d"
  "bench_benchlib_test"
  "bench_benchlib_test.pdb"
  "bench_benchlib_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_benchlib_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
