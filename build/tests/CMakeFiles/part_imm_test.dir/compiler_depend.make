# Empty compiler generated dependencies file for part_imm_test.
# This may be replaced when dependencies are built.
