file(REMOVE_RECURSE
  "CMakeFiles/part_imm_test.dir/part/imm_test.cpp.o"
  "CMakeFiles/part_imm_test.dir/part/imm_test.cpp.o.d"
  "part_imm_test"
  "part_imm_test.pdb"
  "part_imm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/part_imm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
