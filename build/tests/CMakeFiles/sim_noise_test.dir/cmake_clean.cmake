file(REMOVE_RECURSE
  "CMakeFiles/sim_noise_test.dir/sim/noise_test.cpp.o"
  "CMakeFiles/sim_noise_test.dir/sim/noise_test.cpp.o.d"
  "sim_noise_test"
  "sim_noise_test.pdb"
  "sim_noise_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_noise_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
