# Empty dependencies file for mpi_matcher_test.
# This may be replaced when dependencies are built.
