file(REMOVE_RECURSE
  "CMakeFiles/mpi_matcher_test.dir/mpi/matcher_test.cpp.o"
  "CMakeFiles/mpi_matcher_test.dir/mpi/matcher_test.cpp.o.d"
  "mpi_matcher_test"
  "mpi_matcher_test.pdb"
  "mpi_matcher_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpi_matcher_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
