file(REMOVE_RECURSE
  "CMakeFiles/fabric_trace_test.dir/fabric/trace_test.cpp.o"
  "CMakeFiles/fabric_trace_test.dir/fabric/trace_test.cpp.o.d"
  "fabric_trace_test"
  "fabric_trace_test.pdb"
  "fabric_trace_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fabric_trace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
