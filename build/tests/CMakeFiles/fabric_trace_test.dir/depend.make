# Empty dependencies file for fabric_trace_test.
# This may be replaced when dependencies are built.
