file(REMOVE_RECURSE
  "CMakeFiles/part_channel_test.dir/part/channel_test.cpp.o"
  "CMakeFiles/part_channel_test.dir/part/channel_test.cpp.o.d"
  "part_channel_test"
  "part_channel_test.pdb"
  "part_channel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/part_channel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
