# Empty compiler generated dependencies file for part_channel_test.
# This may be replaced when dependencies are built.
