
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/part/channel_test.cpp" "tests/CMakeFiles/part_channel_test.dir/part/channel_test.cpp.o" "gcc" "tests/CMakeFiles/part_channel_test.dir/part/channel_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bench/CMakeFiles/partib_benchlib.dir/DependInfo.cmake"
  "/root/repo/build/src/part/CMakeFiles/partib_part.dir/DependInfo.cmake"
  "/root/repo/build/src/agg/CMakeFiles/partib_agg.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/partib_model.dir/DependInfo.cmake"
  "/root/repo/build/src/mpi/CMakeFiles/partib_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/verbs/CMakeFiles/partib_verbs.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/partib_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/partib_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/partib_common.dir/DependInfo.cmake"
  "/root/repo/build/src/prof/CMakeFiles/partib_prof.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
