file(REMOVE_RECURSE
  "CMakeFiles/verbs_verbs_test.dir/verbs/verbs_test.cpp.o"
  "CMakeFiles/verbs_verbs_test.dir/verbs/verbs_test.cpp.o.d"
  "verbs_verbs_test"
  "verbs_verbs_test.pdb"
  "verbs_verbs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verbs_verbs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
