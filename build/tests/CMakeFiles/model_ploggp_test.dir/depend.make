# Empty dependencies file for model_ploggp_test.
# This may be replaced when dependencies are built.
