file(REMOVE_RECURSE
  "CMakeFiles/model_ploggp_test.dir/model/ploggp_test.cpp.o"
  "CMakeFiles/model_ploggp_test.dir/model/ploggp_test.cpp.o.d"
  "model_ploggp_test"
  "model_ploggp_test.pdb"
  "model_ploggp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_ploggp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
