# Empty dependencies file for fabric_hetero_test.
# This may be replaced when dependencies are built.
