file(REMOVE_RECURSE
  "CMakeFiles/fabric_hetero_test.dir/fabric/hetero_test.cpp.o"
  "CMakeFiles/fabric_hetero_test.dir/fabric/hetero_test.cpp.o.d"
  "fabric_hetero_test"
  "fabric_hetero_test.pdb"
  "fabric_hetero_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fabric_hetero_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
