file(REMOVE_RECURSE
  "CMakeFiles/part_options_test.dir/part/options_test.cpp.o"
  "CMakeFiles/part_options_test.dir/part/options_test.cpp.o.d"
  "part_options_test"
  "part_options_test.pdb"
  "part_options_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/part_options_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
