# Empty compiler generated dependencies file for part_options_test.
# This may be replaced when dependencies are built.
