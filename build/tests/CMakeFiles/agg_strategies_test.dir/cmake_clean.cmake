file(REMOVE_RECURSE
  "CMakeFiles/agg_strategies_test.dir/agg/strategies_test.cpp.o"
  "CMakeFiles/agg_strategies_test.dir/agg/strategies_test.cpp.o.d"
  "agg_strategies_test"
  "agg_strategies_test.pdb"
  "agg_strategies_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agg_strategies_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
