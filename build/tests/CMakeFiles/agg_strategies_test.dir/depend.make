# Empty dependencies file for agg_strategies_test.
# This may be replaced when dependencies are built.
