# Empty compiler generated dependencies file for integration_multirank_test.
# This may be replaced when dependencies are built.
