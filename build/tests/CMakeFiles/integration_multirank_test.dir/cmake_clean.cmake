file(REMOVE_RECURSE
  "CMakeFiles/integration_multirank_test.dir/integration/multirank_test.cpp.o"
  "CMakeFiles/integration_multirank_test.dir/integration/multirank_test.cpp.o.d"
  "integration_multirank_test"
  "integration_multirank_test.pdb"
  "integration_multirank_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_multirank_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
