file(REMOVE_RECURSE
  "CMakeFiles/integration_uneven_test.dir/integration/uneven_test.cpp.o"
  "CMakeFiles/integration_uneven_test.dir/integration/uneven_test.cpp.o.d"
  "integration_uneven_test"
  "integration_uneven_test.pdb"
  "integration_uneven_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_uneven_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
