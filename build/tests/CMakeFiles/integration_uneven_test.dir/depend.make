# Empty dependencies file for integration_uneven_test.
# This may be replaced when dependencies are built.
