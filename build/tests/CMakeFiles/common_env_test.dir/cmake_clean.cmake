file(REMOVE_RECURSE
  "CMakeFiles/common_env_test.dir/common/env_test.cpp.o"
  "CMakeFiles/common_env_test.dir/common/env_test.cpp.o.d"
  "common_env_test"
  "common_env_test.pdb"
  "common_env_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_env_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
