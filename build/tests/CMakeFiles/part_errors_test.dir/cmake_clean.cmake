file(REMOVE_RECURSE
  "CMakeFiles/part_errors_test.dir/part/errors_test.cpp.o"
  "CMakeFiles/part_errors_test.dir/part/errors_test.cpp.o.d"
  "part_errors_test"
  "part_errors_test.pdb"
  "part_errors_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/part_errors_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
