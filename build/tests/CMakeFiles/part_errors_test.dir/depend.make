# Empty dependencies file for part_errors_test.
# This may be replaced when dependencies are built.
