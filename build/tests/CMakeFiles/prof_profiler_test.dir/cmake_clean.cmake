file(REMOVE_RECURSE
  "CMakeFiles/prof_profiler_test.dir/prof/profiler_test.cpp.o"
  "CMakeFiles/prof_profiler_test.dir/prof/profiler_test.cpp.o.d"
  "prof_profiler_test"
  "prof_profiler_test.pdb"
  "prof_profiler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prof_profiler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
