# Empty dependencies file for verbs_isolation_test.
# This may be replaced when dependencies are built.
