file(REMOVE_RECURSE
  "CMakeFiles/verbs_isolation_test.dir/verbs/isolation_test.cpp.o"
  "CMakeFiles/verbs_isolation_test.dir/verbs/isolation_test.cpp.o.d"
  "verbs_isolation_test"
  "verbs_isolation_test.pdb"
  "verbs_isolation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verbs_isolation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
