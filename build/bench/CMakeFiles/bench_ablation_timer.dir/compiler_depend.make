# Empty compiler generated dependencies file for bench_ablation_timer.
# This may be replaced when dependencies are built.
