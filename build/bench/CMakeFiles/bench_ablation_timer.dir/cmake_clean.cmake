file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_timer.dir/bench_ablation_timer.cpp.o"
  "CMakeFiles/bench_ablation_timer.dir/bench_ablation_timer.cpp.o.d"
  "bench_ablation_timer"
  "bench_ablation_timer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_timer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
