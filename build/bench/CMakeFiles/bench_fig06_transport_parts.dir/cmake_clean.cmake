file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_transport_parts.dir/bench_fig06_transport_parts.cpp.o"
  "CMakeFiles/bench_fig06_transport_parts.dir/bench_fig06_transport_parts.cpp.o.d"
  "bench_fig06_transport_parts"
  "bench_fig06_transport_parts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_transport_parts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
