# Empty compiler generated dependencies file for bench_fig06_transport_parts.
# This may be replaced when dependencies are built.
