# Empty dependencies file for bench_fig03_model.
# This may be replaced when dependencies are built.
