file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_perceived_bw.dir/bench_fig09_perceived_bw.cpp.o"
  "CMakeFiles/bench_fig09_perceived_bw.dir/bench_fig09_perceived_bw.cpp.o.d"
  "bench_fig09_perceived_bw"
  "bench_fig09_perceived_bw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_perceived_bw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
