# Empty compiler generated dependencies file for bench_fig09_perceived_bw.
# This may be replaced when dependencies are built.
