file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_optimal_tp.dir/bench_table1_optimal_tp.cpp.o"
  "CMakeFiles/bench_table1_optimal_tp.dir/bench_table1_optimal_tp.cpp.o.d"
  "bench_table1_optimal_tp"
  "bench_table1_optimal_tp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_optimal_tp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
