file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_11_arrival.dir/bench_fig10_11_arrival.cpp.o"
  "CMakeFiles/bench_fig10_11_arrival.dir/bench_fig10_11_arrival.cpp.o.d"
  "bench_fig10_11_arrival"
  "bench_fig10_11_arrival.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_11_arrival.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
