# Empty compiler generated dependencies file for bench_fig08_aggregators.
# This may be replaced when dependencies are built.
