file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_aggregators.dir/bench_fig08_aggregators.cpp.o"
  "CMakeFiles/bench_fig08_aggregators.dir/bench_fig08_aggregators.cpp.o.d"
  "bench_fig08_aggregators"
  "bench_fig08_aggregators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_aggregators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
