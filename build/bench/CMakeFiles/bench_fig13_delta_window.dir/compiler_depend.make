# Empty compiler generated dependencies file for bench_fig13_delta_window.
# This may be replaced when dependencies are built.
