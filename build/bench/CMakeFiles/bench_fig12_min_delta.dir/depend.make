# Empty dependencies file for bench_fig12_min_delta.
# This may be replaced when dependencies are built.
