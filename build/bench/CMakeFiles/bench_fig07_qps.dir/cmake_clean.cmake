file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_qps.dir/bench_fig07_qps.cpp.o"
  "CMakeFiles/bench_fig07_qps.dir/bench_fig07_qps.cpp.o.d"
  "bench_fig07_qps"
  "bench_fig07_qps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_qps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
