# Empty dependencies file for bench_fig07_qps.
# This may be replaced when dependencies are built.
