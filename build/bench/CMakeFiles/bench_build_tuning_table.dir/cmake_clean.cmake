file(REMOVE_RECURSE
  "CMakeFiles/bench_build_tuning_table.dir/bench_build_tuning_table.cpp.o"
  "CMakeFiles/bench_build_tuning_table.dir/bench_build_tuning_table.cpp.o.d"
  "bench_build_tuning_table"
  "bench_build_tuning_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_build_tuning_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
