# Empty dependencies file for bench_build_tuning_table.
# This may be replaced when dependencies are built.
