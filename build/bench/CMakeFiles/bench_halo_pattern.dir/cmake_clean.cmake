file(REMOVE_RECURSE
  "CMakeFiles/bench_halo_pattern.dir/bench_halo_pattern.cpp.o"
  "CMakeFiles/bench_halo_pattern.dir/bench_halo_pattern.cpp.o.d"
  "bench_halo_pattern"
  "bench_halo_pattern.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_halo_pattern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
