# Empty dependencies file for bench_halo_pattern.
# This may be replaced when dependencies are built.
