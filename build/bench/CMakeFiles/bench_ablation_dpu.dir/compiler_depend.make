# Empty compiler generated dependencies file for bench_ablation_dpu.
# This may be replaced when dependencies are built.
