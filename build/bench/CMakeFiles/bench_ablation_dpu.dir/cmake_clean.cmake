file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_dpu.dir/bench_ablation_dpu.cpp.o"
  "CMakeFiles/bench_ablation_dpu.dir/bench_ablation_dpu.cpp.o.d"
  "bench_ablation_dpu"
  "bench_ablation_dpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_dpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
