file(REMOVE_RECURSE
  "CMakeFiles/bench_netgauge_probe.dir/bench_netgauge_probe.cpp.o"
  "CMakeFiles/bench_netgauge_probe.dir/bench_netgauge_probe.cpp.o.d"
  "bench_netgauge_probe"
  "bench_netgauge_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_netgauge_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
