# Empty compiler generated dependencies file for bench_netgauge_probe.
# This may be replaced when dependencies are built.
