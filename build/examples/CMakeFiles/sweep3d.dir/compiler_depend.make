# Empty compiler generated dependencies file for sweep3d.
# This may be replaced when dependencies are built.
