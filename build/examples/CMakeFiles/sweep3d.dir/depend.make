# Empty dependencies file for sweep3d.
# This may be replaced when dependencies are built.
