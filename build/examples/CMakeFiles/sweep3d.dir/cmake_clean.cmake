file(REMOVE_RECURSE
  "CMakeFiles/sweep3d.dir/sweep3d.cpp.o"
  "CMakeFiles/sweep3d.dir/sweep3d.cpp.o.d"
  "sweep3d"
  "sweep3d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sweep3d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
