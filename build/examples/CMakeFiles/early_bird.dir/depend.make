# Empty dependencies file for early_bird.
# This may be replaced when dependencies are built.
