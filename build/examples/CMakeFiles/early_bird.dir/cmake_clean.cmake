file(REMOVE_RECURSE
  "CMakeFiles/early_bird.dir/early_bird.cpp.o"
  "CMakeFiles/early_bird.dir/early_bird.cpp.o.d"
  "early_bird"
  "early_bird.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/early_bird.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
