# Empty compiler generated dependencies file for receive_side.
# This may be replaced when dependencies are built.
