file(REMOVE_RECURSE
  "CMakeFiles/receive_side.dir/receive_side.cpp.o"
  "CMakeFiles/receive_side.dir/receive_side.cpp.o.d"
  "receive_side"
  "receive_side.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/receive_side.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
