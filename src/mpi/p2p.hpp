// Two-sided eager point-to-point messaging over verbs SEND/RECV.
//
// The partitioned runtime needs no two-sided traffic (its handshake rides
// the control plane), but a mini-MPI substrate without send/recv would be
// a strange thing to hand a downstream user, and it exercises the verbs
// SEND path end to end.  Design: one RC QP pair per connected rank pair,
// created lazily through the control plane; the receiver keeps a pool of
// bounce-buffer slots pre-posted as recv WRs (classic eager protocol);
// each message carries an 8-byte header (tag, sequence) in front of the
// payload; matching is ordered per (source, tag) with an
// unexpected-message queue, wildcards deliberately unsupported.
//
// Eager-only: messages larger than the slot size are rejected
// (kResourceExhausted) rather than silently falling back to a rendezvous
// this substrate does not need.
// Thread-safety (ROADMAP item 1, threaded runtime PR): all matching and
// slot state is guarded by the annotated `mu_` (PARTIB_GUARDED_BY, checked
// under PARTIB_THREAD_SAFETY=ON), user completion callbacks are invoked
// *outside* the lock (they may legally re-enter send/recv — the Mutex is
// non-recursive), and the progress-coalescing flag is an atomic exchange
// so concurrent CQ notifications schedule exactly one progress event.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "common/mutex.hpp"
#include "common/status.hpp"
#include "common/thread_annotations.hpp"
#include "common/units.hpp"
#include "mpi/world.hpp"
#include "verbs/verbs.hpp"

namespace partib::mpi {

class P2pEndpoint {
 public:
  /// Called when a receive completes: (payload size).
  using RecvDone = std::function<void(std::size_t)>;
  /// Called when a send completes locally (buffer reusable).
  using SendDone = std::function<void()>;

  static constexpr std::size_t kEagerLimit = 64 * KiB;

  explicit P2pEndpoint(Rank& rank);
  ~P2pEndpoint();
  P2pEndpoint(const P2pEndpoint&) = delete;
  P2pEndpoint& operator=(const P2pEndpoint&) = delete;

  /// Eager send of `data` to `dst` with `tag`.  The data is staged into a
  /// bounce slot immediately, so the user buffer is reusable on return;
  /// `done` (optional) fires when the wire-level send completes.
  Status send(int dst, int tag, std::span<const std::byte> data,
              SendDone done = nullptr);

  /// Post a receive for (src, tag) into `buffer`.  `done` fires with the
  /// actual payload size once matched and copied.  Messages that arrived
  /// early are matched immediately from the unexpected queue.
  Status recv(int src, int tag, std::span<std::byte> buffer, RecvDone done);

  // -- introspection ----------------------------------------------------------
  int rank_id() const { return rank_.id(); }
  int world_size() const { return rank_.world().size(); }
  /// Run `fn` from a fresh engine event (used by collectives to keep
  /// zero-rank cases asynchronous like every other completion).
  void defer(std::function<void()> fn) {
    rank_.world().engine().schedule_after(0, std::move(fn));
  }
  std::size_t unexpected_count() const;
  std::size_t pending_recvs() const;
  std::uint64_t sends_completed() const {
    return sends_completed_.load(std::memory_order_relaxed);
  }
  std::uint64_t recvs_completed() const {
    return recvs_completed_.load(std::memory_order_relaxed);
  }

  // Internal (control-plane entries).
  void on_connect_request(int peer, std::uint32_t peer_qp_num);
  void on_connect_ack(int peer, std::uint32_t peer_qp_num);
  void on_connect_poke(int peer);
  void on_credit(int peer);

  static constexpr std::size_t kRecvSlotsPerPeer = 8;

 private:
  struct Header {
    std::uint32_t tag = 0;
    std::uint32_t size = 0;  // payload bytes (excluding header)
  };
  static constexpr std::size_t kSlotBytes = kEagerLimit + sizeof(Header);
  static constexpr std::size_t kTotalSlots = 256;

  /// A send staged while the peer was unconnected or uncredited.  Plain
  /// data, not a closure: flush replays it under `mu_` through the
  /// REQUIRES-annotated send_now, which a captured lambda body could not
  /// express to the thread-safety analysis.
  struct DeferredSend {
    int tag = 0;
    std::vector<std::byte> copy;
    SendDone done;
  };

  struct Peer {
    verbs::Qp* qp = nullptr;
    bool connected = false;
    bool connect_initiated = false;
    int send_credits = 0;  ///< remote recv slots we may still consume
    std::deque<DeferredSend> deferred_sends;
  };

  struct PendingRecv {
    std::span<std::byte> buffer;
    RecvDone done;
  };

  Rank& rank_;
  verbs::Cq* cq_;
  std::vector<std::byte> arena_;  // slot pool, registered once
  verbs::Mr* arena_mr_ = nullptr;

  /// Guards every piece of matching/slot/connection state below.  User
  /// callbacks never run under it (see file comment).
  mutable common::Mutex mu_{"mpi.p2p"};
  std::vector<std::size_t> free_slots_
      PARTIB_GUARDED_BY(mu_);  // offsets into arena_
  std::map<int, Peer> peers_ PARTIB_GUARDED_BY(mu_);
  // Matching state: ordered queues per (src, tag).
  std::map<std::pair<int, int>, std::deque<PendingRecv>> posted_
      PARTIB_GUARDED_BY(mu_);
  std::map<std::pair<int, int>, std::deque<std::vector<std::byte>>>
      unexpected_ PARTIB_GUARDED_BY(mu_);
  std::atomic<std::uint64_t> sends_completed_{0};
  std::atomic<std::uint64_t> recvs_completed_{0};
  /// Progress-coalescing flag: exchange(true) so exactly one progress
  /// event is in flight however many CQ pushes race on it.
  std::atomic<bool> progress_scheduled_{false};
  std::uint64_t next_wr_id_ PARTIB_GUARDED_BY(mu_) = 1;
  // In-flight send slots: wr_id -> (slot offset, completion).
  std::map<std::uint64_t, std::pair<std::size_t, SendDone>> inflight_sends_
      PARTIB_GUARDED_BY(mu_);
  // Posted recv slots: wr_id -> (peer, slot offset).
  std::map<std::uint64_t, std::pair<int, std::size_t>> recv_slot_of_wr_
      PARTIB_GUARDED_BY(mu_);

  Peer& peer_state(int peer) PARTIB_REQUIRES(mu_);
  void connect(int peer) PARTIB_REQUIRES(mu_);
  verbs::Qp& make_qp();
  void allocate_and_post_recv_slots(int peer) PARTIB_REQUIRES(mu_);
  void post_recv_slot(int peer, std::size_t offset) PARTIB_REQUIRES(mu_);
  std::size_t take_slot() PARTIB_REQUIRES(mu_);
  void send_now(int dst, int tag, std::span<const std::byte> data,
                SendDone done) PARTIB_REQUIRES(mu_);
  void flush_deferred(int peer) PARTIB_REQUIRES(mu_);
  void schedule_progress();
  void progress();
  /// Match one landed message.  Out-of-lock completion callbacks are
  /// appended to `fired`; the caller invokes them after releasing mu_.
  void deliver(int peer, const verbs::Wc& wc, std::size_t slot_offset,
               std::vector<std::function<void()>>& fired)
      PARTIB_REQUIRES(mu_);
};

}  // namespace partib::mpi
