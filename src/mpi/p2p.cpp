#include "mpi/p2p.hpp"

#include <cstring>
#include <utility>

#include "common/assert.hpp"
#include "common/bits.hpp"

namespace partib::mpi {

namespace {

// The lower rank id always initiates connection setup, so simultaneous
// dial attempts can never race.
bool initiates(int me, int peer) { return me < peer; }

}  // namespace

P2pEndpoint::P2pEndpoint(Rank& rank)
    : rank_(rank), arena_(kTotalSlots * kSlotBytes) {
  cq_ = &rank_.context().create_cq(1 << 16);
  cq_->set_on_push([this] { schedule_progress(); });
  arena_mr_ = &rank_.pd().register_mr(
      arena_, verbs::kLocalWrite | verbs::kLocalRead);
  common::MutexLock lock(mu_);
  free_slots_.reserve(kTotalSlots);
  for (std::size_t i = 0; i < kTotalSlots; ++i) {
    free_slots_.push_back(i * kSlotBytes);
  }
  rank_.set_p2p(this);
}

P2pEndpoint::~P2pEndpoint() {
  cq_->set_on_push(nullptr);
  rank_.set_p2p(nullptr);
}

P2pEndpoint::Peer& P2pEndpoint::peer_state(int peer) {
  return peers_[peer];
}

verbs::Qp& P2pEndpoint::make_qp() {
  verbs::QpCaps caps;
  caps.max_send_wr = 64;  // software endpoint, not the RDMA-WR-limited path
  caps.max_recv_wr = static_cast<int>(kRecvSlotsPerPeer) * 2;
  return rank_.pd().create_qp(*cq_, *cq_, caps);
}

void P2pEndpoint::connect(int peer) {
  Peer& p = peer_state(peer);
  if (p.connected || p.connect_initiated) return;
  p.connect_initiated = true;
  World& world = rank_.world();
  const int me = rank_.id();
  if (initiates(me, peer)) {
    p.qp = &make_qp();
    PARTIB_ASSERT(ok(p.qp->to_init()));
    const std::uint32_t qpn = p.qp->qp_num();
    P2pEndpoint* remote_ep = world.rank(peer).p2p();
    PARTIB_ASSERT_MSG(remote_ep != nullptr,
                      "peer rank has no P2pEndpoint");
    // send_control only schedules; the remote entry point runs from a
    // later engine event with no lock held here.
    world.send_control(me, peer, [remote_ep, me, qpn] {
      remote_ep->on_connect_request(me, qpn);
    });
  } else {
    // Poke the lower rank to dial us.
    P2pEndpoint* remote_ep = world.rank(peer).p2p();
    PARTIB_ASSERT_MSG(remote_ep != nullptr,
                      "peer rank has no P2pEndpoint");
    world.send_control(me, peer,
                       [remote_ep, me] { remote_ep->on_connect_poke(me); });
  }
}

void P2pEndpoint::on_connect_poke(int peer) {
  common::MutexLock lock(mu_);
  connect(peer);
}

void P2pEndpoint::on_connect_request(int peer, std::uint32_t peer_qp_num) {
  common::MutexLock lock(mu_);
  Peer& p = peer_state(peer);
  PARTIB_ASSERT(!p.connected);
  p.qp = &make_qp();
  PARTIB_ASSERT(ok(p.qp->to_init()));
  PARTIB_ASSERT(ok(p.qp->to_rtr(peer_qp_num)));
  PARTIB_ASSERT(ok(p.qp->to_rts()));
  allocate_and_post_recv_slots(peer);
  p.connected = true;
  p.send_credits = static_cast<int>(kRecvSlotsPerPeer);
  const std::uint32_t qpn = p.qp->qp_num();
  const int me = rank_.id();
  P2pEndpoint* remote_ep = rank_.world().rank(peer).p2p();
  rank_.world().send_control(me, peer, [remote_ep, me, qpn] {
    remote_ep->on_connect_ack(me, qpn);
  });
  flush_deferred(peer);
}

void P2pEndpoint::on_connect_ack(int peer, std::uint32_t peer_qp_num) {
  common::MutexLock lock(mu_);
  Peer& p = peer_state(peer);
  PARTIB_ASSERT(p.qp != nullptr && !p.connected);
  PARTIB_ASSERT(ok(p.qp->to_rtr(peer_qp_num)));
  PARTIB_ASSERT(ok(p.qp->to_rts()));
  allocate_and_post_recv_slots(peer);
  p.connected = true;
  p.send_credits = static_cast<int>(kRecvSlotsPerPeer);
  flush_deferred(peer);
}

std::size_t P2pEndpoint::take_slot() {
  PARTIB_ASSERT_MSG(!free_slots_.empty(), "p2p slot arena exhausted");
  const std::size_t offset = free_slots_.back();
  free_slots_.pop_back();
  return offset;
}

void P2pEndpoint::allocate_and_post_recv_slots(int peer) {
  for (std::size_t i = 0; i < kRecvSlotsPerPeer; ++i) {
    post_recv_slot(peer, take_slot());
  }
}

void P2pEndpoint::post_recv_slot(int peer, std::size_t offset) {
  Peer& p = peer_state(peer);
  verbs::RecvWr wr;
  wr.wr_id = next_wr_id_++;
  wr.sg_list.push_back(verbs::Sge{
      wire_addr(arena_.data() + offset),
      static_cast<std::uint32_t>(kSlotBytes), arena_mr_->lkey()});
  PARTIB_ASSERT(ok(p.qp->post_recv(wr)));
  recv_slot_of_wr_[wr.wr_id] = {peer, offset};
}

Status P2pEndpoint::send(int dst, int tag, std::span<const std::byte> data,
                         SendDone done) {
  if (dst < 0 || dst >= rank_.world().size() || dst == rank_.id() ||
      tag < 0) {
    return Status::kInvalidArgument;
  }
  if (data.size() > kEagerLimit) return Status::kResourceExhausted;
  common::MutexLock lock(mu_);
  connect(dst);
  Peer& p = peer_state(dst);
  if (!p.connected || p.send_credits == 0) {
    // Stage a copy now (eager semantics: the caller's buffer is reusable
    // on return) and dispatch once connected / credited.
    p.deferred_sends.push_back(DeferredSend{
        tag, std::vector<std::byte>(data.begin(), data.end()),
        std::move(done)});
    return Status::kOk;
  }
  send_now(dst, tag, data, std::move(done));
  return Status::kOk;
}

void P2pEndpoint::send_now(int dst, int tag,
                           std::span<const std::byte> data, SendDone done) {
  Peer& p = peer_state(dst);
  PARTIB_ASSERT(p.connected && p.send_credits > 0);
  --p.send_credits;
  const std::size_t offset = take_slot();
  Header header;
  header.tag = static_cast<std::uint32_t>(tag);
  header.size = static_cast<std::uint32_t>(data.size());
  std::memcpy(arena_.data() + offset, &header, sizeof(header));
  if (!data.empty()) {
    std::memcpy(arena_.data() + offset + sizeof(header), data.data(),
                data.size());
  }
  verbs::SendWr wr;
  wr.wr_id = next_wr_id_++;
  wr.opcode = verbs::Opcode::kSend;
  wr.sg_list.push_back(verbs::Sge{
      wire_addr(arena_.data() + offset),
      static_cast<std::uint32_t>(sizeof(header) + data.size()),
      arena_mr_->lkey()});
  PARTIB_ASSERT(ok(p.qp->post_send(wr)));
  inflight_sends_[wr.wr_id] = {offset, std::move(done)};
}

Status P2pEndpoint::recv(int src, int tag, std::span<std::byte> buffer,
                         RecvDone done) {
  if (src < 0 || src >= rank_.world().size() || src == rank_.id() ||
      tag < 0) {
    return Status::kInvalidArgument;  // wildcards unsupported, as ever
  }
  const auto key = std::make_pair(src, tag);
  common::MutexLock lock(mu_);
  auto uit = unexpected_.find(key);
  if (uit != unexpected_.end() && !uit->second.empty()) {
    std::vector<std::byte> payload = std::move(uit->second.front());
    uit->second.pop_front();
    if (uit->second.empty()) unexpected_.erase(uit);
    PARTIB_ASSERT_MSG(payload.size() <= buffer.size(),
                      "receive buffer too small (truncation is erroneous)");
    if (!payload.empty()) {
      std::memcpy(buffer.data(), payload.data(), payload.size());
    }
    recvs_completed_.fetch_add(1, std::memory_order_relaxed);
    const std::size_t n = payload.size();
    // Already asynchronous: the callback fires from a fresh engine event,
    // never under mu_.
    rank_.world().engine().schedule_after(
        0, [done = std::move(done), n] { done(n); });
    return Status::kOk;
  }
  posted_[key].push_back(PendingRecv{buffer, std::move(done)});
  return Status::kOk;
}

void P2pEndpoint::flush_deferred(int peer) {
  Peer& p = peer_state(peer);
  while (!p.deferred_sends.empty() && p.connected && p.send_credits > 0) {
    DeferredSend d = std::move(p.deferred_sends.front());
    p.deferred_sends.pop_front();
    send_now(peer, d.tag, d.copy, std::move(d.done));
  }
}

void P2pEndpoint::on_credit(int peer) {
  common::MutexLock lock(mu_);
  Peer& p = peer_state(peer);
  ++p.send_credits;
  flush_deferred(peer);
}

void P2pEndpoint::schedule_progress() {
  // exchange, not test-and-store: two racing CQ notifications must fold
  // into exactly one scheduled progress event (the pre-threaded code's
  // check-then-set was the race seed ISSUE 7 calls out).
  if (progress_scheduled_.exchange(true, std::memory_order_acq_rel)) return;
  rank_.world().engine().schedule_after(0, [this] {
    progress_scheduled_.store(false, std::memory_order_release);
    progress();
  });
}

void P2pEndpoint::progress() {
  // Completion callbacks collected under the lock, invoked after it: a
  // done callback may re-enter send()/recv() (non-recursive Mutex), and
  // holding a lock across user code is how lock-order cycles start.
  std::vector<std::function<void()>> fired;
  {
    common::MutexLock lock(mu_);
    verbs::Wc wcs[16];
    int n;
    while ((n = cq_->poll(std::span<verbs::Wc>(wcs))) > 0) {
      for (int i = 0; i < n; ++i) {
        const verbs::Wc& wc = wcs[i];
        PARTIB_ASSERT_MSG(wc.status == verbs::WcStatus::kSuccess,
                          to_string(wc.status));
        if (wc.opcode == verbs::WcOpcode::kSend) {
          auto it = inflight_sends_.find(wc.wr_id);
          PARTIB_ASSERT(it != inflight_sends_.end());
          free_slots_.push_back(it->second.first);
          SendDone done = std::move(it->second.second);
          inflight_sends_.erase(it);
          sends_completed_.fetch_add(1, std::memory_order_relaxed);
          if (done) fired.push_back(std::move(done));
        } else {
          PARTIB_ASSERT(wc.opcode == verbs::WcOpcode::kRecv);
          auto it = recv_slot_of_wr_.find(wc.wr_id);
          PARTIB_ASSERT(it != recv_slot_of_wr_.end());
          const auto [peer, offset] = it->second;
          recv_slot_of_wr_.erase(it);
          deliver(peer, wc, offset, fired);
        }
      }
    }
  }
  for (auto& fn : fired) fn();
}

void P2pEndpoint::deliver(int peer, const verbs::Wc& wc,
                          std::size_t slot_offset,
                          std::vector<std::function<void()>>& fired) {
  Header header;
  PARTIB_ASSERT(wc.byte_len >= sizeof(header));
  std::memcpy(&header, arena_.data() + slot_offset, sizeof(header));
  PARTIB_ASSERT(wc.byte_len == sizeof(header) + header.size);
  const std::byte* payload = arena_.data() + slot_offset + sizeof(header);

  const auto key = std::make_pair(peer, static_cast<int>(header.tag));
  auto pit = posted_.find(key);
  if (pit != posted_.end() && !pit->second.empty()) {
    PendingRecv pending = std::move(pit->second.front());
    pit->second.pop_front();
    if (pit->second.empty()) posted_.erase(pit);
    PARTIB_ASSERT_MSG(header.size <= pending.buffer.size(),
                      "receive buffer too small (truncation is erroneous)");
    if (header.size > 0) {
      std::memcpy(pending.buffer.data(), payload, header.size);
    }
    recvs_completed_.fetch_add(1, std::memory_order_relaxed);
    const std::size_t n = header.size;
    fired.push_back(
        [done = std::move(pending.done), n] { done(n); });
  } else {
    unexpected_[key].emplace_back(payload, payload + header.size);
  }

  // The slot is drained: re-post it and return a credit to the sender.
  post_recv_slot(peer, slot_offset);
  P2pEndpoint* remote_ep = rank_.world().rank(peer).p2p();
  if (remote_ep != nullptr) {
    const int me = rank_.id();
    rank_.world().send_control(rank_.id(), peer, [remote_ep, me] {
      remote_ep->on_credit(me);
    });
  }
}

std::size_t P2pEndpoint::unexpected_count() const {
  common::MutexLock lock(mu_);
  std::size_t n = 0;
  for (const auto& [k, q] : unexpected_) n += q.size();
  return n;
}

std::size_t P2pEndpoint::pending_recvs() const {
  common::MutexLock lock(mu_);
  std::size_t n = 0;
  for (const auto& [k, q] : posted_) n += q.size();
  return n;
}

}  // namespace partib::mpi
