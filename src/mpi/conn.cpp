#include "mpi/conn.hpp"

#include <algorithm>

#include "check/hooks.hpp"
#include "common/assert.hpp"
#include "mpi/world.hpp"

namespace partib::mpi {

// ---------------------------------------------------------------------------
// WcRouter

void WcRouter::bind(std::uint32_t qp_num, Handler h) {
  PARTIB_ASSERT_MSG(!draining_, "bind during drain would invalidate handlers");
  PARTIB_ASSERT(qp_num >= verbs::Device::kFirstQpNum);
  const std::size_t idx = qp_num - verbs::Device::kFirstQpNum;
  if (idx >= handlers_.size()) handlers_.resize(idx + 1);
  PARTIB_ASSERT_MSG(!handlers_[idx], "qp_num already bound");
  handlers_[idx] = std::move(h);
}

void WcRouter::unbind(std::uint32_t qp_num) {
  const std::size_t idx = qp_num - verbs::Device::kFirstQpNum;
  if (qp_num >= verbs::Device::kFirstQpNum && idx < handlers_.size()) {
    handlers_[idx] = nullptr;
  }
}

bool WcRouter::bound(std::uint32_t qp_num) const {
  const std::size_t idx = qp_num - verbs::Device::kFirstQpNum;
  return qp_num >= verbs::Device::kFirstQpNum && idx < handlers_.size() &&
         handlers_[idx] != nullptr;
}

int WcRouter::drain(verbs::Cq& cq) {
  PARTIB_ASSERT_MSG(!draining_, "re-entrant drain");
  draining_ = true;
  // Dispatch straight over the CQ ring instead of copying completions out
  // through poll(): one shared CQ aggregates many QPs' bursts, and the
  // copy it saves pays for the per-Wc handler indirection
  // (BM_SharedCqDemux vs BM_CqPollBurst).  A handler may push into this
  // same CQ (e.g. a flush completion from re-posting to an errored
  // sibling); a push can grow the ring and relocate the run, so stop and
  // re-peek whenever the capacity changes.
  const Handler* const handlers = handlers_.data();
  const std::size_t bound = handlers_.size();
  int routed = 0;
  for (;;) {
    const std::span<const verbs::Wc> run = cq.peek_run();
    if (run.empty()) break;
    const std::size_t cap = cq.ring_capacity();
    std::size_t done = 0;
    while (done < run.size()) {
      const verbs::Wc& wc = run[done];
      const std::size_t idx = wc.qp_num - verbs::Device::kFirstQpNum;
      if (wc.qp_num < verbs::Device::kFirstQpNum || idx >= bound ||
          !handlers[idx]) {
        PARTIB_CHECK_HOOK(on_conn_demux_miss(this, wc.qp_num));
        ++done;
        continue;
      }
      handlers[idx](wc);
      ++routed;
      ++done;
      if (cq.ring_capacity() != cap) break;
    }
    cq.discard(static_cast<int>(done));
  }
  draining_ = false;
  return routed;
}

// ---------------------------------------------------------------------------
// ConnectionManager

namespace {

verbs::Srq& make_srq(Rank& rank, const ConnConfig& cfg) {
  verbs::SrqAttrs attrs;
  attrs.max_wr = std::max(cfg.srq_capacity, 1);
  attrs.srq_limit = std::clamp(cfg.srq_limit, 0, attrs.max_wr - 1);
  return rank.pd().create_srq(attrs);
}

}  // namespace

ConnectionManager::ConnectionManager(Rank& rank, const ConnConfig& cfg)
    : rank_(rank),
      cfg_(cfg),
      cq_(rank.context().create_cq(cfg.cq_depth)),
      srq_(make_srq(rank, cfg)) {
  cq_.set_on_push([this] { schedule_dispatch(); });
  srq_.set_on_limit([this] { schedule_refill(); });
}

ConnectionManager::~ConnectionManager() = default;

void ConnectionManager::bind(std::uint32_t qp_num, WcRouter::Handler h) {
  router_.bind(qp_num, std::move(h));
}

void ConnectionManager::unbind(std::uint32_t qp_num) {
  router_.unbind(qp_num);
}

void ConnectionManager::reserve_recv_wrs(std::size_t n) {
  reserve_target_ += n;
  if (reserve_target_ > static_cast<std::size_t>(srq_.attrs().max_wr)) {
    // Demand outran the provisioning floor: grow the SRQ (keeping the bound
    // above the armed limit, which resize() rejects crossing).
    const int want = std::max<int>(static_cast<int>(reserve_target_),
                                   srq_.attrs().srq_limit + 1);
    PARTIB_ASSERT(ok(srq_.resize(want)));
  }
  refill_srq();
}

void ConnectionManager::release_recv_wrs(std::size_t n) {
  PARTIB_ASSERT(n <= reserve_target_);
  reserve_target_ -= n;
}

ConnectionManager::ConnId ConnectionManager::connect(int peer, int qp_count,
                                                     std::uint64_t token,
                                                     Ready on_ready) {
  PARTIB_ASSERT(peer >= 0 && peer != rank_.id());
  Connection& conn = acquire_slot(peer, qp_count);
  conn.peer = peer;
  conn.leased = true;
  touch(conn);
  pending_ready_[conn.id] = std::move(on_ready);

  std::vector<std::uint32_t> qp_nums;
  qp_nums.reserve(conn.qps.size());
  for (verbs::Qp* qp : conn.qps) qp_nums.push_back(qp->qp_num());

  ConnectionManager* peer_mgr = &rank_.world().rank(peer).connections();
  const int from = rank_.id();
  const ConnId origin = conn.id;
  rank_.world().send_control(
      from, peer, [peer_mgr, from, token, qp_nums, origin] {
        peer_mgr->on_connect_request(from, token, qp_nums, origin);
      });
  return conn.id;
}

void ConnectionManager::release(ConnId id) {
  Connection& conn = connection(id);
  PARTIB_ASSERT(conn.leased);
  for (verbs::Qp* qp : conn.qps) router_.unbind(qp->qp_num());
  conn.leased = false;
  touch(conn);
}

void ConnectionManager::note_posted(ConnId id, std::size_t bytes) {
  Connection& conn = connection(id);
  conn.stats.bytes += bytes;
  total_bytes_ += bytes;
  touch(conn);
}

ConnectionManager::Connection& ConnectionManager::connection(ConnId id) {
  PARTIB_ASSERT(id >= 0 && id < static_cast<ConnId>(conns_.size()));
  return *conns_[static_cast<std::size_t>(id)];
}

void ConnectionManager::expect(std::uint64_t token, Ready on_accept) {
  PARTIB_ASSERT_MSG(expected_.find(token) == expected_.end(),
                    "token already expected");
  expected_[token] = std::move(on_accept);
}

void ConnectionManager::forget(std::uint64_t token) { expected_.erase(token); }

void ConnectionManager::on_connect_request(
    int from, std::uint64_t token, const std::vector<std::uint32_t>& qp_nums,
    ConnId origin) {
  auto it = expected_.find(token);
  PARTIB_ASSERT_MSG(it != expected_.end(),
                    "connect request for a token nobody expects");
  Ready on_accept = std::move(it->second);
  expected_.erase(it);

  Connection& conn = acquire_slot(from, static_cast<int>(qp_nums.size()));
  conn.peer = from;
  conn.leased = true;
  conn.remote_id = origin;
  for (std::size_t i = 0; i < conn.qps.size(); ++i) {
    PARTIB_ASSERT(ok(conn.qps[i]->to_rtr(qp_nums[i])));
    PARTIB_ASSERT(ok(conn.qps[i]->to_rts()));
  }
  conn.established = true;
  ++conn.stats.establishments;
  ++total_establishments_;
  touch(conn);

  std::vector<std::uint32_t> mine;
  mine.reserve(conn.qps.size());
  for (verbs::Qp* qp : conn.qps) mine.push_back(qp->qp_num());

  ConnectionManager* origin_mgr = &rank_.world().rank(from).connections();
  const ConnId remote_id = conn.id;
  rank_.world().send_control(
      rank_.id(), from, [origin_mgr, origin, mine, remote_id] {
        origin_mgr->on_connect_reply(origin, mine, remote_id);
      });
  on_accept(conn);
}

void ConnectionManager::on_connect_reply(
    ConnId local, const std::vector<std::uint32_t>& qp_nums,
    ConnId remote_id) {
  Connection& conn = connection(local);
  PARTIB_ASSERT(qp_nums.size() == conn.qps.size());
  conn.remote_id = remote_id;
  for (std::size_t i = 0; i < conn.qps.size(); ++i) {
    PARTIB_ASSERT(ok(conn.qps[i]->to_rtr(qp_nums[i])));
    PARTIB_ASSERT(ok(conn.qps[i]->to_rts()));
  }
  conn.established = true;
  ++conn.stats.establishments;
  ++total_establishments_;
  touch(conn);

  auto it = pending_ready_.find(local);
  PARTIB_ASSERT(it != pending_ready_.end());
  Ready on_ready = std::move(it->second);
  pending_ready_.erase(it);
  on_ready(conn);
}

void ConnectionManager::on_disconnect(ConnId local) {
  Connection& conn = connection(local);
  if (!conn.established) return;
  for (verbs::Qp* qp : conn.qps) {
    router_.unbind(qp->qp_num());
    PARTIB_ASSERT_MSG(qp->outstanding_send_wrs() == 0,
                      "disconnect with WRs in flight");
    if (qp->state() != verbs::QpState::kReset) {
      PARTIB_ASSERT(ok(qp->to_reset()));
    }
  }
  conn.established = false;
  conn.remote_id = kNilConn;
}

int ConnectionManager::established_connections() const {
  int n = 0;
  for (const auto& c : conns_) n += c->established ? 1 : 0;
  return n;
}

ConnectionManager::Connection& ConnectionManager::acquire_slot(int peer,
                                                               int qp_count) {
  // 1. Reuse a slot whose previous connection was already torn down.
  for (auto& c : conns_) {
    if (!c->established && !c->leased) {
      prepare_qps(*c, qp_count);
      return *c;
    }
  }
  // 2. At the cap: recycle the least-recently-used idle connection.
  const int cap = cfg_.max_connections;
  if (cap > 0 && established_connections() >= cap) {
    Connection* victim = nullptr;
    for (auto& c : conns_) {
      if (c->established && !c->leased &&
          (victim == nullptr || c->last_use < victim->last_use)) {
        victim = c.get();
      }
    }
    if (victim != nullptr) {
      recycle(*victim);
      prepare_qps(*victim, qp_count);
      return *victim;
    }
    // Every established connection is leased: a soft cap proceeds anyway
    // and the checker records the overshoot.
    PARTIB_CHECK_HOOK(
        on_conn_over_cap(this, established_connections(), cap));
  }
  // 3. Fresh slot.
  auto conn = std::make_unique<Connection>();
  conn->id = static_cast<ConnId>(conns_.size());
  conn->peer = peer;
  conns_.push_back(std::move(conn));
  prepare_qps(*conns_.back(), qp_count);
  return *conns_.back();
}

void ConnectionManager::recycle(Connection& conn) {
  PARTIB_ASSERT(conn.established && !conn.leased);
  // Tell the peer so its half of the chain is reset and freed too.
  if (conn.remote_id != kNilConn) {
    ConnectionManager* peer_mgr =
        &rank_.world().rank(conn.peer).connections();
    const ConnId remote_id = conn.remote_id;
    rank_.world().send_control(rank_.id(), conn.peer,
                               [peer_mgr, remote_id] {
                                 peer_mgr->on_disconnect(remote_id);
                               });
  }
  for (verbs::Qp* qp : conn.qps) {
    router_.unbind(qp->qp_num());
    PARTIB_ASSERT_MSG(qp->outstanding_send_wrs() == 0,
                      "recycling a connection with WRs in flight");
    if (qp->state() != verbs::QpState::kReset) {
      PARTIB_ASSERT(ok(qp->to_reset()));
    }
  }
  conn.established = false;
  conn.remote_id = kNilConn;
  ++conn.stats.recycles;
  ++total_recycles_;
}

void ConnectionManager::prepare_qps(Connection& conn, int qp_count) {
  PARTIB_ASSERT(qp_count > 0);
  // Reuse the slot's existing chain members (RESET -> INIT); any extras
  // stay parked in the Pd (the sim has no ibv_destroy_qp, and a parked
  // RESET QP provisions only its send slab).
  if (static_cast<int>(conn.qps.size()) > qp_count) {
    conn.qps.resize(static_cast<std::size_t>(qp_count));
  }
  for (verbs::Qp* qp : conn.qps) {
    if (qp->state() != verbs::QpState::kReset) {
      PARTIB_ASSERT(ok(qp->to_reset()));
    }
    PARTIB_ASSERT(ok(qp->to_init()));
  }
  while (static_cast<int>(conn.qps.size()) < qp_count) {
    verbs::Qp& qp = rank_.pd().create_qp(cq_, cq_, cfg_.qp_caps, &srq_);
    PARTIB_ASSERT(ok(qp.to_init()));
    conn.qps.push_back(&qp);
  }
}

void ConnectionManager::refill_srq() {
  // Top the SRQ back up to the reservation sum.  reserve_recv_wrs grew the
  // capacity bound past the target, so these posts cannot hit max_wr.
  while (srq_.posted() < reserve_target_) {
    verbs::RecvWr wr;
    wr.wr_id = next_recv_wr_id_++;
    PARTIB_ASSERT(ok(srq_.post_recv(wr)));
  }
  // Re-arm the one-shot low-watermark event for the next drain.
  const int limit = std::clamp(cfg_.srq_limit, 0, srq_.attrs().max_wr - 1);
  if (limit > 0) PARTIB_ASSERT(ok(srq_.arm_limit(limit)));
}

void ConnectionManager::schedule_refill() {
  if (refill_scheduled_) return;
  refill_scheduled_ = true;
  rank_.world().engine().schedule_after(
      0,
      [this] {
        refill_scheduled_ = false;
        refill_srq();
      },
      "conn.srq_refill");
}

void ConnectionManager::schedule_dispatch() {
  if (dispatch_scheduled_) return;
  dispatch_scheduled_ = true;
  rank_.world().engine().schedule_after(0, [this] { dispatch(); },
                                        "conn.dispatch");
}

void ConnectionManager::dispatch() {
  dispatch_scheduled_ = false;
  router_.drain(cq_);
  // Completions mean receive WRs were consumed — restock opportunistically
  // so a quiet SRQ never sits below the reservation waiting for the limit
  // event.
  if (srq_.posted() < reserve_target_) refill_srq();
}

void ConnectionManager::touch(Connection& conn) {
  conn.last_use = ++use_clock_;
}

}  // namespace partib::mpi
