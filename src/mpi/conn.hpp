// Connection-scale shared resources: one CQ + one SRQ per rank, and an
// Ibdxnet-style on-demand connection manager over them.
//
// The per-channel design (part/psend.hpp, part/precv.hpp) gives every
// channel private QPs and a private CQ — fine at paper scale, linear in
// peers at incast scale: a 1k-peer fan-in provisions a thousand
// 65536-entry CQs on the hot rank.  Real high-connection-count InfiniBand
// deployments (Ibdxnet, PAPERS.md; rdmalib's
// `Cluster::establish(num_rc, share_cq_with)`, SNIPPETS.md) share receive
// resources instead:
//
//   * every QP the manager creates drains into the rank's single shared
//     CQ and draws receive WRs from the rank's single SRQ;
//   * completions are demultiplexed by wc.qp_num through a dense handler
//     table (WcRouter) — one array load per CQE, preserving the PR 4
//     allocation-free poll path;
//   * QP chains are created lazily, on the first send toward a peer, and
//     recycled LRU through the PR 5 ERROR→RESET→INIT→RTR→RTS machinery
//     when the configured connection cap is hit.
//
// Channels opt in with part::Options::shared_resources; the dedicated
// per-channel path remains the default (and keeps the figure fingerprints
// byte-identical).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "common/status.hpp"
#include "verbs/verbs.hpp"

namespace partib::mpi {

class Rank;

/// Manager knobs, resolved from WorldOptions by Rank::connections().
struct ConnConfig {
  /// Concurrent established-connection cap; 0 = uncapped.  A soft cap:
  /// when no idle connection can be recycled the manager proceeds and
  /// PARTIB_CHECK records rule conn.cap.
  int max_connections = 0;
  /// SRQ provisioning floor; grows with reserve_recv_wrs demand.
  int srq_capacity = 1024;
  /// SRQ low watermark: refills are scheduled when the posted count drops
  /// below it (plus after every dispatch batch).
  int srq_limit = 64;
  int cq_depth = 1 << 16;
  verbs::QpCaps qp_caps{};
};

/// Dense wc.qp_num -> handler table for shared-CQ demultiplexing.
/// qp_nums are device-dense (verbs::Device::kFirstQpNum + index), so the
/// route is a bounds check and one array load — the same cost model as
/// Device::find_qp.  Standalone so BM_SharedCqDemux measures exactly the
/// dispatch the manager runs.
class WcRouter {
 public:
  using Handler = std::function<void(const verbs::Wc&)>;

  void bind(std::uint32_t qp_num, Handler h);
  void unbind(std::uint32_t qp_num);
  bool bound(std::uint32_t qp_num) const;

  /// Drain `cq` in 16-entry bursts, routing each completion to its QP's
  /// handler.  A CQE for an unbound qp_num is dropped (rule conn.demux).
  /// Returns the number of completions routed.
  int drain(verbs::Cq& cq);

 private:
  std::vector<Handler> handlers_;  // index == qp_num - kFirstQpNum
  /// Guards against bind() growing handlers_ under drain's feet (the hot
  /// loop calls through a reference into the table).
  bool draining_ = false;
};

/// Per-connection statistics (tentpole requirement: byte/establishment
/// accounting per connection, aggregated by the manager).
struct ConnStats {
  std::uint64_t establishments = 0;  ///< times this slot reached RTS
  std::uint64_t recycles = 0;        ///< LRU evictions this slot absorbed
  std::uint64_t bytes = 0;           ///< payload bytes posted through it
};

class ConnectionManager {
 public:
  using ConnId = int;
  static constexpr ConnId kNilConn = -1;

  /// One connection slot: a QP chain toward `peer`.  Slots are recycled
  /// in place (stats survive the churn; `peer`/`qps` are rebound).
  struct Connection {
    ConnId id = kNilConn;
    int peer = -1;
    ConnId remote_id = kNilConn;  ///< slot id on the peer's manager
    std::vector<verbs::Qp*> qps;
    bool established = false;
    bool leased = false;  ///< held by a live channel; not recyclable
    std::uint64_t last_use = 0;
    ConnStats stats;
  };

  using Ready = std::function<void(Connection&)>;

  ConnectionManager(Rank& rank, const ConnConfig& cfg);
  ~ConnectionManager();
  ConnectionManager(const ConnectionManager&) = delete;
  ConnectionManager& operator=(const ConnectionManager&) = delete;

  // -- shared resources ------------------------------------------------------
  verbs::Cq& cq() { return cq_; }
  verbs::Srq& srq() { return srq_; }
  WcRouter& router() { return router_; }

  // -- demultiplexing --------------------------------------------------------
  void bind(std::uint32_t qp_num, WcRouter::Handler h);
  void unbind(std::uint32_t qp_num);

  // -- SRQ staging -----------------------------------------------------------
  /// Channels reserve worst-case receive-WR headroom for their lifetime;
  /// the manager keeps the SRQ topped up to the reservation sum (growing
  /// its capacity when demand outruns the configured floor) and refills
  /// after consumption — on the SRQ limit event and after each dispatch.
  void reserve_recv_wrs(std::size_t n);
  void release_recv_wrs(std::size_t n);

  // -- active (sender) side --------------------------------------------------
  /// Lazily establish a `qp_count`-QP chain toward `peer`.  `token` names
  /// the passive side's expect() registration (the channels use the
  /// receiver-request pointer from the ack).  `on_ready` fires — after the
  /// control-plane round trip — with the chain in RTS.  The returned slot
  /// is leased until release().
  ConnId connect(int peer, int qp_count, std::uint64_t token, Ready on_ready);

  /// Drop the lease: the slot stays established (warm) but becomes
  /// recyclable.  Unbinds the chain's router handlers.
  void release(ConnId id);

  /// LRU bump + per-connection byte accounting for one posted WR.
  void note_posted(ConnId id, std::size_t bytes);

  Connection& connection(ConnId id);

  // -- passive (receiver) side -----------------------------------------------
  /// Register `on_accept` for an incoming connect carrying `token`; fires
  /// with this side's chain already in RTS.  The accepted slot is leased.
  void expect(std::uint64_t token, Ready on_accept);
  void forget(std::uint64_t token);

  // -- control-plane entry points (called via World::send_control) -----------
  void on_connect_request(int from, std::uint64_t token,
                          const std::vector<std::uint32_t>& qp_nums,
                          ConnId origin);
  void on_connect_reply(ConnId local, const std::vector<std::uint32_t>& qp_nums,
                        ConnId remote_id);
  void on_disconnect(ConnId local);

  // -- introspection ---------------------------------------------------------
  int established_connections() const;
  std::size_t slot_count() const { return conns_.size(); }
  std::uint64_t total_establishments() const { return total_establishments_; }
  std::uint64_t total_recycles() const { return total_recycles_; }
  std::uint64_t total_bytes() const { return total_bytes_; }
  std::size_t reserved_recv_wrs() const { return reserve_target_; }
  const ConnConfig& config() const { return cfg_; }

 private:
  /// Find or make a free slot: an unestablished one, else the LRU
  /// established+unleased victim (recycled through RESET), else — over
  /// cap, rule conn.cap — a fresh slot.
  Connection& acquire_slot(int peer, int qp_count);
  void recycle(Connection& conn);
  /// Bring conn.qps to exactly `qp_count` chain members in INIT.
  void prepare_qps(Connection& conn, int qp_count);
  void refill_srq();
  void schedule_refill();
  void schedule_dispatch();
  void dispatch();
  void touch(Connection& conn);

  Rank& rank_;
  ConnConfig cfg_;
  verbs::Cq& cq_;
  verbs::Srq& srq_;
  WcRouter router_;
  std::vector<std::unique_ptr<Connection>> conns_;
  std::map<std::uint64_t, Ready> expected_;
  std::map<ConnId, Ready> pending_ready_;
  std::uint64_t use_clock_ = 0;
  std::size_t reserve_target_ = 0;
  std::uint64_t next_recv_wr_id_ = 0;
  std::uint64_t total_establishments_ = 0;
  std::uint64_t total_recycles_ = 0;
  std::uint64_t total_bytes_ = 0;
  bool dispatch_scheduled_ = false;
  bool refill_scheduled_ = false;
};

}  // namespace partib::mpi
