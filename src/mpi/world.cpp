#include "mpi/world.hpp"

#include "mpi/conn.hpp"

namespace partib::mpi {

Rank::Rank(World& world, int id, fabric::NodeId node, verbs::Context& ctx,
           int cores)
    : world_(world),
      id_(id),
      node_(node),
      ctx_(ctx),
      pd_(&ctx.alloc_pd()),
      cpu_(world.engine(), cores),
      doorbell_(world.engine(), 1) {
  if (world.options().dpu_aggregation) {
    dpu_ = std::make_unique<sim::FifoResource>(world.engine(), 1);
  }
}

Rank::~Rank() = default;

ConnectionManager& Rank::connections() {
  if (conn_ == nullptr) {
    const WorldOptions& wo = world_.options();
    ConnConfig cfg;
    cfg.max_connections = wo.conn_max_connections;
    cfg.srq_capacity = wo.conn_srq_capacity;
    cfg.srq_limit = wo.conn_srq_limit;
    cfg.cq_depth = wo.cq_depth;
    conn_ = std::make_unique<ConnectionManager>(*this, cfg);
  }
  return *conn_;
}

World::World(sim::Engine& engine, WorldOptions options)
    : engine_(engine), options_(options) {
  PARTIB_ASSERT(options.ranks > 0);
  fabric_ = std::make_unique<fabric::Fabric>(engine_, options_.nic,
                                             options_.copy_data);
  if (options_.faults.enabled()) {
    fabric_->set_fault_plan(fabric::FaultPlan(options_.faults));
  }
  transport_ = fabric_.get();
  build_ranks();
}

World::World(backend::Backend& backend, WorldOptions options)
    : engine_(backend.engine()), options_(options), backend_(&backend) {
  PARTIB_ASSERT(options.ranks > 0);
  transport_ = &backend.transport();
  // The backend already installed Config::faults at construction; a
  // world-level plan (WorldOptions::faults) overrides it so existing
  // fault tests keep one configuration surface.
  if (options_.faults.enabled()) {
    transport_->set_fault_plan(fabric::FaultPlan(options_.faults));
  }
  build_ranks();
}

void World::build_ranks() {
  device_ = std::make_unique<verbs::Device>(*transport_);
  for (int i = 0; i < options_.ranks; ++i) {
    const fabric::NodeId node = transport_->add_node();
    verbs::Context& ctx = device_->open(node);
    ranks_.push_back(std::make_unique<Rank>(*this, i, node, ctx,
                                            options_.cores_per_rank));
  }
}

void World::send_control(int from, int to, std::function<void()> deliver) {
  PARTIB_ASSERT(from >= 0 && from < size() && to >= 0 && to < size());
  transport_->send_control(rank(from).node(), rank(to).node(),
                           std::move(deliver));
}

}  // namespace partib::mpi
