// The simulated MPI world: one Rank per fabric node.
//
// A Rank bundles everything a partitioned channel needs from its process:
// the verbs context and protection domain, a processor-sharing CPU (so
// oversubscribed thread counts behave like the paper's 128-threads-on-40-
// cores runs), the NIC doorbell (a FIFO resource — the lock whose
// contention aggregation relieves, §V-B2), and the init matcher.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <vector>

#include "backend/backend.hpp"
#include "common/assert.hpp"
#include "fabric/fabric.hpp"
#include "mpi/matcher.hpp"
#include "sim/engine.hpp"
#include "sim/resources.hpp"
#include "verbs/verbs.hpp"

namespace partib::mpi {

class ConnectionManager;
class P2pEndpoint;

struct WorldOptions {
  int ranks = 2;
  fabric::NicParams nic = fabric::NicParams::connectx5_edr();
  /// When false the fabric skips payload memcpy (benchmark mode: only the
  /// virtual timeline matters).  Integrity tests run with true.
  bool copy_data = true;
  /// Niagara nodes have 40 cores (2 x 20-core Skylake).
  int cores_per_rank = 40;
  /// Depth of each request's completion queues.
  int cq_depth = 1 << 16;
  /// Host CPU cost of the Pready fast path before any posting
  /// (atomic add-and-fetch on the transport-partition flag array).
  Duration pready_cpu = nsec(40);

  /// Per-message runtime bookkeeping on the direct-verbs path (WR fill,
  /// flag updates) — runs on the calling thread, outside any lock.
  Duration verbs_sw_per_msg = nsec(250);

  /// Future-work §VI-A: offload aggregation onto a DPU.  When enabled,
  /// verbs-path posting work leaves the host entirely — the calling
  /// thread only flips the arrival flag; a per-rank DPU engine builds and
  /// rings the WR.  The host CPU is freed (visible under
  /// oversubscription), at the price of the DPU hand-off latency.
  bool dpu_aggregation = false;
  Duration dpu_post_overhead = nsec(150);

  /// Deterministic fault injection (fabric/fault.hpp, docs/FAULTS.md).
  /// All rates zero (the default) keeps the data path fault-free and
  /// allocation-identical to a build without the fault plane.
  fabric::FaultPlanConfig faults{};

  /// Connection-scale shared resources (mpi/conn.hpp), consulted by
  /// Rank::connections() on first use.  Channels opt in with
  /// part::Options::shared_resources; conn_max_connections = 0 leaves the
  /// manager uncapped.
  int conn_max_connections = 0;
  int conn_srq_capacity = 1024;
  int conn_srq_limit = 64;
};

class World;

class Rank {
 public:
  Rank(World& world, int id, fabric::NodeId node, verbs::Context& ctx,
       int cores);
  ~Rank();  // out of line: conn_ holds an incomplete ConnectionManager
  Rank(const Rank&) = delete;
  Rank& operator=(const Rank&) = delete;

  int id() const { return id_; }
  fabric::NodeId node() const { return node_; }
  World& world() { return world_; }
  verbs::Context& context() { return ctx_; }
  verbs::Pd& pd() { return *pd_; }
  sim::ProcessorSharingCpu& cpu() { return cpu_; }
  sim::FifoResource& doorbell() { return doorbell_; }
  /// DPU aggregation engine (only when WorldOptions::dpu_aggregation).
  sim::FifoResource* dpu() { return dpu_.get(); }
  InitMatcher& matcher() { return matcher_; }

  /// The rank's two-sided endpoint, if one was created (see mpi/p2p.hpp);
  /// registered by the P2pEndpoint constructor for control-plane routing.
  P2pEndpoint* p2p() { return p2p_; }
  void set_p2p(P2pEndpoint* ep) { p2p_ = ep; }

  /// The rank's shared connection manager (mpi/conn.hpp), created lazily —
  /// ranks running only dedicated per-channel resources never pay for the
  /// shared CQ/SRQ.
  ConnectionManager& connections();
  bool has_connections() const { return conn_ != nullptr; }

 private:
  World& world_;
  int id_;
  fabric::NodeId node_;
  verbs::Context& ctx_;
  verbs::Pd* pd_;
  sim::ProcessorSharingCpu cpu_;
  sim::FifoResource doorbell_;
  std::unique_ptr<sim::FifoResource> dpu_;
  InitMatcher matcher_;
  P2pEndpoint* p2p_ = nullptr;
  std::unique_ptr<ConnectionManager> conn_;
};

class World {
 public:
  /// Classic DES construction: the world builds and owns its own fluid
  /// fabric on `engine`.  Every pre-backend call site uses this form and
  /// its timeline is pinned by the figure fingerprints.
  World(sim::Engine& engine, WorldOptions options);
  /// Backend construction: run over `backend`'s transport and engine
  /// (backend/backend.hpp).  The transport may be the DES fabric, the shm
  /// transport, or anything else satisfying backend::Transport; for
  /// real-time backends the caller pumps Backend::progress /
  /// run_until_idle instead of engine().run().
  World(backend::Backend& backend, WorldOptions options);
  World(const World&) = delete;
  World& operator=(const World&) = delete;

  int size() const { return static_cast<int>(ranks_.size()); }
  Rank& rank(int i) {
    PARTIB_ASSERT(i >= 0 && i < size());
    return *ranks_[static_cast<std::size_t>(i)];
  }

  sim::Engine& engine() { return engine_; }
  backend::Transport& fab() { return *transport_; }
  verbs::Device& device() { return *device_; }
  const WorldOptions& options() const { return options_; }
  /// The backend this world runs over, nullptr for classic DES
  /// construction (where the engine reference is the whole story).
  backend::Backend* backend() { return backend_; }

  /// Out-of-band control message between ranks; `deliver` runs on the
  /// destination after the control-plane latency.
  void send_control(int from, int to, std::function<void()> deliver);

  /// Allocate a communicator context id (monotonic, world-scoped).
  /// Atomic: MPI_THREAD_MULTIPLE producers may create communicators
  /// concurrently (threaded runtime, src/runtime/).
  int next_comm_id() {
    return next_comm_id_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  void build_ranks();

  sim::Engine& engine_;
  WorldOptions options_;
  backend::Backend* backend_ = nullptr;        ///< backend ctor only
  std::unique_ptr<fabric::Fabric> fabric_;     ///< classic ctor only
  backend::Transport* transport_ = nullptr;    ///< always valid
  std::unique_ptr<verbs::Device> device_;
  std::vector<std::unique_ptr<Rank>> ranks_;
  std::atomic<int> next_comm_id_{1};
};

}  // namespace partib::mpi
