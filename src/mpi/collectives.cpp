#include "mpi/collectives.hpp"

#include <cstring>

#include "common/assert.hpp"
#include "common/bits.hpp"

namespace partib::mpi {

namespace {

/// Shared round-driving state for a dissemination-style exchange.
template <typename Step>
struct Rounds : std::enable_shared_from_this<Rounds<Step>> {
  Step step;
  int round = 0;
  int total_rounds;
  Collectives::Done done;

  Rounds(Step s, int rounds, Collectives::Done d)
      : step(std::move(s)), total_rounds(rounds), done(std::move(d)) {}

  void advance() {
    if (round == total_rounds) {
      done();
      return;
    }
    // step(round, next): calls next() when this round's exchange is done.
    const int r = round++;
    step(r, [self = this->shared_from_this()] { self->advance(); });
  }
};

template <typename Step>
void run_rounds(Step step, int rounds, Collectives::Done done) {
  auto state = std::make_shared<Rounds<Step>>(std::move(step), rounds,
                                              std::move(done));
  state->advance();
}

}  // namespace

Status Collectives::barrier(int base_tag, Done done) {
  if (base_tag < 0) return Status::kInvalidArgument;
  const int n = size();
  if (n == 1) {
    ep_.defer(std::move(done));
    return Status::kOk;
  }
  int rounds = 0;
  for (int span = 1; span < n; span *= 2) ++rounds;

  const int me = rank();
  auto step = [this, me, n, base_tag](int r, std::function<void()> next) {
    const int span = 1 << r;
    const int to = (me + span) % n;
    const int from = (me - span % n + n) % n;
    // A zero-byte token each way; the round completes when the incoming
    // token arrives (the outgoing send needs no tracking).
    static std::byte dummy;
    PARTIB_ASSERT(ok(ep_.send(to, base_tag + r, {})));
    PARTIB_ASSERT(ok(ep_.recv(from, base_tag + r,
                              std::span<std::byte>(&dummy, 0),
                              [next = std::move(next)](std::size_t) {
                                next();
                              })));
  };
  run_rounds(std::move(step), rounds, std::move(done));
  return Status::kOk;
}

Status Collectives::broadcast(int root, int base_tag,
                              std::span<std::byte> buffer, Done done) {
  const int n = size();
  if (root < 0 || root >= n || base_tag < 0) return Status::kInvalidArgument;
  if (buffer.size() > P2pEndpoint::kEagerLimit) {
    return Status::kResourceExhausted;
  }
  if (n == 1) {
    ep_.defer(std::move(done));
    return Status::kOk;
  }
  // Rotate so the root is virtual rank 0 in a binomial tree.
  const int me = (rank() - root + n) % n;

  // Virtual rank v receives through its lowest set bit b and forwards to
  // v + span for every power-of-two span < b (the root uses the largest
  // power of two below n), largest span first.
  auto forward = [this, me, n, root, base_tag, buffer,
                  done = std::move(done)]() mutable {
    int start = 1;
    if (me == 0) {
      while (start * 2 < n) start *= 2;
    } else {
      int lsb = 1;
      while ((me & lsb) == 0) lsb <<= 1;
      start = lsb >> 1;
    }
    auto remaining = std::make_shared<int>(0);
    auto fin = std::make_shared<Done>(std::move(done));
    int outstanding = 0;
    for (int span = start; span >= 1; span >>= 1) {
      if (me + span >= n) continue;
      ++outstanding;
      const int to = (me + span + root) % n;
      PARTIB_ASSERT(ok(ep_.send(to, base_tag, buffer, [remaining, fin] {
        if (--*remaining == 0) (*fin)();
      })));
    }
    *remaining = outstanding;
    if (outstanding == 0) ep_.defer([fin] { (*fin)(); });
  };

  if (me == 0) {
    forward();
    return Status::kOk;
  }
  int bit = 1;
  while ((me & bit) == 0) bit <<= 1;
  const int from = (me - bit + root + n) % n;
  PARTIB_ASSERT(ok(ep_.recv(from, base_tag, buffer,
                            [forward = std::move(forward)](std::size_t) mutable {
                              forward();
                            })));
  return Status::kOk;
}

Status Collectives::allreduce_sum(int base_tag, std::span<double> values,
                                  Done done) {
  const int n = size();
  if (base_tag < 0) return Status::kInvalidArgument;
  if (!is_pow2(static_cast<std::size_t>(n))) return Status::kUnsupported;
  if (values.size() * sizeof(double) > P2pEndpoint::kEagerLimit) {
    return Status::kResourceExhausted;
  }
  if (n == 1) {
    ep_.defer(std::move(done));
    return Status::kOk;
  }
  const int me = rank();
  const int rounds = static_cast<int>(log2_floor(static_cast<std::size_t>(n)));
  // Scratch shared across rounds.
  auto incoming = std::make_shared<std::vector<double>>(values.size());

  auto step = [this, me, base_tag, values, incoming](
                  int r, std::function<void()> next) {
    const int partner = me ^ (1 << r);
    auto in_bytes = std::as_writable_bytes(std::span<double>(*incoming));
    PARTIB_ASSERT(ok(ep_.send(partner, base_tag + r,
                              std::as_bytes(values))));
    PARTIB_ASSERT(ok(ep_.recv(partner, base_tag + r, in_bytes,
                              [values, incoming,
                               next = std::move(next)](std::size_t bytes) {
                                PARTIB_ASSERT(bytes ==
                                              values.size() * sizeof(double));
                                for (std::size_t i = 0; i < values.size();
                                     ++i) {
                                  values[i] += (*incoming)[i];
                                }
                                next();
                              })));
  };
  run_rounds(std::move(step), rounds, std::move(done));
  return Status::kOk;
}

}  // namespace partib::mpi
