// Collective operations over the two-sided eager layer.
//
// Classic log-P algorithms, one instance per rank, driven entirely by
// completions (no blocking):
//   * barrier    — dissemination: round k talks to rank +/- 2^k
//   * broadcast  — binomial tree rooted anywhere
//   * allreduce  — recursive doubling (power-of-two communicator sizes)
//
// Tags: each call stamps its messages with (base_tag + round), so
// back-to-back collectives on distinct base tags cannot cross-match.
// Concurrent collectives on the same base tag are erroneous, as in MPI.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "common/status.hpp"
#include "mpi/p2p.hpp"

namespace partib::mpi {

class Collectives {
 public:
  using Done = std::function<void()>;

  explicit Collectives(P2pEndpoint& ep) : ep_(ep) {}

  /// Dissemination barrier; `done` fires when every rank has reached it.
  Status barrier(int base_tag, Done done);

  /// Binomial-tree broadcast of `buffer` from `root`; on non-root ranks
  /// the buffer is overwritten.
  Status broadcast(int root, int base_tag, std::span<std::byte> buffer,
                   Done done);

  /// Recursive-doubling sum-allreduce over doubles.  Requires a
  /// power-of-two rank count (kUnsupported otherwise).
  Status allreduce_sum(int base_tag, std::span<double> values, Done done);

 private:
  P2pEndpoint& ep_;
  int rank() const { return ep_.rank_id(); }
  int size() const { return ep_.world_size(); }
};

}  // namespace partib::mpi
