// Ordered matching of partitioned-channel initialisation.
//
// MPI Partitioned matches Psend_init/Precv_init pairs on
// (source rank, tag, communicator) strictly in posted order, with no
// wildcards (§II-A: avoiding wildcard matching is one of the interface's
// deliberate benefits for threaded codes).  Matching happens once, at
// initialisation — never on the per-partition fast path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <vector>

namespace partib::mpi {

struct MatchKey {
  int peer = 0;  ///< source rank as seen by the receiver
  int tag = 0;
  int comm_id = 0;

  auto operator<=>(const MatchKey&) const = default;
};

/// The handshake record a sender's Psend_init ships to the receiver.
struct SendInit {
  MatchKey key;  ///< key.peer = sender's rank
  std::size_t total_bytes = 0;
  std::size_t user_partitions = 0;
  std::size_t transport_partitions = 0;
  int qp_count = 0;
  std::vector<std::uint32_t> qp_nums;
  /// Opaque sender-side request handle echoed back in the ack path
  /// (in-process simulation: the ack closure resolves it).
  void* sender_request = nullptr;
};

/// Receiver-side matcher: pairs incoming SendInit records with posted
/// Precv_init descriptors, queuing whichever side arrives first.
class InitMatcher {
 public:
  using OnMatch = std::function<void(const SendInit&)>;

  /// A local Precv_init was posted; `on_match` fires (possibly
  /// immediately) when the corresponding Psend_init handshake arrives.
  void post_recv_init(const MatchKey& key, OnMatch on_match);

  /// A remote Psend_init handshake arrived.
  void on_send_init(const SendInit& init);

  std::size_t pending_recvs() const;
  std::size_t unexpected_sends() const;

 private:
  std::map<MatchKey, std::deque<OnMatch>> pending_recv_;
  std::map<MatchKey, std::deque<SendInit>> unexpected_send_;
};

}  // namespace partib::mpi
