// Ordered matching of partitioned-channel initialisation.
//
// MPI Partitioned matches Psend_init/Precv_init pairs on
// (source rank, tag, communicator) strictly in posted order, with no
// wildcards (§II-A: avoiding wildcard matching is one of the interface's
// deliberate benefits for threaded codes).  Matching happens once, at
// initialisation — never on the per-partition fast path.
// Thread-safety: both queues live under the annotated `mu_`; the matched
// on_match callback is invoked *after* the lock is released (it re-enters
// PrecvRequest setup, which posts WRs and sends credits — none of which
// may run under the matcher's lock).  Matching remains init-time-only, so
// this lock is never on the per-partition fast path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

namespace partib::mpi {

struct MatchKey {
  int peer = 0;  ///< source rank as seen by the receiver
  int tag = 0;
  int comm_id = 0;

  auto operator<=>(const MatchKey&) const = default;
};

/// The handshake record a sender's Psend_init ships to the receiver.
struct SendInit {
  MatchKey key;  ///< key.peer = sender's rank
  std::size_t total_bytes = 0;
  std::size_t user_partitions = 0;
  std::size_t transport_partitions = 0;
  int qp_count = 0;
  /// Sender QP numbers (dedicated mode).  Empty in shared mode, where the
  /// QP exchange rides the connection manager's lazy-establish protocol
  /// (mpi/conn.hpp) instead of the handshake.
  std::vector<std::uint32_t> qp_nums;
  /// True when the sender runs part::Options::shared_resources; the
  /// receiver must match (channel modes cannot be mixed).
  bool shared = false;
  /// Opaque sender-side request handle echoed back in the ack path
  /// (in-process simulation: the ack closure resolves it).
  void* sender_request = nullptr;
};

/// Receiver-side matcher: pairs incoming SendInit records with posted
/// Precv_init descriptors, queuing whichever side arrives first.
///
/// Storage is a flat posted-order vector per side, not a map of per-key
/// queues: matching happens once per channel at init time, queues are a
/// handful of entries deep, and a linear scan of a contiguous vector beats
/// the tree walk + per-key deque of the seed at every realistic size.
///
/// Drain order is deterministic and pinned: entries match strictly in
/// posted order per key (MPI's no-wildcard ordered-matching rule), and
/// because each side scans front-to-back and erases in place, the first
/// hit is provably the oldest — a monotone sequence number per entry backs
/// the PARTIB_CHECK assertion and the differential test against the
/// verbatim map/deque reference (tests/support/reference_matcher.hpp).
/// This is what keeps multirank tests byte-stable at any --jobs=N: the
/// match sequence depends only on posting order, never on container
/// iteration order.
class InitMatcher {
 public:
  using OnMatch = std::function<void(const SendInit&)>;

  /// A local Precv_init was posted; `on_match` fires (possibly
  /// immediately) when the corresponding Psend_init handshake arrives.
  void post_recv_init(const MatchKey& key, OnMatch on_match);

  /// A remote Psend_init handshake arrived.
  void on_send_init(const SendInit& init);

  std::size_t pending_recvs() const {
    common::MutexLock lock(mu_);
    return pending_recv_.size();
  }
  std::size_t unexpected_sends() const {
    common::MutexLock lock(mu_);
    return unexpected_send_.size();
  }

 private:
  struct PendingRecv {
    MatchKey key;
    OnMatch on_match;
    std::uint64_t seq;
  };
  struct UnexpectedSend {
    SendInit init;
    std::uint64_t seq;
  };

  mutable common::Mutex mu_{"mpi.matcher"};
  std::vector<PendingRecv> pending_recv_ PARTIB_GUARDED_BY(mu_);
  std::vector<UnexpectedSend> unexpected_send_ PARTIB_GUARDED_BY(mu_);
  /// posted-order stamp (both sides share it)
  std::uint64_t next_seq_ PARTIB_GUARDED_BY(mu_) = 0;
};

}  // namespace partib::mpi
