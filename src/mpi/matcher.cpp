#include "mpi/matcher.hpp"

namespace partib::mpi {

void InitMatcher::post_recv_init(const MatchKey& key, OnMatch on_match) {
  auto uit = unexpected_send_.find(key);
  if (uit != unexpected_send_.end() && !uit->second.empty()) {
    const SendInit init = uit->second.front();
    uit->second.pop_front();
    if (uit->second.empty()) unexpected_send_.erase(uit);
    on_match(init);
    return;
  }
  pending_recv_[key].push_back(std::move(on_match));
}

void InitMatcher::on_send_init(const SendInit& init) {
  auto pit = pending_recv_.find(init.key);
  if (pit != pending_recv_.end() && !pit->second.empty()) {
    OnMatch on_match = std::move(pit->second.front());
    pit->second.pop_front();
    if (pit->second.empty()) pending_recv_.erase(pit);
    on_match(init);
    return;
  }
  unexpected_send_[init.key].push_back(init);
}

std::size_t InitMatcher::pending_recvs() const {
  std::size_t n = 0;
  for (const auto& [k, q] : pending_recv_) n += q.size();
  return n;
}

std::size_t InitMatcher::unexpected_sends() const {
  std::size_t n = 0;
  for (const auto& [k, q] : unexpected_send_) n += q.size();
  return n;
}

}  // namespace partib::mpi
