#include "mpi/matcher.hpp"

#include <utility>

#include "common/assert.hpp"

namespace partib::mpi {

void InitMatcher::post_recv_init(const MatchKey& key, OnMatch on_match) {
  SendInit matched;
  bool hit = false;
  {
    common::MutexLock lock(mu_);
    for (std::size_t i = 0; i < unexpected_send_.size(); ++i) {
      if (unexpected_send_[i].init.key != key) continue;
      // Front-to-back scan of a posted-order vector: the first hit is the
      // oldest matching entry, which is exactly MPI's ordered-matching
      // rule.
#if PARTIB_CHECK_ENABLED
      for (std::size_t j = 0; j < i; ++j) {
        PARTIB_ASSERT_MSG(unexpected_send_[j].seq < unexpected_send_[i].seq,
                          "matcher drain order not posted order");
      }
#endif
      matched = std::move(unexpected_send_[i].init);
      unexpected_send_.erase(unexpected_send_.begin() +
                             static_cast<std::ptrdiff_t>(i));
      hit = true;
      break;
    }
    if (!hit) {
      pending_recv_.push_back(
          PendingRecv{key, std::move(on_match), next_seq_++});
      return;
    }
  }
  on_match(matched);  // outside mu_ (header comment)
}

void InitMatcher::on_send_init(const SendInit& init) {
  OnMatch on_match;
  {
    common::MutexLock lock(mu_);
    bool hit = false;
    for (std::size_t i = 0; i < pending_recv_.size(); ++i) {
      if (pending_recv_[i].key != init.key) continue;
#if PARTIB_CHECK_ENABLED
      for (std::size_t j = 0; j < i; ++j) {
        PARTIB_ASSERT_MSG(pending_recv_[j].seq < pending_recv_[i].seq,
                          "matcher drain order not posted order");
      }
#endif
      on_match = std::move(pending_recv_[i].on_match);
      pending_recv_.erase(pending_recv_.begin() +
                          static_cast<std::ptrdiff_t>(i));
      hit = true;
      break;
    }
    if (!hit) {
      unexpected_send_.push_back(UnexpectedSend{init, next_seq_++});
      return;
    }
  }
  on_match(init);  // outside mu_ (header comment)
}

}  // namespace partib::mpi
