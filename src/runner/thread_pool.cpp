#include "runner/thread_pool.hpp"

#include <algorithm>
#include <exception>

#include "common/assert.hpp"
#include "common/diag.hpp"
#include "common/env.hpp"

namespace partib::runner {

using common::MutexLock;

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t n = std::max<std::size_t>(1, threads);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(state_mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::submit(Task task) {
  PARTIB_ASSERT(task != nullptr);
  std::size_t victim;
  {
    MutexLock lock(state_mutex_);
    PARTIB_ASSERT_MSG(!stopping_, "submit on a stopping pool");
    victim = next_victim_;
    next_victim_ = (next_victim_ + 1) % workers_.size();
    ++queued_;
  }
  {
    MutexLock lock(workers_[victim]->mutex);
    workers_[victim]->tasks.push_back(std::move(task));
  }
  work_available_.notify_one();
}

ThreadPool::Task ThreadPool::take(std::size_t id) {
  // Own deque first, back end (LIFO).
  {
    Worker& own = *workers_[id];
    MutexLock lock(own.mutex);
    if (!own.tasks.empty()) {
      Task t = std::move(own.tasks.back());
      own.tasks.pop_back();
      return t;
    }
  }
  // Steal from the front of the first non-empty victim, scanning from the
  // next worker so thieves spread out instead of all hammering worker 0.
  for (std::size_t k = 1; k < workers_.size(); ++k) {
    Worker& victim = *workers_[(id + k) % workers_.size()];
    MutexLock lock(victim.mutex);
    if (!victim.tasks.empty()) {
      Task t = std::move(victim.tasks.front());
      victim.tasks.pop_front();
      return t;
    }
  }
  return nullptr;
}

void ThreadPool::run_task(Task& task) {
  // Explicit no-throw boundary: an exception escaping a task would either
  // std::terminate with no context here, or — if swallowed — leave every
  // completion the task owed (runner latch count_down, caller condvars)
  // unsignalled, deadlocking the joiners.  The runner's trial wrapper
  // catches and stows exceptions before they reach the pool (runner.hpp);
  // anything arriving here is a submitter bug and fails loudly.
  try {
    task();
  } catch (const std::exception& e) {
    Diagnostic d;
    d.rule = "assert";
    d.object = "thread_pool";
    d.detail = e.what();
    diag_emit(d);
    Diagnostic fatal;
    fatal.rule = "assert";
    fatal.object = "thread_pool";
    fatal.detail =
        "pool task threw (tasks must be noexcept; wrap trial exceptions "
        "before submit — see runner/thread_pool.hpp)";
    diag_fail(fatal);
  } catch (...) {
    Diagnostic fatal;
    fatal.rule = "assert";
    fatal.object = "thread_pool";
    fatal.detail =
        "pool task threw a non-std exception (tasks must be noexcept; "
        "wrap trial exceptions before submit — see runner/thread_pool.hpp)";
    diag_fail(fatal);
  }
}

void ThreadPool::worker_loop(std::size_t id) {
  for (;;) {
    Task task = take(id);
    if (task == nullptr) {
      MutexLock lock(state_mutex_);
      // A task submitted between the failed scan and this lock bumped
      // `queued_` under the same mutex, so the wait predicate re-checks
      // it — no lost wakeup window.
      while (queued_ == 0 && !stopping_) work_available_.wait(state_mutex_);
      if (queued_ == 0 && stopping_) return;
      continue;  // retry the scan; another worker may have won the race
    }
    {
      MutexLock lock(state_mutex_);
      PARTIB_ASSERT(queued_ > 0);
      --queued_;
    }
    run_task(task);
  }
}

std::size_t default_jobs() {
  const std::int64_t env = env_int("PARTIB_JOBS", 0);
  if (env > 0) return static_cast<std::size_t>(env);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace partib::runner
