#include "runner/result_cache.hpp"

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>
#include <thread>
#include <utility>

#include "common/env.hpp"
#include "runner/fingerprint.hpp"

namespace partib::runner {

namespace {

// Leading magic line of every cache file; a file without it (foreign,
// truncated mid-write by an older crashed process, wrong format
// generation) reads as a miss.
constexpr std::string_view kMagic = "partib-trial-cache v1\n";

}  // namespace

ResultCache::ResultCache(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  // An unwritable location is tolerated: load() will miss and store()
  // will fail silently, degrading to uncached execution.
}

std::unique_ptr<ResultCache> ResultCache::open_default() {
  if (!env_bool("PARTIB_CACHE", true)) return nullptr;
  std::string dir = env_string("PARTIB_CACHE_DIR").value_or(".partib-cache");
  return std::make_unique<ResultCache>(std::move(dir));
}

std::string ResultCache::path_for(std::uint64_t fingerprint) const {
  return dir_ + "/" + to_hex(fingerprint) + ".trial";
}

std::optional<std::string> ResultCache::load(std::uint64_t fingerprint) const {
  std::ifstream in(path_for(fingerprint), std::ios::binary);
  if (!in) {
    misses_.fetch_add(1);
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string contents = std::move(buf).str();
  if (contents.size() < kMagic.size() ||
      std::string_view(contents).substr(0, kMagic.size()) != kMagic) {
    misses_.fetch_add(1);
    return std::nullopt;
  }
  hits_.fetch_add(1);
  return contents.substr(kMagic.size());
}

void ResultCache::store(std::uint64_t fingerprint,
                        std::string_view payload) const {
  const std::string final_path = path_for(fingerprint);
  // Unique temp per fingerprint+process+thread: concurrent writers of the
  // same trial (duplicate configs in one grid, or two processes sweeping
  // overlapping grids) each rename a complete file into place; last one
  // wins with identical contents.
  std::ostringstream tmp_name;
  tmp_name << final_path << ".tmp." << ::getpid() << "."
           << std::this_thread::get_id();
  const std::string tmp_path = tmp_name.str();
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) return;  // unwritable cache: degrade silently
    out << kMagic << payload;
    if (!out) {
      out.close();
      std::error_code ec;
      std::filesystem::remove(tmp_path, ec);
      return;
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp_path, final_path, ec);
  if (ec) std::filesystem::remove(tmp_path, ec);
}

}  // namespace partib::runner
