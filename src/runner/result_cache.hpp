// Content-addressed persistent cache for completed trial results.
//
// A trial's full configuration hashes to a 64-bit fingerprint
// (runner/fingerprint.hpp); the cache maps that fingerprint to the
// trial's serialized result on disk, one file per trial:
//
//     <dir>/<16-hex-digit fingerprint>.trial
//
// so re-running a figure benchmark or rebuilding the tuning table skips
// every trial whose exact configuration has already been simulated — by
// any earlier invocation of any binary.  Invalidation is purely
// structural: the fingerprint covers every config field plus a
// schema-version tag chosen by the result codec (src/bench/trial.cpp),
// so changing a config, a codec, or the tag changes the key.  Results
// produced by *code* changes that alter simulated timelines without
// touching any config field must be invalidated by bumping the trial
// schema tag (or deleting the cache directory — always safe).
//
// Writes go through a per-process temp file renamed into place, so
// concurrent writers (pool workers, or two processes sweeping
// overlapping grids) never expose a torn file.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

namespace partib::runner {

class ResultCache {
 public:
  /// Opens (creating if needed) the cache rooted at `dir`.
  explicit ResultCache(std::string dir);

  /// Cache honouring the environment knobs: PARTIB_CACHE=off disables
  /// caching entirely (returns nullptr), PARTIB_CACHE_DIR overrides the
  /// default `.partib-cache` (relative to the current directory).
  static std::unique_ptr<ResultCache> open_default();

  /// The payload stored for `fingerprint`, or nullopt on miss (also on a
  /// torn/foreign file, which is treated as a miss and re-computed).
  std::optional<std::string> load(std::uint64_t fingerprint) const;

  /// Persist `payload` under `fingerprint`.  Best-effort: an unwritable
  /// cache directory degrades to cache-off behaviour rather than failing
  /// the sweep.
  void store(std::uint64_t fingerprint, std::string_view payload) const;

  const std::string& dir() const { return dir_; }

  std::uint64_t hits() const { return hits_.load(); }
  std::uint64_t misses() const { return misses_.load(); }

 private:
  std::string path_for(std::uint64_t fingerprint) const;

  std::string dir_;
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
};

}  // namespace partib::runner
