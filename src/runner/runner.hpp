// The parallel experiment runner.
//
// A figure benchmark or tuning-table search is hundreds of *independent*
// DES trials — each builds its own sim::Engine and mpi::World, runs to
// quiescence, and reduces to a small result struct.  `run_trials` executes
// such a grid across host cores on a work-stealing pool
// (runner/thread_pool.hpp) while keeping the three properties the
// figure pipeline depends on:
//
//  1. **Determinism** — each trial's RNG seed is a pure function of its
//     config (the drivers pin seeds; configs that ask for a derived seed
//     get runner::derive_seed(fingerprint)), and results are collected in
//     *submission order*, so the emitted CSV/table is byte-identical for
//     any worker count, including --jobs=1 (which runs every trial
//     inline on the calling thread, reproducing the historical serial
//     behaviour exactly — no pool threads are even spawned).
//  2. **Memoization** — with a ResultCache attached, a trial whose
//     fingerprint is already on disk is decoded instead of simulated, so
//     re-running a figure or resuming an interrupted table search pays
//     only for what changed.
//  3. **Isolation** — trials share no mutable state (the audit that made
//     the library safe for this is the thread_local conversion of the
//     diagnostics clock and checker shadow state; see docs/PERF.md).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <string>
#include <string_view>
#include <vector>

#include "common/assert.hpp"
#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "runner/result_cache.hpp"
#include "runner/thread_pool.hpp"

namespace partib::runner {

struct RunOptions {
  /// Worker threads; 0 means default_jobs() (PARTIB_JOBS env override,
  /// else hardware concurrency).  1 runs trials inline on the caller.
  std::size_t jobs = 0;
  /// Persistent result cache; nullptr disables memoization.
  ResultCache* cache = nullptr;
};

struct RunStats {
  std::size_t trials = 0;      ///< grid size
  std::size_t cache_hits = 0;  ///< decoded from the cache
  std::size_t executed = 0;    ///< actually simulated
};

/// How a Result round-trips through the persistent cache.  Either
/// pointer may be null, which disables caching for the trial type.
/// Encode/decode must be exact (bit-level round-trip) — a decoded result
/// feeds the same formatting code as a fresh one and the output must not
/// depend on cache state.
template <typename Result>
struct Codec {
  std::string (*encode)(const Result&) = nullptr;
  bool (*decode)(std::string_view, Result*) = nullptr;
};

namespace detail {

/// Countdown latch (C++20 std::latch needs a count at construction
/// before cache hits are known; this one is just as small).
class Latch {
 public:
  explicit Latch(std::size_t count) : remaining_(count) {}

  void count_down() {
    common::MutexLock lock(mutex_);
    PARTIB_ASSERT(remaining_ > 0);
    if (--remaining_ == 0) done_.notify_all();
  }

  void wait() {
    common::MutexLock lock(mutex_);
    while (remaining_ != 0) done_.wait(mutex_);
  }

 private:
  common::Mutex mutex_{"runner.latch"};
  common::CondVar done_;
  std::size_t remaining_ PARTIB_GUARDED_BY(mutex_);
};

/// First-exception box: trials run on pool workers, where a throw must
/// not unwind (the pool would terminate and the latch would never count
/// down — see thread_pool.hpp).  Each worker stows its exception here
/// instead; run_trials rethrows the first one on the submitting thread
/// after every task has signalled the latch, so the pool always winds
/// down cleanly even when trials fail.
class ErrorBox {
 public:
  void capture() {
    common::MutexLock lock(mutex_);
    if (!first_) first_ = std::current_exception();
  }

  [[noreturn]] void rethrow() {
    std::exception_ptr e;
    {
      common::MutexLock lock(mutex_);
      e = first_;
    }
    PARTIB_ASSERT(e != nullptr);
    std::rethrow_exception(e);
  }

  bool armed() {
    common::MutexLock lock(mutex_);
    return first_ != nullptr;
  }

 private:
  common::Mutex mutex_{"runner.error_box"};
  std::exception_ptr first_ PARTIB_GUARDED_BY(mutex_);
};

}  // namespace detail

/// Execute `trial` over every config, in parallel, returning results in
/// submission order.  `fingerprint` must hash every config field that can
/// influence the result (see runner/fingerprint.hpp).
template <typename Config, typename Result, typename TrialFn,
          typename FingerprintFn>
std::vector<Result> run_trials(const std::vector<Config>& configs,
                               TrialFn trial, FingerprintFn fingerprint,
                               Codec<Result> codec, const RunOptions& opts,
                               RunStats* stats = nullptr) {
  const std::size_t n = configs.size();
  std::vector<Result> results(n);
  RunStats local;
  local.trials = n;

  const bool use_cache =
      opts.cache != nullptr && codec.encode != nullptr &&
      codec.decode != nullptr;
  std::vector<std::uint64_t> fps(use_cache ? n : 0);
  std::vector<std::size_t> pending;
  pending.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (use_cache) {
      fps[i] = fingerprint(configs[i]);
      if (auto payload = opts.cache->load(fps[i])) {
        if (codec.decode(*payload, &results[i])) {
          ++local.cache_hits;
          continue;
        }
      }
    }
    pending.push_back(i);
  }
  local.executed = pending.size();

  auto execute = [&](std::size_t i) {
    results[i] = trial(configs[i]);
    if (use_cache) opts.cache->store(fps[i], codec.encode(results[i]));
  };

  const std::size_t jobs = opts.jobs == 0 ? default_jobs() : opts.jobs;
  if (jobs <= 1 || pending.size() <= 1) {
    // Serial reference path: submission order on the calling thread.
    // Exceptions propagate directly — same observable behaviour as the
    // parallel path's stow-and-rethrow below.
    for (std::size_t i : pending) execute(i);
  } else {
    detail::Latch latch(pending.size());
    detail::ErrorBox errors;
    {
      ThreadPool pool(std::min(jobs, pending.size()));
      for (std::size_t i : pending) {
        pool.submit([&execute, &latch, &errors, i] {
          // The latch counts down on *every* exit path: a trial that
          // throws must not leave wait() blocked forever (nor let the
          // exception reach the pool, which treats that as fatal).
          try {
            execute(i);
          } catch (...) {
            errors.capture();
          }
          latch.count_down();
        });
      }
      latch.wait();
    }
    // Pool joined: every worker is done, results[] is quiescent.  Surface
    // the first failure on the calling thread, as the serial path would.
    if (errors.armed()) errors.rethrow();
  }

  if (stats != nullptr) *stats = local;
  return results;
}

}  // namespace partib::runner
