// Content fingerprints for trial configurations.
//
// The experiment runner (runner/runner.hpp) keys its persistent result
// cache and its derived RNG seeds on a 64-bit fingerprint of the trial's
// *entire* configuration — every field that can influence the simulated
// timeline must be mixed in, or two genuinely different trials would
// alias.  The hash is FNV-1a over an explicit, length-prefixed feed (no
// struct memcpy: padding bytes and pointer values must never leak in),
// so fingerprints are stable across processes, runs, and ASLR — exactly
// what a content-addressed on-disk cache requires.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace partib::runner {

/// Incremental FNV-1a (64-bit) over typed fields.  Methods return *this
/// so call sites can chain: `h.str("overhead/v1").u64(bytes).f64(noise)`.
class Hasher {
 public:
  Hasher& bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      h_ ^= p[i];
      h_ *= kFnvPrime;
    }
    return *this;
  }

  Hasher& u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h_ ^= (v >> (8 * i)) & 0xFFu;
      h_ *= kFnvPrime;
    }
    return *this;
  }

  Hasher& i64(std::int64_t v) { return u64(static_cast<std::uint64_t>(v)); }

  /// Doubles are hashed by bit pattern: two configs differing in the last
  /// ulp are different configs.  (-0.0 and 0.0 therefore differ too —
  /// harmless, and cheaper than canonicalising.)
  Hasher& f64(double v) { return u64(std::bit_cast<std::uint64_t>(v)); }

  Hasher& boolean(bool v) { return u64(v ? 1 : 0); }

  /// Length-prefixed so consecutive strings cannot alias ("ab","c" vs
  /// "a","bc").
  Hasher& str(std::string_view s) {
    u64(s.size());
    return bytes(s.data(), s.size());
  }

  std::uint64_t digest() const { return h_; }

 private:
  static constexpr std::uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ULL;
  static constexpr std::uint64_t kFnvPrime = 0x100000001B3ULL;

  std::uint64_t h_ = kFnvOffsetBasis;
};

/// Deterministic per-trial RNG seed from a config fingerprint (splitmix64
/// finalizer).  Never returns 0 so the result is always distinguishable
/// from "no seed chosen" sentinels.
inline std::uint64_t derive_seed(std::uint64_t fingerprint) {
  std::uint64_t z = fingerprint + 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  z ^= z >> 31;
  return z == 0 ? 0x9E3779B97F4A7C15ULL : z;
}

/// Fixed-width lowercase hex, the cache's on-disk key format.
inline std::string to_hex(std::uint64_t v) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[v & 0xF];
    v >>= 4;
  }
  return out;
}

}  // namespace partib::runner
