// Work-stealing thread pool for independent simulation trials.
//
// Each worker owns a deque: the owner pushes/pops at the back (LIFO keeps
// its cache warm across a burst of submissions) and idle workers steal
// from the *front* of a victim's deque (FIFO, so a thief takes the oldest
// — and therefore least cache-affine — work).  Trials are coarse (a whole
// DES run each, microseconds to seconds), so each deque is guarded by a
// plain mutex rather than a lock-free Chase-Lev deque: contention is a
// few lock acquisitions per trial, and mutexes keep the pool trivially
// clean under TSan.
//
// The pool runs arbitrary move-only callables (common::InlineFn) and has
// no futures of its own — the runner layers submission-order result
// collection on top (runner/runner.hpp).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/inline_fn.hpp"

namespace partib::runner {

class ThreadPool {
 public:
  using Task = common::InlineFn<void()>;

  /// Spawns `threads` workers (at least 1).
  explicit ThreadPool(std::size_t threads);

  /// Joins the workers after draining every queued task.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue one task.  Tasks may be submitted from any thread, including
  /// from within a running task.
  void submit(Task task);

  std::size_t threads() const { return workers_.size(); }

 private:
  struct Worker {
    std::mutex mutex;
    std::deque<Task> tasks;
  };

  void worker_loop(std::size_t id);
  /// Pop from own back, else steal from the front of the next non-empty
  /// victim.  Returns an empty Task when every deque is empty.
  Task take(std::size_t id);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  // Submission/wakeup state: `queued_` counts tasks pushed but not yet
  // dequeued, and is only touched under `state_mutex_` so a worker that
  // observes queued_ == 0 under the lock cannot miss a wakeup.
  std::mutex state_mutex_;
  std::condition_variable work_available_;
  std::size_t queued_ = 0;
  std::size_t next_victim_ = 0;  // round-robin submission target
  bool stopping_ = false;
};

/// Default worker count: PARTIB_JOBS when set (>= 1), otherwise the
/// hardware concurrency (>= 1).
std::size_t default_jobs();

}  // namespace partib::runner
