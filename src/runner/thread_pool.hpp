// Work-stealing thread pool for independent simulation trials.
//
// Each worker owns a deque: the owner pushes/pops at the back (LIFO keeps
// its cache warm across a burst of submissions) and idle workers steal
// from the *front* of a victim's deque (FIFO, so a thief takes the oldest
// — and therefore least cache-affine — work).  Trials are coarse (a whole
// DES run each, microseconds to seconds), so each deque is guarded by a
// plain mutex rather than a lock-free Chase-Lev deque: contention is a
// few lock acquisitions per trial, and mutexes keep the pool trivially
// clean under TSan.
//
// The pool runs arbitrary move-only callables (common::InlineFn) and has
// no futures of its own — the runner layers submission-order result
// collection on top (runner/runner.hpp).
//
// Shutdown and exception policy (explicit, enforced):
//  * ~ThreadPool (= shutdown()) drains every already-queued task, then
//    joins; submitting during or after shutdown is a fatal assert.
//  * Tasks must not throw.  The runner wraps each trial in a catch-all
//    that stows the exception for rethrow on the submitting thread
//    (runner.hpp), so a throwing task reaching the pool is a bug in the
//    submitter — the worker converts it into a fatal structured
//    diagnostic instead of letting std::terminate unwind with no context
//    (or, worse, leaving joiners waiting on a completion signal the dead
//    task will never send).
//
// All shared state is guarded by annotated partib::Mutex
// (common/mutex.hpp) and compiler-checked under PARTIB_THREAD_SAFETY=ON.
#pragma once

#include <cstddef>
#include <deque>
#include <memory>
#include <thread>
#include <vector>

#include "common/inline_fn.hpp"
#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

namespace partib::runner {

class ThreadPool {
 public:
  using Task = common::InlineFn<void()>;

  /// Spawns `threads` workers (at least 1).
  explicit ThreadPool(std::size_t threads);

  /// Joins the workers after draining every queued task.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue one task.  Tasks may be submitted from any thread, including
  /// from within a running task, but not once shutdown has begun.
  void submit(Task task);

  std::size_t threads() const { return workers_.size(); }

 private:
  struct Worker {
    Worker() : mutex("runner.worker_deque") {}
    common::Mutex mutex;
    std::deque<Task> tasks PARTIB_GUARDED_BY(mutex);
  };

  void worker_loop(std::size_t id);
  /// Pop from own back, else steal from the front of the next non-empty
  /// victim.  Returns an empty Task when every deque is empty.
  Task take(std::size_t id);
  /// Run one task under the no-throw policy (see header comment).
  static void run_task(Task& task);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  // Submission/wakeup state: `queued_` counts tasks pushed but not yet
  // dequeued, and is only touched under `state_mutex_` so a worker that
  // observes queued_ == 0 under the lock cannot miss a wakeup.
  common::Mutex state_mutex_{"runner.pool_state"};
  common::CondVar work_available_;
  std::size_t queued_ PARTIB_GUARDED_BY(state_mutex_) = 0;
  // round-robin submission target
  std::size_t next_victim_ PARTIB_GUARDED_BY(state_mutex_) = 0;
  bool stopping_ PARTIB_GUARDED_BY(state_mutex_) = false;
};

/// Default worker count: PARTIB_JOBS when set (>= 1), otherwise the
/// hardware concurrency (>= 1).
std::size_t default_jobs();

}  // namespace partib::runner
