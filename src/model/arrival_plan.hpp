// Arrival-vector planner: the model half of the online arrival-learning
// aggregator (docs/ADAPTIVE.md).
//
// The drain-aware PLogGP optimizer (ploggp.hpp) collapses a round's
// arrival pattern to a single laggard delay.  This planner consumes the
// full per-partition predicted arrival vector instead and produces a
// *non-uniform* contiguous group layout plus a self-tuned timer delta:
//
//   1. quantize arrivals onto a coarse grid (cfg.quantum) so plans are a
//      pure function of the arrival *pattern*, not of nanosecond jitter
//      (producer-thread-count invariance, docs/THREADING.md);
//   2. cut group boundaries at the largest index-adjacent arrival jumps
//      — groups stay contiguous per the paper's no-staging rule (§IV-A),
//      so a cut is only ever between user partitions i-1 and i;
//   3. split each arrival cluster with the drain-aware PLogGP search so
//      large clusters still pipeline (the §IV-C optimum applied per
//      cluster rather than per buffer);
//   4. set delta to the worst intra-group spread plus one quantum — the
//      smallest window that still lets a learned group aggregate fully
//      (the paper's §IV-D delta made self-tuning).
//
// Everything here is deterministic (no RNG, no wall clock) and
// allocation-free once the scratch is reserved: the epoch-boundary replan
// in part/psend.cpp calls these under PARTIB_HOT.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/time.hpp"
#include "model/loggp.hpp"

namespace partib::model {

/// Knobs of the arrival-learning layer; carried inside agg::Plan and
/// hashed (every field) into aggregator describe() strings.
struct ArrivalLearnConfig {
  /// EWMA weight of the newest epoch's quantized arrival offsets.
  double ewma_alpha = 0.25;
  /// Hysteresis: a candidate plan is adopted only when its predicted
  /// completion beats the incumbent's by this relative margin.
  double hysteresis_epsilon = 0.05;
  /// Clamp range for the self-tuned timer delta.
  Duration delta_min = usec(2);
  Duration delta_max = msec(16);
  /// Arrival-offset quantization grid (step 1 above).
  Duration quantum = usec(64);
  /// Transport-partition budget (the paper's Table I tops out at 32).
  std::size_t max_groups = 32;
};

/// Pre-reserved work arrays so planning never touches the allocator.
/// reserve() is called once at channel init; the plan/predict calls below
/// assert the capacity instead of growing it.
struct ArrivalPlanScratch {
  void reserve(std::size_t partitions);
  std::size_t capacity = 0;
  /// Cut candidates: boundary index (cut before partition i).
  std::vector<std::uint32_t> cuts;
  /// Quantized arrival offsets for the in-flight plan call.
  std::vector<Duration> quant;
  /// predict scratch: per-message post times / bytes / sort order.
  std::vector<Duration> post_time;
  std::vector<std::size_t> post_bytes;
  std::vector<std::uint32_t> post_order;
};

struct ArrivalPlanResult {
  std::size_t groups = 0;
  Duration delta = 0;
  /// Predicted completion (time of last byte receivable) of the emitted
  /// layout under the same model predict_grouped_completion uses, so the
  /// caller can compare it against the incumbent plan for hysteresis.
  Duration predicted = 0;
};

/// Quantize one arrival offset onto the learning grid.
constexpr Duration quantize_arrival(Duration a, Duration quantum) {
  return quantum <= 1 ? a : (a / quantum) * quantum;
}

/// Predicted completion time of an arbitrary contiguous grouped plan with
/// timer `delta` under per-partition arrival offsets: each group posts one
/// aggregated message when complete or when the delta window closes
/// (stragglers then post individually), and a single serial wire drains
/// the posts in time order (the drain-awareness of §IV-C generalised to a
/// measured arrival vector).  Deterministic and allocation-free given
/// scratch reserved for >= the partition count.
Duration predict_grouped_completion(const LogGPParams& p,
                                    std::size_t partition_bytes,
                                    const Duration* arrival,
                                    const std::size_t* group_first,
                                    const std::size_t* group_count,
                                    std::size_t groups, Duration delta,
                                    ArrivalPlanScratch& scratch);

/// Build the candidate plan for `n` partitions of `total_bytes` bytes from
/// predicted per-partition arrival offsets (ns, relative to the epoch's
/// first Pready).  Writes the contiguous layout into
/// group_first/group_count (capacity >= min(n, cfg.max_groups) each) and
/// returns the group count, tuned delta, and predicted completion.
/// Deterministic and allocation-free given reserved scratch.
ArrivalPlanResult plan_from_arrivals(const LogGPParams& p,
                                     std::size_t total_bytes,
                                     const Duration* arrival, std::size_t n,
                                     const ArrivalLearnConfig& cfg,
                                     std::size_t* group_first,
                                     std::size_t* group_count,
                                     ArrivalPlanScratch& scratch);

}  // namespace partib::model
