#include "model/ploggp.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/bits.hpp"

namespace partib::model {

namespace {

Duration wire_time(const LogGPParams& p, std::size_t bytes) {
  return static_cast<Duration>(p.G * static_cast<double>(bytes));
}

}  // namespace

Duration completion_time(const LogGPParams& p, const PLogGPQuery& q) {
  PARTIB_ASSERT(q.transport_partitions >= 1);
  PARTIB_ASSERT(q.message_bytes >= q.transport_partitions);
  const auto P = static_cast<Duration>(q.transport_partitions);
  const std::size_t k = q.message_bytes / q.transport_partitions;
  return q.delay + p.o_s + wire_time(p, k) + p.L + p.o_r +
         (P - 1) * p.per_message_cost();
}

Duration completion_time_with_drain(const LogGPParams& p,
                                    const PLogGPQuery& q) {
  PARTIB_ASSERT(q.transport_partitions >= 1);
  PARTIB_ASSERT(q.message_bytes >= q.transport_partitions);
  const auto P = static_cast<Duration>(q.transport_partitions);
  const std::size_t k = q.message_bytes / q.transport_partitions;
  const Duration period = std::max(p.g, wire_time(p, k));
  const Duration early_drain = p.o_s + (P - 1) * period;
  const Duration laggard_start = std::max(q.delay + p.o_s, early_drain);
  return laggard_start + wire_time(p, k) + p.L + p.o_r +
         (P - 1) * p.per_message_cost();
}

Duration back_to_back_time(const LogGPParams& p, std::size_t k,
                           std::size_t messages) {
  PARTIB_ASSERT(messages >= 1 && k >= 1);
  const auto m = static_cast<Duration>(messages);
  const Duration per_byte =
      static_cast<Duration>(p.G * static_cast<double>(k - 1));
  return p.o_s + m * per_byte + (m - 1) * p.per_message_cost() + p.L + p.o_r;
}

Duration single_message_time(const LogGPParams& p, std::size_t k) {
  return back_to_back_time(p, k, 1);
}

namespace {

using CompletionFn = Duration (*)(const LogGPParams&, const PLogGPQuery&);

std::size_t optimize(const LogGPParams& p, std::size_t message_bytes,
                     std::size_t user_partitions, const OptimizerConfig& cfg,
                     CompletionFn completion) {
  PARTIB_ASSERT(message_bytes > 0);
  PARTIB_ASSERT_MSG(is_pow2(user_partitions),
                    "user partition counts are restricted to powers of two");
  const std::size_t cap =
      std::min(user_partitions, cfg.max_transport_partitions);
  std::size_t best = 1;
  Duration best_time = 0;
  for (std::size_t P = 1; P <= cap; P *= 2) {
    if (message_bytes < P) break;  // cannot split below one byte/partition
    const Duration t =
        completion(p, PLogGPQuery{message_bytes, P, cfg.delay});
    if (P == 1 || t < best_time) {
      best = P;
      best_time = t;
    }
  }
  return best;
}

}  // namespace

std::size_t optimal_transport_partitions(const LogGPParams& p,
                                         std::size_t message_bytes,
                                         std::size_t user_partitions,
                                         const OptimizerConfig& cfg) {
  return optimize(p, message_bytes, user_partitions, cfg, &completion_time);
}

std::size_t optimal_transport_partitions_with_drain(
    const LogGPParams& p, std::size_t message_bytes,
    std::size_t user_partitions, const OptimizerConfig& cfg) {
  return optimize(p, message_bytes, user_partitions, cfg,
                  &completion_time_with_drain);
}

}  // namespace partib::model
