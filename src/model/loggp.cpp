#include "model/loggp.hpp"

#include <algorithm>

namespace partib::model {

Duration LogGPParams::per_message_cost() const {
  return std::max({g, o_s, o_r});
}

LogGPParams LogGPParams::niagara_mpi_measured() {
  // EDR InfiniBand is 100 Gb/s; an MPI-level effective bandwidth of
  // ~12.5 GB/s gives G = 0.08 ns/B.  The gap is the MPI-transport value
  // (per-message software cost included), which is what Netgauge's MPI
  // module reports — an order of magnitude above the raw verbs gap.
  LogGPParams p;
  p.L = nsec(2'500);
  p.o_s = nsec(1'200);
  p.o_r = nsec(1'500);
  p.g = nsec(15'600);
  p.G = 0.08;
  return p;
}

}  // namespace partib::model
