// The Partitioned LogGP (PLogGP) model and the transport-partition
// optimizer built on it.
//
// PLogGP (Schonbein et al., ICPP'23) extends LogGP to a buffer split into P
// partitions.  The paper uses the *many-before-one* arrival scenario: all
// sender threads but one mark their partitions ready simultaneously and a
// single laggard is delayed by `delay` (e.g. 4 ms = 100 ms compute * 4%
// noise).  Partitioned communication can transmit the P-1 early transport
// partitions while the laggard still computes ("early-bird" transmission),
// so only the laggard's own transport partition remains on the critical
// path — but every extra transport partition also costs one more
// per-message overhead max(g, o_s, o_r).
//
// Completion time used by the optimizer (laggard's partition in group 0):
//
//   T(P) = delay + o_s + (K/P)*G + L + o_r + (P-1)*max(g, o_s, o_r)
//
// Minimising over real P gives P* = sqrt(K*G / max(g,o_s,o_r)); restricted
// to powers of two this reproduces the paper's Table I on the Niagara-like
// parameter set: the 1->2 boundary sits at K = 2c/G ~ 372 KiB, and each
// subsequent boundary is 4x the previous — exactly the paper's pattern of
// doubling the partition count every quadrupling of message size.
//
// `completion_time_with_drain` adds a refinement the simple form omits:
// when the early partitions cannot all be injected within `delay` (very
// large messages on a slow wire), the laggard's send queues behind them.
#pragma once

#include <cstddef>

#include "common/time.hpp"
#include "model/loggp.hpp"

namespace partib::model {

struct PLogGPQuery {
  std::size_t message_bytes = 0;      ///< aggregate buffer size K
  std::size_t transport_partitions = 1;  ///< P
  Duration delay = 0;                 ///< laggard arrival delay
};

/// Headline PLogGP completion-time estimate (formula above).
Duration completion_time(const LogGPParams& p, const PLogGPQuery& q);

/// Refined estimate modelling wire occupancy of the early partitions:
/// the laggard's group starts at max(delay + o_s, o_s + (P-1)*max(g, kG)).
Duration completion_time_with_drain(const LogGPParams& p,
                                    const PLogGPQuery& q);

/// The paper's Fig 2 formula generalised to P back-to-back k-byte
/// messages with no delay:
///   o_s + P*G*(k-1) + (P-1)*max(g, o_s, o_r) + L + o_r
Duration back_to_back_time(const LogGPParams& p, std::size_t k,
                           std::size_t messages);

/// Classic LogGP single-message time: o_s + G*(k-1) + L + o_r.
Duration single_message_time(const LogGPParams& p, std::size_t k);

struct OptimizerConfig {
  /// Laggard delay fed to the model.  The paper follows prior work in
  /// using 4 ms (100 ms compute with 4% noise) as the representative value.
  Duration delay = msec(4);
  /// Upper bound on transport partitions regardless of user request
  /// (the paper's Table I tops out at 32).
  std::size_t max_transport_partitions = 32;
};

/// Optimal power-of-two transport-partition count for an aggregate message
/// of `message_bytes` with `user_partitions` user partitions.  The result
/// is in [1, min(user_partitions, cfg.max)] — the library never
/// disaggregates below one user partition per transport partition
/// (paper §IV-C).  Ties resolve to the smaller count.
std::size_t optimal_transport_partitions(const LogGPParams& p,
                                         std::size_t message_bytes,
                                         std::size_t user_partitions,
                                         const OptimizerConfig& cfg = {});

/// Same search over the drain-aware model.  Unlike the headline model —
/// where the laggard delay is an additive constant and cannot move the
/// optimum — here the delay bounds how many early partitions fit on the
/// wire, so the result genuinely depends on cfg.delay.  This is the model
/// the online-adaptive aggregator tunes (the auto-tuning approach the
/// paper's §IV-D defers to future work).
std::size_t optimal_transport_partitions_with_drain(
    const LogGPParams& p, std::size_t message_bytes,
    std::size_t user_partitions, const OptimizerConfig& cfg = {});

}  // namespace partib::model
