// LogGP parameter sets.
//
// LogGP (Alexandrov et al.) models a message-passing network with:
//   L   — wire latency for the first byte,
//   o_s — sender CPU overhead per message,
//   o_r — receiver CPU overhead per message,
//   g   — minimum gap between consecutive message injections,
//   G   — per-byte transmission time (1/bandwidth).
//
// Two presets matter for this reproduction:
//  * `niagara_mpi_measured()` — parameters of the flavour the paper fed the
//    PLogGP model: Netgauge's *MPI module* over Open MPI + UCX.  These are
//    software-stack values (g in the tens of microseconds), not raw NIC
//    values; the paper explicitly notes this mismatch (§V-B1) and so do we.
//  * fabric::NicParams (src/fabric) carries the separate, much smaller,
//    direct-verbs values used by the simulated NIC.
#pragma once

#include "common/time.hpp"

namespace partib::model {

struct LogGPParams {
  Duration L = 0;    ///< latency, ns
  Duration o_s = 0;  ///< sender per-message overhead, ns
  Duration o_r = 0;  ///< receiver per-message overhead, ns
  Duration g = 0;    ///< inter-message gap, ns
  double G = 0.0;    ///< ns per byte

  /// max(g, o_s, o_r): the per-message cost LogGP charges between
  /// back-to-back messages (see the paper's Fig 2 formula).
  Duration per_message_cost() const;

  /// Netgauge-MPI-module-like parameters for a Niagara-class
  /// (EDR InfiniBand, Open MPI + UCX) system.  Chosen so the PLogGP
  /// optimizer reproduces the paper's Table I exactly (see
  /// tests/model/ploggp_test.cpp).
  static LogGPParams niagara_mpi_measured();
};

}  // namespace partib::model
