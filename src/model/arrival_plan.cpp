#include "model/arrival_plan.hpp"

#include <algorithm>
#include <cstdint>

#include "common/assert.hpp"
#include "common/thread_annotations.hpp"
#include "model/ploggp.hpp"

namespace partib::model {

namespace {

Duration wire_time(const LogGPParams& p, std::size_t bytes) {
  return static_cast<Duration>(p.G * static_cast<double>(bytes));
}

Duration clamp_duration(Duration v, Duration lo, Duration hi) {
  return v < lo ? lo : (v > hi ? hi : v);
}

/// Power-of-two search over completion_time_with_drain for `parts`
/// partitions of `bytes` total bytes arriving over `spread`.  Unlike
/// optimal_transport_partitions_with_drain this does not require `parts`
/// to be a power of two — learned clusters rarely are.  Ties resolve to
/// the smaller count, matching the optimizer's convention.
std::size_t drain_aware_split(const LogGPParams& p, std::size_t bytes,
                              std::size_t parts, Duration spread,
                              std::size_t cap) {
  std::size_t best = 1;
  Duration best_time = 0;
  for (std::size_t m = 1; m <= cap && m <= parts && m <= bytes; m *= 2) {
    const Duration t =
        completion_time_with_drain(p, PLogGPQuery{bytes, m, spread});
    if (m == 1 || t < best_time) {
      best = m;
      best_time = t;
    }
  }
  return best;
}

/// Lay `parts` partitions starting at `base` out as `groups` contiguous
/// near-equal groups, appending to group_first/group_count at `out`.
std::size_t emit_even_groups(std::size_t base, std::size_t parts,
                             std::size_t groups, std::size_t* group_first,
                             std::size_t* group_count, std::size_t out) {
  const std::size_t lo = parts / groups;
  const std::size_t rem = parts % groups;
  std::size_t first = base;
  for (std::size_t i = 0; i < groups; ++i) {
    const std::size_t cnt = lo + (i < rem ? 1 : 0);
    group_first[out] = first;
    group_count[out] = cnt;
    ++out;
    first += cnt;
  }
  return out;
}

}  // namespace

void ArrivalPlanScratch::reserve(std::size_t partitions) {
  capacity = partitions;
  cuts.assign(partitions, 0);
  quant.assign(partitions, 0);
  // Worst-case posted messages in predict: one bulk message per group plus
  // every partition posting individually as a straggler.
  post_time.assign(2 * partitions, 0);
  post_bytes.assign(2 * partitions, 0);
  post_order.assign(2 * partitions, 0);
}

PARTIB_HOT Duration predict_grouped_completion(
    const LogGPParams& p, std::size_t partition_bytes, const Duration* arrival,
    const std::size_t* group_first, const std::size_t* group_count,
    std::size_t groups, Duration delta, ArrivalPlanScratch& scratch) {
  PARTIB_ASSERT(groups >= 1);
  std::size_t posts = 0;
  for (std::size_t g = 0; g < groups; ++g) {
    const std::size_t first = group_first[g];
    const std::size_t cnt = group_count[g];
    PARTIB_ASSERT(cnt >= 1);
    PARTIB_ASSERT(first + cnt <= scratch.capacity);
    Duration a_min = arrival[first];
    Duration a_max = arrival[first];
    for (std::size_t i = 1; i < cnt; ++i) {
      a_min = std::min(a_min, arrival[first + i]);
      a_max = std::max(a_max, arrival[first + i]);
    }
    if (a_max - a_min <= delta) {
      // Whole group completes inside the timer window: one aggregated
      // message when the last partition arrives.
      scratch.post_time[posts] = a_max;
      scratch.post_bytes[posts] = cnt * partition_bytes;
      ++posts;
      continue;
    }
    // Window closes at a_min + delta: everything arrived by then goes out
    // as one aggregate.  A straggler is flushed one timer window after it
    // arrives — not instantly — unless the group completes first, at
    // which point everything still pending goes out (a_max caps the post
    // time).  Modelling that lag is what lets the planner see the
    // difference between a straggler sharing a group with the last
    // arrival (their runs coalesce into one larger tail message) and a
    // boundary that isolates the last arrival (its predecessor drains
    // earlier, shrinking the tail).  The runtime coalesces contiguous
    // straggler runs; singletons are pessimistic for incumbent and
    // candidate alike.
    const Duration close = a_min + delta;
    std::size_t covered = 0;
    for (std::size_t i = 0; i < cnt; ++i) {
      if (arrival[first + i] <= close) {
        ++covered;
      } else {
        scratch.post_time[posts] =
            std::min(arrival[first + i] + delta, a_max);
        scratch.post_bytes[posts] = partition_bytes;
        ++posts;
      }
    }
    PARTIB_ASSERT(covered >= 1);
    scratch.post_time[posts] = close;
    scratch.post_bytes[posts] = covered * partition_bytes;
    ++posts;
  }
  PARTIB_ASSERT(posts <= scratch.post_time.size());

  // Drain the posts through a single serial wire in time order.  Sort an
  // index permutation so equal post times break deterministically by
  // emission order.
  for (std::size_t i = 0; i < posts; ++i) {
    scratch.post_order[i] = static_cast<std::uint32_t>(i);
  }
  std::sort(scratch.post_order.begin(),
            scratch.post_order.begin() + static_cast<std::ptrdiff_t>(posts),
            [&scratch](std::uint32_t a, std::uint32_t b) {
              if (scratch.post_time[a] != scratch.post_time[b]) {
                return scratch.post_time[a] < scratch.post_time[b];
              }
              return a < b;
            });
  Duration wire_free = 0;
  Duration last_end = 0;
  for (std::size_t i = 0; i < posts; ++i) {
    const std::uint32_t idx = scratch.post_order[i];
    const Duration start =
        std::max(scratch.post_time[idx] + p.o_s, wire_free);
    const Duration end = start + wire_time(p, scratch.post_bytes[idx]);
    wire_free = end + p.per_message_cost();
    last_end = std::max(last_end, end);
  }
  return last_end + p.L + p.o_r;
}

PARTIB_HOT ArrivalPlanResult plan_from_arrivals(
    const LogGPParams& p, std::size_t total_bytes, const Duration* arrival,
    std::size_t n, const ArrivalLearnConfig& cfg, std::size_t* group_first,
    std::size_t* group_count, ArrivalPlanScratch& scratch) {
  PARTIB_ASSERT(n >= 1);
  PARTIB_ASSERT(total_bytes >= n);
  PARTIB_ASSERT(scratch.capacity >= n);
  const std::size_t cap =
      std::max<std::size_t>(1, std::min(cfg.max_groups, n));
  const std::size_t partition_bytes = total_bytes / n;

  // Step 1: quantize onto the learning grid.  Every decision below is a
  // function of these grid values, so sub-quantum timestamp noise (e.g.
  // threaded-producer scheduling jitter) cannot change the plan.
  for (std::size_t i = 0; i < n; ++i) {
    scratch.quant[i] = quantize_arrival(arrival[i], cfg.quantum);
  }
  Duration q_min = scratch.quant[0];
  Duration q_max = scratch.quant[0];
  for (std::size_t i = 1; i < n; ++i) {
    q_min = std::min(q_min, scratch.quant[i]);
    q_max = std::max(q_max, scratch.quant[i]);
  }
  const Duration spread = q_max - q_min;

  // Step 2: boundary cuts at significant index-adjacent arrival jumps.
  // The threshold deliberately exceeds the mean adjacent gap (2*spread/n)
  // so a smooth ramp — where every gap ties — yields *no* cuts and the
  // uniform candidates below compete on prediction, not arbitrary ties.
  const Duration significant = std::max<Duration>(
      cfg.quantum, 2 * spread / static_cast<Duration>(n));
  std::size_t n_cuts = 0;
  for (std::size_t i = 1; i < n; ++i) {
    const Duration gap = scratch.quant[i] >= scratch.quant[i - 1]
                             ? scratch.quant[i] - scratch.quant[i - 1]
                             : scratch.quant[i - 1] - scratch.quant[i];
    if (gap >= significant) {
      scratch.cuts[n_cuts++] = static_cast<std::uint32_t>(i);
    }
  }
  if (n_cuts > cap - 1) {
    // Keep only the largest jumps; ties break toward the lower index so
    // the selection is a pure function of the quantized profile.
    auto gap_at = [&scratch](std::uint32_t b) {
      const Duration d = scratch.quant[b] - scratch.quant[b - 1];
      return d >= 0 ? d : -d;
    };
    std::sort(scratch.cuts.begin(),
              scratch.cuts.begin() + static_cast<std::ptrdiff_t>(n_cuts),
              [&gap_at](std::uint32_t a, std::uint32_t b) {
                const Duration ga = gap_at(a);
                const Duration gb = gap_at(b);
                if (ga != gb) return ga > gb;
                return a < b;
              });
    n_cuts = cap - 1;
    std::sort(scratch.cuts.begin(),
              scratch.cuts.begin() + static_cast<std::ptrdiff_t>(n_cuts));
  }

  // Step 3: candidate layouts, each scored with the same predictor the
  // sender's hysteresis check uses (predict_grouped_completion), so the
  // planner's choice, the adopt/keep comparison, and the returned
  // prediction are all one model.  Delta for every candidate is the worst
  // intra-group quantized spread plus one quantum — the smallest window
  // that still lets each group aggregate fully when the arrivals repeat.
  const auto layout_delta = [&scratch, &cfg](const std::size_t* gf,
                                             const std::size_t* gc,
                                             std::size_t groups) {
    Duration worst_spread = 0;
    for (std::size_t g = 0; g < groups; ++g) {
      const std::size_t f = gf[g];
      const std::size_t cnt = gc[g];
      Duration g_min = scratch.quant[f];
      Duration g_max = scratch.quant[f];
      for (std::size_t i = 1; i < cnt; ++i) {
        g_min = std::min(g_min, scratch.quant[f + i]);
        g_max = std::max(g_max, scratch.quant[f + i]);
      }
      worst_spread = std::max(worst_spread, g_max - g_min);
    }
    return clamp_duration(worst_spread + cfg.quantum, cfg.delta_min,
                          cfg.delta_max);
  };

  // Uniform power-of-two candidates first.  Ascending order + strict
  // improvement means ties resolve to fewer groups (fewer WRs), matching
  // the optimizer's convention.
  std::size_t best_uniform = 1;
  ArrivalPlanResult best;
  best.groups = 0;
  best.predicted = 0;
  for (std::size_t m = 1; m <= cap && m <= n; m *= 2) {
    const std::size_t groups =
        emit_even_groups(0, n, m, group_first, group_count, 0);
    const Duration delta = layout_delta(group_first, group_count, groups);
    const Duration predicted =
        predict_grouped_completion(p, partition_bytes, arrival, group_first,
                                   group_count, groups, delta, scratch);
    if (best.groups == 0 || predicted < best.predicted) {
      best_uniform = m;
      best.groups = groups;
      best.delta = delta;
      best.predicted = predicted;
    }
  }

  // The clustered candidate: group boundaries at the cuts, each arrival
  // cluster sub-split drain-aware so large clusters still pipeline.  The
  // per-cluster budget keeps the total within cap.
  if (n_cuts > 0) {
    const std::size_t clusters = n_cuts + 1;
    const std::size_t per_cluster_cap =
        std::max<std::size_t>(1, cap / clusters);
    std::size_t groups = 0;
    std::size_t first = 0;
    for (std::size_t c = 0; c <= n_cuts; ++c) {
      const std::size_t next = c < n_cuts ? scratch.cuts[c] : n;
      const std::size_t cnt = next - first;
      PARTIB_ASSERT(cnt >= 1);
      Duration c_min = scratch.quant[first];
      Duration c_max = scratch.quant[first];
      for (std::size_t i = 1; i < cnt; ++i) {
        c_min = std::min(c_min, scratch.quant[first + i]);
        c_max = std::max(c_max, scratch.quant[first + i]);
      }
      const std::size_t m = drain_aware_split(
          p, cnt * partition_bytes, cnt, c_max - c_min, per_cluster_cap);
      groups = emit_even_groups(first, cnt, m, group_first, group_count,
                                groups);
      first = next;
    }
    PARTIB_ASSERT(groups >= 1 && groups <= cap);
    const Duration delta = layout_delta(group_first, group_count, groups);
    const Duration predicted =
        predict_grouped_completion(p, partition_bytes, arrival, group_first,
                                   group_count, groups, delta, scratch);
    if (predicted < best.predicted) {
      // The clustered layout already sits in the output buffers.
      best.groups = groups;
      best.delta = delta;
      best.predicted = predicted;
      return best;
    }
  }

  // A uniform candidate won (or there were no cuts): rebuild it, since the
  // buffers were overwritten by later candidates.
  const std::size_t groups =
      emit_even_groups(0, n, best_uniform, group_first, group_count, 0);
  PARTIB_ASSERT(groups == best.groups);
  return best;
}

}  // namespace partib::model
