// Aggregation strategies: how user partitions map onto transport
// partitions (the paper's central design space, §IV).
//
// An Aggregator is consulted once per channel, at Psend_init time, and
// produces a Plan: how many transport partitions to use, across how many
// QPs, whether the timer-based dynamic refinement is active, and which
// software path the messages take (direct verbs for our designs, the
// UCX-like stack for the Open MPI `part_persist` baseline).
//
// Vocabulary (paper §IV-A): *user partitions* are what the application
// marks ready; *transport partitions* are what actually goes on the wire,
// one work request each.  Aggregation means multiple contiguous user
// partitions ride in a single WR — data is never staged in another buffer.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "model/arrival_plan.hpp"
#include "model/ploggp.hpp"

namespace partib::agg {

enum class Path {
  kVerbs,    ///< direct InfiniBand verbs (this paper's designs)
  kUcxLike,  ///< Open MPI + UCX software path (the persistent baseline)
};

struct Plan {
  /// Number of transport partitions P; always a power of two in
  /// [1, user_partitions].  Groups are contiguous and aligned on
  /// (user_partitions / P) boundaries.
  std::size_t transport_partitions = 1;
  /// QPs to spread transport partitions across (group g uses QP g mod q).
  int qp_count = 1;
  /// Timer-based dynamic aggregation (§IV-D): the first thread of a group
  /// to arrive waits up to `timer_delta` for the rest, then flushes the
  /// maximal contiguous runs that have arrived.
  bool timer_based = false;
  Duration timer_delta = 0;
  Path path = Path::kVerbs;

  /// Online adaptation (the auto-tuning the paper's §IV-D defers to
  /// future work): the send request measures each round's Pready spread,
  /// keeps an exponentially weighted average, and re-runs the drain-aware
  /// PLogGP optimizer with the *measured* delay at every Start.  Only the
  /// transport-partition count adapts; QPs are fixed at init.
  bool adaptive = false;
  model::LogGPParams model_params{};
  model::OptimizerConfig optimizer{};
  double ewma_alpha = 0.25;

  /// Arrival-learning mode (docs/ADAPTIVE.md): the send request records
  /// per-partition Pready offsets into an ArrivalProfile, folds them into
  /// per-partition EWMAs, and at every Start re-plans transport-partition
  /// count, group *boundaries* (non-uniform but contiguous), and the timer
  /// delta from the learned arrival vector — adopting a candidate only on
  /// a predicted >= learn.hysteresis_epsilon win over the incumbent.
  /// Mutually exclusive with `adaptive` (the scalar-EWMA predecessor).
  bool learning = false;
  model::ArrivalLearnConfig learn{};

  /// Explicit contiguous group layout (group g covers
  /// [group_first[g], group_first[g] + group_count[g])).  Empty means the
  /// uniform transport_partitions layout.  The oracle ablation arm plans
  /// directly from the true arrival vector through this.
  std::vector<std::size_t> group_first;
  std::vector<std::size_t> group_count;
};

class Aggregator {
 public:
  virtual ~Aggregator() = default;

  /// Decide the plan for a channel of `user_partitions` partitions
  /// totalling `total_bytes`.
  virtual Plan plan(std::size_t user_partitions,
                    std::size_t total_bytes) const = 0;

  virtual const char* name() const = 0;

  /// Stable, parameter-complete identity string: two aggregators with the
  /// same describe() must produce identical plans for every input.  The
  /// experiment runner hashes this into trial fingerprints, so a strategy
  /// that gains a knob must extend its describe() in the same change.
  virtual std::string describe() const { return name(); }
};

/// Clamp a requested transport-partition count to the legal range
/// [1, user_partitions], preserving power-of-two-ness.
std::size_t clamp_transport_partitions(std::size_t requested,
                                       std::size_t user_partitions);

}  // namespace partib::agg
