// The brute-force tuning table (§IV-B).
//
// The paper searched a subset of the six-dimensional configuration space
// (two processes, 4 KiB MTU) for ~23 hours on two Niagara nodes to build a
// table keyed by (user partitions, message size) holding the best
// (transport partitions, QPs).  Here the equivalent search runs on the
// simulated fabric (tools/bench_build_tuning_table); a pre-searched table
// for the default NIC parameters ships as `niagara_prebuilt()` so library
// users do not pay the search cost.
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <string>
#include <utility>

namespace partib::agg {

class TuningTable {
 public:
  struct Entry {
    std::size_t transport_partitions = 1;
    int qp_count = 1;
  };

  void set(std::size_t user_partitions, std::size_t total_bytes, Entry e);

  /// Exact lookup.
  std::optional<Entry> lookup(std::size_t user_partitions,
                              std::size_t total_bytes) const;

  /// Lookup with fallback: same user-partition count, nearest message size
  /// (log scale).  Returns nullopt only when the partition count is
  /// entirely absent.
  std::optional<Entry> lookup_nearest(std::size_t user_partitions,
                                      std::size_t total_bytes) const;

  std::size_t size() const { return table_.size(); }
  bool empty() const { return table_.empty(); }

  /// CSV round-trip: "user_partitions,total_bytes,transport_partitions,qps"
  /// per line.  Used by the table-builder tool.
  std::string to_csv() const;
  static TuningTable from_csv(const std::string& csv);

  /// Table produced by running the brute-force search on the simulated
  /// ConnectX-5/EDR fabric with default parameters.
  static TuningTable niagara_prebuilt();

 private:
  using Key = std::pair<std::size_t, std::size_t>;
  std::map<Key, Entry> table_;
};

}  // namespace partib::agg
