// The brute-force tuning table (§IV-B).
//
// The paper searched a subset of the six-dimensional configuration space
// (two processes, 4 KiB MTU) for ~23 hours on two Niagara nodes to build a
// table keyed by (user partitions, message size) holding the best
// (transport partitions, QPs).  Here the equivalent search runs on the
// simulated fabric (tools/bench_build_tuning_table); a pre-searched table
// for the default NIC parameters ships as `niagara_prebuilt()` so library
// users do not pay the search cost.
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <string>

namespace partib::agg {

class TuningTable {
 public:
  struct Entry {
    std::size_t transport_partitions = 1;
    int qp_count = 1;
  };

  void set(std::size_t user_partitions, std::size_t total_bytes, Entry e);

  /// Exact lookup.
  std::optional<Entry> lookup(std::size_t user_partitions,
                              std::size_t total_bytes) const;

  /// Lookup with fallback: same user-partition count, nearest message size
  /// (log scale); a tie between two neighbouring sizes resolves to the
  /// smaller one.  O(log table) via the per-partition-count index.
  /// Returns nullopt only when the partition count is entirely absent.
  std::optional<Entry> lookup_nearest(std::size_t user_partitions,
                                      std::size_t total_bytes) const;

  std::size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  /// CSV round-trip: "user_partitions,total_bytes,transport_partitions,qps"
  /// per line.  Used by the table-builder tool.
  std::string to_csv() const;
  static TuningTable from_csv(const std::string& csv);

  /// Table produced by running the brute-force search on the simulated
  /// ConnectX-5/EDR fabric with default parameters.
  static TuningTable niagara_prebuilt();

 private:
  /// user_partitions -> (total_bytes -> Entry).  Nested rather than flat
  /// pair-keyed so lookup_nearest can bisect the sizes of one partition
  /// count instead of scanning the whole table; iteration order (and so
  /// to_csv output) is identical to the historical flat map's.
  std::map<std::size_t, std::map<std::size_t, Entry>> table_;
  std::size_t count_ = 0;
};

}  // namespace partib::agg
