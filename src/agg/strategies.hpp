// Concrete aggregation strategies.
#pragma once

#include <cstddef>
#include <vector>

#include "agg/aggregator.hpp"
#include "agg/tuning_table.hpp"
#include "model/arrival_plan.hpp"
#include "model/ploggp.hpp"

namespace partib::agg {

/// Open MPI `part_persist` + UCX baseline: one message per user partition,
/// one QP, UCX software path, no aggregation.  This is the comparator every
/// figure's speedups are computed against.
class PersistentBaseline final : public Aggregator {
 public:
  Plan plan(std::size_t user_partitions, std::size_t) const override;
  const char* name() const override { return "persistent"; }
};

/// Fixed transport-partition / QP counts (the knob sweeps of Figs 6-7 and
/// the values a tuning table stores).
class StaticAggregator final : public Aggregator {
 public:
  StaticAggregator(std::size_t transport_partitions, int qp_count);
  Plan plan(std::size_t user_partitions, std::size_t) const override;
  const char* name() const override { return "static"; }
  std::string describe() const override;

 private:
  std::size_t transport_partitions_;
  int qp_count_;
};

/// Brute-force tuning table (§IV-B): looks up (user partitions, message
/// size) in a pre-searched table.
class TuningTableAggregator final : public Aggregator {
 public:
  explicit TuningTableAggregator(TuningTable table);
  Plan plan(std::size_t user_partitions,
            std::size_t total_bytes) const override;
  const char* name() const override { return "tuning-table"; }
  std::string describe() const override;

  const TuningTable& table() const { return table_; }

 private:
  TuningTable table_;
};

/// PLogGP-model-driven aggregation (§IV-C): the optimizer picks the
/// transport-partition count; QPs are added only as needed to stay within
/// the per-QP outstanding-WR limit.
class PLogGPAggregator : public Aggregator {
 public:
  PLogGPAggregator(model::LogGPParams params,
                   model::OptimizerConfig cfg = {},
                   int max_wr_per_qp = 16);
  Plan plan(std::size_t user_partitions,
            std::size_t total_bytes) const override;
  const char* name() const override { return "ploggp"; }
  std::string describe() const override;

 protected:
  model::LogGPParams params_;
  model::OptimizerConfig cfg_;
  int max_wr_per_qp_;
};

/// Online-adaptive PLogGP aggregation — the auto-tuning approach the
/// paper explicitly defers ("An online auto-tuning approach could be used
/// to tune the PLogGP model input delay parameter", §IV-D).  Starts from
/// the drain-aware PLogGP plan for an initial delay guess; the runtime
/// then re-optimizes the transport-partition count each round against the
/// measured arrival spread.  Restricted to a single QP so the receiver's
/// worst-case receive-WR budget is independent of the evolving plan.
class AdaptivePLogGPAggregator final : public Aggregator {
 public:
  AdaptivePLogGPAggregator(model::LogGPParams params,
                           Duration initial_delay_guess = msec(4),
                           double ewma_alpha = 0.25);
  Plan plan(std::size_t user_partitions,
            std::size_t total_bytes) const override;
  const char* name() const override { return "adaptive-ploggp"; }
  std::string describe() const override;

 private:
  model::LogGPParams params_;
  Duration initial_delay_;
  double alpha_;
};

/// Online arrival-learning aggregation (docs/ADAPTIVE.md) — the full
/// version of the auto-tuning the paper's §IV-D defers to future work.
/// Starts from the drain-aware PLogGP plan for an initial delay guess
/// with the timer refinement on; the runtime then learns the
/// per-partition arrival pattern (part/arrival_profile.hpp) and at every
/// Start re-plans transport-partition count, non-uniform contiguous group
/// boundaries, and the timer delta from the learned vector, with
/// hysteresis.  Single QP, like AdaptivePLogGPAggregator, so the
/// receiver's worst-case receive-WR budget never depends on the evolving
/// plan.
class ArrivalLearningAggregator final : public Aggregator {
 public:
  explicit ArrivalLearningAggregator(model::LogGPParams params,
                                     Duration initial_delay_guess = msec(4),
                                     model::ArrivalLearnConfig cfg = {});
  Plan plan(std::size_t user_partitions,
            std::size_t total_bytes) const override;
  const char* name() const override { return "arrival-learning"; }
  std::string describe() const override;

  const model::ArrivalLearnConfig& config() const { return cfg_; }

 private:
  model::LogGPParams params_;
  Duration initial_delay_;
  model::ArrivalLearnConfig cfg_;
};

/// Ablation upper bound: handed the true per-partition arrival vector at
/// init, plans the non-uniform layout and delta directly from it (no
/// learning, no warm-up).  For regime-shifting workloads the zoo instead
/// re-seeds a learning channel with the truth each epoch
/// (PsendRequest::seed_profile), which subsumes this for the stationary
/// shapes too — this class exists so the oracle is also reachable as a
/// plain init-time Aggregator.
class OracleArrivalAggregator final : public Aggregator {
 public:
  OracleArrivalAggregator(model::LogGPParams params,
                          std::vector<Duration> arrival,
                          model::ArrivalLearnConfig cfg = {});
  Plan plan(std::size_t user_partitions,
            std::size_t total_bytes) const override;
  const char* name() const override { return "oracle-arrival"; }
  std::string describe() const override;

 private:
  model::LogGPParams params_;
  std::vector<Duration> arrival_;
  model::ArrivalLearnConfig cfg_;
};

/// Timer-based PLogGP aggregation (§IV-D): the PLogGP plan plus the
/// arrival-aware delta timer.
class TimerPLogGPAggregator final : public PLogGPAggregator {
 public:
  TimerPLogGPAggregator(model::LogGPParams params, Duration delta,
                        model::OptimizerConfig cfg = {},
                        int max_wr_per_qp = 16);
  Plan plan(std::size_t user_partitions,
            std::size_t total_bytes) const override;
  const char* name() const override { return "timer-ploggp"; }
  std::string describe() const override;

  Duration delta() const { return delta_; }

 private:
  Duration delta_;
};

}  // namespace partib::agg
