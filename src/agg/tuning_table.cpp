#include "agg/tuning_table.hpp"

#include <cmath>
#include <cstdio>
#include <iterator>
#include <sstream>

#include "common/assert.hpp"
#include "common/bits.hpp"
#include "common/units.hpp"

namespace partib::agg {

void TuningTable::set(std::size_t user_partitions, std::size_t total_bytes,
                      Entry e) {
  PARTIB_ASSERT(e.transport_partitions >= 1 && e.qp_count >= 1);
  auto& sizes = table_[user_partitions];
  if (sizes.emplace(total_bytes, e).second) {
    ++count_;
  } else {
    sizes[total_bytes] = e;  // overwrite, count unchanged
  }
}

std::optional<TuningTable::Entry> TuningTable::lookup(
    std::size_t user_partitions, std::size_t total_bytes) const {
  auto part = table_.find(user_partitions);
  if (part == table_.end()) return std::nullopt;
  auto it = part->second.find(total_bytes);
  if (it == part->second.end()) return std::nullopt;
  return it->second;
}

std::optional<TuningTable::Entry> TuningTable::lookup_nearest(
    std::size_t user_partitions, std::size_t total_bytes) const {
  auto part = table_.find(user_partitions);
  if (part == table_.end() || part->second.empty()) return std::nullopt;
  const auto& sizes = part->second;

  // Bisect to the insertion point, then the nearest entry (log scale) is
  // one of the two neighbours.  `<=` keeps the deterministic tie-break:
  // equidistant sizes resolve to the smaller.
  auto hi = sizes.lower_bound(total_bytes);
  if (hi == sizes.end()) return std::prev(hi)->second;
  if (hi == sizes.begin()) return hi->second;
  const auto lo = std::prev(hi);
  const double want = std::log2(static_cast<double>(total_bytes));
  const double d_lo =
      std::fabs(std::log2(static_cast<double>(lo->first)) - want);
  const double d_hi =
      std::fabs(std::log2(static_cast<double>(hi->first)) - want);
  return d_lo <= d_hi ? lo->second : hi->second;
}

std::string TuningTable::to_csv() const {
  std::ostringstream out;
  out << "user_partitions,total_bytes,transport_partitions,qp_count\n";
  for (const auto& [parts, sizes] : table_) {
    for (const auto& [bytes, e] : sizes) {
      out << parts << ',' << bytes << ',' << e.transport_partitions << ','
          << e.qp_count << '\n';
    }
  }
  return out.str();
}

TuningTable TuningTable::from_csv(const std::string& csv) {
  TuningTable t;
  std::istringstream in(csv);
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (first && line.find("user_partitions") != std::string::npos) {
      first = false;
      continue;
    }
    first = false;
    std::size_t up = 0, bytes = 0, tp = 0;
    int qp = 0;
    const int n = std::sscanf(line.c_str(), "%zu,%zu,%zu,%d", &up, &bytes,
                              &tp, &qp);
    PARTIB_ASSERT_MSG(n == 4, "malformed tuning-table CSV line");
    t.set(up, bytes, Entry{tp, qp});
  }
  return t;
}

TuningTable TuningTable::niagara_prebuilt() {
  // Verbatim output of bench/bench_build_tuning_table on the default
  // ConnectX-5/EDR simulated fabric (brute force over power-of-two
  // transport-partition and QP counts, overhead-benchmark objective,
  // 10 iterations per point).  Like the paper's searched table it shares
  // the PLogGP trend (transport partitions never shrink with message
  // size) but splits more aggressively at medium sizes: the benchmark's
  // thread-release jitter rewards early-bird streaming, which the
  // many-before-one model does not credit.  The paper saw the same
  // effect — its table reached 2.13x at 512 KiB where PLogGP's plan got
  // 1.38x (§V-B2) — and "the exact cut off points varied" (§V-B1).
  static const char* kSearched =
      "user_partitions,total_bytes,transport_partitions,qp_count\n"
      "4,2048,1,1\n4,4096,2,2\n4,8192,2,2\n4,16384,4,4\n4,32768,4,4\n"
      "4,65536,4,4\n4,131072,4,4\n4,262144,4,4\n4,524288,4,4\n"
      "4,1048576,4,4\n4,2097152,4,4\n4,4194304,4,4\n4,8388608,4,4\n"
      "4,16777216,4,4\n"
      "16,2048,16,4\n16,4096,16,4\n16,8192,16,4\n16,16384,16,4\n"
      "16,32768,16,4\n16,65536,16,4\n16,131072,16,4\n16,262144,16,4\n"
      "16,524288,16,4\n16,1048576,16,4\n16,2097152,16,4\n"
      "16,4194304,16,4\n16,8388608,16,4\n16,16777216,16,4\n"
      "32,2048,16,4\n32,4096,16,4\n32,8192,32,4\n32,16384,32,4\n"
      "32,32768,32,4\n32,65536,32,4\n32,131072,32,4\n32,262144,32,4\n"
      "32,524288,32,4\n32,1048576,32,4\n32,2097152,32,4\n"
      "32,4194304,32,4\n32,8388608,32,4\n32,16777216,32,4\n"
      "128,2048,32,4\n128,4096,32,4\n128,8192,32,4\n128,16384,32,4\n"
      "128,32768,32,4\n128,65536,32,4\n128,131072,32,4\n"
      "128,262144,32,4\n128,524288,32,4\n128,1048576,32,4\n"
      "128,2097152,32,4\n128,4194304,32,4\n128,8388608,32,4\n"
      "128,16777216,32,4\n";
  return from_csv(kSearched);
}

}  // namespace partib::agg
