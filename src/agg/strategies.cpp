#include "agg/strategies.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "common/assert.hpp"
#include "common/bits.hpp"

namespace partib::agg {

namespace {

/// Canonical "L= o_s= o_r= g= G=" fragment shared by every model-driven
/// strategy's describe().  %.17g round-trips doubles exactly.
std::string loggp_str(const model::LogGPParams& p) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "L=%" PRId64 " o_s=%" PRId64 " o_r=%" PRId64 " g=%" PRId64
                " G=%.17g",
                static_cast<std::int64_t>(p.L),
                static_cast<std::int64_t>(p.o_s),
                static_cast<std::int64_t>(p.o_r),
                static_cast<std::int64_t>(p.g), p.G);
  return buf;
}

std::string optimizer_str(const model::OptimizerConfig& cfg) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "delay=%" PRId64 " maxtp=%zu",
                static_cast<std::int64_t>(cfg.delay),
                cfg.max_transport_partitions);
  return buf;
}

}  // namespace

std::size_t clamp_transport_partitions(std::size_t requested,
                                       std::size_t user_partitions) {
  PARTIB_ASSERT(is_pow2(user_partitions));
  const std::size_t p = prev_pow2(std::max<std::size_t>(requested, 1));
  return std::min(p, user_partitions);
}

// -- PersistentBaseline ------------------------------------------------------

Plan PersistentBaseline::plan(std::size_t user_partitions,
                              std::size_t) const {
  Plan p;
  p.transport_partitions = user_partitions;  // no aggregation
  p.qp_count = 1;                            // UCX: one RC channel per peer
  p.path = Path::kUcxLike;
  return p;
}

// -- StaticAggregator --------------------------------------------------------

StaticAggregator::StaticAggregator(std::size_t transport_partitions,
                                   int qp_count)
    : transport_partitions_(transport_partitions), qp_count_(qp_count) {
  PARTIB_ASSERT(is_pow2(transport_partitions) && qp_count >= 1);
}

Plan StaticAggregator::plan(std::size_t user_partitions, std::size_t) const {
  Plan p;
  p.transport_partitions =
      clamp_transport_partitions(transport_partitions_, user_partitions);
  p.qp_count = qp_count_;
  return p;
}

std::string StaticAggregator::describe() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "static tp=%zu qp=%d",
                transport_partitions_, qp_count_);
  return buf;
}

// -- TuningTableAggregator ---------------------------------------------------

TuningTableAggregator::TuningTableAggregator(TuningTable table)
    : table_(std::move(table)) {
  PARTIB_ASSERT_MSG(!table_.empty(), "tuning table must not be empty");
}

Plan TuningTableAggregator::plan(std::size_t user_partitions,
                                 std::size_t total_bytes) const {
  Plan p;
  auto entry = table_.lookup(user_partitions, total_bytes);
  if (!entry) entry = table_.lookup_nearest(user_partitions, total_bytes);
  if (entry) {
    p.transport_partitions = clamp_transport_partitions(
        entry->transport_partitions, user_partitions);
    p.qp_count = entry->qp_count;
  }
  return p;
}

std::string TuningTableAggregator::describe() const {
  // The whole table is the identity; hash its canonical CSV form rather
  // than embedding it (tables can be hundreds of rows).
  const std::string csv = table_.to_csv();
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a 64
  for (unsigned char c : csv) {
    h ^= c;
    h *= 0x100000001B3ULL;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "tuning-table rows=%zu csv=%016" PRIx64,
                table_.size(), h);
  return buf;
}

// -- PLogGPAggregator --------------------------------------------------------

PLogGPAggregator::PLogGPAggregator(model::LogGPParams params,
                                   model::OptimizerConfig cfg,
                                   int max_wr_per_qp)
    : params_(params), cfg_(cfg), max_wr_per_qp_(max_wr_per_qp) {
  PARTIB_ASSERT(max_wr_per_qp >= 1);
}

Plan PLogGPAggregator::plan(std::size_t user_partitions,
                            std::size_t total_bytes) const {
  Plan p;
  const std::size_t tp = model::optimal_transport_partitions(
      params_, total_bytes, user_partitions, cfg_);
  p.transport_partitions = clamp_transport_partitions(tp, user_partitions);
  // Only as many QPs as the outstanding-WR limit requires (§IV-A: multiple
  // QPs exist to respect the 16-concurrent-RDMA-WR hardware limit).
  p.qp_count = static_cast<int>(
      ceil_div(p.transport_partitions,
               static_cast<std::size_t>(max_wr_per_qp_)));
  return p;
}

std::string PLogGPAggregator::describe() const {
  char buf[48];
  std::snprintf(buf, sizeof(buf), " maxwr=%d", max_wr_per_qp_);
  return std::string(name()) + " " + loggp_str(params_) + " " +
         optimizer_str(cfg_) + buf;
}

// -- AdaptivePLogGPAggregator ------------------------------------------------

AdaptivePLogGPAggregator::AdaptivePLogGPAggregator(model::LogGPParams params,
                                                   Duration initial_delay,
                                                   double ewma_alpha)
    : params_(params), initial_delay_(initial_delay), alpha_(ewma_alpha) {
  PARTIB_ASSERT(initial_delay >= 0);
  PARTIB_ASSERT(ewma_alpha > 0.0 && ewma_alpha <= 1.0);
}

Plan AdaptivePLogGPAggregator::plan(std::size_t user_partitions,
                                    std::size_t total_bytes) const {
  Plan p;
  model::OptimizerConfig cfg;
  cfg.delay = initial_delay_;
  p.transport_partitions = clamp_transport_partitions(
      model::optimal_transport_partitions_with_drain(params_, total_bytes,
                                                     user_partitions, cfg),
      user_partitions);
  p.qp_count = 1;  // see class comment
  p.adaptive = true;
  p.model_params = params_;
  p.optimizer = cfg;
  p.ewma_alpha = alpha_;
  return p;
}

std::string AdaptivePLogGPAggregator::describe() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), " delay0=%" PRId64 " alpha=%.17g",
                static_cast<std::int64_t>(initial_delay_), alpha_);
  return std::string("adaptive-ploggp ") + loggp_str(params_) + buf;
}

// -- TimerPLogGPAggregator ---------------------------------------------------

TimerPLogGPAggregator::TimerPLogGPAggregator(model::LogGPParams params,
                                             Duration delta,
                                             model::OptimizerConfig cfg,
                                             int max_wr_per_qp)
    : PLogGPAggregator(params, cfg, max_wr_per_qp), delta_(delta) {
  PARTIB_ASSERT(delta >= 0);
}

Plan TimerPLogGPAggregator::plan(std::size_t user_partitions,
                                 std::size_t total_bytes) const {
  Plan p = PLogGPAggregator::plan(user_partitions, total_bytes);
  p.timer_based = true;
  p.timer_delta = delta_;
  return p;
}

std::string TimerPLogGPAggregator::describe() const {
  char buf[48];
  std::snprintf(buf, sizeof(buf), " delta=%" PRId64,
                static_cast<std::int64_t>(delta_));
  return PLogGPAggregator::describe() + buf;
}

}  // namespace partib::agg
