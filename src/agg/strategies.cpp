#include "agg/strategies.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "common/assert.hpp"
#include "common/bits.hpp"

namespace partib::agg {

namespace {

/// Canonical "L= o_s= o_r= g= G=" fragment shared by every model-driven
/// strategy's describe().  %.17g round-trips doubles exactly.
std::string loggp_str(const model::LogGPParams& p) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "L=%" PRId64 " o_s=%" PRId64 " o_r=%" PRId64 " g=%" PRId64
                " G=%.17g",
                static_cast<std::int64_t>(p.L),
                static_cast<std::int64_t>(p.o_s),
                static_cast<std::int64_t>(p.o_r),
                static_cast<std::int64_t>(p.g), p.G);
  return buf;
}

std::string optimizer_str(const model::OptimizerConfig& cfg) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "delay=%" PRId64 " maxtp=%zu",
                static_cast<std::int64_t>(cfg.delay),
                cfg.max_transport_partitions);
  return buf;
}

}  // namespace

std::size_t clamp_transport_partitions(std::size_t requested,
                                       std::size_t user_partitions) {
  PARTIB_ASSERT(is_pow2(user_partitions));
  const std::size_t p = prev_pow2(std::max<std::size_t>(requested, 1));
  return std::min(p, user_partitions);
}

// -- PersistentBaseline ------------------------------------------------------

Plan PersistentBaseline::plan(std::size_t user_partitions,
                              std::size_t) const {
  Plan p;
  p.transport_partitions = user_partitions;  // no aggregation
  p.qp_count = 1;                            // UCX: one RC channel per peer
  p.path = Path::kUcxLike;
  return p;
}

// -- StaticAggregator --------------------------------------------------------

StaticAggregator::StaticAggregator(std::size_t transport_partitions,
                                   int qp_count)
    : transport_partitions_(transport_partitions), qp_count_(qp_count) {
  PARTIB_ASSERT(is_pow2(transport_partitions) && qp_count >= 1);
}

Plan StaticAggregator::plan(std::size_t user_partitions, std::size_t) const {
  Plan p;
  p.transport_partitions =
      clamp_transport_partitions(transport_partitions_, user_partitions);
  p.qp_count = qp_count_;
  return p;
}

std::string StaticAggregator::describe() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "static tp=%zu qp=%d",
                transport_partitions_, qp_count_);
  return buf;
}

// -- TuningTableAggregator ---------------------------------------------------

TuningTableAggregator::TuningTableAggregator(TuningTable table)
    : table_(std::move(table)) {
  PARTIB_ASSERT_MSG(!table_.empty(), "tuning table must not be empty");
}

Plan TuningTableAggregator::plan(std::size_t user_partitions,
                                 std::size_t total_bytes) const {
  Plan p;
  auto entry = table_.lookup(user_partitions, total_bytes);
  if (!entry) entry = table_.lookup_nearest(user_partitions, total_bytes);
  if (entry) {
    p.transport_partitions = clamp_transport_partitions(
        entry->transport_partitions, user_partitions);
    p.qp_count = entry->qp_count;
  }
  return p;
}

std::string TuningTableAggregator::describe() const {
  // The whole table is the identity; hash its canonical CSV form rather
  // than embedding it (tables can be hundreds of rows).
  const std::string csv = table_.to_csv();
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a 64
  for (unsigned char c : csv) {
    h ^= c;
    h *= 0x100000001B3ULL;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "tuning-table rows=%zu csv=%016" PRIx64,
                table_.size(), h);
  return buf;
}

// -- PLogGPAggregator --------------------------------------------------------

PLogGPAggregator::PLogGPAggregator(model::LogGPParams params,
                                   model::OptimizerConfig cfg,
                                   int max_wr_per_qp)
    : params_(params), cfg_(cfg), max_wr_per_qp_(max_wr_per_qp) {
  PARTIB_ASSERT(max_wr_per_qp >= 1);
}

Plan PLogGPAggregator::plan(std::size_t user_partitions,
                            std::size_t total_bytes) const {
  Plan p;
  const std::size_t tp = model::optimal_transport_partitions(
      params_, total_bytes, user_partitions, cfg_);
  p.transport_partitions = clamp_transport_partitions(tp, user_partitions);
  // Only as many QPs as the outstanding-WR limit requires (§IV-A: multiple
  // QPs exist to respect the 16-concurrent-RDMA-WR hardware limit).
  p.qp_count = static_cast<int>(
      ceil_div(p.transport_partitions,
               static_cast<std::size_t>(max_wr_per_qp_)));
  return p;
}

std::string PLogGPAggregator::describe() const {
  char buf[48];
  std::snprintf(buf, sizeof(buf), " maxwr=%d", max_wr_per_qp_);
  return std::string(name()) + " " + loggp_str(params_) + " " +
         optimizer_str(cfg_) + buf;
}

// -- AdaptivePLogGPAggregator ------------------------------------------------

AdaptivePLogGPAggregator::AdaptivePLogGPAggregator(model::LogGPParams params,
                                                   Duration initial_delay,
                                                   double ewma_alpha)
    : params_(params), initial_delay_(initial_delay), alpha_(ewma_alpha) {
  PARTIB_ASSERT(initial_delay >= 0);
  PARTIB_ASSERT(ewma_alpha > 0.0 && ewma_alpha <= 1.0);
}

Plan AdaptivePLogGPAggregator::plan(std::size_t user_partitions,
                                    std::size_t total_bytes) const {
  Plan p;
  model::OptimizerConfig cfg;
  cfg.delay = initial_delay_;
  p.transport_partitions = clamp_transport_partitions(
      model::optimal_transport_partitions_with_drain(params_, total_bytes,
                                                     user_partitions, cfg),
      user_partitions);
  p.qp_count = 1;  // see class comment
  p.adaptive = true;
  p.model_params = params_;
  p.optimizer = cfg;
  p.ewma_alpha = alpha_;
  return p;
}

std::string AdaptivePLogGPAggregator::describe() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), " delay0=%" PRId64 " alpha=%.17g",
                static_cast<std::int64_t>(initial_delay_), alpha_);
  return std::string("adaptive-ploggp ") + loggp_str(params_) + buf;
}

// -- ArrivalLearningAggregator -----------------------------------------------

namespace {

Duration clamp_delta(Duration v, Duration lo, Duration hi) {
  return v < lo ? lo : (v > hi ? hi : v);
}

/// Canonical "alpha= eps= dmin= dmax= quantum= maxg=" fragment: every
/// ArrivalLearnConfig knob, so the runner's content-addressed cache can
/// never serve a plan learned under different hyper-parameters.
std::string learn_str(const model::ArrivalLearnConfig& cfg) {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "alpha=%.17g eps=%.17g dmin=%" PRId64 " dmax=%" PRId64
                " quantum=%" PRId64 " maxg=%zu",
                cfg.ewma_alpha, cfg.hysteresis_epsilon,
                static_cast<std::int64_t>(cfg.delta_min),
                static_cast<std::int64_t>(cfg.delta_max),
                static_cast<std::int64_t>(cfg.quantum), cfg.max_groups);
  return buf;
}

}  // namespace

ArrivalLearningAggregator::ArrivalLearningAggregator(
    model::LogGPParams params, Duration initial_delay_guess,
    model::ArrivalLearnConfig cfg)
    : params_(params), initial_delay_(initial_delay_guess), cfg_(cfg) {
  PARTIB_ASSERT(initial_delay_guess >= 0);
  PARTIB_ASSERT(cfg.ewma_alpha > 0.0 && cfg.ewma_alpha <= 1.0);
  PARTIB_ASSERT(cfg.hysteresis_epsilon >= 0.0);
  PARTIB_ASSERT(cfg.delta_min >= 0 && cfg.delta_max >= cfg.delta_min);
  PARTIB_ASSERT(cfg.quantum >= 1);
  PARTIB_ASSERT(cfg.max_groups >= 1);
}

Plan ArrivalLearningAggregator::plan(std::size_t user_partitions,
                                     std::size_t total_bytes) const {
  Plan p;
  model::OptimizerConfig ocfg;
  ocfg.delay = initial_delay_;
  ocfg.max_transport_partitions = cfg_.max_groups;
  p.transport_partitions = clamp_transport_partitions(
      model::optimal_transport_partitions_with_drain(params_, total_bytes,
                                                     user_partitions, ocfg),
      user_partitions);
  p.qp_count = 1;  // see class comment
  p.timer_based = true;
  p.timer_delta = clamp_delta(initial_delay_, cfg_.delta_min, cfg_.delta_max);
  p.learning = true;
  p.learn = cfg_;
  p.model_params = params_;
  p.optimizer = ocfg;
  p.ewma_alpha = cfg_.ewma_alpha;
  return p;
}

std::string ArrivalLearningAggregator::describe() const {
  char buf[48];
  std::snprintf(buf, sizeof(buf), " delay0=%" PRId64,
                static_cast<std::int64_t>(initial_delay_));
  return std::string("arrival-learning/v1 ") + loggp_str(params_) + buf +
         " " + learn_str(cfg_);
}

// -- OracleArrivalAggregator -------------------------------------------------

OracleArrivalAggregator::OracleArrivalAggregator(
    model::LogGPParams params, std::vector<Duration> arrival,
    model::ArrivalLearnConfig cfg)
    : params_(params), arrival_(std::move(arrival)), cfg_(cfg) {
  PARTIB_ASSERT(!arrival_.empty());
}

Plan OracleArrivalAggregator::plan(std::size_t user_partitions,
                                   std::size_t total_bytes) const {
  PARTIB_ASSERT_MSG(user_partitions == arrival_.size(),
                    "oracle arrival vector does not match partition count");
  Plan p;
  const std::size_t cap = std::min(cfg_.max_groups, user_partitions);
  p.group_first.resize(cap);
  p.group_count.resize(cap);
  model::ArrivalPlanScratch scratch;
  scratch.reserve(user_partitions);
  const model::ArrivalPlanResult r = model::plan_from_arrivals(
      params_, total_bytes, arrival_.data(), user_partitions, cfg_,
      p.group_first.data(), p.group_count.data(), scratch);
  p.group_first.resize(r.groups);
  p.group_count.resize(r.groups);
  p.transport_partitions = r.groups;
  p.qp_count = 1;
  p.timer_based = true;
  p.timer_delta = r.delta;
  p.model_params = params_;
  return p;
}

std::string OracleArrivalAggregator::describe() const {
  // The whole arrival vector is part of the identity; hash it rather than
  // embedding thousands of offsets.
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a 64
  for (const Duration a : arrival_) {
    auto v = static_cast<std::uint64_t>(a);
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 0x100000001B3ULL;
    }
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), " n=%zu arrivals=%016" PRIx64,
                arrival_.size(), h);
  return std::string("oracle-arrival/v1 ") + loggp_str(params_) + buf +
         " " + learn_str(cfg_);
}

// -- TimerPLogGPAggregator ---------------------------------------------------

TimerPLogGPAggregator::TimerPLogGPAggregator(model::LogGPParams params,
                                             Duration delta,
                                             model::OptimizerConfig cfg,
                                             int max_wr_per_qp)
    : PLogGPAggregator(params, cfg, max_wr_per_qp), delta_(delta) {
  PARTIB_ASSERT(delta >= 0);
}

Plan TimerPLogGPAggregator::plan(std::size_t user_partitions,
                                 std::size_t total_bytes) const {
  Plan p = PLogGPAggregator::plan(user_partitions, total_bytes);
  p.timer_based = true;
  p.timer_delta = delta_;
  return p;
}

std::string TimerPLogGPAggregator::describe() const {
  char buf[48];
  std::snprintf(buf, sizeof(buf), " delta=%" PRId64,
                static_cast<std::int64_t>(delta_));
  return PLogGPAggregator::describe() + buf;
}

}  // namespace partib::agg
