// Discrete-event simulation engine.
//
// The engine owns virtual time for an entire simulated cluster.  Components
// (NICs, wires, CPU cores, aggregation timers) schedule callbacks at future
// virtual instants; `run()` dispatches them in (time, insertion-order).
// Determinism is a hard requirement — the engine is the clock for every
// benchmark figure — so ties are broken by a monotonically increasing
// sequence number, never by pointer or hash order.
//
// Hot-path layout (see docs/PERF.md): pending events live in a slot table
// of `common::InlineFn<void()>` callbacks — move-only, 48-byte inline
// buffer, so typical capture sets never touch the allocator.  Slots are
// chained into per-timestamp FIFO buckets (intrusive singly-linked lists
// through the slot table), and an indexed 4-ary min-heap orders the
// distinct pending timestamps.  FIFO order within a bucket *is* sequence
// order, so dispatch order is exactly `(time, seq)` — byte-identical to
// the original `std::map<(time, seq), Event>` implementation (proven by
// tests/sim/engine_differential_test.cpp) — while DES workloads' heavy
// timestamp reuse (zero-delay chains, simultaneous completions) turns
// most queue operations into O(1) list appends/pops instead of O(log n)
// tree rebalances.  `cancel` is O(1) lazy: the slot's seq doubles as its
// generation; cancelling retires the generation and the dead list entry
// is discarded when it surfaces (with an amortized compaction pass so
// cancel-heavy workloads cannot grow the queue without bound).
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/bits.hpp"
#include "common/inline_fn.hpp"
#include "common/time.hpp"

namespace partib::sim {

class Engine {
 public:
  using Callback = common::InlineFn<void()>;

  /// Observer invoked at every event dispatch with the event's (time,
  /// sequence number, scheduling-site tag).  The check/ determinism
  /// auditor attaches here to hash the dispatch stream; the hook is
  /// generic so tracing tools can use it too.  `site` is the tag passed
  /// to schedule_at/schedule_after (nullptr when the caller gave none).
  /// Cold path — stays a std::function for copyability.
  using DispatchObserver =
      std::function<void(Time, std::uint64_t, const char*)>;

  /// Token for cancelling a pending event (e.g. disarming an aggregation
  /// timer when all partitions arrive before the deadline).  `slot` is
  /// the engine-internal storage index; `seq` doubles as the slot's
  /// generation, so a stale id (already ran / already cancelled / slot
  /// reused) is rejected in O(1) without any lookup structure.
  struct EventId {
    Time time = 0;
    std::uint64_t seq = 0;
    std::uint32_t slot = 0;
    bool valid() const { return seq != 0; }
  };

  Engine() = default;
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  Time now() const { return now_; }

  /// Schedule `cb` at absolute virtual time `t` (must be >= now()).
  /// `site` optionally names the scheduling call-site (a string literal;
  /// the engine stores the pointer, not a copy) for dispatch observers.
  EventId schedule_at(Time t, Callback cb, const char* site = nullptr);

  /// Schedule `cb` `d` nanoseconds from now (d must be >= 0).
  EventId schedule_after(Duration d, Callback cb, const char* site = nullptr);

  /// Hot-path overloads: constructing the callback directly in its slot
  /// skips the temporary InlineFn and its relocation entirely.  Any
  /// callable a Callback accepts lands here; passing an actual Callback
  /// picks the non-template overloads above.
  template <typename Fn>
    requires(!std::is_same_v<std::remove_cvref_t<Fn>, Callback> &&
             std::is_invocable_r_v<void, std::remove_cvref_t<Fn>&>)
  EventId schedule_at(Time t, Fn&& fn, const char* site = nullptr) {
    const EventId id = schedule_slot(t, site);
    slot_ref(id.slot).cb.emplace(std::forward<Fn>(fn));
    if constexpr (Callback::needs_destroy_for<Fn>()) nontrivial_cb_ = true;
    return id;
  }

  template <typename Fn>
    requires(!std::is_same_v<std::remove_cvref_t<Fn>, Callback> &&
             std::is_invocable_r_v<void, std::remove_cvref_t<Fn>&>)
  EventId schedule_after(Duration d, Fn&& fn, const char* site = nullptr) {
    PARTIB_ASSERT_MSG(d >= 0, "negative delay");
    return schedule_at(now_ + d, std::forward<Fn>(fn), site);
  }

  /// Remove a pending event.  Returns false if it already ran, was already
  /// cancelled, or the id is invalid.  O(1).
  bool cancel(EventId id);

  /// Dispatch the single earliest event.  Returns false if none pending.
  bool step();

  /// Dispatch until no events remain.  Returns the number dispatched.
  std::size_t run();

  /// Dispatch every event with time <= deadline, then advance the clock to
  /// `deadline` even if idle.  Returns the number dispatched.
  std::size_t run_until(Time deadline);

  /// Real-time bridge loop for the threaded runtime (src/runtime/): drain
  /// the event queue, then invoke `pump` to inject work arriving from
  /// producer threads (shard-ring drains).  `pump` returns true to keep
  /// pumping; the loop exits once pump says stop *and* the queue is empty
  /// (a stop verdict that scheduled new events keeps the loop alive until
  /// they drain).  The engine itself stays single-threaded: only the
  /// calling thread ever touches it, and `pump` is where cross-thread
  /// hand-off happens.  Returns the number of events dispatched.
  std::size_t run_pumped(const std::function<bool()>& pump);

  bool empty() const { return live_ == 0; }
  std::size_t pending() const { return live_; }
  std::uint64_t processed_count() const { return processed_; }

  /// Install (or clear, with nullptr) the dispatch observer.
  void set_dispatch_observer(DispatchObserver obs) {
    observer_ = std::move(obs);
  }

 private:
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;

  /// One heap entry per *distinct pending timestamp*; `time` is unique
  /// within the heap, so sift comparisons are a single integer compare.
  /// `cell` indexes the hash cell holding that timestamp's FIFO (cells
  /// only move on rehash, which re-anchors every heap entry).
  struct HeapEntry {
    Time time;
    std::uint32_t cell;
  };

  /// Event payload: exactly one cache line (56-byte InlineFn + site
  /// tag).  The queue-structure fields that other events' operations
  /// touch — the FIFO link and the generation — live in dense parallel
  /// arrays (slot_next_, slot_seq_) instead: appending behind 1000
  /// other events then reads a 4-byte entry in a packed array, not a
  /// cold 64-byte slot.
  struct Slot {
    Callback cb;
    const char* site = nullptr;
  };

  // Cell state is packed into `tail` (a live bucket's tail is always a
  // real slot index) so a cell stays 16 bytes — the open-addressing map
  // cell IS the per-timestamp FIFO bucket, one random access instead of
  // two on every schedule/dispatch.
  static constexpr std::uint32_t kCellEmpty = 0xFFFFFFFFu;
  static constexpr std::uint32_t kCellTomb = 0xFFFFFFFEu;

  /// Hash cell (linear probing, power-of-two capacity, tombstone
  /// deletion) holding one pending timestamp's FIFO of events, linked
  /// through Slot::next.  `head == kNil` with a live tail means the
  /// bucket is exhausted but still registered (events may still land on
  /// this timestamp before settle_top() retires it).
  struct TimeCell {
    Time time;
    std::uint32_t head;
    std::uint32_t tail;  // kCellEmpty / kCellTomb encode the map state
  };

  // Slots live in fixed-size raw slabs, not one contiguous vector:
  // growth never moves existing slots (a vector realloc would run the
  // InlineFn move per 96-byte slot), addresses stay stable for the
  // lifetime of the engine, and slots are constructed lazily on first
  // use so a short-lived engine touches only the slots it needs.
  static constexpr std::uint32_t kSlabBits = 10;
  static constexpr std::uint32_t kSlabSize = 1u << kSlabBits;

  Time now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t processed_ = 0;
  std::size_t live_ = 0;  // scheduled, not yet dispatched or cancelled
  std::size_t dead_ = 0;  // cancelled tombstones still linked in buckets
  std::vector<HeapEntry> heap_;
  std::vector<Slot*> slabs_;     // uninitialized past slot_count_
  std::uint32_t slot_count_ = 0;  // slots constructed so far, ever
  std::vector<std::uint64_t> slot_seq_;   // generation; 0 = dead slot
  std::vector<std::uint32_t> slot_next_;  // FIFO link within a bucket
  std::vector<std::uint32_t> free_slots_;
  bool nontrivial_cb_ = false;  // any pending cb may need a destructor
  std::vector<TimeCell> hash_;
  std::size_t hash_mask_ = 0;
  std::size_t hash_used_ = 0;  // full + tombstone cells
  DispatchObserver observer_;

  Slot& slot_ref(std::uint32_t i) {
    return slabs_[i >> kSlabBits][i & (kSlabSize - 1)];
  }

  static std::uint64_t hash_time(Time t) {
    auto z = static_cast<std::uint64_t>(t) * 0x9E3779B97F4A7C15ULL;
    return z ^ (z >> 32);
  }

  static constexpr std::size_t kHeapArity = 4;
  static constexpr std::size_t kMinHashCapacity = 64;

  void sift_down(std::size_t i);
  void pop_heap_top();
  void rehash(std::size_t capacity);
  /// Unlink every cancelled slot and retire emptied buckets (amortized
  /// memory bound when a workload cancels far more than it dispatches).
  void compact();

  // The per-event primitives below are defined in the header so every
  // schedule/dispatch site inlines them — measured ~10% of the hot-path
  // cost otherwise goes to call overhead and lost constant propagation.

  void sift_up(std::size_t i) {
    const HeapEntry e = heap_[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) / kHeapArity;
      if (e.time >= heap_[parent].time) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = e;
  }

  /// Allocate a slot, link it into the bucket for `t` (creating the
  /// bucket and its heap/hash entries if `t` has no pending events) and
  /// assign the next sequence number.  The caller fills the slot's cb.
  EventId schedule_slot(Time t, const char* site) {
    PARTIB_ASSERT_MSG(t >= now_, "cannot schedule an event in the past");
    // Start the probe cell's cache fill now; the slot bookkeeping below
    // runs while it is in flight.  (A rehash below invalidates the guess
    // — rare, and a stale prefetch is only a wasted line.)
    if (!hash_.empty()) {
      __builtin_prefetch(&hash_[hash_time(t) & hash_mask_]);
    }
    const std::uint64_t seq = next_seq_++;
    std::uint32_t slot;
    if (!free_slots_.empty()) {
      slot = free_slots_.back();
      free_slots_.pop_back();
      slot_ref(slot).site = site;
    } else {
      if (slot_count_ == slabs_.size() * kSlabSize) grow_slots();
      slot = slot_count_++;
      ::new (static_cast<void*>(&slot_ref(slot))) Slot{nullptr, site};
      // Fresh slots are sequential: pull the next line of the slab in
      // ahead of the schedule burst that is likely consuming them.
      if ((slot & (kSlabSize - 1)) + 4 < kSlabSize) {
        __builtin_prefetch(&slot_ref(slot + 4), 1);
      }
    }
    slot_seq_[slot] = seq;
    slot_next_[slot] = kNil;

    // Keep the probe map at most half full.  When the table genuinely
    // has to grow, grow by at least 4x: the total cells-zeroed-plus-
    // reinserted work stays well under one pass over the schedule
    // stream.  When the pressure is tombstone churn alone (the heap-
    // derived target does not exceed the current size), rehash in place
    // instead of growing.
    if (2 * (hash_used_ + 1) > hash_.size()) {
      std::size_t target =
          std::max(kMinHashCapacity, next_pow2(4 * (heap_.size() + 1)));
      if (target > hash_.size()) target = std::max(target, 4 * hash_.size());
      rehash(target);
    }
    // One probe walk resolves both outcomes: append to an existing
    // bucket, or claim the chain's first reusable cell for a new one.
    std::size_t i = hash_time(t) & hash_mask_;
    std::size_t claim = hash_.size();  // sentinel: no tombstone seen yet
    for (;;) {
      TimeCell& cell = hash_[i];
      if (cell.tail == kCellEmpty) {
        if (claim == hash_.size()) {
          claim = i;
          ++hash_used_;  // claiming a tombstone instead keeps the count
        }
        hash_[claim] = TimeCell{t, slot, slot};
        heap_.push_back(HeapEntry{t, static_cast<std::uint32_t>(claim)});
        sift_up(heap_.size() - 1);
        break;
      }
      if (cell.tail == kCellTomb) {
        if (claim == hash_.size()) claim = i;
      } else if (cell.time == t) {
        if (cell.head == kNil) {
          cell.head = cell.tail = slot;  // resurrect an exhausted bucket
        } else {
          slot_next_[cell.tail] = slot;
          cell.tail = slot;
        }
        break;
      }
      i = (i + 1) & hash_mask_;
    }
    ++live_;
    return EventId{t, seq, slot};
  }

  /// Drop dead list heads and exhausted buckets until the heap top has a
  /// live event at its head.  Returns false when nothing is pending.
  bool settle_top() {
    while (!heap_.empty()) {
      TimeCell& cell = hash_[heap_[0].cell];
      while (cell.head != kNil && slot_seq_[cell.head] == 0) {
        const std::uint32_t dead_slot = cell.head;
        cell.head = slot_next_[dead_slot];
        free_slots_.push_back(dead_slot);
        --dead_;
      }
      if (cell.head != kNil) return true;
      cell.tail = kCellTomb;  // retire: O(1), the heap knows the cell index
      pop_heap_top();
    }
    return false;
  }

  void dispatch_front() {
    // Caller guarantees a live head at the heap top (settle_top()).
    const Time t = heap_[0].time;
    TimeCell& cell = hash_[heap_[0].cell];
    const std::uint32_t slot = cell.head;
    Slot& s = slot_ref(slot);
    const std::uint32_t next = slot_next_[slot];
    cell.head = next;
    now_ = t;
    diag_set_time(now_);
    // Retire the event (generation zeroed, unlinked from its bucket)
    // before invoking, then run the callback *in place*: the slot joins
    // the free list only after the call returns, so a callback that
    // schedules new events — even at this same, resurrected timestamp —
    // can never clobber the closure it is running from.  Skipping the
    // move-out saves a 48-byte relocation per dispatch.
    const std::uint64_t seq = slot_seq_[slot];
    const char* site = s.site;
    slot_seq_[slot] = 0;
    --live_;
    ++processed_;
    // Pull the bucket's next slot toward the cache while the callback
    // runs: chained same-time events land in slab order only under
    // FIFO-reuse luck, so this hides most of the random-access latency.
    if (next != kNil) __builtin_prefetch(&slot_ref(next));
    if (observer_) observer_(t, seq, site);
    s.cb();
    s.cb = nullptr;
    s.site = nullptr;
    free_slots_.push_back(slot);
  }

  /// Slow path of schedule_slot: append a slab (and extend the parallel
  /// seq/next arrays to match).
  void grow_slots();
};

}  // namespace partib::sim
