// Discrete-event simulation engine.
//
// The engine owns virtual time for an entire simulated cluster.  Components
// (NICs, wires, CPU cores, aggregation timers) schedule callbacks at future
// virtual instants; `run()` dispatches them in (time, insertion-order).
// Determinism is a hard requirement — the engine is the clock for every
// benchmark figure — so ties are broken by a monotonically increasing
// sequence number, never by pointer or hash order.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <utility>

#include "common/time.hpp"

namespace partib::sim {

class Engine {
 public:
  using Callback = std::function<void()>;

  /// Token for cancelling a pending event (e.g. disarming an aggregation
  /// timer when all partitions arrive before the deadline).
  struct EventId {
    Time time = 0;
    std::uint64_t seq = 0;
    bool valid() const { return seq != 0; }
  };

  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  Time now() const { return now_; }

  /// Schedule `cb` at absolute virtual time `t` (must be >= now()).
  EventId schedule_at(Time t, Callback cb);

  /// Schedule `cb` `d` nanoseconds from now (d must be >= 0).
  EventId schedule_after(Duration d, Callback cb);

  /// Remove a pending event.  Returns false if it already ran, was already
  /// cancelled, or the id is invalid.
  bool cancel(EventId id);

  /// Dispatch the single earliest event.  Returns false if none pending.
  bool step();

  /// Dispatch until no events remain.  Returns the number dispatched.
  std::size_t run();

  /// Dispatch every event with time <= deadline, then advance the clock to
  /// `deadline` even if idle.  Returns the number dispatched.
  std::size_t run_until(Time deadline);

  bool empty() const { return queue_.empty(); }
  std::size_t pending() const { return queue_.size(); }
  std::uint64_t processed_count() const { return processed_; }

 private:
  using Key = std::pair<Time, std::uint64_t>;

  Time now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t processed_ = 0;
  // Ordered map doubles as priority queue and cancellation index.
  std::map<Key, Callback> queue_;

  void dispatch_front();
};

}  // namespace partib::sim
