// Discrete-event simulation engine.
//
// The engine owns virtual time for an entire simulated cluster.  Components
// (NICs, wires, CPU cores, aggregation timers) schedule callbacks at future
// virtual instants; `run()` dispatches them in (time, insertion-order).
// Determinism is a hard requirement — the engine is the clock for every
// benchmark figure — so ties are broken by a monotonically increasing
// sequence number, never by pointer or hash order.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <utility>

#include "common/time.hpp"

namespace partib::sim {

class Engine {
 public:
  using Callback = std::function<void()>;

  /// Observer invoked at every event dispatch with the event's (time,
  /// sequence number, scheduling-site tag).  The check/ determinism
  /// auditor attaches here to hash the dispatch stream; the hook is
  /// generic so tracing tools can use it too.  `site` is the tag passed
  /// to schedule_at/schedule_after (nullptr when the caller gave none).
  using DispatchObserver =
      std::function<void(Time, std::uint64_t, const char*)>;

  /// Token for cancelling a pending event (e.g. disarming an aggregation
  /// timer when all partitions arrive before the deadline).
  struct EventId {
    Time time = 0;
    std::uint64_t seq = 0;
    bool valid() const { return seq != 0; }
  };

  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  Time now() const { return now_; }

  /// Schedule `cb` at absolute virtual time `t` (must be >= now()).
  /// `site` optionally names the scheduling call-site (a string literal;
  /// the engine stores the pointer, not a copy) for dispatch observers.
  EventId schedule_at(Time t, Callback cb, const char* site = nullptr);

  /// Schedule `cb` `d` nanoseconds from now (d must be >= 0).
  EventId schedule_after(Duration d, Callback cb, const char* site = nullptr);

  /// Remove a pending event.  Returns false if it already ran, was already
  /// cancelled, or the id is invalid.
  bool cancel(EventId id);

  /// Dispatch the single earliest event.  Returns false if none pending.
  bool step();

  /// Dispatch until no events remain.  Returns the number dispatched.
  std::size_t run();

  /// Dispatch every event with time <= deadline, then advance the clock to
  /// `deadline` even if idle.  Returns the number dispatched.
  std::size_t run_until(Time deadline);

  bool empty() const { return queue_.empty(); }
  std::size_t pending() const { return queue_.size(); }
  std::uint64_t processed_count() const { return processed_; }

  /// Install (or clear, with nullptr) the dispatch observer.
  void set_dispatch_observer(DispatchObserver obs) {
    observer_ = std::move(obs);
  }

 private:
  using Key = std::pair<Time, std::uint64_t>;

  struct Event {
    Callback cb;
    const char* site;
  };

  Time now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t processed_ = 0;
  // Ordered map doubles as priority queue and cancellation index.
  std::map<Key, Event> queue_;
  DispatchObserver observer_;

  void dispatch_front();
};

}  // namespace partib::sim
