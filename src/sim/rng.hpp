// Deterministic random-number generation for workloads.
//
// xoshiro256** seeded via SplitMix64 — small, fast, and unlike
// std::mt19937 its output is identical across standard-library
// implementations, which keeps benchmark timelines reproducible anywhere.
#pragma once

#include <cmath>
#include <cstdint>

#include "common/assert.hpp"

namespace partib::sim {

/// SplitMix64: used to expand a single seed into xoshiro's state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5EEDDEADBEEF1234ULL) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    PARTIB_ASSERT(lo <= hi);
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next_u64() % span);
  }

  /// Uniform real in [lo, hi).
  double uniform(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  /// Standard normal via Box-Muller (one value per call; simple > fast).
  double normal(double mean = 0.0, double stddev = 1.0) {
    double u1 = next_double();
    // Avoid log(0).
    while (u1 <= 0.0) u1 = next_double();
    const double u2 = next_double();
    const double z =
        std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
    return mean + stddev * z;
  }

  /// Exponential with given mean.
  double exponential(double mean) {
    double u = next_double();
    while (u <= 0.0) u = next_double();
    return -mean * std::log(u);
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace partib::sim
