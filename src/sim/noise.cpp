#include "sim/noise.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace partib::sim {

ArrivalPattern all_equal(std::size_t threads, Duration compute) {
  PARTIB_ASSERT(threads > 0 && compute >= 0);
  return ArrivalPattern(threads, compute);
}

ArrivalPattern many_before_one(std::size_t threads, Duration compute,
                               double noise_fraction, std::size_t laggard) {
  PARTIB_ASSERT(threads > 0 && laggard < threads);
  PARTIB_ASSERT(noise_fraction >= 0.0);
  ArrivalPattern p(threads, compute);
  p[laggard] = compute + static_cast<Duration>(
                             static_cast<double>(compute) * noise_fraction);
  return p;
}

ArrivalPattern uniform_noise(std::size_t threads, Duration compute,
                             double noise_fraction, Rng& rng) {
  PARTIB_ASSERT(threads > 0 && noise_fraction >= 0.0);
  ArrivalPattern p(threads);
  for (auto& d : p) {
    d = compute + static_cast<Duration>(static_cast<double>(compute) *
                                        rng.uniform(0.0, noise_fraction));
  }
  return p;
}

ArrivalPattern staggered(std::size_t threads, Duration compute,
                         Duration stagger) {
  PARTIB_ASSERT(threads > 0 && compute >= 0 && stagger >= 0);
  ArrivalPattern p(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    p[i] = compute + static_cast<Duration>(i) * stagger;
  }
  return p;
}

ArrivalPattern gaussian_noise(std::size_t threads, Duration compute,
                              double sigma_fraction, Rng& rng) {
  PARTIB_ASSERT(threads > 0 && sigma_fraction >= 0.0);
  ArrivalPattern p(threads);
  for (auto& d : p) {
    const double jitter = std::fabs(
        rng.normal(0.0, sigma_fraction * static_cast<double>(compute)));
    d = compute + static_cast<Duration>(jitter);
  }
  return p;
}

}  // namespace partib::sim
