// Contended-resource models in virtual time.
//
// Two service disciplines cover everything the paper's evaluation needs:
//
//  * FifoResource — k identical servers, FIFO order.  With k = 1 this is a
//    virtual-time mutex and models the QP doorbell lock whose contention
//    the paper credits for the 128-partition aggregation win (§V-B2).
//
//  * ProcessorSharingCpu — n jobs timeshare c cores at rate min(1, c/n).
//    Models compute on an oversubscribed node (128 threads on 40 cores),
//    where the OS interleaves threads rather than running them in waves.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/time.hpp"
#include "sim/engine.hpp"

namespace partib::sim {

/// k-server FIFO queue.  A request occupies one server for `service`
/// nanoseconds; `done(start, end)` fires at completion with the interval
/// during which the server was held.
class FifoResource {
 public:
  using Done = std::function<void(Time start, Time end)>;

  FifoResource(Engine& engine, int servers);

  void request(Duration service, Done done);

  int servers() const { return static_cast<int>(free_at_.size()); }

  /// Earliest virtual time at which a new zero-length request would start.
  Time next_free() const;

  /// Total busy time accumulated across servers (for utilisation stats).
  Duration busy_time() const { return busy_; }

 private:
  Engine& engine_;
  std::vector<Time> free_at_;
  Duration busy_ = 0;
};

/// Processor-sharing CPU: every active job progresses at rate
/// min(1, cores / active_jobs).  Completion callbacks fire in virtual time.
class ProcessorSharingCpu {
 public:
  using Done = std::function<void()>;
  using JobId = std::uint64_t;

  ProcessorSharingCpu(Engine& engine, int cores);

  /// Submit a job needing `work` nanoseconds of dedicated-core time.
  JobId submit(Duration work, Done done);

  std::size_t active_jobs() const { return jobs_.size(); }
  int cores() const { return cores_; }

  /// Total dedicated-core work ever submitted (ns); the CPU-cycle budget
  /// consumed, used e.g. to account host cycles spent on communication.
  Duration total_work_submitted() const { return work_submitted_; }

 private:
  struct Job {
    double remaining;  // ns of dedicated-core work left
    Done done;
  };

  Engine& engine_;
  int cores_;
  JobId next_id_ = 1;
  // Flat storage in submission (= id) order: jobs are appended on submit
  // and compacted in place on completion, so iteration order — and with
  // it completion-callback order and the drain arithmetic — matches the
  // original id-ordered map exactly, without per-job node allocations.
  std::vector<Job> jobs_;
  Time last_update_ = 0;
  Duration work_submitted_ = 0;
  Engine::EventId pending_completion_{};
  std::vector<Done> finished_scratch_;  // reused across completion events

  double rate() const;
  void drain_elapsed();
  void reschedule_completion();
  void complete_due_jobs();
};

}  // namespace partib::sim
