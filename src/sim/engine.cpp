#include "sim/engine.hpp"

#include "common/assert.hpp"
#include "common/diag.hpp"

namespace partib::sim {

Engine::EventId Engine::schedule_at(Time t, Callback cb, const char* site) {
  PARTIB_ASSERT_MSG(t >= now_, "cannot schedule an event in the past");
  PARTIB_ASSERT(cb != nullptr);
  const Key key{t, next_seq_++};
  queue_.emplace(key, Event{std::move(cb), site});
  return EventId{key.first, key.second};
}

Engine::EventId Engine::schedule_after(Duration d, Callback cb,
                                       const char* site) {
  PARTIB_ASSERT_MSG(d >= 0, "negative delay");
  return schedule_at(now_ + d, std::move(cb), site);
}

bool Engine::cancel(EventId id) {
  if (!id.valid()) return false;
  return queue_.erase(Key{id.time, id.seq}) > 0;
}

void Engine::dispatch_front() {
  auto it = queue_.begin();
  now_ = it->first.first;
  diag_set_time(now_);
  // Move the callback out before erasing: the callback may schedule or
  // cancel other events (but must not touch this, already-removed, one).
  Event ev = std::move(it->second);
  const Key key = it->first;
  queue_.erase(it);
  ++processed_;
  if (observer_) observer_(key.first, key.second, ev.site);
  ev.cb();
}

bool Engine::step() {
  if (queue_.empty()) return false;
  dispatch_front();
  return true;
}

std::size_t Engine::run() {
  std::size_t n = 0;
  while (!queue_.empty()) {
    dispatch_front();
    ++n;
  }
  return n;
}

std::size_t Engine::run_until(Time deadline) {
  PARTIB_ASSERT_MSG(deadline >= now_, "deadline in the past");
  std::size_t n = 0;
  while (!queue_.empty() && queue_.begin()->first.first <= deadline) {
    dispatch_front();
    ++n;
  }
  now_ = deadline;
  return n;
}

}  // namespace partib::sim
