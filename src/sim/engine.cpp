#include "sim/engine.hpp"

#include <algorithm>
#include <memory>

#include "common/diag.hpp"

namespace partib::sim {

Engine::~Engine() {
  // When every callback ever scheduled was trivially destructible (the
  // common case: captures of references and scalars), the teardown walk
  // over every constructed slot would be pure memory traffic — skip it.
  if (nontrivial_cb_) {
    for (std::uint32_t i = 0; i < slot_count_; ++i) slot_ref(i).~Slot();
  }
  std::allocator<Slot> alloc;
  for (Slot* slab : slabs_) alloc.deallocate(slab, kSlabSize);
}

void Engine::grow_slots() {
  slabs_.push_back(std::allocator<Slot>().allocate(kSlabSize));
  const std::size_t cap = slabs_.size() * kSlabSize;
  slot_seq_.resize(cap);
  slot_next_.resize(cap);
}

void Engine::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  const HeapEntry e = heap_[i];
  for (;;) {
    const std::size_t first = i * kHeapArity + 1;
    if (first >= n) break;
    const std::size_t last = std::min(first + kHeapArity, n);
    std::size_t best = first;
    for (std::size_t c = first + 1; c < last; ++c) {
      if (heap_[c].time < heap_[best].time) best = c;
    }
    if (heap_[best].time >= e.time) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = e;
}

void Engine::pop_heap_top() {
  const HeapEntry last = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heap_[0] = last;
    sift_down(0);
  }
}

void Engine::rehash(std::size_t capacity) {
  std::vector<TimeCell> old = std::move(hash_);
  hash_.assign(capacity, TimeCell{0, kNil, kCellEmpty});
  hash_mask_ = capacity - 1;
  // The heap holds exactly the live timestamps, so re-anchoring its
  // entries both refills the new table (no tombstones survive) and fixes
  // every entry's cell index in one pass.
  for (HeapEntry& e : heap_) {
    const TimeCell cell = old[e.cell];
    std::size_t i = hash_time(e.time) & hash_mask_;
    while (hash_[i].tail != kCellEmpty) i = (i + 1) & hash_mask_;
    hash_[i] = cell;
    e.cell = static_cast<std::uint32_t>(i);
  }
  hash_used_ = heap_.size();
}

Engine::EventId Engine::schedule_at(Time t, Callback cb, const char* site) {
  PARTIB_ASSERT(cb != nullptr);
  const EventId id = schedule_slot(t, site);
  Slot& s = slot_ref(id.slot);
  s.cb = std::move(cb);
  if (s.cb.needs_destroy()) nontrivial_cb_ = true;
  return id;
}

Engine::EventId Engine::schedule_after(Duration d, Callback cb,
                                       const char* site) {
  PARTIB_ASSERT_MSG(d >= 0, "negative delay");
  return schedule_at(now_ + d, std::move(cb), site);
}

bool Engine::cancel(EventId id) {
  if (!id.valid() || id.slot >= slot_count_) return false;
  if (slot_seq_[id.slot] != id.seq) {
    return false;  // already ran, cancelled, or reused
  }
  slot_seq_[id.slot] = 0;
  Slot& s = slot_ref(id.slot);
  s.site = nullptr;
  s.cb = nullptr;
  --live_;
  ++dead_;
  // The slot stays linked in its bucket as a tombstone and is freed when
  // it surfaces.  Compact when tombstones clearly dominate so cancel-heavy
  // workloads (armed-then-disarmed aggregation timers) stay bounded; the
  // floor (1024 slots ~ 100 KiB) keeps small queues from compacting at
  // all.
  if (dead_ > 1024 && dead_ > 4 * live_) compact();
  return true;
}

void Engine::compact() {
  std::size_t kept = 0;
  for (std::size_t i = 0; i < heap_.size(); ++i) {
    TimeCell& cell = hash_[heap_[i].cell];
    std::uint32_t head = kNil;
    std::uint32_t tail = kNil;
    for (std::uint32_t s = cell.head; s != kNil;) {
      const std::uint32_t next = slot_next_[s];
      if (slot_seq_[s] == 0) {
        free_slots_.push_back(s);
      } else {
        if (head == kNil) {
          head = s;
        } else {
          slot_next_[tail] = s;
        }
        tail = s;
      }
      s = next;
    }
    if (tail != kNil) slot_next_[tail] = kNil;
    cell.head = head;
    if (head == kNil) {
      cell.tail = kCellTomb;
    } else {
      cell.tail = tail;
      heap_[kept++] = heap_[i];
    }
  }
  heap_.resize(kept);
  if (kept > 1) {
    for (std::size_t i = (kept - 2) / kHeapArity + 1; i-- > 0;) sift_down(i);
  }
  dead_ = 0;
}

bool Engine::step() {
  if (!settle_top()) return false;
  dispatch_front();
  return true;
}

std::size_t Engine::run() {
  std::size_t n = 0;
  while (settle_top()) {
    dispatch_front();
    ++n;
  }
  return n;
}

std::size_t Engine::run_until(Time deadline) {
  PARTIB_ASSERT_MSG(deadline >= now_, "deadline in the past");
  std::size_t n = 0;
  while (settle_top() && heap_[0].time <= deadline) {
    dispatch_front();
    ++n;
  }
  now_ = deadline;
  return n;
}

std::size_t Engine::run_pumped(const std::function<bool()>& pump) {
  std::size_t n = 0;
  for (;;) {
    n += run();
    if (!pump() && empty()) return n;
  }
}

}  // namespace partib::sim
