#include "sim/resources.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/assert.hpp"

namespace partib::sim {

// ---------------------------------------------------------------------------
// FifoResource
// ---------------------------------------------------------------------------

FifoResource::FifoResource(Engine& engine, int servers)
    : engine_(engine), free_at_(static_cast<std::size_t>(servers), Time{0}) {
  PARTIB_ASSERT(servers > 0);
}

Time FifoResource::next_free() const {
  return std::max(engine_.now(),
                  *std::min_element(free_at_.begin(), free_at_.end()));
}

void FifoResource::request(Duration service, Done done) {
  PARTIB_ASSERT(service >= 0);
  // Assigning each request to the earliest-free server at submission time
  // yields FIFO start order because submissions happen in virtual-time
  // order and server availability is monotone.
  auto it = std::min_element(free_at_.begin(), free_at_.end());
  const Time start = std::max(engine_.now(), *it);
  const Time end = start + service;
  *it = end;
  busy_ += service;
  engine_.schedule_at(
      end, [start, end, done = std::move(done)] { done(start, end); });
}

// ---------------------------------------------------------------------------
// ProcessorSharingCpu
// ---------------------------------------------------------------------------

ProcessorSharingCpu::ProcessorSharingCpu(Engine& engine, int cores)
    : engine_(engine), cores_(cores), last_update_(engine.now()) {
  PARTIB_ASSERT(cores > 0);
}

double ProcessorSharingCpu::rate() const {
  if (jobs_.empty()) return 1.0;
  return std::min(1.0, static_cast<double>(cores_) /
                           static_cast<double>(jobs_.size()));
}

void ProcessorSharingCpu::drain_elapsed() {
  const Time now = engine_.now();
  const double elapsed = static_cast<double>(now - last_update_);
  if (elapsed > 0.0 && !jobs_.empty()) {
    const double r = rate();
    for (Job& job : jobs_) {
      job.remaining = std::max(0.0, job.remaining - elapsed * r);
    }
  }
  last_update_ = now;
}

ProcessorSharingCpu::JobId ProcessorSharingCpu::submit(Duration work,
                                                       Done done) {
  PARTIB_ASSERT(work >= 0);
  drain_elapsed();
  work_submitted_ += work;
  const JobId id = next_id_++;
  jobs_.push_back(Job{static_cast<double>(work), std::move(done)});
  reschedule_completion();
  return id;
}

void ProcessorSharingCpu::reschedule_completion() {
  if (pending_completion_.valid()) {
    engine_.cancel(pending_completion_);
    pending_completion_ = Engine::EventId{};
  }
  if (jobs_.empty()) return;
  double min_remaining = std::numeric_limits<double>::infinity();
  for (const Job& job : jobs_) {
    min_remaining = std::min(min_remaining, job.remaining);
  }
  const double r = rate();
  const auto delay =
      static_cast<Duration>(std::ceil(min_remaining / r));
  pending_completion_ =
      engine_.schedule_after(delay, [this] { complete_due_jobs(); });
}

void ProcessorSharingCpu::complete_due_jobs() {
  pending_completion_ = Engine::EventId{};
  drain_elapsed();
  // Collect first, then fire: a completion callback may submit new jobs,
  // which must not observe a half-updated job table.  The scratch vector
  // keeps its capacity across events; compaction preserves submission
  // order so callbacks fire in the same order the map-based table fired.
  finished_scratch_.clear();
  std::size_t kept = 0;
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    // Integer-ns rounding in reschedule_completion can leave a sliver less
    // than one rate-scaled nanosecond; treat it as done.
    if (jobs_[i].remaining <= 1.0) {
      finished_scratch_.push_back(std::move(jobs_[i].done));
    } else {
      if (kept != i) jobs_[kept] = std::move(jobs_[i]);
      ++kept;
    }
  }
  jobs_.resize(kept);
  reschedule_completion();
  for (auto& done : finished_scratch_) done();
  finished_scratch_.clear();
}

}  // namespace partib::sim
