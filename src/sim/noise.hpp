// Thread compute-time / arrival-pattern models.
//
// The paper's benchmarks model each sender thread as computing for some
// time and then calling MPI_Pready.  Prior work (Finepoints, the ICPP'22
// micro-benchmark suite) and this paper use the *single-thread-delay*
// ("many-before-one") model: n-1 threads finish together and one laggard is
// delayed by compute * noise (e.g. 100 ms * 4% = 4 ms).  Additional
// patterns are provided for property tests and ablations.
#pragma once

#include <cstddef>
#include <vector>

#include "common/time.hpp"
#include "sim/rng.hpp"

namespace partib::sim {

/// Per-thread compute durations; index = thread id = user partition id.
using ArrivalPattern = std::vector<Duration>;

/// All threads finish after exactly `compute`.
ArrivalPattern all_equal(std::size_t threads, Duration compute);

/// n-1 threads finish at `compute`; the laggard finishes at
/// compute * (1 + noise_fraction).  `laggard` < threads selects which one.
ArrivalPattern many_before_one(std::size_t threads, Duration compute,
                               double noise_fraction, std::size_t laggard = 0);

/// Every thread's compute inflated by an independent uniform noise in
/// [0, noise_fraction].
ArrivalPattern uniform_noise(std::size_t threads, Duration compute,
                             double noise_fraction, Rng& rng);

/// Thread i finishes at compute + i * stagger (worst case for aggregation).
ArrivalPattern staggered(std::size_t threads, Duration compute,
                         Duration stagger);

/// Every thread's compute inflated by |N(0, sigma_fraction * compute)|.
ArrivalPattern gaussian_noise(std::size_t threads, Duration compute,
                              double sigma_fraction, Rng& rng);

}  // namespace partib::sim
