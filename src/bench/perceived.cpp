#include "bench/perceived.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "common/assert.hpp"
#include "part/partitioned.hpp"
#include "sim/engine.hpp"
#include "sim/noise.hpp"
#include "sim/rng.hpp"

namespace partib::bench {

PerceivedResult run_perceived_bandwidth(PerceivedConfig cfg) {
  PARTIB_ASSERT(cfg.total_bytes > 0 && cfg.user_partitions > 0);
  sim::Engine engine;
  cfg.world.ranks = 2;
  cfg.world.copy_data = false;
  mpi::World world(engine, cfg.world);
  sim::Rng rng(cfg.seed);

  std::vector<std::byte> sbuf(cfg.total_bytes), rbuf(cfg.total_bytes);
  std::unique_ptr<part::PsendRequest> send;
  std::unique_ptr<part::PrecvRequest> recv;
  PARTIB_ASSERT(ok(part::psend_init(world.rank(0), sbuf, cfg.user_partitions,
                                    1, 0, 0, cfg.options, &send)));
  PARTIB_ASSERT(ok(part::precv_init(world.rank(1), rbuf, cfg.user_partitions,
                                    0, 0, 0, cfg.options, &recv)));
  engine.run();

  PerceivedResult res;
  res.min_gbytes_per_s = std::numeric_limits<double>::max();
  res.wire_gbytes_per_s = cfg.world.nic.link_bytes_per_ns();  // B/ns == GB/s
  double sum = 0.0;
  int measured = 0;
  std::uint64_t wrs_at_measure_start = 0;

  for (int iter = 0; iter < cfg.warmup + cfg.iterations; ++iter) {
    const bool record = iter >= cfg.warmup;
    if (iter == cfg.warmup) wrs_at_measure_start = send->wrs_posted_total();
    PARTIB_ASSERT(ok(send->start()));
    PARTIB_ASSERT(ok(recv->start()));
    if (record && cfg.profiler != nullptr) {
      cfg.profiler->begin_round(engine.now());
    }

    // Single-thread-delay arrival pattern plus per-thread jitter.
    const std::size_t laggard = static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(cfg.user_partitions) - 1));
    sim::ArrivalPattern pattern = sim::many_before_one(
        cfg.user_partitions, cfg.compute, cfg.noise, laggard);
    const Duration jitter_span =
        cfg.jitter_per_thread *
        static_cast<Duration>(cfg.user_partitions);
    for (std::size_t i = 0; i < cfg.user_partitions; ++i) {
      if (i == laggard) continue;
      pattern[i] += static_cast<Duration>(
          rng.uniform(0.0, static_cast<double>(jitter_span)));
    }

    Time last_pready = 0;
    for (std::size_t i = 0; i < cfg.user_partitions; ++i) {
      world.rank(0).cpu().submit(pattern[i], [&, i, record] {
        last_pready = std::max(last_pready, engine.now());
        if (record && cfg.profiler != nullptr) {
          cfg.profiler->record_pready(i, engine.now());
        }
        PARTIB_ASSERT(ok(send->pready(i)));
      });
    }
    Time recv_done = -1;
    recv->when_complete([&] { recv_done = engine.now(); });
    if (record && cfg.profiler != nullptr) {
      recv->set_arrival_hook([&cfg](std::size_t p, Time t) {
        cfg.profiler->record_arrival(p, t);
      });
    } else {
      recv->set_arrival_hook(nullptr);
    }
    engine.run();
    PARTIB_ASSERT(send->test() && recv->test());
    PARTIB_ASSERT(recv_done >= last_pready);

    if (record) {
      const double latency =
          static_cast<double>(recv_done - last_pready);  // ns
      const double gbps = static_cast<double>(cfg.total_bytes) / latency;
      sum += gbps;
      res.min_gbytes_per_s = std::min(res.min_gbytes_per_s, gbps);
      res.max_gbytes_per_s = std::max(res.max_gbytes_per_s, gbps);
      ++measured;
    }
  }
  res.mean_gbytes_per_s = sum / std::max(measured, 1);
  res.mean_wrs_per_round =
      static_cast<double>(send->wrs_posted_total() - wrs_at_measure_start) /
      std::max(measured, 1);
  return res;
}

}  // namespace partib::bench
