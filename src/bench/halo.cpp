#include "bench/halo.hpp"

#include <algorithm>
#include <memory>
#include <vector>

#include "common/assert.hpp"
#include "part/partitioned.hpp"
#include "sim/engine.hpp"
#include "sim/noise.hpp"
#include "sim/rng.hpp"

namespace partib::bench {

namespace {

struct HaloRank {
  std::vector<std::unique_ptr<part::PsendRequest>> sends;
  std::vector<std::unique_ptr<part::PrecvRequest>> recvs;
  std::unique_ptr<sim::Rng> rng;
  int iter = 0;
  std::size_t pending = 0;  ///< outstanding sends + recvs this iteration
  std::size_t threads_done = 0;
  bool compute_done = false;
  Time warmup_done_at = -1;
};

struct HaloRun {
  const HaloConfig& cfg;
  sim::Engine& engine;
  mpi::World& world;
  std::vector<HaloRank> ranks;
  int total_iters;
  int finished = 0;

  HaloRun(const HaloConfig& c, sim::Engine& e, mpi::World& w)
      : cfg(c), engine(e), world(w),
        ranks(static_cast<std::size_t>(c.px * c.py)),
        total_iters(c.warmup + c.iterations) {}

  int rank_id(int x, int y) const { return y * cfg.px + x; }

  void begin_iteration(std::size_t r) {
    HaloRank& hr = ranks[r];
    hr.pending = hr.sends.size() + hr.recvs.size();
    hr.threads_done = 0;
    hr.compute_done = false;
    auto on_done = [this, r] {
      HaloRank& h = ranks[r];
      PARTIB_ASSERT(h.pending > 0);
      if (--h.pending == 0) maybe_finish(r);
    };
    for (auto& recv : hr.recvs) {
      PARTIB_ASSERT(ok(recv->start()));
      recv->when_complete(on_done);
    }
    for (auto& send : hr.sends) {
      PARTIB_ASSERT(ok(send->start()));
      send->when_complete(on_done);
    }
    start_compute(r);
  }

  void start_compute(std::size_t r) {
    HaloRank& hr = ranks[r];
    const std::size_t n = cfg.threads;
    const auto laggard = static_cast<std::size_t>(
        hr.rng->uniform_int(0, static_cast<std::int64_t>(n) - 1));
    sim::ArrivalPattern pattern =
        sim::many_before_one(n, cfg.compute, cfg.noise, laggard);
    const Duration span =
        cfg.jitter_per_thread * static_cast<Duration>(n);
    for (std::size_t i = 0; i < n; ++i) {
      if (i != laggard) {
        pattern[i] += static_cast<Duration>(
            hr.rng->uniform(0.0, static_cast<double>(span)));
      }
    }
    mpi::Rank& mr = world.rank(static_cast<int>(r));
    for (std::size_t i = 0; i < n; ++i) {
      mr.cpu().submit(pattern[i], [this, r, i] {
        HaloRank& h = ranks[r];
        for (auto& send : h.sends) PARTIB_ASSERT(ok(send->pready(i)));
        if (++h.threads_done == cfg.threads) {
          h.compute_done = true;
          maybe_finish(r);
        }
      });
    }
  }

  void maybe_finish(std::size_t r) {
    HaloRank& hr = ranks[r];
    if (!hr.compute_done || hr.pending != 0) return;
    ++hr.iter;
    if (hr.iter == cfg.warmup) hr.warmup_done_at = engine.now();
    if (hr.iter < total_iters) {
      begin_iteration(r);
    } else {
      ++finished;
    }
  }
};

}  // namespace

HaloResult run_halo(HaloConfig cfg) {
  PARTIB_ASSERT(cfg.px >= 1 && cfg.py >= 1 && cfg.face_bytes > 0);
  sim::Engine engine;
  cfg.world.ranks = cfg.px * cfg.py;
  cfg.world.copy_data = false;
  mpi::World world(engine, cfg.world);
  HaloRun run(cfg, engine, world);

  std::vector<std::byte> shared_buffer(cfg.face_bytes);
  // Four directions, tagged by the sender's direction index; dx/dy pairs
  // and the tag the matching receiver listens on (opposite direction).
  const int dirs[4][2] = {{1, 0}, {-1, 0}, {0, 1}, {0, -1}};
  for (int y = 0; y < cfg.py; ++y) {
    for (int x = 0; x < cfg.px; ++x) {
      const int id = run.rank_id(x, y);
      HaloRank& hr = run.ranks[static_cast<std::size_t>(id)];
      hr.rng = std::make_unique<sim::Rng>(
          cfg.seed ^ (static_cast<std::uint64_t>(id) * 0x517CC1B7ull));
      mpi::Rank& mr = world.rank(id);
      for (int d = 0; d < 4; ++d) {
        const int nx = x + dirs[d][0];
        const int ny = y + dirs[d][1];
        if (nx < 0 || nx >= cfg.px || ny < 0 || ny >= cfg.py) continue;
        std::unique_ptr<part::PsendRequest> send;
        std::unique_ptr<part::PrecvRequest> recv;
        PARTIB_ASSERT(ok(part::psend_init(mr, shared_buffer, cfg.threads,
                                          run.rank_id(nx, ny), d, 0,
                                          cfg.options, &send)));
        // The neighbour sends toward us with the opposite direction index.
        PARTIB_ASSERT(ok(part::precv_init(mr, shared_buffer, cfg.threads,
                                          run.rank_id(nx, ny), d ^ 1, 0,
                                          cfg.options, &recv)));
        hr.sends.push_back(std::move(send));
        hr.recvs.push_back(std::move(recv));
      }
    }
  }
  engine.run();  // settle handshakes

  for (std::size_t r = 0; r < run.ranks.size(); ++r) run.begin_iteration(r);
  engine.run();
  PARTIB_ASSERT(run.finished == cfg.px * cfg.py);

  Time warmup_done = 0;
  for (const HaloRank& hr : run.ranks) {
    warmup_done = std::max(warmup_done, hr.warmup_done_at);
  }
  HaloResult res;
  res.total_time = engine.now() - warmup_done;
  res.compute_on_path = static_cast<Duration>(cfg.iterations) * cfg.compute;
  res.comm_time = res.total_time - res.compute_on_path;
  return res;
}

}  // namespace partib::bench
