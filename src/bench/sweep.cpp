#include "bench/sweep.hpp"

#include <algorithm>
#include <memory>
#include <vector>

#include "common/assert.hpp"
#include "part/partitioned.hpp"
#include "sim/engine.hpp"
#include "sim/noise.hpp"
#include "sim/rng.hpp"

namespace partib::bench {

namespace {

constexpr int kTagEast = 0;   // west -> east traffic
constexpr int kTagSouth = 1;  // north -> south traffic

struct RankState {
  int x = 0;
  int y = 0;
  std::unique_ptr<part::PsendRequest> send_e;
  std::unique_ptr<part::PsendRequest> send_s;
  std::unique_ptr<part::PrecvRequest> recv_w;
  std::unique_ptr<part::PrecvRequest> recv_n;
  std::unique_ptr<sim::Rng> rng;

  int iter = 0;  // completed iterations
  int recvs_needed = 0;
  int sends_needed = 0;
  int recvs_done = 0;
  int sends_done = 0;
  std::size_t threads_done = 0;
  bool compute_done = false;
  /// Virtual time at which this rank completed the warmup iterations.
  Time warmup_done_at = -1;
};

struct SweepRun {
  const SweepConfig& cfg;
  sim::Engine& engine;
  mpi::World& world;
  std::vector<RankState> ranks;
  int total_iters;
  int finished_ranks = 0;

  SweepRun(const SweepConfig& c, sim::Engine& e, mpi::World& w)
      : cfg(c), engine(e), world(w),
        ranks(static_cast<std::size_t>(c.px * c.py)),
        total_iters(c.warmup + c.iterations) {}

  int rank_id(int x, int y) const { return y * cfg.px + x; }

  void begin_iteration(RankState& r) {
    r.recvs_done = 0;
    r.sends_done = 0;
    r.threads_done = 0;
    r.compute_done = false;
    auto on_recv = [this, &r] {
      if (++r.recvs_done == r.recvs_needed) start_compute(r);
    };
    if (r.recv_w) {
      PARTIB_ASSERT(ok(r.recv_w->start()));
      r.recv_w->when_complete(on_recv);
    }
    if (r.recv_n) {
      PARTIB_ASSERT(ok(r.recv_n->start()));
      r.recv_n->when_complete(on_recv);
    }
    auto on_send = [this, &r] {
      ++r.sends_done;
      maybe_finish_iteration(r);
    };
    if (r.send_e) {
      PARTIB_ASSERT(ok(r.send_e->start()));
      r.send_e->when_complete(on_send);
    }
    if (r.send_s) {
      PARTIB_ASSERT(ok(r.send_s->start()));
      r.send_s->when_complete(on_send);
    }
    if (r.recvs_needed == 0) start_compute(r);
  }

  void start_compute(RankState& r) {
    const std::size_t n = cfg.threads;
    const auto laggard = static_cast<std::size_t>(
        r.rng->uniform_int(0, static_cast<std::int64_t>(n) - 1));
    sim::ArrivalPattern pattern =
        sim::many_before_one(n, cfg.compute, cfg.noise, laggard);
    const Duration span =
        cfg.jitter_per_thread * static_cast<Duration>(n);
    for (std::size_t i = 0; i < n; ++i) {
      if (i != laggard) {
        pattern[i] += static_cast<Duration>(
            r.rng->uniform(0.0, static_cast<double>(span)));
      }
    }
    mpi::Rank& mr = world.rank(rank_id(r.x, r.y));
    for (std::size_t i = 0; i < n; ++i) {
      mr.cpu().submit(pattern[i], [this, &r, i] {
        if (r.send_e) PARTIB_ASSERT(ok(r.send_e->pready(i)));
        if (r.send_s) PARTIB_ASSERT(ok(r.send_s->pready(i)));
        if (++r.threads_done == cfg.threads) {
          r.compute_done = true;
          maybe_finish_iteration(r);
        }
      });
    }
  }

  void maybe_finish_iteration(RankState& r) {
    if (!r.compute_done || r.sends_done != r.sends_needed ||
        r.recvs_done != r.recvs_needed) {
      return;
    }
    ++r.iter;
    if (r.iter == cfg.warmup) r.warmup_done_at = engine.now();
    if (r.iter < total_iters) {
      begin_iteration(r);
    } else {
      ++finished_ranks;
    }
  }
};

}  // namespace

SweepResult run_sweep(SweepConfig cfg) {
  PARTIB_ASSERT(cfg.px >= 1 && cfg.py >= 1 && cfg.message_bytes > 0);
  sim::Engine engine;
  cfg.world.ranks = cfg.px * cfg.py;
  cfg.world.copy_data = false;
  mpi::World world(engine, cfg.world);

  SweepRun run(cfg, engine, world);
  // Payload copies are disabled, so every channel can share one backing
  // allocation (MRs may overlap; only the timeline matters here).
  std::vector<std::byte> shared_buffer(cfg.message_bytes);
  auto make_buffer = [&]() -> std::span<std::byte> { return shared_buffer; };

  for (int y = 0; y < cfg.py; ++y) {
    for (int x = 0; x < cfg.px; ++x) {
      RankState& r = run.ranks[static_cast<std::size_t>(run.rank_id(x, y))];
      r.x = x;
      r.y = y;
      r.rng = std::make_unique<sim::Rng>(
          cfg.seed ^ (static_cast<std::uint64_t>(run.rank_id(x, y)) * 0x9E37u));
      mpi::Rank& mr = world.rank(run.rank_id(x, y));
      if (x + 1 < cfg.px) {
        PARTIB_ASSERT(ok(part::psend_init(mr, make_buffer(), cfg.threads,
                                          run.rank_id(x + 1, y), kTagEast, 0,
                                          cfg.options, &r.send_e)));
        ++r.sends_needed;
      }
      if (y + 1 < cfg.py) {
        PARTIB_ASSERT(ok(part::psend_init(mr, make_buffer(), cfg.threads,
                                          run.rank_id(x, y + 1), kTagSouth, 0,
                                          cfg.options, &r.send_s)));
        ++r.sends_needed;
      }
      if (x > 0) {
        PARTIB_ASSERT(ok(part::precv_init(mr, make_buffer(), cfg.threads,
                                          run.rank_id(x - 1, y), kTagEast, 0,
                                          cfg.options, &r.recv_w)));
        ++r.recvs_needed;
      }
      if (y > 0) {
        PARTIB_ASSERT(ok(part::precv_init(mr, make_buffer(), cfg.threads,
                                          run.rank_id(x, y - 1), kTagSouth, 0,
                                          cfg.options, &r.recv_n)));
        ++r.recvs_needed;
      }
    }
  }
  engine.run();  // settle every handshake before timing

  for (RankState& r : run.ranks) run.begin_iteration(r);
  engine.run();
  PARTIB_ASSERT(run.finished_ranks == cfg.px * cfg.py);

  Time warmup_done = 0;
  for (const RankState& r : run.ranks) {
    PARTIB_ASSERT(r.warmup_done_at >= 0 || cfg.warmup == 0);
    warmup_done = std::max(warmup_done, r.warmup_done_at);
  }

  SweepResult res;
  res.total_time = engine.now() - warmup_done;
  // The paper subtracts "the computation time listed in each subfigure
  // caption" — the nominal compute only.  The noise-induced laggard delay
  // deliberately stays inside the communication time, which is why large
  // noise (400 us) dilutes every design's speedup in Fig 14c.
  res.compute_on_path = static_cast<Duration>(cfg.iterations) * cfg.compute;
  res.comm_time = res.total_time - res.compute_on_path;
  return res;
}

}  // namespace partib::bench
