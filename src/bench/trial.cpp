#include "bench/trial.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>

#include "runner/fingerprint.hpp"

namespace partib::bench {

namespace {

// -- fingerprint feed helpers ------------------------------------------------

void hash_loggp(runner::Hasher& h, const model::LogGPParams& p) {
  h.i64(p.L).i64(p.o_s).i64(p.o_r).i64(p.g).f64(p.G);
}

void hash_nic(runner::Hasher& h, const fabric::NicParams& nic) {
  hash_loggp(h, nic.wire);
  h.u64(nic.mtu)
      .u64(nic.segment_header_bytes)
      .i64(nic.max_outstanding_wr_per_qp)
      .f64(nic.qp_bw_share)
      .i64(nic.qp_activation)
      .i64(nic.o_post)
      .i64(nic.ctrl_overhead);
}

void hash_world(runner::Hasher& h, const mpi::WorldOptions& w) {
  h.i64(w.ranks);
  hash_nic(h, w.nic);
  h.boolean(w.copy_data)
      .i64(w.cores_per_rank)
      .i64(w.cq_depth)
      .i64(w.pready_cpu)
      .i64(w.verbs_sw_per_msg)
      .boolean(w.dpu_aggregation)
      .i64(w.dpu_post_overhead);
}

void hash_ucx(runner::Hasher& h, const part::UcxModel& u) {
  h.u64(u.bcopy_max)
      .u64(u.rndv_min)
      .i64(u.o_bcopy)
      .f64(u.copy_G)
      .i64(u.o_zcopy)
      .i64(u.o_rndv)
      .i64(u.rndv_extra_latencies)
      .f64(u.eager_wire_share)
      .boolean(u.model_lock_convoy);
}

void hash_options(runner::Hasher& h, const part::Options& o) {
  // Strategy identity comes from describe(): parameter-complete by
  // contract (agg/aggregator.hpp), so two option sets hash equal exactly
  // when they plan identically.
  h.str(o.aggregator ? o.aggregator->describe() : "none");
  h.u64(o.transport_partitions_override).i64(o.qp_count_override);
  h.boolean(o.shared_resources);
  hash_ucx(h, o.ucx);
}

// -- codec helpers -----------------------------------------------------------

/// Whitespace-separated field scanner over a cache payload.  strtoll /
/// strtod accept exactly what the encoders emit (decimal integers,
/// printf %a hexfloats), so decode is an exact inverse of encode.
struct FieldReader {
  const char* p;
  const char* end;
  bool ok = true;

  explicit FieldReader(std::string_view s)
      : p(s.data()), end(s.data() + s.size()) {}

  std::int64_t i64() {
    char* next = nullptr;
    const long long v = std::strtoll(p, &next, 10);
    return take(next) ? static_cast<std::int64_t>(v) : 0;
  }

  std::uint64_t u64() {
    char* next = nullptr;
    const unsigned long long v = std::strtoull(p, &next, 10);
    return take(next) ? static_cast<std::uint64_t>(v) : 0;
  }

  double f64() {
    char* next = nullptr;
    const double v = std::strtod(p, &next);
    return take(next) ? v : 0.0;
  }

 private:
  bool take(char* next) {
    // The payload is NUL-terminated by the cache layer's std::string, so
    // strto* cannot scan past `end`; a conversion that consumed nothing
    // (next == p) means a malformed/truncated payload.
    if (next == p || next > end) {
      ok = false;
      return false;
    }
    p = next;
    return true;
  }
};

}  // namespace

// -- fingerprints ------------------------------------------------------------

std::uint64_t fingerprint(const OverheadConfig& cfg) {
  runner::Hasher h;
  h.str("overhead/v1")
      .u64(cfg.total_bytes)
      .u64(cfg.user_partitions)
      .i64(cfg.iterations)
      .i64(cfg.warmup)
      .i64(cfg.start_jitter_per_thread)
      .u64(cfg.seed);
  hash_options(h, cfg.options);
  hash_world(h, cfg.world);
  return h.digest();
}

std::uint64_t fingerprint(const PerceivedConfig& cfg) {
  runner::Hasher h;
  h.str("perceived/v1")
      .u64(cfg.total_bytes)
      .u64(cfg.user_partitions)
      .i64(cfg.compute)
      .f64(cfg.noise)
      .i64(cfg.jitter_per_thread)
      .i64(cfg.iterations)
      .i64(cfg.warmup)
      .u64(cfg.seed);
  hash_options(h, cfg.options);
  hash_world(h, cfg.world);
  // cfg.profiler is intentionally not hashed: it is an observer, not an
  // input; profiler-carrying grids bypass the cache instead (see
  // run_perceived_grid).
  return h.digest();
}

std::uint64_t fingerprint(const SweepConfig& cfg) {
  runner::Hasher h;
  h.str("sweep/v1")
      .i64(cfg.px)
      .i64(cfg.py)
      .u64(cfg.threads)
      .u64(cfg.message_bytes)
      .i64(cfg.compute)
      .f64(cfg.noise)
      .i64(cfg.jitter_per_thread)
      .i64(cfg.iterations)
      .i64(cfg.warmup)
      .u64(cfg.seed);
  hash_options(h, cfg.options);
  hash_world(h, cfg.world);
  return h.digest();
}

std::uint64_t fingerprint(const HaloConfig& cfg) {
  runner::Hasher h;
  h.str("halo/v1")
      .i64(cfg.px)
      .i64(cfg.py)
      .u64(cfg.threads)
      .u64(cfg.face_bytes)
      .i64(cfg.compute)
      .f64(cfg.noise)
      .i64(cfg.jitter_per_thread)
      .i64(cfg.iterations)
      .i64(cfg.warmup)
      .u64(cfg.seed);
  hash_options(h, cfg.options);
  hash_world(h, cfg.world);
  return h.digest();
}

std::uint64_t fingerprint(const ConnScaleConfig& cfg) {
  runner::Hasher h;
  h.str("connscale/v1")
      .i64(cfg.peers)
      .boolean(cfg.alltoall)
      .u64(cfg.bytes)
      .u64(cfg.user_partitions)
      .i64(cfg.rounds)
      .u64(cfg.seed);
  hash_options(h, cfg.options);
  hash_world(h, cfg.world);
  return h.digest();
}

std::uint64_t fingerprint(const ZooConfig& cfg) {
  runner::Hasher h;
  h.str("zoo/v1")
      .i64(static_cast<std::int64_t>(cfg.shape))
      .u64(cfg.total_bytes)
      .u64(cfg.user_partitions)
      .boolean(cfg.oracle)
      .i64(cfg.spread)
      .i64(cfg.epochs)
      .i64(cfg.warmup)
      .u64(cfg.seed);
  hash_options(h, cfg.options);
  hash_world(h, cfg.world);
  return h.digest();
}

// -- codecs ------------------------------------------------------------------

runner::Codec<OverheadResult> overhead_codec() {
  runner::Codec<OverheadResult> c;
  c.encode = [](const OverheadResult& r) -> std::string {
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "%" PRId64 " %" PRId64 " %" PRId64 " %" PRIu64 " %" PRId64,
                  static_cast<std::int64_t>(r.mean_round),
                  static_cast<std::int64_t>(r.min_round),
                  static_cast<std::int64_t>(r.max_round), r.wrs_posted,
                  static_cast<std::int64_t>(r.host_cpu_per_round));
    return buf;
  };
  c.decode = [](std::string_view s, OverheadResult* r) -> bool {
    FieldReader f(s);
    r->mean_round = f.i64();
    r->min_round = f.i64();
    r->max_round = f.i64();
    r->wrs_posted = f.u64();
    r->host_cpu_per_round = f.i64();
    return f.ok;
  };
  return c;
}

runner::Codec<PerceivedResult> perceived_codec() {
  runner::Codec<PerceivedResult> c;
  c.encode = [](const PerceivedResult& r) -> std::string {
    // %a hexfloat round-trips doubles bit-exactly through strtod.
    char buf[256];
    std::snprintf(buf, sizeof(buf), "%a %a %a %a %a", r.mean_gbytes_per_s,
                  r.min_gbytes_per_s, r.max_gbytes_per_s, r.wire_gbytes_per_s,
                  r.mean_wrs_per_round);
    return buf;
  };
  c.decode = [](std::string_view s, PerceivedResult* r) -> bool {
    FieldReader f(s);
    r->mean_gbytes_per_s = f.f64();
    r->min_gbytes_per_s = f.f64();
    r->max_gbytes_per_s = f.f64();
    r->wire_gbytes_per_s = f.f64();
    r->mean_wrs_per_round = f.f64();
    return f.ok;
  };
  return c;
}

runner::Codec<SweepResult> sweep_codec() {
  runner::Codec<SweepResult> c;
  c.encode = [](const SweepResult& r) -> std::string {
    char buf[128];
    std::snprintf(buf, sizeof(buf), "%" PRId64 " %" PRId64 " %" PRId64,
                  static_cast<std::int64_t>(r.total_time),
                  static_cast<std::int64_t>(r.compute_on_path),
                  static_cast<std::int64_t>(r.comm_time));
    return buf;
  };
  c.decode = [](std::string_view s, SweepResult* r) -> bool {
    FieldReader f(s);
    r->total_time = f.i64();
    r->compute_on_path = f.i64();
    r->comm_time = f.i64();
    return f.ok;
  };
  return c;
}

runner::Codec<HaloResult> halo_codec() {
  runner::Codec<HaloResult> c;
  c.encode = [](const HaloResult& r) -> std::string {
    char buf[128];
    std::snprintf(buf, sizeof(buf), "%" PRId64 " %" PRId64 " %" PRId64,
                  static_cast<std::int64_t>(r.total_time),
                  static_cast<std::int64_t>(r.compute_on_path),
                  static_cast<std::int64_t>(r.comm_time));
    return buf;
  };
  c.decode = [](std::string_view s, HaloResult* r) -> bool {
    FieldReader f(s);
    r->total_time = f.i64();
    r->compute_on_path = f.i64();
    r->comm_time = f.i64();
    return f.ok;
  };
  return c;
}

runner::Codec<ConnScaleResult> connscale_codec() {
  runner::Codec<ConnScaleResult> c;
  c.encode = [](const ConnScaleResult& r) -> std::string {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "%" PRId64 " %" PRId64 " %" PRId64 " %" PRId64 " %" PRIu64
                  " %" PRIu64 " %" PRIu64 " %" PRIu64,
                  static_cast<std::int64_t>(r.mean_round), r.hot_qps,
                  r.hot_cqs, r.hot_srqs, r.hot_provisioned_bytes,
                  r.hot_resident_bytes, r.establishments, r.recycles);
    return buf;
  };
  c.decode = [](std::string_view s, ConnScaleResult* r) -> bool {
    FieldReader f(s);
    r->mean_round = f.i64();
    r->hot_qps = f.i64();
    r->hot_cqs = f.i64();
    r->hot_srqs = f.i64();
    r->hot_provisioned_bytes = f.u64();
    r->hot_resident_bytes = f.u64();
    r->establishments = f.u64();
    r->recycles = f.u64();
    return f.ok;
  };
  return c;
}

runner::Codec<ZooResult> zoo_codec() {
  runner::Codec<ZooResult> c;
  c.encode = [](const ZooResult& r) -> std::string {
    char buf[320];
    std::snprintf(buf, sizeof(buf),
                  "%a %a %a %a %a %" PRId64 " %a %a %" PRId64,
                  r.warm_gbytes_per_s, r.all_gbytes_per_s,
                  r.phase_gbytes_per_s[0], r.phase_gbytes_per_s[1],
                  r.phase_gbytes_per_s[2], r.final_tp, r.final_delta_us,
                  r.mean_wrs_per_epoch, r.replans_adopted);
    return buf;
  };
  c.decode = [](std::string_view s, ZooResult* r) -> bool {
    FieldReader f(s);
    r->warm_gbytes_per_s = f.f64();
    r->all_gbytes_per_s = f.f64();
    r->phase_gbytes_per_s[0] = f.f64();
    r->phase_gbytes_per_s[1] = f.f64();
    r->phase_gbytes_per_s[2] = f.f64();
    r->final_tp = f.i64();
    r->final_delta_us = f.f64();
    r->mean_wrs_per_epoch = f.f64();
    r->replans_adopted = f.i64();
    return f.ok;
  };
  return c;
}

// -- trial forms -------------------------------------------------------------

OverheadResult overhead_trial(const OverheadConfig& cfg) {
  OverheadConfig c = cfg;
  if (c.seed == 0) c.seed = runner::derive_seed(fingerprint(cfg));
  return run_overhead(c);
}

PerceivedResult perceived_trial(const PerceivedConfig& cfg) {
  PerceivedConfig c = cfg;
  if (c.seed == 0) c.seed = runner::derive_seed(fingerprint(cfg));
  return run_perceived_bandwidth(c);
}

SweepResult sweep_trial(const SweepConfig& cfg) {
  SweepConfig c = cfg;
  if (c.seed == 0) c.seed = runner::derive_seed(fingerprint(cfg));
  return run_sweep(c);
}

HaloResult halo_trial(const HaloConfig& cfg) {
  HaloConfig c = cfg;
  if (c.seed == 0) c.seed = runner::derive_seed(fingerprint(cfg));
  return run_halo(c);
}

ConnScaleResult connscale_trial(const ConnScaleConfig& cfg) {
  ConnScaleConfig c = cfg;
  if (c.seed == 0) c.seed = runner::derive_seed(fingerprint(cfg));
  return run_connscale(c);
}

ZooResult zoo_trial(const ZooConfig& cfg) {
  ZooConfig c = cfg;
  if (c.seed == 0) c.seed = runner::derive_seed(fingerprint(cfg));
  return run_zoo(c);
}

// -- grid runners ------------------------------------------------------------

std::vector<OverheadResult> run_overhead_grid(
    const std::vector<OverheadConfig>& grid, const runner::RunOptions& opts,
    runner::RunStats* stats) {
  return runner::run_trials<OverheadConfig, OverheadResult>(
      grid, overhead_trial,
      [](const OverheadConfig& c) { return fingerprint(c); },
      overhead_codec(), opts, stats);
}

std::vector<PerceivedResult> run_perceived_grid(
    const std::vector<PerceivedConfig>& grid, const runner::RunOptions& opts,
    runner::RunStats* stats) {
  runner::RunOptions o = opts;
  for (const PerceivedConfig& c : grid) {
    if (c.profiler != nullptr) {
      o.cache = nullptr;  // profiler side effects cannot replay from cache
      break;
    }
  }
  return runner::run_trials<PerceivedConfig, PerceivedResult>(
      grid, perceived_trial,
      [](const PerceivedConfig& c) { return fingerprint(c); },
      perceived_codec(), o, stats);
}

std::vector<SweepResult> run_sweep_grid(const std::vector<SweepConfig>& grid,
                                        const runner::RunOptions& opts,
                                        runner::RunStats* stats) {
  return runner::run_trials<SweepConfig, SweepResult>(
      grid, sweep_trial, [](const SweepConfig& c) { return fingerprint(c); },
      sweep_codec(), opts, stats);
}

std::vector<HaloResult> run_halo_grid(const std::vector<HaloConfig>& grid,
                                      const runner::RunOptions& opts,
                                      runner::RunStats* stats) {
  return runner::run_trials<HaloConfig, HaloResult>(
      grid, halo_trial, [](const HaloConfig& c) { return fingerprint(c); },
      halo_codec(), opts, stats);
}

std::vector<ConnScaleResult> run_connscale_grid(
    const std::vector<ConnScaleConfig>& grid, const runner::RunOptions& opts,
    runner::RunStats* stats) {
  return runner::run_trials<ConnScaleConfig, ConnScaleResult>(
      grid, connscale_trial,
      [](const ConnScaleConfig& c) { return fingerprint(c); },
      connscale_codec(), opts, stats);
}

std::vector<ZooResult> run_zoo_grid(const std::vector<ZooConfig>& grid,
                                    const runner::RunOptions& opts,
                                    runner::RunStats* stats) {
  return runner::run_trials<ZooConfig, ZooResult>(
      grid, zoo_trial, [](const ZooConfig& c) { return fingerprint(c); },
      zoo_codec(), opts, stats);
}

}  // namespace partib::bench
