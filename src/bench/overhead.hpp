// The overhead micro-benchmark (Temuçin et al., ICPP'22; used for the
// paper's Figs 6-8).
//
// Two ranks, one partitioned channel.  Every round all user partitions
// are marked ready immediately (no compute, no noise) and the round time
// is the virtual interval from Start to both sides completing — i.e. pure
// wire/software efficiency.  Speedups are reported relative to the
// persistent (Open MPI part_persist over UCX) baseline run with identical
// geometry.
#pragma once

#include <cstddef>

#include "common/time.hpp"
#include "mpi/world.hpp"
#include "part/options.hpp"

namespace partib::bench {

struct OverheadConfig {
  std::size_t total_bytes = 0;
  std::size_t user_partitions = 16;
  part::Options options;
  int iterations = 100;
  int warmup = 10;
  /// Even with no compute, one thread per partition leaves the parallel
  /// region spread over a small window (scheduler release order); each
  /// thread's Pready is delayed by U[0, jitter * threads].
  Duration start_jitter_per_thread = nsec(250);
  std::uint64_t seed = 0xF16'6u;
  mpi::WorldOptions world;
};

struct OverheadResult {
  Duration mean_round = 0;
  Duration min_round = 0;
  Duration max_round = 0;
  std::uint64_t wrs_posted = 0;  ///< total over the measured iterations
  /// Sender-host CPU work per measured round (Pready fast path + any
  /// host-side posting work; excludes jitter/compute).
  Duration host_cpu_per_round = 0;
};

OverheadResult run_overhead(const OverheadConfig& cfg);

}  // namespace partib::bench
