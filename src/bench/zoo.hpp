// The workload zoo: arrival-shape benchmarks for the online
// arrival-learning ablation (docs/ADAPTIVE.md, EXPERIMENTS.md).
//
// Each shape is a deterministic per-partition arrival-offset generator in
// the spirit of Gillis et al.'s partitioned-benchmark suite (uniform,
// reverse, random-permutation, bursty-tail orders), plus an LQCD-style 4D
// halo stencil (eight direction blocks with irregular phases, after pMR)
// and a regime-shifting trace (balanced -> heavily imbalanced -> moderate)
// that extends bench_ablation_adaptive.  A zoo trial runs one persistent
// channel for `epochs` MPI_Start epochs, replays the shape's arrival
// offsets each epoch, and reports perceived bandwidth (total bytes /
// (receive completion - last Pready)) averaged over the post-warm-up
// epochs — the measure the learning aggregator is supposed to move.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/time.hpp"
#include "mpi/world.hpp"
#include "part/options.hpp"

namespace partib::bench {

enum class ZooShape {
  kUniform,      ///< linear ramp over the spread (Gillis "uniform")
  kReverse,      ///< descending ramp (Gillis "reverse")
  kRandomPerm,   ///< ramp over a seed-fixed random permutation + jitter
  kBurstyTail,   ///< 7/8 arrive early, last 1/8 in the final 10% window
  kLqcdHalo4d,   ///< 8 direction blocks with irregular per-block phases
  kRegimeShift,  ///< balanced -> heavily imbalanced -> moderate by epoch
};
inline constexpr std::size_t kZooShapeCount = 6;

const char* to_string(ZooShape shape);

struct ZooConfig {
  ZooShape shape = ZooShape::kUniform;
  std::size_t total_bytes = 64u << 20;  // 64 MiB
  std::size_t user_partitions = 64;
  part::Options options;
  /// Oracle arm: re-seed the (learning) channel with the epoch's true
  /// arrival vector before every Start, so its replans see the ground
  /// truth instead of the EWMA — the upper bound learning chases.
  bool oracle = false;
  /// Base arrival spread of the shape (regime-shift scales it per phase).
  /// 6 ms puts a 64 MiB / 64-partition channel just past the wire-bound
  /// knee (inter-arrival gap > per-partition wire time), where the plan —
  /// group count, boundaries, δ — controls the perceived-bandwidth tail.
  Duration spread = msec(6);
  int epochs = 30;
  int warmup = 10;
  std::uint64_t seed = 0;  ///< 0 = derive from fingerprint (trial form)
  mpi::WorldOptions world;
};

struct ZooResult {
  /// Mean perceived bandwidth over the post-warm-up epochs.
  double warm_gbytes_per_s = 0.0;
  /// Mean over every epoch (warm-up included) — shows the learning ramp.
  double all_gbytes_per_s = 0.0;
  /// Mean perceived bandwidth per third of the measured epochs — the
  /// per-regime breakdown for the regime-shifting trace.
  double phase_gbytes_per_s[3] = {0.0, 0.0, 0.0};
  std::int64_t final_tp = 0;
  double final_delta_us = 0.0;
  double mean_wrs_per_epoch = 0.0;
  std::int64_t replans_adopted = 0;
};

/// Fill `out[0..n)` with the shape's arrival offsets for `epoch` (pure
/// function of its arguments — the zoo's determinism rests on it).
void zoo_arrivals(ZooShape shape, std::size_t n, Duration spread,
                  std::uint64_t seed, int epoch, int total_epochs,
                  Duration* out);

ZooResult run_zoo(ZooConfig cfg);

}  // namespace partib::bench
