// Plain-text table reporting for the benchmark harness.
//
// Every figure/table binary prints the same rows/series the paper reports,
// through this one formatter, plus an optional CSV dump for plotting.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace partib::bench {

class Table {
 public:
  Table(std::string title, std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  std::size_t rows() const { return rows_.size(); }

  /// Column-aligned human-readable rendering.
  void print(std::ostream& out) const;

  std::string to_csv() const;

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision double ("1.73").
std::string fmt(double v, int precision = 2);

}  // namespace partib::bench
