#include "bench/zoo.hpp"

#include <algorithm>
#include <memory>
#include <numeric>

#include "common/assert.hpp"
#include "part/partitioned.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"

namespace partib::bench {

const char* to_string(ZooShape shape) {
  switch (shape) {
    case ZooShape::kUniform: return "uniform";
    case ZooShape::kReverse: return "reverse";
    case ZooShape::kRandomPerm: return "random-perm";
    case ZooShape::kBurstyTail: return "bursty-tail";
    case ZooShape::kLqcdHalo4d: return "lqcd-halo4d";
    case ZooShape::kRegimeShift: return "regime-shift";
  }
  return "?";
}

namespace {

void ramp(std::size_t n, Duration spread, Duration* out) {
  const auto d = static_cast<Duration>(n > 1 ? n - 1 : 1);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = (spread * static_cast<Duration>(i)) / d;
  }
}

void bursty_tail(std::size_t n, Duration spread, Duration* out) {
  // 7/8 of the partitions arrive in a tight early window; the remaining
  // index-contiguous tail lands in the final 10% of the spread.
  const std::size_t tail = std::max<std::size_t>(n / 8, 1);
  const std::size_t head = n - tail;
  const auto dh = static_cast<Duration>(head > 1 ? head - 1 : 1);
  const auto dt = static_cast<Duration>(tail > 1 ? tail - 1 : 1);
  for (std::size_t i = 0; i < head; ++i) {
    out[i] = ((spread / 50) * static_cast<Duration>(i)) / dh;
  }
  for (std::size_t i = head; i < n; ++i) {
    out[i] = (spread * 9) / 10 +
             ((spread / 10) * static_cast<Duration>(i - head)) / dt;
  }
}

}  // namespace

void zoo_arrivals(ZooShape shape, std::size_t n, Duration spread,
                  std::uint64_t seed, int epoch, int total_epochs,
                  Duration* out) {
  PARTIB_ASSERT(n >= 1 && spread >= 0);
  switch (shape) {
    case ZooShape::kUniform:
      ramp(n, spread, out);
      return;
    case ZooShape::kReverse: {
      ramp(n, spread, out);
      for (std::size_t i = 0; i < n; ++i) out[i] = spread - out[i];
      return;
    }
    case ZooShape::kRandomPerm: {
      // The permutation is fixed by the seed (stationary — learnable);
      // each epoch adds sub-quantum jitter so learning has to look
      // through noise, not just memorise one exact timeline.
      std::vector<std::uint32_t> perm(n);
      std::iota(perm.begin(), perm.end(), 0u);
      sim::Rng prng(seed ^ 0x9E3779B97F4A7C15ULL);
      for (std::size_t i = n - 1; i > 0; --i) {
        const auto j = static_cast<std::size_t>(
            prng.uniform_int(0, static_cast<std::int64_t>(i)));
        std::swap(perm[i], perm[j]);
      }
      const auto d = static_cast<Duration>(n > 1 ? n - 1 : 1);
      sim::Rng jrng(seed + 0x51ED0000u + static_cast<std::uint64_t>(epoch));
      for (std::size_t i = 0; i < n; ++i) {
        out[i] = (spread * static_cast<Duration>(perm[i])) / d +
                 jrng.uniform_int(0, usec(8));
      }
      return;
    }
    case ZooShape::kBurstyTail:
      bursty_tail(n, spread, out);
      return;
    case ZooShape::kLqcdHalo4d: {
      // Eight halo direction blocks (4D stencil: +/- per dimension), each
      // finishing its pack at an irregular phase of the compute step, with
      // a small intra-block ramp.  Clusters are index-contiguous but their
      // arrival order is not monotonic in index — exactly where uniform
      // power-of-two groups straddle cluster boundaries.
      static constexpr double kPhase[8] = {0.00, 0.55, 0.12, 0.68,
                                           0.25, 0.80, 0.38, 0.95};
      const std::size_t blocks = std::min<std::size_t>(8, n);
      const std::size_t bs = n / blocks;
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t b = std::min(i / bs, blocks - 1);
        const std::size_t j = i - b * bs;
        const std::size_t blen = b == blocks - 1 ? n - b * bs : bs;
        const auto db = static_cast<Duration>(blen > 1 ? blen - 1 : 1);
        out[i] =
            static_cast<Duration>(kPhase[b] * static_cast<double>(spread)) +
            ((spread / 40) * static_cast<Duration>(j)) / db;
      }
      return;
    }
    case ZooShape::kRegimeShift: {
      // Smooth ramp -> bursty tail at twice the spread -> nearly
      // simultaneous, by epoch thirds.  The first two regimes have
      // *different* learnable optima (a finer uniform split vs a cluster
      // cut around the straggler tail), so tracking the trace takes a
      // re-plan at each shift; the calm final regime is wire-bound — the
      // right reaction there is to keep whatever plan is standing.
      const int third = std::max(total_epochs / 3, 1);
      if (epoch < third) {
        ramp(n, spread, out);
      } else if (epoch < 2 * third) {
        bursty_tail(n, 2 * spread, out);
      } else {
        ramp(n, spread / 1000, out);
      }
      return;
    }
  }
  PARTIB_ASSERT(false);
}

ZooResult run_zoo(ZooConfig cfg) {
  PARTIB_ASSERT(cfg.total_bytes > 0 && cfg.user_partitions > 0);
  PARTIB_ASSERT(cfg.epochs > cfg.warmup && cfg.warmup >= 0);
  sim::Engine engine;
  cfg.world.ranks = 2;
  cfg.world.copy_data = false;
  mpi::World world(engine, cfg.world);

  const std::size_t n = cfg.user_partitions;
  std::vector<std::byte> sbuf(cfg.total_bytes), rbuf(cfg.total_bytes);
  std::unique_ptr<part::PsendRequest> send;
  std::unique_ptr<part::PrecvRequest> recv;
  PARTIB_ASSERT(ok(part::psend_init(world.rank(0), sbuf, n, 1, 0, 0,
                                    cfg.options, &send)));
  PARTIB_ASSERT(ok(part::precv_init(world.rank(1), rbuf, n, 0, 0, 0,
                                    cfg.options, &recv)));
  engine.run();
  PARTIB_ASSERT_MSG(!cfg.oracle || send->plan().learning,
                    "the oracle arm needs a learning plan to seed");

  ZooResult res;
  std::vector<Duration> truth(n);
  double warm_sum = 0.0;
  double all_sum = 0.0;
  double phase_sum[3] = {0.0, 0.0, 0.0};
  int phase_n[3] = {0, 0, 0};
  int warm_n = 0;
  std::uint64_t wrs_at_warm = 0;
  const int measured = cfg.epochs - cfg.warmup;

  for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
    zoo_arrivals(cfg.shape, n, cfg.spread, cfg.seed, epoch, cfg.epochs,
                 truth.data());
    if (cfg.oracle) {
      PARTIB_ASSERT(ok(send->seed_profile(truth)));
    }
    if (epoch == cfg.warmup) wrs_at_warm = send->wrs_posted_total();
    PARTIB_ASSERT(ok(send->start()));
    PARTIB_ASSERT(ok(recv->start()));

    const Time t0 = engine.now();
    Time last_pready = 0;
    for (std::size_t i = 0; i < n; ++i) {
      engine.schedule_at(t0 + truth[i], [&engine, &send, &last_pready, i] {
        last_pready = std::max(last_pready, engine.now());
        PARTIB_ASSERT(ok(send->pready(i)));
      });
    }
    Time recv_done = -1;
    recv->when_complete([&engine, &recv_done] { recv_done = engine.now(); });
    engine.run();
    PARTIB_ASSERT(send->test() && recv->test());
    PARTIB_ASSERT(recv_done >= last_pready);

    const double gbps = static_cast<double>(cfg.total_bytes) /
                        static_cast<double>(recv_done - last_pready);
    all_sum += gbps;
    if (epoch >= cfg.warmup) {
      warm_sum += gbps;
      const int phase = std::min((epoch - cfg.warmup) * 3 / measured, 2);
      phase_sum[phase] += gbps;
      ++phase_n[phase];
      ++warm_n;
    }
  }

  res.warm_gbytes_per_s = warm_sum / std::max(warm_n, 1);
  res.all_gbytes_per_s = all_sum / std::max(cfg.epochs, 1);
  for (int p = 0; p < 3; ++p) {
    res.phase_gbytes_per_s[p] = phase_sum[p] / std::max(phase_n[p], 1);
  }
  res.final_tp = static_cast<std::int64_t>(send->transport_partitions());
  res.final_delta_us =
      send->plan().timer_based ? to_usec(send->plan().timer_delta) : 0.0;
  res.mean_wrs_per_epoch =
      static_cast<double>(send->wrs_posted_total() - wrs_at_warm) /
      std::max(warm_n, 1);
  res.replans_adopted =
      static_cast<std::int64_t>(send->replans_adopted());
  return res;
}

}  // namespace partib::bench
