#include "bench/overhead.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "common/assert.hpp"
#include "part/partitioned.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"

namespace partib::bench {

OverheadResult run_overhead(const OverheadConfig& cfg) {
  PARTIB_ASSERT(cfg.total_bytes > 0 && cfg.user_partitions > 0);
  sim::Engine engine;
  mpi::WorldOptions wopts = cfg.world;
  wopts.ranks = 2;
  // Only the timeline matters here; skip payload memcpy.
  wopts.copy_data = false;
  mpi::World world(engine, wopts);

  std::vector<std::byte> sbuf(cfg.total_bytes), rbuf(cfg.total_bytes);
  std::unique_ptr<part::PsendRequest> send;
  std::unique_ptr<part::PrecvRequest> recv;
  PARTIB_ASSERT(ok(part::psend_init(world.rank(0), sbuf, cfg.user_partitions,
                                    1, 0, 0, cfg.options, &send)));
  PARTIB_ASSERT(ok(part::precv_init(world.rank(1), rbuf, cfg.user_partitions,
                                    0, 0, 0, cfg.options, &recv)));
  engine.run();  // settle the handshake outside the timed region

  OverheadResult res;
  res.min_round = std::numeric_limits<Duration>::max();
  Duration sum = 0;
  int measured = 0;
  std::uint64_t wrs_at_measure_start = 0;
  Duration cpu_at_measure_start = 0;

  sim::Rng rng(cfg.seed);
  const Duration jitter_span =
      cfg.start_jitter_per_thread *
      static_cast<Duration>(cfg.user_partitions);

  // Jitter delays are scheduled directly (below), so any CPU work on the
  // sender rank during the measured window is communication work.
  for (int iter = 0; iter < cfg.warmup + cfg.iterations; ++iter) {
    if (iter == cfg.warmup) {
      wrs_at_measure_start = send->wrs_posted_total();
      cpu_at_measure_start = world.rank(0).cpu().total_work_submitted();
    }
    const Time t0 = engine.now();
    PARTIB_ASSERT(ok(send->start()));
    PARTIB_ASSERT(ok(recv->start()));
    for (std::size_t i = 0; i < cfg.user_partitions; ++i) {
      const auto delay = static_cast<Duration>(
          rng.uniform(0.0, static_cast<double>(jitter_span)));
      engine.schedule_after(
          delay, [&send, i] { PARTIB_ASSERT(ok(send->pready(i))); });
    }
    engine.run();
    PARTIB_ASSERT(send->test() && recv->test());
    const Duration dt = engine.now() - t0;
    if (iter >= cfg.warmup) {
      sum += dt;
      res.min_round = std::min(res.min_round, dt);
      res.max_round = std::max(res.max_round, dt);
      ++measured;
    }
  }
  res.mean_round = sum / std::max(measured, 1);
  res.wrs_posted = send->wrs_posted_total() - wrs_at_measure_start;
  res.host_cpu_per_round =
      (world.rank(0).cpu().total_work_submitted() - cpu_at_measure_start) /
      std::max(measured, 1);
  return res;
}

}  // namespace partib::bench
