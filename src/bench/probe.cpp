#include "bench/probe.hpp"

#include <algorithm>
#include <vector>

#include "common/assert.hpp"
#include "common/bits.hpp"
#include "common/units.hpp"
#include "fabric/fabric.hpp"
#include "sim/engine.hpp"
#include "verbs/verbs.hpp"

namespace partib::bench {

namespace {

/// Minimal two-node verbs harness for raw timing probes.
struct ProbePair {
  sim::Engine engine;
  fabric::Fabric fab;
  verbs::Device dev;
  verbs::Context* sctx;
  verbs::Context* rctx;
  verbs::Pd* spd;
  verbs::Pd* rpd;
  verbs::Cq* scq;
  verbs::Cq* rcq;
  verbs::Qp* sqp;
  verbs::Qp* rqp;
  std::vector<std::byte> sbuf;
  std::vector<std::byte> rbuf;
  verbs::Mr* smr;
  verbs::Mr* rmr;

  explicit ProbePair(const fabric::NicParams& params, std::size_t buf_bytes)
      : fab(engine, params, /*copy_data=*/false), dev(fab) {
    const auto n0 = fab.add_node();
    const auto n1 = fab.add_node();
    sctx = &dev.open(n0);
    rctx = &dev.open(n1);
    spd = &sctx->alloc_pd();
    rpd = &rctx->alloc_pd();
    scq = &sctx->create_cq(1 << 16);
    rcq = &rctx->create_cq(1 << 16);
    sbuf.resize(buf_bytes);
    rbuf.resize(buf_bytes);
    smr = &spd->register_mr(sbuf, verbs::kLocalRead);
    rmr = &rpd->register_mr(rbuf, verbs::kLocalWrite | verbs::kRemoteWrite);
    verbs::QpCaps caps;
    caps.max_send_wr = params.max_outstanding_wr_per_qp;
    caps.max_recv_wr = 4096;
    sqp = &spd->create_qp(*scq, *scq, caps);
    rqp = &rpd->create_qp(*rcq, *rcq, caps);
    PARTIB_ASSERT(ok(sqp->to_init()) && ok(rqp->to_init()));
    PARTIB_ASSERT(ok(sqp->to_rtr(rqp->qp_num())));
    PARTIB_ASSERT(ok(rqp->to_rtr(sqp->qp_num())));
    PARTIB_ASSERT(ok(sqp->to_rts()) && ok(rqp->to_rts()));
  }

  /// Post one RDMA-write-with-immediate of `bytes`; returns the receive
  /// completion time minus the post time.
  Duration time_single(std::size_t bytes) {
    PARTIB_ASSERT(ok(rqp->post_recv(verbs::RecvWr{1, {}})));
    const Time t0 = engine.now();
    verbs::SendWr wr;
    wr.opcode = verbs::Opcode::kRdmaWriteWithImm;
    wr.sg_list.push_back(verbs::Sge{
        wire_addr(sbuf.data()),
        static_cast<std::uint32_t>(bytes), smr->lkey()});
    wr.remote_addr = rmr->addr();
    wr.rkey = rmr->rkey();
    PARTIB_ASSERT(ok(sqp->post_send(wr)));
    engine.run();
    verbs::Wc wc[4];
    Time recv_at = -1;
    int n;
    while ((n = rcq->poll(std::span<verbs::Wc>(wc))) > 0) {
      recv_at = wc[n - 1].completion_time;
    }
    while (scq->poll(std::span<verbs::Wc>(wc)) > 0) {
    }
    PARTIB_ASSERT(recv_at >= t0);
    return recv_at - t0;
  }

  /// Post `count` back-to-back messages; returns the median spacing of
  /// consecutive receive completions.
  Duration train_gap(std::size_t bytes, int count) {
    for (int i = 0; i < count; ++i) {
      PARTIB_ASSERT(ok(rqp->post_recv(verbs::RecvWr{1, {}})));
    }
    verbs::SendWr wr;
    wr.opcode = verbs::Opcode::kRdmaWriteWithImm;
    wr.sg_list.push_back(verbs::Sge{
        wire_addr(sbuf.data()),
        static_cast<std::uint32_t>(bytes), smr->lkey()});
    wr.remote_addr = rmr->addr();
    wr.rkey = rmr->rkey();
    for (int i = 0; i < count; ++i) PARTIB_ASSERT(ok(sqp->post_send(wr)));
    engine.run();
    std::vector<Time> arrivals;
    verbs::Wc wc[16];
    int n;
    while ((n = rcq->poll(std::span<verbs::Wc>(wc))) > 0) {
      for (int i = 0; i < n; ++i) arrivals.push_back(wc[i].completion_time);
    }
    while (scq->poll(std::span<verbs::Wc>(wc)) > 0) {
    }
    PARTIB_ASSERT(arrivals.size() == static_cast<std::size_t>(count));
    std::vector<Duration> gaps;
    for (std::size_t i = 1; i < arrivals.size(); ++i) {
      gaps.push_back(arrivals[i] - arrivals[i - 1]);
    }
    std::sort(gaps.begin(), gaps.end());
    return gaps[gaps.size() / 2];
  }
};

}  // namespace

model::LogGPParams ProbeResult::as_loggp() const {
  model::LogGPParams p;
  p.G = G;
  p.g = gap;
  // One-endpoint measurements cannot split o_s / L / o_r; attribute the
  // non-gap remainder to L, which dominates on a real fabric.
  p.o_s = 0;
  p.o_r = 0;
  p.L = std::max<Duration>(intercept - gap, 0);
  return p;
}

ProbeResult run_parameter_probe(const fabric::NicParams& params) {
  ProbePair pair(params, 8 * MiB);

  // Warm the QP (first-use activation would bias the fit).
  (void)pair.time_single(1);

  const std::size_t small = 4 * KiB;
  const std::size_t large = 4 * MiB;
  const Duration t_small = pair.time_single(small);
  const Duration t_large = pair.time_single(large);

  ProbeResult res;
  const double wire_small =
      static_cast<double>(pair.fab.wire_bytes_for(small));
  const double wire_large =
      static_cast<double>(pair.fab.wire_bytes_for(large));
  res.G = static_cast<double>(t_large - t_small) / (wire_large - wire_small);
  res.intercept = t_small - static_cast<Duration>(res.G * wire_small);
  // Gap probe: messages small enough that g dominates the per-message
  // cycle (g > k*G), so consecutive arrivals are spaced by exactly g.
  res.gap = pair.train_gap(256, 16);
  return res;
}

}  // namespace partib::bench
