#include "bench/connscale.hpp"

#include <memory>
#include <utility>
#include <vector>

#include "mpi/conn.hpp"
#include "part/partitioned.hpp"
#include "sim/engine.hpp"
#include "verbs/verbs.hpp"

namespace partib::bench {

namespace {

struct Channel {
  std::vector<std::byte> sbuf;
  std::vector<std::byte> rbuf;
  std::unique_ptr<part::PsendRequest> send;
  std::unique_ptr<part::PrecvRequest> recv;
};

}  // namespace

ConnScaleResult run_connscale(const ConnScaleConfig& cfg) {
  sim::Engine engine;
  mpi::WorldOptions wopts = cfg.world;
  wopts.ranks = cfg.alltoall ? cfg.peers : cfg.peers + 1;
  mpi::World world(engine, wopts);

  std::vector<Channel> channels;
  channels.reserve(cfg.alltoall
                       ? static_cast<std::size_t>(cfg.peers) *
                             static_cast<std::size_t>(cfg.peers - 1)
                       : static_cast<std::size_t>(cfg.peers));
  auto add_channel = [&](int src, int dst, int tag) {
    Channel c;
    c.sbuf.resize(cfg.bytes);
    c.rbuf.resize(cfg.bytes);
    PARTIB_ASSERT(ok(part::psend_init(world.rank(src), c.sbuf,
                                      cfg.user_partitions, dst, tag,
                                      /*comm=*/0, cfg.options, &c.send)));
    PARTIB_ASSERT(ok(part::precv_init(world.rank(dst), c.rbuf,
                                      cfg.user_partitions, src, tag,
                                      /*comm=*/0, cfg.options, &c.recv)));
    channels.push_back(std::move(c));
  };
  if (cfg.alltoall) {
    for (int i = 0; i < cfg.peers; ++i) {
      for (int j = 0; j < cfg.peers; ++j) {
        if (i != j) add_channel(i, j, /*tag=*/j);
      }
    }
  } else {
    for (int p = 0; p < cfg.peers; ++p) add_channel(p + 1, 0, /*tag=*/p);
  }
  engine.run();  // all handshakes

  Duration total = 0;
  for (int round = 1; round <= cfg.rounds; ++round) {
    const Time t0 = engine.now();
    for (Channel& c : channels) {
      PARTIB_ASSERT(ok(c.send->start()));
      PARTIB_ASSERT(ok(c.recv->start()));
    }
    for (Channel& c : channels) {
      for (std::size_t i = 0; i < cfg.user_partitions; ++i) {
        PARTIB_ASSERT(ok(c.send->pready(i)));
      }
    }
    engine.run();
    for (Channel& c : channels) {
      PARTIB_ASSERT(c.send->test() && c.recv->test());
    }
    total += engine.now() - t0;
  }

  ConnScaleResult r;
  r.mean_round = total / std::max(cfg.rounds, 1);
  const verbs::ResourceFootprint fp = world.rank(0).context().footprint();
  r.hot_qps = fp.qps;
  r.hot_cqs = fp.cqs;
  r.hot_srqs = fp.srqs;
  r.hot_provisioned_bytes = fp.provisioned_bytes;
  r.hot_resident_bytes = fp.resident_bytes;
  if (world.rank(0).has_connections()) {
    const mpi::ConnectionManager& mgr = world.rank(0).connections();
    r.establishments = mgr.total_establishments();
    r.recycles = mgr.total_recycles();
  }
  return r;
}

}  // namespace partib::bench
