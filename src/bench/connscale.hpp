// Connection-scale benchmark (ISSUE 8 / ROADMAP 2): N-to-1 incast and
// all-to-all at large peer counts, comparing per-channel dedicated
// resources against the shared SRQ + shared-CQ + on-demand connection
// manager fast path (part::Options::shared_resources).
//
// One trial = one world with `peers` senders converging on rank 0
// (incast) or every ordered pair connected (alltoall), run for `rounds`
// full partitioned rounds.  The result reduces to the mean virtual round
// time plus the hot rank's verbs footprint — the bytes-per-peer numbers
// docs/PERF.md tabulates.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/time.hpp"
#include "mpi/world.hpp"
#include "part/options.hpp"

namespace partib::bench {

struct ConnScaleConfig {
  int peers = 8;           ///< senders (incast) or ranks (alltoall)
  bool alltoall = false;   ///< false: N-to-1 incast onto rank 0
  std::size_t bytes = 16 * KiB;  ///< per-channel buffer size
  std::size_t user_partitions = 8;
  part::Options options;   ///< options.shared_resources selects the mode
  int rounds = 2;
  std::uint64_t seed = 0;  ///< 0 derives from the fingerprint
  mpi::WorldOptions world;
};

struct ConnScaleResult {
  Duration mean_round = 0;  ///< virtual time per round, averaged
  /// Hot-rank (rank 0) verbs objects after all rounds.
  std::int64_t hot_qps = 0;
  std::int64_t hot_cqs = 0;
  std::int64_t hot_srqs = 0;
  std::uint64_t hot_provisioned_bytes = 0;
  std::uint64_t hot_resident_bytes = 0;
  /// Connection-manager counters (0 in dedicated mode).
  std::uint64_t establishments = 0;
  std::uint64_t recycles = 0;
};

ConnScaleResult run_connscale(const ConnScaleConfig& cfg);

}  // namespace partib::bench
