// Netgauge-like LogGP parameter measurement (§III).
//
// The paper measures LogGP parameters with Netgauge and feeds them into
// the PLogGP model.  This probe does the equivalent against the simulated
// fabric, using raw verbs (the "experimental InfiniBand implementation"
// Netgauge could not offer the authors): single-message timings at two
// sizes recover G (per-byte cost) and the fixed per-message intercept;
// a back-to-back message train recovers the injection gap g.
#pragma once

#include "common/time.hpp"
#include "fabric/nic_params.hpp"
#include "model/loggp.hpp"

namespace partib::bench {

struct ProbeResult {
  /// Fitted per-byte time (ns/B), including MTU header amortisation.
  double G = 0.0;
  /// Fitted inter-message gap from the train probe.
  Duration gap = 0;
  /// Fixed per-message cost: g + o_s + L + o_r (not separable from one
  /// endpoint, exactly as the paper's MPI-level measurements were not).
  Duration intercept = 0;

  /// Package the fit as LogGP parameters for the PLogGP model, splitting
  /// the unattributable intercept remainder into L (the dominant term on a
  /// real fabric).
  model::LogGPParams as_loggp() const;
};

/// Run the probe on a fresh two-node fabric with the given NIC parameters.
ProbeResult run_parameter_probe(const fabric::NicParams& params);

}  // namespace partib::bench
