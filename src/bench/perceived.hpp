// The perceived-bandwidth micro-benchmark (Figs 9, 13; profiling source
// for Figs 10-12).
//
// Each sender thread computes and then marks its partition ready; the
// single-thread-delay model gives one laggard compute * (1 + noise).
// Perceived bandwidth = total buffer size / (receive completion - last
// Pready): early-bird transmission of the n-1 early partitions makes the
// application perceive far more than wire bandwidth for medium messages.
//
// Non-laggard threads additionally receive a small uniform jitter
// (0 .. jitter_per_thread * threads): on a real node, threads take turns
// incrementing the shared atomic arrival counter and get scheduled apart,
// which is exactly the spread the paper's Fig 12 measures and sizes delta
// against.
#pragma once

#include <cstddef>

#include "common/time.hpp"
#include "mpi/world.hpp"
#include "part/options.hpp"
#include "prof/profiler.hpp"

namespace partib::bench {

struct PerceivedConfig {
  std::size_t total_bytes = 0;
  std::size_t user_partitions = 32;
  part::Options options;
  Duration compute = msec(100);
  double noise = 0.04;
  /// Uniform per-thread arrival jitter scale (see header comment).
  Duration jitter_per_thread = nsec(1'100);
  int iterations = 10;
  int warmup = 3;
  std::uint64_t seed = 0x9E1A6A2Au;
  mpi::WorldOptions world;
  /// Optional: receives per-round pready/arrival timelines.
  prof::PartProfiler* profiler = nullptr;
};

struct PerceivedResult {
  double mean_gbytes_per_s = 0.0;
  double min_gbytes_per_s = 0.0;
  double max_gbytes_per_s = 0.0;
  /// Wire-limit reference line (single-threaded point-to-point).
  double wire_gbytes_per_s = 0.0;
  /// Mean work requests posted per measured round (delta-dependent for the
  /// timer aggregator: a small delta flushes more, smaller, runs).
  double mean_wrs_per_round = 0.0;
};

PerceivedResult run_perceived_bandwidth(PerceivedConfig cfg);

}  // namespace partib::bench
