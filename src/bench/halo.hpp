// 2D halo-exchange pattern (the second application pattern of the
// ICPP'22 micro-benchmark suite the paper builds on).
//
// Unlike the sweep there is no wavefront: every iteration each rank
// computes with `threads` workers (single-thread-delay noise), each
// worker marks its slice of every outgoing face ready as it finishes,
// and the iteration completes when all of the rank's sends and receives
// have completed.  Neighbouring iterations pipeline only through the
// channel round credits.
#pragma once

#include <cstddef>

#include "common/time.hpp"
#include "mpi/world.hpp"
#include "part/options.hpp"

namespace partib::bench {

struct HaloConfig {
  int px = 4;
  int py = 4;
  std::size_t threads = 16;       ///< user partitions per face
  std::size_t face_bytes = 0;     ///< per neighbour per iteration
  part::Options options;
  Duration compute = msec(1);
  double noise = 0.04;
  Duration jitter_per_thread = nsec(1'100);
  int iterations = 10;
  int warmup = 3;
  std::uint64_t seed = 0x4A10u;
  mpi::WorldOptions world;
};

struct HaloResult {
  Duration total_time = 0;       ///< measured iterations only
  Duration compute_on_path = 0;  ///< iterations * nominal compute
  Duration comm_time = 0;
};

HaloResult run_halo(HaloConfig cfg);

}  // namespace partib::bench
