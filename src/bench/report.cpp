#include "bench/report.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "common/assert.hpp"

namespace partib::bench {

Table::Table(std::string title, std::vector<std::string> headers)
    : title_(std::move(title)), headers_(std::move(headers)) {
  PARTIB_ASSERT(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  PARTIB_ASSERT(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
    for (const auto& row : rows_) width[c] = std::max(width[c], row[c].size());
  }
  out << "== " << title_ << " ==\n";
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << (c == 0 ? "" : "  ");
      out << cells[c];
      for (std::size_t pad = cells[c].size(); pad < width[c]; ++pad)
        out << ' ';
    }
    out << '\n';
  };
  emit_row(headers_);
  std::size_t total = headers_.size() - 1;
  for (std::size_t w : width) total += w + 1;
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  out << '\n';
}

std::string Table::to_csv() const {
  std::ostringstream out;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << (c ? "," : "") << headers_[c];
  }
  out << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c ? "," : "") << row[c];
    }
    out << '\n';
  }
  return out.str();
}

std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace partib::bench
