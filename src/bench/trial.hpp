// Pure-trial adapters between the figure benchmarks and the parallel
// experiment runner (runner/runner.hpp).
//
// Each benchmark config type gets three things here:
//
//   * a `fingerprint()` — content hash of every field that can influence
//     the simulated timeline (schema-tagged, e.g. "overhead/v1"; bump the
//     tag whenever the trial semantics change so stale cache entries
//     self-invalidate),
//   * a `Codec` — exact textual round-trip of the result struct for the
//     persistent cache (integers in decimal, doubles in hexfloat),
//   * a grid runner `run_*_grid()` — submit a vector of configs through
//     runner::run_trials and get results back in submission order.
//
// Trial forms honour a seed convention: a config with `seed == 0` asks for
// a derived seed, runner::derive_seed(fingerprint(cfg)) — deterministic,
// collision-resistant, and stable across runs.  The drivers keep their
// historical pinned seeds, so figure output is unchanged; the sentinel is
// for new sweeps that want per-config seeds without inventing them.
#pragma once

#include <cstdint>
#include <vector>

#include "bench/connscale.hpp"
#include "bench/halo.hpp"
#include "bench/overhead.hpp"
#include "bench/perceived.hpp"
#include "bench/sweep.hpp"
#include "bench/zoo.hpp"
#include "runner/runner.hpp"

namespace partib::bench {

std::uint64_t fingerprint(const OverheadConfig& cfg);
std::uint64_t fingerprint(const PerceivedConfig& cfg);
std::uint64_t fingerprint(const SweepConfig& cfg);
std::uint64_t fingerprint(const HaloConfig& cfg);
std::uint64_t fingerprint(const ConnScaleConfig& cfg);
std::uint64_t fingerprint(const ZooConfig& cfg);

runner::Codec<OverheadResult> overhead_codec();
runner::Codec<PerceivedResult> perceived_codec();
runner::Codec<SweepResult> sweep_codec();
runner::Codec<HaloResult> halo_codec();
runner::Codec<ConnScaleResult> connscale_codec();
runner::Codec<ZooResult> zoo_codec();

/// Pure `(config) -> result` trial forms: resolve the seed convention
/// (seed == 0 derives from the fingerprint) and run one isolated
/// simulation.  Thread-safe: every call builds its own Engine/World.
OverheadResult overhead_trial(const OverheadConfig& cfg);
PerceivedResult perceived_trial(const PerceivedConfig& cfg);
SweepResult sweep_trial(const SweepConfig& cfg);
HaloResult halo_trial(const HaloConfig& cfg);
ConnScaleResult connscale_trial(const ConnScaleConfig& cfg);
ZooResult zoo_trial(const ZooConfig& cfg);

/// Grid runners: results come back in submission order, so a driver that
/// formats them sequentially emits byte-identical output for any job
/// count.  Perceived grids that carry a profiler pointer bypass the cache
/// (profiler side effects cannot be replayed from a cached result).
std::vector<OverheadResult> run_overhead_grid(
    const std::vector<OverheadConfig>& grid, const runner::RunOptions& opts,
    runner::RunStats* stats = nullptr);
std::vector<PerceivedResult> run_perceived_grid(
    const std::vector<PerceivedConfig>& grid, const runner::RunOptions& opts,
    runner::RunStats* stats = nullptr);
std::vector<SweepResult> run_sweep_grid(const std::vector<SweepConfig>& grid,
                                        const runner::RunOptions& opts,
                                        runner::RunStats* stats = nullptr);
std::vector<HaloResult> run_halo_grid(const std::vector<HaloConfig>& grid,
                                      const runner::RunOptions& opts,
                                      runner::RunStats* stats = nullptr);
std::vector<ConnScaleResult> run_connscale_grid(
    const std::vector<ConnScaleConfig>& grid, const runner::RunOptions& opts,
    runner::RunStats* stats = nullptr);
std::vector<ZooResult> run_zoo_grid(const std::vector<ZooConfig>& grid,
                                    const runner::RunOptions& opts,
                                    runner::RunStats* stats = nullptr);

}  // namespace partib::bench
