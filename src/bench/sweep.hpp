// The Sweep3D communication pattern (Fig 14).
//
// A px x py process grid; each iteration is a wavefront from the (0,0)
// corner: a rank waits for its west and north receives, computes with its
// `threads` worker threads (single-thread-delay noise), and each thread
// marks its partition ready on the east and south sends as it finishes.
// The paper runs this on 1024 cores (64 nodes x 16 threads); the same
// geometry is the default here.
//
// Reported communication time subtracts the compute stages on the
// critical path (corner-to-corner pipeline fill + one stage per
// iteration), mirroring the paper's "computation time not included".
#pragma once

#include <cstddef>

#include "common/time.hpp"
#include "mpi/world.hpp"
#include "part/options.hpp"

namespace partib::bench {

struct SweepConfig {
  int px = 8;
  int py = 8;
  std::size_t threads = 16;     ///< user partitions per message
  std::size_t message_bytes = 0;  ///< per neighbour per iteration
  part::Options options;
  Duration compute = msec(1);
  double noise = 0.01;
  Duration jitter_per_thread = nsec(1'100);
  int iterations = 10;
  int warmup = 3;
  std::uint64_t seed = 0x5EEEE3Du;
  mpi::WorldOptions world;
};

struct SweepResult {
  Duration total_time = 0;      ///< measured iterations only
  Duration compute_on_path = 0; ///< critical-path compute subtracted
  Duration comm_time = 0;       ///< total - compute_on_path
};

SweepResult run_sweep(SweepConfig cfg);

}  // namespace partib::bench
