#include "check/check.hpp"

#include <cstdlib>
#include <cstring>

#include "check/concurrency_check.hpp"
#include "check/part_check.hpp"
#include "check/rules.hpp"
#include "check/verbs_check.hpp"
#include "common/diag.hpp"

namespace partib::check {

namespace {

// Checker state is thread_local: the parallel experiment runner
// (src/runner) executes one independent simulation per worker thread,
// and each simulation's hooks must update and observe *its own* shadow
// state and violation log.  Single-threaded callers (every test, every
// --jobs=1 run) see exactly the old process-wide behaviour.
thread_local Policy g_policy = Policy::kLog;

std::vector<Violation>& store() {
  static thread_local std::vector<Violation> v;
  return v;
}

}  // namespace

bool hooks_compiled_in() {
#if PARTIB_CHECK_ENABLED
  return true;
#else
  return false;
#endif
}

Policy policy() { return g_policy; }
void set_policy(Policy p) { g_policy = p; }

std::size_t violation_count() { return store().size(); }
const std::vector<Violation>& violations() { return store(); }

std::size_t count_rule(const char* rule) {
  std::size_t n = 0;
  for (const Violation& v : store()) {
    if (v.rule == rule) ++n;
  }
  return n;
}

void clear_violations() { store().clear(); }

void reset() {
  store().clear();
  g_policy = Policy::kLog;
  detail::reset_verbs_shadow();
  detail::reset_part_shadow();
  detail::reset_concurrency_shadow();
}

void report(const char* rule, const char* object, int rank,
            std::string detail) {
  // An unknown rule id is a checker bug: surface it loudly but keep the
  // original violation flowing.
  if (find_rule(rule) == nullptr) {
    Diagnostic bad;
    bad.rule = "assert";
    bad.detail = "checker reported against an unregistered rule id";
    diag_emit(bad);
  }

  Violation v;
  v.rule = rule;
  v.object = object;
  v.vtime = diag_time();
  v.rank = rank;
  v.detail = std::move(detail);

  Diagnostic d;
  d.rule = rule;
  d.object = v.object.c_str();
  d.vtime = v.vtime;
  d.rank = rank;
  d.detail = v.detail.c_str();

  switch (g_policy) {
    case Policy::kAbort:
      diag_fail(d);
    case Policy::kLog:
      diag_emit(d);
      break;
    case Policy::kCount:
      break;
  }
  store().push_back(std::move(v));
}

}  // namespace partib::check
