#include "check/determinism.hpp"

#include <cstdio>

#include "check/check.hpp"

namespace partib::check {

namespace {

constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace

void DeterminismAuditor::detach() {
  if (detacher_) {
    detacher_();
    detacher_ = nullptr;
  }
}

void DeterminismAuditor::observe(Time t, std::uint64_t seq,
                                 const char* site) {
  hash_ = fnv1a(hash_, &t, sizeof(t));
  hash_ = fnv1a(hash_, &seq, sizeof(seq));
  if (site != nullptr) {
    std::size_t len = 0;
    while (site[len] != '\0') ++len;
    hash_ = fnv1a(hash_, site, len);
  }
  ++events_;
}

bool DeterminismAuditor::expect_identical(std::uint64_t a, std::uint64_t b,
                                          const char* what) {
  if (a == b) return true;
  char detail[160];
  std::snprintf(detail, sizeof(detail),
                "event streams diverged for \"%s\": fingerprint %016llx vs "
                "%016llx",
                what, static_cast<unsigned long long>(a),
                static_cast<unsigned long long>(b));
  report("des.nondeterminism", "engine", -1, detail);
  return false;
}

}  // namespace partib::check
