// Checker hooks for the connection-scale layer (mpi/conn.hpp).
//
// Unlike the verbs/part shadows these hooks carry no independent state:
// the conditions they police (an establishment pushing past the
// configured cap, a shared-CQ completion arriving for a qp_num nobody
// bound) are detected by the manager itself; the hooks turn them into
// registered-rule diagnostics and compile away with PARTIB_CHECK=OFF like
// every other hook (check/hooks.hpp).
#pragma once

#include <cstdint>

namespace partib::check {

/// A connection was established while `active` were already established
/// and the manager's cap is `cap` (rule conn.cap).  Only called when the
/// cap is exceeded — the manager proceeds (soft cap), the checker records.
void on_conn_over_cap(const void* mgr, int active, int cap);

/// A completion polled from the shared CQ carried a qp_num with no bound
/// handler (rule conn.demux); the completion is dropped.
void on_conn_demux_miss(const void* router, std::uint32_t qp_num);

}  // namespace partib::check
