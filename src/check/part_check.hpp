// Shadow-state checker for the MPI Partitioned lifecycle.
//
// Mirrors each Psend/PrecvRequest's round state independently of the
// request object and enforces the standard's usage rules: no Pready before
// Start, no double Pready, no Start while the previous round is still in
// flight, and completion only after every partition was marked ready.  The
// receive side audits byte-coverage so a partition landing more bytes than
// its size in one round (a duplicated or overlapping WR) is caught.
//
// Hooks are invoked from src/part via PARTIB_CHECK_HOOK (check/hooks.hpp)
// and compile away when PARTIB_CHECK=OFF.
#pragma once

#include <cstddef>
#include <cstdint>

namespace partib::check {

// -- send side ---------------------------------------------------------------
void on_psend_init(const void* req, int rank, std::size_t partitions);
void on_psend_start(const void* req);
void on_pready(const void* req, std::size_t partition);
/// A message intent was created / revoked-for-replay (mirrors the
/// library's deferred-post accounting exactly, so shadow in-flight counts
/// match even for credit-deferred messages).
void on_psend_msg_intent(const void* req);
void on_psend_msg_intent_undone(const void* req);
void on_psend_msg_complete(const void* req);
/// The round's completion callbacks are about to fire: verify every
/// partition was ready and nothing is in flight (part.incomplete_completion).
void on_psend_round_complete(const void* req);
/// A WR immediate was encoded for partitions [first, first+count):
/// round-trips the encoding and bounds-checks against the channel
/// (imm.roundtrip).
void on_imm_encoded(const void* req, std::size_t first, std::size_t count,
                    std::uint32_t imm);
/// The channel exhausted its failure budget and surfaced a structured
/// error (rule part.retry_exhausted — reported at policy level so fault
/// runs can audit where channels gave up; `status` names the terminal
/// WcStatus).  The shadow stops expecting round completion afterwards.
void on_part_channel_failed(const void* req, int rank, const char* status);

// -- receive side ------------------------------------------------------------
void on_precv_init(const void* req, int rank, std::size_t partitions,
                   std::size_t partition_bytes);
void on_precv_start(const void* req);
/// `chunk` bytes of `partition` landed (from one WR's immediate range).
void on_precv_bytes(const void* req, std::size_t partition,
                    std::size_t chunk);

namespace detail {
void reset_part_shadow();
}  // namespace detail

}  // namespace partib::check
