#include "check/concurrency_check.hpp"

#include <atomic>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "check/check.hpp"
#include "common/mutex.hpp"

// The auditor must not audit itself: every mutex in this file is a raw
// std::mutex on purpose (a common::Mutex here would re-enter the observer
// it implements), so the wrapper-only check is off for the whole file.
// NOLINTBEGIN(partib-mutex-wrapper-only)

namespace partib::check {

namespace {

std::atomic<bool> g_lock_audit{false};
std::atomic<bool> g_owner_audit{false};
std::atomic<bool> g_shard_audit{false};
std::atomic<std::uint64_t> g_lock_order_count{0};
std::atomic<std::uint64_t> g_cross_thread_count{0};
std::atomic<std::uint64_t> g_shard_affinity_count{0};

// Shard the calling thread has declared itself to be draining
// (ScopedShardAffinity); kNoShard outside any drain.
thread_local int t_active_shard = kNoShard;

// One entry per partib::Mutex the calling thread currently holds.
struct HeldLock {
  const void* mu;
  std::string key;  // lock-class node key (see make_key)
};

thread_local std::vector<HeldLock> t_held;

// Re-entrancy guard: reporting a violation walks back into annotated
// library code (check::report -> find_rule -> the rule-registry
// partib::Mutex), whose observer callbacks must not recurse into the
// auditor while it is mid-update.
thread_local bool t_in_observer = false;

/// Lock-class node key: the Mutex name when it has one (all instances of
/// a class share a node, so an inversion is caught even when the two runs
/// never touch the same instance), else a per-instance address key.
std::string make_key(const void* mu, const char* name) {
  if (name != nullptr) return name;
  char buf[24];
  std::snprintf(buf, sizeof(buf), "@%p", mu);
  return buf;
}

// Acquisition-order graph over lock-class keys, plus the set of ordered
// pairs already reported (one diagnostic per inversion, not one per
// occurrence).  Process-wide by construction — an inversion is two
// *threads'* histories disagreeing.
//
// Deliberately a raw std::mutex: a partib::Mutex here would invoke the
// observer from inside the observer.  The t_in_observer guard would
// suppress it, but the auditor's own lock must also never appear as a
// node in the graph it is checking.
std::mutex g_graph_mu;
std::unordered_map<std::string, std::unordered_set<std::string>> g_edges;
std::unordered_set<std::string> g_reported_pairs;

/// DFS: true when `from` can already reach `to` through recorded edges.
/// Caller holds g_graph_mu.
bool reaches(const std::string& from, const std::string& to) {
  if (from == to) return true;
  std::vector<const std::string*> stack{&from};
  std::unordered_set<std::string> seen{from};
  while (!stack.empty()) {
    const std::string* node = stack.back();
    stack.pop_back();
    auto it = g_edges.find(*node);
    if (it == g_edges.end()) continue;
    for (const std::string& next : it->second) {
      if (next == to) return true;
      if (seen.insert(next).second) stack.push_back(&next);
    }
  }
  return false;
}

// Ownership map for DES-domain objects.  Same raw-mutex reasoning as the
// graph lock: the auditor must not audit itself.
std::mutex g_owner_mu;
struct Owner {
  std::thread::id tid;
  const char* kind;
};
std::unordered_map<const void*, Owner> g_owner;

std::uint64_t tid_hash(std::thread::id tid) {
  return static_cast<std::uint64_t>(std::hash<std::thread::id>{}(tid));
}

void observer_acquire(const void* mu, const char* name) {
  if (t_in_observer) return;
  t_in_observer = true;
  std::string key = make_key(mu, name);
  if (g_lock_audit.load(std::memory_order_relaxed) && !t_held.empty()) {
    // Record held->key edges, then ask whether key already reaches any
    // held class — if so the new edges close a cycle.  Reports are
    // gathered under the lock but emitted after releasing it (report()
    // takes the rule-registry lock; keep the auditor's internal lock a
    // leaf).
    std::vector<std::string> inversions;
    {
      std::lock_guard<std::mutex> lock(g_graph_mu);
      for (const HeldLock& held : t_held) {
        if (reaches(key, held.key)) {
          std::string pair = held.key + " \xE2\x86\x92 " + key;
          if (g_reported_pairs.insert(pair).second) {
            inversions.push_back(held.key);
          }
        }
        g_edges[held.key].insert(key);
      }
    }
    for (const std::string& held_key : inversions) {
      g_lock_order_count.fetch_add(1, std::memory_order_relaxed);
      char detail[256];
      std::snprintf(detail, sizeof(detail),
                    "acquired '%s' while holding '%s', but '%s' is also "
                    "acquired while '%s' is held — the order graph now has "
                    "a cycle and a deadlock interleaving exists",
                    key.c_str(), held_key.c_str(), held_key.c_str(),
                    key.c_str());
      report("check.lock_order", key.c_str(), -1, detail);
    }
  }
  t_held.push_back(HeldLock{mu, std::move(key)});
  t_in_observer = false;
}

void observer_release(const void* mu, const char* /*name*/) {
  if (t_in_observer) return;
  // Non-LIFO release is legal (CondVar::wait releases mid-stack), so
  // search from the top.  A miss means the lock predates audit enable.
  for (std::size_t i = t_held.size(); i > 0; --i) {
    if (t_held[i - 1].mu == mu) {
      t_held.erase(t_held.begin() + static_cast<std::ptrdiff_t>(i - 1));
      return;
    }
  }
}

constexpr common::MutexObserver kObserver{&observer_acquire, &observer_release};

void update_observer() {
  const bool want = g_lock_audit.load(std::memory_order_relaxed) ||
                    g_owner_audit.load(std::memory_order_relaxed);
  common::set_mutex_observer(want ? &kObserver : nullptr);
}

}  // namespace

void lock_audit_enable(bool on) {
  g_lock_audit.store(on, std::memory_order_relaxed);
  update_observer();
}

bool lock_audit_enabled() {
  return g_lock_audit.load(std::memory_order_relaxed);
}

std::size_t lock_order_reports() {
  return static_cast<std::size_t>(
      g_lock_order_count.load(std::memory_order_relaxed));
}

void owner_audit_enable(bool on) {
  g_owner_audit.store(on, std::memory_order_relaxed);
  update_observer();
}

bool owner_audit_enabled() {
  return g_owner_audit.load(std::memory_order_relaxed);
}

std::size_t cross_thread_reports() {
  return static_cast<std::size_t>(
      g_cross_thread_count.load(std::memory_order_relaxed));
}

void on_owned_access(const void* obj, const char* kind) {
  if (!g_owner_audit.load(std::memory_order_relaxed)) return;
  if (t_in_observer) return;
  const std::thread::id self = std::this_thread::get_id();
  std::thread::id owner;
  {
    std::lock_guard<std::mutex> lock(g_owner_mu);
    auto it = g_owner.find(obj);
    if (it == g_owner.end()) {
      g_owner.emplace(obj, Owner{self, kind});
      return;
    }
    if (it->second.tid == self) return;
    // A foreign touch under any audited lock counts as synchronized —
    // the sharded-progress design takes a shard lock before crossing
    // ownership domains.
    if (!t_held.empty()) return;
    owner = it->second.tid;
  }
  g_cross_thread_count.fetch_add(1, std::memory_order_relaxed);
  char detail[192];
  std::snprintf(detail, sizeof(detail),
                "unsynchronized access from thread %016" PRIx64
                " to a %s owned by thread %016" PRIx64
                " (no audited lock held; rebind_owner() for handoff)",
                tid_hash(self), kind, tid_hash(owner));
  report("check.cross_thread", kind, -1, detail);
}

void forget_owned(const void* obj) {
  if (!g_owner_audit.load(std::memory_order_relaxed)) return;
  std::lock_guard<std::mutex> lock(g_owner_mu);
  g_owner.erase(obj);
}

void rebind_owner(const void* obj) {
  if (!g_owner_audit.load(std::memory_order_relaxed)) return;
  std::lock_guard<std::mutex> lock(g_owner_mu);
  auto it = g_owner.find(obj);
  if (it == g_owner.end()) return;
  it->second.tid = std::this_thread::get_id();
}

void shard_audit_enable(bool on) {
  g_shard_audit.store(on, std::memory_order_relaxed);
}

bool shard_audit_enabled() {
  return g_shard_audit.load(std::memory_order_relaxed);
}

std::size_t shard_affinity_reports() {
  return static_cast<std::size_t>(
      g_shard_affinity_count.load(std::memory_order_relaxed));
}

void on_shard_access(const void* obj, int object_shard, const char* kind) {
  if (!g_shard_audit.load(std::memory_order_relaxed)) return;
  if (t_in_observer) return;
  // Untagged objects and non-drain contexts are exempt (header comment).
  if (object_shard == kNoShard || t_active_shard == kNoShard) return;
  if (object_shard == t_active_shard) return;
  g_shard_affinity_count.fetch_add(1, std::memory_order_relaxed);
  char detail[160];
  std::snprintf(detail, sizeof(detail),
                "drain for shard %d touched a %s at %p tagged for shard %d "
                "— shard partitioning violated",
                t_active_shard, kind, obj, object_shard);
  report("check.shard_affinity", kind, -1, detail);
}

void set_active_shard(int shard) { t_active_shard = shard; }

int active_shard() { return t_active_shard; }

std::size_t held_lock_count() { return t_held.size(); }

namespace detail {

void reset_concurrency_shadow() {
  g_lock_audit.store(false, std::memory_order_relaxed);
  g_owner_audit.store(false, std::memory_order_relaxed);
  update_observer();
  g_shard_audit.store(false, std::memory_order_relaxed);
  g_lock_order_count.store(0, std::memory_order_relaxed);
  g_cross_thread_count.store(0, std::memory_order_relaxed);
  g_shard_affinity_count.store(0, std::memory_order_relaxed);
  t_active_shard = kNoShard;
  {
    std::lock_guard<std::mutex> lock(g_graph_mu);
    g_edges.clear();
    g_reported_pairs.clear();
  }
  {
    std::lock_guard<std::mutex> lock(g_owner_mu);
    g_owner.clear();
  }
  t_held.clear();
}

}  // namespace detail

}  // namespace partib::check

// NOLINTEND(partib-mutex-wrapper-only)
