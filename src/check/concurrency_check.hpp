// Dynamic concurrency auditors: lock-order cycles and cross-thread
// ownership.
//
// Two runtime oracles for the concurrency discipline the static layer
// (common/thread_annotations.hpp + the partib-* tidy checks) cannot prove:
//
//  * **Lock-order auditor** — observes every partib::Mutex
//    acquire/release (via the common/mutex.hpp observer hooks) and builds
//    a process-wide directed graph over *lock classes* (Mutex names;
//    anonymous mutexes are their own class).  Acquiring B while holding A
//    records the edge A→B; if an acquisition closes a cycle in that
//    graph, the discipline admits a deadlock interleaving — even if this
//    particular run never deadlocks — and rule `check.lock_order` fires
//    (once per offending ordered pair).  Nesting two locks of the *same*
//    class also reports: same-class nesting deadlocks unless every thread
//    orders instances identically, a discipline nothing here enforces.
//
//  * **Cross-thread ownership auditor** — DES-domain objects (QPs, CQs,
//    partitioned requests) are single-owner: the thread that first
//    touches one owns it.  A touch from any other thread while holding no
//    audited lock fires `check.cross_thread`.  Holding any partib::Mutex
//    at the access counts as synchronized (the future sharded-progress
//    runtime will take a shard lock before touching foreign objects);
//    explicit handoff uses rebind_owner().  The hook sites are the verbs
//    and partitioned entry points (Qp::post_send, Cq::poll, pready,
//    parrived) — exactly the surfaces an MPI_THREAD_MULTIPLE runtime
//    drives concurrently, making this the differential oracle that
//    threaded mode will be tested against.
//
// Both auditors are opt-in at runtime (default off: zero cost beyond one
// relaxed atomic load per Mutex operation) and only exist under
// PARTIB_CHECK=ON; with checking off the Mutex observer call sites
// compile away entirely.
#pragma once

#include <cstddef>

namespace partib::check {

// --- lock-order auditor ------------------------------------------------

void lock_audit_enable(bool on);
bool lock_audit_enabled();

/// Process-wide count of check.lock_order reports (unlike
/// check::violations(), which is per-thread, this is visible from any
/// thread — the offending acquire may happen on a worker).
std::size_t lock_order_reports();

// --- cross-thread ownership auditor ------------------------------------

void owner_audit_enable(bool on);
bool owner_audit_enabled();

/// Process-wide count of check.cross_thread reports.
std::size_t cross_thread_reports();

/// Hook site: the calling thread touched `obj` (a DES-domain object);
/// `kind` labels it in diagnostics ("qp", "cq", "psend", "precv").  First
/// touch claims ownership.  No-op unless the owner audit is enabled.
void on_owned_access(const void* obj, const char* kind);

/// Drop `obj` from the ownership map (call when an audited object dies so
/// a reused address cannot inherit a stale owner).
void forget_owned(const void* obj);

/// Explicit ownership handoff: the calling thread becomes the owner.
void rebind_owner(const void* obj);

// --- shard-affinity auditor ---------------------------------------------
//
// The sharded progress runtime (src/runtime/) partitions QPs and CQs into
// shards, each drained by exactly one progress context at a time.  Verbs
// objects carry a shard tag (Qp::set_shard / Cq::set_shard) and the
// drain loop declares its shard via ScopedShardAffinity; touching an
// object tagged for a *different* shard from inside a drain fires
// `check.shard_affinity` — the dynamic proof that the shard partitioning
// is real and not just a naming convention.  Accesses outside any drain
// (DES mode, registration phase) are exempt: affinity is a property of
// the drain loops, not of single-threaded setup code.

void shard_audit_enable(bool on);
bool shard_audit_enabled();

/// Process-wide count of check.shard_affinity reports.
std::size_t shard_affinity_reports();

/// Hook site: `obj` (tagged `object_shard`; kNoShard = untagged) was
/// touched.  Reports when both the object's tag and the calling thread's
/// active shard are set and differ.
void on_shard_access(const void* obj, int object_shard, const char* kind);

/// Declare the calling thread's active shard (kNoShard to clear).
void set_active_shard(int shard);
int active_shard();

inline constexpr int kNoShard = -1;

/// RAII shard declaration for drain loops (restores the previous shard, so
/// nested drains — which the runtime never does, but tests do — unwind).
class ScopedShardAffinity {
 public:
  explicit ScopedShardAffinity(int shard) : prev_(active_shard()) {
    set_active_shard(shard);
  }
  ~ScopedShardAffinity() { set_active_shard(prev_); }
  ScopedShardAffinity(const ScopedShardAffinity&) = delete;
  ScopedShardAffinity& operator=(const ScopedShardAffinity&) = delete;

 private:
  int prev_;
};

/// Number of audited (partib::Mutex) locks the calling thread holds.
/// Only meaningful while an auditor is enabled (the observer is otherwise
/// not installed).
std::size_t held_lock_count();

/// RAII enables for tests.
class ScopedLockAudit {
 public:
  ScopedLockAudit() { lock_audit_enable(true); }
  ~ScopedLockAudit() { lock_audit_enable(false); }
  ScopedLockAudit(const ScopedLockAudit&) = delete;
  ScopedLockAudit& operator=(const ScopedLockAudit&) = delete;
};

class ScopedOwnerAudit {
 public:
  ScopedOwnerAudit() { owner_audit_enable(true); }
  ~ScopedOwnerAudit() { owner_audit_enable(false); }
  ScopedOwnerAudit(const ScopedOwnerAudit&) = delete;
  ScopedOwnerAudit& operator=(const ScopedOwnerAudit&) = delete;
};

class ScopedShardAudit {
 public:
  ScopedShardAudit() { shard_audit_enable(true); }
  ~ScopedShardAudit() { shard_audit_enable(false); }
  ScopedShardAudit(const ScopedShardAudit&) = delete;
  ScopedShardAudit& operator=(const ScopedShardAudit&) = delete;
};

namespace detail {
/// Full auditor reset: disables both audits, clears the order graph, the
/// ownership map, the report counters, and the calling thread's held-lock
/// stack.  Wired into check::reset().
void reset_concurrency_shadow();
}  // namespace detail

}  // namespace partib::check
