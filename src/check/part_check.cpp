#include "check/part_check.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "check/check.hpp"
#include "part/imm.hpp"

namespace partib::check {

namespace {

struct PsendShadow {
  int rank = -1;
  std::size_t n = 0;
  bool started = false;
  bool failed = false;  ///< channel surfaced a terminal error status
  std::size_t ready = 0;
  std::vector<std::uint8_t> arrived;
  long inflight = 0;  ///< message intents not yet send-completed
};

struct PrecvShadow {
  int rank = -1;
  std::size_t n = 0;
  std::size_t psize = 0;
  bool started = false;
  std::vector<std::size_t> bytes;
};

// thread_local: one independent simulation's requests per runner worker
// thread — see check.cpp.
std::map<const void*, PsendShadow>& psends() {
  static thread_local std::map<const void*, PsendShadow> m;
  return m;
}

std::map<const void*, PrecvShadow>& precvs() {
  static thread_local std::map<const void*, PrecvShadow> m;
  return m;
}

}  // namespace

void on_psend_init(const void* req, int rank, std::size_t partitions) {
  PsendShadow s;
  s.rank = rank;
  s.n = partitions;
  s.arrived.assign(partitions, 0);
  psends()[req] = std::move(s);  // address reuse starts a fresh shadow
}

void on_psend_start(const void* req) {
  auto it = psends().find(req);
  if (it == psends().end()) return;
  PsendShadow& s = it->second;
  if (s.started && (s.ready < s.n || s.inflight > 0)) {
    char detail[112];
    std::snprintf(detail, sizeof(detail),
                  "Start while round in flight: %zu/%zu partitions ready, "
                  "%ld messages outstanding",
                  s.ready, s.n, s.inflight);
    report("part.start_inflight", "psend", s.rank, detail);
    // Mirror the library, which rejects the Start and keeps round state.
    return;
  }
  s.started = true;
  s.ready = 0;
  std::fill(s.arrived.begin(), s.arrived.end(), std::uint8_t{0});
}

void on_pready(const void* req, std::size_t partition) {
  auto it = psends().find(req);
  if (it == psends().end()) return;
  PsendShadow& s = it->second;
  if (!s.started) {
    report("part.pready_before_start", "psend", s.rank,
           "Pready on a request with no active round");
    return;
  }
  if (partition >= s.n) {
    char detail[80];
    std::snprintf(detail, sizeof(detail),
                  "partition %zu out of range (channel has %zu)", partition,
                  s.n);
    report("part.pready_range", "psend", s.rank, detail);
    return;
  }
  if (s.arrived[partition] != 0) {
    char detail[64];
    std::snprintf(detail, sizeof(detail),
                  "partition %zu marked ready twice this round", partition);
    report("part.pready_double", "psend", s.rank, detail);
    return;
  }
  s.arrived[partition] = 1;
  ++s.ready;
}

void on_psend_msg_intent(const void* req) {
  auto it = psends().find(req);
  if (it != psends().end()) ++it->second.inflight;
}

void on_psend_msg_intent_undone(const void* req) {
  auto it = psends().find(req);
  if (it != psends().end()) --it->second.inflight;
}

void on_psend_msg_complete(const void* req) {
  auto it = psends().find(req);
  if (it != psends().end()) {
    it->second.inflight = std::max(0L, it->second.inflight - 1);
  }
}

void on_psend_round_complete(const void* req) {
  auto it = psends().find(req);
  if (it == psends().end()) return;
  const PsendShadow& s = it->second;
  // A failed channel fires its completions early by design — incomplete
  // rounds are exactly what the structured error status communicates.
  if (s.failed) return;
  if (s.ready < s.n || s.inflight > 0) {
    char detail[112];
    std::snprintf(detail, sizeof(detail),
                  "completion with %zu/%zu partitions ready and %ld "
                  "messages outstanding",
                  s.ready, s.n, s.inflight);
    report("part.incomplete_completion", "psend", s.rank, detail);
  }
}

void on_imm_encoded(const void* req, std::size_t first, std::size_t count,
                    std::uint32_t imm) {
  auto it = psends().find(req);
  const int rank = it == psends().end() ? -1 : it->second.rank;
  const part::ImmRange range = part::decode_imm(imm);
  if (range.first != first || range.count != count || count == 0) {
    char detail[112];
    std::snprintf(detail, sizeof(detail),
                  "encoded (%zu, %zu) decodes to (%u, %u)", first, count,
                  range.first, range.count);
    report("imm.roundtrip", "psend", rank, detail);
    return;
  }
  if (it != psends().end() && first + count > it->second.n) {
    char detail[96];
    std::snprintf(detail, sizeof(detail),
                  "immediate range [%zu, +%zu) exceeds %zu partitions",
                  first, count, it->second.n);
    report("imm.roundtrip", "psend", rank, detail);
  }
}

void on_part_channel_failed(const void* req, int rank, const char* status) {
  auto it = psends().find(req);
  if (it != psends().end()) it->second.failed = true;
  char detail[96];
  std::snprintf(detail, sizeof(detail),
                "channel failed with terminal status %s", status);
  report("part.retry_exhausted", "psend", rank, detail);
}

void on_precv_init(const void* req, int rank, std::size_t partitions,
                   std::size_t partition_bytes) {
  PrecvShadow s;
  s.rank = rank;
  s.n = partitions;
  s.psize = partition_bytes;
  s.bytes.assign(partitions, 0);
  precvs()[req] = std::move(s);
}

void on_precv_start(const void* req) {
  auto it = precvs().find(req);
  if (it == precvs().end()) return;
  PrecvShadow& s = it->second;
  if (s.started) {
    std::size_t done = 0;
    for (std::size_t b : s.bytes) {
      if (b == s.psize) ++done;
    }
    if (done < s.n) {
      char detail[112];
      std::snprintf(detail, sizeof(detail),
                    "receive Start while round in flight: %zu/%zu "
                    "partitions arrived",
                    done, s.n);
      report("part.start_inflight", "precv", s.rank, detail);
      // Mirror the library, which rejects the Start and keeps round state.
      return;
    }
  }
  s.started = true;
  std::fill(s.bytes.begin(), s.bytes.end(), std::size_t{0});
}

void on_precv_bytes(const void* req, std::size_t partition,
                    std::size_t chunk) {
  auto it = precvs().find(req);
  if (it == precvs().end()) return;
  PrecvShadow& s = it->second;
  if (partition >= s.n) {
    char detail[80];
    std::snprintf(detail, sizeof(detail),
                  "arrival for partition %zu of %zu", partition, s.n);
    report("part.duplicate_arrival", "precv", s.rank, detail);
    return;
  }
  s.bytes[partition] += chunk;
  if (s.bytes[partition] > s.psize) {
    char detail[160];
    std::snprintf(detail, sizeof(detail),
                  "partition %zu landed %zu bytes, size is %zu (duplicate "
                  "or overlapping WR)",
                  partition, s.bytes[partition], s.psize);
    report("part.duplicate_arrival", "precv", s.rank, detail);
  }
}

namespace detail {
void reset_part_shadow() {
  psends().clear();
  precvs().clear();
}
}  // namespace detail

}  // namespace partib::check
