#include "check/conn_check.hpp"

#include <cstdio>

#include "check/check.hpp"

namespace partib::check {

void on_conn_over_cap(const void* /*mgr*/, int active, int cap) {
  char detail[96];
  std::snprintf(detail, sizeof(detail),
                "%d connections established, cap=%d and none recyclable",
                active, cap);
  report("conn.cap", "conn_manager", -1, detail);
}

void on_conn_demux_miss(const void* /*router*/, std::uint32_t qp_num) {
  char detail[80];
  std::snprintf(detail, sizeof(detail),
                "completion for unbound qp#%u dropped", qp_num);
  report("conn.demux", "wc_router", -1, detail);
}

}  // namespace partib::check
