// Protocol/invariant checker core: policy and the violation sink.
//
// The checker validates verbs-transport and Partitioned-lifecycle usage
// from *shadow state* it maintains independently of the checked objects
// (see verbs_check.hpp / part_check.hpp), so it catches both caller misuse
// and library-internal inconsistencies.  Hook calls are compiled in only
// when PARTIB_CHECK_ENABLED is set (CMake option PARTIB_CHECK, on by
// default); with checking off the wrappers vanish and this library only
// provides the (never-firing) sink API so tests link in both modes.
//
// A violation produces a structured diagnostic (common/diag.hpp) with a
// rule id from check/rules.hpp, then follows the active policy:
//
//   kLog    (default)  emit the diagnostic, record it, keep running
//   kCount             record silently (tests asserting on counts)
//   kAbort             emit and abort — strict mode for hard enforcement
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/time.hpp"

namespace partib::check {

/// True when the library was compiled with checker hooks active
/// (PARTIB_CHECK=ON).  Runtime query so tests can verify the
/// compiled-away configuration behaves as documented.
bool hooks_compiled_in();

enum class Policy { kLog, kCount, kAbort };

Policy policy();
void set_policy(Policy p);

/// RAII policy override for tests.
class ScopedPolicy {
 public:
  explicit ScopedPolicy(Policy p) : prev_(policy()) { set_policy(p); }
  ~ScopedPolicy() { set_policy(prev_); }
  ScopedPolicy(const ScopedPolicy&) = delete;
  ScopedPolicy& operator=(const ScopedPolicy&) = delete;

 private:
  Policy prev_;
};

struct Violation {
  std::string rule;
  std::string object;
  Time vtime = -1;
  int rank = -1;
  std::string detail;
};

/// Violations recorded since the last reset/clear.  Checker state
/// (policy, violations, shadow verbs/part state) is per-thread: the
/// parallel experiment runner executes one independent simulation per
/// worker thread, and each simulation audits itself in isolation.
/// Single-threaded programs observe the historical process-wide
/// behaviour unchanged.
std::size_t violation_count();
const std::vector<Violation>& violations();

/// Number of recorded violations carrying `rule` (exact id match).
std::size_t count_rule(const char* rule);

/// Drop recorded violations (policy is untouched).
void clear_violations();

/// Full checker reset: violations, shadow verbs/part state, policy back to
/// kLog.  Call between independent simulations sharing one process (each
/// gtest case that asserts on checker state should start with this).
void reset();

/// Report a violation against `rule` (must exist in the registry).
/// Normally called by the hook layers, but public so future subsystems can
/// raise their own registered rules.
void report(const char* rule, const char* object, int rank,
            std::string detail);

}  // namespace partib::check
