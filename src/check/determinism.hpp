// DES determinism auditor.
//
// Determinism is a hard requirement for the simulator — every benchmark
// figure depends on it — so the auditor fingerprints the engine's dispatch
// stream ((virtual time, sequence number, scheduling-site tag) per event,
// FNV-1a hashed) and two runs of an identical scenario must produce the
// same fingerprint.  Divergence means something injected real-world state
// into the simulation (wall-clock time, unordered-container iteration,
// pointer hashing, ...) and violates rule des.nondeterminism.
//
// Usage:
//   DeterminismAuditor auditor;
//   auditor.attach(engine1);   ... run scenario ...  h1 = auditor.fingerprint();
//   auditor.attach(engine2);   ... run scenario ...  h2 = auditor.fingerprint();
//   DeterminismAuditor::expect_identical(h1, h2, "fig08 scenario");
#pragma once

#include <cstdint>
#include <functional>

#include "sim/engine.hpp"

namespace partib::check {

class DeterminismAuditor {
 public:
  DeterminismAuditor() = default;
  ~DeterminismAuditor() { detach(); }
  DeterminismAuditor(const DeterminismAuditor&) = delete;
  DeterminismAuditor& operator=(const DeterminismAuditor&) = delete;

  /// Install on `engine` (replacing any previous attachment) and reset the
  /// fingerprint for a new run.  Templated on the engine type so the
  /// auditor can also fingerprint reference implementations (e.g.
  /// tests/support/reference_engine.hpp) — anything exposing
  /// `set_dispatch_observer` with the sim::Engine observer signature.
  template <typename EngineT>
  void attach(EngineT& engine) {
    detach();
    hash_ = kFnvOffsetBasis;
    events_ = 0;
    engine.set_dispatch_observer(
        [this](Time t, std::uint64_t seq, const char* site) {
          observe(t, seq, site);
        });
    detacher_ = [&engine] { engine.set_dispatch_observer(nullptr); };
  }

  /// Remove the observer from the attached engine, if any.
  void detach();

  /// Hash of every event dispatched since attach().
  std::uint64_t fingerprint() const { return hash_; }
  std::uint64_t events_observed() const { return events_; }

  /// Compare two run fingerprints; on mismatch reports
  /// des.nondeterminism (observing the active checker policy) and returns
  /// false.
  static bool expect_identical(std::uint64_t a, std::uint64_t b,
                               const char* what);

 private:
  static constexpr std::uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ULL;

  void observe(Time t, std::uint64_t seq, const char* site);

  std::function<void()> detacher_;
  std::uint64_t hash_ = 0;
  std::uint64_t events_ = 0;
};

}  // namespace partib::check
