// Compile-time gate for checker instrumentation.
//
// Checked layers (src/verbs, src/part) invoke hooks as
//
//   PARTIB_CHECK_HOOK(on_post_send(this, &pd_, wr));
//
// With PARTIB_CHECK=ON (CMake; defines PARTIB_CHECK_ENABLED=1) the call
// expands to the real hook in namespace partib::check.  With checking off
// the macro expands to nothing — arguments are not evaluated, no code is
// generated, and the wrappers vanish entirely.
#pragma once

#if PARTIB_CHECK_ENABLED

#include "check/concurrency_check.hpp"
#include "check/conn_check.hpp"
#include "check/part_check.hpp"
#include "check/verbs_check.hpp"

#define PARTIB_CHECK_HOOK(call) \
  do {                          \
    ::partib::check::call;      \
  } while (0)

#else

#define PARTIB_CHECK_HOOK(call) \
  do {                          \
  } while (0)

#endif
