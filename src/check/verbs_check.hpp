// Shadow-state checker for the verbs transport layer.
//
// The verbs objects (Qp/Cq/Mr) are mirrored in an independent shadow
// registry keyed by object address; every hook re-validates the attempted
// operation against the shadow, so the checker catches both caller misuse
// (post to a QP that never reached RTS) and library-internal
// inconsistencies (a CQ pushed past its depth, an accepted WR beyond
// max_send_wr).  Hooks are invoked from src/verbs via PARTIB_CHECK_HOOK
// (check/hooks.hpp) and compile away when PARTIB_CHECK=OFF.
//
// Keys are `const void*` rather than verbs types so this library depends
// only on the header-only verbs vocabulary (verbs/types.hpp), keeping the
// link order common → sim → check → ... → verbs acyclic.
#pragma once

#include <cstddef>
#include <cstdint>

#include "verbs/types.hpp"

namespace partib::check {

// -- lifecycle ---------------------------------------------------------------
/// (Re)initialise the shadow for a QP.  Address reuse across simulations in
/// one process is expected; creation always starts a fresh shadow.
void on_qp_created(const void* qp, std::uint32_t qp_num,
                   const verbs::QpCaps& caps);
void on_cq_created(const void* cq, int depth);
void on_mr_registered(const void* pd, std::uint64_t addr, std::size_t len,
                      std::uint32_t lkey, std::uint32_t rkey,
                      unsigned access);

// -- QP state machine --------------------------------------------------------
/// An ibv_modify_qp-style transition was *attempted* toward `target`;
/// `applied` says whether the library accepted it.  Illegal attempts
/// violate rule qp.transition whether or not the library rejected them
/// (the caller is buggy either way); an *applied* illegal transition is a
/// library bug and is reported likewise.
void on_qp_transition(const void* qp, verbs::QpState target, bool applied);

/// to_reset was attempted with `outstanding` send WRs still in flight —
/// their flush CQEs would be orphaned (rule qp.reset_outstanding).
void on_qp_reset_outstanding(const void* qp, int outstanding);

// -- work submission ---------------------------------------------------------
/// post_send attempted.  Validates shadow state (qp.post_state), SGE/MR
/// coverage (wr.lkey, wr.access), RDMA target rkey/bounds/permissions
/// (wr.rkey) and, for *_WITH_IMM, that the immediate decodes to a
/// non-empty range (imm.roundtrip).
void on_post_send(const void* qp, const void* pd, const verbs::SendWr& wr);
/// The library accepted the WR: shadow capacity accounting
/// (qp.send_capacity when the accepted count exceeds max_send_wr).
void on_send_accepted(const void* qp);
void on_send_completed(const void* qp);

/// post_recv attempted / accepted / consumed by a delivery.
void on_post_recv(const void* qp, const void* pd, const verbs::RecvWr& wr);
void on_recv_accepted(const void* qp);
void on_recv_consumed(const void* qp);

// -- completion queues -------------------------------------------------------
/// A CQE is being raised; pending+1 > depth violates cq.overflow.
void on_cq_push(const void* cq);
/// `n` CQEs were drained by a poll.
void on_cq_poll(const void* cq, int n);

// -- shared receive queues ---------------------------------------------------
void on_srq_created(const void* srq, const verbs::SrqAttrs& attrs);
/// post_recv attempted on the SRQ.  Validates SGE/MR coverage (wr.lkey,
/// wr.access) and capacity (srq.capacity when the shadow count is already
/// at max_wr).
void on_srq_post(const void* srq, const void* pd, const verbs::RecvWr& wr);
void on_srq_accepted(const void* srq);
/// A delivery dequeued one WR from the SRQ.
void on_srq_consumed(const void* srq);
/// arm_limit attempted; limit outside [0, max_wr) violates srq.limit.
void on_srq_armed(const void* srq, int limit);
/// The library applied a capacity resize.
void on_srq_resized(const void* srq, int max_wr);

namespace detail {
void reset_verbs_shadow();
}  // namespace detail

}  // namespace partib::check
