#include "check/verbs_check.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "check/check.hpp"
#include "part/imm.hpp"

namespace partib::check {

namespace {

using verbs::QpState;

struct QpShadow {
  std::uint32_t qp_num = 0;
  verbs::QpCaps caps;
  QpState state = QpState::kReset;
  int outstanding_sends = 0;
  int posted_recvs = 0;
};

struct CqShadow {
  int depth = 0;
  int pending = 0;
};

struct SrqShadow {
  int max_wr = 0;
  int posted = 0;
};

struct MrShadow {
  const void* pd = nullptr;
  std::uint64_t addr = 0;
  std::size_t len = 0;
  std::uint32_t lkey = 0;
  std::uint32_t rkey = 0;
  unsigned access = 0;

  bool contains(std::uint64_t a, std::size_t n) const {
    return a >= addr && a + n <= addr + len;
  }
};

struct Shadow {
  std::map<const void*, QpShadow> qps;
  std::map<const void*, CqShadow> cqs;
  std::map<const void*, SrqShadow> srqs;
  // All registrations, newest last; lookup scans because lkeys are only
  // unique per device, and the checker spans every device in the process.
  std::vector<MrShadow> mrs;
};

Shadow& shadow() {
  // thread_local: one independent simulation (and so one coherent shadow
  // world) per runner worker thread — see check.cpp.
  static thread_local Shadow s;
  return s;
}

std::string qp_name(const void* qp) {
  auto it = shadow().qps.find(qp);
  if (it == shadow().qps.end()) return "qp#?";
  char buf[24];
  std::snprintf(buf, sizeof(buf), "qp#%u", it->second.qp_num);
  return buf;
}

const char* state_name(QpState s) {
  switch (s) {
    case QpState::kReset: return "RESET";
    case QpState::kInit: return "INIT";
    case QpState::kRtr: return "RTR";
    case QpState::kRts: return "RTS";
    case QpState::kError: return "ERROR";
  }
  return "?";
}

/// The RC connection bring-up chain plus the two any-state absorbing
/// transitions (-> ERROR, -> RESET) — exactly the transitions
/// ibv_modify_qp would accept here.
bool legal_transition(QpState from, QpState to) {
  if (to == QpState::kError || to == QpState::kReset) return true;
  switch (to) {
    case QpState::kInit: return from == QpState::kReset;
    case QpState::kRtr: return from == QpState::kInit;
    case QpState::kRts: return from == QpState::kRtr;
    default: return false;
  }
}

const MrShadow* find_local(const void* pd, std::uint32_t lkey,
                           std::uint64_t addr, std::size_t len) {
  for (const MrShadow& mr : shadow().mrs) {
    if (mr.pd == pd && mr.lkey == lkey && mr.contains(addr, len)) return &mr;
  }
  return nullptr;
}

const MrShadow* find_remote(std::uint32_t rkey) {
  for (const MrShadow& mr : shadow().mrs) {
    if (mr.rkey == rkey) return &mr;
  }
  return nullptr;
}

}  // namespace

void on_qp_created(const void* qp, std::uint32_t qp_num,
                   const verbs::QpCaps& caps) {
  QpShadow s;
  s.qp_num = qp_num;
  s.caps = caps;
  shadow().qps[qp] = s;  // overwrite: address reuse starts a fresh shadow
}

void on_cq_created(const void* cq, int depth) {
  shadow().cqs[cq] = CqShadow{depth, 0};
}

void on_mr_registered(const void* pd, std::uint64_t addr, std::size_t len,
                      std::uint32_t lkey, std::uint32_t rkey,
                      unsigned access) {
  // Keys are device-global, so a colliding rkey can only be a stale entry
  // from an earlier simulation in this process: replace it (last wins).
  // This keeps find_remote() exact and bounds shadow growth across
  // world-per-trial fuzz runs.
  for (MrShadow& mr : shadow().mrs) {
    if (mr.rkey == rkey) {
      mr = MrShadow{pd, addr, len, lkey, rkey, access};
      return;
    }
  }
  shadow().mrs.push_back(MrShadow{pd, addr, len, lkey, rkey, access});
}

void on_qp_transition(const void* qp, QpState target, bool applied) {
  auto it = shadow().qps.find(qp);
  if (it == shadow().qps.end()) return;  // untracked (created before reset)
  QpShadow& s = it->second;
  if (!legal_transition(s.state, target)) {
    char detail[96];
    std::snprintf(detail, sizeof(detail),
                  "illegal transition %s -> %s%s", state_name(s.state),
                  state_name(target),
                  applied ? " (and the library applied it)" : "");
    report("qp.transition", qp_name(qp).c_str(), -1, detail);
  }
  if (applied) {
    s.state = target;
    // A reset tears down the receive queue with the context; in-flight
    // sends are forbidden separately (on_qp_reset_outstanding).
    if (target == QpState::kReset) s.posted_recvs = 0;
  }
}

void on_qp_reset_outstanding(const void* qp, int outstanding) {
  char detail[80];
  std::snprintf(detail, sizeof(detail),
                "to_reset with %d send WRs still in flight", outstanding);
  report("qp.reset_outstanding", qp_name(qp).c_str(), -1, detail);
}

void on_post_send(const void* qp, const void* pd, const verbs::SendWr& wr) {
  auto it = shadow().qps.find(qp);
  if (it == shadow().qps.end()) return;
  const QpShadow& s = it->second;
  const std::string name = qp_name(qp);

  if (s.state != QpState::kRts) {
    char detail[64];
    std::snprintf(detail, sizeof(detail), "post_send while QP is in %s",
                  state_name(s.state));
    report("qp.post_state", name.c_str(), -1, detail);
  }

  std::size_t total = 0;
  for (const verbs::Sge& sge : wr.sg_list) {
    total += sge.length;
    if (find_local(pd, sge.lkey, sge.addr, sge.length) == nullptr) {
      char detail[96];
      std::snprintf(detail, sizeof(detail),
                    "SGE [0x%llx, +%u) not covered by an MR with lkey %u",
                    static_cast<unsigned long long>(sge.addr), sge.length,
                    sge.lkey);
      report("wr.lkey", name.c_str(), -1, detail);
    }
  }

  const bool rdma = wr.opcode == verbs::Opcode::kRdmaWrite ||
                    wr.opcode == verbs::Opcode::kRdmaWriteWithImm;
  if (rdma) {
    const MrShadow* mr = find_remote(wr.rkey);
    if (mr == nullptr) {
      char detail[64];
      std::snprintf(detail, sizeof(detail), "rkey %u is not registered",
                    wr.rkey);
      report("wr.rkey", name.c_str(), -1, detail);
    } else if (!mr->contains(wr.remote_addr, total)) {
      char detail[112];
      std::snprintf(detail, sizeof(detail),
                    "RDMA target [0x%llx, +%zu) outside rkey %u region "
                    "[0x%llx, +%zu)",
                    static_cast<unsigned long long>(wr.remote_addr), total,
                    wr.rkey, static_cast<unsigned long long>(mr->addr),
                    mr->len);
      report("wr.rkey", name.c_str(), -1, detail);
    } else if ((mr->access & verbs::kRemoteWrite) == 0) {
      char detail[64];
      std::snprintf(detail, sizeof(detail),
                    "rkey %u region lacks REMOTE_WRITE access", wr.rkey);
      report("wr.access", name.c_str(), -1, detail);
    }
  }

  if (wr.opcode == verbs::Opcode::kRdmaWriteWithImm) {
    const part::ImmRange range = part::decode_imm(wr.imm);
    if (range.count == 0) {
      report("imm.roundtrip", name.c_str(), -1,
             "immediate decodes to an empty partition range");
    }
  }
}

void on_send_accepted(const void* qp) {
  auto it = shadow().qps.find(qp);
  if (it == shadow().qps.end()) return;
  QpShadow& s = it->second;
  ++s.outstanding_sends;
  if (s.outstanding_sends > s.caps.max_send_wr) {
    char detail[96];
    std::snprintf(detail, sizeof(detail),
                  "%d send WRs outstanding, max_send_wr=%d",
                  s.outstanding_sends, s.caps.max_send_wr);
    report("qp.send_capacity", qp_name(qp).c_str(), -1, detail);
  }
}

void on_send_completed(const void* qp) {
  auto it = shadow().qps.find(qp);
  if (it == shadow().qps.end()) return;
  it->second.outstanding_sends =
      std::max(0, it->second.outstanding_sends - 1);
}

void on_post_recv(const void* qp, const void* pd, const verbs::RecvWr& wr) {
  auto it = shadow().qps.find(qp);
  if (it == shadow().qps.end()) return;
  const QpShadow& s = it->second;
  const std::string name = qp_name(qp);

  if (s.state == QpState::kReset || s.state == QpState::kError) {
    char detail[64];
    std::snprintf(detail, sizeof(detail), "post_recv while QP is in %s",
                  state_name(s.state));
    report("qp.recv_state", name.c_str(), -1, detail);
  }
  for (const verbs::Sge& sge : wr.sg_list) {
    const MrShadow* mr = find_local(pd, sge.lkey, sge.addr, sge.length);
    if (mr == nullptr) {
      char detail[96];
      std::snprintf(detail, sizeof(detail),
                    "SGE [0x%llx, +%u) not covered by an MR with lkey %u",
                    static_cast<unsigned long long>(sge.addr), sge.length,
                    sge.lkey);
      report("wr.lkey", name.c_str(), -1, detail);
    } else if ((mr->access & verbs::kLocalWrite) == 0) {
      report("wr.access", name.c_str(), -1,
             "receive buffer MR lacks LOCAL_WRITE access");
    }
  }
}

void on_recv_accepted(const void* qp) {
  auto it = shadow().qps.find(qp);
  if (it == shadow().qps.end()) return;
  QpShadow& s = it->second;
  ++s.posted_recvs;
  if (s.posted_recvs > s.caps.max_recv_wr) {
    char detail[96];
    std::snprintf(detail, sizeof(detail),
                  "%d recv WRs posted, max_recv_wr=%d", s.posted_recvs,
                  s.caps.max_recv_wr);
    report("qp.recv_capacity", qp_name(qp).c_str(), -1, detail);
  }
}

void on_recv_consumed(const void* qp) {
  auto it = shadow().qps.find(qp);
  if (it == shadow().qps.end()) return;
  it->second.posted_recvs = std::max(0, it->second.posted_recvs - 1);
}

void on_cq_push(const void* cq) {
  auto it = shadow().cqs.find(cq);
  if (it == shadow().cqs.end()) return;
  CqShadow& s = it->second;
  ++s.pending;
  if (s.pending > s.depth) {
    char detail[80];
    std::snprintf(detail, sizeof(detail),
                  "%d completions pending, CQ depth %d", s.pending, s.depth);
    report("cq.overflow", "cq", -1, detail);
  }
}

void on_cq_poll(const void* cq, int n) {
  auto it = shadow().cqs.find(cq);
  if (it == shadow().cqs.end()) return;
  it->second.pending = std::max(0, it->second.pending - n);
}

void on_srq_created(const void* srq, const verbs::SrqAttrs& attrs) {
  shadow().srqs[srq] = SrqShadow{attrs.max_wr, 0};
}

void on_srq_post(const void* srq, const void* pd, const verbs::RecvWr& wr) {
  auto it = shadow().srqs.find(srq);
  if (it == shadow().srqs.end()) return;
  const SrqShadow& s = it->second;
  if (s.posted >= s.max_wr) {
    char detail[80];
    std::snprintf(detail, sizeof(detail),
                  "%d recv WRs already posted, max_wr=%d", s.posted,
                  s.max_wr);
    report("srq.capacity", "srq", -1, detail);
  }
  for (const verbs::Sge& sge : wr.sg_list) {
    const MrShadow* mr = find_local(pd, sge.lkey, sge.addr, sge.length);
    if (mr == nullptr) {
      char detail[96];
      std::snprintf(detail, sizeof(detail),
                    "SGE [0x%llx, +%u) not covered by an MR with lkey %u",
                    static_cast<unsigned long long>(sge.addr), sge.length,
                    sge.lkey);
      report("wr.lkey", "srq", -1, detail);
    } else if ((mr->access & verbs::kLocalWrite) == 0) {
      report("wr.access", "srq", -1,
             "receive buffer MR lacks LOCAL_WRITE access");
    }
  }
}

void on_srq_accepted(const void* srq) {
  auto it = shadow().srqs.find(srq);
  if (it == shadow().srqs.end()) return;
  ++it->second.posted;
}

void on_srq_consumed(const void* srq) {
  auto it = shadow().srqs.find(srq);
  if (it == shadow().srqs.end()) return;
  it->second.posted = std::max(0, it->second.posted - 1);
}

void on_srq_armed(const void* srq, int limit) {
  auto it = shadow().srqs.find(srq);
  if (it == shadow().srqs.end()) return;
  if (limit < 0 || limit >= it->second.max_wr) {
    char detail[80];
    std::snprintf(detail, sizeof(detail),
                  "limit %d outside [0, max_wr=%d)", limit,
                  it->second.max_wr);
    report("srq.limit", "srq", -1, detail);
  }
}

void on_srq_resized(const void* srq, int max_wr) {
  auto it = shadow().srqs.find(srq);
  if (it == shadow().srqs.end()) return;
  it->second.max_wr = max_wr;
}

namespace detail {
void reset_verbs_shadow() {
  shadow().qps.clear();
  shadow().cqs.clear();
  shadow().srqs.clear();
  shadow().mrs.clear();
}
}  // namespace detail

}  // namespace partib::check
