#include "check/rules.hpp"

#include <cstring>

namespace partib::check {

namespace {

// Built-in rule table.  Keep ids short, dotted, and stable: they appear in
// test logs and docs/CHECKING.md.
constexpr RuleInfo kBuiltins[] = {
    {"assert", "internal invariant (PARTIB_ASSERT) failed"},
    {"qp.transition", "illegal QP state-machine transition attempted"},
    {"qp.post_state", "post_send on a QP that is not in RTS"},
    {"qp.recv_state", "post_recv on a QP in RESET or ERROR"},
    {"qp.send_capacity", "more outstanding send WRs than max_send_wr"},
    {"qp.recv_capacity", "receive queue exceeded max_recv_wr"},
    {"qp.reset_outstanding",
     "to_reset attempted with send WRs still in flight"},
    {"wr.lkey", "SGE not covered by a registered MR with that lkey"},
    {"wr.access", "MR lacks the access rights the operation requires"},
    {"wr.rkey", "RDMA target rkey unknown, out of bounds, or not writable"},
    {"cq.overflow", "completion queue exceeded its depth"},
    {"imm.roundtrip", "immediate-field encode/decode round-trip mismatch"},
    {"part.start_inflight", "Start while the previous round is in flight"},
    {"part.pready_before_start", "Pready on an inactive (un-started) request"},
    {"part.pready_double", "partition marked ready twice in one round"},
    {"part.pready_range", "Pready partition index out of range"},
    {"part.incomplete_completion",
     "round completed without every partition marked ready"},
    {"part.duplicate_arrival",
     "receive partition landed more bytes than its size in one round"},
    {"part.retry_exhausted",
     "channel exceeded its failure budget and surfaced an error status"},
    {"des.nondeterminism",
     "event stream diverged between two identical simulation runs"},
};

std::vector<RuleInfo>& extra_rules() {
  static std::vector<RuleInfo> rules;
  return rules;
}

}  // namespace

const RuleInfo* find_rule(const char* id) {
  for (const RuleInfo& r : kBuiltins) {
    if (std::strcmp(r.id, id) == 0) return &r;
  }
  for (const RuleInfo& r : extra_rules()) {
    if (std::strcmp(r.id, id) == 0) return &r;
  }
  return nullptr;
}

bool register_rule(const RuleInfo& info) {
  if (find_rule(info.id) != nullptr) return false;
  extra_rules().push_back(info);
  return true;
}

std::vector<RuleInfo> all_rules() {
  std::vector<RuleInfo> out(std::begin(kBuiltins), std::end(kBuiltins));
  const std::vector<RuleInfo>& extra = extra_rules();
  out.insert(out.end(), extra.begin(), extra.end());
  return out;
}

}  // namespace partib::check
