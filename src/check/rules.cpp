#include "check/rules.hpp"

#include <cstring>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

namespace partib::check {

namespace {

// Built-in rule table, generated from the shared registry source
// (rules.inc) so the runtime registry and the static
// partib-diag-rule-registered check can never drift apart.
constexpr RuleInfo kBuiltins[] = {
#define PARTIB_RULE(id, summary) {id, summary},
#include "check/rules.inc"
#undef PARTIB_RULE
};

// Process-wide extension registry.  find_rule sits on the violation
// reporting path, which the concurrency auditor can drive from any
// thread, so reads and the (rare) register_rule writes share one lock.
common::Mutex g_registry_mu("check.rule_registry");

std::vector<RuleInfo>& extra_rules_locked() PARTIB_REQUIRES(g_registry_mu) {
  static std::vector<RuleInfo> rules;
  return rules;
}

}  // namespace

const RuleInfo* find_rule(const char* id) {
  for (const RuleInfo& r : kBuiltins) {
    if (std::strcmp(r.id, id) == 0) return &r;
  }
  common::MutexLock lock(g_registry_mu);
  for (const RuleInfo& r : extra_rules_locked()) {
    if (std::strcmp(r.id, id) == 0) return &r;
  }
  return nullptr;
}

bool register_rule(const RuleInfo& info) {
  for (const RuleInfo& r : kBuiltins) {
    if (std::strcmp(r.id, info.id) == 0) return false;
  }
  // Uniqueness check and insert under one hold, so two threads racing to
  // register the same id cannot both succeed.
  common::MutexLock lock(g_registry_mu);
  for (const RuleInfo& r : extra_rules_locked()) {
    if (std::strcmp(r.id, info.id) == 0) return false;
  }
  extra_rules_locked().push_back(info);
  return true;
}

std::vector<RuleInfo> all_rules() {
  std::vector<RuleInfo> out(std::begin(kBuiltins), std::end(kBuiltins));
  common::MutexLock lock(g_registry_mu);
  const std::vector<RuleInfo>& extra = extra_rules_locked();
  out.insert(out.end(), extra.begin(), extra.end());
  return out;
}

}  // namespace partib::check
