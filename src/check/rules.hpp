// Rule registry for the protocol checker.
//
// Every diagnostic the checker raises carries a stable rule id from this
// registry; `docs/CHECKING.md` documents each one.  Future PRs add rules
// with `register_rule` (e.g. a new aggregation strategy can install its
// own invariants) — the registry is append-only within a process.
#pragma once

#include <vector>

namespace partib::check {

struct RuleInfo {
  const char* id;       ///< stable identifier, e.g. "qp.post_state"
  const char* summary;  ///< one-line description for docs/diagnostics
};

/// Look up a rule by id; nullptr when unknown (reporting against an
/// unknown rule is itself a checker bug and trips an assert in debug use).
const RuleInfo* find_rule(const char* id);

/// Install an additional rule (id must be unique; string must outlive the
/// process — use literals).  Returns false if the id already exists.
bool register_rule(const RuleInfo& info);

/// All known rules, built-ins first, in registration order.
std::vector<RuleInfo> all_rules();

}  // namespace partib::check
