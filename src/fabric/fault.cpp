#include "fabric/fault.hpp"

#include "common/assert.hpp"
#include "runner/fingerprint.hpp"
#include "sim/rng.hpp"

namespace partib::fabric {

std::uint64_t FaultPlanConfig::fingerprint() const {
  // Schema-tagged like the bench trial fingerprints: bump the tag if a
  // field is added, or old cache keys would alias new configs.
  return runner::Hasher{}
      .str("faultplan/v1")
      .u64(seed)
      .f64(drop_rate)
      .f64(delay_rate)
      .f64(rnr_rate)
      .f64(retry_exc_rate)
      .f64(qp_flush_rate)
      .i64(max_delay)
      .i64(retransmit_delay)
      .i64(fail_latency)
      .i64(max_drops)
      .digest();
}

FaultPlan::FaultPlan(const FaultPlanConfig& cfg) : cfg_(cfg) {
  PARTIB_ASSERT(cfg.drop_rate >= 0 && cfg.delay_rate >= 0 &&
                cfg.rnr_rate >= 0 && cfg.retry_exc_rate >= 0 &&
                cfg.qp_flush_rate >= 0);
  PARTIB_ASSERT(cfg.drop_rate + cfg.delay_rate + cfg.rnr_rate +
                    cfg.retry_exc_rate + cfg.qp_flush_rate <=
                1.0);
  PARTIB_ASSERT(cfg.max_delay >= 1 && cfg.retransmit_delay >= 1 &&
                cfg.fail_latency >= 0);
  PARTIB_ASSERT(cfg.max_drops >= 1 && cfg.max_drops <= 255);
  seed_ = cfg.seed != 0 ? cfg.seed : runner::derive_seed(cfg.fingerprint());
  enabled_ = cfg.enabled();
}

FaultDecision FaultPlan::decide(std::uint64_t ordinal) const {
  FaultDecision d;
  if (!enabled_) return d;
  // Stateless per-ordinal stream: a splitmix64 walk keyed on
  // seed xor mixed ordinal.  Two draws cover every decision, and no draw
  // depends on any other ordinal's, so replayed prefixes agree.
  sim::SplitMix64 sm(seed_ ^ ((ordinal + 1) * 0xA24BAED4963EE407ULL));
  const double u =
      static_cast<double>(sm.next() >> 11) * 0x1.0p-53;  // [0, 1)
  double acc = cfg_.drop_rate;
  if (u < acc) {
    d.kind = FaultKind::kDrop;
    d.drops = static_cast<std::uint8_t>(
        1 + sm.next() % static_cast<std::uint64_t>(cfg_.max_drops));
    return d;
  }
  acc += cfg_.delay_rate;
  if (u < acc) {
    d.kind = FaultKind::kDelay;
    d.delay = 1 + static_cast<Duration>(
                      sm.next() % static_cast<std::uint64_t>(cfg_.max_delay));
    return d;
  }
  acc += cfg_.rnr_rate;
  if (u < acc) {
    d.kind = FaultKind::kRnrNak;
    return d;
  }
  acc += cfg_.retry_exc_rate;
  if (u < acc) {
    d.kind = FaultKind::kRetryExceeded;
    return d;
  }
  acc += cfg_.qp_flush_rate;
  if (u < acc) d.kind = FaultKind::kQpFlush;
  return d;
}

}  // namespace partib::fabric
