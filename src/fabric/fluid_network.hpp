// Max-min fair fluid-flow network model.
//
// Every node has full-duplex links into a non-blocking switch (Niagara's
// Dragonfly+ is modelled as non-blocking for the traffic scales in the
// paper's evaluation).  Active transfers are fluid flows; each flow is
// constrained by (a) its source's egress capacity, (b) its destination's
// ingress capacity, and (c) a per-flow rate cap (the per-QP engine share).
// Rates are allocated by progressive filling (max-min fairness) and
// re-computed whenever a flow starts or finishes.  This captures the two
// effects the paper's figures depend on without per-packet simulation:
// per-QP bandwidth limits (Fig 7) and fan-in congestion (Fig 14's sweep).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "common/time.hpp"
#include "sim/engine.hpp"

namespace partib::fabric {

using NodeId = int;

class FluidNetwork {
 public:
  /// Called when the flow's last byte leaves the wire.
  using Done = std::function<void(Time wire_end)>;

  FluidNetwork(sim::Engine& engine, double link_bytes_per_ns);

  /// Declare nodes [0, n).  Flows may only reference declared nodes.
  void set_node_count(int n);

  /// Override one node's link capacities (bytes/ns); defaults to the
  /// homogeneous link rate.  Models mixed-generation clusters or a
  /// tapered uplink.  Only affects flows whose rates are recomputed after
  /// the call (i.e. set capacities before traffic starts).
  void set_node_capacity(NodeId node, double egress_bytes_per_ns,
                         double ingress_bytes_per_ns);

  /// Start a flow of `bytes` from src to dst, individually capped at
  /// `rate_cap` bytes/ns.  Loopback (src == dst) completes after
  /// bytes / rate_cap without touching link capacity.
  void submit(NodeId src, NodeId dst, double bytes, double rate_cap,
              Done done);

  std::size_t active_flows() const { return flows_.size(); }
  std::uint64_t completed_flows() const { return completed_; }

 private:
  struct Flow {
    NodeId src;
    NodeId dst;
    double remaining;
    double cap;
    double rate = 0.0;
    Done done;
  };

  sim::Engine& engine_;
  double capacity_;
  int nodes_ = 0;
  /// Per-node overrides; missing entries use `capacity_`.
  std::map<NodeId, std::pair<double, double>> node_caps_;
  std::map<std::uint64_t, Flow> flows_;
  std::uint64_t next_id_ = 1;
  std::uint64_t completed_ = 0;
  Time last_update_ = 0;
  sim::Engine::EventId next_event_{};

  void drain_progress();
  void recompute_rates();
  void schedule_next_completion();
  void on_completion_event();
};

}  // namespace partib::fabric
