// Max-min fair fluid-flow network model.
//
// Every node has full-duplex links into a non-blocking switch (Niagara's
// Dragonfly+ is modelled as non-blocking for the traffic scales in the
// paper's evaluation).  Active transfers are fluid flows; each flow is
// constrained by (a) its source's egress capacity, (b) its destination's
// ingress capacity, and (c) a per-flow rate cap (the per-QP engine share).
// Rates are allocated by progressive filling (max-min fairness) and
// re-computed whenever a flow starts or finishes.  This captures the two
// effects the paper's figures depend on without per-packet simulation:
// per-QP bandwidth limits (Fig 7) and fan-in congestion (Fig 14's sweep).
//
// Hot-path layout: flows live in a stable vector + free-list; the active
// set is a dense index list kept in submission order (which is id order,
// so iteration, water-filling arithmetic, and completion-callback order
// are bit-identical to the original std::map implementation).  All
// water-filling scratch state is hoisted into reusable members, so the
// steady state (submit / progress / complete) performs no allocations
// once vectors reach their high-water capacity.  A single active flow
// skips progressive filling entirely: with one flow the fill loop is one
// round whose delta is min(egress, ingress, cap), so the fast path is
// exact, not approximate.
#pragma once

#include <cstdint>
#include <vector>

#include "common/inline_fn.hpp"
#include "common/time.hpp"
#include "sim/engine.hpp"

namespace partib::fabric {

using NodeId = int;

class FluidNetwork {
 public:
  /// Called when the flow's last byte leaves the wire.  Move-only with a
  /// 48-byte inline buffer (common/inline_fn.hpp); larger captures fall
  /// back to one heap allocation.
  using Done = common::InlineFn<void(Time wire_end)>;

  FluidNetwork(sim::Engine& engine, double link_bytes_per_ns);

  /// Declare nodes [0, n).  Flows may only reference declared nodes.
  void set_node_count(int n);

  /// Override one node's link capacities (bytes/ns); defaults to the
  /// homogeneous link rate.  Models mixed-generation clusters or a
  /// tapered uplink.  Only affects flows whose rates are recomputed after
  /// the call (i.e. set capacities before traffic starts).
  void set_node_capacity(NodeId node, double egress_bytes_per_ns,
                         double ingress_bytes_per_ns);

  /// Start a flow of `bytes` from src to dst, individually capped at
  /// `rate_cap` bytes/ns.  Loopback (src == dst) completes after
  /// bytes / rate_cap without touching link capacity.
  void submit(NodeId src, NodeId dst, double bytes, double rate_cap,
              Done done);

  std::size_t active_flows() const { return active_.size(); }
  std::uint64_t completed_flows() const { return completed_; }

  /// Read-only view of one in-flight flow, for tests and diagnostics.
  struct FlowView {
    NodeId src;
    NodeId dst;
    double remaining;
    double cap;
    double rate;
  };

  /// Visit every active flow in submission order (tests/tools only; the
  /// library itself never iterates through this).
  template <typename Fn>
  void for_each_flow(Fn&& fn) const {
    for (const std::uint32_t slot : active_) {
      const Flow& f = flow_slots_[slot];
      fn(FlowView{f.src, f.dst, f.remaining, f.cap, f.rate});
    }
  }

 private:
  struct Flow {
    NodeId src;
    NodeId dst;
    double remaining;
    double cap;
    double rate = 0.0;
    Done done;
  };

  sim::Engine& engine_;
  double capacity_;
  int nodes_ = 0;
  /// Per-node capacities (defaults to `capacity_`, overridden by
  /// set_node_capacity), indexed by NodeId.
  std::vector<double> egress_cap_;
  std::vector<double> ingress_cap_;
  /// Stable flow storage + free-list; `active_` holds live slot indices
  /// in submission order.
  std::vector<Flow> flow_slots_;
  std::vector<std::uint32_t> free_flow_slots_;
  std::vector<std::uint32_t> active_;
  std::uint64_t completed_ = 0;
  Time last_update_ = 0;
  sim::Engine::EventId next_event_{};

  // Water-filling scratch, reused across recomputations.
  std::vector<double> egress_rem_;
  std::vector<double> ingress_rem_;
  std::vector<int> egress_load_;
  std::vector<int> ingress_load_;
  std::vector<Flow*> unfrozen_;
  std::vector<Flow*> still_;
  // Completion scratch, reused across completion events.
  std::vector<Done> finished_scratch_;

  void drain_progress();
  void recompute_rates();
  void schedule_next_completion();
  void on_completion_event();
};

}  // namespace partib::fabric
