#include "fabric/fabric.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/bits.hpp"

namespace partib::fabric {

Fabric::Fabric(sim::Engine& engine, NicParams params, bool copy_data)
    : engine_(engine),
      params_(params),
      copy_data_(copy_data),
      network_(engine, params.link_bytes_per_ns()) {}

NodeId Fabric::add_node() {
  const NodeId id = node_count();
  wqe_engines_.push_back(std::make_unique<sim::FifoResource>(engine_, 1));
  network_.set_node_count(id + 1);
  return id;
}

std::size_t Fabric::wire_bytes_for(std::size_t bytes) const {
  const std::size_t segments =
      bytes == 0 ? 1 : ceil_div(bytes, params_.mtu);
  return bytes + segments * params_.segment_header_bytes;
}

void Fabric::post_rdma_write(RdmaOp op) {
  PARTIB_ASSERT(op.src >= 0 && op.src < node_count());
  PARTIB_ASSERT(op.dst >= 0 && op.dst < node_count());
  PARTIB_ASSERT(op.on_send_complete != nullptr);
  ++stats_.rdma_ops;
  stats_.payload_bytes += op.bytes;
  stats_.wire_bytes += wire_bytes_for(op.bytes);
  if (trace_ != nullptr) {
    op.trace_id =
        trace_->begin(op.src, op.dst, op.src_qp, op.bytes, engine_.now());
  }

  auto& chain = chains_[op.src_qp];
  chain.pending.push_back(std::move(op));
  if (!chain.busy) issue_next(chain.pending.back().src_qp);
}

void Fabric::issue_next(std::uint64_t src_qp) {
  auto& chain = chains_[src_qp];
  if (chain.busy || chain.pending.empty()) return;
  chain.busy = true;
  RdmaOp op = std::move(chain.pending.front());
  chain.pending.pop_front();
  const bool first_use = !chain.activated;
  chain.activated = true;

  // Stage 1: NIC-wide WQE engine (serial at gap g across all QPs).
  auto& wqe = *wqe_engines_[static_cast<std::size_t>(op.src)];
  wqe.request(params_.wire.g,
              [this, op = std::move(op), first_use](Time, Time end) mutable {
                if (TraceRecord* t = trace_of(op.trace_id)) {
                  t->wqe_grant = end;
                }
                start_wire(std::move(op), first_use);
              });
}

TraceRecord* Fabric::trace_of(std::uint64_t trace_id) {
  if (trace_ == nullptr || trace_id == RdmaOp::kNoTraceId) return nullptr;
  return &trace_->at(trace_id);
}

void Fabric::start_wire(RdmaOp op, bool charge_activation) {
  // Stage 2: NIC processing before the first byte (o_s), plus QP context
  // activation on first use.
  Duration pre = params_.wire.o_s;
  if (charge_activation) pre += params_.qp_activation;

  engine_.schedule_after(pre, [this, op = std::move(op)]() mutable {
    const auto wire_bytes = static_cast<double>(wire_bytes_for(op.bytes));
    const double cap = params_.qp_bw_share * op.rate_cap_factor *
                       params_.link_bytes_per_ns();
    const std::uint64_t qp = op.src_qp;
    if (TraceRecord* t = trace_of(op.trace_id)) {
      t->wire_start = engine_.now();
    }
    network_.submit(
        op.src, op.dst, wire_bytes, cap,
        [this, op = std::move(op), qp](Time wire_end) mutable {
          if (TraceRecord* t = trace_of(op.trace_id)) {
            t->wire_end = wire_end;
          }
          // Landing at the destination after L; the payload copy happens
          // at landing, the remote CQE o_r later, and the local send CQE
          // only after the ACK travels back (RC completion semantics:
          // a send completion implies remote delivery).
          engine_.schedule_at(
              wire_end + params_.wire.L, [this, op = std::move(op)] {
                if (TraceRecord* t = trace_of(op.trace_id)) {
                  t->landed = engine_.now();
                }
                if (op.move_data) op.move_data();
                if (op.on_recv_complete) {
                  engine_.schedule_after(params_.wire.o_r, [this, op] {
                    if (TraceRecord* t = trace_of(op.trace_id)) {
                      t->recv_cqe = engine_.now();
                    }
                    op.on_recv_complete(engine_.now());
                  });
                }
                engine_.schedule_after(params_.wire.L, [this, op] {
                  if (TraceRecord* t = trace_of(op.trace_id)) {
                    t->send_cqe = engine_.now();
                  }
                  op.on_send_complete(engine_.now());
                });
              });
          // Unblock the QP chain: next WR may now occupy the wire.
          auto& chain = chains_[qp];
          chain.busy = false;
          issue_next(qp);
        });
  });
}

void Fabric::send_control(NodeId src, NodeId dst,
                          std::function<void()> deliver) {
  PARTIB_ASSERT(src >= 0 && src < node_count());
  PARTIB_ASSERT(dst >= 0 && dst < node_count());
  ++stats_.control_msgs;
  engine_.schedule_after(params_.wire.L + params_.ctrl_overhead,
                         std::move(deliver));
}

}  // namespace partib::fabric
