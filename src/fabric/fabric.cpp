#include "fabric/fabric.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/bits.hpp"

namespace partib::fabric {

Fabric::Fabric(sim::Engine& engine, NicParams params, bool copy_data)
    : engine_(engine),
      params_(params),
      copy_data_(copy_data),
      network_(engine, params.link_bytes_per_ns()) {}

NodeId Fabric::add_node() {
  const NodeId id = node_count();
  wqe_engines_.push_back(std::make_unique<sim::FifoResource>(engine_, 1));
  network_.set_node_count(id + 1);
  return id;
}

std::size_t Fabric::wire_bytes_for(std::size_t bytes) const {
  const std::size_t segments =
      bytes == 0 ? 1 : ceil_div(bytes, params_.mtu);
  return bytes + segments * params_.segment_header_bytes;
}

Fabric::QpChain& Fabric::chain_for(std::uint64_t src_qp) {
  if (src_qp >= chains_.size()) {
    chains_.resize(static_cast<std::size_t>(src_qp) + 1);
  }
  return chains_[static_cast<std::size_t>(src_qp)];
}

std::uint32_t Fabric::acquire_op(RdmaOp&& op) {
  if (inflight_free_.empty()) {
    inflight_.push_back(std::move(op));
    inflight_refs_.push_back(1);
    return static_cast<std::uint32_t>(inflight_.size() - 1);
  }
  const std::uint32_t id = inflight_free_.back();
  inflight_free_.pop_back();
  inflight_[id] = std::move(op);
  inflight_refs_[id] = 1;
  return id;
}

void Fabric::release_op_ref(std::uint32_t id) {
  PARTIB_ASSERT(inflight_refs_[id] > 0);
  if (--inflight_refs_[id] == 0) inflight_free_.push_back(id);
}

void Fabric::set_fault_plan(const FaultPlan& plan) {
  // Mid-run installation would make op ordinals (and so the fault
  // schedule) depend on when the caller got around to it; require it
  // before traffic starts so a plan is a property of the whole run.
  PARTIB_ASSERT_MSG(stats_.rdma_ops == 0,
                    "fault plan installed after RDMA traffic started");
  fault_plan_ = plan;
}

void Fabric::inject_qp_error(std::uint64_t src_qp) {
  QpChain& chain = chain_for(src_qp);
  chain.errored = true;
  // An op already on the wire completes (the link is fine, the QP context
  // is not); everything still queued flushes in post order.
  if (!chain.busy) issue_next(src_qp);
}

bool Fabric::qp_chain_errored(std::uint64_t src_qp) {
  return chain_for(src_qp).errored;
}

void Fabric::reset_qp_chain(std::uint64_t src_qp) {
  QpChain& chain = chain_for(src_qp);
  PARTIB_ASSERT_MSG(!chain.busy && chain.pending.empty(),
                    "QP chain reset while ops are still draining");
  chain.errored = false;
  // The context was torn down; first use after recovery pays activation
  // again, like a fresh QP.
  chain.activated = false;
}

void Fabric::post_rdma_write(RdmaOp op) {
  PARTIB_ASSERT(op.src >= 0 && op.src < node_count());
  PARTIB_ASSERT(op.dst >= 0 && op.dst < node_count());
  PARTIB_ASSERT(op.on_send_complete != nullptr);
  if (fault_plan_.enabled()) {
    // Ordinal == post order; decide() is pure, so the schedule depends
    // only on (plan seed, post sequence).
    op.fault = fault_plan_.decide(stats_.rdma_ops);
    if (op.fault.kind != FaultKind::kNone) ++stats_.faults_injected;
  }
  ++stats_.rdma_ops;
  stats_.payload_bytes += op.bytes;
  stats_.wire_bytes += wire_bytes_for(op.bytes);
  if (trace_ != nullptr) {
    op.trace_id =
        trace_->begin(op.src, op.dst, op.src_qp, op.bytes, engine_.now());
  }

  const std::uint64_t src_qp = op.src_qp;
  QpChain& chain = chain_for(src_qp);
  chain.pending.push_back(std::move(op));
  if (!chain.busy) issue_next(src_qp);
}

void Fabric::issue_next(std::uint64_t src_qp) {
  QpChain& chain = chain_for(src_qp);
  if (chain.busy || chain.pending.empty()) return;
  chain.busy = true;
  const std::uint32_t id = acquire_op(std::move(chain.pending.front()));
  chain.pending.pop_front();
  if (chain.errored) {
    // Error-state QP: the provider completes queued WRs with flush
    // errors immediately, without touching the NIC pipeline or the wire.
    fail_op(id, OpFailure::kFlushed, 0);
    return;
  }
  const bool first_use = !chain.activated;
  chain.activated = true;

  // Stage 1: NIC-wide WQE engine (serial at gap g across all QPs).
  auto& wqe = *wqe_engines_[static_cast<std::size_t>(inflight_[id].src)];
  wqe.request(params_.wire.g, [this, id, first_use](Time, Time end) {
    if (TraceRecord* t = trace_of(inflight_[id].trace_id)) {
      t->wqe_grant = end;
    }
    switch (inflight_[id].fault.kind) {
      case FaultKind::kRnrNak:
        // The target kept answering RNR NAK until the retry budget ran
        // out; the op never occupies the wire.
        fail_op(id, OpFailure::kRnrRetryExceeded,
                fault_plan_.config().fail_latency);
        return;
      case FaultKind::kRetryExceeded:
        fail_op(id, OpFailure::kRetryExceeded,
                fault_plan_.config().fail_latency);
        return;
      case FaultKind::kQpFlush:
        // The QP context drops to error mid-flight: this WR and every WR
        // behind it on the chain completes flushed until the consumer
        // recycles the QP (verbs::Qp::to_reset -> reset_qp_chain).
        chain_for(inflight_[id].src_qp).errored = true;
        fail_op(id, OpFailure::kFlushed, fault_plan_.config().fail_latency);
        return;
      default:
        start_wire(id, first_use);
    }
  });
}

void Fabric::fail_op(std::uint32_t id, OpFailure failure, Duration after) {
  engine_.schedule_after(
      after,
      [this, id, failure] {
        if (TraceRecord* t = trace_of(inflight_[id].trace_id)) {
          t->send_cqe = engine_.now();  // the error CQE
        }
        ++stats_.failed_ops;
        const std::uint64_t qp = inflight_[id].src_qp;
        // Move the callback out before invoking: it may post new ops and
        // grow (relocate) the slab mid-call.
        const auto on_failed = std::move(inflight_[id].on_failed);
        if (on_failed) on_failed(engine_.now(), failure);
        release_op_ref(id);
        // Re-acquire the chain after the callback (chains_ may have
        // grown); a re-entrant post parked in pending while busy was held.
        chain_for(qp).busy = false;
        issue_next(qp);
      },
      "fabric.fail_op");
}

TraceRecord* Fabric::trace_of(std::uint64_t trace_id) {
  if (trace_ == nullptr || trace_id == RdmaOp::kNoTraceId) return nullptr;
  return &trace_->at(trace_id);
}

void Fabric::start_wire(std::uint32_t id, bool charge_activation) {
  // Stage 2: NIC processing before the first byte (o_s), plus QP context
  // activation on first use, plus any injected stall (kDelay; zero
  // otherwise, including always when faults are off).
  Duration pre = params_.wire.o_s + inflight_[id].fault.delay;
  if (charge_activation) pre += params_.qp_activation;
  engine_.schedule_after(pre, [this, id] { begin_wire(id); });
}

void Fabric::begin_wire(std::uint32_t id) {
  const RdmaOp& op = inflight_[id];
  const auto wire_bytes = static_cast<double>(wire_bytes_for(op.bytes));
  const double cap = params_.qp_bw_share * op.rate_cap_factor *
                     params_.link_bytes_per_ns();
  if (TraceRecord* t = trace_of(op.trace_id)) {
    t->wire_start = engine_.now();
  }
  network_.submit(op.src, op.dst, wire_bytes, cap,
                  [this, id](Time wire_end) { on_wire_end(id, wire_end); });
}

void Fabric::on_wire_end(std::uint32_t id, Time wire_end) {
  if (inflight_[id].fault.drops > 0) {
    // The transfer was lost in flight (kDrop): the sender's transport
    // times out and retransmits.  The chain stays busy across the gap (RC
    // ordering — the lost WR still heads this QP's wire order), and the
    // trace keeps the timing of the final, successful attempt.
    --inflight_[id].fault.drops;
    ++stats_.retransmits;
    engine_.schedule_at(wire_end + fault_plan_.config().retransmit_delay,
                        [this, id] { begin_wire(id); }, "fabric.retransmit");
    return;
  }
  if (TraceRecord* t = trace_of(inflight_[id].trace_id)) {
    t->wire_end = wire_end;
  }
  // Landing at the destination after L; the payload copy happens at
  // landing, the remote CQE o_r later, and the local send CQE only after
  // the ACK travels back (RC completion semantics: a send completion
  // implies remote delivery).
  engine_.schedule_at(wire_end + params_.wire.L,
                      [this, id] { on_landing(id); });
  // Unblock the QP chain: next WR may now occupy the wire.
  const std::uint64_t qp = inflight_[id].src_qp;
  QpChain& chain = chain_for(qp);
  chain.busy = false;
  issue_next(qp);
}

void Fabric::on_landing(std::uint32_t id) {
  if (TraceRecord* t = trace_of(inflight_[id].trace_id)) {
    t->landed = engine_.now();
  }
  // Callbacks are moved out of the slab before invocation: a callback may
  // post new RDMA ops, and slab growth must not relocate a std::function
  // mid-call (inflight_ is re-indexed after every potential re-entry).
  if (inflight_[id].move_data) {
    const auto move_data = std::move(inflight_[id].move_data);
    move_data();
  }
  if (inflight_[id].on_recv_complete) {
    ++inflight_refs_[id];
    engine_.schedule_after(params_.wire.o_r, [this, id] {
      if (TraceRecord* t = trace_of(inflight_[id].trace_id)) {
        t->recv_cqe = engine_.now();
      }
      const auto on_recv = std::move(inflight_[id].on_recv_complete);
      on_recv(engine_.now());
      release_op_ref(id);
    });
  }
  engine_.schedule_after(params_.wire.L, [this, id] {
    if (TraceRecord* t = trace_of(inflight_[id].trace_id)) {
      t->send_cqe = engine_.now();
    }
    const auto on_send = std::move(inflight_[id].on_send_complete);
    on_send(engine_.now());
    release_op_ref(id);
  });
}

void Fabric::send_control(NodeId src, NodeId dst,
                          std::function<void()> deliver) {
  PARTIB_ASSERT(src >= 0 && src < node_count());
  PARTIB_ASSERT(dst >= 0 && dst < node_count());
  ++stats_.control_msgs;
  engine_.schedule_after(params_.wire.L + params_.ctrl_overhead,
                         std::move(deliver));
}

}  // namespace partib::fabric
