// Parameters of the simulated NIC / fabric.
//
// These are the *direct-verbs-level* costs of a ConnectX-5-class EDR
// InfiniBand part, distinct from (and much smaller than) the MPI-transport
// LogGP values the PLogGP model is fed (model/loggp.hpp) — reproducing the
// measurement-transport mismatch the paper discusses in §V-B1.
#pragma once

#include <cstddef>

#include "common/time.hpp"
#include "common/units.hpp"
#include "model/loggp.hpp"

namespace partib::fabric {

struct NicParams {
  /// Wire-level LogGP terms.  Here `o_s` is the NIC's per-WR processing
  /// latency before the first byte leaves, `o_r` the receive-side
  /// CQE-raising latency, `g` the WQE-engine gap (NIC-wide: doorbell and
  /// WQE fetch go over the same PCIe path for every QP).
  model::LogGPParams wire;

  /// Path MTU.  The paper's tuning table was built with a 4 KiB MTU.
  std::size_t mtu = 4 * KiB;

  /// Per-MTU-segment protocol overhead, modelled as extra wire bytes
  /// (LRH+BTH+RETH+ICRC-style headers).
  std::size_t segment_header_bytes = 30;

  /// ConnectX-5 limit the paper works around by spreading WRs over
  /// multiple QPs (§IV-A): at most this many concurrent RDMA WRs per QP.
  int max_outstanding_wr_per_qp = 16;

  /// Fraction of link bandwidth a single QP's engine context can sustain.
  /// Drives the paper's Fig 7 crossover: one QP is enough for small
  /// messages, large messages want the concurrency of many QPs.
  double qp_bw_share = 0.93;

  /// One-time cost charged to a QP's first WR (context fetch / cache warm);
  /// makes many QPs slightly unfavourable for small messages.
  Duration qp_activation = nsec(600);

  /// Host CPU cost of the doorbell write itself — the only part of
  /// posting that holds the QP lock (descriptor build happens outside).
  /// Charged by the runtime, serialised through the doorbell resource.
  Duration o_post = nsec(100);

  /// Latency overhead of out-of-band control-plane messages (QP exchange,
  /// match handshake) on top of wire latency L.
  Duration ctrl_overhead = nsec(500);

  /// Link bandwidth in bytes per nanosecond (1/G of the wire).
  double link_bytes_per_ns() const { return 1.0 / wire.G; }

  /// EDR (100 Gb/s) ConnectX-5-like defaults.
  static NicParams connectx5_edr();
};

}  // namespace partib::fabric
