#include "fabric/trace.hpp"

#include <algorithm>
#include <sstream>

#include "common/assert.hpp"

namespace partib::fabric {

std::uint64_t TraceSink::begin(NodeId src, NodeId dst, std::uint64_t src_qp,
                               std::size_t bytes, Time posted) {
  TraceRecord r;
  r.op_id = records_.size();
  r.src = src;
  r.dst = dst;
  r.src_qp = src_qp;
  r.bytes = bytes;
  r.posted = posted;
  records_.push_back(r);
  return r.op_id;
}

TraceRecord& TraceSink::at(std::uint64_t op_id) {
  PARTIB_ASSERT(op_id < records_.size());
  return records_[op_id];
}

std::vector<const TraceRecord*> TraceSink::by_qp(std::uint64_t src_qp) const {
  std::vector<const TraceRecord*> out;
  for (const TraceRecord& r : records_) {
    if (r.src_qp == src_qp) out.push_back(&r);
  }
  return out;
}

std::string TraceSink::to_csv() const {
  std::ostringstream out;
  out << "op,src,dst,qp,bytes,posted,wqe,wire_start,wire_end,landed,"
         "recv_cqe,send_cqe\n";
  for (const TraceRecord& r : records_) {
    out << r.op_id << ',' << r.src << ',' << r.dst << ',' << r.src_qp << ','
        << r.bytes << ',' << r.posted << ',' << r.wqe_grant << ','
        << r.wire_start << ',' << r.wire_end << ',' << r.landed << ','
        << r.recv_cqe << ',' << r.send_cqe << '\n';
  }
  return out.str();
}

double TraceSink::egress_utilisation(NodeId src, Time from, Time to) const {
  PARTIB_ASSERT(to > from);
  Duration busy = 0;
  for (const TraceRecord& r : records_) {
    if (r.src != src || r.wire_start < 0 || r.wire_end < 0) continue;
    const Time lo = std::max(r.wire_start, from);
    const Time hi = std::min(r.wire_end, to);
    if (hi > lo) busy += hi - lo;
  }
  return static_cast<double>(busy) / static_cast<double>(to - from);
}

}  // namespace partib::fabric
