// Deterministic, seed-driven fault injection for the simulated fabric.
//
// Real IB fabrics lose packets, return RNR NAKs when the target has no
// receive WR posted, give up after the transport retry budget, and flush a
// QP's outstanding WQEs when it drops to the error state.  The fault plane
// models those events as *per-operation decisions* drawn from a pure hash
// of (plan seed, op ordinal), so a fault schedule is
//
//   * deterministic — the same plan over the same post sequence injects
//     the same faults at the same ordinals, which is what lets the fuzz
//     harness assert identical event fingerprints on seed replay;
//   * order-independent — decide(k) never consults decide(j), so replaying
//     a prefix of a run injects the same faults for the shared ordinals;
//   * free when disabled — a default-constructed config has every rate at
//     zero, the fabric skips the decide() call entirely, and the zero-fault
//     event timeline is bit-identical to a build without the plane.
//
// Seeding follows the runner's convention (runner/fingerprint.hpp): a
// zero seed derives one from the FNV-1a fingerprint of the whole config,
// so two trials with identical fault configs share a schedule and cached
// results stay valid, exactly like trial-config fingerprints.
#pragma once

#include <cstdint>

#include "common/time.hpp"
#include "common/units.hpp"

namespace partib::fabric {

/// What the plan decided for one RDMA operation.
enum class FaultKind : std::uint8_t {
  kNone,           ///< deliver normally
  kDelay,          ///< deliver, but stall before the first byte
  kDrop,           ///< lose the wire transfer 1..max_drops times; the
                   ///< transport retransmits after retransmit_delay each time
  kRnrNak,         ///< RNR NAK retry budget exhausted: kRnrRetryExcErr
  kRetryExceeded,  ///< ACK timeout retry budget exhausted: kRetryExcErr
  kQpFlush,        ///< QP context drops to error: this WR and everything
                   ///< behind it completes with kWrFlushErr
};

/// Why an op failed, as reported to the verbs layer (RdmaOp::on_failed).
enum class OpFailure : std::uint8_t {
  kRetryExceeded,     ///< maps to WcStatus::kRetryExcErr
  kRnrRetryExceeded,  ///< maps to WcStatus::kRnrRetryExcErr
  kFlushed,           ///< maps to WcStatus::kWrFlushErr
};

constexpr const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kNone: return "none";
    case FaultKind::kDelay: return "delay";
    case FaultKind::kDrop: return "drop";
    case FaultKind::kRnrNak: return "rnr_nak";
    case FaultKind::kRetryExceeded: return "retry_exceeded";
    case FaultKind::kQpFlush: return "qp_flush";
  }
  return "unknown";
}

constexpr const char* to_string(OpFailure f) {
  switch (f) {
    case OpFailure::kRetryExceeded: return "retry_exceeded";
    case OpFailure::kRnrRetryExceeded: return "rnr_retry_exceeded";
    case OpFailure::kFlushed: return "flushed";
  }
  return "unknown";
}

/// The per-operation decision: kind plus its parameter (only one of the
/// two is meaningful, keyed by kind).
struct FaultDecision {
  FaultKind kind = FaultKind::kNone;
  Duration delay = 0;       ///< kDelay: stall before the first byte
  std::uint8_t drops = 0;   ///< kDrop: lost transmissions before success
};

/// Fault-plan configuration.  Rates are independent per-op probabilities;
/// their sum must be <= 1 (the remainder is the no-fault probability).
struct FaultPlanConfig {
  /// 0 = derive from fingerprint() (the runner's derive_seed convention).
  std::uint64_t seed = 0;

  double drop_rate = 0.0;
  double delay_rate = 0.0;
  double rnr_rate = 0.0;
  double retry_exc_rate = 0.0;
  double qp_flush_rate = 0.0;

  /// kDelay stalls are uniform in [1, max_delay] ns.
  Duration max_delay = usec(50);
  /// Retransmission backoff after a dropped transfer (RC ACK timeout).
  Duration retransmit_delay = usec(12);
  /// Virtual time the NIC burns before reporting kRnrNak/kRetryExceeded
  /// (the retry budget it walked through before giving up).
  Duration fail_latency = usec(40);
  /// kDrop loses the transfer 1..max_drops times before it goes through.
  int max_drops = 3;

  bool enabled() const {
    return drop_rate > 0 || delay_rate > 0 || rnr_rate > 0 ||
           retry_exc_rate > 0 || qp_flush_rate > 0;
  }

  /// FNV-1a content fingerprint over every field (runner-style: explicit
  /// typed feed, stable across processes and ASLR).
  std::uint64_t fingerprint() const;
};

/// A resolved, immutable fault schedule.  decide(ordinal) is a pure
/// function of (resolved seed, ordinal).
class FaultPlan {
 public:
  FaultPlan() = default;
  explicit FaultPlan(const FaultPlanConfig& cfg);

  const FaultPlanConfig& config() const { return cfg_; }
  /// The seed actually in use (cfg.seed, or derived from the fingerprint).
  std::uint64_t seed() const { return seed_; }
  bool enabled() const { return enabled_; }

  /// Fault decision for the ordinal-th RDMA op posted to the fabric.
  FaultDecision decide(std::uint64_t ordinal) const;

 private:
  FaultPlanConfig cfg_;
  std::uint64_t seed_ = 0;
  bool enabled_ = false;
};

}  // namespace partib::fabric
