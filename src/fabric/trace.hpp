// Per-operation lifecycle tracing.
//
// When a TraceSink is attached to the Fabric, every RDMA operation
// records its full timeline — post, WQE grant, wire start, wire end,
// landing, completions — giving the Gantt-style view Figs 10-11 are drawn
// from at wire granularity, and a debugging tool for aggregation
// behaviour ("which WR carried partitions 4-7 and when did it leave?").
//
// Tracing is off by default and costs nothing when disabled.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "fabric/fluid_network.hpp"

namespace partib::fabric {

struct TraceRecord {
  std::uint64_t op_id = 0;
  NodeId src = -1;
  NodeId dst = -1;
  std::uint64_t src_qp = 0;
  std::size_t bytes = 0;
  Time posted = -1;      ///< handed to the fabric
  Time wqe_grant = -1;   ///< WQE engine finished processing
  Time wire_start = -1;  ///< first byte enters the link
  Time wire_end = -1;    ///< last byte leaves the sender
  Time landed = -1;      ///< last byte at the destination (payload copy)
  Time recv_cqe = -1;    ///< receive completion raised (-1: no immediate)
  Time send_cqe = -1;    ///< send completion raised

  /// Wire occupancy of this operation.
  Duration wire_time() const { return wire_end - wire_start; }
  /// Post-to-delivery latency.
  Duration latency() const { return landed - posted; }
};

class TraceSink {
 public:
  /// Begin a record; returns its op id.
  std::uint64_t begin(NodeId src, NodeId dst, std::uint64_t src_qp,
                      std::size_t bytes, Time posted);

  TraceRecord& at(std::uint64_t op_id);
  const std::vector<TraceRecord>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }
  void clear() { records_.clear(); }

  /// All records that used `src_qp` (insertion order).
  std::vector<const TraceRecord*> by_qp(std::uint64_t src_qp) const;

  /// CSV: op,src,dst,qp,bytes,posted,wqe,wire_start,wire_end,landed,
  ///      recv_cqe,send_cqe
  std::string to_csv() const;

  /// Aggregate wire utilisation of a node's egress over [from, to):
  /// total wire time of ops it sourced divided by the window.
  double egress_utilisation(NodeId src, Time from, Time to) const;

 private:
  std::vector<TraceRecord> records_;
};

}  // namespace partib::fabric
