// The transport-neutral RDMA operation record.
//
// One RdmaOp is what the verbs layer hands to whichever transport backend
// is active (backend/transport.hpp): the DES fluid-network fabric
// (fabric/fabric.hpp), the real-time shared-memory transport
// (backend/shm/), or a hardware verbs stub.  The struct deliberately
// carries *callbacks*, not results: a transport's only obligations are the
// delivery contract documented on each member, which is what the
// cross-backend conformance suite (tests/backend/) holds every
// implementation to.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

#include "common/time.hpp"
#include "fabric/fault.hpp"

namespace partib::fabric {

/// Dense node handle; allocated by Transport::add_node.  (Also the flat
/// index into the fluid network's capacity tables in the DES backend.)
using NodeId = int;

/// One RDMA operation handed down by the verbs layer.
struct RdmaOp {
  NodeId src = -1;
  NodeId dst = -1;
  /// Globally unique id of the sending QP (for ordering + activation).
  std::uint64_t src_qp = 0;
  std::size_t bytes = 0;
  /// Scales the per-QP engine bandwidth share for this transfer (< 1 for
  /// software paths that cannot keep the pipeline full).
  double rate_cap_factor = 1.0;
  /// Executed exactly when the last byte lands at the destination
  /// (before the receive completion).  May be empty.
  std::function<void()> move_data;
  /// Local send completion (CQE on the sender's CQ).
  std::function<void(Time)> on_send_complete;
  /// Remote completion (CQE on the receiver's CQ, o_r after landing).
  /// Empty for plain RDMA_WRITE (no immediate => no remote CQE).
  std::function<void(Time)> on_recv_complete;
  /// Fault path: the op failed in transport.  Exactly one of
  /// {move_data + on_send_complete [+ on_recv_complete]} or
  /// on_failed(when, failure) runs — a failed op never lands, never moves
  /// data and never raises a receive CQE.  May be empty (failure is then
  /// silently swallowed; the verbs layer always sets it).
  std::function<void(Time, OpFailure)> on_failed;
  /// Internal: trace record index (set by the fabric when tracing).
  std::uint64_t trace_id = kNoTraceId;
  /// Internal: fault decision drawn at post time (kNone when no plan).
  FaultDecision fault;

  static constexpr std::uint64_t kNoTraceId = ~std::uint64_t{0};
};

struct FabricStats {
  std::uint64_t rdma_ops = 0;
  std::uint64_t control_msgs = 0;
  std::uint64_t payload_bytes = 0;
  std::uint64_t wire_bytes = 0;  ///< payload + segment headers
  // Fault-plane counters (all zero with faults disabled).
  std::uint64_t faults_injected = 0;  ///< ops with a non-kNone decision
  std::uint64_t retransmits = 0;      ///< dropped transfers re-sent
  std::uint64_t failed_ops = 0;       ///< ops delivered via on_failed
};

}  // namespace partib::fabric
