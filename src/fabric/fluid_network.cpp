#include "fabric/fluid_network.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/assert.hpp"
#include "common/diag.hpp"

namespace partib::fabric {

namespace {
// Half a byte: below this a flow is considered finished.
constexpr double kByteEps = 0.5;
}  // namespace

FluidNetwork::FluidNetwork(sim::Engine& engine, double link_bytes_per_ns)
    : engine_(engine), capacity_(link_bytes_per_ns) {
  PARTIB_ASSERT(capacity_ > 0.0);
}

void FluidNetwork::set_node_count(int n) {
  PARTIB_ASSERT(n >= nodes_);
  nodes_ = n;
  const auto count = static_cast<std::size_t>(n);
  egress_cap_.resize(count, capacity_);
  ingress_cap_.resize(count, capacity_);
  egress_rem_.resize(count);
  ingress_rem_.resize(count);
  egress_load_.resize(count);
  ingress_load_.resize(count);
}

void FluidNetwork::set_node_capacity(NodeId node, double egress_bytes_per_ns,
                                     double ingress_bytes_per_ns) {
  PARTIB_ASSERT(node >= 0 && node < nodes_);
  PARTIB_ASSERT(egress_bytes_per_ns > 0.0 && ingress_bytes_per_ns > 0.0);
  egress_cap_[static_cast<std::size_t>(node)] = egress_bytes_per_ns;
  ingress_cap_[static_cast<std::size_t>(node)] = ingress_bytes_per_ns;
}

void FluidNetwork::submit(NodeId src, NodeId dst, double bytes,
                          double rate_cap, Done done) {
  PARTIB_ASSERT(src >= 0 && src < nodes_ && dst >= 0 && dst < nodes_);
  PARTIB_ASSERT(bytes >= 0.0 && rate_cap > 0.0);
  if (bytes < kByteEps) {
    // Zero-length transfer: completes immediately (still asynchronously,
    // so callers can rely on callback ordering).
    engine_.schedule_after(0, [done = std::move(done), this] {
      ++completed_;
      done(engine_.now());
    });
    return;
  }
  if (src == dst) {
    // Loopback bypasses the switch; only the engine cap applies.
    const auto d = static_cast<Duration>(std::ceil(bytes / rate_cap));
    engine_.schedule_after(d, [done = std::move(done), this] {
      ++completed_;
      done(engine_.now());
    });
    return;
  }
  drain_progress();
  std::uint32_t slot;
  if (!free_flow_slots_.empty()) {
    slot = free_flow_slots_.back();
    free_flow_slots_.pop_back();
    flow_slots_[slot] = Flow{src, dst, bytes, rate_cap, 0.0, std::move(done)};
  } else {
    slot = static_cast<std::uint32_t>(flow_slots_.size());
    flow_slots_.push_back(Flow{src, dst, bytes, rate_cap, 0.0, std::move(done)});
  }
  active_.push_back(slot);
  recompute_rates();
  schedule_next_completion();
}

void FluidNetwork::drain_progress() {
  const Time now = engine_.now();
  const auto elapsed = static_cast<double>(now - last_update_);
  if (elapsed > 0.0) {
    for (const std::uint32_t slot : active_) {
      Flow& f = flow_slots_[slot];
      f.remaining = std::max(0.0, f.remaining - f.rate * elapsed);
    }
  }
  last_update_ = now;
}

void FluidNetwork::recompute_rates() {
  if (active_.empty()) return;
  if (active_.size() == 1) {
    // Single-flow fast path: progressive filling with one flow is one
    // round whose delta is min(egress, ingress, cap), so this is exact
    // (bit-identical to the full fill), not an approximation.
    Flow& f = flow_slots_[active_[0]];
    const double e = egress_cap_[static_cast<std::size_t>(f.src)];
    const double i = ingress_cap_[static_cast<std::size_t>(f.dst)];
    f.rate = std::min(std::min(e, i), f.cap);
    return;
  }
  // Progressive filling (water-filling): raise all unfrozen flow rates in
  // lockstep; freeze flows at their cap and flows crossing a saturated
  // link.  Each round freezes at least one flow, so this terminates.
  // Scratch vectors are members; the steady path allocates nothing.
  std::copy(egress_cap_.begin(), egress_cap_.end(), egress_rem_.begin());
  std::copy(ingress_cap_.begin(), ingress_cap_.end(), ingress_rem_.begin());
  std::fill(egress_load_.begin(), egress_load_.end(), 0);
  std::fill(ingress_load_.begin(), ingress_load_.end(), 0);
  unfrozen_.clear();
  for (const std::uint32_t slot : active_) {
    Flow& f = flow_slots_[slot];
    f.rate = 0.0;
    unfrozen_.push_back(&f);
    ++egress_load_[static_cast<std::size_t>(f.src)];
    ++ingress_load_[static_cast<std::size_t>(f.dst)];
  }
  const double eps = capacity_ * 1e-12;

  while (!unfrozen_.empty()) {
    double delta = std::numeric_limits<double>::infinity();
    for (const Flow* f : unfrozen_) {
      const auto s = static_cast<std::size_t>(f->src);
      const auto d = static_cast<std::size_t>(f->dst);
      delta = std::min(delta, egress_rem_[s] / egress_load_[s]);
      delta = std::min(delta, ingress_rem_[d] / ingress_load_[d]);
      delta = std::min(delta, f->cap - f->rate);
    }
    PARTIB_ASSERT(delta >= 0.0 &&
                  delta < std::numeric_limits<double>::infinity());
    for (Flow* f : unfrozen_) {
      f->rate += delta;
      egress_rem_[static_cast<std::size_t>(f->src)] -= delta;
      ingress_rem_[static_cast<std::size_t>(f->dst)] -= delta;
    }
    // Freeze cap-limited flows and flows on saturated links; frozen flows
    // leave the per-link load counts so later rounds divide by the
    // still-unfrozen population only (same integers the per-round rebuild
    // in the original implementation produced).
    still_.clear();
    bool froze_any = false;
    for (Flow* f : unfrozen_) {
      const auto s = static_cast<std::size_t>(f->src);
      const auto d = static_cast<std::size_t>(f->dst);
      const bool capped = f->rate >= f->cap - eps;
      const bool egress_full = egress_rem_[s] <= eps;
      const bool ingress_full = ingress_rem_[d] <= eps;
      if (capped || egress_full || ingress_full) {
        froze_any = true;
        --egress_load_[s];
        --ingress_load_[d];
      } else {
        still_.push_back(f);
      }
    }
    PARTIB_ASSERT_MSG(froze_any, "progressive filling failed to converge");
    std::swap(unfrozen_, still_);
  }
}

void FluidNetwork::schedule_next_completion() {
  if (next_event_.valid()) {
    engine_.cancel(next_event_);
    next_event_ = sim::Engine::EventId{};
  }
  if (active_.empty()) return;
  double min_finish = std::numeric_limits<double>::infinity();
  for (const std::uint32_t slot : active_) {
    const Flow& f = flow_slots_[slot];
    if (f.rate <= 0.0) {
      // Pathological: every capacity/cap interaction underflowed this
      // flow's share to zero.  A zero rate can never finish, so report a
      // structured diagnostic instead of dividing by zero (or tripping
      // an assert in a release-unchecked build); the flow stays parked
      // until some completion or submission recomputes rates.
      Diagnostic d;
      d.rule = "fluid.zero_rate";
      d.object = "fluid_network";
      d.vtime = engine_.now();
      d.detail = "flow rate underflowed to zero (all-capped pathological "
                 "case); flow parked until rates are recomputed";
      diag_emit(d);
      continue;
    }
    min_finish = std::min(min_finish, f.remaining / f.rate);
  }
  if (min_finish == std::numeric_limits<double>::infinity()) return;
  const auto delay = static_cast<Duration>(std::ceil(min_finish));
  next_event_ = engine_.schedule_after(std::max<Duration>(delay, 1),
                                       [this] { on_completion_event(); });
}

void FluidNetwork::on_completion_event() {
  next_event_ = sim::Engine::EventId{};
  drain_progress();
  // Collect finished flows first: Done callbacks may submit new flows.
  // `finished_scratch_` keeps its capacity across events; completion
  // order is `active_` order, i.e. submission order, matching the
  // original id-ordered map iteration.
  finished_scratch_.clear();
  const Time now = engine_.now();
  std::size_t kept = 0;
  for (const std::uint32_t slot : active_) {
    Flow& f = flow_slots_[slot];
    if (f.remaining <= kByteEps) {
      finished_scratch_.push_back(std::move(f.done));
      free_flow_slots_.push_back(slot);
    } else {
      active_[kept++] = slot;
    }
  }
  active_.resize(kept);
  if (!active_.empty()) {
    recompute_rates();
  }
  schedule_next_completion();
  for (Done& done : finished_scratch_) {
    ++completed_;
    done(now);
  }
  finished_scratch_.clear();
}

}  // namespace partib::fabric
