#include "fabric/nic_params.hpp"

namespace partib::fabric {

NicParams NicParams::connectx5_edr() {
  NicParams p;
  // 100 Gb/s line rate with protocol efficiency ~= 12.1 GB/s payload.
  p.wire.G = 0.0826;  // ns per byte
  p.wire.L = nsec(1'000);
  p.wire.o_s = nsec(100);
  p.wire.o_r = nsec(150);
  // ConnectX-5 sustains O(100M) messages/s: the WQE-engine gap is tens of
  // nanoseconds, not the microseconds an MPI-level measurement reports.
  p.wire.g = nsec(20);
  return p;
}

}  // namespace partib::fabric
