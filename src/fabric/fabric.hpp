// The simulated InfiniBand fabric.
//
// Sits under the verbs layer (src/verbs) and above the fluid network.
// Responsibilities:
//   * per-node WQE engine: the NIC fetches and processes work-queue
//     entries serially at gap `g` regardless of which QP they belong to
//     (doorbell + WQE fetch share one PCIe path);
//   * per-QP ordering: a QP's WRs occupy the wire strictly in post order
//     (InfiniBand RC ordering guarantee);
//   * per-QP engine bandwidth share and one-time activation cost;
//   * MTU segmentation, modelled as per-segment header bytes on the wire;
//   * delivery: executes the payload copy when the last byte lands
//     (wire_end + L) and raises the receive completion o_r later;
//   * an out-of-band control plane for connection setup / matching.
//
// Data movement is real (the `move_data` closure memcpy's into the
// destination memory region) unless copy_data is disabled, which the
// benchmark harness does for multi-hundred-MiB sweeps where only the
// timeline matters.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "backend/transport.hpp"
#include "common/ring.hpp"
#include "common/time.hpp"
#include "fabric/fault.hpp"
#include "fabric/fluid_network.hpp"
#include "fabric/nic_params.hpp"
#include "fabric/rdma_op.hpp"
#include "fabric/trace.hpp"
#include "sim/engine.hpp"
#include "sim/resources.hpp"

namespace partib::fabric {

/// The discrete-event transport backend (backend::Transport contract):
/// the fluid network provides wire occupancy, the sim::Engine provides
/// the clock, and every completion callback fires as a DES event — so the
/// whole timeline is a deterministic function of the post sequence.
class Fabric final : public backend::Transport {
 public:
  Fabric(sim::Engine& engine, NicParams params, bool copy_data = true);

  std::string_view kind() const override { return "des-fluid"; }

  NodeId add_node() override;
  int node_count() const override {
    return static_cast<int>(wqe_engines_.size());
  }

  sim::Engine& engine() { return engine_; }
  const NicParams& nic() const { return params_; }
  bool copies_data() const override { return copy_data_; }

  /// Post an RDMA write (with or without immediate).  Timing starts now;
  /// host-side posting costs are the caller's concern.
  void post_rdma_write(RdmaOp op) override;

  /// Deliver a small out-of-band control message (QP exchange, match
  /// handshake).  `deliver` runs on the destination after
  /// L + ctrl_overhead.
  void send_control(NodeId src, NodeId dst,
                    std::function<void()> deliver) override;

  const FabricStats& stats() const override { return stats_; }

  /// Attach (or detach, with nullptr) a per-operation trace sink; see
  /// fabric/trace.hpp.  The sink must outlive all traced operations.
  void set_trace(TraceSink* sink) override { trace_ = sink; }
  TraceSink* trace() override { return trace_; }

  // -- fault plane (fabric/fault.hpp) ----------------------------------------
  /// Install a fault plan.  Must be called before the first post; a plan
  /// with every rate at zero is free (the post path never consults it).
  void set_fault_plan(const FaultPlan& plan) override;
  const FaultPlan& fault_plan() const override { return fault_plan_; }

  /// Test hook: force the QP's send context into the error state *now*.
  /// The op currently on the wire (if any) still completes — the error is
  /// in the QP context, not the link — but every queued op, and every op
  /// posted afterwards, fails with OpFailure::kFlushed in post order.
  /// Recovery requires reset_qp_chain() (driven by verbs::Qp::to_reset).
  void inject_qp_error(std::uint64_t src_qp) override;

  /// True while the QP's chain is wedged in the error state.
  bool qp_chain_errored(std::uint64_t src_qp) override;

  /// Recovery: clear the error mark so the chain accepts work again.  The
  /// chain must be fully drained (every flush delivered); QP context
  /// activation is charged again on next use, like a fresh QP.
  void reset_qp_chain(std::uint64_t src_qp) override;

  /// Wire bytes for a payload of `bytes` after MTU segmentation.
  std::size_t wire_bytes_for(std::size_t bytes) const override;

 private:
  struct QpChain {
    common::Ring<RdmaOp> pending;
    bool busy = false;
    bool activated = false;
    /// Error state: every op issued from this chain fails with kFlushed
    /// until reset_qp_chain().
    bool errored = false;
  };

  sim::Engine& engine_;
  NicParams params_;
  bool copy_data_;
  FluidNetwork network_;
  // One serial WQE engine per node (index == NodeId).
  std::vector<std::unique_ptr<sim::FifoResource>> wqe_engines_;
  // Indexed directly by src_qp: the verbs layer allocates qp_nums densely,
  // so the table is small and a chain lookup is one array load (the map it
  // replaced did a tree walk per pipeline stage).
  std::vector<QpChain> chains_;
  // Issued ops park here until their last completion callback fires, so
  // every pipeline-stage closure captures {this, op id} — small enough to
  // stay inside the engine's inline callback buffers instead of dragging
  // a full RdmaOp copy (3 std::functions) through each stage.
  std::vector<RdmaOp> inflight_;
  std::vector<std::uint8_t> inflight_refs_;
  std::vector<std::uint32_t> inflight_free_;
  FabricStats stats_;
  TraceSink* trace_ = nullptr;
  FaultPlan fault_plan_;  ///< disabled by default: decide() never called

  QpChain& chain_for(std::uint64_t src_qp);
  std::uint32_t acquire_op(RdmaOp&& op);
  void release_op_ref(std::uint32_t id);
  void issue_next(std::uint64_t src_qp);
  void start_wire(std::uint32_t id, bool charge_activation);
  void begin_wire(std::uint32_t id);
  void on_wire_end(std::uint32_t id, Time wire_end);
  void on_landing(std::uint32_t id);
  /// Deliver op `id` as failed after `after`: fires on_failed, releases
  /// the chain, and issues the next queued op (which flushes in turn if
  /// the chain is errored).
  void fail_op(std::uint32_t id, OpFailure failure, Duration after);
  TraceRecord* trace_of(std::uint64_t trace_id);
};

}  // namespace partib::fabric
