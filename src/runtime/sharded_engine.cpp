#include "runtime/sharded_engine.hpp"

#include <utility>

#include "check/hooks.hpp"
#include "common/assert.hpp"
#include "common/atomic_bits.hpp"
#include "common/bits.hpp"

namespace partib::runtime {

ShardedProgressEngine::ShardedProgressEngine(const Config& cfg)
    : mode_(cfg.mode) {
  PARTIB_ASSERT_MSG(cfg.shards >= 1, "at least one progress shard");
  shards_.reserve(cfg.shards);
  for (std::size_t i = 0; i < cfg.shards; ++i) {
    shards_.push_back(std::make_unique<ProgressShard>(cfg.ring_capacity));
  }
}

std::size_t ShardedProgressEngine::add_channel(part::PsendRequest* send,
                                               part::PrecvRequest* recv) {
  PARTIB_ASSERT(send != nullptr);
  const std::size_t id = channels_.size();
  auto ch = std::make_unique<Channel>();
  ch->send = send;
  ch->recv = recv;
  ch->partitions = send->user_partitions();
  ch->shard = id % shards_.size();
  ch->claim_words.assign(bitmap_words(ch->partitions), 0);
  ch->arrived_mirror.assign(bitmap_words(ch->partitions), 0);
  send->tag_shard(static_cast<int>(ch->shard));
  if (recv != nullptr) {
    recv->tag_shard(static_cast<int>(ch->shard));
    // The hook runs on the bridge thread (inside engine dispatch);
    // atomic_publish_bit's release pairs with parrived's acquire so a
    // producer that sees the bit also sees the partition's bytes landed.
    std::uint64_t* mirror = ch->arrived_mirror.data();
    recv->set_arrival_hook([mirror](std::size_t p, Time /*at*/) {
      atomic_publish_bit(mirror, p);
    });
  }
  claim_base_.push_back(ch->claim_words.data());
  claim_bits_.push_back(ch->partitions);
  shard_base_.push_back(shards_[ch->shard].get());
  channels_.push_back(std::move(ch));
  return id;
}

void ShardedProgressEngine::begin_round() {
  PARTIB_ASSERT_MSG(quiescent(), "begin_round with claims still in flight");
  for (auto& ch : channels_) {
    // Producers are quiescent between rounds (thread contract), so plain
    // stores are race-free; the next round's first claim synchronizes via
    // the round gate the harness already needs.
    for (std::uint64_t& w : ch->claim_words) w = 0;
    for (std::uint64_t& w : ch->arrived_mirror) w = 0;
  }
}

bool ShardedProgressEngine::pready(std::size_t channel, std::size_t partition,
                                   std::uint32_t producer) {
  if (mode_ == Mode::kSerialized) {
    Channel& ch = *channels_[channel];
    PARTIB_ASSERT(partition < ch.partitions);
    common::MutexLock lock(serial_mu_);
    if (bitmap_test(ch.claim_words.data(), partition)) return false;
    bitmap_set(ch.claim_words.data(), partition);
    const Status st = ch.send->pready(partition);
    PARTIB_ASSERT_MSG(ok(st) || ch.send->failed(), "pready failed");
    serial_applied_.fetch_add(1, std::memory_order_relaxed);
    if (serial_progress_) serial_progress_();
    return true;
  }
  if (!try_claim(channel, partition)) return false;
  submit(ReadyOp{static_cast<std::uint32_t>(channel),
                 static_cast<std::uint32_t>(partition), 1, producer});
  return true;
}

std::size_t ShardedProgressEngine::pready_range(std::size_t channel,
                                                std::size_t first,
                                                std::size_t last,
                                                std::uint32_t producer) {
  Channel& ch = *channels_[channel];
  PARTIB_ASSERT(first <= last && last < ch.partitions);
  if (mode_ == Mode::kSerialized) {
    common::MutexLock lock(serial_mu_);
    std::size_t won = 0;
    for (std::size_t p = first; p <= last; ++p) {
      if (bitmap_test(ch.claim_words.data(), p)) continue;
      bitmap_set(ch.claim_words.data(), p);
      const Status st = ch.send->pready(p);
      PARTIB_ASSERT_MSG(ok(st) || ch.send->failed(), "pready failed");
      ++won;
    }
    serial_applied_.fetch_add(won, std::memory_order_relaxed);
    if (serial_progress_) serial_progress_();
    return won;
  }
  ProgressShard& shard = *shards_[ch.shard];
  return atomic_claim_range(
      ch.claim_words.data(), first, last - first + 1,
      [&](std::size_t run_first, std::size_t run_len) {
        shard.push(ReadyOp{static_cast<std::uint32_t>(channel),
                           static_cast<std::uint32_t>(run_first),
                           static_cast<std::uint32_t>(run_len), producer});
      });
}

bool ShardedProgressEngine::parrived(std::size_t channel,
                                     std::size_t partition) const {
  const Channel& ch = *channels_[channel];
  PARTIB_ASSERT(partition < ch.partitions);
  if (mode_ == Mode::kSerialized) {
    common::MutexLock lock(serial_mu_);
    return ch.recv != nullptr && ch.recv->parrived(partition);
  }
  return atomic_test_bit(ch.arrived_mirror.data(), partition);
}

void ShardedProgressEngine::apply(const ReadyOp& op) {
  Channel& ch = *channels_[op.channel];
  // The drain is entering this channel's DES domain; the affinity auditor
  // verifies the request's tagged shard is the one draining it.  (The
  // QP/CQ hooks alone can't see this — the actual post_send runs in a
  // later engine event, outside any drain scope.)
  PARTIB_CHECK_HOOK(on_shard_access(ch.send, ch.send->shard_tag(), "psend"));
  Status st;
  if (op.count == 1) {
    st = ch.send->pready(op.first);
  } else {
    st = ch.send->pready_range(op.first, op.first + op.count - 1);
  }
  PARTIB_ASSERT_MSG(ok(st) || ch.send->failed(), "drain apply failed");
}

std::size_t ShardedProgressEngine::drain() {
  if (mode_ == Mode::kSerialized) return 0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
#if PARTIB_CHECK_ENABLED
    check::ScopedShardAffinity affinity(static_cast<int>(i));
#endif
    n += shards_[i]->drain([this](const ReadyOp& op) { apply(op); });
  }
  return n;
}

bool ShardedProgressEngine::quiescent() const {
  for (const auto& shard : shards_) {
    if (!shard->quiescent()) return false;
  }
  return true;
}

std::size_t ShardedProgressEngine::shard_of(std::size_t channel) const {
  return channels_[channel]->shard;
}

std::uint64_t ShardedProgressEngine::ops_pushed() const {
  std::uint64_t n = serial_applied_.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) n += shard->pushed();
  return n;
}

std::uint64_t ShardedProgressEngine::ops_applied() const {
  std::uint64_t n = serial_applied_.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) n += shard->applied();
  return n;
}

std::uint64_t ShardedProgressEngine::ring_full_fallbacks() const {
  std::uint64_t n = 0;
  for (const auto& shard : shards_) n += shard->ring_full_fallbacks();
  return n;
}

}  // namespace partib::runtime
