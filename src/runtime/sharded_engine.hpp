// Sharded multi-threaded progress engine: real MPI_THREAD_MULTIPLE
// producers over the single-threaded DES data plane.
//
// The paper's headline scenario is many threads per node each calling
// MPI_Pready independently; the DES core (sim/engine.hpp) is and stays
// single-threaded.  This engine reconciles the two with a claim/hand-off
// split:
//
//   producer threads                         bridge thread (owns Engine)
//   ----------------                         ---------------------------
//   pready(ch, p):
//     fetch_or on the channel's
//     claim bitmap  ── exactly-once ──►  (nothing; no contention)
//     push ReadyOp onto the
//     owning shard's MPSC ring   ──────►  drain(): pop ops, apply plain
//                                         PsendRequest::pready under the
//                                         shard mutex + shard affinity
//   parrived(ch, p):
//     atomic read of the arrived          arrival hook publishes each
//     mirror bitmap  ◄── release ──────   partition bit (atomic OR)
//
// Producers therefore never touch a QP, CQ, PsendRequest, or the engine:
// exactly-once partition ownership is decided by one atomic fetch_or
// (common/atomic_bits.hpp), and everything the DES fast path does —
// WQE staging from the PR 4 slab, aggregation, doorbells — runs
// unchanged on the bridge thread.  DES mode is untouched by construction
// and remains the determinism oracle the differential tests compare
// against (tests/runtime/threaded_differential_test.cpp).
//
// Channels are assigned to shards round-robin at add_channel() time; the
// channel's QPs and CQs are tagged with the shard id so the dynamic
// shard-affinity auditor (check/concurrency_check.hpp) can prove the
// partitioning holds at drain time.
//
// Mode::kSerialized is the baseline the benchmarks compare against: every
// producer call takes one global mutex and applies the full pready
// synchronously — the naive MPI_THREAD_MULTIPLE implementation with a big
// lock around the library.  Callers pumping the engine in serialized mode
// must hold serial_mutex() around engine access themselves.
//
// Thread contract:
//  * add_channel()/begin_round() — bridge thread only, with no producer
//    running (registration / between-round phases).
//  * pready()/pready_range()/parrived() — any thread.
//  * drain()/quiescent() — bridge thread only.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/assert.hpp"
#include "common/atomic_bits.hpp"
#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "part/precv.hpp"
#include "part/psend.hpp"
#include "runtime/shard.hpp"

namespace partib::runtime {

class ShardedProgressEngine {
 public:
  enum class Mode {
    kSharded,     ///< claim + MPSC hand-off; producers never lock
    kSerialized,  ///< one global mutex, full apply per call (baseline)
  };

  struct Config {
    std::size_t shards = 4;
    /// Per-shard MPSC ring capacity (rounded up to a power of two).
    /// Undersizing is safe — full rings fall back to the shard mutex —
    /// but shows up in ring_full_fallbacks().
    std::size_t ring_capacity = 1024;
    Mode mode = Mode::kSharded;
  };

  explicit ShardedProgressEngine(const Config& cfg);

  // -- registration (bridge thread, before producers start) -----------------

  /// Register a channel; `send` is required, `recv` may be nullptr (a
  /// send-only view — parrived() then always returns false).  Assigns the
  /// channel to a shard round-robin, tags its verbs objects, and installs
  /// the arrival hook that maintains the parrived mirror.  Returns the
  /// channel id producers use.
  std::size_t add_channel(part::PsendRequest* send, part::PrecvRequest* recv);

  /// Reset claim bitmaps and arrived mirrors for the next round.  All
  /// producers must be quiescent (between rounds) and every claim
  /// drained.
  void begin_round();

  // -- producer API (any thread) ---------------------------------------------

  /// Claim partition `partition` of `channel`.  True iff this caller won
  /// the claim (every partition is claimed exactly once per round across
  /// all threads).  Sharded mode: O(1) fetch_or + ring push, no lock.
  bool pready(std::size_t channel, std::size_t partition,
              std::uint32_t producer = 0);

  /// Claim every unclaimed partition in the inclusive range
  /// [first, last]; returns the number of partitions this caller won.
  /// Maximal claimed runs are handed off as single ops.
  std::size_t pready_range(std::size_t channel, std::size_t first,
                           std::size_t last, std::uint32_t producer = 0);

  /// Has partition `partition` of `channel` arrived this round?  Sharded
  /// mode reads the atomic mirror the bridge publishes; never blocks.
  bool parrived(std::size_t channel, std::size_t partition) const;

  // -- split producer API (per-thread batching, see producer.hpp) ------------

  /// Claim without hand-off; pair with submit().  Sharded mode only.
  /// Inline over dense side arrays (no Channel deref): this is the
  /// per-call floor of the producer fast path — bounds check plus one
  /// relaxed fetch_or on the channel's claim bitmap.
  bool try_claim(std::size_t channel, std::size_t partition) {
    PARTIB_ASSERT(partition < claim_bits_[channel]);
    return atomic_claim_bit(claim_base_[channel], partition);
  }
  /// Hand a claimed run to its shard.  Sharded mode only.
  void submit(const ReadyOp& op) {
    shard_base_[op.channel]->push(op);
  }

  /// Serialized-baseline fidelity knob: real big-lock MPI implementations
  /// obey the progress rule — every MPI call opportunistically advances
  /// the engine while it holds the lock.  When set, serialized
  /// pready/pready_range invoke `hook` under serial_mu_ after applying.
  /// Ignored in sharded mode (the bridge owns progress there; producers
  /// never pay it — that asymmetry IS the optimisation being measured).
  void set_serial_progress(std::function<void()> hook) {
    serial_progress_ = std::move(hook);
  }

  // -- bridge API (engine-owner thread only) ---------------------------------

  /// Apply every pending claim to the underlying requests; returns the
  /// number of ops applied.  Declares shard affinity per shard for the
  /// auditor.  No-op in serialized mode (producers already applied).
  std::size_t drain();

  /// Every pushed op has been applied (see ProgressShard::quiescent).
  bool quiescent() const;

  // -- introspection ---------------------------------------------------------

  Mode mode() const { return mode_; }
  std::size_t shard_count() const { return shards_.size(); }
  std::size_t channel_count() const { return channels_.size(); }
  std::size_t shard_of(std::size_t channel) const;
  std::uint64_t ops_pushed() const;
  std::uint64_t ops_applied() const;
  std::uint64_t ring_full_fallbacks() const;

  /// The serialized-mode global lock; exposed so a serialized-mode bridge
  /// can hold it around engine pumping (see header comment).
  common::Mutex& serial_mutex() { return serial_mu_; }

 private:
  struct Channel {
    part::PsendRequest* send = nullptr;
    part::PrecvRequest* recv = nullptr;
    std::size_t partitions = 0;
    std::size_t shard = 0;
    /// Producer-side claim bitmap (atomic fetch_or decides ownership).
    std::vector<std::uint64_t> claim_words;
    /// Bridge-published arrival mirror (atomic release set, acquire read).
    std::vector<std::uint64_t> arrived_mirror;
  };

  void apply(const ReadyOp& op);

  Mode mode_;
  std::vector<std::unique_ptr<ProgressShard>> shards_;
  std::vector<std::unique_ptr<Channel>> channels_;
  // Dense mirrors of per-channel hot fields so the inline producer fast
  // path (try_claim/submit) costs two flat loads instead of chasing
  // unique_ptr<Channel> (stable: Channels are append-only, heap-pinned).
  std::vector<std::uint64_t*> claim_base_;
  std::vector<std::size_t> claim_bits_;
  std::vector<ProgressShard*> shard_base_;
  mutable common::Mutex serial_mu_{"runtime.serial"};
  std::atomic<std::uint64_t> serial_applied_{0};
  std::function<void()> serial_progress_;  ///< progress-on-call model
};

}  // namespace partib::runtime
