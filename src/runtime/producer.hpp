// Per-producer-thread handle: claim batching over the sharded engine.
//
// A producer that marks partitions in ascending order (the common MPI
// pattern — each thread owns a contiguous slice of the buffer) would
// otherwise push one ReadyOp per partition.  The handle keeps a single
// pending run per thread — a tiny staging arena that lives entirely in
// this thread's cache — and extends it while claims stay contiguous on
// the same channel, handing off one coalesced op per run.  The bridge
// then applies the run with one pready_range call, which re-enters the
// group/aggregation machinery exactly as a user's MPI_Pready_range would.
//
// flush() publishes the pending run; the destructor flushes too, but a
// round barrier must call flush() explicitly *before* signalling the
// bridge (an op sitting in the arena is invisible to quiescent()).
//
// The handle is strictly single-threaded: one per producer thread, never
// shared.  In serialized mode it degenerates to direct engine calls so
// benchmark loops are mode-agnostic.
#pragma once

#include <cstddef>
#include <cstdint>

#include "runtime/sharded_engine.hpp"

namespace partib::runtime {

class ProducerHandle {
 public:
  ProducerHandle(ShardedProgressEngine& engine, std::uint32_t producer_id)
      : engine_(engine), id_(producer_id) {}

  ~ProducerHandle() { flush(); }
  ProducerHandle(const ProducerHandle&) = delete;
  ProducerHandle& operator=(const ProducerHandle&) = delete;

  /// Claim one partition; true iff this thread won it.  Won claims are
  /// coalesced into the pending run when contiguous.
  bool pready(std::size_t channel, std::size_t partition) {
    if (engine_.mode() == ShardedProgressEngine::Mode::kSerialized) {
      return engine_.pready(channel, partition, id_);
    }
    if (!engine_.try_claim(channel, partition)) return false;
    ++claims_won_;
    if (pending_.count != 0 &&
        pending_.channel == static_cast<std::uint32_t>(channel) &&
        pending_.first + pending_.count ==
            static_cast<std::uint32_t>(partition)) {
      ++pending_.count;
      ++coalesced_;
      return true;
    }
    flush();
    pending_ = ReadyOp{static_cast<std::uint32_t>(channel),
                       static_cast<std::uint32_t>(partition), 1, id_};
    return true;
  }

  /// Inclusive range claim (bypasses the arena — the engine already
  /// emits maximal runs).  Returns the number of partitions won.
  std::size_t pready_range(std::size_t channel, std::size_t first,
                           std::size_t last) {
    flush();
    const std::size_t won = engine_.pready_range(channel, first, last, id_);
    claims_won_ += won;
    return won;
  }

  bool parrived(std::size_t channel, std::size_t partition) const {
    return engine_.parrived(channel, partition);
  }

  /// Publish the pending run to its shard.  Call before any round
  /// barrier.
  void flush() {
    if (pending_.count == 0) return;
    engine_.submit(pending_);
    pending_.count = 0;
  }

  std::uint32_t id() const { return id_; }
  std::uint64_t claims_won() const { return claims_won_; }
  /// Claims folded into an already-pending run (hand-offs saved).
  std::uint64_t coalesced() const { return coalesced_; }

 private:
  ShardedProgressEngine& engine_;
  std::uint32_t id_;
  ReadyOp pending_{};  // count == 0 means empty
  std::uint64_t claims_won_ = 0;
  std::uint64_t coalesced_ = 0;
};

}  // namespace partib::runtime
