// One progress shard: the hand-off point between producer threads and
// the bridge thread that owns the DES engine.
//
// The sharded runtime (sharded_engine.hpp) partitions channels — and
// through them their QPs and CQs — across shards.  Each shard carries:
//
//  * a bounded lock-free MPSC ring (common/mpsc_ring.hpp) producers push
//    claimed ReadyOps into without ever touching the consumer's poll
//    path — the fast path, one fetch_add + one release store per op;
//  * an annotated partib::Mutex guarding an overflow vector — the slow
//    path a producer falls back to when the ring is full, and the lock
//    the bridge holds while draining, which is exactly the "held audited
//    lock = synchronized" shape the PR 6 cross-thread ownership auditor
//    blesses (check/concurrency_check.hpp).
//
// Quiescence accounting: producers increment `pushed_` (release) *before*
// publishing the op, the drain counts what it applied, so
// `pushed == applied` can only under-report progress — the bridge may
// spin one extra pump, never exit with an op still in flight.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/mpsc_ring.hpp"
#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

namespace partib::runtime {

/// One claimed pready unit: `count` partitions of `channel` starting at
/// `first`, claimed by producer thread `producer`.  16-byte POD so the
/// MPSC cells hand it off by value.
struct ReadyOp {
  std::uint32_t channel = 0;
  std::uint32_t first = 0;
  std::uint32_t count = 0;
  std::uint32_t producer = 0;
};

class ProgressShard {
 public:
  explicit ProgressShard(std::size_t ring_capacity) : ring_(ring_capacity) {}
  ProgressShard(const ProgressShard&) = delete;
  ProgressShard& operator=(const ProgressShard&) = delete;

  /// Producer side, any thread.  Never blocks on the consumer: a full
  /// ring falls back to the mutex-guarded overflow vector (counted, so
  /// benchmarks can see when ring sizing is wrong).
  void push(const ReadyOp& op) {
    pushed_.fetch_add(1, std::memory_order_release);
    if (ring_.try_push(op)) return;
    ring_full_.fetch_add(1, std::memory_order_relaxed);
    common::MutexLock lock(mu_);
    overflow_.push_back(op);
  }

  /// Consumer side — the bridge thread only.  Applies `apply(op)` to
  /// every pending op under the shard mutex and returns the count.
  template <typename Fn>
  std::size_t drain(Fn&& apply) {
    common::MutexLock lock(mu_);
    std::size_t n = 0;
    ReadyOp op;
    while (ring_.try_pop(op)) {
      apply(op);
      ++n;
    }
    for (const ReadyOp& o : overflow_) {
      apply(o);
      ++n;
    }
    overflow_.clear();
    applied_ += n;
    return n;
  }

  /// Bridge-side: every op pushed so far has been applied.  May lag a
  /// producer that claimed but has not pushed yet; callers pair it with a
  /// round-completion predicate (see header comment).
  bool quiescent() const {
    return pushed_.load(std::memory_order_acquire) == applied_;
  }

  std::uint64_t pushed() const {
    return pushed_.load(std::memory_order_relaxed);
  }
  std::uint64_t applied() const { return applied_; }
  std::uint64_t ring_full_fallbacks() const {
    return ring_full_.load(std::memory_order_relaxed);
  }

 private:
  common::MpscRing<ReadyOp> ring_;
  mutable common::Mutex mu_{"runtime.shard"};
  std::vector<ReadyOp> overflow_ PARTIB_GUARDED_BY(mu_);
  std::atomic<std::uint64_t> pushed_{0};
  std::atomic<std::uint64_t> ring_full_{0};
  std::uint64_t applied_ = 0;  // bridge-thread-only
};

}  // namespace partib::runtime
