// Real-time bridge: pumping the DES engine against live producer threads.
//
// The thread that owns the sim::Engine is the bridge.  Virtual time only
// advances when the bridge dispatches events, and producer claims only
// become DES work when the bridge drains the shard rings — so the bridge
// alternates the two via Engine::run_pumped until a caller-supplied
// round-completion predicate holds AND the runtime is quiescent AND the
// event queue is dry.  Determinism note (docs/THREADING.md): virtual
// time is decoupled from wall time, so *when* the bridge picks claims up
// does not change what the fabric computes — only the interleaving of
// claim arrivals, which the differential harness shows is invariant in
// received bytes and completion sets.
//
// When nothing was drained and nothing dispatched, the bridge yields the
// core to the producers (this repo's CI runs single-core) instead of
// spinning on the cache-hot quiescence counters.
#pragma once

#include <cstddef>
#include <functional>
#include <thread>

#include "runtime/sharded_engine.hpp"
#include "sim/engine.hpp"

namespace partib::runtime {

/// Pump `engine` until `done()` holds with `runtime` quiescent and no
/// events pending.  Returns the number of DES events dispatched.
inline std::size_t pump_until(sim::Engine& engine,
                              ShardedProgressEngine& runtime,
                              const std::function<bool()>& done) {
  return engine.run_pumped([&] {
    const std::size_t applied = runtime.drain();
    if (done() && runtime.quiescent() && engine.empty()) return false;
    if (applied == 0) std::this_thread::yield();
    return true;
  });
}

}  // namespace partib::runtime
