// The transport concept: what the verbs layer consumes from a backend.
//
// partib::verbs was kept ibverbs-shaped on purpose (DESIGN.md §2): the
// Device/Pd/Qp/Cq/Srq object model and the WR/CQE contracts never mention
// the simulator.  This interface cashes that in — it is the *entire*
// surface the verbs layer (and mpi::World's control plane) needs from a
// transport, extracted from fabric::Fabric:
//
//   * post_rdma_write: accept one RdmaOp and eventually run exactly one of
//     its completion paths (see fabric/rdma_op.hpp), preserving per-QP
//     post order;
//   * send_control: out-of-band small-message plane for connection setup
//     and init matching;
//   * the fault plane (fabric/fault.hpp): a seed-driven FaultPlan plus the
//     QP-chain error/reset hooks driven by verbs::Qp recovery;
//   * bookkeeping: node allocation, stats, MTU segmentation accounting.
//
// Implementations:
//   * fabric::Fabric       — discrete-event fluid-network transport; the
//                            oracle every other backend is differentially
//                            tested against (tests/backend/).
//   * backend::ShmTransport — real-time shared-memory transport: per-peer
//                            lock-free rings, real threads, monotonic
//                            clock (backend/shm/).
//   * backend::IbvTransport — compile-time stub for real libibverbs
//                            (backend/ibv/, -DPARTIB_WITH_IBVERBS=ON).
//
// Threading contract: post_rdma_write and the QP-chain hooks are called
// from the thread that owns the posting QP; the callbacks of an op are
// run on the thread that owns the object they touch (sender-side
// callbacks on the poster's thread, move_data/on_recv_complete on the
// destination node's progress thread).  Single-threaded drivers satisfy
// this trivially; the DES backend runs everything on the engine thread.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string_view>

#include "fabric/fault.hpp"
#include "fabric/rdma_op.hpp"

namespace partib::fabric {
class TraceSink;
}  // namespace partib::fabric

namespace partib::backend {

class Transport {
 public:
  virtual ~Transport() = default;

  /// Short transport kind tag ("des-fluid", "shm-ring", "ibv"), used in
  /// diagnostics and bench CSV metadata.
  virtual std::string_view kind() const = 0;

  // -- topology --------------------------------------------------------------
  virtual fabric::NodeId add_node() = 0;
  virtual int node_count() const = 0;

  /// When false the transport skips payload memcpy (benchmark mode: only
  /// the timeline matters).  Integrity tests run with true.
  virtual bool copies_data() const = 0;

  // -- data plane ------------------------------------------------------------
  /// Post an RDMA write (with or without immediate).  Per-QP post order is
  /// preserved end to end; ops on distinct QPs may interleave freely.
  virtual void post_rdma_write(fabric::RdmaOp op) = 0;

  /// Deliver a small out-of-band control message (QP exchange, match
  /// handshake).  `deliver` runs on the destination node.
  virtual void send_control(fabric::NodeId src, fabric::NodeId dst,
                            std::function<void()> deliver) = 0;

  /// Aggregate transport counters.  Real-time transports aggregate
  /// node-local counters on each call; read at quiescence for exact
  /// totals.
  virtual const fabric::FabricStats& stats() const = 0;

  /// Wire bytes for a payload of `bytes` after MTU segmentation.
  virtual std::size_t wire_bytes_for(std::size_t bytes) const = 0;

  // -- fault plane (fabric/fault.hpp) ----------------------------------------
  /// Install a fault plan.  Must be called before the first post; a plan
  /// with every rate at zero is free (the post path never consults it).
  virtual void set_fault_plan(const fabric::FaultPlan& plan) = 0;
  virtual const fabric::FaultPlan& fault_plan() const = 0;

  /// Test hook: force the QP's send context into the error state *now*.
  /// The op currently on the wire (if any) still completes — the error is
  /// in the QP context, not the link — but every op posted afterwards
  /// fails with OpFailure::kFlushed in post order.  Recovery requires
  /// reset_qp_chain() (driven by verbs::Qp::to_reset).
  virtual void inject_qp_error(std::uint64_t src_qp) = 0;

  /// True while the QP's chain is wedged in the error state.
  virtual bool qp_chain_errored(std::uint64_t src_qp) = 0;

  /// Recovery: clear the error mark so the chain accepts work again.  The
  /// chain must be fully drained (every flush delivered).
  virtual void reset_qp_chain(std::uint64_t src_qp) = 0;

  // -- optional --------------------------------------------------------------
  /// Attach (or detach, with nullptr) a per-operation trace sink
  /// (fabric/trace.hpp).  Transports without tracing ignore the call;
  /// trace() then stays nullptr.
  virtual void set_trace(fabric::TraceSink* sink) { (void)sink; }
  virtual fabric::TraceSink* trace() { return nullptr; }
};

}  // namespace partib::backend
