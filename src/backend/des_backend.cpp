#include "backend/des_backend.hpp"

namespace partib::backend {

DesBackend::DesBackend(const Config& config)
    : engine_(), fabric_(engine_, config.nic, config.copy_data) {
  if (config.faults.enabled()) {
    fabric_.set_fault_plan(fabric::FaultPlan(config.faults));
  }
}

}  // namespace partib::backend
