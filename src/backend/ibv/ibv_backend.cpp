#if defined(PARTIB_WITH_IBVERBS)

#include "backend/ibv/ibv_backend.hpp"

#include <infiniband/verbs.h>

#include "common/clock.hpp"
#include "common/diag.hpp"

namespace partib::backend {
namespace {

/// Minimal Transport over libibverbs.  Device discovery works; the data
/// plane is stubbed pending a real QP/CM bring-up (the simulated backends
/// carry the paper's experiments — this proves the interface boundary
/// compiles against the real API).
class IbvTransport final : public Transport {
 public:
  IbvTransport() {
    int num = 0;
    ibv_device** list = ibv_get_device_list(&num);
    if (list != nullptr) {
      devices_ = num;
      ibv_free_device_list(list);
    }
  }

  std::string_view kind() const override { return "ibv"; }
  fabric::NodeId add_node() override { return nodes_++; }
  int node_count() const override { return nodes_; }
  bool copies_data() const override { return true; }

  void post_rdma_write(fabric::RdmaOp op) override {
    unimplemented("post_rdma_write");
    if (op.on_failed) op.on_failed(0, fabric::OpFailure::kFlushed);
  }
  void send_control(fabric::NodeId, fabric::NodeId,
                    std::function<void()>) override {
    unimplemented("send_control");
  }
  const fabric::FabricStats& stats() const override { return stats_; }
  std::size_t wire_bytes_for(std::size_t bytes) const override {
    return bytes;
  }
  void set_fault_plan(const fabric::FaultPlan& plan) override {
    plan_ = plan;
  }
  const fabric::FaultPlan& fault_plan() const override { return plan_; }
  void inject_qp_error(std::uint64_t) override {}
  bool qp_chain_errored(std::uint64_t) override { return false; }
  void reset_qp_chain(std::uint64_t) override {}

  int devices() const { return devices_; }

 private:
  static void unimplemented(const char* what) {
    Diagnostic d;
    d.rule = "backend.ibv.unimplemented";
    d.object = what;
    d.detail = "ibv backend is a compile-time stub; use des or shm";
    diag_fail(d);
  }

  int nodes_ = 0;
  int devices_ = 0;
  fabric::FabricStats stats_;
  fabric::FaultPlan plan_;
};

class IbvBackend final : public Backend {
 public:
  explicit IbvBackend(const Config&) : epoch_(common::mono_now()) {}

  std::string_view name() const override { return "ibv"; }
  Transport& transport() override { return transport_; }
  sim::Engine& engine() override { return engine_; }
  bool real_time() const override { return true; }
  Time now() override { return common::mono_now() - epoch_; }
  void progress() override { engine_.run_until(now()); }
  std::size_t run_until_idle() override { return engine_.run_until(now()); }

 private:
  sim::Engine engine_;
  IbvTransport transport_;
  Time epoch_;
};

}  // namespace

std::unique_ptr<Backend> make_ibv_backend(const Config& config) {
  return std::make_unique<IbvBackend>(config);
}

}  // namespace partib::backend

#endif  // PARTIB_WITH_IBVERBS
