// Hardware verbs backend stub (compile-gated).
//
// Built only with -DPARTIB_WITH_IBVERBS=ON, which requires libibverbs
// headers on the build host; the default build ships without it and
// make_backend("ibv") then reports an unknown backend.  The stub exists
// to pin down the integration surface — everything a real port needs is
// already expressed by backend::Transport + backend::Backend, and the
// conformance suite (tests/backend/) is the acceptance test a real
// implementation must pass.  See docs/BACKENDS.md §ibv for the mapping
// (Transport::post_rdma_write -> ibv_post_send, send_control -> RDMA_CM
// or a bootstrap TCP exchange, progress -> ibv_poll_cq).
#pragma once

#if defined(PARTIB_WITH_IBVERBS)

#include <memory>

#include "backend/backend.hpp"

namespace partib::backend {

/// Construct the hardware verbs backend.  The current stub aborts with a
/// structured diagnostic on first use of the data plane: it compiles
/// against real libibverbs (proving the interface maps) but the container
/// environments this repo targets have no RDMA devices to open.
std::unique_ptr<Backend> make_ibv_backend(const Config& config);

}  // namespace partib::backend

#endif  // PARTIB_WITH_IBVERBS
