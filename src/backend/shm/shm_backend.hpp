// The real-time shared-memory backend.
//
// Pairs a ShmTransport (backend/shm/shm_transport.hpp) with a sim::Engine
// reused as a *timer substrate*: the part layer's δ timers, zero-delay
// chains and host-cost resources are scheduled on the engine exactly as
// under DES, but here the engine's clock is slaved to the monotonic clock
// — every progress pass runs engine.run_until(mono_elapsed) and then
// polls the shm rings.  Elapsed nanoseconds are real nanoseconds; nothing
// is simulated.
//
// Threading: this backend is a single-driver real-time pump — one thread
// owns the engine, all verbs objects and every node's progress (the
// Transport threading contract collapses to that thread).  Multi-threaded
// operation exercises the ShmTransport directly, one owner thread per
// node (tests/backend/shm_transport_test.cpp); the engine is not
// thread-safe and does not cross that line.
#pragma once

#include "backend/backend.hpp"
#include "backend/shm/shm_transport.hpp"
#include "sim/engine.hpp"

namespace partib::backend {

class ShmBackend final : public Backend {
 public:
  explicit ShmBackend(const Config& config);

  std::string_view name() const override { return "shm"; }
  Transport& transport() override { return transport_; }
  sim::Engine& engine() override { return engine_; }
  bool real_time() const override { return true; }
  Time now() override { return transport_.now(); }
  void progress() override;
  std::size_t run_until_idle() override;

  ShmTransport& shm() { return transport_; }

 private:
  sim::Engine engine_;
  ShmTransport transport_;
  Duration idle_backoff_;
};

}  // namespace partib::backend
