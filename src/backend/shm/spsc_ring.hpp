// Bounded lock-free SPSC ring for the shared-memory transport.
//
// The shm data plane is a matrix of point-to-point channels: for every
// (src, dst) node pair, exactly one producer thread (src's owner) pushes
// and exactly one consumer thread (dst's owner) pops, so the classic
// two-index SPSC layout applies — no CAS anywhere, one release store per
// side.  Contrast common/mpsc_ring.hpp (Vyukov bounded queue), which pays
// a tail CAS to admit N producers; here the pairing is fixed by
// construction so the cheaper shape is correct.
//
// Memory-order contract: the producer's release store of tail_ publishes
// the slot payload to the consumer's acquire load; symmetrically the
// consumer's release store of head_ returns the slot to the producer.
// TSan verifies both edges in tests/backend/shm_transport_test.cpp.
//
// T must be trivially copyable — the transport moves OpRec pointers, not
// ops; payload ownership stays with the producing node's slab.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <type_traits>

#include "common/bits.hpp"

namespace partib::backend {

template <typename T>
class SpscRing {
  static_assert(std::is_trivially_copyable_v<T>,
                "SpscRing hands slots off by value between threads");

 public:
  explicit SpscRing(std::size_t capacity)
      : mask_(next_pow2(capacity < 2 ? 2 : capacity) - 1),
        buf_(std::make_unique<T[]>(mask_ + 1)) {}

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  std::size_t capacity() const { return mask_ + 1; }

  // -- producer side ---------------------------------------------------------
  /// False when the ring is full; never blocks.
  bool try_push(const T& value) {
    const std::size_t t = tail_.load(std::memory_order_relaxed);
    if (t - head_.load(std::memory_order_acquire) > mask_) return false;
    buf_[t & mask_] = value;
    tail_.store(t + 1, std::memory_order_release);
    return true;
  }

  /// Free slots right now (producer-side view; only grows concurrently).
  std::size_t space() const {
    return capacity() - (tail_.load(std::memory_order_relaxed) -
                         head_.load(std::memory_order_acquire));
  }

  // -- consumer side ---------------------------------------------------------
  /// Oldest element, or nullptr when empty.  Valid until pop_front().
  const T* front() const {
    const std::size_t h = head_.load(std::memory_order_relaxed);
    if (tail_.load(std::memory_order_acquire) == h) return nullptr;
    return &buf_[h & mask_];
  }

  /// Retire the element returned by front().
  void pop_front() {
    head_.store(head_.load(std::memory_order_relaxed) + 1,
                std::memory_order_release);
  }

  bool try_pop(T* out) {
    const T* f = front();
    if (f == nullptr) return false;
    *out = *f;
    pop_front();
    return true;
  }

 private:
  const std::size_t mask_;
  std::unique_ptr<T[]> buf_;
  // Producer owns tail_, consumer owns head_; separate cache lines so
  // neither side's store traffic invalidates the other's index line.
  alignas(64) std::atomic<std::size_t> tail_{0};
  alignas(64) std::atomic<std::size_t> head_{0};
};

}  // namespace partib::backend
