#include "backend/shm/shm_transport.hpp"

#include <utility>

#include "common/assert.hpp"
#include "common/bits.hpp"

namespace partib::backend {

ShmTransport::ShmTransport(ShmTransportOptions options)
    : params_(options.nic),
      copy_data_(options.copy_data),
      ring_capacity_(options.ring_capacity),
      epoch_(common::mono_now()),
      chains_mu_("backend.shm.chains") {}

ShmTransport::~ShmTransport() = default;

fabric::NodeId ShmTransport::add_node() {
  const auto id = static_cast<fabric::NodeId>(nodes_.size());
  auto node = std::make_unique<NodeState>();
  node->ctrl_mu = std::make_unique<common::Mutex>("backend.shm.ctrl");
  nodes_.push_back(std::move(node));
  // Extend the channel matrix: one new row, one new column.  Setup phase
  // only — see the header contract.
  channels_.emplace_back();
  for (std::size_t src = 0; src < channels_.size(); ++src) {
    while (channels_[src].size() < nodes_.size()) {
      channels_[src].push_back(std::make_unique<PairChannel>(ring_capacity_));
    }
  }
  for (auto& n : nodes_) {
    while (n->staged.size() < nodes_.size()) n->staged.emplace_back();
  }
  return id;
}

ShmTransport::NodeState& ShmTransport::node_state(fabric::NodeId id) {
  PARTIB_ASSERT(id >= 0 && id < node_count());
  return *nodes_[static_cast<std::size_t>(id)];
}

std::size_t ShmTransport::wire_bytes_for(std::size_t bytes) const {
  const std::size_t segments =
      bytes == 0 ? 1 : ceil_div(bytes, params_.mtu);
  return bytes + segments * params_.segment_header_bytes;
}

ShmTransport::OpRec* ShmTransport::acquire_rec(NodeState& node,
                                               fabric::RdmaOp&& op) {
  OpRec* rec;
  if (!node.free.empty()) {
    rec = node.free.back();
    node.free.pop_back();
  } else {
    node.slab.emplace_back();
    rec = &node.slab.back();
  }
  rec->op = std::move(op);
  rec->not_before = 0;
  return rec;
}

void ShmTransport::release_rec(NodeState& node, OpRec* rec) {
  rec->op = fabric::RdmaOp{};  // drop closures (they hold captures)
  node.free.push_back(rec);
}

void ShmTransport::fail_locally(NodeState& node, OpRec* rec,
                                fabric::OpFailure failure, Time now) {
  node.failed_ops.fetch_add(1, std::memory_order_relaxed);
  node.fails.push_back(
      {rec, now + fault_plan_.config().fail_latency, failure});
}

void ShmTransport::post_rdma_write(fabric::RdmaOp op) {
  const Time t = now();
  NodeState& src = node_state(op.src);
  PARTIB_ASSERT(op.dst >= 0 && op.dst < node_count());
  const fabric::NodeId dst = op.dst;
  const std::uint64_t src_qp = op.src_qp;

  src.rdma_ops.fetch_add(1, std::memory_order_relaxed);
  src.payload_bytes.fetch_add(op.bytes, std::memory_order_relaxed);
  src.wire_bytes.fetch_add(wire_bytes_for(op.bytes),
                           std::memory_order_relaxed);
  outstanding_.fetch_add(1, std::memory_order_relaxed);

  // Chain error state first: a wedged QP flushes everything posted to it,
  // fault plan or not (matches the DES fabric and real QP error
  // semantics).
  {
    common::MutexLock lock(chains_mu_);
    if (chains_[src_qp].errored) {
      OpRec* rec = acquire_rec(src, std::move(op));
      fail_locally(src, rec, fabric::OpFailure::kFlushed, t);
      return;
    }
  }

  fabric::FaultDecision decision;
  if (fault_plan_.enabled()) {
    decision =
        fault_plan_.decide(fault_ordinal_.fetch_add(1,
                                                    std::memory_order_relaxed));
  }
  if (decision.kind != fabric::FaultKind::kNone) {
    src.faults_injected.fetch_add(1, std::memory_order_relaxed);
  }

  OpRec* rec = acquire_rec(src, std::move(op));
  rec->not_before = t;
  switch (decision.kind) {
    case fabric::FaultKind::kNone:
      break;
    case fabric::FaultKind::kDelay:
      rec->not_before = t + decision.delay;
      break;
    case fabric::FaultKind::kDrop:
      // Each lost transfer costs one RC ACK-timeout backoff before the
      // retransmission goes through.
      rec->not_before =
          t + static_cast<Time>(decision.drops) *
                  fault_plan_.config().retransmit_delay;
      src.retransmits.fetch_add(decision.drops, std::memory_order_relaxed);
      break;
    case fabric::FaultKind::kRnrNak:
      fail_locally(src, rec, fabric::OpFailure::kRnrRetryExceeded, t);
      return;
    case fabric::FaultKind::kRetryExceeded:
      fail_locally(src, rec, fabric::OpFailure::kRetryExceeded, t);
      return;
    case fabric::FaultKind::kQpFlush: {
      {
        common::MutexLock lock(chains_mu_);
        chains_[src_qp].errored = true;
      }
      fail_locally(src, rec, fabric::OpFailure::kFlushed, t);
      return;
    }
  }

  // Stage, then opportunistically push to the wire ring.  The staged
  // queue is FIFO per destination, so ring-full backpressure never
  // reorders a QP's ops.
  auto& staged = src.staged[static_cast<std::size_t>(dst)];
  staged.push_back(rec);
  SpscRing<OpRec*>& wire =
      channels_[static_cast<std::size_t>(rec->op.src)]
               [static_cast<std::size_t>(dst)]
                   ->wire;
  while (!staged.empty() && wire.try_push(staged.front())) {
    staged.pop_front();
  }
}

void ShmTransport::send_control(fabric::NodeId src, fabric::NodeId dst,
                                std::function<void()> deliver) {
  NodeState& s = node_state(src);
  NodeState& d = node_state(dst);
  s.control_msgs.fetch_add(1, std::memory_order_relaxed);
  outstanding_.fetch_add(1, std::memory_order_relaxed);
  common::MutexLock lock(*d.ctrl_mu);
  d.ctrl.push_back(std::move(deliver));
}

void ShmTransport::set_fault_plan(const fabric::FaultPlan& plan) {
  PARTIB_ASSERT_MSG(outstanding_.load(std::memory_order_relaxed) == 0,
                    "fault plan must be installed before the first post");
  fault_plan_ = plan;
}

void ShmTransport::inject_qp_error(std::uint64_t src_qp) {
  common::MutexLock lock(chains_mu_);
  chains_[src_qp].errored = true;
}

bool ShmTransport::qp_chain_errored(std::uint64_t src_qp) {
  common::MutexLock lock(chains_mu_);
  auto it = chains_.find(src_qp);
  return it != chains_.end() && it->second.errored;
}

void ShmTransport::reset_qp_chain(std::uint64_t src_qp) {
  common::MutexLock lock(chains_mu_);
  chains_[src_qp].errored = false;
}

std::size_t ShmTransport::progress_node(fabric::NodeId id, Time now) {
  NodeState& node = node_state(id);
  std::size_t actions = 0;

  // 1. Due local failures, in post order.
  while (!node.fails.empty() && node.fails.front().due <= now) {
    PendingFail pf = node.fails.front();
    node.fails.pop_front();
    if (pf.rec->op.on_failed) pf.rec->op.on_failed(now, pf.failure);
    release_rec(node, pf.rec);
    outstanding_.fetch_sub(1, std::memory_order_relaxed);
    ++actions;
  }

  // 2. Drain staged ops onto wire rings as space frees up.
  for (std::size_t dst = 0; dst < node.staged.size(); ++dst) {
    auto& staged = node.staged[dst];
    if (staged.empty()) continue;
    SpscRing<OpRec*>& wire =
        channels_[static_cast<std::size_t>(id)][dst]->wire;
    while (!staged.empty() && wire.try_push(staged.front())) {
      staged.pop_front();
      ++actions;
    }
  }

  // 3. Deliver due inbound ops (we are the destination).  FIFO per ring:
  // a not-yet-due head blocks the ops behind it (per-QP order).  Delivery
  // needs an ack slot up front so a delivered op can always start its
  // trip home.
  for (std::size_t src = 0; src < channels_.size(); ++src) {
    PairChannel& ch = *channels_[src][static_cast<std::size_t>(id)];
    for (;;) {
      OpRec* const* head = ch.wire.front();
      if (head == nullptr) break;
      OpRec* rec = *head;
      if (rec->not_before > now) break;
      if (ch.ack.space() == 0) break;
      ch.wire.pop_front();
      if (rec->op.move_data) rec->op.move_data();
      if (rec->op.on_recv_complete) rec->op.on_recv_complete(now);
      const bool pushed = ch.ack.try_push(rec);
      PARTIB_ASSERT(pushed);
      ++actions;
    }
  }

  // 4. Drain acks (we are the poster): raise send CQEs, recycle records.
  for (std::size_t dst = 0; dst < channels_.size(); ++dst) {
    PairChannel& ch = *channels_[static_cast<std::size_t>(id)][dst];
    OpRec* rec = nullptr;
    while (ch.ack.try_pop(&rec)) {
      if (rec->op.on_send_complete) rec->op.on_send_complete(now);
      release_rec(node, rec);
      outstanding_.fetch_sub(1, std::memory_order_relaxed);
      ++actions;
    }
  }

  // 5. Control mailbox.  Swap out under the lock, run outside it — a
  // control handler may send more control (connection setup chains).
  std::deque<std::function<void()>> batch;
  {
    common::MutexLock lock(*node.ctrl_mu);
    batch.swap(node.ctrl);
  }
  for (auto& fn : batch) {
    fn();
    outstanding_.fetch_sub(1, std::memory_order_relaxed);
    ++actions;
  }

  return actions;
}

std::size_t ShmTransport::progress_all(Time now) {
  std::size_t actions = 0;
  for (int i = 0; i < node_count(); ++i) actions += progress_node(i, now);
  return actions;
}

bool ShmTransport::idle() const {
  return outstanding_.load(std::memory_order_acquire) == 0;
}

const fabric::FabricStats& ShmTransport::stats() const {
  fabric::FabricStats s;
  for (const auto& n : nodes_) {
    s.rdma_ops += n->rdma_ops.load(std::memory_order_relaxed);
    s.control_msgs += n->control_msgs.load(std::memory_order_relaxed);
    s.payload_bytes += n->payload_bytes.load(std::memory_order_relaxed);
    s.wire_bytes += n->wire_bytes.load(std::memory_order_relaxed);
    s.faults_injected += n->faults_injected.load(std::memory_order_relaxed);
    s.retransmits += n->retransmits.load(std::memory_order_relaxed);
    s.failed_ops += n->failed_ops.load(std::memory_order_relaxed);
  }
  agg_stats_ = s;
  return agg_stats_;
}

}  // namespace partib::backend
