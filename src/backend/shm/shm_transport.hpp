// Real-time shared-memory transport (backend::Transport contract).
//
// Where the DES fabric simulates a wire in virtual time, this transport
// moves the same RdmaOps between threads of one process in real time:
//
//   * every node has an owner thread (or one driver thread owns them all —
//     the single-threaded pump the conformance suite uses);
//   * for each (src, dst) pair there is one SPSC wire ring carrying
//     OpRec pointers in post order, and one reverse ack ring returning
//     delivered records to the poster;
//   * an op record lives in its source node's slab (stable addresses,
//     owner-thread alloc/free), so cross-thread hand-off is exactly one
//     pointer through a ring in each direction;
//   * delivery runs on the destination's thread: move_data() (the actual
//     memcpy into the target MR) then on_recv_complete(now); the ack trip
//     home then runs on_send_complete(now) on the poster's thread —
//     matching the Transport threading contract, and real ibverbs, where
//     the remote CQE and the local CQE are raised by different HCAs.
//
// Ordering: per-QP post order is preserved because a QP's ops all ride
// one wire ring (a QP connects one node pair) and delivery is strictly
// FIFO per ring — an op held back by a fault decision (`not_before`)
// blocks the ops behind it rather than overtaking.  Failed ops complete
// from the poster's timed-failure queue instead and may interleave with
// later successes on other QPs; exactly-one-completion-per-op holds
// always (the invariant the lifecycle fuzzer asserts).
//
// Fault plane: the same seed-driven FaultPlan the DES fabric consumes
// (fabric/fault.hpp) — decide(ordinal) with a shared atomic ordinal.
// kDelay/kDrop become real-time delivery holds (drops cost
// drops × retransmit_delay, counted as retransmits); kRnrNak /
// kRetryExceeded / kQpFlush fail the op on the poster's thread after
// fail_latency, and kQpFlush wedges the QP chain so every later post
// flushes until reset_qp_chain(), exactly as on the DES backend.
//
// Time is common::mono_now() normalised to construction (ns since
// transport start).  Nothing here touches the sim::Engine: timers stay
// the backend's concern (backend/shm/shm_backend.hpp).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "backend/shm/spsc_ring.hpp"
#include "backend/transport.hpp"
#include "common/clock.hpp"
#include "common/mutex.hpp"
#include "fabric/nic_params.hpp"

namespace partib::backend {

struct ShmTransportOptions {
  fabric::NicParams nic = fabric::NicParams::connectx5_edr();
  bool copy_data = true;
  /// Capacity (records) of each per-pair wire/ack ring.
  std::size_t ring_capacity = 1024;
};

class ShmTransport final : public Transport {
 public:
  explicit ShmTransport(ShmTransportOptions options);
  ~ShmTransport() override;

  std::string_view kind() const override { return "shm-ring"; }

  /// Topology is fixed before communication starts: add_node is part of
  /// world construction (single-threaded setup phase) and must not race
  /// with posts or progress.
  fabric::NodeId add_node() override;
  int node_count() const override { return static_cast<int>(nodes_.size()); }

  bool copies_data() const override { return copy_data_; }

  /// Called from the thread that owns op.src.
  void post_rdma_write(fabric::RdmaOp op) override;

  /// Callable from any thread; `deliver` runs on dst's owner thread during
  /// its next progress pass.
  void send_control(fabric::NodeId src, fabric::NodeId dst,
                    std::function<void()> deliver) override;

  /// Aggregates node-local counters on every call; totals are exact only
  /// at quiescence (idle() true, no concurrent posters).
  const fabric::FabricStats& stats() const override;

  std::size_t wire_bytes_for(std::size_t bytes) const override;

  void set_fault_plan(const fabric::FaultPlan& plan) override;
  const fabric::FaultPlan& fault_plan() const override { return fault_plan_; }

  void inject_qp_error(std::uint64_t src_qp) override;
  bool qp_chain_errored(std::uint64_t src_qp) override;
  void reset_qp_chain(std::uint64_t src_qp) override;

  // -- progress (not part of the Transport interface) ------------------------
  /// Nanoseconds since transport construction on the monotonic clock.
  Time now() const { return common::mono_now() - epoch_; }

  /// One progress pass for `node`, on its owner thread: fire due local
  /// failures, stage ops onto wire rings, deliver due inbound ops, drain
  /// acks and control.  Returns the number of actions taken (0 = idle
  /// pass).
  std::size_t progress_node(fabric::NodeId node, Time now);

  /// Single-driver convenience: progress every node once.
  std::size_t progress_all(Time now);

  /// True when no op, ack, failure or control message is outstanding
  /// anywhere.  Exact only when the callers' threads are quiescent or the
  /// single driver thread is the one asking.
  bool idle() const;

 private:
  /// One in-flight op.  Lives in the source node's slab; the pointer does
  /// a round trip src → wire ring → dst (deliver) → ack ring → src (send
  /// CQE + free).  `not_before` serialises fault holds into the FIFO.
  struct OpRec {
    fabric::RdmaOp op;
    Time not_before = 0;
  };

  struct PendingFail {
    OpRec* rec;
    Time due;
    fabric::OpFailure failure;
  };

  /// One direction of one node pair.
  struct PairChannel {
    explicit PairChannel(std::size_t cap) : wire(cap), ack(cap) {}
    SpscRing<OpRec*> wire;  ///< src → dst: ops in post order
    SpscRing<OpRec*> ack;   ///< dst → src: delivered, going home
  };

  /// Everything owned by one node's thread, plus its inbound mailboxes.
  struct NodeState {
    // Owner-thread-only record slab: deque for stable addresses, free
    // list for reuse.  Never touched by other threads except through
    // ring-published pointers.
    std::deque<OpRec> slab;
    std::vector<OpRec*> free;
    /// Ops failing locally (RNR / retry-exceeded / flush), FIFO by due
    /// time (post order; due = post + fail_latency is monotone per
    /// thread).
    std::deque<PendingFail> fails;
    /// Ops accepted by post but not yet pushed to the wire ring
    /// (ring-full backpressure); indexed by dst.  Owner thread only.
    std::vector<std::deque<OpRec*>> staged;
    /// Inbound control mailbox (any producer, owner-thread consumer).
    std::unique_ptr<common::Mutex> ctrl_mu;
    std::deque<std::function<void()>> ctrl;
    // Node-local counters (owner-thread writes, relaxed); stats()
    // aggregates across nodes.
    std::atomic<std::uint64_t> rdma_ops{0};
    std::atomic<std::uint64_t> control_msgs{0};
    std::atomic<std::uint64_t> payload_bytes{0};
    std::atomic<std::uint64_t> wire_bytes{0};
    std::atomic<std::uint64_t> faults_injected{0};
    std::atomic<std::uint64_t> retransmits{0};
    std::atomic<std::uint64_t> failed_ops{0};
  };

  struct ChainState {
    bool errored = false;
  };

  OpRec* acquire_rec(NodeState& node, fabric::RdmaOp&& op);
  void release_rec(NodeState& node, OpRec* rec);
  NodeState& node_state(fabric::NodeId id);
  /// Queue a local failure for `rec` (owner == poster thread).
  void fail_locally(NodeState& node, OpRec* rec, fabric::OpFailure failure,
                    Time now);

  const fabric::NicParams params_;
  const bool copy_data_;
  const std::size_t ring_capacity_;
  const Time epoch_;

  // Grown only during single-threaded setup (add_node).
  std::vector<std::unique_ptr<NodeState>> nodes_;
  std::vector<std::vector<std::unique_ptr<PairChannel>>> channels_;

  fabric::FaultPlan fault_plan_;
  std::atomic<std::uint64_t> fault_ordinal_{0};

  /// Live ops + queued failures + undelivered control messages.
  std::atomic<std::int64_t> outstanding_{0};

  /// QP chain error states.  Guarded: posts from different node threads
  /// and test-thread inject/reset all take the mutex; the map is tiny and
  /// the shm path is not the perf-gated one.
  mutable common::Mutex chains_mu_;
  std::unordered_map<std::uint64_t, ChainState> chains_;

  mutable fabric::FabricStats agg_stats_;
};

}  // namespace partib::backend
