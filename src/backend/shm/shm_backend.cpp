#include "backend/shm/shm_backend.hpp"

#include <ctime>

#include "common/diag.hpp"

namespace partib::backend {
namespace {

ShmTransportOptions transport_options(const Config& config) {
  ShmTransportOptions o;
  o.nic = config.nic;
  o.copy_data = config.copy_data;
  o.ring_capacity = config.shm_ring_capacity;
  return o;
}

void backoff_sleep(Duration d) {
  if (d <= 0) return;  // spin
  timespec ts;
  ts.tv_sec = static_cast<time_t>(d / kSecond);
  ts.tv_nsec = static_cast<long>(d % kSecond);
  nanosleep(&ts, nullptr);
}

}  // namespace

ShmBackend::ShmBackend(const Config& config)
    : transport_(transport_options(config)),
      idle_backoff_(config.shm_idle_backoff) {
  if (config.faults.enabled()) {
    transport_.set_fault_plan(fabric::FaultPlan(config.faults));
  }
}

void ShmBackend::progress() {
  const Time t = now();
  // Publish real elapsed time to the diagnostics clock so structured
  // diagnostics raised from shm progress carry a timestamp, mirroring
  // what engine dispatch does for DES callbacks.
  diag_set_time(t);
  engine_.run_until(t);
  transport_.progress_all(t);
}

std::size_t ShmBackend::run_until_idle() {
  std::size_t dispatched = 0;
  for (;;) {
    const Time t = now();
    diag_set_time(t);
    dispatched += engine_.run_until(t);
    const std::size_t moved = transport_.progress_all(t);
    if (engine_.empty() && transport_.idle()) break;
    // Pending but nothing due yet (a future timer or a fault hold):
    // real time has to pass, so yield rather than burn the core.
    if (moved == 0) backoff_sleep(idle_backoff_);
  }
  return dispatched;
}

}  // namespace partib::backend
