// The backend concept: a transport plus its progress discipline.
//
// A Transport (backend/transport.hpp) answers "how do bytes move"; a
// Backend answers "who advances time and pumps completions".  The two are
// deliberately separate because the progress models differ in kind:
//
//   des  — the sim::Engine IS the clock.  run_until_idle() dispatches the
//          event queue in virtual time; nothing ever waits on the wall
//          clock.  Deterministic; the oracle for every other backend.
//   shm  — real time.  The same sim::Engine is reused as a *timer
//          substrate*: part-layer δ timers and host-cost charges are
//          scheduled on it as before, but progress() drives it with the
//          monotonic clock (engine.run_until(now())) and then polls the
//          shared-memory rings.  Nothing is simulated; elapsed
//          nanoseconds are real nanoseconds.
//   ibv  — hardware verbs stub (compile-gated; backend/ibv/).
//
// The part/agg/mpi layers construct their world through a Backend and
// call only engine() (timers) and transport() (ops) — which is what lets
// the conformance suite (tests/backend/) run the same test bodies over
// every registered backend, and the differential harness hold the shm
// data plane to the DES oracle's delivered bytes and completion sets.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "backend/transport.hpp"
#include "common/time.hpp"
#include "fabric/fault.hpp"
#include "fabric/nic_params.hpp"
#include "sim/engine.hpp"

namespace partib::backend {

/// Construction parameters shared by every backend.
struct Config {
  fabric::NicParams nic = fabric::NicParams::connectx5_edr();
  /// When false the transport skips payload memcpy (benchmark mode).
  bool copy_data = true;
  /// Deterministic fault injection (fabric/fault.hpp); all-zero rates are
  /// free on every backend.
  fabric::FaultPlanConfig faults{};
  /// shm: capacity (records) of each per-peer wire/ack ring.
  std::size_t shm_ring_capacity = 1024;
  /// shm: idle backoff before re-polling when a progress pass moved
  /// nothing and no timer is due (0 = spin).
  Duration shm_idle_backoff = usec(2);
};

class Backend {
 public:
  virtual ~Backend() = default;
  Backend() = default;
  Backend(const Backend&) = delete;
  Backend& operator=(const Backend&) = delete;

  /// Registry name ("des", "shm", "ibv").
  virtual std::string_view name() const = 0;

  /// The op surface the verbs layer posts through.
  virtual Transport& transport() = 0;

  /// The scheduling substrate: timers for the part layer, host-cost
  /// resources for mpi::Rank.  For the DES backend this engine is also
  /// the transport's clock; for real-time backends it is a timer queue
  /// driven by the monotonic clock.
  virtual sim::Engine& engine() = 0;

  /// True when Time is wall time (monotonic ns since backend start) and
  /// progress must be pumped; false when Time is virtual and
  /// deterministic.
  virtual bool real_time() const = 0;

  /// Current time on this backend's clock.
  virtual Time now() = 0;

  /// One progress pass: fire due timers, pump the transport.  Cheap when
  /// idle.  DES: dispatches at most one event (callers use
  /// run_until_idle for full drains).
  virtual void progress() = 0;

  /// Drive timers + transport until nothing is pending anywhere: no
  /// engine events, no in-flight ops, no undelivered control messages.
  /// Returns the number of engine events dispatched.  This is the
  /// backend-neutral spelling of the DES idiom `engine.run()`.
  virtual std::size_t run_until_idle() = 0;
};

using Factory = std::unique_ptr<Backend> (*)(const Config&);

/// Register a backend under `name`.  Called once per backend from this
/// library's registration path; re-registering a name replaces the
/// factory (tests use this to inject instrumented backends).
void register_backend(std::string_view name, Factory factory);

/// Construct a backend by name.  Unknown names return nullptr after
/// reporting a structured diagnostic listing what is registered.
std::unique_ptr<Backend> make_backend(std::string_view name,
                                      const Config& config = {});

/// Names in registration order ("des" first).  Compile-gated backends
/// (ibv) appear only when their support is built in.
std::vector<std::string> backend_names();

/// True when `name` is registered.
bool backend_registered(std::string_view name);

/// The session default: $PARTIB_BACKEND when set (and registered — an
/// unknown value aborts loudly), else "des".
std::string default_backend_name();

}  // namespace partib::backend
