// The discrete-event backend: sim::Engine + fabric::Fabric, exactly the
// stack every figure and test ran on before backends existed.  Progress
// is event dispatch; Time is virtual; the timeline is a deterministic
// function of the post sequence (and byte-identical to the
// pre-refactoring fingerprints — pinned by repro/figures_test.cpp and the
// fig08/fig10-11 md5 ctests).
#pragma once

#include <memory>

#include "backend/backend.hpp"
#include "fabric/fabric.hpp"
#include "sim/engine.hpp"

namespace partib::backend {

class DesBackend final : public Backend {
 public:
  explicit DesBackend(const Config& config);

  std::string_view name() const override { return "des"; }
  Transport& transport() override { return fabric_; }
  sim::Engine& engine() override { return engine_; }
  bool real_time() const override { return false; }
  Time now() override { return engine_.now(); }
  void progress() override { (void)engine_.step(); }
  std::size_t run_until_idle() override { return engine_.run(); }

  /// The concrete fabric, for DES-only consumers (trace sinks, fluid
  /// topology knobs).
  fabric::Fabric& fabric() { return fabric_; }

 private:
  sim::Engine engine_;
  fabric::Fabric fabric_;
};

}  // namespace partib::backend
