#include "backend/backend.hpp"

#include <cstdlib>
#include <utility>

#include "backend/des_backend.hpp"
#include "backend/shm/shm_backend.hpp"
#include "check/check.hpp"
#include "common/diag.hpp"
#include "common/env.hpp"
#include "common/log.hpp"

#if defined(PARTIB_WITH_IBVERBS)
#include "backend/ibv/ibv_backend.hpp"
#endif

namespace partib::backend {
namespace {

struct Entry {
  std::string name;
  Factory factory;
};

// Registration order defines backend_names() order; "des" is first so it
// is the documented default everywhere the list is shown.
std::vector<Entry>& registry() {
  static std::vector<Entry>* entries = [] {
    auto* e = new std::vector<Entry>();
    e->push_back({"des", [](const Config& cfg) -> std::unique_ptr<Backend> {
                    return std::make_unique<DesBackend>(cfg);
                  }});
    e->push_back({"shm", [](const Config& cfg) -> std::unique_ptr<Backend> {
                    return std::make_unique<ShmBackend>(cfg);
                  }});
#if defined(PARTIB_WITH_IBVERBS)
    e->push_back({"ibv", [](const Config& cfg) -> std::unique_ptr<Backend> {
                    return make_ibv_backend(cfg);
                  }});
#endif
    return e;
  }();
  return *entries;
}

std::string joined_names() {
  std::string out;
  for (const Entry& e : registry()) {
    if (!out.empty()) out += ", ";
    out += e.name;
  }
  return out;
}

}  // namespace

void register_backend(std::string_view name, Factory factory) {
  for (Entry& e : registry()) {
    if (e.name == name) {
      e.factory = factory;
      return;
    }
  }
  registry().push_back({std::string(name), factory});
}

std::unique_ptr<Backend> make_backend(std::string_view name,
                                      const Config& config) {
  for (const Entry& e : registry()) {
    if (e.name == name) return e.factory(config);
  }
  // Through the checker sink, not raw diag_emit: policy-aware (tests
  // count it silently under Policy::kCount) and recorded against the
  // registered rule id.
  const std::string requested(name);
  check::report("backend.unknown", requested.c_str(), /*rank=*/-1,
                "registered backends: " + joined_names());
  return nullptr;
}

std::vector<std::string> backend_names() {
  std::vector<std::string> names;
  names.reserve(registry().size());
  for (const Entry& e : registry()) names.push_back(e.name);
  return names;
}

bool backend_registered(std::string_view name) {
  for (const Entry& e : registry()) {
    if (e.name == name) return true;
  }
  return false;
}

std::string default_backend_name() {
  auto env = env_string("PARTIB_BACKEND");
  if (!env || env->empty()) return "des";
  if (!backend_registered(*env)) {
    PARTIB_WARN("backend: PARTIB_BACKEND='%s' is not registered (%s); abort",
                env->c_str(), joined_names().c_str());
    std::abort();
  }
  return *env;
}

}  // namespace partib::backend
