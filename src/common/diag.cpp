#include "common/diag.hpp"

#include <cstdio>
#include <cstdlib>
#include <cinttypes>

namespace partib {

void diag_emit(const Diagnostic& d) {
  char timebuf[24];
  if (d.vtime >= 0) {
    std::snprintf(timebuf, sizeof(timebuf), "%" PRId64 "ns",
                  static_cast<std::int64_t>(d.vtime));
  } else {
    std::snprintf(timebuf, sizeof(timebuf), "-");
  }
  char rankbuf[16];
  if (d.rank >= 0) {
    std::snprintf(rankbuf, sizeof(rankbuf), "%d", d.rank);
  } else {
    std::snprintf(rankbuf, sizeof(rankbuf), "-");
  }
  std::fprintf(stderr, "partib: diagnostic: rule=%s object=%s time=%s rank=%s %s",
               d.rule, d.object[0] ? d.object : "-", timebuf, rankbuf,
               d.detail);
  if (d.file != nullptr) std::fprintf(stderr, " [%s:%d]", d.file, d.line);
  std::fputc('\n', stderr);
}

void diag_fail(const Diagnostic& d) {
  diag_emit(d);
  std::abort();
}

}  // namespace partib
