#include "common/diag.hpp"

#include <cstdio>
#include <cstdlib>
#include <cinttypes>

namespace partib {

void diag_emit(const Diagnostic& d) {
  char timebuf[24];
  if (d.vtime >= 0) {
    std::snprintf(timebuf, sizeof(timebuf), "%" PRId64 "ns",
                  static_cast<std::int64_t>(d.vtime));
  } else {
    std::snprintf(timebuf, sizeof(timebuf), "-");
  }
  char rankbuf[16];
  if (d.rank >= 0) {
    std::snprintf(rankbuf, sizeof(rankbuf), "%d", d.rank);
  } else {
    std::snprintf(rankbuf, sizeof(rankbuf), "-");
  }
  // The whole diagnostic is formatted into one buffer and issued as a
  // single stdio call: parallel-runner workers emit concurrently, and
  // per-call stdio locking then guarantees lines never interleave
  // fragment-wise (a sequence of fprintf calls would).  Oversized details
  // truncate rather than split.
  char line[1024];
  int len;
  if (d.file != nullptr) {
    len = std::snprintf(line, sizeof(line),
                        "partib: diagnostic: rule=%s object=%s time=%s "
                        "rank=%s %s [%s:%d]\n",
                        d.rule, d.object[0] ? d.object : "-", timebuf, rankbuf,
                        d.detail, d.file, d.line);
  } else {
    len = std::snprintf(line, sizeof(line),
                        "partib: diagnostic: rule=%s object=%s time=%s "
                        "rank=%s %s\n",
                        d.rule, d.object[0] ? d.object : "-", timebuf, rankbuf,
                        d.detail);
  }
  if (len < 0) return;
  if (static_cast<std::size_t>(len) >= sizeof(line)) {
    line[sizeof(line) - 2] = '\n';
    len = static_cast<int>(sizeof(line)) - 1;
  }
  std::fwrite(line, 1, static_cast<std::size_t>(len), stderr);
}

void diag_fail(const Diagnostic& d) {
  diag_emit(d);
  std::abort();
}

}  // namespace partib
