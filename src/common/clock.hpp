// The sanctioned monotonic clock for real-time backends.
//
// The deterministic layers (src/sim, src/fabric, src/verbs, src/part and
// the backends under src/backend) are forbidden from touching wall-clock
// sources directly — the partib-no-wall-clock-in-sim lint enforces it —
// because an accidental `steady_clock::now()` in a DES code path silently
// destroys replayability.  Real-time transports still need real time, so
// this header is the single audited exemption: mono_now() is the only
// place the process clock is read, and real-time code (backend/shm/,
// runtime bridges) calls it by its partib name, which the lint recognises
// as sanctioned.
//
// The value is nanoseconds on CLOCK_MONOTONIC, normalised by the caller
// (backends subtract their construction instant so Time stays "ns since
// backend start", mirroring the DES convention of "ns since simulation
// start").  Never use this for DES timelines: virtual time comes from
// sim::Engine::now().
#pragma once

#include <ctime>

#include "common/time.hpp"

namespace partib::common {

/// Raw monotonic process clock in nanoseconds.  Monotone non-decreasing,
/// unaffected by wall-clock adjustments.
// NOLINTNEXTLINE(partib-no-wall-clock-in-sim)
inline Time mono_now() {
  timespec ts;                          // NOLINT(partib-no-wall-clock-in-sim)
  clock_gettime(CLOCK_MONOTONIC, &ts);  // NOLINT(partib-no-wall-clock-in-sim)
  return static_cast<Time>(ts.tv_sec) * kSecond +
         static_cast<Time>(ts.tv_nsec);
}

}  // namespace partib::common
