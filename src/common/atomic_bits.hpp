// Atomic claim operations over the uint64 partition bitmaps (bits.hpp).
//
// The threaded runtime lets N producer threads race on pready /
// pready_range for the same channel.  Exactly-once semantics come from
// one primitive: an atomic fetch_or on the bitmap word — the bits that
// were 0 in the fetched value and 1 in the mask belong to this caller and
// nobody else, with no lock and no retry loop.  Everything downstream
// (the MPSC hand-off, the bridge-side plain pready apply) only ever sees
// each partition once because ownership was decided here.
//
// The words live in plain std::vector<uint64_t> storage shared with
// single-threaded readers, so these helpers use the __atomic_* builtins
// on uint64_t lvalues rather than std::atomic<uint64_t> members: the same
// buffer is read non-atomically by the bridge thread after quiescence
// (publication via the shard mutex / thread join), and GCC and TSan both
// model the builtins on ordinary objects correctly.  C++20 atomic_ref
// would express the same thing; the builtins avoid its alignment-traps on
// the older toolchains the CI matrix still covers.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/bits.hpp"

namespace partib {

/// Atomically OR `mask` into `word`; returns the bits NEWLY set by this
/// call (mask & ~previous).  Release-on-success is unnecessary — claims
/// carry no payload of their own; the hand-off ring publishes the claim.
inline std::uint64_t atomic_claim_word(std::uint64_t& word,
                                       std::uint64_t mask) {
  const std::uint64_t prev =
      __atomic_fetch_or(&word, mask, __ATOMIC_RELAXED);
  return mask & ~prev;
}

/// Atomically claim bit `bit` of the bitmap.  True iff this caller won
/// (the bit was clear before).
inline bool atomic_claim_bit(std::uint64_t* words, std::size_t bit) {
  const std::uint64_t mask = std::uint64_t{1} << (bit % 64);
  return (atomic_claim_word(words[bit / 64], mask) & mask) != 0;
}

/// Atomic read of one bit (acquire: pairs with the release publication of
/// whatever state the bit advertises, e.g. the parrived mirror updated on
/// the bridge thread).
inline bool atomic_test_bit(const std::uint64_t* words, std::size_t bit) {
  const std::uint64_t word =
      __atomic_load_n(&words[bit / 64], __ATOMIC_ACQUIRE);
  return (word >> (bit % 64)) & 1u;
}

/// Atomically set one bit with release semantics (publisher side of
/// atomic_test_bit).
inline void atomic_publish_bit(std::uint64_t* words, std::size_t bit) {
  __atomic_fetch_or(&words[bit / 64], std::uint64_t{1} << (bit % 64),
                    __ATOMIC_RELEASE);
}

/// Claim every still-unclaimed bit in [first, first + count) and invoke
/// `fn(run_first, run_count)` for each maximal run of bits this caller
/// newly won, merging runs across word boundaries (same contract as
/// part::flush_pending_runs, but against concurrent claimers).  Returns
/// the number of bits claimed.
template <typename Fn>
std::size_t atomic_claim_range(std::uint64_t* words, std::size_t first,
                               std::size_t count, Fn&& fn) {
  std::size_t claimed = 0;
  std::size_t run_first = 0;
  std::size_t run_len = 0;
  const std::size_t last = first + count;  // exclusive
  for (std::size_t w = first / 64; w * 64 < last; ++w) {
    const std::size_t lo = w * 64 < first ? first - w * 64 : 0;
    const std::size_t hi = last - w * 64 < 64 ? last - w * 64 : 64;
    std::uint64_t won = atomic_claim_word(
        words[w], bitmap_range_mask(static_cast<unsigned>(lo),
                                    static_cast<unsigned>(hi)));
    claimed += popcount64(won);
    // Extract maximal runs of won bits, stitching a run that ends at bit
    // 63 onto one that starts at bit 0 of the next word.
    while (won != 0) {
      const unsigned start = ctz64(won);
      const std::uint64_t shifted = won >> start;
      const unsigned len = ctz64(~shifted) == 64 ? 64 - start
                                                 : ctz64(~shifted);
      const std::size_t bit_first = w * 64 + start;
      if (run_len != 0 && run_first + run_len == bit_first) {
        run_len += len;  // contiguous with the pending run
      } else {
        if (run_len != 0) fn(run_first, run_len);
        run_first = bit_first;
        run_len = len;
      }
      won &= ~(bitmap_range_mask(start, start + len));
    }
    // A run that does not reach the end of this word cannot continue into
    // the next one; flush it now so `fn` sees maximal runs in order.
    if (run_len != 0 && (run_first + run_len) % 64 != 0) {
      fn(run_first, run_len);
      run_len = 0;
    }
  }
  if (run_len != 0) fn(run_first, run_len);
  return claimed;
}

}  // namespace partib
