// Small bit-manipulation helpers (checked wrappers over <bit>).
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>

namespace partib {

constexpr bool is_pow2(std::size_t v) { return v != 0 && (v & (v - 1)) == 0; }

constexpr std::size_t next_pow2(std::size_t v) {
  return v <= 1 ? 1 : std::bit_ceil(v);
}

constexpr std::size_t prev_pow2(std::size_t v) {
  return v == 0 ? 0 : std::bit_floor(v);
}

/// floor(log2(v)); v must be nonzero.
constexpr unsigned log2_floor(std::size_t v) {
  return static_cast<unsigned>(std::bit_width(v) - 1);
}

/// Ceiling division for non-negative integers.
template <typename T>
constexpr T ceil_div(T a, T b) {
  return (a + b - 1) / b;
}

// -- 64-bit bitmap helpers ---------------------------------------------------
// The partition flag arrays on the Pready fast path are uint64_t bitmaps;
// run detection works word-wise with count-trailing-zeros.  Wrapped here
// so the callers read as algorithms, not as <bit> incantations, and so the
// countr_zero(0) == 64 convention is pinned in one place.

/// Number of 64-bit words needed to hold `bits` bits.
constexpr std::size_t bitmap_words(std::size_t bits) {
  return ceil_div(bits, std::size_t{64});
}

/// Trailing zero count; returns 64 for v == 0 (std::countr_zero contract).
constexpr unsigned ctz64(std::uint64_t v) {
  return static_cast<unsigned>(std::countr_zero(v));
}

constexpr unsigned popcount64(std::uint64_t v) {
  return static_cast<unsigned>(std::popcount(v));
}

constexpr bool bitmap_test(const std::uint64_t* words, std::size_t bit) {
  return (words[bit / 64] >> (bit % 64)) & 1u;
}

constexpr void bitmap_set(std::uint64_t* words, std::size_t bit) {
  words[bit / 64] |= std::uint64_t{1} << (bit % 64);
}

/// Mask with bits [lo, hi) of a word set; lo <= hi <= 64.
/// Guards the `x >> 64` / `x << 64` UB corners of the shift operators.
constexpr std::uint64_t bitmap_range_mask(unsigned lo, unsigned hi) {
  const std::uint64_t upto_hi = hi >= 64 ? ~std::uint64_t{0}
                                         : (std::uint64_t{1} << hi) - 1;
  const std::uint64_t below_lo = lo >= 64 ? ~std::uint64_t{0}
                                          : (std::uint64_t{1} << lo) - 1;
  return upto_hi & ~below_lo;
}

// -- simulated DMA addressing ------------------------------------------------
// WRs, SGEs and MRs carry buffer addresses as the 64-bit integers real
// verbs puts on the wire.  These two helpers are the only sanctioned
// pointer<->wire-address conversions in the codebase (std::bit_cast, so
// clang-tidy's reinterpret_cast checks stay clean); the simulator only
// ever converts back addresses it previously derived from live buffers.

inline std::uint64_t wire_addr(const void* p) {
  static_assert(sizeof(void*) == sizeof(std::uint64_t),
                "simulated DMA addressing requires 64-bit pointers");
  return std::bit_cast<std::uint64_t>(p);
}

template <typename T = std::byte>
inline T* wire_ptr(std::uint64_t addr) {
  static_assert(sizeof(T*) == sizeof(std::uint64_t),
                "simulated DMA addressing requires 64-bit pointers");
  return std::bit_cast<T*>(addr);
}

}  // namespace partib
