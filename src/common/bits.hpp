// Small bit-manipulation helpers (checked wrappers over <bit>).
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>

namespace partib {

constexpr bool is_pow2(std::size_t v) { return v != 0 && (v & (v - 1)) == 0; }

constexpr std::size_t next_pow2(std::size_t v) {
  return v <= 1 ? 1 : std::bit_ceil(v);
}

constexpr std::size_t prev_pow2(std::size_t v) {
  return v == 0 ? 0 : std::bit_floor(v);
}

/// floor(log2(v)); v must be nonzero.
constexpr unsigned log2_floor(std::size_t v) {
  return static_cast<unsigned>(std::bit_width(v) - 1);
}

/// Ceiling division for non-negative integers.
template <typename T>
constexpr T ceil_div(T a, T b) {
  return (a + b - 1) / b;
}

// -- simulated DMA addressing ------------------------------------------------
// WRs, SGEs and MRs carry buffer addresses as the 64-bit integers real
// verbs puts on the wire.  These two helpers are the only sanctioned
// pointer<->wire-address conversions in the codebase (std::bit_cast, so
// clang-tidy's reinterpret_cast checks stay clean); the simulator only
// ever converts back addresses it previously derived from live buffers.

inline std::uint64_t wire_addr(const void* p) {
  static_assert(sizeof(void*) == sizeof(std::uint64_t),
                "simulated DMA addressing requires 64-bit pointers");
  return std::bit_cast<std::uint64_t>(p);
}

template <typename T = std::byte>
inline T* wire_ptr(std::uint64_t addr) {
  static_assert(sizeof(T*) == sizeof(std::uint64_t),
                "simulated DMA addressing requires 64-bit pointers");
  return std::bit_cast<T*>(addr);
}

}  // namespace partib
