// Small bit-manipulation helpers (checked wrappers over <bit>).
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>

namespace partib {

constexpr bool is_pow2(std::size_t v) { return v != 0 && (v & (v - 1)) == 0; }

constexpr std::size_t next_pow2(std::size_t v) {
  return v <= 1 ? 1 : std::bit_ceil(v);
}

constexpr std::size_t prev_pow2(std::size_t v) {
  return v == 0 ? 0 : std::bit_floor(v);
}

/// floor(log2(v)); v must be nonzero.
constexpr unsigned log2_floor(std::size_t v) {
  return static_cast<unsigned>(std::bit_width(v) - 1);
}

/// Ceiling division for non-negative integers.
template <typename T>
constexpr T ceil_div(T a, T b) {
  return (a + b - 1) / b;
}

}  // namespace partib
