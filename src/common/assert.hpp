// Internal invariant checking.
//
// PARTIB_ASSERT guards conditions that indicate a bug in this library (not
// user error); it is active in all build types because the simulator is the
// test oracle for everything above it and must fail loudly.
//
// Failures route through the structured diagnostic path (common/diag.hpp)
// under rule id "assert", so assertion aborts and checker violations share
// one greppable log grammar and carry virtual time when one is known.
#pragma once

#include <cstdio>

#include "common/diag.hpp"

namespace partib::detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  char detail[512];
  std::snprintf(detail, sizeof(detail), "assertion failed: %s%s%s", expr,
                msg[0] != '\0' ? ": " : "", msg);
  Diagnostic d;
  d.rule = "assert";
  d.vtime = diag_time();
  d.detail = detail;
  d.file = file;
  d.line = line;
  diag_fail(d);
}

}  // namespace partib::detail

#define PARTIB_ASSERT(cond)                                             \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::partib::detail::assert_fail(#cond, __FILE__, __LINE__, "");      \
    }                                                                    \
  } while (0)

#define PARTIB_ASSERT_MSG(cond, msg)                                    \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::partib::detail::assert_fail(#cond, __FILE__, __LINE__, (msg));   \
    }                                                                    \
  } while (0)
