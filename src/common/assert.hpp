// Internal invariant checking.
//
// PARTIB_ASSERT guards conditions that indicate a bug in this library (not
// user error); it is active in all build types because the simulator is the
// test oracle for everything above it and must fail loudly.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace partib::detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "partib: assertion failed: %s at %s:%d%s%s\n", expr,
               file, line, msg[0] ? ": " : "", msg);
  std::abort();
}

}  // namespace partib::detail

#define PARTIB_ASSERT(cond)                                             \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::partib::detail::assert_fail(#cond, __FILE__, __LINE__, "");      \
    }                                                                    \
  } while (0)

#define PARTIB_ASSERT_MSG(cond, msg)                                    \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::partib::detail::assert_fail(#cond, __FILE__, __LINE__, (msg));   \
    }                                                                    \
  } while (0)
