// Static analysis annotations.
//
// Two families live here, both of which compile to nothing on toolchains
// that cannot check them:
//
//  1. Clang thread-safety-analysis attributes (PARTIB_GUARDED_BY,
//     PARTIB_REQUIRES, ...).  Under clang with -Wthread-safety (CMake
//     option PARTIB_THREAD_SAFETY=ON) the compiler proves that every
//     access to an annotated member happens with the right partib::Mutex
//     held.  Under GCC — or clang without the warning — the macros expand
//     to nothing and the annotated code is byte-identical to unannotated
//     code.  The vocabulary mirrors the clang documentation
//     (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html) with a
//     PARTIB_ prefix so call sites do not collide with other libraries'
//     shims.
//
//  2. PARTIB_HOT: marks a steady-state fast-path function (pready -> WQE
//     -> CQ plane, engine dispatch).  It expands to [[gnu::hot]] plus —
//     under clang — an `annotate("partib_hot")` attribute that the
//     partib-no-alloc-in-hot-path tidy check (tools/tidy-plugin) keys on
//     to reject heap allocation in the marked function at analysis time,
//     complementing the PARTIB_CHECK runtime no-allocation asserts.
//
// Only partib::Mutex / partib::MutexLock / partib::CondVar
// (common/mutex.hpp) carry the capability attributes; raw std::mutex is
// invisible to the analysis, which is why the partib-mutex-wrapper-only
// tidy check bans it outside src/common/.
#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define PARTIB_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define PARTIB_THREAD_ANNOTATION(x)  // no-op: GCC cannot check these
#endif

/// Declares a class to be a lockable capability ("mutex" in diagnostics).
#define PARTIB_CAPABILITY(x) PARTIB_THREAD_ANNOTATION(capability(x))

/// Declares an RAII class whose lifetime equals a capability hold.
#define PARTIB_SCOPED_CAPABILITY PARTIB_THREAD_ANNOTATION(scoped_lockable)

/// Member data that may only be read/written with `x` held.
#define PARTIB_GUARDED_BY(x) PARTIB_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is protected by `x` (the pointer itself
/// is not).
#define PARTIB_PT_GUARDED_BY(x) PARTIB_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the listed capabilities held on entry (and still held
/// on exit).
#define PARTIB_REQUIRES(...) \
  PARTIB_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function acquires the listed capabilities (held on exit, not on entry).
#define PARTIB_ACQUIRE(...) \
  PARTIB_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the listed capabilities (held on entry, not on exit).
#define PARTIB_RELEASE(...) \
  PARTIB_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns `ret`.
#define PARTIB_TRY_ACQUIRE(ret, ...) \
  PARTIB_THREAD_ANNOTATION(try_acquire_capability(ret, __VA_ARGS__))

/// Function must NOT be called with the listed capabilities held
/// (deadlock guard for non-reentrant locks).
#define PARTIB_EXCLUDES(...) \
  PARTIB_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Returns a reference to the capability protecting the returned object.
#define PARTIB_RETURN_CAPABILITY(x) \
  PARTIB_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: the function's locking is deliberately invisible to the
/// analysis (e.g. lock handoff across threads).  Every use needs a comment
/// justifying why the analysis cannot express it.
#define PARTIB_NO_THREAD_SAFETY_ANALYSIS \
  PARTIB_THREAD_ANNOTATION(no_thread_safety_analysis)

// ---------------------------------------------------------------------------
// Hot-path marker (see header comment, family 2).

#if defined(__clang__)
#define PARTIB_HOT [[gnu::hot]] __attribute__((annotate("partib_hot")))
#elif defined(__GNUC__)
#define PARTIB_HOT [[gnu::hot]]
#else
#define PARTIB_HOT
#endif
