// Byte-size helpers used by benchmarks and configuration.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace partib {

inline constexpr std::size_t KiB = 1024;
inline constexpr std::size_t MiB = 1024 * KiB;
inline constexpr std::size_t GiB = 1024 * MiB;

/// "4KiB", "128MiB", "512B" — used for table headers in the bench harness.
std::string format_bytes(std::size_t n);

/// Power-of-two sweep [lo, hi] inclusive, both must be powers of two.
std::vector<std::size_t> pow2_sizes(std::size_t lo, std::size_t hi);

}  // namespace partib
