#include "common/units.hpp"

#include <cstdio>

#include "common/assert.hpp"
#include "common/bits.hpp"

namespace partib {

std::string format_bytes(std::size_t n) {
  char buf[64];
  if (n >= GiB && n % GiB == 0) {
    std::snprintf(buf, sizeof(buf), "%zuGiB", n / GiB);
  } else if (n >= MiB && n % MiB == 0) {
    std::snprintf(buf, sizeof(buf), "%zuMiB", n / MiB);
  } else if (n >= KiB && n % KiB == 0) {
    std::snprintf(buf, sizeof(buf), "%zuKiB", n / KiB);
  } else {
    std::snprintf(buf, sizeof(buf), "%zuB", n);
  }
  return buf;
}

std::vector<std::size_t> pow2_sizes(std::size_t lo, std::size_t hi) {
  PARTIB_ASSERT_MSG(is_pow2(lo) && is_pow2(hi) && lo <= hi,
                    "pow2_sizes requires power-of-two bounds");
  std::vector<std::size_t> out;
  for (std::size_t s = lo; s <= hi; s *= 2) out.push_back(s);
  return out;
}

}  // namespace partib
