// Bounded lock-free MPSC hand-off ring (Vyukov bounded-queue layout).
//
// The threaded runtime (src/runtime/) moves pready/pready_range claims
// from N producer threads to the single bridge thread that owns the DES
// engine.  `Ring<T>` (common/ring.hpp) is single-threaded by design, and
// a mutex-guarded deque would put every producer on the consumer's poll
// path — exactly the contention the sharded engine exists to avoid.  This
// ring is the classic Dmitry Vyukov bounded queue: one cache-line-sized
// cell per slot, each carrying its own sequence counter, so a push is one
// fetch_add on the tail plus one release store into a private cell, and
// producers never touch the consumer's head index.
//
// Capacity is fixed at construction (rounded up to a power of two) and
// the ring never allocates after that: the runtime sizes rings so a full
// round of claims fits, and `try_push` reports a full ring instead of
// blocking so the producer can fall back to the shard mutex (the slow
// path the lock-order auditor already understands).
//
// Memory-order contract (what TSan checks and the comments below assume):
//  * `seq` acquire-load in push/pop synchronizes with the release store
//    that published the cell, so the payload write happens-before the
//    consumer's read without any fence on the payload itself.
//  * The queue is linearizable per-producer FIFO; cross-producer order is
//    whatever the tail fetch_add order was, which is all the runtime
//    needs (claims commute — the bitmap fetch_or already decided
//    exactly-once ownership before the push).
//
// T must be trivially copyable: cells are reused in place and pop returns
// by value.  ReadyOp (runtime/shard.hpp) is a 16-byte POD.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <type_traits>

#include "common/assert.hpp"
#include "common/bits.hpp"

namespace partib::common {

template <typename T>
class MpscRing {
  static_assert(std::is_trivially_copyable_v<T>,
                "MpscRing hands cells off by value between threads");

 public:
  explicit MpscRing(std::size_t capacity)
      : mask_(next_pow2(capacity < 2 ? 2 : capacity) - 1),
        cells_(std::make_unique<Cell[]>(mask_ + 1)) {
    for (std::size_t i = 0; i <= mask_; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  MpscRing(const MpscRing&) = delete;
  MpscRing& operator=(const MpscRing&) = delete;

  std::size_t capacity() const { return mask_ + 1; }

  /// Multi-producer push.  Returns false when the ring is full (the cell
  /// the tail points at has not been consumed yet); never blocks.
  bool try_push(const T& value) {
    std::size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      std::size_t seq = cell.seq.load(std::memory_order_acquire);
      std::intptr_t diff =
          static_cast<std::intptr_t>(seq) - static_cast<std::intptr_t>(pos);
      if (diff == 0) {
        // Cell is free for this ticket; claim it with a CAS on the tail
        // (weak is fine: a spurious failure just retries the loop).
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          cell.value = value;
          cell.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
      } else if (diff < 0) {
        // The consumer is a full lap behind: ring full.
        return false;
      } else {
        // Another producer took this ticket; chase the tail.
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Single-consumer pop.  Returns false when empty.  Must only be called
  /// from the one consumer thread (the bridge / shard drain).
  bool try_pop(T& out) {
    Cell& cell = cells_[head_ & mask_];
    std::size_t seq = cell.seq.load(std::memory_order_acquire);
    if (static_cast<std::intptr_t>(seq) -
            static_cast<std::intptr_t>(head_ + 1) !=
        0) {
      return false;  // producer has not published this cell yet
    }
    out = cell.value;
    // Recycle the cell for the producer one lap ahead.
    cell.seq.store(head_ + mask_ + 1, std::memory_order_release);
    ++head_;
    return true;
  }

  /// Consumer-side emptiness probe (same thread as try_pop).  A false
  /// result is momentarily stale by construction — producers may push
  /// right after — so callers pair it with an external quiescence signal
  /// (runtime: producers_done + per-producer pushed counts).
  bool consumer_empty() const {
    const Cell& cell = cells_[head_ & mask_];
    std::size_t seq = cell.seq.load(std::memory_order_acquire);
    return static_cast<std::intptr_t>(seq) -
               static_cast<std::intptr_t>(head_ + 1) !=
           0;
  }

 private:
  struct alignas(64) Cell {
    std::atomic<std::size_t> seq{0};
    T value{};
  };

  const std::size_t mask_;
  std::unique_ptr<Cell[]> cells_;
  // Producers share the tail; the consumer owns the head.  Separate cache
  // lines so tail CAS traffic never invalidates the consumer's head line.
  alignas(64) std::atomic<std::size_t> tail_{0};
  alignas(64) std::size_t head_{0};
};

}  // namespace partib::common
