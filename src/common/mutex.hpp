// Annotated mutual exclusion, the only lock the library uses.
//
// partib::Mutex wraps std::mutex with three additions:
//
//  1. Clang thread-safety capability attributes
//     (common/thread_annotations.hpp), so `PARTIB_GUARDED_BY(mu)` members
//     are compiler-checked under -Wthread-safety (PARTIB_THREAD_SAFETY=ON).
//     std::mutex is invisible to that analysis, which is why the
//     partib-mutex-wrapper-only tidy check bans it outside src/common/.
//
//  2. A lock *name* — a string literal identifying the lock class (all
//     worker-deque locks share "runner.worker_deque").  The lock-order
//     auditor builds its graph over classes, so an inversion between two
//     instances of different classes is caught even when the two runs that
//     exhibit each direction never touch the same instance.
//
//  3. Acquire/release observer hooks for the PARTIB_CHECK concurrency
//     auditor (check/concurrency_check.hpp): lock-order-cycle and
//     cross-thread-ownership auditing.  With PARTIB_CHECK=OFF the hook
//     call sites compile away and Mutex is exactly std::mutex.
//
// CondVar pairs with Mutex the way std::condition_variable pairs with
// std::mutex; waiting re-enters Mutex::unlock/lock so the observer's
// held-lock picture stays truthful across the wait.
#pragma once

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.hpp"

namespace partib::common {

/// Acquire/release observer, installed once by the concurrency auditor
/// (must point at static-lifetime storage; fields may not be null).
struct MutexObserver {
  void (*on_acquire)(const void* mu, const char* name);
  void (*on_release)(const void* mu, const char* name);
};

/// Install `obs` (nullptr uninstalls).  Not synchronized against in-flight
/// lock operations: install before spawning audited threads (the auditor
/// does this from its enable call, which tests issue up front).
void set_mutex_observer(const MutexObserver* obs);
const MutexObserver* mutex_observer();

class PARTIB_CAPABILITY("mutex") Mutex {
 public:
  /// `name` identifies the lock class for deadlock-order auditing and
  /// diagnostics; use a string literal ("runner.pool_state").  nullptr
  /// makes the instance its own anonymous class.
  explicit Mutex(const char* name = nullptr) : name_(name) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() PARTIB_ACQUIRE() {
    mu_.lock();
    note_acquired();
  }

  void unlock() PARTIB_RELEASE() {
    note_released();
    mu_.unlock();
  }

  bool try_lock() PARTIB_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    note_acquired();
    return true;
  }

  const char* name() const { return name_; }

 private:
  void note_acquired() {
#if PARTIB_CHECK_ENABLED
    if (const MutexObserver* obs = mutex_observer()) {
      obs->on_acquire(this, name_);
    }
#endif
  }

  void note_released() {
#if PARTIB_CHECK_ENABLED
    if (const MutexObserver* obs = mutex_observer()) {
      obs->on_release(this, name_);
    }
#endif
  }

  std::mutex mu_;
  const char* name_;
};

/// RAII lock; the std::lock_guard of this library.  (std::lock_guard
/// itself carries no capability annotations, so the analysis would not see
/// the acquisition.)
class PARTIB_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) PARTIB_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() PARTIB_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable over partib::Mutex.  Callers hold the mutex (via
/// MutexLock) around wait(); the wait re-enters Mutex::unlock/lock so both
/// the thread-safety analysis contract (REQUIRES on entry and exit) and
/// the runtime auditor's held-set remain accurate.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  /// Atomically release `mu`, block, and re-acquire before returning.
  /// Spurious wakeups happen; loop on the predicate.
  void wait(Mutex& mu) PARTIB_REQUIRES(mu) { cv_.wait(mu); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace partib::common
