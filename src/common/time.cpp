#include "common/time.hpp"

#include <cmath>
#include <cstdio>

namespace partib {

std::string format_duration(Duration d) {
  const char* sign = d < 0 ? "-" : "";
  const double abs = std::fabs(static_cast<double>(d));
  char buf[64];
  if (abs >= static_cast<double>(kSecond)) {
    std::snprintf(buf, sizeof(buf), "%s%.3fs", sign, abs / kSecond);
  } else if (abs >= static_cast<double>(kMillisecond)) {
    std::snprintf(buf, sizeof(buf), "%s%.3fms", sign, abs / kMillisecond);
  } else if (abs >= static_cast<double>(kMicrosecond)) {
    std::snprintf(buf, sizeof(buf), "%s%.3fus", sign, abs / kMicrosecond);
  } else {
    std::snprintf(buf, sizeof(buf), "%s%lldns", sign,
                  static_cast<long long>(std::llabs(d)));
  }
  return buf;
}

}  // namespace partib
