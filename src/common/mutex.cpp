#include "common/mutex.hpp"

#include <atomic>

namespace partib::common {

namespace {

// Release/acquire so an observer installed before audited threads spawn is
// fully visible to them (fields are written before the pointer publish).
std::atomic<const MutexObserver*> g_observer{nullptr};

}  // namespace

void set_mutex_observer(const MutexObserver* obs) {
  g_observer.store(obs, std::memory_order_release);
}

const MutexObserver* mutex_observer() {
  return g_observer.load(std::memory_order_acquire);
}

}  // namespace partib::common
