// Environment-variable configuration.
//
// The paper exposes library tunables ("any environment variables we create
// for fine-tuning of our library", §IV-A).  All partib tunables use the
// PARTIB_ prefix and are read through this one facility so they can be
// enumerated and documented in one place.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace partib {

/// Raw lookup; returns nullopt when unset or empty.
std::optional<std::string> env_string(const char* name);

/// Integer lookup; returns `fallback` when unset; aborts on non-numeric
/// values so typos are caught instead of silently ignored.
std::int64_t env_int(const char* name, std::int64_t fallback);

/// Boolean lookup: unset -> fallback; "0"/"false"/"off" -> false;
/// "1"/"true"/"on" -> true; anything else aborts.
bool env_bool(const char* name, bool fallback);

}  // namespace partib
