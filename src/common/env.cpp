#include "common/env.hpp"

#include <cstdlib>
#include <cstring>

#include "common/assert.hpp"
#include "common/mutex.hpp"

namespace partib {

namespace {

// getenv() returns a pointer into the environment block; a concurrent
// setenv/putenv (tests re-point PARTIB_* knobs between trials) can
// invalidate it mid-copy.  Serializing the lookup *and* the copy-out
// through one lock class makes every env read in the library a single
// critical section — the threaded host runtime inherits this for free.
// Values are deliberately NOT memoized: tests flip knobs with setenv and
// expect the next read to see the new value.
common::Mutex g_env_mu("common.env");

}  // namespace

std::optional<std::string> env_string(const char* name) {
  common::MutexLock lock(g_env_mu);
  // NOLINTNEXTLINE(concurrency-mt-unsafe): serialized under g_env_mu; see above.
  const char* v = std::getenv(name);
  if (v == nullptr || v[0] == '\0') return std::nullopt;
  return std::string(v);
}

std::int64_t env_int(const char* name, std::int64_t fallback) {
  auto v = env_string(name);
  if (!v) return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(v->c_str(), &end, 10);
  PARTIB_ASSERT_MSG(end != nullptr && *end == '\0',
                    "non-numeric value in integer environment variable");
  return parsed;
}

bool env_bool(const char* name, bool fallback) {
  auto v = env_string(name);
  if (!v) return fallback;
  if (*v == "0" || *v == "false" || *v == "off") return false;
  if (*v == "1" || *v == "true" || *v == "on") return true;
  PARTIB_ASSERT_MSG(false, "unrecognised boolean environment variable value");
  return fallback;
}

}  // namespace partib
