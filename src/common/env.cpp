#include "common/env.hpp"

#include <cstdlib>
#include <cstring>

#include "common/assert.hpp"

namespace partib {

std::optional<std::string> env_string(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr || v[0] == '\0') return std::nullopt;
  return std::string(v);
}

std::int64_t env_int(const char* name, std::int64_t fallback) {
  auto v = env_string(name);
  if (!v) return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(v->c_str(), &end, 10);
  PARTIB_ASSERT_MSG(end != nullptr && *end == '\0',
                    "non-numeric value in integer environment variable");
  return parsed;
}

bool env_bool(const char* name, bool fallback) {
  auto v = env_string(name);
  if (!v) return fallback;
  if (*v == "0" || *v == "false" || *v == "off") return false;
  if (*v == "1" || *v == "true" || *v == "on") return true;
  PARTIB_ASSERT_MSG(false, "unrecognised boolean environment variable value");
  return fallback;
}

}  // namespace partib
