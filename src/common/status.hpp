// Error handling for the public API.
//
// The library mirrors MPI's convention of returning status codes from API
// calls rather than throwing: partitioned-communication fast paths
// (Pready/Parrived) are called from tight multi-threaded loops where
// exceptions are unwelcome.  Internal logic errors use PARTIB_ASSERT
// (common/assert.hpp) instead.
#pragma once

namespace partib {

enum class Status {
  kOk = 0,
  /// Argument outside its documented domain (null buffer, partition index
  /// out of range, non-positive counts, ...).
  kInvalidArgument,
  /// Operation is illegal in the object's current state (e.g. Pready before
  /// Start, post_send on a QP that is not RTS).
  kInvalidState,
  /// A referenced resource does not exist (unknown rank, unregistered
  /// memory key, ...).
  kNotFound,
  /// A fixed capacity was exhausted (send queue full, CQ overrun).
  kResourceExhausted,
  /// Feature deliberately not provided (e.g. wildcard matching, which MPI
  /// Partitioned forbids).
  kUnsupported,
  /// Remote side reported an error completion.
  kRemoteError,
};

constexpr const char* to_string(Status s) {
  switch (s) {
    case Status::kOk: return "OK";
    case Status::kInvalidArgument: return "INVALID_ARGUMENT";
    case Status::kInvalidState: return "INVALID_STATE";
    case Status::kNotFound: return "NOT_FOUND";
    case Status::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case Status::kUnsupported: return "UNSUPPORTED";
    case Status::kRemoteError: return "REMOTE_ERROR";
  }
  return "UNKNOWN";
}

constexpr bool ok(Status s) { return s == Status::kOk; }

}  // namespace partib
