// Small-buffer-optimized move-only callable.
//
// `InlineFn<R(Args...)>` is the simulator's replacement for
// `std::function` on the event hot path.  A `std::function` constructed
// from a lambda whose captures exceed the implementation's small-object
// buffer (typically 16 bytes on libstdc++) heap-allocates on every
// schedule, and its copyability forces captured state to be copyable too.
// `InlineFn` instead embeds captures up to `BufBytes` (default 48, sized
// so every callback the engine/fabric hot paths create stays inline),
// is move-only, and never allocates for inline-stored targets.  Larger
// or potentially-throwing-move targets fall back to a single heap
// allocation, preserving correctness for arbitrarily fat closures.
//
// Semantics follow `std::function` where it matters for drop-in use:
// `operator()` is const (shallow const, like `std::function`), empty
// instances compare equal to nullptr, and invoking an empty InlineFn is
// undefined (the engine asserts non-empty at schedule time instead).
#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace partib::common {

template <typename Sig, std::size_t BufBytes = 48>
class InlineFn;  // primary template: only the R(Args...) partial below.

template <typename R, typename... Args, std::size_t BufBytes>
class InlineFn<R(Args...), BufBytes> {
  static_assert(BufBytes >= sizeof(void*), "buffer must hold a pointer");

 public:
  InlineFn() noexcept = default;
  InlineFn(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, InlineFn> &&
                std::is_invocable_r_v<R, std::remove_cvref_t<F>&, Args...>>>
  InlineFn(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::remove_cvref_t<F>;
    if constexpr (kStoresInline<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &kInlineOps<Fn>;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &kHeapOps<Fn>;
    }
  }

  InlineFn(InlineFn&& other) noexcept { move_from(other); }

  InlineFn& operator=(InlineFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  InlineFn& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  InlineFn(const InlineFn&) = delete;
  InlineFn& operator=(const InlineFn&) = delete;

  /// Construct a target of type F in place, destroying any current one.
  /// Equivalent to `*this = InlineFn(std::forward<F>(f))` but writes the
  /// capture directly into this buffer — no temporary, no relocation.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, InlineFn> &&
                std::is_invocable_r_v<R, std::remove_cvref_t<F>&, Args...>>>
  void emplace(F&& f) {
    using Fn = std::remove_cvref_t<F>;
    reset();
    if constexpr (kStoresInline<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &kInlineOps<Fn>;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &kHeapOps<Fn>;
    }
  }

  ~InlineFn() { reset(); }

  R operator()(Args... args) const {
    return ops_->call(buf_, std::forward<Args>(args)...);
  }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  friend bool operator==(const InlineFn& f, std::nullptr_t) noexcept {
    return f.ops_ == nullptr;
  }
  friend bool operator!=(const InlineFn& f, std::nullptr_t) noexcept {
    return f.ops_ != nullptr;
  }

  /// True when a target of type Fn is stored in the inline buffer (no
  /// heap allocation).  Exposed so tests can pin the SBO size contract.
  template <typename Fn>
  static constexpr bool stores_inline() {
    return kStoresInline<std::remove_cvref_t<Fn>>;
  }

  /// True when destroying the current target does real work (non-trivial
  /// destructor or heap-stored).  Owners batching many InlineFns can skip
  /// their teardown pass entirely when no element ever needed one.
  bool needs_destroy() const noexcept {
    return ops_ != nullptr && ops_->destroy != nullptr;
  }

  /// Compile-time version of needs_destroy() for a prospective target
  /// type: false iff Fn stores inline and is trivially destructible.
  template <typename Fn>
  static constexpr bool needs_destroy_for() {
    using T = std::remove_cvref_t<Fn>;
    return !(kStoresInline<T> && std::is_trivially_destructible_v<T>);
  }

 private:
  struct Ops {
    R (*call)(void* target, Args&&... args);
    // Move-construct into dst from src, then destroy src's target.
    // nullptr means "trivially relocatable": the owner memcpys the buffer
    // instead, turning every InlineFn move into a handful of direct
    // stores.  This covers the common hot-path captures (references and
    // scalars) *and* the heap fallback, whose stored state is a plain
    // pointer.
    void (*relocate)(void* dst, void* src);
    // nullptr means trivially destructible: reset() skips the call.
    void (*destroy)(void* target);
  };

  // The buffer is pointer-aligned, not max_align_t-aligned: capture sets
  // on the hot paths are pointers, integers and doubles, and the lower
  // alignment keeps sizeof(InlineFn) at BufBytes + one pointer (a
  // 16-byte-aligned buffer would pad the engine's event slots by a
  // further 16 bytes each).  Over-aligned targets fall back to the heap.
  static constexpr std::size_t kBufAlign = alignof(void*);

  // Inline storage requires a nothrow move so InlineFn's own move stays
  // noexcept (the event queue relocates entries while sifting).
  template <typename Fn>
  static constexpr bool kStoresInline =
      sizeof(Fn) <= BufBytes && alignof(Fn) <= kBufAlign &&
      std::is_nothrow_move_constructible_v<Fn>;

  template <typename Fn>
  static Fn* inline_target(void* buf) {
    return std::launder(reinterpret_cast<Fn*>(buf));
  }
  template <typename Fn>
  static Fn* heap_target(void* buf) {
    return *std::launder(reinterpret_cast<Fn**>(buf));
  }

  template <typename Fn>
  struct InlineOps {
    static R call(void* b, Args&&... args) {
      return (*inline_target<Fn>(b))(std::forward<Args>(args)...);
    }
    static void relocate(void* dst, void* src) {
      Fn* s = inline_target<Fn>(src);
      ::new (dst) Fn(std::move(*s));
      s->~Fn();
    }
    static void destroy(void* b) { inline_target<Fn>(b)->~Fn(); }
  };

  template <typename Fn>
  struct HeapOps {
    static R call(void* b, Args&&... args) {
      return (*heap_target<Fn>(b))(std::forward<Args>(args)...);
    }
    static void destroy(void* b) { delete heap_target<Fn>(b); }
  };

  template <typename Fn>
  static constexpr Ops kInlineOps{
      &InlineOps<Fn>::call,
      std::is_trivially_copyable_v<Fn> ? nullptr : &InlineOps<Fn>::relocate,
      std::is_trivially_destructible_v<Fn> ? nullptr
                                           : &InlineOps<Fn>::destroy};
  // Heap storage relocates by copying the stored pointer, i.e. trivially.
  template <typename Fn>
  static constexpr Ops kHeapOps{&HeapOps<Fn>::call, nullptr,
                                &HeapOps<Fn>::destroy};

  void move_from(InlineFn& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      if (ops_->relocate != nullptr) {
        ops_->relocate(buf_, other.buf_);
      } else {
        // Copying the whole buffer (rather than the target's exact size)
        // keeps this a fixed-size, fully unrolled copy.
        std::memcpy(buf_, other.buf_, BufBytes);
      }
      other.ops_ = nullptr;
    }
  }

  void reset() noexcept {
    if (ops_ != nullptr) {
      if (ops_->destroy != nullptr) ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  alignas(kBufAlign) mutable std::byte buf_[BufBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace partib::common
