// Virtual-time primitives shared by the whole library.
//
// All simulated timestamps and durations are signed 64-bit nanosecond
// counts.  Using a plain integer (instead of std::chrono on the system
// clock) keeps the discrete-event engine deterministic and host
// independent: a benchmark run produces the same timeline on any machine.
#pragma once

#include <cstdint>
#include <string>

namespace partib {

/// A point in virtual time, in nanoseconds since simulation start.
using Time = std::int64_t;

/// A span of virtual time, in nanoseconds.
using Duration = std::int64_t;

inline constexpr Duration kNanosecond = 1;
inline constexpr Duration kMicrosecond = 1'000;
inline constexpr Duration kMillisecond = 1'000'000;
inline constexpr Duration kSecond = 1'000'000'000;

/// Shorthand constructors so call sites read `5 * kMicrosecond` or
/// `usec(5)` interchangeably.
constexpr Duration nsec(std::int64_t n) { return n; }
constexpr Duration usec(std::int64_t n) { return n * kMicrosecond; }
constexpr Duration msec(std::int64_t n) { return n * kMillisecond; }
constexpr Duration sec(std::int64_t n) { return n * kSecond; }

constexpr double to_usec(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kMicrosecond);
}
constexpr double to_msec(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kMillisecond);
}
constexpr double to_sec(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}

/// Human-readable rendering with an auto-selected unit ("3.20ms", "17ns").
std::string format_duration(Duration d);

}  // namespace partib
