#include "common/log.hpp"

#include <cstdio>

#include "common/env.hpp"

namespace partib {

LogLevel log_level() {
  static const LogLevel level =
      static_cast<LogLevel>(env_int("PARTIB_LOG_LEVEL", 0));
  return level;
}

void log_emit(LogLevel level, const char* fmt, ...) {
  if (static_cast<int>(level) > static_cast<int>(log_level())) return;
  const char* tag = level == LogLevel::kWarn   ? "W"
                    : level == LogLevel::kInfo ? "I"
                                               : "D";
  std::fprintf(stderr, "[partib:%s] ", tag);
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace partib
