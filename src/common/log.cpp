#include "common/log.hpp"

#include <cstdio>
#include <cstring>

#include "common/env.hpp"

namespace partib {

LogLevel log_level() {
  static const LogLevel level =
      static_cast<LogLevel>(env_int("PARTIB_LOG_LEVEL", 0));
  return level;
}

void log_emit(LogLevel level, const char* fmt, ...) {
  if (static_cast<int>(level) > static_cast<int>(log_level())) return;
  const char* tag = level == LogLevel::kWarn   ? "W"
                    : level == LogLevel::kInfo ? "I"
                                               : "D";
  // Single-buffer, single-write emission (same reasoning as diag_emit):
  // concurrent runner workers log concurrently, and one stdio call per
  // line keeps lines whole.  Long messages truncate.
  char line[1024];
  int off = std::snprintf(line, sizeof(line), "[partib:%s] ", tag);
  va_list args;
  va_start(args, fmt);
  int body = std::vsnprintf(line + off, sizeof(line) - static_cast<std::size_t>(off) - 1,
                            fmt, args);
  va_end(args);
  if (body < 0) return;
  std::size_t len = static_cast<std::size_t>(off) + static_cast<std::size_t>(body);
  if (len > sizeof(line) - 2) len = sizeof(line) - 2;
  line[len] = '\n';
  std::fwrite(line, 1, len + 1, stderr);
}

}  // namespace partib
