// Growable power-of-two ring buffer (FIFO deque replacement).
//
// `std::deque` is the natural container for the data plane's queues (CQ
// entries, posted receives, WR backlogs, deferred callbacks) but libstdc++
// allocates a 512-byte chunk per block plus the block map, and steady-state
// push/pop keeps the allocator warm on every hot-path event.  `Ring<T>`
// stores elements in one contiguous power-of-two array indexed modulo a
// mask, so after warm-up a push/pop round trip touches exactly one cache
// line and never allocates.  Capacity doubles on demand (amortised O(1),
// same complexity contract as deque) instead of being fixed at
// construction: several queues are bounded by configuration values that
// are deliberately huge (e.g. the default CQ depth of 65536 entries),
// and eagerly reserving the bound would cost megabytes per object.
//
// Supports move-only element types (the deferred-callback queue stores
// `common::InlineFn`).  Elements are relocated with std::move on growth;
// like deque, references are invalidated by push_back (unlike deque — a
// growth step moves elements), so callers must not hold references across
// a push.  Only the FIFO surface the simulator needs is provided.
#pragma once

#include <cstddef>
#include <new>
#include <span>
#include <utility>

#include "common/assert.hpp"
#include "common/bits.hpp"

namespace partib::common {

template <typename T>
class Ring {
 public:
  Ring() = default;
  explicit Ring(std::size_t capacity) { reserve(capacity); }

  Ring(Ring&& other) noexcept
      : data_(other.data_),
        cap_(other.cap_),
        head_(other.head_),
        len_(other.len_) {
    other.data_ = nullptr;
    other.cap_ = 0;
    other.head_ = 0;
    other.len_ = 0;
  }

  Ring& operator=(Ring&& other) noexcept {
    if (this != &other) {
      destroy_all();
      data_ = other.data_;
      cap_ = other.cap_;
      head_ = other.head_;
      len_ = other.len_;
      other.data_ = nullptr;
      other.cap_ = 0;
      other.head_ = 0;
      other.len_ = 0;
    }
    return *this;
  }

  Ring(const Ring&) = delete;
  Ring& operator=(const Ring&) = delete;

  ~Ring() { destroy_all(); }

  bool empty() const { return len_ == 0; }
  std::size_t size() const { return len_; }
  std::size_t capacity() const { return cap_; }

  T& front() {
    PARTIB_ASSERT(len_ > 0);
    return data_[head_];
  }
  const T& front() const {
    PARTIB_ASSERT(len_ > 0);
    return data_[head_];
  }
  T& back() {
    PARTIB_ASSERT(len_ > 0);
    return data_[(head_ + len_ - 1) & (cap_ - 1)];
  }
  const T& back() const {
    PARTIB_ASSERT(len_ > 0);
    return data_[(head_ + len_ - 1) & (cap_ - 1)];
  }

  /// i-th element from the front (0 == front()).
  T& operator[](std::size_t i) {
    PARTIB_ASSERT(i < len_);
    return data_[(head_ + i) & (cap_ - 1)];
  }
  const T& operator[](std::size_t i) const {
    PARTIB_ASSERT(i < len_);
    return data_[(head_ + i) & (cap_ - 1)];
  }

  void push_back(const T& v) { emplace_back(v); }
  void push_back(T&& v) { emplace_back(std::move(v)); }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (len_ == cap_) grow(cap_ == 0 ? kInitialCapacity : cap_ * 2);
    T* slot = data_ + ((head_ + len_) & (cap_ - 1));
    ::new (static_cast<void*>(slot)) T(std::forward<Args>(args)...);
    ++len_;
    return *slot;
  }

  void pop_front() {
    PARTIB_ASSERT(len_ > 0);
    data_[head_].~T();
    head_ = (head_ + 1) & (cap_ - 1);
    --len_;
  }

  /// Contiguous run at the front, up to the wrap point: zero-copy batch
  /// consumption (read the span in place, then pop_front_n what was
  /// consumed).  Invalidated by anything that can grow the ring — see the
  /// reference-stability note in the header comment.
  std::span<const T> front_run() const {
    const std::size_t wrap = cap_ - head_;
    return {data_ + head_, len_ < wrap ? len_ : wrap};
  }

  /// Destroy and drop the first n elements (n <= size()).
  void pop_front_n(std::size_t n) {
    PARTIB_ASSERT(n <= len_);
    for (std::size_t i = 0; i < n; ++i) {
      data_[(head_ + i) & (cap_ - 1)].~T();
    }
    head_ = (head_ + n) & (cap_ - 1);
    len_ -= n;
  }

  /// Destroy all elements; capacity is retained.
  void clear() {
    while (len_ > 0) pop_front();
    head_ = 0;
  }

  /// Ensure capacity for at least `n` elements (rounded up to a power of
  /// two) without changing the contents.
  void reserve(std::size_t n) {
    if (n > cap_) grow(next_pow2(n));
  }

 private:
  // First growth lands on a cache-line-ish batch rather than thrashing
  // through 1→2→4 reallocations.
  static constexpr std::size_t kInitialCapacity = 8;

  void grow(std::size_t new_cap) {
    PARTIB_ASSERT(is_pow2(new_cap) && new_cap > cap_);
    T* fresh = static_cast<T*>(::operator new(
        new_cap * sizeof(T), std::align_val_t{alignof(T)}));
    for (std::size_t i = 0; i < len_; ++i) {
      T* src = data_ + ((head_ + i) & (cap_ - 1));
      ::new (static_cast<void*>(fresh + i)) T(std::move(*src));
      src->~T();
    }
    if (data_ != nullptr) {
      ::operator delete(data_, std::align_val_t{alignof(T)});
    }
    data_ = fresh;
    cap_ = new_cap;
    head_ = 0;
  }

  void destroy_all() {
    clear();
    if (data_ != nullptr) {
      ::operator delete(data_, std::align_val_t{alignof(T)});
      data_ = nullptr;
      cap_ = 0;
    }
  }

  T* data_ = nullptr;
  std::size_t cap_ = 0;   // always a power of two (or 0)
  std::size_t head_ = 0;  // index of front()
  std::size_t len_ = 0;
};

}  // namespace partib::common
