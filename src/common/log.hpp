// Minimal leveled logging.
//
// Controlled by PARTIB_LOG_LEVEL (0 = off, 1 = warn, 2 = info, 3 = debug).
// Logging is for diagnosing simulator/runtime behaviour; benchmark results
// are emitted through the bench reporters, never through the log.
#pragma once

#include <cstdarg>

namespace partib {

enum class LogLevel : int { kOff = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

/// Current level, read once from the environment on first use.
LogLevel log_level();

/// printf-style emit; no-op when `level` is above the configured level.
void log_emit(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

}  // namespace partib

#define PARTIB_WARN(...) ::partib::log_emit(::partib::LogLevel::kWarn, __VA_ARGS__)
#define PARTIB_INFO(...) ::partib::log_emit(::partib::LogLevel::kInfo, __VA_ARGS__)
#define PARTIB_DEBUG(...) ::partib::log_emit(::partib::LogLevel::kDebug, __VA_ARGS__)
