// Structured diagnostics.
//
// Every abnormal condition the library reports — checker rule violations
// (src/check), PARTIB_ASSERT failures, CQ overruns — is funnelled through
// one emitter so test logs are uniformly greppable:
//
//   partib: diagnostic: rule=<id> object=<o> time=<t> rank=<r> <detail> [file:line]
//
// `rule` is a stable identifier (see check/rules.hpp for the registry);
// `time` is the simulation's virtual time when one is known (-1 otherwise,
// printed as "-"); `rank` likewise.  Fatal diagnostics abort after
// printing; non-fatal ones go to the leveled log at warn level *and* are
// observable through the checker's violation sink.
#pragma once

#include <cstdint>

#include "common/time.hpp"

namespace partib {

struct Diagnostic {
  const char* rule = "unknown";  ///< stable rule id (registry key)
  const char* object = "";       ///< subject, e.g. "qp#102" (may be empty)
  Time vtime = -1;               ///< virtual time, -1 when unknown
  int rank = -1;                 ///< MPI rank, -1 when unknown
  const char* detail = "";       ///< human-readable explanation
  const char* file = nullptr;    ///< origin source location (optional)
  int line = 0;
};

/// Print one structured diagnostic line to stderr (always — diagnostics
/// are not gated by PARTIB_LOG_LEVEL; they indicate program errors).
void diag_emit(const Diagnostic& d);

/// Fatal variant: emit and abort.  PARTIB_ASSERT routes through this with
/// rule id "assert" so assertion failures and checker violations share one
/// log grammar.
[[noreturn]] void diag_fail(const Diagnostic& d);

namespace detail {
/// Backing store for diag_set_time/diag_time (-1 before any dispatch).
/// thread_local: the parallel experiment runner (src/runner) drives one
/// independent engine per worker thread, and each simulation's
/// diagnostics must carry *its own* clock — a shared global here would
/// be both a data race and the wrong timestamp.
inline thread_local Time g_diag_vtime = -1;
}  // namespace detail

/// The simulation engine publishes its clock here on every event dispatch
/// so diagnostics raised from within callbacks carry virtual time even
/// when the reporting site has no engine reference.  Multiple engines on
/// one thread: last dispatch wins, which is the right answer for the
/// single-engine-per-simulation norm.  Inline: this sits on the engine's
/// per-dispatch hot path, where an out-of-line call would be measurable.
inline void diag_set_time(Time t) { detail::g_diag_vtime = t; }

/// Last published virtual time (-1 before any dispatch).
inline Time diag_time() { return detail::g_diag_vtime; }

}  // namespace partib
