#include "part/options.hpp"

#include "agg/strategies.hpp"
#include "common/env.hpp"

namespace partib::part {

Options Options::defaults() {
  Options o;
  const Duration delta =
      usec(env_int("PARTIB_TIMER_DELTA_US", 0));
  const auto params = model::LogGPParams::niagara_mpi_measured();
  if (delta > 0) {
    o.aggregator = std::make_shared<agg::TimerPLogGPAggregator>(params, delta);
  } else {
    o.aggregator = std::make_shared<agg::PLogGPAggregator>(params);
  }
  o.transport_partitions_override = static_cast<std::size_t>(
      env_int("PARTIB_TRANSPORT_PARTITIONS", 0));
  o.qp_count_override =
      static_cast<int>(env_int("PARTIB_QP_COUNT", 0));
  return o;
}

}  // namespace partib::part
