// Per-channel options for partitioned communication.
#pragma once

#include <cstddef>
#include <memory>

#include "agg/aggregator.hpp"
#include "common/time.hpp"
#include "common/units.hpp"

namespace partib::part {

/// UCX-like software-path cost model used by the persistent baseline
/// (agg::Path::kUcxLike).  Thresholds follow the protocol switches the
/// paper observes in Open MPI + UCX speedup curves (§V-B2: the
/// eager/bcopy -> eager/zcopy switch at 1 KiB shows up as a dip at a
/// 4 KiB aggregate with four partitions).
struct UcxModel {
  std::size_t bcopy_max = 1 * KiB;   ///< <= this: eager/bcopy (extra copy)
  std::size_t rndv_min = 64 * KiB;   ///< >= this: rendezvous
  Duration o_bcopy = nsec(120);      ///< per-message bcopy software cost
  double copy_G = 0.10;              ///< ns per byte for the bcopy staging copy
  Duration o_zcopy = nsec(1'400);    ///< per-message zcopy software cost
                                     ///< (registration-cache pressure)
  Duration o_rndv = nsec(900);       ///< per-message rendezvous software cost
  /// Rendezvous adds a ready-to-send handshake before the payload moves;
  /// modelled as this many extra wire latencies.
  int rndv_extra_latencies = 2;
  /// Wire-rate factor of the eager paths (bcopy/zcopy cannot keep the DMA
  /// pipeline full); rendezvous streams at the full per-QP share.
  double eager_wire_share = 0.72;
  /// When more threads than cores contend for the UCX worker lock, the
  /// holder can be descheduled mid-critical-section (lock convoy); the
  /// serialized per-message cost scales by sqrt(threads / cores).  This is
  /// the oversubscription penalty behind the paper's 128-partition
  /// results (§V-B2).
  bool model_lock_convoy = true;
};

/// Options accepted by psend_init / precv_init.  The aggregator is the
/// strategy object (shared, immutable); overrides pin individual plan
/// fields for knob-sweep experiments, mirroring the environment variables
/// a real deployment would expose:
///   PARTIB_TRANSPORT_PARTITIONS, PARTIB_QP_COUNT, PARTIB_TIMER_DELTA_US.
struct Options {
  std::shared_ptr<const agg::Aggregator> aggregator;
  std::size_t transport_partitions_override = 0;  ///< 0 = plan decides
  int qp_count_override = 0;                      ///< 0 = plan decides
  UcxModel ucx;

  /// Connection-scale mode (mpi/conn.hpp): draw QPs from the rank's
  /// on-demand connection manager, drain completions through the rank's
  /// shared CQ, and stage receives in the rank's SRQ instead of
  /// provisioning a private CQ (and receive rings) per channel.  Both
  /// sides of a channel must agree (asserted at match time).  Off by
  /// default: dedicated resources keep the single-channel figures'
  /// event streams untouched.
  bool shared_resources = false;

  // -- fault recovery (docs/FAULTS.md) --------------------------------------
  /// Failure budget per message: a WR whose send completion carries a
  /// retryable error (RETRY_EXC_ERR, RNR_RETRY_EXC_ERR, WR_FLUSH_ERR) is
  /// re-posted with exponential backoff; once one message accumulates more
  /// than this many failed attempts the channel fails permanently and
  /// Psend/Precv calls surface Status::kRemoteError instead of hanging
  /// (rule part.retry_exhausted).
  int max_send_retries = 8;
  /// Base re-post delay; attempt k waits retry_backoff << min(k-1, 10).
  Duration retry_backoff = usec(4);

  /// Default options: PLogGP aggregation with Niagara-like measured
  /// parameters, honouring the PARTIB_* environment variables.
  static Options defaults();
};

}  // namespace partib::part
