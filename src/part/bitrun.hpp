// Word-wise contiguous-run detection over the partition bitmaps.
//
// The timer aggregator's early-bird flush (§IV-D) must send every maximal
// contiguous run of partitions that have arrived but not yet been sent.
// The seed implementation scanned a byte per partition; here the flags
// are uint64_t bitmaps and runs are extracted 64 partitions at a time with
// countr_zero, so a fully-arrived 64-partition group costs two word ops
// instead of a 64-iteration loop.
//
// The emission order is pinned by the differential test
// (tests/part/bitrun_test.cpp) against a verbatim copy of the byte-scan:
// runs are reported in ascending partition order, each maximal, and the
// callback sees exactly the same (first, count) sequence the byte-scan
// produced — the figure CSV fingerprints depend on it, because each run
// becomes one WR post in that order.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/bits.hpp"

namespace partib::part {

/// Invoke fn(first, count) for every maximal run of bits that are set in
/// `arrived` and clear in `sent` within [base, base + len), marking the
/// run's bits in `sent`.  Runs are emitted in ascending order; a run
/// crossing a word boundary is emitted once, not per word.
template <typename Fn>
void flush_pending_runs(const std::uint64_t* arrived, std::uint64_t* sent,
                        std::size_t base, std::size_t len, Fn&& fn) {
  if (len == 0) return;
  const std::size_t first_word = base / 64;
  const std::size_t last_word = (base + len - 1) / 64;
  std::size_t run_start = 0;
  std::size_t run_len = 0;  // 0 == no run currently open
  for (std::size_t w = first_word; w <= last_word; ++w) {
    const unsigned lo = w == first_word ? static_cast<unsigned>(base % 64) : 0;
    const unsigned hi = w == last_word
                            ? static_cast<unsigned>((base + len - 1) % 64) + 1
                            : 64;
    std::uint64_t pending = arrived[w] & ~sent[w] & bitmap_range_mask(lo, hi);
    sent[w] |= pending;
    const std::size_t word_base = w * 64;
    while (pending != 0) {
      const unsigned s = ctz64(pending);
      // Length of the all-ones run starting at bit s: the shifted word has
      // its low `ones` bits set, so counting trailing zeros of the
      // complement measures the run (ctz64(0) == 64 covers a full word).
      const unsigned ones = ctz64(~(pending >> s));
      const std::size_t start = word_base + s;
      if (run_len != 0 && start == run_start + run_len) {
        // Continues the run left open by the previous word.
        run_len += ones;
      } else {
        if (run_len != 0) fn(run_start, run_len);
        run_start = start;
        run_len = ones;
      }
      pending = s + ones >= 64 ? 0 : pending & (~std::uint64_t{0} << (s + ones));
    }
  }
  if (run_len != 0) fn(run_start, run_len);
}

/// Set bits [first, first + count) in `words` (the whole-group send path,
/// where run detection is unnecessary).
inline void bitmap_set_range(std::uint64_t* words, std::size_t first,
                             std::size_t count) {
  if (count == 0) return;
  const std::size_t first_word = first / 64;
  const std::size_t last_word = (first + count - 1) / 64;
  for (std::size_t w = first_word; w <= last_word; ++w) {
    const unsigned lo = w == first_word ? static_cast<unsigned>(first % 64) : 0;
    const unsigned hi =
        w == last_word ? static_cast<unsigned>((first + count - 1) % 64) + 1
                       : 64;
    words[w] |= bitmap_range_mask(lo, hi);
  }
}

}  // namespace partib::part
