// Per-channel arrival profile: the learning memory of the online
// arrival-learning aggregator (docs/ADAPTIVE.md).
//
// The sender records each partition's Pready time relative to the epoch's
// first Pready.  record() runs on the thread that already owns the
// channel's bookkeeping (the DES event context / the bridge thread of the
// threaded runtime, which also publishes the PR 7 arrived-mirror), so it
// is one plain store — no new synchronization.  fold() runs at the next
// MPI_Start and mixes the finished epoch into per-partition EWMAs; offsets
// are quantized onto the learning grid *before* the EWMA so sub-quantum
// timestamp noise (threaded-producer scheduling jitter) never reaches the
// learned state — this is what makes learned plans producer-thread-count
// invariant.
#pragma once

#include <cstddef>
#include <vector>

#include "common/assert.hpp"
#include "common/thread_annotations.hpp"
#include "common/time.hpp"
#include "model/arrival_plan.hpp"

namespace partib::part {

class ArrivalProfile {
 public:
  /// Size the fixed per-channel storage; called once at Psend_init.
  void init(std::size_t partitions, const model::ArrivalLearnConfig& cfg) {
    alpha_ = cfg.ewma_alpha;
    quantum_ = cfg.quantum;
    offsets_.assign(partitions, 0);
    ewma_.assign(partitions, 0.0);
    predicted_.assign(partitions, 0);
  }

  /// Record partition `p`'s Pready at virtual time `now`.  The first
  /// record of an epoch anchors the epoch base, so offsets are relative
  /// to the epoch's first arrival (start-time independent).
  PARTIB_HOT void record(std::size_t p, Time now) {
    PARTIB_ASSERT(p < offsets_.size());
    if (epoch_base_ < 0) epoch_base_ = now;
    offsets_[p] = now - epoch_base_;
  }

  /// Fold the finished epoch into the EWMAs.  Only call after a complete
  /// epoch (every partition recorded); psend gates on ready_count == n.
  /// A no-op when nothing was recorded since the last fold/seed (a seed()
  /// discards the half-recorded epoch it interrupts).
  PARTIB_HOT void fold() {
    if (epoch_base_ < 0) return;
    const std::size_t n = offsets_.size();
    for (std::size_t p = 0; p < n; ++p) {
      const auto q = static_cast<double>(
          model::quantize_arrival(offsets_[p], quantum_));
      ewma_[p] = epochs_ == 0 ? q : alpha_ * q + (1.0 - alpha_) * ewma_[p];
      predicted_[p] = static_cast<Duration>(ewma_[p]);
    }
    ++epochs_;
    epoch_base_ = -1;
  }

  /// Overwrite the learned state with an externally supplied arrival
  /// vector (the oracle ablation arm hands in the ground truth).  Marks
  /// the profile warm so the next Start re-plans immediately.
  void seed(const Duration* offsets, std::size_t n) {
    PARTIB_ASSERT(n == predicted_.size());
    for (std::size_t p = 0; p < n; ++p) {
      ewma_[p] = static_cast<double>(offsets[p]);
      predicted_[p] = offsets[p];
    }
    if (epochs_ == 0) epochs_ = 1;
    epoch_base_ = -1;  // discard the in-flight epoch's partial records
  }

  /// Predicted per-partition arrival offsets (valid once epochs() >= 1).
  const Duration* predicted() const { return predicted_.data(); }
  std::size_t size() const { return predicted_.size(); }
  /// Completed epochs folded in (0 = still cold, no plan changes yet).
  std::size_t epochs() const { return epochs_; }

 private:
  double alpha_ = 0.25;
  Duration quantum_ = usec(64);
  Time epoch_base_ = -1;
  std::size_t epochs_ = 0;
  std::vector<Duration> offsets_;   ///< raw offsets of the epoch in flight
  std::vector<double> ewma_;        ///< per-partition quantized-offset EWMA
  std::vector<Duration> predicted_; ///< ewma_ rounded back to Duration
};

}  // namespace partib::part
