#include "part/psend.hpp"

#include <algorithm>
#include <cmath>

#include "check/hooks.hpp"
#include "common/assert.hpp"
#include "common/thread_annotations.hpp"
#include "common/bits.hpp"
#include "part/bitrun.hpp"
#include "part/imm.hpp"
#include "part/precv.hpp"

namespace partib::part {

namespace {

bool valid_geometry(std::span<std::byte> buffer, std::size_t partitions) {
  // The 16-bit immediate fields bound the partition count (part/imm.hpp).
  return partitions > 0 && partitions <= 0xFFFF && is_pow2(partitions) &&
         !buffer.empty() && buffer.size() % partitions == 0;
}

}  // namespace

Status PsendRequest::init(mpi::Rank& rank, std::span<std::byte> buffer,
                          std::size_t partitions, int dst, int tag,
                          int comm_id, const Options& opts,
                          std::unique_ptr<PsendRequest>* out) {
  PARTIB_ASSERT(out != nullptr);
  if (!valid_geometry(buffer, partitions)) return Status::kInvalidArgument;
  // MPI Partitioned forbids wildcards; negative peer/tag would be the
  // moral equivalent of MPI_ANY_SOURCE / MPI_ANY_TAG.
  if (dst < 0 || dst >= rank.world().size() || tag < 0) {
    return Status::kInvalidArgument;
  }
  if (dst == rank.id()) return Status::kUnsupported;  // no self-channels
  if (opts.aggregator == nullptr) return Status::kInvalidArgument;

  auto req = std::unique_ptr<PsendRequest>(new PsendRequest(
      rank, buffer, partitions, dst, tag, comm_id, opts));
  PARTIB_CHECK_HOOK(on_psend_init(req.get(), rank.id(), partitions));
  req->setup_verbs_and_handshake();
  *out = std::move(req);
  return Status::kOk;
}

PsendRequest::PsendRequest(mpi::Rank& rank, std::span<std::byte> buffer,
                           std::size_t partitions, int dst, int tag,
                           int comm_id, const Options& opts)
    : rank_(rank),
      buf_(buffer),
      n_(partitions),
      psize_(buffer.size() / partitions),
      dst_(dst),
      tag_(tag),
      comm_id_(comm_id),
      opts_(opts) {
  plan_ = opts_.aggregator->plan(n_, buf_.size());
  if (opts_.transport_partitions_override != 0) {
    plan_.transport_partitions = opts_.transport_partitions_override;
    plan_.group_first.clear();
    plan_.group_count.clear();
  }
  if (opts_.qp_count_override != 0) plan_.qp_count = opts_.qp_count_override;
  PARTIB_ASSERT(plan_.qp_count >= 1);
  PARTIB_ASSERT_MSG(!(plan_.learning && plan_.adaptive),
                    "learning and scalar-adaptive modes are exclusive");

  // Group-layout storage is reserved once for the largest layout any
  // replan may adopt, so Start-time re-planning stays allocation-free.
  part_group_.assign(n_, 0);
  std::size_t max_groups =
      agg::clamp_transport_partitions(plan_.transport_partitions, n_);
  if (plan_.learning) {
    max_groups = std::max(max_groups, std::min(n_, plan_.learn.max_groups));
  }
  if (plan_.adaptive) {
    // The scalar-adaptive re-optimizer may raise tp up to the optimizer's
    // cap when the measured spread grows.
    max_groups = std::max(
        max_groups, std::min(n_, plan_.optimizer.max_transport_partitions));
  }
  max_groups = std::max(max_groups, plan_.group_first.size());
  group_first_.reserve(max_groups);
  group_count_.reserve(max_groups);
  groups_.reserve(max_groups);

  if (!plan_.group_first.empty()) {
    // Explicit (possibly non-uniform) layout from the aggregator — the
    // oracle arm plans straight from the true arrival vector.
    PARTIB_ASSERT(plan_.group_first.size() == plan_.group_count.size());
    adopt_layout(plan_.group_first.data(), plan_.group_count.data(),
                 plan_.group_first.size());
  } else {
    set_uniform_groups(
        agg::clamp_transport_partitions(plan_.transport_partitions, n_));
  }
  if (plan_.learning) {
    profile_.init(n_, plan_.learn);
    plan_scratch_.reserve(n_);
    cand_first_.assign(max_groups, 0);
    cand_count_.assign(max_groups, 0);
  }

  arrived_words_.assign(bitmap_words(n_), 0);
  sent_words_.assign(bitmap_words(n_), 0);
  groups_.assign(tp_, Group{});
  qp_backlog_.resize(static_cast<std::size_t>(plan_.qp_count));
  staged_.reserve(kCallbackReserve);
  completions_.reserve(kCallbackReserve);
  completions_scratch_.reserve(kCallbackReserve);
  prepare_callbacks_.reserve(kCallbackReserve);
}

PsendRequest::~PsendRequest() {
  for (Group& g : groups_) {
    if (g.timer.valid()) rank_.world().engine().cancel(g.timer);
  }
  if (cq_ != nullptr) cq_->set_on_push(nullptr);
  if (conn_id_ != mpi::ConnectionManager::kNilConn) {
    rank_.connections().release(conn_id_);
  }
}

void PsendRequest::tag_shard(int shard) {
  shard_tag_ = shard;
  if (cq_ != nullptr) cq_->set_shard(shard);
  for (verbs::Qp* qp : qps_) qp->set_shard(shard);
}

void PsendRequest::setup_verbs_and_handshake() {
  mpi::World& world = rank_.world();
  mr_ = &rank_.pd().register_mr(buf_, verbs::kLocalRead);

  mpi::SendInit si;
  si.key = mpi::MatchKey{rank_.id(), tag_, comm_id_};
  si.total_bytes = buf_.size();
  si.user_partitions = n_;
  si.transport_partitions = tp_;
  si.qp_count = plan_.qp_count;
  si.sender_request = this;
  si.shared = opts_.shared_resources;
  if (!opts_.shared_resources) {
    // Dedicated mode: a private CQ and eagerly created QPs whose numbers
    // ride the handshake.  Shared mode sends no qp_nums — the chain comes
    // from the connection manager, lazily, on the first post.
    cq_ = &rank_.context().create_cq(world.options().cq_depth);
    cq_->set_on_push([this] { schedule_progress(); });
    verbs::QpCaps caps;
    caps.max_send_wr = world.options().nic.max_outstanding_wr_per_qp;
    for (int i = 0; i < plan_.qp_count; ++i) {
      verbs::Qp& qp = rank_.pd().create_qp(*cq_, *cq_, caps);
      PARTIB_ASSERT(ok(qp.to_init()));
      qps_.push_back(&qp);
      si.qp_nums.push_back(qp.qp_num());
    }
  }

  mpi::Rank& peer = world.rank(dst_);
  world.send_control(rank_.id(), dst_, [&peer, si] {
    peer.matcher().on_send_init(si);
  });
}

void PsendRequest::on_ack(const RecvAck& ack) {
  PARTIB_ASSERT(!remote_ready_);
  remote_rkey_ = ack.rkey;
  remote_base_ = ack.base_addr;
  receiver_request_ = ack.receiver_request;
  if (opts_.shared_resources) {
    PARTIB_ASSERT(ack.qp_nums.empty());
  } else {
    PARTIB_ASSERT(ack.qp_nums.size() == qps_.size());
    for (std::size_t i = 0; i < qps_.size(); ++i) {
      PARTIB_ASSERT(ok(qps_[i]->to_rtr(ack.qp_nums[i])));
      PARTIB_ASSERT(ok(qps_[i]->to_rts()));
    }
  }
  remote_ready_ = true;
  completions_scratch_.swap(prepare_callbacks_);
  for (auto& cb : completions_scratch_) cb();
  completions_scratch_.clear();
  flush_deferred();
}

void PsendRequest::request_connection() {
  PARTIB_ASSERT(opts_.shared_resources && remote_ready_ && !conn_requested_);
  conn_requested_ = true;
  // The expect() token is the receiver-request pointer the ack carried —
  // already registered on the peer manager before the ack was sent.
  conn_id_ = rank_.connections().connect(
      dst_, plan_.qp_count,
      reinterpret_cast<std::uint64_t>(receiver_request_),
      [this](mpi::ConnectionManager::Connection& conn) {
        on_connected(conn);
      });
}

void PsendRequest::on_connected(mpi::ConnectionManager::Connection& conn) {
  PARTIB_ASSERT(!conn_established_);
  PARTIB_ASSERT(conn.qps.size() == static_cast<std::size_t>(plan_.qp_count));
  qps_ = conn.qps;
  mpi::ConnectionManager& mgr = rank_.connections();
  for (verbs::Qp* qp : qps_) {
    mgr.bind(qp->qp_num(), [this](const verbs::Wc& wc) {
      handle_send_wc(wc);
      // The shared tail (backlog drain, error recycle, completion check)
      // runs once per dispatch batch via the coalesced progress event.
      schedule_progress();
    });
  }
  conn_established_ = true;
  flush_deferred();
}

void PsendRequest::pbuf_prepare(Completion cb) {
  if (remote_ready_) {
    rank_.world().engine().schedule_after(0, std::move(cb),
                                          "psend.pbuf_prepare");
    return;
  }
  prepare_callbacks_.push_back(std::move(cb));
}

void PsendRequest::on_credit() {
  ++credits_;
  flush_deferred();
}

void PsendRequest::flush_deferred() {
  // Deferred work queued before the ack arrived is a pending "first send":
  // once the ack names the peer's expect() token, it must kick off the
  // lazy establishment or nothing ever would.
  if (opts_.shared_resources && remote_ready_ && !conn_requested_ &&
      !deferred_.empty()) {
    request_connection();
  }
  if (!can_post()) return;
  while (!deferred_.empty()) {
    auto fn = std::move(deferred_.front());
    deferred_.pop_front();
    fn();
  }
}

Status PsendRequest::start() {
  if (failed_) return Status::kRemoteError;
  PARTIB_CHECK_HOOK(on_psend_start(this));
  if (started_ && !test()) return Status::kInvalidState;
  if (plan_.learning) {
    // Fold the finished epoch (if one completed) and re-plan.  The round
    // is quiescent here — start() rejects in-flight rounds above — so
    // swapping the group layout cannot orphan a timer or an arrived run.
    if (started_ && ready_count_ == n_) profile_.fold();
    replan_from_profile();
  } else if (plan_.adaptive && started_ && ready_count_ == n_) {
    adapt_transport_partitions();
  }
  started_ = true;
  ++round_;
  ready_count_ = 0;
  round_first_pready_ = -1;
  round_last_pready_ = -1;
  std::fill(arrived_words_.begin(), arrived_words_.end(), std::uint64_t{0});
  std::fill(sent_words_.begin(), sent_words_.end(), std::uint64_t{0});
  for (Group& g : groups_) PARTIB_ASSERT(!g.timer.valid());
  groups_.assign(tp_, Group{});
  return Status::kOk;
}

void PsendRequest::adapt_transport_partitions() {
  const Duration sample = round_last_pready_ - round_first_pready_;
  PARTIB_ASSERT(round_first_pready_ >= 0 && sample >= 0);
  if (ewma_delay_ < 0) {
    ewma_delay_ = sample;
  } else {
    ewma_delay_ = static_cast<Duration>(
        plan_.ewma_alpha * static_cast<double>(sample) +
        (1.0 - plan_.ewma_alpha) * static_cast<double>(ewma_delay_));
  }
  model::OptimizerConfig cfg = plan_.optimizer;
  cfg.delay = ewma_delay_;
  const std::size_t new_tp = agg::clamp_transport_partitions(
      model::optimal_transport_partitions_with_drain(plan_.model_params,
                                                     buf_.size(), n_, cfg),
      n_);
  if (new_tp != tp_) set_uniform_groups(new_tp);
}

void PsendRequest::set_uniform_groups(std::size_t tp) {
  PARTIB_ASSERT(tp >= 1 && n_ % tp == 0);
  PARTIB_ASSERT(tp <= group_first_.capacity());
  const std::size_t gs = n_ / tp;
  group_first_.resize(tp);
  group_count_.resize(tp);
  for (std::size_t g = 0; g < tp; ++g) {
    group_first_[g] = g * gs;
    group_count_[g] = gs;
  }
  for (std::size_t p = 0; p < n_; ++p) {
    part_group_[p] = static_cast<std::uint16_t>(p / gs);
  }
  tp_ = tp;
  plan_.transport_partitions = tp_;
  group_size_ = gs;
}

PARTIB_HOT void PsendRequest::adopt_layout(const std::size_t* first,
                                           const std::size_t* count,
                                           std::size_t groups) {
  PARTIB_ASSERT(groups >= 1 && groups <= group_first_.capacity());
  group_first_.resize(groups);  // within reserved capacity: no allocation
  group_count_.resize(groups);
  std::size_t expect = 0;
  for (std::size_t g = 0; g < groups; ++g) {
    PARTIB_ASSERT_MSG(first[g] == expect && count[g] >= 1,
                      "group layout must cover [0, n) contiguously");
    group_first_[g] = first[g];
    group_count_[g] = count[g];
    for (std::size_t i = 0; i < count[g]; ++i) {
      part_group_[first[g] + i] = static_cast<std::uint16_t>(g);
    }
    expect += count[g];
  }
  PARTIB_ASSERT(expect == n_);
  tp_ = groups;
  plan_.transport_partitions = tp_;
  group_size_ = n_ / tp_;
}

PARTIB_HOT void PsendRequest::replan_from_profile() {
  if (profile_.epochs() == 0) return;  // still cold
  const Duration* arr = profile_.predicted();
  const model::ArrivalPlanResult cand = model::plan_from_arrivals(
      plan_.model_params, buf_.size(), arr, n_, plan_.learn,
      cand_first_.data(), cand_count_.data(), plan_scratch_);
  const Duration incumbent = model::predict_grouped_completion(
      plan_.model_params, psize_, arr, group_first_.data(),
      group_count_.data(), tp_, plan_.timer_delta, plan_scratch_);
  // Hysteresis on the drain tail, not the whole epoch: perceived
  // bandwidth is bytes / (completion - last Pready), and the last arrival
  // is a property of the workload the plan cannot move.  Comparing
  // completion times directly would drown a 2x tail win in a 12 ms epoch
  // and epsilon would never clear.  Both predictions share the arrival
  // vector, so subtracting its max is exact.  Identical layouts predict
  // identical times, so a converged profile cannot flap.
  Duration a_last = arr[0];
  for (std::size_t i = 1; i < n_; ++i) a_last = std::max(a_last, arr[i]);
  const Duration cand_tail = cand.predicted - a_last;
  const Duration inc_tail = incumbent - a_last;
  if (static_cast<double>(cand_tail) <
      static_cast<double>(inc_tail) *
          (1.0 - plan_.learn.hysteresis_epsilon)) {
    adopt_layout(cand_first_.data(), cand_count_.data(), cand.groups);
    plan_.timer_delta = cand.delta;
    ++replans_adopted_;
  }
}

Status PsendRequest::seed_profile(std::span<const Duration> offsets) {
  if (!plan_.learning) return Status::kInvalidState;
  if (offsets.size() != n_) return Status::kInvalidArgument;
  profile_.seed(offsets.data(), offsets.size());
  return Status::kOk;
}

PARTIB_HOT Status PsendRequest::pready(std::size_t partition) {
  PARTIB_CHECK_HOOK(on_owned_access(this, "psend"));
  if (failed_) return Status::kRemoteError;
  PARTIB_CHECK_HOOK(on_pready(this, partition));
  if (!started_) return Status::kInvalidState;
  if (partition >= n_) return Status::kInvalidArgument;
  if (bitmap_test(arrived_words_.data(), partition)) {
    return Status::kInvalidArgument;  // double Pready
  }
  bitmap_set(arrived_words_.data(), partition);
  ++ready_count_;
  const Time now = rank_.world().engine().now();
  if (round_first_pready_ < 0) round_first_pready_ = now;
  round_last_pready_ = now;
  if (plan_.learning) profile_.record(partition, now);

  const std::size_t g = group_of(partition);
  Group& grp = groups_[g];
  ++grp.arrived;

  if (grp.arrived == group_count_[g]) {
    on_partition_complete_group(g);
  } else if (plan_.timer_based) {
    if (grp.timer_fired) {
      // Deadline already flushed this group; late arrivals go out
      // immediately (paper Fig 5: p2 sends {2} on arrival after delta).
      flush_group_runs(g);
    } else if (grp.arrived == 1) {
      grp.timer = rank_.world().engine().schedule_after(
          plan_.timer_delta, [this, g] { on_group_timer(g); },
          "psend.group_timer");
    }
  }
  return Status::kOk;
}

PARTIB_HOT Status PsendRequest::pready_range(std::size_t first,
                                             std::size_t last) {
  if (first > last || last >= n_) return Status::kInvalidArgument;
  for (std::size_t i = first; i <= last; ++i) {
    const Status st = pready(i);
    // Stop at the first failure.  Partitions already marked this round
    // stay ready (their groups may be in flight); see the header's
    // partial-success contract — the caller retries from `i`, not from
    // `first`.
    if (!ok(st)) return st;
  }
  return Status::kOk;
}

void PsendRequest::on_partition_complete_group(std::size_t g) {
  Group& grp = groups_[g];
  if (grp.timer.valid()) {
    rank_.world().engine().cancel(grp.timer);
    grp.timer = sim::Engine::EventId{};
  }
  if (!grp.any_sent) {
    // The common case: the last arrival aggregates the whole group into a
    // single work request.
    grp.any_sent = true;
    const std::size_t first = group_first_[g];
    const std::size_t count = group_count_[g];
    bitmap_set_range(sent_words_.data(), first, count);
    post_message(first, count);
  } else {
    flush_group_runs(g);
  }
}

void PsendRequest::on_group_timer(std::size_t g) {
  Group& grp = groups_[g];
  grp.timer = sim::Engine::EventId{};
  grp.timer_fired = true;
  grp.any_sent = true;
  flush_group_runs(g);
}

void PsendRequest::flush_group_runs(std::size_t g) {
  flush_pending_runs(arrived_words_.data(), sent_words_.data(),
                     group_first_[g], group_count_[g],
                     [this, g](std::size_t first, std::size_t count) {
                       groups_[g].any_sent = true;
                       post_message(first, count);
                     });
}

Duration PsendRequest::ucx_software_cost(std::size_t bytes) const {
  const UcxModel& u = opts_.ucx;
  Duration cost;
  if (bytes <= u.bcopy_max) {
    cost = u.o_bcopy +
           static_cast<Duration>(u.copy_G * static_cast<double>(bytes));
  } else if (bytes < u.rndv_min) {
    cost = u.o_zcopy;
  } else {
    cost = u.o_rndv;
  }
  if (u.model_lock_convoy) {
    // One thread per user partition (the benchmarks' convention): past the
    // core count, lock-convoy effects inflate the serialized section.
    const double threads = static_cast<double>(n_);
    const double cores =
        static_cast<double>(rank_.world().options().cores_per_rank);
    if (threads > cores) {
      cost = static_cast<Duration>(static_cast<double>(cost) *
                                   std::sqrt(threads / cores));
    }
  }
  return cost;
}

Duration PsendRequest::ucx_pre_post_delay(std::size_t bytes) const {
  const UcxModel& u = opts_.ucx;
  if (bytes < u.rndv_min) return 0;
  return static_cast<Duration>(u.rndv_extra_latencies) *
         rank_.world().options().nic.wire.L;
}

std::uint32_t PsendRequest::acquire_staged() {
  if (staged_free_ == kNilStaged) {
    staged_.push_back(StagedWr{});
    return static_cast<std::uint32_t>(staged_.size() - 1);
  }
  const std::uint32_t id = staged_free_;
  staged_free_ = staged_[id].next_free;
  return id;
}

void PsendRequest::release_staged(std::uint32_t id) {
  staged_[id].next_free = staged_free_;
  staged_free_ = id;
}

void PsendRequest::post_message(std::size_t first, std::size_t count) {
  PARTIB_ASSERT(count >= 1 && first + count <= n_);
  ++inflight_msgs_;
  PARTIB_CHECK_HOOK(on_psend_msg_intent(this));
  if (!can_post()) {
    // Shared mode establishes lazily: the first blocked post is the
    // "first send toward the peer" that kicks off the QP chain.
    if (opts_.shared_resources && remote_ready_ && !conn_requested_) {
      request_connection();
    }
    deferred_.push_back([this, first, count] {
      --inflight_msgs_;  // re-counted by the re-entrant call
      PARTIB_CHECK_HOOK(on_psend_msg_intent_undone(this));
      post_message(first, count);
    });
    return;
  }

  const std::size_t bytes = count * psize_;

  // The WR is built in place inside a staged slab record, so the whole
  // CPU → doorbell → post pipeline passes a 4-byte record id around and
  // every closure fits the callback small-object buffers (no per-message
  // heap traffic — the paper's thin-Pready argument applied to the
  // simulator's own hot path).
  const std::uint32_t id = acquire_staged();
  StagedWr& staged = staged_[id];
  staged.qp_index = static_cast<std::uint32_t>(
      group_of(first) % static_cast<std::size_t>(plan_.qp_count));

  staged.attempts = 0;

  verbs::SendWr& wr = staged.wr;
  wr = verbs::SendWr{};
  // The record id rides in wr_id so the send CQE (success or failure)
  // maps back to the staged record; the record lives until the success
  // CQE releases it, which is what makes retransmit possible.
  wr.wr_id = id;
  wr.opcode = verbs::Opcode::kRdmaWriteWithImm;
  wr.sg_list.push_back(verbs::Sge{wire_addr(buf_.data() + first * psize_),
                                  static_cast<std::uint32_t>(bytes),
                                  mr_->lkey()});
  wr.imm = encode_imm(static_cast<std::uint32_t>(first),
                      static_cast<std::uint32_t>(count));
  PARTIB_CHECK_HOOK(on_imm_encoded(this, first, count, wr.imm));
  wr.remote_addr = remote_base_ + first * psize_;
  wr.rkey = remote_rkey_;
  if (plan_.path == agg::Path::kUcxLike && bytes < opts_.ucx.rndv_min) {
    wr.rate_cap_factor = opts_.ucx.eager_wire_share;
  }

  // Host-side posting splits into a parallel part done by the calling
  // thread (flag update, WR fill — our design keeps this lock-free, the
  // paper's point) and a serialised part done under a lock (the doorbell
  // write; for the baseline, the whole UCX worker send path).  Lock
  // contention is what aggregation relieves at high partition counts
  // (§V-B2).  The parallel part occupies a core, so oversubscribed nodes
  // feel it.  With DPU aggregation (§VI-A future work) the host only
  // flips the flag and the per-rank DPU engine does everything else.
  const mpi::WorldOptions& wo = rank_.world().options();
  const bool use_dpu =
      wo.dpu_aggregation && plan_.path == agg::Path::kVerbs;
  Duration host_work = wo.pready_cpu;
  staged.serialized = wo.nic.o_post;
  staged.pre_delay = 0;
  staged.engine_res = &rank_.doorbell();
  if (plan_.path == agg::Path::kUcxLike) {
    staged.serialized += ucx_software_cost(bytes);
    staged.pre_delay = ucx_pre_post_delay(bytes);
  } else if (use_dpu) {
    staged.serialized += wo.verbs_sw_per_msg + wo.dpu_post_overhead;
    staged.engine_res = rank_.dpu();
  } else {
    host_work += wo.verbs_sw_per_msg;
  }
  rank_.cpu().submit(host_work, [this, id] { on_host_work_done(id); });
}

void PsendRequest::on_host_work_done(std::uint32_t id) {
  StagedWr& staged = staged_[id];
  staged.engine_res->request(
      staged.serialized, [this, id](Time, Time) { on_doorbell_granted(id); });
}

void PsendRequest::on_doorbell_granted(std::uint32_t id) {
  const Duration pre_delay = staged_[id].pre_delay;
  if (pre_delay > 0) {
    rank_.world().engine().schedule_after(
        pre_delay, [this, id] { post_staged(id); }, "psend.pre_post_delay");
  } else {
    post_staged(id);
  }
}

void PsendRequest::post_staged(std::uint32_t id) {
  StagedWr& staged = staged_[id];
  verbs::Qp& qp = *qps_[staged.qp_index];
  if (qp.state() != verbs::QpState::kRts) {
    // Errored mid-round; park until progress() recycles the QP.
    qp_backlog_[staged.qp_index].push_back(id);
    return;
  }
  const Status st = qp.post_send(staged.wr);
  if (st == Status::kResourceExhausted) {
    // All 16 WR slots busy: software-queue and retry on the next CQE.
    qp_backlog_[staged.qp_index].push_back(id);
    return;
  }
  PARTIB_ASSERT_MSG(ok(st), to_string(st));
  ++wrs_posted_total_;
  if (conn_id_ != mpi::ConnectionManager::kNilConn) {
    rank_.connections().note_posted(conn_id_, staged.wr.sg_list[0].length);
  }
}

void PsendRequest::schedule_progress() {
  if (progress_scheduled_.exchange(true, std::memory_order_acq_rel)) return;
  rank_.world().engine().schedule_after(
      0,
      [this] {
        progress_scheduled_.store(false, std::memory_order_release);
        progress();
      },
      "psend.progress");
}

void PsendRequest::handle_send_wc(const verbs::Wc& wc) {
  const auto id = static_cast<std::uint32_t>(wc.wr_id);
  switch (wc.status) {
    case verbs::WcStatus::kSuccess:
      release_staged(id);
      PARTIB_ASSERT(inflight_msgs_ > 0);
      --inflight_msgs_;
      PARTIB_CHECK_HOOK(on_psend_msg_complete(this));
      break;
    case verbs::WcStatus::kRetryExcErr:
    case verbs::WcStatus::kRnrRetryExcErr:
    case verbs::WcStatus::kWrFlushErr:
      if (failed_) {
        abandon_staged(id);  // post-failure flush stragglers
      } else {
        retry_staged(id, wc.status);
      }
      break;
    default:
      PARTIB_ASSERT_MSG(false, to_string(wc.status));
  }
}

void PsendRequest::progress() {
  // Shared mode has no private CQ: completions arrive through the
  // manager's router (handle_send_wc per Wc), and this event runs only
  // the shared tail below.
  if (cq_ != nullptr) {
    verbs::Wc wcs[16];
    int n;
    while ((n = cq_->poll(std::span<verbs::Wc>(wcs))) > 0) {
      for (int i = 0; i < n; ++i) handle_send_wc(wcs[i]);
    }
  }
  // Flushed WRs leave their QP wedged in ERROR; once its last outstanding
  // CQE has drained, recycle it so backed-off re-posts find it in RTS.
  // The drain can finish on a SUCCESS CQE — an op already on the wire
  // when the QP dropped to error still completes — so recycling must not
  // be gated on this pass having polled a failure (found by fuzz seed
  // 231: success-drained ERROR QP + all retries parked == permanent
  // stall).  The scan is a handful of enum loads; state changes are
  // synchronous, so the zero-fault event stream is untouched.
  if (!failed_) recycle_errored_qps();
  if (failed_) {
    // Pipeline stages mid-flight at fail time may still park records here
    // (fail_channel already emptied it once); nothing will ever drain a
    // dead channel's backlog, so abandon stragglers as they appear.
    for (auto& backlog : qp_backlog_) {
      while (!backlog.empty()) {
        abandon_staged(backlog.front());
        backlog.pop_front();
      }
    }
    check_completion();
    return;
  }
  // Freed WR slots: drain software backlogs.  The staged record is only
  // dequeued once the QP accepts it, so a still-full QP costs one peek.
  for (std::size_t q = 0; q < qp_backlog_.size(); ++q) {
    auto& backlog = qp_backlog_[q];
    while (!backlog.empty()) {
      if (qps_[q]->state() != verbs::QpState::kRts) break;
      const std::uint32_t id = backlog.front();
      const Status st = qps_[q]->post_send(staged_[id].wr);
      if (st == Status::kResourceExhausted) break;
      PARTIB_ASSERT(ok(st));
      ++wrs_posted_total_;
      backlog.pop_front();
    }
  }
  check_completion();
}

void PsendRequest::retry_staged(std::uint32_t id, verbs::WcStatus status) {
  StagedWr& staged = staged_[id];
  ++staged.attempts;
  if (staged.attempts > static_cast<std::uint32_t>(opts_.max_send_retries)) {
    fail_channel(status);
    abandon_staged(id);
    return;
  }
  const std::uint32_t exp = std::min<std::uint32_t>(staged.attempts - 1, 10);
  rank_.world().engine().schedule_after(
      opts_.retry_backoff << exp, [this, id] { repost_staged(id); },
      "psend.retry");
}

void PsendRequest::repost_staged(std::uint32_t id) {
  if (failed_) {
    abandon_staged(id);
    return;
  }
  post_staged(id);  // parks in the backlog if the QP is not RTS yet
  schedule_progress();
}

void PsendRequest::abandon_staged(std::uint32_t id) {
  release_staged(id);
  PARTIB_ASSERT(inflight_msgs_ > 0);
  --inflight_msgs_;
  PARTIB_CHECK_HOOK(on_psend_msg_intent_undone(this));
}

void PsendRequest::recycle_errored_qps() {
  for (verbs::Qp* qp : qps_) {
    if (qp->state() != verbs::QpState::kError) continue;
    // Outstanding WRs mean more flush CQEs are coming; their progress
    // pass recycles.  (Send-side QPs post no receives, so nothing else
    // is lost in the reset.)
    if (qp->outstanding_send_wrs() != 0) continue;
    PARTIB_ASSERT(ok(qp->to_reset()));
    PARTIB_ASSERT(ok(qp->to_init()));
    PARTIB_ASSERT(ok(qp->to_rtr(qp->remote_qp_num())));
    PARTIB_ASSERT(ok(qp->to_rts()));
  }
}

void PsendRequest::fail_channel([[maybe_unused]] verbs::WcStatus status) {
  PARTIB_ASSERT(!failed_);
  failed_ = true;
  PARTIB_CHECK_HOOK(
      on_part_channel_failed(this, rank_.id(), verbs::to_string(status)));
  for (Group& g : groups_) {
    if (g.timer.valid()) {
      rank_.world().engine().cancel(g.timer);
      g.timer = sim::Engine::EventId{};
    }
  }
  // Queued work can never drain now; drop it so inflight accounting
  // terminates.  Records owned by a pending backoff event are abandoned
  // when that event fires (repost_staged checks failed_).
  for (auto& backlog : qp_backlog_) {
    while (!backlog.empty()) {
      abandon_staged(backlog.front());
      backlog.pop_front();
    }
  }
  while (!deferred_.empty()) {
    // Each deferred entry holds exactly one message intent (post_message
    // counted it before deferring).
    deferred_.pop_front();
    PARTIB_ASSERT(inflight_msgs_ > 0);
    --inflight_msgs_;
    PARTIB_CHECK_HOOK(on_psend_msg_intent_undone(this));
  }
  // The receiver's wait must terminate too: partitions this channel never
  // delivered will never arrive.
  if (receiver_request_ != nullptr) {
    auto* recv = static_cast<PrecvRequest*>(receiver_request_);
    rank_.world().send_control(rank_.id(), dst_,
                               [recv] { recv->on_peer_failed(); });
  }
}

bool PsendRequest::test() const {
  if (failed_) return true;    // waiting must terminate; see status()
  if (!started_) return true;  // inactive request
  return ready_count_ == n_ && inflight_msgs_ == 0;
}

void PsendRequest::when_complete(Completion cb) {
  if (test()) {
    rank_.world().engine().schedule_after(0, std::move(cb),
                                          "psend.when_complete");
    return;
  }
  completions_.push_back(std::move(cb));
}

void PsendRequest::check_completion() {
  if (!test()) return;
  if (started_) PARTIB_CHECK_HOOK(on_psend_round_complete(this));
  if (completions_.empty()) return;
  // Ping-pong with the scratch vector: both keep their capacity, so a
  // steady-state round registers, fires and clears callbacks without
  // touching the allocator.
  completions_scratch_.swap(completions_);
  [[maybe_unused]] const std::size_t fired = completions_scratch_.size();
  for (auto& cb : completions_scratch_) cb();
  completions_scratch_.clear();
#if PARTIB_CHECK_ENABLED
  // The no-reallocation contract of the satellite fix: unless a round
  // registered more callbacks than the init-time reserve, firing them
  // must not have grown either vector.
  if (fired <= kCallbackReserve) {
    PARTIB_ASSERT(completions_scratch_.capacity() == kCallbackReserve);
  }
#endif
}

}  // namespace partib::part
