// Immediate-value encoding for partition ranges (§IV-A).
//
// IBV_WR_RDMA_WRITE_WITH_IMM carries a 32-bit immediate (__be32).  The
// paper packs the first user partition and the number of contiguous user
// partitions in a transport partition as two uint16_t halves so the
// receiver can mark exactly the partitions a WR delivered.
#pragma once

#include <cstdint>

#include "common/assert.hpp"

namespace partib::part {

struct ImmRange {
  std::uint16_t first = 0;  ///< starting user partition
  std::uint16_t count = 0;  ///< number of contiguous user partitions
};

constexpr std::uint32_t encode_imm(std::uint32_t first, std::uint32_t count) {
  PARTIB_ASSERT_MSG(first <= 0xFFFF && count <= 0xFFFF,
                    "partition index/count exceeds the 16-bit immediate field");
  return (first << 16) | count;
}

constexpr ImmRange decode_imm(std::uint32_t imm) {
  return ImmRange{static_cast<std::uint16_t>(imm >> 16),
                  static_cast<std::uint16_t>(imm & 0xFFFF)};
}

}  // namespace partib::part
