#include "part/precv.hpp"

#include <algorithm>

#include "check/hooks.hpp"
#include "common/assert.hpp"
#include "common/thread_annotations.hpp"
#include "common/bits.hpp"
#include "part/imm.hpp"
#include "part/psend.hpp"

namespace partib::part {

Status PrecvRequest::init(mpi::Rank& rank, std::span<std::byte> buffer,
                          std::size_t partitions, int src, int tag,
                          int comm_id, const Options& opts,
                          std::unique_ptr<PrecvRequest>* out) {
  PARTIB_ASSERT(out != nullptr);
  if (partitions == 0 || !is_pow2(partitions) || buffer.empty() ||
      buffer.size() % partitions != 0) {
    return Status::kInvalidArgument;
  }
  if (src < 0 || src >= rank.world().size() || tag < 0) {
    return Status::kInvalidArgument;  // wildcards are not part of the API
  }
  if (src == rank.id()) return Status::kUnsupported;

  auto req = std::unique_ptr<PrecvRequest>(
      new PrecvRequest(rank, buffer, partitions, src, tag, comm_id, opts));
  PrecvRequest* raw = req.get();
  PARTIB_CHECK_HOOK(on_precv_init(raw, rank.id(), partitions,
                                  buffer.size() / partitions));
  rank.matcher().post_recv_init(
      mpi::MatchKey{src, tag, comm_id},
      [raw](const mpi::SendInit& si) { raw->on_match(si); });
  *out = std::move(req);
  return Status::kOk;
}

PrecvRequest::PrecvRequest(mpi::Rank& rank, std::span<std::byte> buffer,
                           std::size_t partitions, int src, int tag,
                           int comm_id, const Options& opts)
    : rank_(rank),
      buf_(buffer),
      n_(partitions),
      psize_(buffer.size() / partitions),
      src_(src),
      tag_(tag),
      comm_id_(comm_id),
      opts_(opts) {
  bytes_arrived_.assign(n_, 0);
  completions_.reserve(kCallbackReserve);
  completions_scratch_.reserve(kCallbackReserve);
}

PrecvRequest::~PrecvRequest() {
  if (cq_ != nullptr) cq_->set_on_push(nullptr);
  if (expect_registered_) {
    // Matched but never accepted (the sender posted nothing): withdraw
    // the token so the manager map does not leak a dangling this.
    rank_.connections().forget(reinterpret_cast<std::uint64_t>(this));
  }
  if (conn_id_ != mpi::ConnectionManager::kNilConn) {
    rank_.connections().release(conn_id_);
  }
  if (reserved_wrs_ != 0) rank_.connections().release_recv_wrs(reserved_wrs_);
}

void PrecvRequest::tag_shard(int shard) {
  if (cq_ != nullptr) cq_->set_shard(shard);
  for (verbs::Qp* qp : qps_) qp->set_shard(shard);
}

void PrecvRequest::on_match(const mpi::SendInit& si) {
  PARTIB_ASSERT(!matched_);
  // MPI-4.0 semantics: the two sides may partition differently; only the
  // aggregate buffer sizes must agree (geometry mismatch is erroneous).
  PARTIB_ASSERT_MSG(si.total_bytes == buf_.size(),
                    "sender/receiver partitioned-channel geometry mismatch");
  PARTIB_ASSERT_MSG(si.shared == opts_.shared_resources,
                    "sender/receiver disagree on shared_resources mode");
  mpi::World& world = rank_.world();
  sender_request_ = si.sender_request;
  sender_tp_ = si.transport_partitions;
  sender_group_size_ = si.user_partitions / sender_tp_;
  sender_parts_ = si.user_partitions;
  sender_psize_ = si.total_bytes / si.user_partitions;

  mr_ = &rank_.pd().register_mr(
      buf_, verbs::kLocalWrite | verbs::kRemoteWrite);

  RecvAck ack;
  ack.rkey = mr_->rkey();
  ack.base_addr = mr_->addr();
  ack.receiver_request = this;
  if (opts_.shared_resources) {
    // Shared mode: receive staging comes from the rank's SRQ and the QP
    // exchange rides the connection manager.  Reserve worst-case headroom
    // (every sender partition in its own message) and register this
    // channel's accept token — the ack pointer the sender will connect
    // with — before the ack ships, so the token is always expected by the
    // time the connect request can arrive.
    mpi::ConnectionManager& mgr = rank_.connections();
    reserved_wrs_ = si.user_partitions;
    mgr.reserve_recv_wrs(reserved_wrs_);
    mgr.expect(reinterpret_cast<std::uint64_t>(this),
               [this](mpi::ConnectionManager::Connection& conn) {
                 on_accept(conn);
               });
    expect_registered_ = true;
  } else {
    // Dedicated mode: a private CQ plus a per-channel SRQ feeding every
    // QP of the chain — receive staging is provisioned once per channel
    // instead of once per QP.
    cq_ = &rank_.context().create_cq(world.options().cq_depth);
    cq_->set_on_push([this] { schedule_progress(); });
    verbs::SrqAttrs srq_attrs;
    srq_attrs.max_wr = static_cast<int>(std::max<std::size_t>(n_, 64));
    srq_ = &rank_.pd().create_srq(srq_attrs);
    for (int i = 0; i < si.qp_count; ++i) {
      verbs::Qp& qp = rank_.pd().create_qp(*cq_, *cq_, verbs::QpCaps{}, srq_);
      PARTIB_ASSERT(ok(qp.to_init()));
      PARTIB_ASSERT(ok(qp.to_rtr(si.qp_nums[static_cast<std::size_t>(i)])));
      PARTIB_ASSERT(ok(qp.to_rts()));
      qps_.push_back(&qp);
      ack.qp_nums.push_back(qp.qp_num());
    }
  }
  matched_ = true;

  auto* sender = static_cast<PsendRequest*>(sender_request_);
  world.send_control(rank_.id(), src_, [sender, ack] { sender->on_ack(ack); });

  if (started_) {
    // Start() ran before the handshake arrived; complete its deferred
    // side effects now.
    post_recv_wrs();
    send_credit();
  }
}

void PrecvRequest::on_accept(mpi::ConnectionManager::Connection& conn) {
  PARTIB_ASSERT(conn_id_ == mpi::ConnectionManager::kNilConn);
  expect_registered_ = false;  // the manager consumed the token
  conn_id_ = conn.id;
  qps_ = conn.qps;
  mpi::ConnectionManager& mgr = rank_.connections();
  for (verbs::Qp* qp : qps_) {
    mgr.bind(qp->qp_num(), [this](const verbs::Wc& wc) {
      consume_recv_wc(wc);
      check_completion();
    });
  }
}

Status PrecvRequest::start() {
  if (failed_) return Status::kRemoteError;
  PARTIB_CHECK_HOOK(on_precv_start(this));
  if (started_ && !test()) return Status::kInvalidState;
  started_ = true;
  ++round_;
  arrived_count_ = 0;
  std::fill(bytes_arrived_.begin(), bytes_arrived_.end(), std::size_t{0});
  if (matched_) {
    post_recv_wrs();
    send_credit();
  }
  return Status::kOk;
}

void PrecvRequest::post_recv_wrs() {
  // Shared mode: the rank's connection manager keeps the node SRQ topped
  // up to the reservation sum; nothing to post per round.
  if (srq_ == nullptr) return;
  // Dedicated mode: top the channel SRQ up to the worst case for one
  // round — a timer-based sender with fully scattered arrivals sends
  // every user partition in its own message.  The worst case is the
  // sender's *user* partition count, which stays valid even when a
  // learning sender re-plans to non-uniform groups mid-stream (no
  // renegotiation needed).  Unconsumed WRs from aggregated rounds carry
  // over; we only post the difference.
  const int needed = static_cast<int>(sender_parts_);
  while (posted_recvs_ < needed) {
    verbs::RecvWr wr;
    wr.wr_id = static_cast<std::uint64_t>(posted_recvs_);
    PARTIB_ASSERT(ok(srq_->post_recv(wr)));
    ++posted_recvs_;
  }
}

void PrecvRequest::send_credit() {
  auto* sender = static_cast<PsendRequest*>(sender_request_);
  rank_.world().send_control(rank_.id(), src_,
                             [sender] { sender->on_credit(); });
}

void PrecvRequest::schedule_progress() {
  if (progress_scheduled_.exchange(true, std::memory_order_acq_rel)) return;
  rank_.world().engine().schedule_after(
      0,
      [this] {
        progress_scheduled_.store(false, std::memory_order_release);
        progress();
      },
      "precv.progress");
}

void PrecvRequest::consume_recv_wc(const verbs::Wc& wc) {
  PARTIB_ASSERT_MSG(wc.status == verbs::WcStatus::kSuccess,
                    to_string(wc.status));
  PARTIB_ASSERT(wc.opcode == verbs::WcOpcode::kRecvRdmaWithImm);
  PARTIB_ASSERT(wc.has_imm);
  if (srq_ != nullptr) --posted_recvs_;
  ++msgs_received_;
  // The immediate names a run of *sender* partitions; translate the
  // byte range it covers into receive partitions.
  const ImmRange range = decode_imm(wc.imm);
  PARTIB_ASSERT(range.count >= 1);
  const std::size_t byte_lo = range.first * sender_psize_;
  const std::size_t byte_hi =
      byte_lo + std::size_t{range.count} * sender_psize_;
  PARTIB_ASSERT(byte_hi <= buf_.size());
  std::size_t pos = byte_lo;
  while (pos < byte_hi) {
    const std::size_t p = pos / psize_;
    const std::size_t chunk = std::min(byte_hi, (p + 1) * psize_) - pos;
    PARTIB_CHECK_HOOK(on_precv_bytes(this, p, chunk));
    PARTIB_ASSERT_MSG(bytes_arrived_[p] + chunk <= psize_,
                      "duplicate partition arrival");
    bytes_arrived_[p] += chunk;
    if (bytes_arrived_[p] == psize_) {
      ++arrived_count_;
      if (arrival_hook_) arrival_hook_(p, wc.completion_time);
    }
    pos += chunk;
  }
}

void PrecvRequest::progress() {
  verbs::Wc wcs[16];
  int n;
  while ((n = cq_->poll(std::span<verbs::Wc>(wcs))) > 0) {
    for (int i = 0; i < n; ++i) consume_recv_wc(wcs[i]);
  }
  check_completion();
}

PARTIB_HOT bool PrecvRequest::parrived(std::size_t partition) const {
  PARTIB_CHECK_HOOK(on_owned_access(this, "precv"));
  PARTIB_ASSERT(partition < n_);
  return started_ && bytes_arrived_[partition] == psize_;
}

void PrecvRequest::on_peer_failed() {
  if (failed_) return;
  failed_ = true;
  // Unblock anyone waiting: the round will never complete normally, so
  // completion fires now and status() carries the error.
  check_completion();
}

bool PrecvRequest::test() const {
  if (failed_) return true;
  if (!started_) return true;
  return arrived_count_ == n_;
}

void PrecvRequest::when_complete(Completion cb) {
  if (test()) {
    rank_.world().engine().schedule_after(0, std::move(cb),
                                          "precv.when_complete");
    return;
  }
  completions_.push_back(std::move(cb));
}

void PrecvRequest::check_completion() {
  if (!test() || completions_.empty()) return;
  completions_scratch_.swap(completions_);
  [[maybe_unused]] const std::size_t fired = completions_scratch_.size();
  for (auto& cb : completions_scratch_) cb();
  completions_scratch_.clear();
#if PARTIB_CHECK_ENABLED
  if (fired <= kCallbackReserve) {
    PARTIB_ASSERT(completions_scratch_.capacity() == kCallbackReserve);
  }
#endif
}

}  // namespace partib::part
