// Receive-side partitioned request.
//
// precv_init registers with the rank's matcher and completes the channel
// handshake whenever the sender's record arrives (either order works).
// start() posts the receive WRs RDMA_WRITE_WITH_IMM requires and issues
// one round credit to the sender.  Partition arrival is decoded from the
// immediate value of each receive completion; parrived()/test() read the
// per-partition arrival flags, exactly as the paper's receive path does.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "common/status.hpp"
#include "mpi/conn.hpp"
#include "mpi/world.hpp"
#include "part/options.hpp"
#include "part/wire.hpp"
#include "verbs/verbs.hpp"

namespace partib::part {

class PrecvRequest {
 public:
  using Completion = std::function<void()>;
  /// Observer invoked on every partition arrival (profiler hook):
  /// (partition index, arrival virtual time).
  using ArrivalHook = std::function<void(std::size_t, Time)>;

  /// MPI_Precv_init analogue.  Non-blocking; matching is by
  /// (src, tag, comm_id) in posted order, no wildcards.
  static Status init(mpi::Rank& rank, std::span<std::byte> buffer,
                     std::size_t partitions, int src, int tag, int comm_id,
                     const Options& opts,
                     std::unique_ptr<PrecvRequest>* out);

  ~PrecvRequest();
  PrecvRequest(const PrecvRequest&) = delete;
  PrecvRequest& operator=(const PrecvRequest&) = delete;

  /// MPI_Start: begin the next round (reposts receive WRs, credits the
  /// sender).
  Status start();

  /// MPI_Parrived analogue: has user partition `partition` landed this
  /// round?
  bool parrived(std::size_t partition) const;

  /// MPI_Test analogue: all partitions arrived this round (an inactive
  /// request is trivially complete).  A failed channel also tests
  /// complete — waiting must terminate — with status() holding the error.
  bool test() const;

  void when_complete(Completion cb);

  /// True once the sender reported permanent channel failure; partitions
  /// not yet arrived at that point will never arrive.
  bool failed() const { return failed_; }
  /// kRemoteError after channel failure, kOk otherwise.
  Status status() const {
    return failed_ ? Status::kRemoteError : Status::kOk;
  }

  /// Control-plane entry point: the sender exhausted its failure budget
  /// (called via World::send_control from PsendRequest::fail_channel).
  void on_peer_failed();

  void set_arrival_hook(ArrivalHook hook) { arrival_hook_ = std::move(hook); }

  /// Threaded runtime (src/runtime/): tag this side's CQ and QPs with the
  /// owning progress shard (see PsendRequest::tag_shard).
  void tag_shard(int shard);

  // -- introspection ---------------------------------------------------------
  std::size_t user_partitions() const { return n_; }
  std::size_t partition_bytes() const { return psize_; }
  bool matched() const { return matched_; }
  int round() const { return round_; }
  std::uint64_t messages_received_total() const { return msgs_received_; }

 private:
  PrecvRequest(mpi::Rank& rank, std::span<std::byte> buffer,
               std::size_t partitions, int src, int tag, int comm_id,
               const Options& opts);

  void on_match(const mpi::SendInit& si);
  void post_recv_wrs();
  void send_credit();
  /// The manager accepted the sender's chain (shared mode): adopt the QPs
  /// and bind the receive-Wc handlers.
  void on_accept(mpi::ConnectionManager::Connection& conn);
  /// Decode one receive completion into partition-arrival bookkeeping
  /// (shared mode: routed per-Wc by the manager; dedicated mode: polled in
  /// batches by progress()).
  void consume_recv_wc(const verbs::Wc& wc);
  void schedule_progress();
  void progress();
  void check_completion();

  mpi::Rank& rank_;
  std::span<std::byte> buf_;
  std::size_t n_;
  std::size_t psize_;
  int src_;
  int tag_;
  int comm_id_;
  Options opts_;

  verbs::Cq* cq_ = nullptr;   ///< private CQ; nullptr in shared mode
  verbs::Srq* srq_ = nullptr; ///< per-channel SRQ (dedicated mode staging)
  verbs::Mr* mr_ = nullptr;
  std::vector<verbs::Qp*> qps_;

  // -- shared-resources mode (mpi/conn.hpp) -----------------------------------
  mpi::ConnectionManager::ConnId conn_id_ = mpi::ConnectionManager::kNilConn;
  /// SRQ headroom reserved on the rank manager (worst case: every sender
  /// partition in its own message), returned in the destructor.
  std::size_t reserved_wrs_ = 0;
  bool expect_registered_ = false;

  bool matched_ = false;
  void* sender_request_ = nullptr;  ///< peer PsendRequest (opaque)
  std::size_t sender_tp_ = 1;
  std::size_t sender_group_size_ = 1;
  /// Sender-side user partition count — the worst-case messages per round
  /// (fully scattered timer flush).  Kept separately from tp * group_size
  /// because learned plans may adopt non-uniform groups whose count does
  /// not divide the partition count.
  std::size_t sender_parts_ = 1;
  /// Sender-side user partition size.  MPI-4.0 allows the two sides to
  /// partition the buffer differently as long as the totals match; all
  /// wire traffic is in sender units and translated to receive partitions
  /// by byte accounting.
  std::size_t sender_psize_ = 0;

  bool started_ = false;
  bool failed_ = false;  ///< sender reported permanent channel failure
  int round_ = 0;
  std::size_t arrived_count_ = 0;  ///< completed *receive* partitions
  /// Bytes landed in each receive partition this round.
  std::vector<std::size_t> bytes_arrived_;
  /// Receive WRs currently posted to the channel SRQ (dedicated mode;
  /// topped up each Start).  Every QP of the channel draws from the one
  /// SRQ, so the count is per-channel, not per-QP.
  int posted_recvs_ = 0;

  std::uint64_t msgs_received_ = 0;
  /// Progress-coalescing flag (see PsendRequest::progress_scheduled_).
  std::atomic<bool> progress_scheduled_{false};
  // Ping-pong pair reserved at init so steady-state rounds fire completion
  // callbacks without allocating (same contract as PsendRequest).
  static constexpr std::size_t kCallbackReserve = 8;
  std::vector<Completion> completions_;
  std::vector<Completion> completions_scratch_;
  ArrivalHook arrival_hook_;
};

}  // namespace partib::part
