// Umbrella header and free-function API for partitioned communication.
//
// Quickstart:
//
//   sim::Engine engine;
//   mpi::World world(engine, {.ranks = 2});
//   std::vector<std::byte> sbuf(64 * KiB), rbuf(64 * KiB);
//
//   std::unique_ptr<part::PsendRequest> send;
//   std::unique_ptr<part::PrecvRequest> recv;
//   part::psend_init(world.rank(0), sbuf, 16, /*dst=*/1, /*tag=*/7,
//                    /*comm=*/0, part::Options::defaults(), &send);
//   part::precv_init(world.rank(1), rbuf, 16, /*src=*/0, /*tag=*/7,
//                    /*comm=*/0, part::Options::defaults(), &recv);
//
//   send->start();  recv->start();
//   for (std::size_t i = 0; i < 16; ++i) send->pready(i);
//   engine.run();   // drive the simulated cluster to quiescence
//   assert(send->test() && recv->test());
#pragma once

#include "part/imm.hpp"
#include "part/options.hpp"
#include "part/precv.hpp"
#include "part/psend.hpp"

namespace partib::part {

/// MPI_Psend_init: set up the send side of a partitioned channel.
inline Status psend_init(mpi::Rank& rank, std::span<std::byte> buffer,
                         std::size_t partitions, int dst, int tag,
                         int comm_id, const Options& opts,
                         std::unique_ptr<PsendRequest>* out) {
  return PsendRequest::init(rank, buffer, partitions, dst, tag, comm_id,
                            opts, out);
}

/// MPI_Precv_init: set up the receive side of a partitioned channel.
inline Status precv_init(mpi::Rank& rank, std::span<std::byte> buffer,
                         std::size_t partitions, int src, int tag,
                         int comm_id, const Options& opts,
                         std::unique_ptr<PrecvRequest>* out) {
  return PrecvRequest::init(rank, buffer, partitions, src, tag, comm_id,
                            opts, out);
}

}  // namespace partib::part
