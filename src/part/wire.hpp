// Control-plane records exchanged during channel setup.
//
// The Psend_init/Precv_init handshake (paper §IV-A) is asynchronous to
// keep the init calls non-blocking: the sender ships a SendInit (see
// mpi/matcher.hpp) carrying its QP numbers and plan; the receiver answers
// with this ack carrying its rkey, buffer address and QP numbers; and each
// receiver Start issues one round credit so the sender never RDMA-writes
// into a buffer whose receive WRs are not posted yet (the paper polls in
// MPI_Start for the same guarantee; a credit generalises it to every
// round).
#pragma once

#include <cstdint>
#include <vector>

#include "verbs/types.hpp"

namespace partib::part {

struct RecvAck {
  verbs::Rkey rkey = 0;
  std::uint64_t base_addr = 0;
  std::vector<std::uint32_t> qp_nums;
  /// Peer PrecvRequest (opaque), the return path for the sender's
  /// channel-failure notification — without it a receiver whose sender
  /// exhausted its retry budget would wait forever.
  void* receiver_request = nullptr;
};

}  // namespace partib::part
