// Send-side partitioned request.
//
// Lifecycle (mirrors MPI_Psend_init / MPI_Start / MPI_Pready / MPI_Wait):
//
//   psend_init  — picks the aggregation plan, creates QPs and the MR,
//                 ships the handshake; returns without blocking.
//   start       — begins a round: resets partition flags.
//   pready(i)   — marks user partition i ready.  The *last* arrival of a
//                 transport group posts the group's WR
//                 (IBV_WR_RDMA_WRITE_WITH_IMM, immediate =
//                 (first << 16) | count).  With a timer-based plan the
//                 *first* arrival arms a delta deadline; on expiry the
//                 maximal contiguous arrived runs are flushed and later
//                 arrivals send immediately (§IV-D).
//   test/wait   — the round completes when every partition was marked
//                 ready and every posted WR has a send completion.
//
// The simulation is single-threaded (the DES serialises all events), so
// the flag arrays are plain integers; the counters the paper implements
// with atomic add-and-fetch are modelled, not executed concurrently.  The
// contended doorbell cost of posting is charged through the rank's
// FifoResource.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "common/inline_fn.hpp"
#include "common/ring.hpp"

#include "agg/aggregator.hpp"
#include "common/status.hpp"
#include "model/arrival_plan.hpp"
#include "mpi/conn.hpp"
#include "mpi/world.hpp"
#include "part/arrival_profile.hpp"
#include "part/options.hpp"
#include "part/wire.hpp"
#include "verbs/verbs.hpp"

namespace partib::part {

class PsendRequest {
 public:
  using Completion = std::function<void()>;

  /// MPI_Psend_init analogue.  `buffer` must divide evenly into
  /// `partitions` (a power of two); `dst`/`tag` identify the matching
  /// Precv_init on communicator `comm_id`.  Non-blocking.
  static Status init(mpi::Rank& rank, std::span<std::byte> buffer,
                     std::size_t partitions, int dst, int tag, int comm_id,
                     const Options& opts,
                     std::unique_ptr<PsendRequest>* out);

  ~PsendRequest();
  PsendRequest(const PsendRequest&) = delete;
  PsendRequest& operator=(const PsendRequest&) = delete;

  /// MPI_Start: begin the next round.  Fails if the previous round is
  /// still in flight.
  Status start();

  /// MPI_Pready: mark one user partition ready for transfer.
  Status pready(std::size_t partition);

  /// MPI_Pready_range: inclusive range, as in the standard.
  ///
  /// Partial-success semantics: partitions are marked in ascending order
  /// and the first failure stops the loop, so on error every partition
  /// in [first, error point) *stays marked ready* (and its transport
  /// group may already be on the wire — Pready is not undoable).  This
  /// mirrors MPI, where each MPI_Pready is independently visible; the
  /// caller recovers by retrying only the partitions at and after the
  /// failure, never the whole range.  Bounds are validated up front, so
  /// an out-of-range `last` fails without marking anything.
  Status pready_range(std::size_t first, std::size_t last);

  /// MPI_Test analogue: true when the current round is complete (an
  /// inactive request is trivially complete).  A failed channel also
  /// tests complete — waiting must terminate — with status() holding the
  /// error.
  bool test() const;

  /// True once the channel exhausted its failure budget (see
  /// Options::max_send_retries).  start/pready then return kRemoteError
  /// instead of queueing work that can never drain.
  bool failed() const { return failed_; }
  /// kRemoteError after channel failure, kOk otherwise.
  Status status() const {
    return failed_ ? Status::kRemoteError : Status::kOk;
  }

  /// MPI_Wait analogue for event-driven callers: `cb` fires when the
  /// current round completes (immediately if it already has).
  void when_complete(Completion cb);

  /// MPI_Pbuf_prepare (MPI Forum proposal the paper discusses in §IV-A):
  /// `cb` fires once the remote buffer is guaranteed ready (the QP
  /// exchange finished and the receiver's rkey arrived), removing the
  /// first-round readiness polling a plain Start would need.
  void pbuf_prepare(Completion cb);
  bool buffer_prepared() const { return remote_ready_; }

  /// Arrival-learning channels only: overwrite the learned profile with
  /// an externally known arrival vector (offsets relative to the epoch's
  /// first Pready).  The next Start re-plans from it immediately — this
  /// is how the ablation oracle is fed the ground truth each epoch.
  /// Discards any half-recorded epoch.  kInvalidState unless the plan is
  /// learning; kInvalidArgument on a size mismatch.
  Status seed_profile(std::span<const Duration> offsets);

  // -- introspection ---------------------------------------------------------
  const agg::Plan& plan() const { return plan_; }
  std::size_t user_partitions() const { return n_; }
  std::size_t transport_partitions() const { return tp_; }
  std::size_t group_size() const { return group_size_; }
  std::size_t partition_bytes() const { return psize_; }
  int qp_count() const { return static_cast<int>(qps_.size()); }
  /// Current contiguous group layout (learning plans re-shape it between
  /// rounds; uniform plans show the tp_-way even split).
  std::span<const std::size_t> group_firsts() const { return group_first_; }
  std::span<const std::size_t> group_counts() const { return group_count_; }
  /// Learning plans: epochs folded into the arrival profile so far and
  /// how many Start-time replans cleared the hysteresis bar.
  std::size_t profile_epochs() const { return profile_.epochs(); }
  std::uint64_t replans_adopted() const { return replans_adopted_; }

  /// Threaded runtime (src/runtime/): tag this channel's CQ and QPs with
  /// the progress shard that owns them, for the shard-affinity auditor
  /// (check/concurrency_check.hpp).  Call after the handshake created the
  /// QPs; a no-op on whatever does not exist yet.
  void tag_shard(int shard);
  /// The tag_shard() value (-1 when untagged / DES-only use).
  int shard_tag() const { return shard_tag_; }
  int round() const { return round_; }
  bool handshake_done() const { return remote_ready_; }
  std::uint64_t wrs_posted_total() const { return wrs_posted_total_; }
  /// EWMA of measured round Pready spread (adaptive plans; -1 before the
  /// first completed round).
  Duration adapted_delay() const { return ewma_delay_; }

  // -- control-plane entry points (called via World::send_control) ----------
  void on_ack(const RecvAck& ack);
  void on_credit();

 private:
  PsendRequest(mpi::Rank& rank, std::span<std::byte> buffer,
               std::size_t partitions, int dst, int tag, int comm_id,
               const Options& opts);

  struct Group {
    std::size_t arrived = 0;
    bool any_sent = false;
    bool timer_fired = false;
    sim::Engine::EventId timer{};
  };

  /// One message staged for the host-side posting pipeline (CPU work →
  /// doorbell → optional pre-post delay → ibv_post_send).  Records live in
  /// a free-listed slab so every pipeline closure captures only
  /// {this, record id} and stays inside the callback SBO buffers; the
  /// per-QP backlogs queue record ids, not WR copies.
  /// The record now outlives the post: wr.wr_id carries the record id, so
  /// the success CQE releases it and a failure CQE re-posts the same WR
  /// (bounded by Options::max_send_retries, backed off exponentially).
  struct StagedWr {
    verbs::SendWr wr;
    sim::FifoResource* engine_res = nullptr;
    Duration serialized = 0;
    Duration pre_delay = 0;
    std::uint32_t qp_index = 0;
    std::uint32_t attempts = 0;  ///< failed attempts so far
    std::uint32_t next_free = kNilStaged;
  };
  static constexpr std::uint32_t kNilStaged = ~std::uint32_t{0};

  void setup_verbs_and_handshake();
  /// Shared mode additionally gates on the lazily established connection;
  /// the first blocked post triggers the establishment (request_connection).
  bool can_post() const {
    return remote_ready_ && credits_ >= round_ &&
           (!opts_.shared_resources || conn_established_);
  }
  void flush_deferred();
  // -- shared-resources mode (mpi/conn.hpp) ---------------------------------
  /// Ask the rank's connection manager for a chain toward dst_ (once, on
  /// the first post after the ack made the peer's expect() token known).
  void request_connection();
  /// The manager's on_ready: adopt the chain, bind the Wc handlers, drain
  /// deferred work.
  void on_connected(mpi::ConnectionManager::Connection& conn);
  /// One send CQE (shared mode: routed per-Wc by the manager; dedicated
  /// mode: polled in batches by progress()).
  void handle_send_wc(const verbs::Wc& wc);

  std::size_t group_of(std::size_t partition) const {
    return part_group_[partition];
  }
  /// Install the uniform tp-way layout (tp must divide n_).
  void set_uniform_groups(std::size_t tp);
  /// Install an explicit contiguous layout covering [0, n_) exactly.
  /// Allocation-free: the layout arrays were reserved at init for the
  /// plan's maximum group count.
  void adopt_layout(const std::size_t* first, const std::size_t* count,
                    std::size_t groups);
  /// Learning plans, at Start: run the arrival planner on the profile's
  /// predicted vector and adopt layout + delta on a predicted >= epsilon
  /// win over the incumbent (no-op while the profile is cold).
  void replan_from_profile();
  /// Post (or defer) one WR covering partitions [first, first+count).
  void post_message(std::size_t first, std::size_t count);
  std::uint32_t acquire_staged();
  void release_staged(std::uint32_t id);
  // The staged-WR pipeline stages (each fires once per record).
  void on_host_work_done(std::uint32_t id);
  void on_doorbell_granted(std::uint32_t id);
  void post_staged(std::uint32_t id);
  // -- fault recovery (docs/FAULTS.md) --------------------------------------
  /// A send CQE carried a retryable error for record `id`: schedule a
  /// backed-off re-post, or fail the channel once the budget is spent.
  void retry_staged(std::uint32_t id, verbs::WcStatus status);
  /// Backoff expired: re-post record `id` (parked in the QP backlog when
  /// the QP is not back in RTS yet).
  void repost_staged(std::uint32_t id);
  /// Drop a record whose message will never be delivered (channel failed).
  void abandon_staged(std::uint32_t id);
  /// Recycle every fully drained error-state QP through
  /// RESET -> INIT -> RTR -> RTS (same peer, no new handshake).
  void recycle_errored_qps();
  /// Spend the failure budget: surface kRemoteError from now on, drop
  /// queued work, cancel timers, fire completions, notify the receiver.
  void fail_channel(verbs::WcStatus status);
  /// Send every maximal contiguous arrived-but-unsent run of group `g`.
  void flush_group_runs(std::size_t g);
  void on_group_timer(std::size_t g);
  void on_partition_complete_group(std::size_t g);

  void schedule_progress();
  void progress();
  void check_completion();
  /// Adaptive plans: fold the finished round's Pready spread into the
  /// EWMA and re-run the drain-aware optimizer for the next round.
  void adapt_transport_partitions();

  Duration ucx_software_cost(std::size_t bytes) const;
  Duration ucx_pre_post_delay(std::size_t bytes) const;

  // -- immutable channel state ----------------------------------------------
  mpi::Rank& rank_;
  std::span<std::byte> buf_;
  std::size_t n_;       ///< user partitions
  std::size_t psize_;   ///< bytes per user partition
  int dst_;
  int tag_;
  int comm_id_;
  Options opts_;
  agg::Plan plan_;
  std::size_t tp_ = 1;          ///< transport partitions (current groups)
  /// Uniform-layout group width (n_ / tp_, floor) — introspection only;
  /// all data-plane indexing goes through the explicit layout below.
  std::size_t group_size_ = 1;
  /// Contiguous group layout: group g covers
  /// [group_first_[g], group_first_[g] + group_count_[g]); part_group_
  /// inverts it for the O(1) pready lookup.  Reserved at init for the
  /// plan's maximum group count so learning replans never allocate.
  std::vector<std::size_t> group_first_;
  std::vector<std::size_t> group_count_;
  std::vector<std::uint16_t> part_group_;

  verbs::Cq* cq_ = nullptr;  ///< private CQ; nullptr in shared mode
  verbs::Mr* mr_ = nullptr;
  std::vector<verbs::Qp*> qps_;
  int shard_tag_ = -1;  ///< owning progress shard (threaded runtime)

  // -- shared-resources mode --------------------------------------------------
  bool conn_requested_ = false;
  bool conn_established_ = false;
  mpi::ConnectionManager::ConnId conn_id_ = mpi::ConnectionManager::kNilConn;

  // -- handshake / flow control ----------------------------------------------
  bool remote_ready_ = false;
  verbs::Rkey remote_rkey_ = 0;
  std::uint64_t remote_base_ = 0;
  void* receiver_request_ = nullptr;  ///< peer PrecvRequest (opaque)
  int credits_ = 0;

  // -- per-round state --------------------------------------------------------
  bool started_ = false;
  bool failed_ = false;  ///< failure budget spent; channel is dead
  int round_ = 0;
  std::size_t ready_count_ = 0;
  Time round_first_pready_ = -1;
  Time round_last_pready_ = -1;
  Duration ewma_delay_ = -1;
  // -- arrival learning (docs/ADAPTIVE.md) ------------------------------------
  ArrivalProfile profile_;
  model::ArrivalPlanScratch plan_scratch_;
  /// Candidate layout the Start-time replan writes into (pre-sized).
  std::vector<std::size_t> cand_first_;
  std::vector<std::size_t> cand_count_;
  std::uint64_t replans_adopted_ = 0;
  // Partition flags as uint64_t bitmaps: one cache line covers 512
  // partitions, and run detection for the timer flush works word-wise
  // (part/bitrun.hpp) instead of byte-by-byte.
  std::vector<std::uint64_t> arrived_words_;
  std::vector<std::uint64_t> sent_words_;
  std::vector<Group> groups_;

  // -- message bookkeeping -----------------------------------------------------
  std::size_t inflight_msgs_ = 0;  ///< intents not yet send-completed
  /// Messages waiting for credit/ack; InlineFn keeps the 24-byte captures
  /// out of the heap, the ring out of the deque allocator.
  common::Ring<common::InlineFn<void()>> deferred_;
  std::vector<StagedWr> staged_;  ///< staged-WR slab (grows to peak in flight)
  std::uint32_t staged_free_ = kNilStaged;
  /// Per-QP queues of staged ids waiting for WR slots (or for the QP to
  /// come back to RTS after an error recycle).
  std::vector<common::Ring<std::uint32_t>> qp_backlog_;
  std::uint64_t wrs_posted_total_ = 0;
  /// Progress-coalescing flag.  Atomic exchange so a CQ notification
  /// raised from a shard drain (threaded runtime) and one from the DES
  /// path fold into a single scheduled progress event.
  std::atomic<bool> progress_scheduled_{false};
  // Completion callbacks ping-pong with a same-capacity scratch vector so
  // steady-state rounds never allocate (asserted under PARTIB_CHECK).
  static constexpr std::size_t kCallbackReserve = 8;
  std::vector<Completion> completions_;
  std::vector<Completion> completions_scratch_;
  std::vector<Completion> prepare_callbacks_;
};

}  // namespace partib::part
