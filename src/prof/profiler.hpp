// Partitioned-communication profiler.
//
// Reproduces the paper's PMPI-based profiler (§V-A, footnote 1): it
// records when each round starts, when each user partition is marked
// ready (MPI_Pready) and when it lands at the receiver, and derives the
// analyses behind Figs 10-12: arrival-pattern timelines, estimated
// per-partition communication times, and the minimum-delta estimate
// (spread between the first and last non-laggard arrival).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/time.hpp"

namespace partib::prof {

struct RoundProfile {
  Time start_time = 0;
  /// Per user partition: virtual time of the Pready call (-1 = never).
  std::vector<Time> pready_times;
  /// Per user partition: virtual time of arrival at the receiver (-1 =
  /// never).
  std::vector<Time> arrival_times;
};

class PartProfiler {
 public:
  explicit PartProfiler(std::size_t partitions) : partitions_(partitions) {}

  void begin_round(Time now);
  void record_pready(std::size_t partition, Time now);
  void record_arrival(std::size_t partition, Time now);

  std::size_t partitions() const { return partitions_; }
  const std::vector<RoundProfile>& rounds() const { return rounds_; }

  /// Fig 12's estimator: the spread between the first and the last
  /// *non-laggard* Pready in a round (the laggard is the partition with
  /// the latest Pready).  Returns 0 for rounds with fewer than three
  /// partitions ready.
  static Duration min_delta_estimate(const RoundProfile& round);

  /// Mean of min_delta_estimate over all completed rounds.
  Duration mean_min_delta() const;

  /// Per-partition estimated communication time from the bandwidth
  /// equation the paper uses for Figs 10-11:
  ///   comm = partition_bytes / bandwidth.
  static Duration estimated_comm_time(std::size_t partition_bytes,
                                      double bytes_per_ns);

  /// CSV dump: round,partition,pready_ns,arrival_ns
  std::string to_csv() const;

 private:
  std::size_t partitions_;
  std::vector<RoundProfile> rounds_;
};

}  // namespace partib::prof
