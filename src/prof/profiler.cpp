#include "prof/profiler.hpp"

#include <algorithm>
#include <limits>
#include <sstream>

#include "common/assert.hpp"

namespace partib::prof {

void PartProfiler::begin_round(Time now) {
  RoundProfile r;
  r.start_time = now;
  r.pready_times.assign(partitions_, Time{-1});
  r.arrival_times.assign(partitions_, Time{-1});
  rounds_.push_back(std::move(r));
}

void PartProfiler::record_pready(std::size_t partition, Time now) {
  PARTIB_ASSERT(!rounds_.empty() && partition < partitions_);
  rounds_.back().pready_times[partition] = now;
}

void PartProfiler::record_arrival(std::size_t partition, Time now) {
  PARTIB_ASSERT(!rounds_.empty() && partition < partitions_);
  rounds_.back().arrival_times[partition] = now;
}

Duration PartProfiler::min_delta_estimate(const RoundProfile& round) {
  // Identify the laggard (latest Pready), then take the spread of the
  // remaining arrivals.
  Time latest = -1;
  std::size_t laggard = 0;
  std::size_t valid = 0;
  for (std::size_t i = 0; i < round.pready_times.size(); ++i) {
    const Time t = round.pready_times[i];
    if (t < 0) continue;
    ++valid;
    if (t > latest) {
      latest = t;
      laggard = i;
    }
  }
  if (valid < 3) return 0;
  Time first = std::numeric_limits<Time>::max();
  Time last = std::numeric_limits<Time>::min();
  for (std::size_t i = 0; i < round.pready_times.size(); ++i) {
    const Time t = round.pready_times[i];
    if (t < 0 || i == laggard) continue;
    first = std::min(first, t);
    last = std::max(last, t);
  }
  return last - first;
}

Duration PartProfiler::mean_min_delta() const {
  if (rounds_.empty()) return 0;
  Duration sum = 0;
  for (const RoundProfile& r : rounds_) sum += min_delta_estimate(r);
  return sum / static_cast<Duration>(rounds_.size());
}

Duration PartProfiler::estimated_comm_time(std::size_t partition_bytes,
                                           double bytes_per_ns) {
  PARTIB_ASSERT(bytes_per_ns > 0.0);
  return static_cast<Duration>(static_cast<double>(partition_bytes) /
                               bytes_per_ns);
}

std::string PartProfiler::to_csv() const {
  std::ostringstream out;
  out << "round,partition,pready_ns,arrival_ns\n";
  for (std::size_t r = 0; r < rounds_.size(); ++r) {
    for (std::size_t p = 0; p < partitions_; ++p) {
      out << r << ',' << p << ',' << rounds_[r].pready_times[p] << ','
          << rounds_[r].arrival_times[p] << '\n';
    }
  }
  return out.str();
}

}  // namespace partib::prof
