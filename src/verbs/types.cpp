#include "verbs/types.hpp"

#include <ostream>

namespace partib::verbs {

std::ostream& operator<<(std::ostream& os, WcStatus s) {
  return os << to_string(s);
}

std::ostream& operator<<(std::ostream& os, QpState s) {
  return os << to_string(s);
}

}  // namespace partib::verbs
