// The verbs API over the simulated fabric.
//
// Object model mirrors libibverbs:
//
//   Device (one per fabric)
//    └─ Context (one per node; cf. ibv_open_device)
//        ├─ Cq  (completion queues)
//        └─ Pd  (protection domains)
//            ├─ Mr (registered memory regions with lkey/rkey)
//            └─ Qp (RC queue pairs; RESET→INIT→RTR→RTS state machine)
//
// Ownership follows the factory-keeps-ownership idiom: create_* /
// register_* return non-owning references whose lifetime is bounded by the
// parent object.  All operations are driven by the simulation engine; the
// API itself performs no blocking.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "common/bits.hpp"
#include "common/status.hpp"
#include "fabric/fabric.hpp"
#include "verbs/types.hpp"

namespace partib::verbs {

class Context;
class Pd;
class Mr;
class Cq;
class Qp;

/// The "HCA": entry point tying contexts to the simulated fabric and
/// providing device-wide qp_num / key allocation.
class Device {
 public:
  explicit Device(fabric::Fabric& fab) : fabric_(fab) {}
  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  /// Open a context on a fabric node (creates the node's verbs state).
  Context& open(fabric::NodeId node);

  fabric::Fabric& fab() { return fabric_; }

  /// Device-wide QP lookup used to resolve a connected remote QP.
  Qp* find_qp(std::uint32_t qp_num);

 private:
  friend class Context;
  friend class Pd;

  fabric::Fabric& fabric_;
  std::vector<std::unique_ptr<Context>> contexts_;
  std::map<std::uint32_t, Qp*> qp_registry_;
  std::uint32_t next_qp_num_ = 100;
  std::uint32_t next_key_ = 1;
};

/// Per-node device context.
class Context {
 public:
  Context(Device& dev, fabric::NodeId node) : device_(dev), node_(node) {}
  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  Pd& alloc_pd();
  Cq& create_cq(int depth);

  Device& device() { return device_; }
  fabric::NodeId node() const { return node_; }

  /// Resolve an rkey to a region registered on this node (target-side
  /// validation of incoming RDMA).
  Mr* find_remote_mr(Rkey rkey);

 private:
  friend class Pd;

  Device& device_;
  fabric::NodeId node_;
  std::vector<std::unique_ptr<Pd>> pds_;
  std::vector<std::unique_ptr<Cq>> cqs_;
  std::map<Rkey, Mr*> mr_registry_;
};

/// Registered memory region.
class Mr {
 public:
  Mr(std::span<std::byte> range, unsigned access, Lkey lkey, Rkey rkey)
      : range_(range), access_(access), lkey_(lkey), rkey_(rkey) {}

  std::uint64_t addr() const { return wire_addr(range_.data()); }
  std::size_t length() const { return range_.size(); }
  unsigned access() const { return access_; }
  Lkey lkey() const { return lkey_; }
  Rkey rkey() const { return rkey_; }

  /// True when [addr, addr+len) lies inside this region.
  bool contains(std::uint64_t addr, std::size_t len) const;

 private:
  std::span<std::byte> range_;
  unsigned access_;
  Lkey lkey_;
  Rkey rkey_;
};

/// Completion queue.
class Cq {
 public:
  explicit Cq(int depth) : depth_(depth) {}
  Cq(const Cq&) = delete;
  Cq& operator=(const Cq&) = delete;

  /// Pop up to out.size() completions; returns the number written
  /// (cf. ibv_poll_cq).
  int poll(std::span<Wc> out);

  std::size_t pending() const { return entries_.size(); }
  bool overrun() const { return overrun_; }

  /// Internal: raise a completion (called by Qp / delivery paths).
  void push(Wc wc);

  /// Completion-channel analogue: invoked after every push so the owner
  /// can schedule a progress poll (cf. ibv_req_notify_cq + comp channel).
  void set_on_push(std::function<void()> fn) { on_push_ = std::move(fn); }

 private:
  int depth_;
  bool overrun_ = false;
  std::deque<Wc> entries_;
  std::function<void()> on_push_;
};

/// Protection domain.
class Pd {
 public:
  explicit Pd(Context& ctx) : context_(ctx) {}
  Pd(const Pd&) = delete;
  Pd& operator=(const Pd&) = delete;

  /// Register `range` for the given access; the PD keeps ownership of the
  /// Mr object (not of the memory).
  Mr& register_mr(std::span<std::byte> range, unsigned access);

  /// Create an RC queue pair with separate (or shared) send/recv CQs.
  Qp& create_qp(Cq& send_cq, Cq& recv_cq, QpCaps caps = {});

  Context& context() { return context_; }

  /// Find a local MR covering [addr, addr+len) whose lkey matches.
  const Mr* find_local_mr(Lkey lkey, std::uint64_t addr,
                          std::size_t len) const;

 private:
  Context& context_;
  std::vector<std::unique_ptr<Mr>> mrs_;
  std::vector<std::unique_ptr<Qp>> qps_;
};

/// RC queue pair.
class Qp {
 public:
  Qp(Pd& pd, Cq& send_cq, Cq& recv_cq, QpCaps caps, std::uint32_t qp_num);
  Qp(const Qp&) = delete;
  Qp& operator=(const Qp&) = delete;

  std::uint32_t qp_num() const { return qp_num_; }
  QpState state() const { return state_; }
  int outstanding_send_wrs() const { return outstanding_; }
  const QpCaps& caps() const { return caps_; }

  // -- state machine (cf. ibv_modify_qp) -----------------------------------
  Status to_init();
  /// Ready-to-receive: binds this QP to its remote peer.
  Status to_rtr(std::uint32_t remote_qp_num);
  Status to_rts();

  // -- work submission ------------------------------------------------------
  /// cf. ibv_post_send.  Returns kResourceExhausted when
  /// max_send_wr WRs are already outstanding (the ConnectX-5 16-WR limit
  /// the paper designs around).
  Status post_send(const SendWr& wr);

  /// cf. ibv_post_recv.  Legal from INIT onwards.
  Status post_recv(const RecvWr& wr);

 private:
  friend class Device;

  struct PostedRecv {
    RecvWr wr;
    std::size_t total_length;
  };

  Pd& pd_;
  Cq& send_cq_;
  Cq& recv_cq_;
  QpCaps caps_;
  std::uint32_t qp_num_;
  QpState state_ = QpState::kReset;
  std::uint32_t remote_qp_num_ = 0;
  Qp* remote_ = nullptr;  // resolved at to_rtr time
  int outstanding_ = 0;
  std::deque<PostedRecv> recv_queue_;

  Status validate_sges(const std::vector<Sge>& sges, unsigned required_access,
                       std::size_t* total) const;

  // Target-side handlers (run on delivery).
  struct DeliveryResult {
    WcStatus status = WcStatus::kSuccess;
    std::uint32_t byte_len = 0;
    bool recv_wr_consumed = false;
    std::uint64_t recv_wr_id = 0;
  };
  DeliveryResult deliver_rdma_write(const SendWr& wr, bool with_imm,
                                    bool copy_data);
  DeliveryResult deliver_send(const SendWr& wr, bool copy_data);

  void complete_send(const SendWr& wr, const DeliveryResult& result,
                     Time when);
};

}  // namespace partib::verbs
