// The verbs API over the simulated fabric.
//
// Object model mirrors libibverbs:
//
//   Device (one per fabric)
//    └─ Context (one per node; cf. ibv_open_device)
//        ├─ Cq  (completion queues)
//        └─ Pd  (protection domains)
//            ├─ Mr (registered memory regions with lkey/rkey)
//            └─ Qp (RC queue pairs; RESET→INIT→RTR→RTS state machine)
//
// Ownership follows the factory-keeps-ownership idiom: create_* /
// register_* return non-owning references whose lifetime is bounded by the
// parent object.  All operations are driven by the simulation engine; the
// API itself performs no blocking.
//
// Handle resolution is dense-index, not tree-search: qp_nums and rkeys are
// allocated sequentially by the device, so find_qp / find_remote_mr are a
// bounds check plus one array load — the cost model of a real NIC's QP
// context table, and O(log n) cheaper than the std::map registries they
// replaced.  Queues (CQ entries, posted receives) are power-of-two ring
// buffers, and each QP stages in-flight sends in a fixed slab of WQE slots
// so posting allocates nothing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "backend/transport.hpp"
#include "common/bits.hpp"
#include "common/ring.hpp"
#include "common/status.hpp"
#include "verbs/types.hpp"

namespace partib::verbs {

class Context;
class Pd;
class Mr;
class Cq;
class Qp;
class Srq;

/// Aggregate resource accounting for one context (see Context::footprint).
///
/// `provisioned_bytes` models what real hardware commits at creation time
/// — ibv_create_cq/qp/srq allocate the full queue up front, so a channel
/// that provisions a 65536-entry CQ pays for it whether or not completions
/// ever burst that deep.  `resident_bytes` is what the simulator's lazily
/// growing rings actually hold.  The connection-scale comparison in
/// docs/PERF.md reports both.
struct ResourceFootprint {
  int cqs = 0;
  int qps = 0;
  int srqs = 0;
  std::size_t provisioned_bytes = 0;
  std::size_t resident_bytes = 0;
};

/// The "HCA": entry point tying contexts to the transport backend and
/// providing device-wide qp_num / key allocation.  The device consumes
/// only the backend::Transport interface, so the same verbs object model
/// runs over the DES fabric, the shm transport, or a hardware stub.
class Device {
 public:
  /// qp_nums are dense from here (mirrors real HCAs not handing out 0..2;
  /// also keeps handles visually distinct from ranks/indices in traces).
  static constexpr std::uint32_t kFirstQpNum = 100;

  explicit Device(backend::Transport& fab) : fabric_(fab) {}
  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  /// Open a context on a fabric node (creates the node's verbs state).
  Context& open(fabric::NodeId node);

  backend::Transport& fab() { return fabric_; }

  /// Device-wide QP lookup used to resolve a connected remote QP.
  Qp* find_qp(std::uint32_t qp_num) {
    const std::uint32_t idx = qp_num - kFirstQpNum;
    return qp_num >= kFirstQpNum && idx < qp_by_num_.size() ? qp_by_num_[idx]
                                                            : nullptr;
  }

 private:
  friend class Context;
  friend class Pd;

  // MRs are keyed device-wide: lkeys are the odd keys (1, 3, 5, ...) and
  // rkeys the even ones (2, 4, 6, ...), so rkey -> slot is (rkey/2 - 1).
  // The owning context is recorded because find_remote_mr must only
  // resolve regions registered on the target's own node.
  struct MrSlot {
    Context* owner = nullptr;
    Mr* mr = nullptr;
  };

  backend::Transport& fabric_;
  std::vector<std::unique_ptr<Context>> contexts_;
  std::vector<Qp*> qp_by_num_;   // index == qp_num - kFirstQpNum
  std::vector<MrSlot> mr_by_rkey_;  // index == rkey / 2 - 1
  std::uint32_t next_key_ = 1;
};

/// Per-node device context.
class Context {
 public:
  Context(Device& dev, fabric::NodeId node) : device_(dev), node_(node) {}
  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  Pd& alloc_pd();
  Cq& create_cq(int depth);

  Device& device() { return device_; }
  fabric::NodeId node() const { return node_; }

  /// Sum CQ/QP/SRQ memory over everything created on this node.
  ResourceFootprint footprint() const;

  /// Resolve an rkey to a region registered on this node (target-side
  /// validation of incoming RDMA).
  Mr* find_remote_mr(Rkey rkey) {
    // rkeys are the even keys; odd or unallocated values miss.
    if (rkey < 2 || (rkey & 1u) != 0) return nullptr;
    const std::size_t idx = rkey / 2 - 1;
    if (idx >= device_.mr_by_rkey_.size()) return nullptr;
    const Device::MrSlot& slot = device_.mr_by_rkey_[idx];
    return slot.owner == this ? slot.mr : nullptr;
  }

 private:
  friend class Pd;

  Device& device_;
  fabric::NodeId node_;
  std::vector<std::unique_ptr<Pd>> pds_;
  std::vector<std::unique_ptr<Cq>> cqs_;
};

/// Registered memory region.
class Mr {
 public:
  Mr(std::span<std::byte> range, unsigned access, Lkey lkey, Rkey rkey)
      : range_(range), access_(access), lkey_(lkey), rkey_(rkey) {}

  std::uint64_t addr() const { return wire_addr(range_.data()); }
  std::size_t length() const { return range_.size(); }
  unsigned access() const { return access_; }
  Lkey lkey() const { return lkey_; }
  Rkey rkey() const { return rkey_; }

  /// True when [addr, addr+len) lies inside this region.
  bool contains(std::uint64_t addr, std::size_t len) const;

 private:
  std::span<std::byte> range_;
  unsigned access_;
  Lkey lkey_;
  Rkey rkey_;
};

/// Completion queue.
///
/// Entries live in a power-of-two ring that grows lazily toward `depth`:
/// the configured depth is a capacity bound (overrun past it is fatal, as
/// on real hardware), not an eager reservation — the default depth is
/// 65536 entries and most CQs see a handful in flight.
class Cq {
 public:
  explicit Cq(int depth) : depth_(depth) {}
  Cq(const Cq&) = delete;
  Cq& operator=(const Cq&) = delete;

  /// Pop up to out.size() completions; returns the number written
  /// (cf. ibv_poll_cq).
  int poll(std::span<Wc> out);

  /// Zero-copy drain surface (simulator-internal; used by the shared-CQ
  /// demux in mpi::WcRouter): expose the contiguous run of completions at
  /// the ring head, dispatch in place, then discard() what was consumed.
  /// Entries stay queued until discard().  A push from inside dispatch
  /// may grow the ring and relocate the run, so consumers must stop and
  /// re-peek when ring_capacity() changes.
  std::span<const Wc> peek_run();
  void discard(int n);
  std::size_t ring_capacity() const { return entries_.capacity(); }

  std::size_t pending() const { return entries_.size(); }
  bool overrun() const { return overrun_; }

  /// Internal: raise a completion (called by Qp / delivery paths).
  void push(const Wc& wc);

  /// Completion-channel analogue: invoked after every push so the owner
  /// can schedule a progress poll (cf. ibv_req_notify_cq + comp channel).
  void set_on_push(std::function<void()> fn) { on_push_ = std::move(fn); }

  /// Shard ownership tag for the threaded runtime (src/runtime/): the
  /// progress shard whose drain loop is allowed to poll this CQ.  -1
  /// (check::kNoShard) = untagged, i.e. single-threaded DES mode.  The
  /// shard-affinity auditor (check/concurrency_check.hpp) cross-checks
  /// the tag against the draining thread's declared shard on every poll.
  void set_shard(int shard) { shard_ = shard; }
  int shard() const { return shard_; }

  /// Hardware commits the full `depth` at creation (see ResourceFootprint).
  std::size_t provisioned_bytes() const {
    return static_cast<std::size_t>(depth_) * sizeof(Wc);
  }
  std::size_t resident_bytes() const {
    return entries_.capacity() * sizeof(Wc);
  }

 private:
  int depth_;
  int shard_ = -1;
  bool overrun_ = false;
  common::Ring<Wc> entries_;
  std::function<void()> on_push_;
};

/// Protection domain.
class Pd {
 public:
  explicit Pd(Context& ctx) : context_(ctx) {}
  Pd(const Pd&) = delete;
  Pd& operator=(const Pd&) = delete;

  /// Register `range` for the given access; the PD keeps ownership of the
  /// Mr object (not of the memory).
  Mr& register_mr(std::span<std::byte> range, unsigned access);

  /// Create an RC queue pair with separate (or shared) send/recv CQs.
  /// With `srq` non-null the QP draws receive WRs from the shared receive
  /// queue instead of a private ring (cf. ibv_qp_init_attr.srq); its own
  /// post_recv is then rejected, as on real hardware.
  Qp& create_qp(Cq& send_cq, Cq& recv_cq, QpCaps caps = {},
                Srq* srq = nullptr);

  /// Create a shared receive queue (cf. ibv_create_srq).  The PD keeps
  /// ownership, as with MRs and QPs.
  Srq& create_srq(SrqAttrs attrs = {});

  Context& context() { return context_; }

  /// Find a local MR covering [addr, addr+len) whose lkey matches.
  const Mr* find_local_mr(Lkey lkey, std::uint64_t addr,
                          std::size_t len) const;

 private:
  friend class Context;

  Context& context_;
  std::vector<std::unique_ptr<Mr>> mrs_;
  std::vector<std::unique_ptr<Qp>> qps_;
  std::vector<std::unique_ptr<Srq>> srqs_;
};

/// Shared receive queue (cf. ibv_srq): one ring of posted receive WRs
/// drained in post order by every QP attached to it, so receive-side
/// provisioning is per-node instead of per-connection.  Receive
/// completions still land on each consuming QP's recv CQ with wc.qp_num
/// identifying the consumer — demultiplexing is the reader's job, exactly
/// as with a hardware SRQ.
class Srq {
 public:
  Srq(Pd& pd, SrqAttrs attrs);
  Srq(const Srq&) = delete;
  Srq& operator=(const Srq&) = delete;

  /// cf. ibv_post_srq_recv.  Returns kResourceExhausted at max_wr (rule
  /// srq.capacity under PARTIB_CHECK).
  Status post_recv(const RecvWr& wr);

  /// Re-arm the low-watermark event (cf. ibv_modify_srq + IBV_SRQ_LIMIT).
  /// `limit` must be in [0, max_wr); 0 disarms (rule srq.limit).
  Status arm_limit(int limit);

  /// Grow the capacity bound (cf. ibv_modify_srq + IBV_SRQ_MAX_WR).
  /// Shrinking below the posted count or the armed limit is rejected.
  Status resize(int max_wr);

  /// One-shot limit event sink (cf. IBV_EVENT_SRQ_LIMIT_REACHED on the
  /// async event channel): fires when a consume drops the posted count
  /// below the armed limit, then disarms until the next arm_limit.
  void set_on_limit(std::function<void()> fn) { on_limit_ = std::move(fn); }

  std::size_t posted() const { return queue_.size(); }
  const SrqAttrs& attrs() const { return attrs_; }
  Pd& pd() { return pd_; }

  std::size_t provisioned_bytes() const {
    return static_cast<std::size_t>(attrs_.max_wr) * sizeof(PostedRecv);
  }
  std::size_t resident_bytes() const {
    return queue_.capacity() * sizeof(PostedRecv);
  }

  /// Internal: delivery-path dequeue, called by an attached Qp.  False on
  /// an empty queue (the RNR condition).
  bool consume(PostedRecv* out);

 private:
  Pd& pd_;
  SrqAttrs attrs_;
  bool limit_armed_ = false;
  common::Ring<PostedRecv> queue_;
  std::function<void()> on_limit_;
};

/// RC queue pair.
///
/// In-flight sends are staged in a slab of `max_send_wr` WQE slots
/// allocated once at construction; the fabric callbacks capture only
/// {qp, slot index}, which keeps every per-WR closure inside
/// std::function's small-object buffer.  A slot is recycled when the last
/// completion callback referencing it has fired (the send CQE trails the
/// recv CQE or vice versa depending on L vs o_r, so release is
/// reference-counted, not FIFO).
class Qp {
 public:
  Qp(Pd& pd, Cq& send_cq, Cq& recv_cq, QpCaps caps, std::uint32_t qp_num,
     Srq* srq);
  Qp(const Qp&) = delete;
  Qp& operator=(const Qp&) = delete;

  std::uint32_t qp_num() const { return qp_num_; }
  QpState state() const { return state_; }
  int outstanding_send_wrs() const { return outstanding_; }
  const QpCaps& caps() const { return caps_; }
  /// The shared receive queue this QP draws from, nullptr when it owns a
  /// private receive ring.
  Srq* srq() { return srq_; }
  /// Payload bytes accepted by post_send over this QP's lifetime (survives
  /// resets; feeds per-connection statistics in mpi/conn.hpp).
  std::uint64_t bytes_posted_total() const { return bytes_posted_; }
  /// The peer this QP was last connected to (0 before the first to_rtr).
  /// Survives to_reset so a recovery path can reconnect to the same peer
  /// without re-running the control-plane exchange.
  std::uint32_t remote_qp_num() const { return remote_qp_num_; }

  // -- state machine (cf. ibv_modify_qp) -----------------------------------
  Status to_init();
  /// Ready-to-receive: binds this QP to its remote peer.
  Status to_rtr(std::uint32_t remote_qp_num);
  Status to_rts();
  /// Back to RESET — the first hop of the error-recovery recycle
  /// (ERROR -> RESET -> INIT -> RTR -> RTS).  Legal from any state, but
  /// only once every outstanding send WR has completed (flushed): a reset
  /// with WRs in flight would orphan their CQEs (rule
  /// qp.reset_outstanding).  Drops all posted receive WRs.
  Status to_reset();

  // -- work submission ------------------------------------------------------
  /// cf. ibv_post_send.  Returns kResourceExhausted when
  /// max_send_wr WRs are already outstanding (the ConnectX-5 16-WR limit
  /// the paper designs around).
  Status post_send(const SendWr& wr);

  /// cf. ibv_post_recv.  Legal from INIT onwards.  Rejected with
  /// kInvalidArgument on an SRQ-attached QP (post to the SRQ instead, as
  /// ibv_post_recv fails with EINVAL there).
  Status post_recv(const RecvWr& wr);

  /// Shard ownership tag (see Cq::set_shard): the progress shard whose
  /// context may post to this QP in threaded mode; -1 = untagged.
  void set_shard(int shard) { shard_ = shard; }
  int shard() const { return shard_; }

  /// Hardware commits the send slab and (without an SRQ) the full
  /// max_recv_wr receive queue at creation; SRQ-attached QPs share the
  /// SRQ's provisioning instead (see ResourceFootprint).
  std::size_t provisioned_bytes() const {
    std::size_t b = static_cast<std::size_t>(caps_.max_send_wr) * sizeof(Wqe);
    if (srq_ == nullptr) {
      b += static_cast<std::size_t>(caps_.max_recv_wr) * sizeof(PostedRecv);
    }
    return b;
  }
  std::size_t resident_bytes() const {
    return wqes_.capacity() * sizeof(Wqe) +
           recv_queue_.capacity() * sizeof(PostedRecv);
  }

 private:
  friend class Device;

  // Target-side handlers (run on delivery).
  struct DeliveryResult {
    WcStatus status = WcStatus::kSuccess;
    std::uint32_t byte_len = 0;
    bool recv_wr_consumed = false;
    std::uint64_t recv_wr_id = 0;
  };

  /// One staged in-flight send: the WR, its delivery outcome, and the
  /// number of not-yet-fired fabric callbacks that still read the slot.
  struct Wqe {
    SendWr wr;
    DeliveryResult result;
    std::uint32_t next_free = kNilWqe;
    std::uint8_t refs = 0;
  };
  static constexpr std::uint32_t kNilWqe = ~std::uint32_t{0};

  Pd& pd_;
  Cq& send_cq_;
  Cq& recv_cq_;
  QpCaps caps_;
  std::uint32_t qp_num_;
  Srq* srq_;  ///< shared receive queue, or nullptr for a private ring
  int shard_ = -1;
  QpState state_ = QpState::kReset;
  std::uint32_t remote_qp_num_ = 0;
  Qp* remote_ = nullptr;  // resolved at to_rtr time
  int outstanding_ = 0;
  std::uint64_t bytes_posted_ = 0;
  common::Ring<PostedRecv> recv_queue_;
  std::vector<Wqe> wqes_;  // fixed at max_send_wr slots
  std::uint32_t free_wqe_ = kNilWqe;

  /// Dequeue the next receive WR — from the SRQ when attached, else from
  /// the private ring.  False = nothing posted (RNR).
  bool take_recv(PostedRecv* out);

  Status validate_sges(const SgList& sges, unsigned required_access,
                       std::size_t* total) const;

  std::uint32_t acquire_wqe();
  void release_wqe_ref(std::uint32_t slot);

  // Fabric callback bodies; each captures only {this, slot}.
  void wqe_move_data(std::uint32_t slot);
  void wqe_send_complete(std::uint32_t slot, Time when);
  void wqe_recv_complete(std::uint32_t slot, Time when);
  /// Fault path: the fabric failed the op.  Raises the error CQE (no data
  /// moved, no receive WR consumed, no receive CQE) and recycles the slot.
  void wqe_failed(std::uint32_t slot, Time when, fabric::OpFailure failure);

  DeliveryResult deliver_rdma_write(const SendWr& wr, bool with_imm,
                                    bool copy_data);
  DeliveryResult deliver_send(const SendWr& wr, bool copy_data);

  void complete_send(const SendWr& wr, const DeliveryResult& result,
                     Time when);
};

}  // namespace partib::verbs
