// Wire-level verb types, mirroring the libibverbs vocabulary
// (ibv_sge, ibv_send_wr, ibv_wc, ...) in C++ form.
#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <iosfwd>

#include "common/assert.hpp"
#include "common/time.hpp"

namespace partib::verbs {

using Lkey = std::uint32_t;
using Rkey = std::uint32_t;

/// MR access flags (a subset of IBV_ACCESS_*).
enum Access : unsigned {
  kLocalRead = 0,          // always granted
  kLocalWrite = 1u << 0,   // required for receive buffers
  kRemoteWrite = 1u << 1,  // required for RDMA-write targets
  kRemoteRead = 1u << 2,
};

/// Scatter/gather element: a slice of a registered memory region.
struct Sge {
  std::uint64_t addr = 0;
  std::uint32_t length = 0;
  Lkey lkey = 0;
};

/// Fixed-capacity inline scatter/gather list.
///
/// Real ibv_send_wr carries `sg_list` as a pointer + count into
/// caller-owned storage, so posting never allocates; the seed's
/// `std::vector<Sge>` put one heap allocation on every WR fill and made
/// SendWr expensive to stage, queue and retry.  An inline array restores
/// the wire-idiomatic cost model and keeps SendWr/RecvWr trivially
/// copyable, which in turn lets the WQE slab and backlog rings relocate
/// them with memcpy.  Capacity mirrors a typical max_send_sge of 4; every
/// WR in the simulator uses 1–2 entries.
class SgList {
 public:
  static constexpr std::size_t kMaxSges = 4;

  SgList() = default;
  SgList(std::initializer_list<Sge> il) {
    PARTIB_ASSERT(il.size() <= kMaxSges);
    for (const Sge& s : il) sges_[size_++] = s;
  }

  void push_back(const Sge& s) {
    PARTIB_ASSERT(size_ < kMaxSges);
    sges_[size_++] = s;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  void clear() { size_ = 0; }

  Sge& operator[](std::size_t i) {
    PARTIB_ASSERT(i < size_);
    return sges_[i];
  }
  const Sge& operator[](std::size_t i) const {
    PARTIB_ASSERT(i < size_);
    return sges_[i];
  }

  Sge* begin() { return sges_; }
  Sge* end() { return sges_ + size_; }
  const Sge* begin() const { return sges_; }
  const Sge* end() const { return sges_ + size_; }

 private:
  std::size_t size_ = 0;
  Sge sges_[kMaxSges] = {};
};

enum class Opcode {
  kRdmaWrite,         // IBV_WR_RDMA_WRITE
  kRdmaWriteWithImm,  // IBV_WR_RDMA_WRITE_WITH_IMM
  kSend,              // IBV_WR_SEND (two-sided)
};

struct SendWr {
  std::uint64_t wr_id = 0;
  Opcode opcode = Opcode::kRdmaWrite;
  SgList sg_list;
  /// Network-byte-order 32-bit immediate (only *_WITH_IMM delivers it).
  std::uint32_t imm = 0;
  /// RDMA target (ignored for kSend).
  std::uint64_t remote_addr = 0;
  Rkey rkey = 0;
  /// Simulator extension: scales the per-QP wire-rate cap for this WR.
  /// Software stacks whose eager path cannot keep the DMA pipeline full
  /// (e.g. UCX eager/zcopy) post with a factor < 1.
  double rate_cap_factor = 1.0;
};

struct RecvWr {
  std::uint64_t wr_id = 0;
  /// Landing buffers for kSend traffic; RDMA-write-with-immediate consumes
  /// the WR but writes through the rkey'd region instead.
  SgList sg_list;
};

enum class WcStatus {
  kSuccess,
  kLocalProtectionError,  // sge outside a registered MR
  kRemoteAccessError,     // bad rkey / range / permissions at the target
  kRemoteNotReady,        // no receive WR posted at the target
  kLocalLengthError,      // receive buffer too small for incoming send
  kRetryExcErr,           // transport retry count exceeded (IBV_WC_RETRY_EXC_ERR)
  kRnrRetryExcErr,        // RNR NAK retry count exceeded (IBV_WC_RNR_RETRY_EXC_ERR)
  kWrFlushErr,            // WR flushed: QP entered the error state (IBV_WC_WR_FLUSH_ERR)
};

enum class WcOpcode {
  kRdmaWrite,       // send-side completion of an RDMA write
  kSend,            // send-side completion of a two-sided send
  kRecv,            // receive completion of a two-sided send
  kRecvRdmaWithImm, // receive completion of RDMA_WRITE_WITH_IMM
};

struct Wc {
  std::uint64_t wr_id = 0;
  WcStatus status = WcStatus::kSuccess;
  WcOpcode opcode = WcOpcode::kRdmaWrite;
  std::uint32_t byte_len = 0;
  std::uint32_t imm = 0;
  bool has_imm = false;
  std::uint32_t qp_num = 0;
  /// Simulator extension: virtual time at which the CQE was raised.
  Time completion_time = 0;
};

enum class QpState { kReset, kInit, kRtr, kRts, kError };

struct QpCaps {
  int max_send_wr = 16;  ///< ConnectX-5 concurrent-RDMA-WR limit
  int max_recv_wr = 1024;
};

/// Shared-receive-queue attributes (cf. ibv_srq_init_attr.attr).
struct SrqAttrs {
  int max_wr = 1024;  ///< capacity bound; post_recv past it is rejected
  /// Low-watermark arm value (cf. ibv_modify_srq IBV_SRQ_LIMIT): when the
  /// posted count drops below it the one-shot limit event fires and the
  /// limit disarms, exactly like IBV_EVENT_SRQ_LIMIT_REACHED.  0 = never.
  int srq_limit = 0;
};

/// One posted receive WR staged for delivery.  Shared between the per-QP
/// receive ring and the SRQ slab (verbs.hpp).
struct PostedRecv {
  RecvWr wr;
  std::size_t total_length = 0;
};

constexpr const char* to_string(WcStatus s) {
  switch (s) {
    case WcStatus::kSuccess: return "SUCCESS";
    case WcStatus::kLocalProtectionError: return "LOCAL_PROTECTION_ERROR";
    case WcStatus::kRemoteAccessError: return "REMOTE_ACCESS_ERROR";
    case WcStatus::kRemoteNotReady: return "REMOTE_NOT_READY";
    case WcStatus::kLocalLengthError: return "LOCAL_LENGTH_ERROR";
    case WcStatus::kRetryExcErr: return "RETRY_EXC_ERR";
    case WcStatus::kRnrRetryExcErr: return "RNR_RETRY_EXC_ERR";
    case WcStatus::kWrFlushErr: return "WR_FLUSH_ERR";
  }
  return "UNKNOWN";
}

constexpr const char* to_string(QpState s) {
  switch (s) {
    case QpState::kReset: return "RESET";
    case QpState::kInit: return "INIT";
    case QpState::kRtr: return "RTR";
    case QpState::kRts: return "RTS";
    case QpState::kError: return "ERROR";
  }
  return "UNKNOWN";
}

// Stream insertion for diagnostics and test-failure messages: gtest would
// otherwise print the raw enum ordinal, which no one can grep a verbs man
// page for.  Defined out of line (types.cpp) to keep <ostream> out of this
// header.
std::ostream& operator<<(std::ostream& os, WcStatus s);
std::ostream& operator<<(std::ostream& os, QpState s);

}  // namespace partib::verbs
