#include "verbs/verbs.hpp"

#include <cstring>

#include "check/hooks.hpp"
#include "common/assert.hpp"
#include "common/thread_annotations.hpp"

namespace partib::verbs {

// ---------------------------------------------------------------------------
// Device / Context
// ---------------------------------------------------------------------------

Context& Device::open(fabric::NodeId node) {
  PARTIB_ASSERT(node >= 0 && node < fabric_.node_count());
  contexts_.push_back(std::make_unique<Context>(*this, node));
  return *contexts_.back();
}

Pd& Context::alloc_pd() {
  pds_.push_back(std::make_unique<Pd>(*this));
  return *pds_.back();
}

Cq& Context::create_cq(int depth) {
  PARTIB_ASSERT(depth > 0);
  cqs_.push_back(std::make_unique<Cq>(depth));
  PARTIB_CHECK_HOOK(on_cq_created(cqs_.back().get(), depth));
  return *cqs_.back();
}

ResourceFootprint Context::footprint() const {
  ResourceFootprint fp;
  for (const auto& cq : cqs_) {
    ++fp.cqs;
    fp.provisioned_bytes += cq->provisioned_bytes();
    fp.resident_bytes += cq->resident_bytes();
  }
  for (const auto& pd : pds_) {
    for (const auto& qp : pd->qps_) {
      ++fp.qps;
      fp.provisioned_bytes += qp->provisioned_bytes();
      fp.resident_bytes += qp->resident_bytes();
    }
    for (const auto& srq : pd->srqs_) {
      ++fp.srqs;
      fp.provisioned_bytes += srq->provisioned_bytes();
      fp.resident_bytes += srq->resident_bytes();
    }
  }
  return fp;
}

// ---------------------------------------------------------------------------
// Mr / Cq / Pd
// ---------------------------------------------------------------------------

bool Mr::contains(std::uint64_t addr, std::size_t len) const {
  const std::uint64_t base = this->addr();
  return addr >= base && addr + len <= base + length();
}

PARTIB_HOT int Cq::poll(std::span<Wc> out) {
  PARTIB_CHECK_HOOK(on_owned_access(this, "cq"));
  PARTIB_CHECK_HOOK(on_shard_access(this, shard_, "cq"));
  int n = 0;
  while (n < static_cast<int>(out.size()) && !entries_.empty()) {
    out[static_cast<std::size_t>(n)] = entries_.front();
    entries_.pop_front();
    ++n;
  }
  PARTIB_CHECK_HOOK(on_cq_poll(this, n));
  return n;
}

PARTIB_HOT std::span<const Wc> Cq::peek_run() {
  PARTIB_CHECK_HOOK(on_owned_access(this, "cq"));
  PARTIB_CHECK_HOOK(on_shard_access(this, shard_, "cq"));
  return entries_.front_run();
}

PARTIB_HOT void Cq::discard(int n) {
  entries_.pop_front_n(static_cast<std::size_t>(n));
  PARTIB_CHECK_HOOK(on_cq_poll(this, n));
}

void Cq::push(const Wc& wc) {
  PARTIB_CHECK_HOOK(on_cq_push(this));
  if (entries_.size() >= static_cast<std::size_t>(depth_)) {
    // CQ overrun is fatal on real hardware too; surfacing it loudly keeps
    // sizing bugs out of the upper layers.
    overrun_ = true;
    PARTIB_ASSERT_MSG(false, "completion queue overrun");
  }
  entries_.push_back(wc);
  if (on_push_) on_push_();
}

Mr& Pd::register_mr(std::span<std::byte> range, unsigned access) {
  Device& dev = context_.device();
  const Lkey lkey = dev.next_key_++;
  const Rkey rkey = dev.next_key_++;
  mrs_.push_back(std::make_unique<Mr>(range, access, lkey, rkey));
  Mr& mr = *mrs_.back();
  PARTIB_ASSERT(rkey / 2 - 1 == dev.mr_by_rkey_.size());
  dev.mr_by_rkey_.push_back(Device::MrSlot{&context_, &mr});
  PARTIB_CHECK_HOOK(on_mr_registered(this, mr.addr(), mr.length(), lkey,
                                     rkey, access));
  return mr;
}

Qp& Pd::create_qp(Cq& send_cq, Cq& recv_cq, QpCaps caps, Srq* srq) {
  Device& dev = context_.device();
  const std::uint32_t num =
      Device::kFirstQpNum + static_cast<std::uint32_t>(dev.qp_by_num_.size());
  qps_.push_back(
      std::make_unique<Qp>(*this, send_cq, recv_cq, caps, num, srq));
  Qp& qp = *qps_.back();
  dev.qp_by_num_.push_back(&qp);
  PARTIB_CHECK_HOOK(on_qp_created(&qp, num, caps));
  return qp;
}

Srq& Pd::create_srq(SrqAttrs attrs) {
  srqs_.push_back(std::make_unique<Srq>(*this, attrs));
  PARTIB_CHECK_HOOK(on_srq_created(srqs_.back().get(), attrs));
  return *srqs_.back();
}

// ---------------------------------------------------------------------------
// Srq
// ---------------------------------------------------------------------------

Srq::Srq(Pd& pd, SrqAttrs attrs) : pd_(pd), attrs_(attrs) {
  PARTIB_ASSERT(attrs.max_wr > 0);
  PARTIB_ASSERT(attrs.srq_limit >= 0 && attrs.srq_limit < attrs.max_wr);
  limit_armed_ = attrs.srq_limit > 0;
}

Status Srq::post_recv(const RecvWr& wr) {
  PARTIB_CHECK_HOOK(on_srq_post(this, &pd_, wr));
  if (queue_.size() >= static_cast<std::size_t>(attrs_.max_wr)) {
    return Status::kResourceExhausted;
  }
  std::size_t total = 0;
  for (const Sge& sge : wr.sg_list) {
    const Mr* mr = pd_.find_local_mr(sge.lkey, sge.addr, sge.length);
    if (mr == nullptr ||
        (mr->access() & Access::kLocalWrite) != Access::kLocalWrite) {
      return Status::kInvalidArgument;
    }
    total += sge.length;
  }
  queue_.push_back(PostedRecv{wr, total});
  PARTIB_CHECK_HOOK(on_srq_accepted(this));
  return Status::kOk;
}

Status Srq::arm_limit(int limit) {
  PARTIB_CHECK_HOOK(on_srq_armed(this, limit));
  if (limit < 0 || limit >= attrs_.max_wr) return Status::kInvalidArgument;
  attrs_.srq_limit = limit;
  limit_armed_ = limit > 0;
  return Status::kOk;
}

Status Srq::resize(int max_wr) {
  if (max_wr < static_cast<int>(queue_.size()) || max_wr <= attrs_.srq_limit) {
    return Status::kInvalidArgument;
  }
  attrs_.max_wr = max_wr;
  PARTIB_CHECK_HOOK(on_srq_resized(this, max_wr));
  return Status::kOk;
}

bool Srq::consume(PostedRecv* out) {
  if (queue_.empty()) return false;
  *out = queue_.front();
  queue_.pop_front();
  PARTIB_CHECK_HOOK(on_srq_consumed(this));
  if (limit_armed_ &&
      queue_.size() < static_cast<std::size_t>(attrs_.srq_limit)) {
    // One-shot, as IBV_EVENT_SRQ_LIMIT_REACHED: disarm before notifying so
    // a refill posted from the handler can re-arm cleanly.
    limit_armed_ = false;
    if (on_limit_) on_limit_();
  }
  return true;
}

const Mr* Pd::find_local_mr(Lkey lkey, std::uint64_t addr,
                            std::size_t len) const {
  for (const auto& mr : mrs_) {
    if (mr->lkey() == lkey && mr->contains(addr, len)) return mr.get();
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Qp
// ---------------------------------------------------------------------------

Qp::Qp(Pd& pd, Cq& send_cq, Cq& recv_cq, QpCaps caps, std::uint32_t qp_num,
       Srq* srq)
    : pd_(pd),
      send_cq_(send_cq),
      recv_cq_(recv_cq),
      caps_(caps),
      qp_num_(qp_num),
      srq_(srq) {
  PARTIB_ASSERT(srq == nullptr || &srq->pd() == &pd);
  PARTIB_ASSERT(caps.max_send_wr > 0 && caps.max_recv_wr > 0);
  // One WQE slot per possible outstanding WR, chained into a free list;
  // outstanding_ < max_send_wr guarantees acquire_wqe() always succeeds.
  wqes_.resize(static_cast<std::size_t>(caps.max_send_wr));
  for (std::size_t i = 0; i < wqes_.size(); ++i) {
    wqes_[i].next_free = i + 1 < wqes_.size()
                             ? static_cast<std::uint32_t>(i + 1)
                             : kNilWqe;
  }
  free_wqe_ = 0;
}

Status Qp::to_init() {
  if (state_ != QpState::kReset) {
    PARTIB_CHECK_HOOK(on_qp_transition(this, QpState::kInit, false));
    return Status::kInvalidState;
  }
  state_ = QpState::kInit;
  PARTIB_CHECK_HOOK(on_qp_transition(this, QpState::kInit, true));
  return Status::kOk;
}

Status Qp::to_rtr(std::uint32_t remote_qp_num) {
  if (state_ != QpState::kInit) {
    PARTIB_CHECK_HOOK(on_qp_transition(this, QpState::kRtr, false));
    return Status::kInvalidState;
  }
  Qp* remote = pd_.context().device().find_qp(remote_qp_num);
  if (remote == nullptr) return Status::kNotFound;
  remote_qp_num_ = remote_qp_num;
  remote_ = remote;
  state_ = QpState::kRtr;
  PARTIB_CHECK_HOOK(on_qp_transition(this, QpState::kRtr, true));
  return Status::kOk;
}

Status Qp::to_rts() {
  if (state_ != QpState::kRtr) {
    PARTIB_CHECK_HOOK(on_qp_transition(this, QpState::kRts, false));
    return Status::kInvalidState;
  }
  state_ = QpState::kRts;
  PARTIB_CHECK_HOOK(on_qp_transition(this, QpState::kRts, true));
  return Status::kOk;
}

Status Qp::to_reset() {
  // ibv_modify_qp accepts RESET from anywhere, but a reset with WRs still
  // in flight would orphan their flush CQEs; require the drain first.
  if (outstanding_ != 0) {
    PARTIB_CHECK_HOOK(on_qp_reset_outstanding(this, outstanding_));
    PARTIB_CHECK_HOOK(on_qp_transition(this, QpState::kReset, false));
    return Status::kInvalidState;
  }
  state_ = QpState::kReset;
  // Posted receives die with the context (real hardware flushes them; the
  // consumer re-posts after the recycle) — but WRs on an attached SRQ
  // belong to every sibling QP and survive, as on real hardware.
  // remote_qp_num_ survives so the recovery path can
  // to_rtr(remote_qp_num()) without a new handshake.
  if (srq_ == nullptr) recv_queue_.clear();
  pd_.context().device().fab().reset_qp_chain(qp_num_);
  PARTIB_CHECK_HOOK(on_qp_transition(this, QpState::kReset, true));
  return Status::kOk;
}

Status Qp::validate_sges(const SgList& sges, unsigned required_access,
                         std::size_t* total) const {
  std::size_t sum = 0;
  for (const Sge& sge : sges) {
    const Mr* mr = pd_.find_local_mr(sge.lkey, sge.addr, sge.length);
    if (mr == nullptr) return Status::kInvalidArgument;
    if (required_access != 0 &&
        (mr->access() & required_access) != required_access) {
      return Status::kInvalidArgument;
    }
    sum += sge.length;
  }
  *total = sum;
  return Status::kOk;
}

Status Qp::post_recv(const RecvWr& wr) {
  // SRQ-attached QPs have no receive queue of their own; ibv_post_recv
  // fails with EINVAL there and so do we (post to the SRQ instead).
  if (srq_ != nullptr) return Status::kInvalidArgument;
  PARTIB_CHECK_HOOK(on_post_recv(this, &pd_, wr));
  if (state_ == QpState::kReset || state_ == QpState::kError) {
    return Status::kInvalidState;
  }
  if (recv_queue_.size() >= static_cast<std::size_t>(caps_.max_recv_wr)) {
    return Status::kResourceExhausted;
  }
  std::size_t total = 0;
  const Status st = validate_sges(wr.sg_list, Access::kLocalWrite, &total);
  if (!ok(st)) return st;
  recv_queue_.push_back(PostedRecv{wr, total});
  PARTIB_CHECK_HOOK(on_recv_accepted(this));
  return Status::kOk;
}

std::uint32_t Qp::acquire_wqe() {
  PARTIB_ASSERT(free_wqe_ != kNilWqe);
  const std::uint32_t slot = free_wqe_;
  free_wqe_ = wqes_[slot].next_free;
  return slot;
}

void Qp::release_wqe_ref(std::uint32_t slot) {
  Wqe& wqe = wqes_[slot];
  PARTIB_ASSERT(wqe.refs > 0);
  if (--wqe.refs == 0) {
    wqe.next_free = free_wqe_;
    free_wqe_ = slot;
  }
}

PARTIB_HOT Status Qp::post_send(const SendWr& wr) {
  PARTIB_CHECK_HOOK(on_owned_access(this, "qp"));
  PARTIB_CHECK_HOOK(on_shard_access(this, shard_, "qp"));
  PARTIB_CHECK_HOOK(on_post_send(this, &pd_, wr));
  if (state_ != QpState::kRts) return Status::kInvalidState;
  if (outstanding_ >= caps_.max_send_wr) return Status::kResourceExhausted;
  std::size_t total = 0;
  const Status st = validate_sges(wr.sg_list, /*required_access=*/0, &total);
  if (!ok(st)) return st;
  PARTIB_ASSERT(remote_ != nullptr);

  ++outstanding_;
  bytes_posted_ += total;
  PARTIB_CHECK_HOOK(on_send_accepted(this));
  backend::Transport& fab = pd_.context().device().fab();
  const bool with_imm = wr.opcode == Opcode::kRdmaWriteWithImm;
  const bool wants_recv_cqe = with_imm || wr.opcode == Opcode::kSend;

  // Stage the WR in a slab slot so every fabric callback captures only
  // {this, slot} — 12 bytes, inside std::function's small-object buffer.
  // The slot outlives the op: the send CQE (landing + L) and the recv CQE
  // (landing + o_r) race in virtual time, so the last reference wins.
  const std::uint32_t slot = acquire_wqe();
  Wqe& wqe = wqes_[slot];
  wqe.wr = wr;
  wqe.result = DeliveryResult{};
  wqe.refs = wants_recv_cqe ? 2 : 1;

  fabric::RdmaOp op;
  op.src = pd_.context().node();
  op.dst = remote_->pd_.context().node();
  op.src_qp = qp_num_;
  op.bytes = total;
  op.rate_cap_factor = wr.rate_cap_factor;
  op.move_data = [this, slot] { wqe_move_data(slot); };
  op.on_send_complete = [this, slot](Time when) {
    wqe_send_complete(slot, when);
  };
  if (wants_recv_cqe) {
    op.on_recv_complete = [this, slot](Time when) {
      wqe_recv_complete(slot, when);
    };
  }
  op.on_failed = [this, slot](Time when, fabric::OpFailure failure) {
    wqe_failed(slot, when, failure);
  };
  fab.post_rdma_write(std::move(op));
  return Status::kOk;
}

void Qp::wqe_move_data(std::uint32_t slot) {
  // Runs exactly at landing, strictly before either completion callback.
  const bool copy = pd_.context().device().fab().copies_data();
  const SendWr& wr = wqes_[slot].wr;
  const DeliveryResult res =
      wr.opcode == Opcode::kSend
          ? remote_->deliver_send(wr, copy)
          : remote_->deliver_rdma_write(
                wr, wr.opcode == Opcode::kRdmaWriteWithImm, copy);
  wqes_[slot].result = res;
}

void Qp::wqe_send_complete(std::uint32_t slot, Time when) {
  complete_send(wqes_[slot].wr, wqes_[slot].result, when);
  release_wqe_ref(slot);
}

void Qp::wqe_recv_complete(std::uint32_t slot, Time when) {
  const Wqe& wqe = wqes_[slot];
  if (wqe.result.recv_wr_consumed) {
    const bool with_imm = wqe.wr.opcode == Opcode::kRdmaWriteWithImm;
    Wc wc;
    wc.wr_id = wqe.result.recv_wr_id;
    wc.status = wqe.result.status;
    wc.opcode = with_imm ? WcOpcode::kRecvRdmaWithImm : WcOpcode::kRecv;
    wc.byte_len = wqe.result.byte_len;
    wc.imm = with_imm ? wqe.wr.imm : 0;
    wc.has_imm = with_imm;
    wc.qp_num = remote_->qp_num();
    wc.completion_time = when;
    remote_->recv_cq_.push(wc);
  }
  release_wqe_ref(slot);
}

void Qp::wqe_failed(std::uint32_t slot, Time when, fabric::OpFailure failure) {
  // A failed op never lands: the recv-CQE callback will not fire, so the
  // slot's remaining references collapse to this one regardless of how
  // many were taken at post time.
  const SendWr wr = wqes_[slot].wr;
  DeliveryResult res;
  switch (failure) {
    case fabric::OpFailure::kRetryExceeded:
      res.status = WcStatus::kRetryExcErr;
      break;
    case fabric::OpFailure::kRnrRetryExceeded:
      res.status = WcStatus::kRnrRetryExcErr;
      break;
    case fabric::OpFailure::kFlushed:
      res.status = WcStatus::kWrFlushErr;
      break;
  }
  res.byte_len = 0;
  // Free the slot *before* raising the error CQE: a consumer re-posting
  // synchronously from the CQE callback (retry-from-error-callback) must
  // find both the outstanding budget and a free slot.
  wqes_[slot].refs = 1;
  release_wqe_ref(slot);
  complete_send(wr, res, when);
}

bool Qp::take_recv(PostedRecv* out) {
  if (srq_ != nullptr) return srq_->consume(out);
  if (recv_queue_.empty()) return false;
  *out = recv_queue_.front();
  recv_queue_.pop_front();
  PARTIB_CHECK_HOOK(on_recv_consumed(this));
  return true;
}

Qp::DeliveryResult Qp::deliver_rdma_write(const SendWr& wr, bool with_imm,
                                          bool copy_data) {
  DeliveryResult res;
  std::size_t total = 0;
  for (const Sge& sge : wr.sg_list) total += sge.length;
  res.byte_len = static_cast<std::uint32_t>(total);

  Mr* mr = pd_.context().find_remote_mr(wr.rkey);
  if (mr == nullptr || !mr->contains(wr.remote_addr, total) ||
      (mr->access() & Access::kRemoteWrite) == 0) {
    res.status = WcStatus::kRemoteAccessError;
    return res;
  }
  if (with_imm) {
    PostedRecv posted;
    if (!take_recv(&posted)) {
      res.status = WcStatus::kRemoteNotReady;
      return res;
    }
    res.recv_wr_consumed = true;
    res.recv_wr_id = posted.wr.wr_id;
  }
  if (copy_data) {
    std::byte* dst = wire_ptr(wr.remote_addr);
    for (const Sge& sge : wr.sg_list) {
      std::memcpy(dst, wire_ptr(sge.addr), sge.length);
      dst += sge.length;
    }
  }
  return res;
}

Qp::DeliveryResult Qp::deliver_send(const SendWr& wr, bool copy_data) {
  DeliveryResult res;
  std::size_t total = 0;
  for (const Sge& sge : wr.sg_list) total += sge.length;
  res.byte_len = static_cast<std::uint32_t>(total);

  PostedRecv posted;
  if (!take_recv(&posted)) {
    res.status = WcStatus::kRemoteNotReady;
    return res;
  }
  res.recv_wr_consumed = true;
  res.recv_wr_id = posted.wr.wr_id;
  if (total > posted.total_length) {
    res.status = WcStatus::kLocalLengthError;
    return res;
  }
  if (copy_data) {
    // Scatter the gathered send stream across the receive sges.
    std::size_t recv_idx = 0;
    std::uint64_t recv_off = 0;
    for (const Sge& src : wr.sg_list) {
      std::size_t copied = 0;
      while (copied < src.length) {
        const Sge& dst = posted.wr.sg_list[recv_idx];
        const std::size_t space = dst.length - recv_off;
        const std::size_t n = std::min(space, src.length - copied);
        std::memcpy(wire_ptr(dst.addr + recv_off),
                    wire_ptr(src.addr + copied), n);
        copied += n;
        recv_off += n;
        if (recv_off == dst.length) {
          ++recv_idx;
          recv_off = 0;
        }
      }
    }
  }
  return res;
}

void Qp::complete_send(const SendWr& wr, const DeliveryResult& result,
                       Time when) {
  --outstanding_;
  PARTIB_CHECK_HOOK(on_send_completed(this));
  Wc wc;
  wc.wr_id = wr.wr_id;
  wc.status = result.status;
  wc.opcode =
      wr.opcode == Opcode::kSend ? WcOpcode::kSend : WcOpcode::kRdmaWrite;
  wc.byte_len = result.byte_len;
  wc.qp_num = qp_num_;
  wc.completion_time = when;
  // Transport retry exhaustion is retryable by re-posting on the same QP;
  // every other failure (delivery faults, flushes) wedges the QP in the
  // error state until the consumer recycles it.  The guard keeps a flush
  // burst from re-announcing the transition per flushed WR.
  const bool errors_qp = result.status != WcStatus::kSuccess &&
                         result.status != WcStatus::kRetryExcErr &&
                         result.status != WcStatus::kRnrRetryExcErr;
  if (errors_qp && state_ != QpState::kError) {
    state_ = QpState::kError;
    PARTIB_CHECK_HOOK(on_qp_transition(this, QpState::kError, true));
  }
  send_cq_.push(wc);
}

}  // namespace partib::verbs
