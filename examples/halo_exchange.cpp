// Halo exchange: the 2D stencil pattern the ICPP'22 micro-benchmark suite
// pairs with Sweep3D.  Each rank in a 4x4 grid exchanges one partitioned
// message with each of its four neighbours per iteration; each of the 8
// worker threads owns a slice of every face and marks it ready when its
// strip of the stencil update finishes.
//
// Shows: multiple concurrent channels per rank, bidirectional traffic,
// per-thread Pready across several requests, and the Timer-based PLogGP
// aggregator riding out compute jitter.
#include <cstdio>
#include <map>
#include <memory>
#include <vector>

#include "agg/strategies.hpp"
#include "common/units.hpp"
#include "mpi/world.hpp"
#include "part/partitioned.hpp"
#include "sim/engine.hpp"
#include "sim/noise.hpp"
#include "sim/rng.hpp"

using namespace partib;

namespace {

constexpr int kGrid = 4;           // 4x4 ranks
constexpr std::size_t kThreads = 8;  // partitions per face message
constexpr std::size_t kFaceBytes = 256 * KiB;
constexpr int kIterations = 3;

int rank_id(int x, int y) { return y * kGrid + x; }

struct Face {
  std::vector<std::byte> sbuf = std::vector<std::byte>(kFaceBytes);
  std::vector<std::byte> rbuf = std::vector<std::byte>(kFaceBytes);
  std::unique_ptr<part::PsendRequest> send;
  std::unique_ptr<part::PrecvRequest> recv;
};

struct Node {
  int x = 0, y = 0;
  std::vector<Face> faces;  // one per neighbour
  std::size_t done_recvs = 0;
};

}  // namespace

int main() {
  sim::Engine engine;
  mpi::WorldOptions wopts;
  wopts.ranks = kGrid * kGrid;
  mpi::World world(engine, wopts);
  sim::Rng rng(2026);

  part::Options opts;
  opts.aggregator = std::make_shared<agg::TimerPLogGPAggregator>(
      model::LogGPParams::niagara_mpi_measured(), usec(35));

  // dx/dy per direction; the tag identifies the direction so a pair of
  // ranks can hold two independent channels.
  const int dirs[4][2] = {{1, 0}, {-1, 0}, {0, 1}, {0, -1}};

  std::vector<Node> nodes(static_cast<std::size_t>(kGrid * kGrid));
  for (int y = 0; y < kGrid; ++y) {
    for (int x = 0; x < kGrid; ++x) {
      Node& node = nodes[static_cast<std::size_t>(rank_id(x, y))];
      node.x = x;
      node.y = y;
      for (int d = 0; d < 4; ++d) {
        const int nx = x + dirs[d][0];
        const int ny = y + dirs[d][1];
        if (nx < 0 || nx >= kGrid || ny < 0 || ny >= kGrid) continue;
        Face face;
        mpi::Rank& me = world.rank(rank_id(x, y));
        // Outgoing face d matches the neighbour's opposite-direction recv;
        // tagging by the *sender's* direction keeps the pair unambiguous.
        if (!ok(part::psend_init(me, face.sbuf, kThreads, rank_id(nx, ny),
                                 /*tag=*/d, 0, opts, &face.send)) ||
            !ok(part::precv_init(me, face.rbuf, kThreads, rank_id(nx, ny),
                                 /*tag=*/d ^ 1, 0, opts, &face.recv))) {
          std::fprintf(stderr, "channel setup failed\n");
          return 1;
        }
        node.faces.push_back(std::move(face));
      }
    }
  }
  engine.run();  // settle all handshakes

  for (int iter = 0; iter < kIterations; ++iter) {
    const Time t0 = engine.now();
    for (Node& node : nodes) {
      for (Face& face : node.faces) {
        (void)face.send->start();
        (void)face.recv->start();
      }
      // 8 worker threads update the stencil interior; thread i owns slice
      // i of every outgoing face and marks them ready as it finishes.
      const auto pattern = sim::many_before_one(
          kThreads, msec(1), /*noise=*/0.04,
          static_cast<std::size_t>(rng.uniform_int(0, kThreads - 1)));
      mpi::Rank& me = world.rank(rank_id(node.x, node.y));
      for (std::size_t i = 0; i < kThreads; ++i) {
        me.cpu().submit(pattern[i], [&node, i] {
          for (Face& face : node.faces) (void)face.send->pready(i);
        });
      }
    }
    engine.run();  // all faces of all ranks complete

    bool all_done = true;
    for (Node& node : nodes) {
      for (Face& face : node.faces) {
        all_done = all_done && face.send->test() && face.recv->test();
      }
    }
    std::printf("iteration %d: %s in %s\n", iter,
                all_done ? "all faces exchanged" : "INCOMPLETE",
                format_duration(engine.now() - t0).c_str());
    if (!all_done) return 1;
  }

  // Count the aggregate wire traffic the Timer aggregator produced.
  std::uint64_t wrs = 0;
  std::size_t channels = 0;
  for (Node& node : nodes) {
    for (Face& face : node.faces) {
      wrs += face.send->wrs_posted_total();
      ++channels;
    }
  }
  std::printf("%zu channels, %llu WRs total (%.1f per channel-iteration; "
              "%zu partitions each without aggregation)\n",
              channels, static_cast<unsigned long long>(wrs),
              static_cast<double>(wrs) /
                  (static_cast<double>(channels) * kIterations),
              kThreads);
  return 0;
}
