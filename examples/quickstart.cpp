// Quickstart: one partitioned channel between two simulated ranks.
//
// Demonstrates the full lifecycle from the paper's Fig 1:
//   Psend_init/Precv_init -> Start -> per-"thread" Pready ->
//   Parrived/Test on the receiver -> restart for a second round.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>
#include <memory>
#include <vector>

#include "common/units.hpp"
#include "mpi/world.hpp"
#include "part/partitioned.hpp"
#include "sim/engine.hpp"

using namespace partib;

int main() {
  // A simulated two-node EDR InfiniBand cluster.
  sim::Engine engine;
  mpi::World world(engine, mpi::WorldOptions{});

  constexpr std::size_t kPartitions = 16;
  constexpr std::size_t kBytes = 64 * KiB;
  std::vector<std::byte> send_buffer(kBytes);
  std::vector<std::byte> recv_buffer(kBytes);

  // Channel setup (cf. MPI_Psend_init / MPI_Precv_init).  The default
  // options use the PLogGP aggregator with Niagara-like parameters.
  std::unique_ptr<part::PsendRequest> send;
  std::unique_ptr<part::PrecvRequest> recv;
  const part::Options opts = part::Options::defaults();
  if (!ok(part::psend_init(world.rank(0), send_buffer, kPartitions,
                           /*dst=*/1, /*tag=*/0, /*comm=*/0, opts, &send)) ||
      !ok(part::precv_init(world.rank(1), recv_buffer, kPartitions,
                           /*src=*/0, /*tag=*/0, /*comm=*/0, opts, &recv))) {
    std::fprintf(stderr, "channel setup failed\n");
    return 1;
  }

  std::printf("plan: %zu user partitions -> %zu transport partitions over "
              "%d QP(s)\n",
              send->user_partitions(), send->transport_partitions(),
              send->qp_count());

  for (int round = 1; round <= 2; ++round) {
    // Fill the send buffer with this round's payload.
    for (std::size_t i = 0; i < kBytes; ++i) {
      send_buffer[i] = static_cast<std::byte>((i + static_cast<std::size_t>(round)) & 0xFF);
    }
    (void)send->start();  // cf. MPI_Start on both sides
    (void)recv->start();

    // Each simulated worker thread computes for a different time, then
    // marks its partition ready (cf. MPI_Pready from a parallel region).
    for (std::size_t i = 0; i < kPartitions; ++i) {
      const Duration compute = usec(10) + usec(2) * static_cast<Duration>(i);
      world.rank(0).cpu().submit(compute, [&send, i] {
        (void)send->pready(i);
      });
    }

    // Drive the cluster until quiescent (cf. MPI_Wait on both sides).
    engine.run();

    std::printf("round %d: complete at t=%s, %llu WR(s) so far, data %s\n",
                round, format_duration(engine.now()).c_str(),
                static_cast<unsigned long long>(send->wrs_posted_total()),
                send_buffer == recv_buffer ? "intact" : "CORRUPT");
    if (send_buffer != recv_buffer) return 1;
  }
  return 0;
}
