// Receive-side partitioned processing (Dosanjh & Grant, the paper's
// reference [9]): consumer threads poll MPI_Parrived and process each
// partition the moment it lands, overlapping receive-side compute with
// the remaining transfers instead of waiting for the whole message.
//
// The example measures the completion time of the receive-side pipeline
// (last partition processed) with and without the overlap.
#include <cstdio>
#include <memory>
#include <vector>

#include "common/units.hpp"
#include "mpi/world.hpp"
#include "part/partitioned.hpp"
#include "sim/engine.hpp"
#include "sim/resources.hpp"
#include "sim/noise.hpp"
#include "support_options.hpp"

using namespace partib;

namespace {

constexpr std::size_t kPartitions = 16;
constexpr std::size_t kBytes = 16 * MiB;
constexpr Duration kWorkPerPartition = usec(120);

Time run(bool overlap) {
  sim::Engine engine;
  mpi::World world(engine, mpi::WorldOptions{});
  // One dedicated consumer thread on the receiver processes partitions
  // serially (a reduction/unpack stage).
  sim::FifoResource consumer(engine, 1);
  std::vector<std::byte> sbuf(kBytes), rbuf(kBytes);
  std::unique_ptr<part::PsendRequest> send;
  std::unique_ptr<part::PrecvRequest> recv;
  const auto opts = examples::persistent_options();
  (void)part::psend_init(world.rank(0), sbuf, kPartitions, 1, 0, 0, opts,
                         &send);
  (void)part::precv_init(world.rank(1), rbuf, kPartitions, 0, 0, 0, opts,
                         &recv);
  engine.run();

  (void)send->start();
  (void)recv->start();

  // Sender threads: modest compute with a staggered pattern, so
  // partitions trickle in.
  const auto pattern = sim::staggered(kPartitions, usec(50), usec(40));
  for (std::size_t i = 0; i < kPartitions; ++i) {
    world.rank(0).cpu().submit(pattern[i], [&send, i] {
      (void)send->pready(i);
    });
  }

  Time last_processed = 0;
  std::size_t processed = 0;
  if (overlap) {
    // The consumer picks up each partition the moment Parrived flips —
    // modelled here through the arrival hook feeding the serial worker.
    recv->set_arrival_hook([&](std::size_t, Time) {
      consumer.request(kWorkPerPartition, [&](Time, Time end) {
        ++processed;
        last_processed = end;
      });
    });
    engine.run();
  } else {
    // Classic style: wait for the whole message, then process everything.
    engine.run();
    for (std::size_t i = 0; i < kPartitions; ++i) {
      consumer.request(kWorkPerPartition, [&](Time, Time end) {
        ++processed;
        last_processed = end;
      });
    }
    engine.run();
  }
  if (processed != kPartitions) std::abort();
  return last_processed;
}

}  // namespace

int main() {
  std::printf("receive-side processing of %s in %zu partitions, %s of "
              "work per partition\n\n",
              format_bytes(kBytes).c_str(), kPartitions,
              format_duration(kWorkPerPartition).c_str());
  const Time bulk = run(/*overlap=*/false);
  const Time overlapped = run(/*overlap=*/true);
  std::printf("wait-then-process: last partition processed at %s\n",
              format_duration(bulk).c_str());
  std::printf("Parrived overlap:  last partition processed at %s "
              "(%.2fx faster)\n",
              format_duration(overlapped).c_str(),
              static_cast<double>(bulk) / static_cast<double>(overlapped));
  return 0;
}
