// Shared option constructors for the examples.
#pragma once

#include <memory>

#include "agg/strategies.hpp"
#include "part/options.hpp"

namespace partib::examples {

inline part::Options persistent_options() {
  part::Options o;
  o.aggregator = std::make_shared<agg::PersistentBaseline>();
  return o;
}

inline part::Options ploggp_options() {
  part::Options o;
  o.aggregator = std::make_shared<agg::PLogGPAggregator>(
      model::LogGPParams::niagara_mpi_measured());
  return o;
}

inline part::Options timer_options(Duration delta) {
  part::Options o;
  o.aggregator = std::make_shared<agg::TimerPLogGPAggregator>(
      model::LogGPParams::niagara_mpi_measured(), delta);
  return o;
}

}  // namespace partib::examples
