// Classic ping-pong over the two-sided eager layer (mpi/p2p.hpp):
// measures half-round-trip latency per message size on the simulated
// fabric — the "hello world" of any MPI-like stack, and a sanity anchor
// for the LogGP parameters every other benchmark builds on.
#include <cstdio>
#include <vector>

#include "common/units.hpp"
#include "mpi/p2p.hpp"
#include "mpi/world.hpp"
#include "sim/engine.hpp"

using namespace partib;

int main() {
  sim::Engine engine;
  mpi::World world(engine, mpi::WorldOptions{});
  mpi::P2pEndpoint ep0(world.rank(0));
  mpi::P2pEndpoint ep1(world.rank(1));

  std::printf("%-10s %12s %14s\n", "size", "latency_us", "bandwidth_GB/s");
  for (std::size_t bytes = 8; bytes <= mpi::P2pEndpoint::kEagerLimit;
       bytes *= 4) {
    std::vector<std::byte> msg(bytes), echo(bytes), back(bytes);
    constexpr int kIters = 20;
    int remaining = kIters;
    Time t0 = -1, t1 = -1;

    // Rank 1 echoes exactly kIters pings; rank 0 fires the next ping on
    // each pong.
    for (int i = 0; i < kIters; ++i) {
      (void)ep1.recv(0, 0, echo, [&](std::size_t n) {
        (void)ep1.send(0, 1, std::span<const std::byte>(echo.data(), n));
      });
      (void)ep0.recv(1, 1, back, [&](std::size_t) {
        if (--remaining > 0) {
          (void)ep0.send(1, 0, msg);
        } else {
          t1 = engine.now();
        }
      });
    }
    t0 = engine.now();
    (void)ep0.send(1, 0, msg);
    engine.run();

    const double half_rtt_ns =
        static_cast<double>(t1 - t0) / (2.0 * kIters);
    std::printf("%-10s %12.2f %14.2f\n", format_bytes(bytes).c_str(),
                half_rtt_ns / 1000.0,
                static_cast<double>(bytes) / half_rtt_ns);
  }
  return 0;
}
