// Partitioned channel over the real-time shared-memory backend: the same
// psend/precv code every simulated example uses, but the bytes move
// through lock-free SPSC rings between the two "nodes" and the clock is
// the process's monotonic clock, not virtual time.
//
//   build/examples/shm_pingpong                      # shm (this default)
//   PARTIB_BACKEND=des build/examples/shm_pingpong   # same code, DES
//
// This is the single-process recipe from README.md §Running; the
// cross-process variant of the same rings is exercised by
// tests/backend/shm_multiproc_test.cpp, and the owner-thread pump rules
// the shm transport requires are spelled out in docs/BACKENDS.md.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "agg/strategies.hpp"
#include "backend/backend.hpp"
#include "common/units.hpp"
#include "mpi/world.hpp"
#include "part/partitioned.hpp"

using namespace partib;

int main() {
  const char* env = std::getenv("PARTIB_BACKEND");
  const std::string name = env != nullptr && *env != '\0' ? env : "shm";
  auto be = backend::make_backend(name);
  if (be == nullptr) return 1;
  std::printf("backend: %s (transport %s, %s time)\n",
              std::string(be->name()).c_str(),
              std::string(be->transport().kind()).c_str(),
              be->real_time() ? "real" : "virtual");

  mpi::World world(*be, mpi::WorldOptions{});
  constexpr std::size_t kPartitions = 32;
  constexpr std::size_t kPartitionBytes = 4 * KiB;
  std::vector<std::byte> sbuf(kPartitions * kPartitionBytes);
  std::vector<std::byte> rbuf(sbuf.size());

  part::Options opts;
  opts.aggregator = std::make_shared<agg::PLogGPAggregator>(
      model::LogGPParams::niagara_mpi_measured());
  std::unique_ptr<part::PsendRequest> send;
  std::unique_ptr<part::PrecvRequest> recv;
  if (!ok(part::psend_init(world.rank(0), sbuf, kPartitions, /*dst=*/1,
                           /*tag=*/0, /*comm=*/0, opts, &send)) ||
      !ok(part::precv_init(world.rank(1), rbuf, kPartitions, /*src=*/0,
                           /*tag=*/0, /*comm=*/0, opts, &recv))) {
    return 1;
  }
  be->run_until_idle();  // channel handshake

  constexpr int kRounds = 50;
  const Time t0 = be->now();
  for (int round = 0; round < kRounds; ++round) {
    for (std::size_t i = 0; i < sbuf.size(); ++i) {
      sbuf[i] = static_cast<std::byte>(i + static_cast<std::size_t>(round));
    }
    if (!ok(send->start()) || !ok(recv->start())) return 1;
    for (std::size_t i = 0; i < kPartitions; ++i) {
      if (!ok(send->pready(i))) return 1;
    }
    be->run_until_idle();
    if (!send->test() || !recv->test()) return 1;
    if (std::memcmp(sbuf.data(), rbuf.data(), sbuf.size()) != 0) {
      std::fprintf(stderr, "round %d: data mismatch\n", round);
      return 1;
    }
  }
  const Time elapsed = be->now() - t0;

  std::printf("%d rounds x %zu KiB: %.1f us/round (%s clock), data ok\n",
              kRounds, sbuf.size() / KiB,
              static_cast<double>(elapsed) / kRounds / 1000.0,
              be->real_time() ? "monotonic" : "virtual");
  return 0;
}
