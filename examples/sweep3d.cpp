// Sweep3D wavefront (the paper's application-like pattern, §V-D) on an
// 8x8 rank grid with 16 threads per rank — the paper's 1024-core setup —
// comparing all three designs plus the persistent baseline in one run.
#include <cstdio>

#include "bench/sweep.hpp"
#include "common/units.hpp"
#include "support_options.hpp"

using namespace partib;

int main() {
  struct DesignRow {
    const char* name;
    part::Options options;
  };
  const DesignRow designs[] = {
      {"persistent (part_persist/UCX)", examples::persistent_options()},
      {"PLogGP aggregator", examples::ploggp_options()},
      {"Timer-based PLogGP (d=35us)", examples::timer_options(usec(35))},
  };

  std::printf("Sweep3D, 8x8 ranks x 16 threads, 1 MiB faces, 1 ms compute, "
              "4%% noise\n\n");
  Duration baseline = 0;
  for (const DesignRow& d : designs) {
    bench::SweepConfig cfg;
    cfg.message_bytes = 1 * MiB;
    cfg.options = d.options;
    cfg.compute = msec(1);
    cfg.noise = 0.04;
    cfg.iterations = 5;
    cfg.warmup = 2;
    const auto r = bench::run_sweep(cfg);
    if (baseline == 0) baseline = r.comm_time;
    std::printf("%-32s comm time %-12s speedup %.2fx\n", d.name,
                format_duration(r.comm_time).c_str(),
                static_cast<double>(baseline) /
                    static_cast<double>(r.comm_time));
  }
  return 0;
}
