// Early-bird transmission up close: one imbalanced producer.
//
// 31 worker threads finish their 100 ms of compute together; one laggard
// takes 4 ms longer (the paper's canonical 4% noise case).  The example
// traces, for each design, when each partition leaves and when the
// receiver could first consume it via Parrived — making the paper's
// perceived-bandwidth argument concrete.
#include <cstdio>
#include <memory>
#include <vector>

#include "common/units.hpp"
#include "mpi/world.hpp"
#include "part/partitioned.hpp"
#include "sim/engine.hpp"
#include "sim/noise.hpp"
#include "support_options.hpp"

using namespace partib;

namespace {

constexpr std::size_t kPartitions = 32;
constexpr std::size_t kBytes = 8 * MiB;
constexpr std::size_t kLaggard = 17;

void run_design(const char* name, const part::Options& opts) {
  sim::Engine engine;
  mpi::World world(engine, mpi::WorldOptions{});
  std::vector<std::byte> sbuf(kBytes), rbuf(kBytes);
  std::unique_ptr<part::PsendRequest> send;
  std::unique_ptr<part::PrecvRequest> recv;
  if (!ok(part::psend_init(world.rank(0), sbuf, kPartitions, 1, 0, 0, opts,
                           &send)) ||
      !ok(part::precv_init(world.rank(1), rbuf, kPartitions, 0, 0, 0, opts,
                           &recv))) {
    std::fprintf(stderr, "setup failed\n");
    return;
  }
  engine.run();

  (void)send->start();
  (void)recv->start();
  std::vector<Time> arrivals(kPartitions, -1);
  recv->set_arrival_hook(
      [&arrivals](std::size_t p, Time t) { arrivals[p] = t; });

  const auto pattern =
      sim::many_before_one(kPartitions, msec(100), 0.04, kLaggard);
  Time last_pready = 0;
  for (std::size_t i = 0; i < kPartitions; ++i) {
    world.rank(0).cpu().submit(pattern[i], [&, i] {
      last_pready = std::max(last_pready, engine.now());
      (void)send->pready(i);
    });
  }
  engine.run();

  std::size_t early = 0;
  Time laggard_arrival = arrivals[kLaggard];
  for (std::size_t i = 0; i < kPartitions; ++i) {
    if (i != kLaggard && arrivals[i] < last_pready) ++early;
  }
  const double latency_us = to_usec(laggard_arrival - last_pready);
  const double perceived =
      static_cast<double>(kBytes) /
      static_cast<double>(laggard_arrival - last_pready);
  std::printf(
      "%-28s %2zu/31 partitions arrived before the laggard computed; "
      "last-partition latency %7.1f us; perceived bandwidth %6.1f GB/s; "
      "%llu WRs\n",
      name, early, latency_us, perceived,
      static_cast<unsigned long long>(send->wrs_posted_total()));
}

}  // namespace

int main() {
  std::printf("8 MiB over 32 partitions; 100 ms compute; laggard thread "
              "%zu is 4 ms late; wire limit 12.1 GB/s\n\n",
              kLaggard);
  run_design("persistent (no aggregation)", examples::persistent_options());
  run_design("PLogGP aggregator", examples::ploggp_options());
  run_design("Timer-PLogGP (d=35us)", examples::timer_options(usec(35)));
  run_design("Timer-PLogGP (d=3000us)", examples::timer_options(usec(3000)));
  return 0;
}
