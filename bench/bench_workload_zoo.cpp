// Workload zoo: the online arrival-learning ablation across arrival
// shapes (docs/ADAPTIVE.md, EXPERIMENTS.md).
//
// Six deterministic arrival shapes — Gillis-style uniform / reverse /
// random-permutation / bursty-tail orders, an LQCD 4D halo stencil with
// eight irregularly phased direction blocks, and a regime-shifting trace —
// each run against five aggregation strategies: the paper's three
// init-time designs (tuning table, PLogGP, timer-δ), the online
// arrival-learning aggregator, and a ground-truth oracle (the learning
// channel re-seeded with the true arrival vector every epoch).  Perceived
// bandwidth is averaged over the post-warm-up epochs, so the learning rows
// show steady-state behaviour, not the cold-start ramp.
#include <cstddef>
#include <string>
#include <vector>

#include "bench/report.hpp"
#include "bench/trial.hpp"
#include "bench/zoo.hpp"
#include "common/units.hpp"
#include "support/bench_main.hpp"

using namespace partib;

int main(int argc, char** argv) {
  const bench::Cli cli(argc, argv);
  const model::LogGPParams params = cli.model_params();
  const Duration delta0 = cli.initial_delta();
  const int epochs = cli.iterations(30);
  const int warmup = epochs / 3;

  struct Strategy {
    const char* name;
    part::Options options;
    bool oracle;
  };
  const std::vector<Strategy> strategies = {
      {"tuning-table", bench::tuning_table_options(), false},
      {"ploggp", bench::ploggp_options(params), false},
      {"timer", bench::timer_options(delta0, params), false},
      {"learning", bench::learning_options(params, delta0), false},
      {"oracle", bench::oracle_options(params, delta0), true},
  };
  const bench::ZooShape shapes[] = {
      bench::ZooShape::kUniform,     bench::ZooShape::kReverse,
      bench::ZooShape::kRandomPerm,  bench::ZooShape::kBurstyTail,
      bench::ZooShape::kLqcdHalo4d,  bench::ZooShape::kRegimeShift,
  };

  std::vector<bench::ZooConfig> grid;
  for (const bench::ZooShape shape : shapes) {
    for (const Strategy& s : strategies) {
      bench::ZooConfig cfg;
      cfg.shape = shape;
      cfg.options = s.options;
      cfg.oracle = s.oracle;
      cfg.epochs = epochs;
      cfg.warmup = warmup;
      grid.push_back(cfg);
    }
  }
  const std::vector<bench::ZooResult> results =
      bench::run_zoo_grid(grid, cli.run_options());

  bench::Table table(
      "Workload zoo: perceived bandwidth (GB/s) by arrival shape and "
      "aggregation strategy (64 MiB, 64 partitions, " +
          std::to_string(epochs) + " epochs, first " +
          std::to_string(warmup) + " warm-up)",
      {"shape", "strategy", "warm_gbps", "all_gbps", "final_tp", "delta_us",
       "wrs_per_epoch", "replans"});
  std::size_t row = 0;
  for (const bench::ZooShape shape : shapes) {
    for (const Strategy& s : strategies) {
      const bench::ZooResult& r = results[row++];
      table.add_row({bench::to_string(shape), s.name,
                     bench::fmt(r.warm_gbytes_per_s, 3),
                     bench::fmt(r.all_gbytes_per_s, 3),
                     std::to_string(r.final_tp),
                     bench::fmt(r.final_delta_us, 1),
                     bench::fmt(r.mean_wrs_per_epoch, 1),
                     std::to_string(r.replans_adopted)});
    }
  }
  cli.emit(table);
  return 0;
}
