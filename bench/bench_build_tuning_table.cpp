// The brute-force tuning-table builder (§IV-B).
//
// Searches power-of-two transport-partition counts and QP counts with the
// overhead benchmark as the objective, exactly as the paper's 23-hour
// two-node search did (the simulator makes it cheap).  Prints the winning
// configuration per (user partitions, message size) as CSV suitable for
// agg::TuningTable::from_csv.
#include <iostream>
#include <limits>
#include <vector>

#include "agg/tuning_table.hpp"
#include "bench/overhead.hpp"
#include "bench/trial.hpp"
#include "common/assert.hpp"
#include "common/units.hpp"
#include "support/bench_main.hpp"

using namespace partib;

int main(int argc, char** argv) {
  const bench::Cli cli(argc, argv);
  agg::TuningTable table;

  // Every candidate of the whole search as one grid, candidates in the
  // historical (tp ascending, then qp ascending) order per cell.  The
  // reduction below keeps strict less-than in that same order, so the
  // emitted CSV is byte-identical to the serial search for any --jobs=N.
  struct Candidate {
    std::size_t tp;
    int qp;
  };
  std::vector<bench::OverheadConfig> grid;
  std::vector<Candidate> candidates;
  for (std::size_t parts : {4u, 16u, 32u, 128u}) {
    for (std::size_t bytes : pow2_sizes(2 * KiB, 16 * MiB)) {
      if (bytes < parts) continue;
      for (std::size_t tp = 1; tp <= parts && tp <= 32; tp *= 2) {
        for (int qp = 1; qp <= 4; qp *= 2) {
          bench::OverheadConfig cfg;
          cfg.total_bytes = bytes;
          cfg.user_partitions = parts;
          cfg.options = bench::static_options(tp, qp);
          cfg.iterations = cli.iterations(10);
          cfg.warmup = 2;
          grid.push_back(cfg);
          candidates.push_back({tp, qp});
        }
      }
    }
  }
  const std::vector<bench::OverheadResult> results =
      bench::run_overhead_grid(grid, cli.run_options());

  std::size_t k = 0;
  for (std::size_t parts : {4u, 16u, 32u, 128u}) {
    for (std::size_t bytes : pow2_sizes(2 * KiB, 16 * MiB)) {
      if (bytes < parts) continue;
      Duration best_time = std::numeric_limits<Duration>::max();
      agg::TuningTable::Entry best;
      for (std::size_t tp = 1; tp <= parts && tp <= 32; tp *= 2) {
        for (int qp = 1; qp <= 4; qp *= 2) {
          const Duration t = results[k].mean_round;
          PARTIB_ASSERT(candidates[k].tp == tp && candidates[k].qp == qp);
          ++k;
          if (t < best_time) {
            best_time = t;
            best = agg::TuningTable::Entry{tp, qp};
          }
        }
      }
      table.set(parts, bytes, best);
      std::cerr << "searched parts=" << parts << " bytes=" << bytes
                << " -> tp=" << best.transport_partitions
                << " qp=" << best.qp_count << "\n";
    }
  }
  std::cout << table.to_csv();
  return 0;
}
