// The brute-force tuning-table builder (§IV-B).
//
// Searches power-of-two transport-partition counts and QP counts with the
// overhead benchmark as the objective, exactly as the paper's 23-hour
// two-node search did (the simulator makes it cheap).  Prints the winning
// configuration per (user partitions, message size) as CSV suitable for
// agg::TuningTable::from_csv.
#include <iostream>
#include <limits>
#include <vector>

#include "agg/tuning_table.hpp"
#include "bench/overhead.hpp"
#include "common/units.hpp"
#include "support/bench_main.hpp"

using namespace partib;

int main(int argc, char** argv) {
  const bench::Cli cli(argc, argv);
  agg::TuningTable table;

  for (std::size_t parts : {4u, 16u, 32u, 128u}) {
    for (std::size_t bytes : pow2_sizes(2 * KiB, 16 * MiB)) {
      if (bytes < parts) continue;
      Duration best_time = std::numeric_limits<Duration>::max();
      agg::TuningTable::Entry best;
      for (std::size_t tp = 1; tp <= parts && tp <= 32; tp *= 2) {
        for (int qp = 1; qp <= 4; qp *= 2) {
          bench::OverheadConfig cfg;
          cfg.total_bytes = bytes;
          cfg.user_partitions = parts;
          cfg.options = bench::static_options(tp, qp);
          cfg.iterations = cli.iterations(10);
          cfg.warmup = 2;
          const Duration t = bench::run_overhead(cfg).mean_round;
          if (t < best_time) {
            best_time = t;
            best = agg::TuningTable::Entry{tp, qp};
          }
        }
      }
      table.set(parts, bytes, best);
      std::cerr << "searched parts=" << parts << " bytes=" << bytes
                << " -> tp=" << best.transport_partitions
                << " qp=" << best.qp_count << "\n";
    }
  }
  std::cout << table.to_csv();
  return 0;
}
