// Connection-scale all-to-all: every rank holds a partitioned channel to
// every other rank, so an N-rank job carries N*(N-1) channels.  This is
// the workload where per-channel dedicated resources stop scaling (each
// rank provisions N-1 full CQs and recv rings) and the shared
// SRQ/shared-CQ/connection-manager path keeps the per-rank footprint
// flat (ROADMAP item 2; cf. Ibdxnet's all-to-all connection management).
#include <string>
#include <vector>

#include "bench/connscale.hpp"
#include "bench/report.hpp"
#include "bench/trial.hpp"
#include "common/units.hpp"
#include "support/bench_main.hpp"

using namespace partib;

int main(int argc, char** argv) {
  const bench::Cli cli(argc, argv);
  const std::vector<int> sweep = {8, 16, 32, 64};

  bench::Table table(
      "Connection-scale all-to-all: N ranks, N*(N-1) channels, dedicated "
      "vs shared (SRQ + shared CQ + on-demand connections)",
      {"ranks", "channels", "ded_round_us", "shr_round_us",
       "ded_kib_per_rank", "shr_kib_per_rank", "footprint_ratio",
       "establishments"});

  std::vector<bench::ConnScaleConfig> grid;
  for (int ranks : sweep) {
    bench::ConnScaleConfig base;
    base.peers = ranks;
    base.alltoall = true;
    base.bytes = 8 * KiB;
    base.user_partitions = 8;
    base.rounds = 2;
    base.options = bench::static_options(/*tp=*/4, /*qps=*/1);
    base.world.copy_data = false;
    grid.push_back(base);  // dedicated
    bench::ConnScaleConfig shared_cfg = base;
    shared_cfg.options.shared_resources = true;
    grid.push_back(shared_cfg);
  }
  const std::vector<bench::ConnScaleResult> results =
      bench::run_connscale_grid(grid, cli.run_options());

  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const bench::ConnScaleResult& ded = results[2 * i];
    const bench::ConnScaleResult& shr = results[2 * i + 1];
    const int channels = sweep[i] * (sweep[i] - 1);
    table.add_row(
        {std::to_string(sweep[i]), std::to_string(channels),
         bench::fmt(static_cast<double>(ded.mean_round) / 1000.0),
         bench::fmt(static_cast<double>(shr.mean_round) / 1000.0),
         bench::fmt(static_cast<double>(ded.hot_provisioned_bytes) / 1024.0),
         bench::fmt(static_cast<double>(shr.hot_provisioned_bytes) / 1024.0),
         bench::fmt(static_cast<double>(ded.hot_provisioned_bytes) /
                    static_cast<double>(shr.hot_provisioned_bytes)),
         std::to_string(shr.establishments)});
  }
  cli.emit(table);
  return 0;
}
