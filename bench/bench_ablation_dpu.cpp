// Ablation (future work §VI-A): host-driven vs DPU-offloaded aggregation.
//
// The DPU frees the host of per-message WR-build work (visible when
// threads are oversubscribed and every CPU cycle counts) at the price of
// a hand-off overhead per message.  Reported: overhead-benchmark round
// time for both modes at 32 (undersubscribed) and 128 (oversubscribed)
// partitions.
#include <string>
#include <vector>

#include "bench/overhead.hpp"
#include "bench/report.hpp"
#include "bench/trial.hpp"
#include "common/units.hpp"
#include "support/bench_main.hpp"

using namespace partib;

int main(int argc, char** argv) {
  const bench::Cli cli(argc, argv);

  std::vector<bench::OverheadConfig> grid;
  for (std::size_t parts : {32u, 128u}) {
    for (std::size_t bytes : pow2_sizes(16 * KiB, 16 * MiB)) {
      for (bool dpu : {false, true}) {
        bench::OverheadConfig cfg;
        cfg.total_bytes = bytes;
        cfg.user_partitions = parts;
        // One WR per partition maximises per-message host work — the
        // regime a DPU offload targets.
        cfg.options = bench::static_options(parts, 2);
        cfg.iterations = cli.iterations(10);
        cfg.warmup = 2;
        cfg.world.dpu_aggregation = dpu;
        grid.push_back(cfg);
      }
    }
  }
  const std::vector<bench::OverheadResult> results =
      bench::run_overhead_grid(grid, cli.run_options());

  std::size_t k = 0;
  for (std::size_t parts : {32u, 128u}) {
    bench::Table table(
        "Ablation: DPU-offloaded aggregation (" + std::to_string(parts) +
            " user partitions, persistent-grade per-partition traffic)",
        {"msg_size", "round_host_us", "round_dpu_us", "host_cpu_us",
         "dpu_mode_cpu_us", "cpu_freed_pct"});
    for (std::size_t bytes : pow2_sizes(16 * KiB, 16 * MiB)) {
      const auto host = results[k++];
      const auto dpu = results[k++];
      const double freed =
          100.0 *
          static_cast<double>(host.host_cpu_per_round -
                              dpu.host_cpu_per_round) /
          static_cast<double>(host.host_cpu_per_round);
      table.add_row({format_bytes(bytes),
                     bench::fmt(to_usec(host.mean_round), 2),
                     bench::fmt(to_usec(dpu.mean_round), 2),
                     bench::fmt(to_usec(host.host_cpu_per_round), 2),
                     bench::fmt(to_usec(dpu.host_cpu_per_round), 2),
                     bench::fmt(freed, 1)});
    }
    cli.emit(table);
  }
  return 0;
}
