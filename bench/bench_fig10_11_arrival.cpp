// Figs 10 & 11: profiling the user-partition arrival pattern of the
// perceived-bandwidth benchmark (32 partitions, 100 ms compute, 4% noise,
// single-thread-delay), at 8 MiB (Fig 10) and 128 MiB (Fig 11).
//
// For each partition the harness prints the Pready time relative to round
// start, the actual arrival time at the receiver, and the estimated
// communication time from the paper's bandwidth equation
// (partition size / theoretical bandwidth).
//
// Paper shape: at 8 MiB all n-1 early partitions complete transfer well
// before the laggard arrives (early-bird window >> delta); at 128 MiB the
// wire is the bottleneck and only ~3/8 of the partitions move early.
#include <string>
#include <utility>
#include <vector>

#include "bench/perceived.hpp"
#include "bench/report.hpp"
#include "bench/trial.hpp"
#include "common/units.hpp"
#include "prof/profiler.hpp"
#include "support/bench_main.hpp"

using namespace partib;

int main(int argc, char** argv) {
  const bench::Cli cli(argc, argv);
  constexpr std::size_t kPartitions = 32;
  const std::vector<std::pair<std::size_t, const char*>> points = {
      {8 * MiB, "Fig 10"}, {128 * MiB, "Fig 11"}};

  // One profiler per trial: the grid runner executes the two sizes
  // concurrently, each recording into its own PartProfiler (a profiling
  // grid bypasses the result cache — see bench/trial.hpp).
  std::vector<prof::PartProfiler> profilers(points.size(),
                                            prof::PartProfiler(kPartitions));
  std::vector<bench::PerceivedConfig> grid;
  for (std::size_t i = 0; i < points.size(); ++i) {
    bench::PerceivedConfig cfg;
    cfg.total_bytes = points[i].first;
    cfg.user_partitions = kPartitions;
    cfg.options = bench::ploggp_options();
    cfg.iterations = 1;
    cfg.warmup = 1;
    cfg.profiler = &profilers[i];
    grid.push_back(cfg);
  }
  const std::vector<bench::PerceivedResult> results =
      bench::run_perceived_grid(grid, cli.run_options());

  for (std::size_t i = 0; i < points.size(); ++i) {
    const std::size_t bytes = points[i].first;
    const auto& round = profilers[i].rounds().back();
    const double wire = results[i].wire_gbytes_per_s;  // bytes per ns
    const Duration est_comm = prof::PartProfiler::estimated_comm_time(
        bytes / kPartitions, wire);

    bench::Table table(
        std::string(points[i].second) + ": arrival profile, " +
            format_bytes(bytes) + ", 100 ms compute, 4% noise",
        {"partition", "pready_ms", "arrival_ms", "est_comm_ms"});
    for (std::size_t p = 0; p < kPartitions; ++p) {
      const Duration pready = round.pready_times[p] - round.start_time;
      const Duration arrival = round.arrival_times[p] - round.start_time;
      table.add_row({std::to_string(p), bench::fmt(to_msec(pready), 3),
                     bench::fmt(to_msec(arrival), 3),
                     bench::fmt(to_msec(est_comm), 3)});
    }
    cli.emit(table);
  }
  return 0;
}
