// Fig 7: overhead benchmark, 16 user partitions = 16 transport partitions
// (no aggregation on our side), varying the number of QPs.
//
// Paper shape: one QP is sufficient until ~64 KiB; past that, more QPs
// (up to one per partition) perform better — large messages prefer
// engine concurrency, small messages pay QP activation for nothing.
#include <string>
#include <vector>

#include "bench/overhead.hpp"
#include "bench/report.hpp"
#include "common/units.hpp"
#include "support/bench_main.hpp"

using namespace partib;

int main(int argc, char** argv) {
  const bench::Cli cli(argc, argv);
  constexpr std::size_t kPartitions = 16;
  const std::vector<int> qps = {1, 2, 4, 8, 16};

  std::vector<std::string> headers = {"msg_size"};
  for (int q : qps) headers.push_back("speedup_qp" + std::to_string(q));
  bench::Table table(
      "Fig 7: overhead benchmark speedup vs persistent "
      "(16 user partitions, 16 transport partitions)",
      headers);

  for (std::size_t bytes : pow2_sizes(512, 64 * MiB)) {
    bench::OverheadConfig base;
    base.total_bytes = bytes;
    base.user_partitions = kPartitions;
    base.options = bench::persistent_options();
    base.iterations = cli.iterations(20);
    base.warmup = 3;
    const Duration t_persistent = bench::run_overhead(base).mean_round;

    std::vector<std::string> row = {format_bytes(bytes)};
    for (int q : qps) {
      bench::OverheadConfig cfg = base;
      cfg.options = bench::static_options(kPartitions, q);
      const Duration t = bench::run_overhead(cfg).mean_round;
      row.push_back(bench::fmt(static_cast<double>(t_persistent) /
                               static_cast<double>(t)));
    }
    table.add_row(std::move(row));
  }
  cli.emit(table);
  return 0;
}
