// Fig 7: overhead benchmark, 16 user partitions = 16 transport partitions
// (no aggregation on our side), varying the number of QPs.
//
// Paper shape: one QP is sufficient until ~64 KiB; past that, more QPs
// (up to one per partition) perform better — large messages prefer
// engine concurrency, small messages pay QP activation for nothing.
#include <string>
#include <vector>

#include "bench/overhead.hpp"
#include "bench/report.hpp"
#include "bench/trial.hpp"
#include "common/units.hpp"
#include "support/bench_main.hpp"

using namespace partib;

int main(int argc, char** argv) {
  const bench::Cli cli(argc, argv);
  constexpr std::size_t kPartitions = 16;
  const std::vector<int> qps = {1, 2, 4, 8, 16};
  const std::vector<std::size_t> sizes = pow2_sizes(512, 64 * MiB);

  std::vector<std::string> headers = {"msg_size"};
  for (int q : qps) headers.push_back("speedup_qp" + std::to_string(q));
  bench::Table table(
      "Fig 7: overhead benchmark speedup vs persistent "
      "(16 user partitions, 16 transport partitions)",
      headers);

  std::vector<bench::OverheadConfig> grid;
  for (std::size_t bytes : sizes) {
    bench::OverheadConfig base;
    base.total_bytes = bytes;
    base.user_partitions = kPartitions;
    base.options = bench::persistent_options();
    base.iterations = cli.iterations(20);
    base.warmup = 3;
    grid.push_back(base);
    for (int q : qps) {
      bench::OverheadConfig cfg = base;
      cfg.options = bench::static_options(kPartitions, q);
      grid.push_back(cfg);
    }
  }
  const std::vector<bench::OverheadResult> results =
      bench::run_overhead_grid(grid, cli.run_options());

  std::size_t k = 0;
  for (std::size_t bytes : sizes) {
    const Duration t_persistent = results[k++].mean_round;
    std::vector<std::string> row = {format_bytes(bytes)};
    for (std::size_t i = 0; i < qps.size(); ++i) {
      const Duration t = results[k++].mean_round;
      row.push_back(bench::fmt(static_cast<double>(t_persistent) /
                               static_cast<double>(t)));
    }
    table.add_row(std::move(row));
  }
  cli.emit(table);
  return 0;
}
