// Shared helpers for the figure/table bench binaries: a tiny CLI
// (--csv for machine-readable output, --iters=N to override iteration
// counts, --jobs=N / --no-cache / --cache-dir= for the parallel
// experiment runner) and canned part::Options constructors for each
// design.
#pragma once

#include <charconv>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>

#include "agg/strategies.hpp"
#include "bench/report.hpp"
#include "part/options.hpp"
#include "runner/runner.hpp"

namespace partib::bench {

class Cli {
 public:
  Cli(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--csv") == 0) {
        csv_ = true;
      } else if (std::strncmp(argv[i], "--iters=", 8) == 0) {
        iters_override_ = parse_positive(argv[i] + 8, "--iters");
      } else if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
        jobs_ = static_cast<std::size_t>(parse_positive(argv[i] + 7,
                                                        "--jobs"));
      } else if (std::strcmp(argv[i], "--no-cache") == 0) {
        no_cache_ = true;
      } else if (std::strncmp(argv[i], "--cache-dir=", 12) == 0) {
        cache_dir_ = argv[i] + 12;
      }
    }
    if (!no_cache_) {
      cache_ = cache_dir_.empty()
                   ? runner::ResultCache::open_default()
                   : std::make_unique<runner::ResultCache>(cache_dir_);
    }
  }

  bool csv() const { return csv_; }
  int iterations(int fallback) const {
    return iters_override_ > 0 ? iters_override_ : fallback;
  }

  /// Runner options wired from the command line: --jobs=N worker threads
  /// (default runner::default_jobs(); 1 reproduces serial behaviour
  /// exactly), plus the persistent result cache unless --no-cache.  The
  /// cache lives as long as the Cli.
  runner::RunOptions run_options() const {
    runner::RunOptions o;
    o.jobs = jobs_;
    o.cache = cache_.get();
    return o;
  }

  void emit(const Table& table) const {
    if (csv_) {
      std::cout << table.to_csv();
    } else {
      table.print(std::cout);
    }
  }

 private:
  // std::from_chars, not atoi: reject garbage and non-positive values
  // loudly instead of silently running 0 iterations / 0 workers.
  static int parse_positive(const char* value, const char* flag) {
    const char* end = value + std::strlen(value);
    int parsed = 0;
    const auto [ptr, ec] = std::from_chars(value, end, parsed);
    if (ec != std::errc{} || ptr != end || parsed <= 0) {
      std::cerr << "bench: invalid " << flag << " value \"" << value
                << "\" (expected a positive integer)\n";
      std::exit(2);
    }
    return parsed;
  }

  bool csv_ = false;
  int iters_override_ = 0;
  std::size_t jobs_ = 0;  ///< 0 = runner default
  bool no_cache_ = false;
  std::string cache_dir_;
  std::unique_ptr<runner::ResultCache> cache_;
};

inline part::Options options_with(
    std::shared_ptr<const agg::Aggregator> a) {
  part::Options o;
  o.aggregator = std::move(a);
  return o;
}

inline part::Options persistent_options() {
  return options_with(std::make_shared<agg::PersistentBaseline>());
}

inline part::Options static_options(std::size_t tp, int qps) {
  return options_with(std::make_shared<agg::StaticAggregator>(tp, qps));
}

inline part::Options ploggp_options() {
  return options_with(std::make_shared<agg::PLogGPAggregator>(
      model::LogGPParams::niagara_mpi_measured()));
}

inline part::Options timer_options(Duration delta) {
  return options_with(std::make_shared<agg::TimerPLogGPAggregator>(
      model::LogGPParams::niagara_mpi_measured(), delta));
}

inline part::Options tuning_table_options() {
  return options_with(std::make_shared<agg::TuningTableAggregator>(
      agg::TuningTable::niagara_prebuilt()));
}

}  // namespace partib::bench
