// Shared helpers for the figure/table bench binaries: a tiny CLI
// (--csv for machine-readable output, --iters=N to override iteration
// counts) and canned part::Options constructors for each design.
#pragma once

#include <charconv>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>

#include "agg/strategies.hpp"
#include "bench/report.hpp"
#include "part/options.hpp"

namespace partib::bench {

class Cli {
 public:
  Cli(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--csv") == 0) {
        csv_ = true;
      } else if (std::strncmp(argv[i], "--iters=", 8) == 0) {
        // std::from_chars, not atoi: reject garbage and non-positive
        // values loudly instead of silently running 0 iterations.
        const char* value = argv[i] + 8;
        const char* end = value + std::strlen(value);
        int parsed = 0;
        const auto [ptr, ec] = std::from_chars(value, end, parsed);
        if (ec != std::errc{} || ptr != end || parsed <= 0) {
          std::cerr << "bench: invalid --iters value \"" << value
                    << "\" (expected a positive integer)\n";
          std::exit(2);
        }
        iters_override_ = parsed;
      }
    }
  }

  bool csv() const { return csv_; }
  int iterations(int fallback) const {
    return iters_override_ > 0 ? iters_override_ : fallback;
  }

  void emit(const Table& table) const {
    if (csv_) {
      std::cout << table.to_csv();
    } else {
      table.print(std::cout);
    }
  }

 private:
  bool csv_ = false;
  int iters_override_ = 0;
};

inline part::Options options_with(
    std::shared_ptr<const agg::Aggregator> a) {
  part::Options o;
  o.aggregator = std::move(a);
  return o;
}

inline part::Options persistent_options() {
  return options_with(std::make_shared<agg::PersistentBaseline>());
}

inline part::Options static_options(std::size_t tp, int qps) {
  return options_with(std::make_shared<agg::StaticAggregator>(tp, qps));
}

inline part::Options ploggp_options() {
  return options_with(std::make_shared<agg::PLogGPAggregator>(
      model::LogGPParams::niagara_mpi_measured()));
}

inline part::Options timer_options(Duration delta) {
  return options_with(std::make_shared<agg::TimerPLogGPAggregator>(
      model::LogGPParams::niagara_mpi_measured(), delta));
}

inline part::Options tuning_table_options() {
  return options_with(std::make_shared<agg::TuningTableAggregator>(
      agg::TuningTable::niagara_prebuilt()));
}

}  // namespace partib::bench
