// Shared helpers for the figure/table bench binaries: a tiny CLI
// (--csv for machine-readable output, --iters=N to override iteration
// counts, --jobs=N / --no-cache / --cache-dir= for the parallel
// experiment runner, --loggp=L,o_s,o_r,g,G / --delta0=NS to swap the
// machine model and initial timer window) and canned part::Options
// constructors for each design.
#pragma once

#include <charconv>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>

#include "agg/strategies.hpp"
#include "backend/backend.hpp"
#include "bench/report.hpp"
#include "part/options.hpp"
#include "runner/runner.hpp"

namespace partib::bench {

class Cli {
 public:
  Cli(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--csv") == 0) {
        csv_ = true;
      } else if (std::strncmp(argv[i], "--iters=", 8) == 0) {
        iters_override_ = parse_positive(argv[i] + 8, "--iters");
      } else if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
        jobs_ = static_cast<std::size_t>(parse_positive(argv[i] + 7,
                                                        "--jobs"));
      } else if (std::strcmp(argv[i], "--no-cache") == 0) {
        no_cache_ = true;
      } else if (std::strncmp(argv[i], "--cache-dir=", 12) == 0) {
        cache_dir_ = argv[i] + 12;
      } else if (std::strncmp(argv[i], "--loggp=", 8) == 0) {
        parse_loggp(argv[i] + 8);
      } else if (std::strncmp(argv[i], "--delta0=", 9) == 0) {
        delta0_ = static_cast<Duration>(
            parse_positive(argv[i] + 9, "--delta0"));
      } else if (std::strncmp(argv[i], "--backend=", 10) == 0) {
        backend_ = argv[i] + 10;
        if (!backend::backend_registered(backend_)) {
          std::cerr << "bench: unknown --backend \"" << backend_
                    << "\" (registered:";
          for (const std::string& n : backend::backend_names()) {
            std::cerr << " " << n;
          }
          std::cerr << ")\n";
          std::exit(2);
        }
      }
    }
    if (!no_cache_) {
      cache_ = cache_dir_.empty()
                   ? runner::ResultCache::open_default()
                   : std::make_unique<runner::ResultCache>(cache_dir_);
    }
  }

  bool csv() const { return csv_; }
  int iterations(int fallback) const {
    return iters_override_ > 0 ? iters_override_ : fallback;
  }

  /// The machine model the drivers should plan with: --loggp=L,o_s,o_r,g,G
  /// (ns, ns, ns, ns, ns/byte) or the measured Niagara defaults.  The
  /// defaults keep existing figure fingerprints byte-identical.
  model::LogGPParams model_params() const {
    return loggp_set_ ? loggp_ : model::LogGPParams::niagara_mpi_measured();
  }

  /// Initial timer window for δ-based designs: --delta0=NS or `fallback`
  /// (the drivers' historical hard-coded value, typically msec(4)).
  Duration initial_delta(Duration fallback = msec(4)) const {
    return delta0_ > 0 ? delta0_ : fallback;
  }

  /// Transport backend for drivers that construct their World through the
  /// registry: --backend=NAME, else PARTIB_BACKEND, else "des" — so the
  /// figure pipelines stay on the deterministic fabric unless explicitly
  /// pointed elsewhere.
  const std::string& backend_name() const { return backend_; }
  std::unique_ptr<backend::Backend> make_backend(
      const backend::Config& config = {}) const {
    return backend::make_backend(backend_, config);
  }

  /// Runner options wired from the command line: --jobs=N worker threads
  /// (default runner::default_jobs(); 1 reproduces serial behaviour
  /// exactly), plus the persistent result cache unless --no-cache.  The
  /// cache lives as long as the Cli.
  runner::RunOptions run_options() const {
    runner::RunOptions o;
    o.jobs = jobs_;
    o.cache = cache_.get();
    return o;
  }

  void emit(const Table& table) const {
    if (csv_) {
      std::cout << table.to_csv();
    } else {
      table.print(std::cout);
    }
  }

 private:
  // std::from_chars, not atoi: reject garbage and non-positive values
  // loudly instead of silently running 0 iterations / 0 workers.
  static int parse_positive(const char* value, const char* flag) {
    const char* end = value + std::strlen(value);
    int parsed = 0;
    const auto [ptr, ec] = std::from_chars(value, end, parsed);
    if (ec != std::errc{} || ptr != end || parsed <= 0) {
      std::cerr << "bench: invalid " << flag << " value \"" << value
                << "\" (expected a positive integer)\n";
      std::exit(2);
    }
    return parsed;
  }

  void parse_loggp(const char* value) {
    model::LogGPParams p{};
    char* next = nullptr;
    const char* cursor = value;
    Duration* ints[4] = {&p.L, &p.o_s, &p.o_r, &p.g};
    for (Duration* field : ints) {
      *field = static_cast<Duration>(std::strtoll(cursor, &next, 10));
      if (next == cursor || *next != ',') bad_loggp(value);
      cursor = next + 1;
    }
    p.G = std::strtod(cursor, &next);
    if (next == cursor || *next != '\0') bad_loggp(value);
    loggp_ = p;
    loggp_set_ = true;
  }

  [[noreturn]] static void bad_loggp(const char* value) {
    std::cerr << "bench: invalid --loggp value \"" << value
              << "\" (expected L,o_s,o_r,g,G — four ns integers and a "
                 "ns/byte double)\n";
    std::exit(2);
  }

  bool csv_ = false;
  int iters_override_ = 0;
  std::size_t jobs_ = 0;  ///< 0 = runner default
  bool no_cache_ = false;
  std::string cache_dir_;
  std::unique_ptr<runner::ResultCache> cache_;
  model::LogGPParams loggp_{};
  bool loggp_set_ = false;
  Duration delta0_ = 0;  ///< 0 = use the driver's fallback
  std::string backend_ = backend::default_backend_name();
};

inline part::Options options_with(
    std::shared_ptr<const agg::Aggregator> a) {
  part::Options o;
  o.aggregator = std::move(a);
  return o;
}

inline part::Options persistent_options() {
  return options_with(std::make_shared<agg::PersistentBaseline>());
}

inline part::Options static_options(std::size_t tp, int qps) {
  return options_with(std::make_shared<agg::StaticAggregator>(tp, qps));
}

inline part::Options ploggp_options(
    const model::LogGPParams& params =
        model::LogGPParams::niagara_mpi_measured()) {
  return options_with(std::make_shared<agg::PLogGPAggregator>(params));
}

inline part::Options timer_options(
    Duration delta, const model::LogGPParams& params =
                        model::LogGPParams::niagara_mpi_measured()) {
  return options_with(
      std::make_shared<agg::TimerPLogGPAggregator>(params, delta));
}

inline part::Options tuning_table_options() {
  return options_with(std::make_shared<agg::TuningTableAggregator>(
      agg::TuningTable::niagara_prebuilt()));
}

inline part::Options adaptive_options(
    const model::LogGPParams& params, Duration initial = msec(4),
    double alpha = 0.5) {
  return options_with(std::make_shared<agg::AdaptivePLogGPAggregator>(
      params, initial, alpha));
}

inline part::Options learning_options(
    const model::LogGPParams& params, Duration delta0 = msec(4),
    model::ArrivalLearnConfig cfg = {}) {
  return options_with(std::make_shared<agg::ArrivalLearningAggregator>(
      params, delta0, cfg));
}

/// The zoo's oracle arm: a learning channel whose profile the harness
/// re-seeds with ground truth each epoch, planning greedily on it
/// (alpha = 1 — trust the seed fully; epsilon = 0 — no hysteresis).
inline part::Options oracle_options(const model::LogGPParams& params,
                                    Duration delta0 = msec(4)) {
  model::ArrivalLearnConfig cfg;
  cfg.ewma_alpha = 1.0;
  cfg.hysteresis_epsilon = 0.0;
  return learning_options(params, delta0, cfg);
}

}  // namespace partib::bench
