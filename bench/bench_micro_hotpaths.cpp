// google-benchmark micro-benchmarks of the library's hot paths: the
// per-partition fast path (imm encode/decode, Pready flag logic), the
// DES engine, the contended-resource models and the fluid network.
// These measure *host* cost of the simulator itself, complementing the
// virtual-time figure benches.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "agg/strategies.hpp"
#include "common/units.hpp"
#include "fabric/fluid_network.hpp"
#include "mpi/matcher.hpp"
#include "mpi/world.hpp"
#include "part/imm.hpp"
#include "part/partitioned.hpp"
#include "runner/fingerprint.hpp"
#include "runner/runner.hpp"
#include "sim/engine.hpp"
#include "sim/resources.hpp"
#include "sim/rng.hpp"
#include "verbs/verbs.hpp"

namespace {

using namespace partib;

void BM_ImmEncodeDecode(benchmark::State& state) {
  std::uint32_t i = 0;
  for (auto _ : state) {
    const std::uint32_t imm = part::encode_imm(i & 0xFFFF, (i + 1) & 0xFFFF);
    const part::ImmRange r = part::decode_imm(imm);
    benchmark::DoNotOptimize(r);
    ++i;
  }
}
BENCHMARK(BM_ImmEncodeDecode);

void BM_EngineScheduleRun(benchmark::State& state) {
  const auto events = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < events; ++i) {
      engine.schedule_at(static_cast<Time>(i * 7 % 1000), [&sum] { ++sum; });
    }
    engine.run();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(events));
}
BENCHMARK(BM_EngineScheduleRun)->Arg(1024)->Arg(16384);

void BM_EngineCancel(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    std::vector<sim::Engine::EventId> ids;
    ids.reserve(1024);
    for (int i = 0; i < 1024; ++i) {
      ids.push_back(engine.schedule_at(i, [] {}));
    }
    for (const auto& id : ids) engine.cancel(id);
    benchmark::DoNotOptimize(engine.pending());
  }
}
BENCHMARK(BM_EngineCancel);

void BM_FifoResource(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    sim::FifoResource res(engine, 4);
    std::uint64_t done = 0;
    for (int i = 0; i < 1024; ++i) {
      res.request(100, [&done](Time, Time) { ++done; });
    }
    engine.run();
    benchmark::DoNotOptimize(done);
  }
}
BENCHMARK(BM_FifoResource);

void BM_ProcessorSharing(benchmark::State& state) {
  const auto jobs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    sim::ProcessorSharingCpu cpu(engine, 40);
    std::uint64_t done = 0;
    for (int i = 0; i < jobs; ++i) {
      cpu.submit(1000 + i * 13, [&done] { ++done; });
    }
    engine.run();
    benchmark::DoNotOptimize(done);
  }
}
BENCHMARK(BM_ProcessorSharing)->Arg(32)->Arg(128);

void BM_FluidNetworkFanIn(benchmark::State& state) {
  const auto flows = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    fabric::FluidNetwork net(engine, 12.1);
    net.set_node_count(flows + 1);
    std::uint64_t done = 0;
    for (int i = 0; i < flows; ++i) {
      net.submit(i + 1, 0, 64.0 * 1024, 11.3,
                 [&done](Time) { ++done; });
    }
    engine.run();
    benchmark::DoNotOptimize(done);
  }
}
BENCHMARK(BM_FluidNetworkFanIn)->Arg(8)->Arg(64);

void BM_RunnerSweep(benchmark::State& state) {
  // Dispatch overhead of the parallel experiment runner: 256 trials whose
  // body is a tiny 64-event simulation, so pool submission, stealing and
  // submission-order collection dominate.  No cache — this measures the
  // execute path, not fingerprint I/O.
  struct Cfg {
    std::uint64_t id = 0;
  };
  std::vector<Cfg> grid(256);
  for (std::size_t i = 0; i < grid.size(); ++i) grid[i].id = i;
  auto fp = [](const Cfg& c) {
    runner::Hasher h;
    return h.str("bm-runner-sweep/v1").u64(c.id).digest();
  };
  auto trial = [](const Cfg& c) {
    sim::Engine engine;
    std::uint64_t sum = c.id;
    for (int i = 0; i < 64; ++i) {
      engine.schedule_at(static_cast<Time>(i * 7 % 16), [&sum] { ++sum; });
    }
    engine.run();
    return sum;
  };
  runner::RunOptions opts;
  opts.jobs = 4;
  for (auto _ : state) {
    const auto results = runner::run_trials<Cfg, std::uint64_t>(
        grid, trial, fp, {}, opts);
    benchmark::DoNotOptimize(results.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(grid.size()));
}
BENCHMARK(BM_RunnerSweep);

void BM_PreadyFlush(benchmark::State& state) {
  // The per-MPI_Pready critical path, end to end: flag update, group
  // accounting, WR fill, doorbell, WQE fetch, wire, delivery, CQ poll.
  // 64 partitions at one transport partition each over 4 QPs maximises
  // per-message costs and exercises the WR-slot backlog (16 messages per
  // QP against the ConnectX-5 16-WR cap).
  sim::Engine engine;
  mpi::World world(engine, {});
  std::vector<std::byte> sbuf(64 * KiB), rbuf(64 * KiB);
  part::Options opts;
  opts.aggregator = std::make_shared<agg::StaticAggregator>(64, 4);
  std::unique_ptr<part::PsendRequest> send;
  std::unique_ptr<part::PrecvRequest> recv;
  PARTIB_ASSERT(ok(part::psend_init(world.rank(0), sbuf, 64, 1, 0, 0, opts,
                                    &send)));
  PARTIB_ASSERT(ok(part::precv_init(world.rank(1), rbuf, 64, 0, 0, 0, opts,
                                    &recv)));
  engine.run();  // handshake
  for (auto _ : state) {
    PARTIB_ASSERT(ok(send->start()));
    PARTIB_ASSERT(ok(recv->start()));
    for (std::size_t i = 0; i < 64; ++i) {
      PARTIB_ASSERT(ok(send->pready(i)));
    }
    engine.run();
    PARTIB_ASSERT(send->test() && recv->test());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_PreadyFlush);

void BM_CqPollBurst(benchmark::State& state) {
  // Raw CQE fan-through: push a completion wave, drain it in 16-entry
  // polls (the progress() convention throughout src/part and src/mpi).
  verbs::Cq cq(4096);
  verbs::Wc wcs[16];
  for (auto _ : state) {
    for (std::uint64_t i = 0; i < 256; ++i) {
      verbs::Wc wc;
      wc.wr_id = i;
      cq.push(wc);
    }
    std::uint64_t sum = 0;
    int n;
    while ((n = cq.poll(std::span<verbs::Wc>(wcs))) > 0) {
      for (int i = 0; i < n; ++i) sum += wcs[i].wr_id;
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          256);
}
BENCHMARK(BM_CqPollBurst);

void BM_QpLookup(benchmark::State& state) {
  // Device-wide qp_num -> Qp resolution (the per-delivery lookup a real
  // RDMA target performs per incoming packet stream).
  sim::Engine engine;
  fabric::Fabric fab(engine, fabric::NicParams::connectx5_edr());
  const fabric::NodeId node = fab.add_node();
  verbs::Device dev(fab);
  verbs::Context& ctx = dev.open(node);
  verbs::Pd& pd = ctx.alloc_pd();
  verbs::Cq& cq = ctx.create_cq(64);
  std::vector<std::uint32_t> nums;
  for (int i = 0; i < 64; ++i) {
    nums.push_back(pd.create_qp(cq, cq).qp_num());
  }
  // Pseudo-random probe order, fixed across iterations.
  std::vector<std::uint32_t> order;
  for (std::size_t i = 0; i < 256; ++i) {
    order.push_back(nums[(i * 37) % nums.size()]);
  }
  for (auto _ : state) {
    std::uintptr_t sum = 0;
    for (const std::uint32_t num : order) {
      sum += wire_addr(dev.find_qp(num));
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(order.size()));
}
BENCHMARK(BM_QpLookup);

void BM_MatcherChurn(benchmark::State& state) {
  // Psend_init/Precv_init pairing at channel-setup rate: half the pairs
  // recv-first, half send-first, interleaved across 8 distinct keys.
  for (auto _ : state) {
    mpi::InitMatcher m;
    std::uint64_t matched = 0;
    for (int i = 0; i < 64; ++i) {
      mpi::SendInit si;
      si.key = mpi::MatchKey{i % 8, i / 8, 0};
      si.qp_nums = {1, 2};
      if (i % 2 == 0) {
        m.post_recv_init(si.key,
                         [&matched](const mpi::SendInit&) { ++matched; });
        m.on_send_init(si);
      } else {
        m.on_send_init(si);
        m.post_recv_init(si.key,
                         [&matched](const mpi::SendInit&) { ++matched; });
      }
    }
    benchmark::DoNotOptimize(matched);
    benchmark::DoNotOptimize(m.pending_recvs());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_MatcherChurn);

void BM_Rng(benchmark::State& state) {
  sim::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next_u64());
  }
}
BENCHMARK(BM_Rng);

}  // namespace

BENCHMARK_MAIN();
