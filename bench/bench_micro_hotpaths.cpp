// google-benchmark micro-benchmarks of the library's hot paths: the
// per-partition fast path (imm encode/decode, Pready flag logic), the
// DES engine, the contended-resource models and the fluid network.
// These measure *host* cost of the simulator itself, complementing the
// virtual-time figure benches.
#include <benchmark/benchmark.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "agg/strategies.hpp"
#include "backend/backend.hpp"
#include "backend/shm/spsc_ring.hpp"
#include "common/atomic_bits.hpp"
#include "common/units.hpp"
#include "model/arrival_plan.hpp"
#include "part/arrival_profile.hpp"
#include "fabric/fluid_network.hpp"
#include "mpi/conn.hpp"
#include "mpi/matcher.hpp"
#include "mpi/world.hpp"
#include "part/imm.hpp"
#include "part/partitioned.hpp"
#include "runner/fingerprint.hpp"
#include "runner/runner.hpp"
#include "runtime/bridge.hpp"
#include "runtime/producer.hpp"
#include "runtime/sharded_engine.hpp"
#include "sim/engine.hpp"
#include "sim/resources.hpp"
#include "sim/rng.hpp"
#include "verbs/verbs.hpp"

namespace {

using namespace partib;

void BM_ImmEncodeDecode(benchmark::State& state) {
  std::uint32_t i = 0;
  for (auto _ : state) {
    const std::uint32_t imm = part::encode_imm(i & 0xFFFF, (i + 1) & 0xFFFF);
    const part::ImmRange r = part::decode_imm(imm);
    benchmark::DoNotOptimize(r);
    ++i;
  }
}
BENCHMARK(BM_ImmEncodeDecode);

void BM_EngineScheduleRun(benchmark::State& state) {
  const auto events = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < events; ++i) {
      engine.schedule_at(static_cast<Time>(i * 7 % 1000), [&sum] { ++sum; });
    }
    engine.run();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(events));
}
BENCHMARK(BM_EngineScheduleRun)->Arg(1024)->Arg(16384);

void BM_EngineCancel(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    std::vector<sim::Engine::EventId> ids;
    ids.reserve(1024);
    for (int i = 0; i < 1024; ++i) {
      ids.push_back(engine.schedule_at(i, [] {}));
    }
    for (const auto& id : ids) engine.cancel(id);
    benchmark::DoNotOptimize(engine.pending());
  }
}
BENCHMARK(BM_EngineCancel);

void BM_FifoResource(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    sim::FifoResource res(engine, 4);
    std::uint64_t done = 0;
    for (int i = 0; i < 1024; ++i) {
      res.request(100, [&done](Time, Time) { ++done; });
    }
    engine.run();
    benchmark::DoNotOptimize(done);
  }
}
BENCHMARK(BM_FifoResource);

void BM_ProcessorSharing(benchmark::State& state) {
  const auto jobs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    sim::ProcessorSharingCpu cpu(engine, 40);
    std::uint64_t done = 0;
    for (int i = 0; i < jobs; ++i) {
      cpu.submit(1000 + i * 13, [&done] { ++done; });
    }
    engine.run();
    benchmark::DoNotOptimize(done);
  }
}
BENCHMARK(BM_ProcessorSharing)->Arg(32)->Arg(128);

void BM_FluidNetworkFanIn(benchmark::State& state) {
  const auto flows = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    fabric::FluidNetwork net(engine, 12.1);
    net.set_node_count(flows + 1);
    std::uint64_t done = 0;
    for (int i = 0; i < flows; ++i) {
      net.submit(i + 1, 0, 64.0 * 1024, 11.3,
                 [&done](Time) { ++done; });
    }
    engine.run();
    benchmark::DoNotOptimize(done);
  }
}
BENCHMARK(BM_FluidNetworkFanIn)->Arg(8)->Arg(64);

void BM_RunnerSweep(benchmark::State& state) {
  // Dispatch overhead of the parallel experiment runner: 256 trials whose
  // body is a tiny 64-event simulation, so pool submission, stealing and
  // submission-order collection dominate.  No cache — this measures the
  // execute path, not fingerprint I/O.
  struct Cfg {
    std::uint64_t id = 0;
  };
  std::vector<Cfg> grid(256);
  for (std::size_t i = 0; i < grid.size(); ++i) grid[i].id = i;
  auto fp = [](const Cfg& c) {
    runner::Hasher h;
    return h.str("bm-runner-sweep/v1").u64(c.id).digest();
  };
  auto trial = [](const Cfg& c) {
    sim::Engine engine;
    std::uint64_t sum = c.id;
    for (int i = 0; i < 64; ++i) {
      engine.schedule_at(static_cast<Time>(i * 7 % 16), [&sum] { ++sum; });
    }
    engine.run();
    return sum;
  };
  runner::RunOptions opts;
  opts.jobs = 4;
  for (auto _ : state) {
    const auto results = runner::run_trials<Cfg, std::uint64_t>(
        grid, trial, fp, {}, opts);
    benchmark::DoNotOptimize(results.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(grid.size()));
}
BENCHMARK(BM_RunnerSweep);

void BM_PreadyFlush(benchmark::State& state) {
  // The per-MPI_Pready critical path, end to end: flag update, group
  // accounting, WR fill, doorbell, WQE fetch, wire, delivery, CQ poll.
  // 64 partitions at one transport partition each over 4 QPs maximises
  // per-message costs and exercises the WR-slot backlog (16 messages per
  // QP against the ConnectX-5 16-WR cap).
  sim::Engine engine;
  mpi::World world(engine, {});
  std::vector<std::byte> sbuf(64 * KiB), rbuf(64 * KiB);
  part::Options opts;
  opts.aggregator = std::make_shared<agg::StaticAggregator>(64, 4);
  std::unique_ptr<part::PsendRequest> send;
  std::unique_ptr<part::PrecvRequest> recv;
  PARTIB_ASSERT(ok(part::psend_init(world.rank(0), sbuf, 64, 1, 0, 0, opts,
                                    &send)));
  PARTIB_ASSERT(ok(part::precv_init(world.rank(1), rbuf, 64, 0, 0, 0, opts,
                                    &recv)));
  engine.run();  // handshake
  for (auto _ : state) {
    PARTIB_ASSERT(ok(send->start()));
    PARTIB_ASSERT(ok(recv->start()));
    for (std::size_t i = 0; i < 64; ++i) {
      PARTIB_ASSERT(ok(send->pready(i)));
    }
    engine.run();
    PARTIB_ASSERT(send->test() && recv->test());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_PreadyFlush);

void BM_BackendDispatch(benchmark::State& state) {
  // BM_PreadyFlush's exact workload, but with the World constructed
  // through the backend registry so every transport touch goes via the
  // backend::Transport vtable and the drive loop via run_until_idle().
  // The gate (BENCH_hotpaths.json): <= 1.05x BM_PreadyFlush in the same
  // run — the pluggable-backend indirection must be noise on the data
  // path, because the per-op work (WR fill, wire model, CQ delivery)
  // dwarfs one virtual call per fabric entry point.
  auto be = backend::make_backend("des");
  PARTIB_ASSERT(be != nullptr);
  mpi::World world(*be, {});
  std::vector<std::byte> sbuf(64 * KiB), rbuf(64 * KiB);
  part::Options opts;
  opts.aggregator = std::make_shared<agg::StaticAggregator>(64, 4);
  std::unique_ptr<part::PsendRequest> send;
  std::unique_ptr<part::PrecvRequest> recv;
  PARTIB_ASSERT(ok(part::psend_init(world.rank(0), sbuf, 64, 1, 0, 0, opts,
                                    &send)));
  PARTIB_ASSERT(ok(part::precv_init(world.rank(1), rbuf, 64, 0, 0, 0, opts,
                                    &recv)));
  be->run_until_idle();  // handshake
  for (auto _ : state) {
    PARTIB_ASSERT(ok(send->start()));
    PARTIB_ASSERT(ok(recv->start()));
    for (std::size_t i = 0; i < 64; ++i) {
      PARTIB_ASSERT(ok(send->pready(i)));
    }
    be->run_until_idle();
    PARTIB_ASSERT(send->test() && recv->test());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_BackendDispatch);

void BM_ShmRingRoundtrip(benchmark::State& state) {
  // The shm transport's per-op skeleton: one pointer-sized record through
  // the wire ring, one back through the ack ring (a full op round trip
  // minus the memcpy and callbacks).  Single-threaded, so this is the
  // ring arithmetic itself — the inter-thread cache-miss cost shows up in
  // the threaded suites, not here.
  backend::SpscRing<std::uint64_t> wire(1024);
  backend::SpscRing<std::uint64_t> ack(1024);
  for (auto _ : state) {
    std::uint64_t sum = 0;
    for (std::uint64_t i = 0; i < 256; ++i) {
      benchmark::DoNotOptimize(wire.try_push(i));
      std::uint64_t v = 0;
      benchmark::DoNotOptimize(wire.try_pop(&v));
      benchmark::DoNotOptimize(ack.try_push(v));
      benchmark::DoNotOptimize(ack.try_pop(&v));
      sum += v;
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          256);
}
BENCHMARK(BM_ShmRingRoundtrip);

void BM_CqPollBurst(benchmark::State& state) {
  // Raw CQE fan-through: push a completion wave, drain it in 16-entry
  // polls (the progress() convention throughout src/part and src/mpi).
  verbs::Cq cq(4096);
  verbs::Wc wcs[16];
  for (auto _ : state) {
    for (std::uint64_t i = 0; i < 256; ++i) {
      verbs::Wc wc;
      wc.wr_id = i;
      cq.push(wc);
    }
    std::uint64_t sum = 0;
    int n;
    while ((n = cq.poll(std::span<verbs::Wc>(wcs))) > 0) {
      for (int i = 0; i < n; ++i) sum += wcs[i].wr_id;
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          256);
}
BENCHMARK(BM_CqPollBurst);

void BM_SrqPollBurst(benchmark::State& state) {
  // SRQ slab turnover at burst rate: post a 256-WR wave, consume it in
  // strict order (what each delivery does on an SRQ-attached QP).  The
  // comparison against BM_CqPollBurst bounds what receive staging through
  // the shared slab costs over a private ring.
  sim::Engine engine;
  fabric::Fabric fab(engine, fabric::NicParams::connectx5_edr());
  verbs::Device dev(fab);
  verbs::Context& ctx = dev.open(fab.add_node());
  verbs::Pd& pd = ctx.alloc_pd();
  verbs::SrqAttrs attrs;
  attrs.max_wr = 4096;
  verbs::Srq& srq = pd.create_srq(attrs);
  for (auto _ : state) {
    for (std::uint64_t i = 0; i < 256; ++i) {
      verbs::RecvWr wr;
      wr.wr_id = i;
      PARTIB_ASSERT(ok(srq.post_recv(wr)));
    }
    std::uint64_t sum = 0;
    verbs::PostedRecv out;
    while (srq.consume(&out)) sum += out.wr.wr_id;
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          256);
}
BENCHMARK(BM_SrqPollBurst);

void BM_SharedCqDemux(benchmark::State& state) {
  // The connection manager's completion fan-out: 256 CQEs round-robined
  // across 16 bound qp_nums, routed through WcRouter's dense handler
  // table.  The acceptance bar is <= 1.15x BM_CqPollBurst — demux must
  // cost no more than a bounds-checked array index over the raw drain.
  verbs::Cq cq(4096);
  mpi::WcRouter router;
  std::uint64_t sum = 0;
  for (std::uint32_t q = 0; q < 16; ++q) {
    router.bind(verbs::Device::kFirstQpNum + q,
                [&sum](const verbs::Wc& wc) { sum += wc.wr_id; });
  }
  for (auto _ : state) {
    for (std::uint64_t i = 0; i < 256; ++i) {
      verbs::Wc wc;
      wc.wr_id = i;
      wc.qp_num =
          verbs::Device::kFirstQpNum + static_cast<std::uint32_t>(i % 16);
      cq.push(wc);
    }
    const int n = router.drain(cq);
    benchmark::DoNotOptimize(n);
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          256);
}
BENCHMARK(BM_SharedCqDemux);

void BM_ConnSetupTeardown(benchmark::State& state) {
  // Full lazy-establishment round trip at cap: connect drives the
  // control-plane handshake to RTS on both sides, release leaves the
  // slot warm, and the next connect recycles it through
  // ERROR->RESET->INIT->RTR->RTS (the Ibdxnet churn pattern).
  sim::Engine engine;
  mpi::WorldOptions wopts;
  wopts.ranks = 2;
  wopts.conn_max_connections = 1;
  mpi::World world(engine, wopts);
  mpi::ConnectionManager& active = world.rank(0).connections();
  mpi::ConnectionManager& passive = world.rank(1).connections();
  std::uint64_t token = 1;
  for (auto _ : state) {
    passive.expect(token, [](mpi::ConnectionManager::Connection&) {});
    const auto id = active.connect(
        /*peer=*/1, /*qp_count=*/2, token,
        [](mpi::ConnectionManager::Connection&) {});
    engine.run();
    active.release(id);
    ++token;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ConnSetupTeardown);

void BM_QpLookup(benchmark::State& state) {
  // Device-wide qp_num -> Qp resolution (the per-delivery lookup a real
  // RDMA target performs per incoming packet stream).
  sim::Engine engine;
  fabric::Fabric fab(engine, fabric::NicParams::connectx5_edr());
  const fabric::NodeId node = fab.add_node();
  verbs::Device dev(fab);
  verbs::Context& ctx = dev.open(node);
  verbs::Pd& pd = ctx.alloc_pd();
  verbs::Cq& cq = ctx.create_cq(64);
  std::vector<std::uint32_t> nums;
  for (int i = 0; i < 64; ++i) {
    nums.push_back(pd.create_qp(cq, cq).qp_num());
  }
  // Pseudo-random probe order, fixed across iterations.
  std::vector<std::uint32_t> order;
  for (std::size_t i = 0; i < 256; ++i) {
    order.push_back(nums[(i * 37) % nums.size()]);
  }
  for (auto _ : state) {
    std::uintptr_t sum = 0;
    for (const std::uint32_t num : order) {
      sum += wire_addr(dev.find_qp(num));
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(order.size()));
}
BENCHMARK(BM_QpLookup);

void BM_MatcherChurn(benchmark::State& state) {
  // Psend_init/Precv_init pairing at channel-setup rate: half the pairs
  // recv-first, half send-first, interleaved across 8 distinct keys.
  for (auto _ : state) {
    mpi::InitMatcher m;
    std::uint64_t matched = 0;
    for (int i = 0; i < 64; ++i) {
      mpi::SendInit si;
      si.key = mpi::MatchKey{i % 8, i / 8, 0};
      si.qp_nums = {1, 2};
      if (i % 2 == 0) {
        m.post_recv_init(si.key,
                         [&matched](const mpi::SendInit&) { ++matched; });
        m.on_send_init(si);
      } else {
        m.on_send_init(si);
        m.post_recv_init(si.key,
                         [&matched](const mpi::SendInit&) { ++matched; });
      }
    }
    benchmark::DoNotOptimize(matched);
    benchmark::DoNotOptimize(m.pending_recvs());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_MatcherChurn);

void BM_ArrivalReplan(benchmark::State& state) {
  // The full epoch-boundary replan psend pays at MPI_Start once the
  // arrival profile is warm: plan_from_arrivals scores every uniform
  // power-of-two candidate plus the clustered cut layout, and the
  // incumbent is re-predicted for the hysteresis compare.  The arrival
  // vector is the hard case — a tight head ramp with an index-contiguous
  // straggler cluster, so the cut path runs too.  The acceptance bar is
  // <= 2 us at 64 partitions (BENCH_hotpaths.json): a replan must stay
  // invisible next to the multi-millisecond epoch it plans.
  const model::LogGPParams p = model::LogGPParams::niagara_mpi_measured();
  model::ArrivalLearnConfig cfg;
  model::ArrivalPlanScratch scratch;
  scratch.reserve(64);
  Duration arrival[64];
  for (std::size_t i = 0; i < 56; ++i) {
    arrival[i] = (usec(120) * static_cast<Duration>(i)) / 55;
  }
  for (std::size_t i = 56; i < 64; ++i) {
    arrival[i] = msec(5) + (usec(600) * static_cast<Duration>(i - 56)) / 7;
  }
  std::size_t gf[64];
  std::size_t gc[64];
  std::size_t inc_first[1] = {0};
  std::size_t inc_count[1] = {64};
  for (auto _ : state) {
    const model::ArrivalPlanResult r = model::plan_from_arrivals(
        p, std::size_t{64} << 20, arrival, 64, cfg, gf, gc, scratch);
    const Duration incumbent = model::predict_grouped_completion(
        p, (std::size_t{64} << 20) / 64, arrival, inc_first, inc_count, 1,
        msec(4), scratch);
    benchmark::DoNotOptimize(r);
    benchmark::DoNotOptimize(incumbent);
  }
}
BENCHMARK(BM_ArrivalReplan);

void BM_ArrivalProfilePublish(benchmark::State& state) {
  // What learning adds to the Pready critical path: record() is one
  // branch plus a plain store into fixed storage, folded into EWMAs only
  // at the epoch boundary.  The acceptance bar is <= 1.15x
  // BM_ArrivedMirrorStore — recording an arrival offset must cost no more
  // than the arrived-mirror publish that already sits on the same path.
  part::ArrivalProfile prof;
  prof.init(64, model::ArrivalLearnConfig{});
  Time now = 0;
  for (auto _ : state) {
    for (std::size_t i = 0; i < 64; ++i) {
      prof.record(i, now + static_cast<Time>(i) * 1000);
    }
    now += msec(1);
    benchmark::DoNotOptimize(prof.predicted());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_ArrivalProfilePublish);

void BM_ArrivedMirrorStore(benchmark::State& state) {
  // Sibling gate for BM_ArrivalProfilePublish: the PR 7 arrived-mirror
  // publish (one release bit-or per Pready) over the same 64 partitions.
  std::uint64_t words[1] = {0};
  for (auto _ : state) {
    for (std::size_t i = 0; i < 64; ++i) {
      atomic_publish_bit(words, i);
    }
    benchmark::DoNotOptimize(words[0]);
    words[0] = 0;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_ArrivedMirrorStore);

// -- threaded pready throughput (docs/THREADING.md) --------------------------
//
// N persistent producer threads each own one channel of kRigPartitions
// partitions; a timed "round" is every producer marking its whole channel
// ready through the runtime.  Sharded mode measures the claim + MPSC
// hand-off fast path (the bridge drain and the DES completion run in the
// untimed gap); serialized mode is the big-lock baseline — one global
// mutex, full Pready apply inside every call — which is what a naive
// MPI_THREAD_MULTIPLE implementation does.  The reported ns/op is the
// aggregate per-call cost across all producers (real time).
class PreadyRig {
 public:
  static constexpr std::size_t kRigPartitions = 4096;

  PreadyRig(int producers, runtime::ShardedProgressEngine::Mode mode)
      : producers_(producers) {
    mpi::WorldOptions wopts;
    wopts.copy_data = false;  // host cost of the runtime, not the memcpy
    world_ = std::make_unique<mpi::World>(engine_, wopts);
    part::Options opts;
    // 256 transport partitions (group of 16): the paper's mid-range
    // aggregation, so a realistic share of calls completes a group and
    // pays staging + doorbell work — on the producer in serialized mode,
    // on the bridge in sharded mode.
    opts.aggregator = std::make_shared<agg::StaticAggregator>(256, 1);
    sbufs_.resize(static_cast<std::size_t>(producers));
    rbufs_.resize(static_cast<std::size_t>(producers));
    sends_.resize(static_cast<std::size_t>(producers));
    recvs_.resize(static_cast<std::size_t>(producers));
    for (int t = 0; t < producers; ++t) {
      const auto i = static_cast<std::size_t>(t);
      sbufs_[i].resize(kRigPartitions * 16);
      rbufs_[i].resize(kRigPartitions * 16);
      PARTIB_ASSERT(ok(part::psend_init(world_->rank(0), sbufs_[i],
                                        kRigPartitions, 1, t, 0, opts,
                                        &sends_[i])));
      PARTIB_ASSERT(ok(part::precv_init(world_->rank(1), rbufs_[i],
                                        kRigPartitions, 0, t, 0, opts,
                                        &recvs_[i])));
    }
    engine_.run();  // settle handshakes

    runtime::ShardedProgressEngine::Config cfg;
    cfg.shards = 4;
    cfg.ring_capacity = 8192;
    cfg.mode = mode;
    rt_ = std::make_unique<runtime::ShardedProgressEngine>(cfg);
    if (mode == runtime::ShardedProgressEngine::Mode::kSerialized) {
      // The naive big-lock baseline obeys the MPI progress rule: every
      // call advances the engine while holding the lock.  Sharded mode
      // pays none of this on the producer — the bridge does it.
      rt_->set_serial_progress([this] { engine_.run(); });
    }
    for (int t = 0; t < producers; ++t) {
      const auto i = static_cast<std::size_t>(t);
      rt_->add_channel(sends_[i].get(), recvs_[i].get());
    }
    start_round();
    for (int t = 0; t < producers; ++t) {
      workers_.emplace_back([this, t] { worker(t); });
    }
  }

  ~PreadyRig() {
    stop_.store(true, std::memory_order_relaxed);
    gen_.fetch_add(1, std::memory_order_release);
    for (auto& w : workers_) w.join();
  }

  /// Timed: release the producers for one round and wait until every one
  /// has issued its kRigPartitions pready calls.
  void run_claims() {
    done_.store(0, std::memory_order_relaxed);
    gen_.fetch_add(1, std::memory_order_release);
    while (done_.load(std::memory_order_acquire) < producers_) {
      std::this_thread::yield();
    }
  }

  /// Untimed: drain, complete the round in the DES, rearm the next one.
  void finish_round() {
    runtime::pump_until(engine_, *rt_, [this] {
      for (std::size_t i = 0; i < sends_.size(); ++i) {
        if (!sends_[i]->test() || !recvs_[i]->test()) return false;
      }
      return true;
    });
    start_round();
  }

 private:
  void start_round() {
    for (std::size_t i = 0; i < sends_.size(); ++i) {
      PARTIB_ASSERT(ok(sends_[i]->start()));
      PARTIB_ASSERT(ok(recvs_[i]->start()));
    }
    rt_->begin_round();
  }

  void worker(int t) {
    std::uint64_t seen = 0;
    for (;;) {
      while (gen_.load(std::memory_order_acquire) == seen) {
        std::this_thread::yield();
      }
      ++seen;
      if (stop_.load(std::memory_order_relaxed)) return;
      const auto ch = static_cast<std::size_t>(t);
      // The intended producer fast path: the per-thread handle coalesces
      // this ascending sweep into a handful of hand-offs (serialized mode
      // degenerates to one locked apply per call — the baseline).
      runtime::ProducerHandle h(*rt_, static_cast<std::uint32_t>(t));
      for (std::size_t p = 0; p < kRigPartitions; ++p) {
        h.pready(ch, p);
      }
      h.flush();
      done_.fetch_add(1, std::memory_order_release);
    }
  }

  int producers_;
  sim::Engine engine_;
  std::unique_ptr<mpi::World> world_;
  std::vector<std::vector<std::byte>> sbufs_;
  std::vector<std::vector<std::byte>> rbufs_;
  std::vector<std::unique_ptr<part::PsendRequest>> sends_;
  std::vector<std::unique_ptr<part::PrecvRequest>> recvs_;
  std::unique_ptr<runtime::ShardedProgressEngine> rt_;
  std::vector<std::thread> workers_;
  std::atomic<std::uint64_t> gen_{0};
  std::atomic<int> done_{0};
  std::atomic<bool> stop_{false};
};

void run_pready_bench(benchmark::State& state, int producers,
                      runtime::ShardedProgressEngine::Mode mode) {
  PreadyRig rig(producers, mode);
  const auto batch = static_cast<std::int64_t>(producers) *
                     static_cast<std::int64_t>(PreadyRig::kRigPartitions);
  while (state.KeepRunningBatch(batch)) {
    rig.run_claims();
    state.PauseTiming();
    rig.finish_round();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_ThreadedPready1(benchmark::State& state) {
  run_pready_bench(state, 1, runtime::ShardedProgressEngine::Mode::kSharded);
}
BENCHMARK(BM_ThreadedPready1);

void BM_ThreadedPready4(benchmark::State& state) {
  run_pready_bench(state, 4, runtime::ShardedProgressEngine::Mode::kSharded);
}
BENCHMARK(BM_ThreadedPready4);

void BM_ThreadedPready16(benchmark::State& state) {
  run_pready_bench(state, 16, runtime::ShardedProgressEngine::Mode::kSharded);
}
BENCHMARK(BM_ThreadedPready16);

void BM_SerializedPready1(benchmark::State& state) {
  run_pready_bench(state, 1,
                   runtime::ShardedProgressEngine::Mode::kSerialized);
}
BENCHMARK(BM_SerializedPready1);

void BM_SerializedPready16(benchmark::State& state) {
  run_pready_bench(state, 16,
                   runtime::ShardedProgressEngine::Mode::kSerialized);
}
BENCHMARK(BM_SerializedPready16);

void BM_Rng(benchmark::State& state) {
  sim::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next_u64());
  }
}
BENCHMARK(BM_Rng);

}  // namespace

BENCHMARK_MAIN();
