// google-benchmark micro-benchmarks of the library's hot paths: the
// per-partition fast path (imm encode/decode, Pready flag logic), the
// DES engine, the contended-resource models and the fluid network.
// These measure *host* cost of the simulator itself, complementing the
// virtual-time figure benches.
#include <benchmark/benchmark.h>

#include <vector>

#include "common/units.hpp"
#include "fabric/fluid_network.hpp"
#include "part/imm.hpp"
#include "runner/fingerprint.hpp"
#include "runner/runner.hpp"
#include "sim/engine.hpp"
#include "sim/resources.hpp"
#include "sim/rng.hpp"

namespace {

using namespace partib;

void BM_ImmEncodeDecode(benchmark::State& state) {
  std::uint32_t i = 0;
  for (auto _ : state) {
    const std::uint32_t imm = part::encode_imm(i & 0xFFFF, (i + 1) & 0xFFFF);
    const part::ImmRange r = part::decode_imm(imm);
    benchmark::DoNotOptimize(r);
    ++i;
  }
}
BENCHMARK(BM_ImmEncodeDecode);

void BM_EngineScheduleRun(benchmark::State& state) {
  const auto events = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < events; ++i) {
      engine.schedule_at(static_cast<Time>(i * 7 % 1000), [&sum] { ++sum; });
    }
    engine.run();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(events));
}
BENCHMARK(BM_EngineScheduleRun)->Arg(1024)->Arg(16384);

void BM_EngineCancel(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    std::vector<sim::Engine::EventId> ids;
    ids.reserve(1024);
    for (int i = 0; i < 1024; ++i) {
      ids.push_back(engine.schedule_at(i, [] {}));
    }
    for (const auto& id : ids) engine.cancel(id);
    benchmark::DoNotOptimize(engine.pending());
  }
}
BENCHMARK(BM_EngineCancel);

void BM_FifoResource(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    sim::FifoResource res(engine, 4);
    std::uint64_t done = 0;
    for (int i = 0; i < 1024; ++i) {
      res.request(100, [&done](Time, Time) { ++done; });
    }
    engine.run();
    benchmark::DoNotOptimize(done);
  }
}
BENCHMARK(BM_FifoResource);

void BM_ProcessorSharing(benchmark::State& state) {
  const auto jobs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    sim::ProcessorSharingCpu cpu(engine, 40);
    std::uint64_t done = 0;
    for (int i = 0; i < jobs; ++i) {
      cpu.submit(1000 + i * 13, [&done] { ++done; });
    }
    engine.run();
    benchmark::DoNotOptimize(done);
  }
}
BENCHMARK(BM_ProcessorSharing)->Arg(32)->Arg(128);

void BM_FluidNetworkFanIn(benchmark::State& state) {
  const auto flows = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    fabric::FluidNetwork net(engine, 12.1);
    net.set_node_count(flows + 1);
    std::uint64_t done = 0;
    for (int i = 0; i < flows; ++i) {
      net.submit(i + 1, 0, 64.0 * 1024, 11.3,
                 [&done](Time) { ++done; });
    }
    engine.run();
    benchmark::DoNotOptimize(done);
  }
}
BENCHMARK(BM_FluidNetworkFanIn)->Arg(8)->Arg(64);

void BM_RunnerSweep(benchmark::State& state) {
  // Dispatch overhead of the parallel experiment runner: 256 trials whose
  // body is a tiny 64-event simulation, so pool submission, stealing and
  // submission-order collection dominate.  No cache — this measures the
  // execute path, not fingerprint I/O.
  struct Cfg {
    std::uint64_t id = 0;
  };
  std::vector<Cfg> grid(256);
  for (std::size_t i = 0; i < grid.size(); ++i) grid[i].id = i;
  auto fp = [](const Cfg& c) {
    runner::Hasher h;
    return h.str("bm-runner-sweep/v1").u64(c.id).digest();
  };
  auto trial = [](const Cfg& c) {
    sim::Engine engine;
    std::uint64_t sum = c.id;
    for (int i = 0; i < 64; ++i) {
      engine.schedule_at(static_cast<Time>(i * 7 % 16), [&sum] { ++sum; });
    }
    engine.run();
    return sum;
  };
  runner::RunOptions opts;
  opts.jobs = 4;
  for (auto _ : state) {
    const auto results = runner::run_trials<Cfg, std::uint64_t>(
        grid, trial, fp, {}, opts);
    benchmark::DoNotOptimize(results.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(grid.size()));
}
BENCHMARK(BM_RunnerSweep);

void BM_Rng(benchmark::State& state) {
  sim::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next_u64());
  }
}
BENCHMARK(BM_Rng);

}  // namespace

BENCHMARK_MAIN();
