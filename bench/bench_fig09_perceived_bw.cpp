// Fig 9: perceived bandwidth of the persistent implementation, the PLogGP
// aggregator, and the Timer-based PLogGP aggregator (delta = 3000 us,
// illustrative).  100 ms compute, 4% noise, single-thread-delay model,
// for 16 and 32 user partitions.
//
// Paper shape: persistent highest (no aggregation => minimal latency for
// the last partition); Timer-PLogGP close behind; plain PLogGP lower
// (aggregation enlarges the laggard's message); all remain above the
// single-threaded wire line for medium sizes, converging toward it for
// 128 MiB+.
#include <string>
#include <vector>

#include "bench/perceived.hpp"
#include "bench/report.hpp"
#include "bench/trial.hpp"
#include "common/units.hpp"
#include "support/bench_main.hpp"

using namespace partib;

int main(int argc, char** argv) {
  const bench::Cli cli(argc, argv);

  // (persistent, ploggp, timer) per (partition count, size) point.
  std::vector<bench::PerceivedConfig> grid;
  for (std::size_t parts : {16u, 32u}) {
    for (std::size_t bytes : pow2_sizes(512 * KiB, 256 * MiB)) {
      for (const part::Options& opts :
           {bench::persistent_options(), bench::ploggp_options(),
            bench::timer_options(usec(3000))}) {
        bench::PerceivedConfig cfg;
        cfg.total_bytes = bytes;
        cfg.user_partitions = parts;
        cfg.options = opts;
        cfg.iterations = cli.iterations(5);
        cfg.warmup = 2;
        grid.push_back(cfg);
      }
    }
  }
  const std::vector<bench::PerceivedResult> results =
      bench::run_perceived_grid(grid, cli.run_options());

  std::size_t k = 0;
  for (std::size_t parts : {16u, 32u}) {
    bench::Table table(
        "Fig 9: perceived bandwidth, GB/s (" + std::to_string(parts) +
            " partitions, 100 ms compute, 4% noise)",
        {"msg_size", "persistent", "ploggp", "timer_3000us", "wire_limit"});
    for (std::size_t bytes : pow2_sizes(512 * KiB, 256 * MiB)) {
      const auto persistent = results[k++];
      const auto ploggp = results[k++];
      const auto timer = results[k++];
      table.add_row({format_bytes(bytes),
                     bench::fmt(persistent.mean_gbytes_per_s, 1),
                     bench::fmt(ploggp.mean_gbytes_per_s, 1),
                     bench::fmt(timer.mean_gbytes_per_s, 1),
                     bench::fmt(persistent.wire_gbytes_per_s, 1)});
    }
    cli.emit(table);
  }
  return 0;
}
