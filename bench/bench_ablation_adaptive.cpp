// Ablation: online-adaptive PLogGP aggregation (the auto-tuning the
// paper's §IV-D defers to future work).
//
// A 64 MiB / 32-partition channel runs 24 rounds whose thread imbalance
// changes regime twice: nearly balanced (5 us spread), then heavily
// imbalanced (8 ms), then moderately imbalanced (500 us).  The table
// shows the adaptive plan tracking the measured spread round by round,
// against the static PLogGP plan which is chosen once at init.
#include <memory>
#include <string>
#include <vector>

#include "agg/strategies.hpp"
#include "bench/report.hpp"
#include "common/units.hpp"
#include "mpi/world.hpp"
#include "part/partitioned.hpp"
#include "sim/engine.hpp"
#include "support/bench_main.hpp"

using namespace partib;

int main(int argc, char** argv) {
  const bench::Cli cli(argc, argv);
  constexpr std::size_t kParts = 32;
  constexpr std::size_t kBytes = 64 * MiB;

  sim::Engine engine;
  mpi::WorldOptions wopts;
  wopts.copy_data = false;
  mpi::World world(engine, wopts);
  std::vector<std::byte> sbuf(kBytes), rbuf(kBytes);

  part::Options opts;
  opts.aggregator = std::make_shared<agg::AdaptivePLogGPAggregator>(
      model::LogGPParams::niagara_mpi_measured(), /*initial=*/msec(4),
      /*alpha=*/0.5);
  std::unique_ptr<part::PsendRequest> send;
  std::unique_ptr<part::PrecvRequest> recv;
  if (!ok(part::psend_init(world.rank(0), sbuf, kParts, 1, 0, 0, opts,
                           &send)) ||
      !ok(part::precv_init(world.rank(1), rbuf, kParts, 0, 0, 0, opts,
                           &recv))) {
    return 1;
  }
  engine.run();

  const std::size_t static_tp = model::optimal_transport_partitions(
      model::LogGPParams::niagara_mpi_measured(), kBytes, kParts);

  bench::Table table(
      "Ablation: online-adaptive aggregation under shifting imbalance "
      "(64 MiB, 32 partitions; static PLogGP plan would stay at " +
          std::to_string(static_tp) + " transport partitions)",
      {"round", "injected_spread_us", "measured_ewma_us", "adaptive_tp"});

  const int rounds = cli.iterations(24);
  for (int round = 1; round <= rounds; ++round) {
    Duration spread = usec(5);
    if (round > rounds / 3) spread = msec(8);
    if (round > 2 * rounds / 3) spread = usec(500);

    (void)send->start();
    (void)recv->start();
    const Time t0 = engine.now();
    for (std::size_t i = 0; i < kParts; ++i) {
      const Time at = t0 + (spread * static_cast<Duration>(i)) /
                               static_cast<Duration>(kParts - 1);
      engine.schedule_at(at, [&send, i] { (void)send->pready(i); });
    }
    engine.run();
    table.add_row({std::to_string(round), bench::fmt(to_usec(spread), 0),
                   send->adapted_delay() < 0
                       ? std::string("-")
                       : bench::fmt(to_usec(send->adapted_delay()), 1),
                   std::to_string(send->transport_partitions())});
  }
  cli.emit(table);
  return 0;
}
