// Ablation: adaptive and learning aggregation under shifting imbalance
// (the auto-tuning the paper's §IV-D defers to future work).
//
// Every strategy runs the same regime-shifting zoo trace — nearly
// balanced, then heavily imbalanced with a bursty tail, then moderately
// imbalanced, by epoch thirds — through the shared zoo harness.  The
// per-phase perceived-bandwidth columns show how each design copes with
// the regime changes: the init-time plans (tuning table, PLogGP, timer-δ)
// are stuck with one plan, scalar-adaptive re-picks only the partition
// count, arrival-learning re-plans count, group boundaries and δ from the
// per-partition EWMA profile, and the oracle re-plans from ground truth.
#include <cstddef>
#include <string>
#include <vector>

#include "bench/report.hpp"
#include "bench/trial.hpp"
#include "bench/zoo.hpp"
#include "common/units.hpp"
#include "support/bench_main.hpp"

using namespace partib;

int main(int argc, char** argv) {
  const bench::Cli cli(argc, argv);
  const model::LogGPParams params = cli.model_params();
  const Duration delta0 = cli.initial_delta();
  const int epochs = cli.iterations(30);
  // No warm-up: the measured thirds then coincide with the trace's regime
  // thirds, so phase1 includes the learners' cold-start ramp — that ramp
  // is part of what this ablation is about.
  const int warmup = 0;

  struct Strategy {
    const char* name;
    part::Options options;
    bool oracle;
  };
  const std::vector<Strategy> strategies = {
      {"tuning-table", bench::tuning_table_options(), false},
      {"ploggp", bench::ploggp_options(params), false},
      {"timer", bench::timer_options(delta0, params), false},
      {"adaptive-ploggp", bench::adaptive_options(params, delta0), false},
      {"learning", bench::learning_options(params, delta0), false},
      {"oracle", bench::oracle_options(params, delta0), true},
  };

  std::vector<bench::ZooConfig> grid;
  for (const Strategy& s : strategies) {
    bench::ZooConfig cfg;
    cfg.shape = bench::ZooShape::kRegimeShift;
    cfg.options = s.options;
    cfg.oracle = s.oracle;
    cfg.epochs = epochs;
    cfg.warmup = warmup;
    grid.push_back(cfg);
  }
  const std::vector<bench::ZooResult> results =
      bench::run_zoo_grid(grid, cli.run_options());

  bench::Table table(
      "Ablation: aggregation strategies on the regime-shifting trace "
      "(64 MiB, 64 partitions, " +
          std::to_string(epochs) + " epochs; perceived GB/s per measured "
          "third — balanced / bursty / moderate)",
      {"strategy", "phase1_gbps", "phase2_gbps", "phase3_gbps", "warm_gbps",
       "final_tp", "delta_us", "replans"});
  for (std::size_t i = 0; i < strategies.size(); ++i) {
    const bench::ZooResult& r = results[i];
    table.add_row({strategies[i].name,
                   bench::fmt(r.phase_gbytes_per_s[0], 3),
                   bench::fmt(r.phase_gbytes_per_s[1], 3),
                   bench::fmt(r.phase_gbytes_per_s[2], 3),
                   bench::fmt(r.warm_gbytes_per_s, 3),
                   std::to_string(r.final_tp),
                   bench::fmt(r.final_delta_us, 1),
                   std::to_string(r.replans_adopted)});
  }
  cli.emit(table);
  return 0;
}
