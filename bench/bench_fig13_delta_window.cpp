// Fig 13: perceived bandwidth with delta values bracketing the estimated
// minimum (~35 us for 32 partitions): 10 us, 35 us, 100 us.
//
// Paper result: at most ~6.15% difference across the three — the delta
// choice has a wide tolerance window.
#include <string>

#include "bench/perceived.hpp"
#include "bench/report.hpp"
#include "common/units.hpp"
#include "support/bench_main.hpp"

using namespace partib;

int main(int argc, char** argv) {
  const bench::Cli cli(argc, argv);
  constexpr std::size_t kPartitions = 32;

  bench::Table table(
      "Fig 13: perceived bandwidth, GB/s (32 partitions, delta window "
      "around the estimated minimum); wrs = mean WRs posted per round",
      {"msg_size", "delta_10us", "delta_35us", "delta_100us", "max_diff_pct",
       "wrs_10us", "wrs_35us", "wrs_100us"});
  for (std::size_t bytes : pow2_sizes(512 * KiB, 256 * MiB)) {
    auto run = [&](Duration delta) {
      bench::PerceivedConfig cfg;
      cfg.total_bytes = bytes;
      cfg.user_partitions = kPartitions;
      cfg.options = bench::timer_options(delta);
      cfg.iterations = cli.iterations(5);
      cfg.warmup = 2;
      return bench::run_perceived_bandwidth(cfg);
    };
    const auto r10 = run(usec(10));
    const auto r35 = run(usec(35));
    const auto r100 = run(usec(100));
    const double lo = std::min({r10.mean_gbytes_per_s, r35.mean_gbytes_per_s,
                                r100.mean_gbytes_per_s});
    const double hi = std::max({r10.mean_gbytes_per_s, r35.mean_gbytes_per_s,
                                r100.mean_gbytes_per_s});
    table.add_row({format_bytes(bytes), bench::fmt(r10.mean_gbytes_per_s, 1),
                   bench::fmt(r35.mean_gbytes_per_s, 1),
                   bench::fmt(r100.mean_gbytes_per_s, 1),
                   bench::fmt(100.0 * (hi - lo) / hi, 2),
                   bench::fmt(r10.mean_wrs_per_round, 1),
                   bench::fmt(r35.mean_wrs_per_round, 1),
                   bench::fmt(r100.mean_wrs_per_round, 1)});
  }
  cli.emit(table);
  return 0;
}
