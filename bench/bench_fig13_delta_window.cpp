// Fig 13: perceived bandwidth with delta values bracketing the estimated
// minimum (~35 us for 32 partitions): 10 us, 35 us, 100 us.
//
// Paper result: at most ~6.15% difference across the three — the delta
// choice has a wide tolerance window.
#include <string>
#include <vector>

#include "bench/perceived.hpp"
#include "bench/report.hpp"
#include "bench/trial.hpp"
#include "common/units.hpp"
#include "support/bench_main.hpp"

using namespace partib;

int main(int argc, char** argv) {
  const bench::Cli cli(argc, argv);
  constexpr std::size_t kPartitions = 32;
  const std::vector<Duration> deltas = {usec(10), usec(35), usec(100)};

  std::vector<bench::PerceivedConfig> grid;
  for (std::size_t bytes : pow2_sizes(512 * KiB, 256 * MiB)) {
    for (Duration delta : deltas) {
      bench::PerceivedConfig cfg;
      cfg.total_bytes = bytes;
      cfg.user_partitions = kPartitions;
      cfg.options = bench::timer_options(delta);
      cfg.iterations = cli.iterations(5);
      cfg.warmup = 2;
      grid.push_back(cfg);
    }
  }
  const std::vector<bench::PerceivedResult> results =
      bench::run_perceived_grid(grid, cli.run_options());

  bench::Table table(
      "Fig 13: perceived bandwidth, GB/s (32 partitions, delta window "
      "around the estimated minimum); wrs = mean WRs posted per round",
      {"msg_size", "delta_10us", "delta_35us", "delta_100us", "max_diff_pct",
       "wrs_10us", "wrs_35us", "wrs_100us"});
  std::size_t k = 0;
  for (std::size_t bytes : pow2_sizes(512 * KiB, 256 * MiB)) {
    const auto r10 = results[k++];
    const auto r35 = results[k++];
    const auto r100 = results[k++];
    const double lo = std::min({r10.mean_gbytes_per_s, r35.mean_gbytes_per_s,
                                r100.mean_gbytes_per_s});
    const double hi = std::max({r10.mean_gbytes_per_s, r35.mean_gbytes_per_s,
                                r100.mean_gbytes_per_s});
    table.add_row({format_bytes(bytes), bench::fmt(r10.mean_gbytes_per_s, 1),
                   bench::fmt(r35.mean_gbytes_per_s, 1),
                   bench::fmt(r100.mean_gbytes_per_s, 1),
                   bench::fmt(100.0 * (hi - lo) / hi, 2),
                   bench::fmt(r10.mean_wrs_per_round, 1),
                   bench::fmt(r35.mean_wrs_per_round, 1),
                   bench::fmt(r100.mean_wrs_per_round, 1)});
  }
  cli.emit(table);
  return 0;
}
