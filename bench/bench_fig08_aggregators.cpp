// Fig 8: overhead benchmark comparing the brute-force Tuning Table
// aggregator against the PLogGP aggregator, for 4 / 32 / 128 user
// partitions (speedup vs the persistent implementation).
//
// Paper shape: narrow benefit window for 4 partitions; ~2.17x peak around
// 128 KiB for 32 partitions; large (~8.8x) wins for 128 partitions, where
// threads are oversubscribed (128 threads on a 40-core node) and
// aggregation relieves posting-lock contention; the two aggregators track
// each other within ~10%.
#include <string>
#include <vector>

#include "bench/overhead.hpp"
#include "bench/report.hpp"
#include "bench/trial.hpp"
#include "common/units.hpp"
#include "support/bench_main.hpp"

using namespace partib;

int main(int argc, char** argv) {
  const bench::Cli cli(argc, argv);
  const std::vector<std::size_t> partition_counts = {4, 32, 128};

  // One grid across every sub-figure: (persistent, tuning-table, ploggp)
  // per (partition count, size) point, consumed in the same order below.
  std::vector<bench::OverheadConfig> grid;
  for (std::size_t parts : partition_counts) {
    for (std::size_t bytes : pow2_sizes(2 * KiB, 16 * MiB)) {
      if (bytes < parts) continue;
      bench::OverheadConfig base;
      base.total_bytes = bytes;
      base.user_partitions = parts;
      base.options = bench::persistent_options();
      base.iterations = cli.iterations(20);
      base.warmup = 3;
      grid.push_back(base);
      bench::OverheadConfig tt = base;
      tt.options = bench::tuning_table_options();
      grid.push_back(tt);
      bench::OverheadConfig pl = base;
      pl.options = bench::ploggp_options();
      grid.push_back(pl);
    }
  }
  const std::vector<bench::OverheadResult> results =
      bench::run_overhead_grid(grid, cli.run_options());

  std::size_t k = 0;
  for (std::size_t parts : partition_counts) {
    bench::Table table(
        "Fig 8: overhead speedup vs persistent (" + std::to_string(parts) +
            " user partitions)",
        {"msg_size", "tuning_table", "ploggp"});
    for (std::size_t bytes : pow2_sizes(2 * KiB, 16 * MiB)) {
      if (bytes < parts) continue;
      const Duration t_persistent = results[k++].mean_round;
      auto speedup = [&](const bench::OverheadResult& r) {
        return static_cast<double>(t_persistent) /
               static_cast<double>(r.mean_round);
      };
      const double s_tt = speedup(results[k++]);
      const double s_pl = speedup(results[k++]);
      table.add_row({format_bytes(bytes), bench::fmt(s_tt),
                     bench::fmt(s_pl)});
    }
    cli.emit(table);
  }
  return 0;
}
