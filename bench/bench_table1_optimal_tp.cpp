// Table I: optimal number of transport partitions predicted by the PLogGP
// model for different aggregate message sizes on Niagara-like parameters.
//
// Paper values: <256KiB -> 1; 512KiB-1MiB -> 2; 2-4MiB -> 4; 8-16MiB -> 8;
// 32-64MiB -> 16; >=128MiB -> 32.
#include <string>

#include "bench/report.hpp"
#include "common/units.hpp"
#include "model/ploggp.hpp"
#include "support/bench_main.hpp"

using namespace partib;

int main(int argc, char** argv) {
  const bench::Cli cli(argc, argv);
  const auto params = model::LogGPParams::niagara_mpi_measured();

  bench::Table table(
      "Table I: PLogGP-optimal transport partitions (user partitions = 32)",
      {"aggregate_msg_size", "transport_partitions"});
  for (std::size_t bytes : pow2_sizes(64 * KiB, 512 * MiB)) {
    const std::size_t tp =
        model::optimal_transport_partitions(params, bytes, /*user=*/32);
    table.add_row({format_bytes(bytes), std::to_string(tp)});
  }
  cli.emit(table);
  return 0;
}
