// Fig 6: overhead benchmark, 32 user partitions, 2 QPs, varying the
// number of transport partitions.  Speedup is relative to the persistent
// (Open MPI part_persist / UCX-like) implementation.
//
// Paper shape: below ~8 KiB the transport-partition counts are within a
// couple of percent of each other; past 16 KiB more transport partitions
// win; by ~4 MiB speedup decays toward 1.0 as the wire saturates.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench/overhead.hpp"
#include "bench/report.hpp"
#include "bench/trial.hpp"
#include "common/units.hpp"
#include "support/bench_main.hpp"

using namespace partib;

int main(int argc, char** argv) {
  const bench::Cli cli(argc, argv);
  constexpr std::size_t kUserPartitions = 32;
  const std::vector<std::size_t> tps = {2, 4, 8, 16, 32};
  const std::vector<std::size_t> sizes = pow2_sizes(512, 16 * MiB);

  std::vector<std::string> headers = {"msg_size"};
  for (std::size_t tp : tps) headers.push_back("speedup_tp" + std::to_string(tp));
  bench::Table table(
      "Fig 6: overhead benchmark speedup vs persistent "
      "(32 user partitions, 2 QPs)",
      headers);

  // Declare the whole grid up front (per size: the persistent baseline
  // followed by each transport-partition count), run it through the
  // parallel runner, then format the submission-ordered results.
  std::vector<bench::OverheadConfig> grid;
  for (std::size_t bytes : sizes) {
    bench::OverheadConfig base;
    base.total_bytes = bytes;
    base.user_partitions = kUserPartitions;
    base.options = bench::persistent_options();
    base.iterations = cli.iterations(20);
    base.warmup = 3;
    grid.push_back(base);
    for (std::size_t tp : tps) {
      bench::OverheadConfig cfg = base;
      cfg.options = bench::static_options(tp, /*qps=*/2);
      grid.push_back(cfg);
    }
  }
  const std::vector<bench::OverheadResult> results =
      bench::run_overhead_grid(grid, cli.run_options());

  std::size_t k = 0;
  for (std::size_t bytes : sizes) {
    const Duration t_persistent = results[k++].mean_round;
    std::vector<std::string> row = {format_bytes(bytes)};
    for (std::size_t i = 0; i < tps.size(); ++i) {
      const Duration t = results[k++].mean_round;
      row.push_back(bench::fmt(static_cast<double>(t_persistent) /
                               static_cast<double>(t)));
    }
    table.add_row(std::move(row));
  }
  cli.emit(table);
  return 0;
}
