// Fig 12: estimated minimum delta value for the Timer-based PLogGP
// aggregator: the spread between the first and last non-laggard Pready,
// averaged over rounds, per message size and partition count.
//
// Rows where the PLogGP plan requests no aggregation (one user partition
// per transport partition) are blank, matching the missing points in the
// paper's figure.  Paper shape: min-delta grows with the partition count;
// ~35 us at 32 partitions.
#include <deque>
#include <string>
#include <vector>

#include "agg/strategies.hpp"
#include "bench/perceived.hpp"
#include "bench/report.hpp"
#include "bench/trial.hpp"
#include "common/units.hpp"
#include "prof/profiler.hpp"
#include "support/bench_main.hpp"

using namespace partib;

int main(int argc, char** argv) {
  const bench::Cli cli(argc, argv);
  const std::vector<std::size_t> counts = {4, 8, 16, 32, 64, 128};
  const agg::PLogGPAggregator planner(
      model::LogGPParams::niagara_mpi_measured());

  std::vector<std::string> headers = {"msg_size"};
  for (std::size_t c : counts) headers.push_back("parts" + std::to_string(c) + "_us");
  bench::Table table(
      "Fig 12: estimated minimum delta (us), 100 ms compute, 4% noise",
      headers);

  // Grid of every (size, count) point where the PLogGP plan aggregates;
  // deque so profiler addresses stay stable as the grid grows.
  std::deque<prof::PartProfiler> profilers;
  std::vector<bench::PerceivedConfig> grid;
  for (std::size_t bytes : pow2_sizes(1 * MiB, 256 * MiB)) {
    for (std::size_t parts : counts) {
      const agg::Plan plan = planner.plan(parts, bytes);
      if (plan.transport_partitions == parts) continue;
      profilers.emplace_back(parts);
      bench::PerceivedConfig cfg;
      cfg.total_bytes = bytes;
      cfg.user_partitions = parts;
      cfg.options = bench::ploggp_options();
      cfg.iterations = cli.iterations(5);
      cfg.warmup = 1;
      cfg.profiler = &profilers.back();
      grid.push_back(cfg);
    }
  }
  (void)bench::run_perceived_grid(grid, cli.run_options());

  std::size_t k = 0;
  for (std::size_t bytes : pow2_sizes(1 * MiB, 256 * MiB)) {
    std::vector<std::string> row = {format_bytes(bytes)};
    for (std::size_t parts : counts) {
      const agg::Plan plan = planner.plan(parts, bytes);
      if (plan.transport_partitions == parts) {
        // No aggregation requested: a timer would have nothing to group.
        row.push_back("-");
        continue;
      }
      row.push_back(bench::fmt(to_usec(profilers[k++].mean_min_delta()), 1));
    }
    table.add_row(std::move(row));
  }
  cli.emit(table);
  return 0;
}
