// Motivation (§III): measure LogGP parameters against the fabric, the way
// the paper used Netgauge.  Prints fitted vs configured values so the
// measurement error is visible — the paper's own Netgauge numbers came
// from the MPI transport and mismatched the verbs-level truth, a
// discrepancy it discusses in §V-B1.
#include <string>

#include "bench/probe.hpp"
#include "bench/report.hpp"
#include "fabric/nic_params.hpp"
#include "support/bench_main.hpp"

using namespace partib;

int main(int argc, char** argv) {
  const bench::Cli cli(argc, argv);
  const auto params = fabric::NicParams::connectx5_edr();
  const auto probe = bench::run_parameter_probe(params);

  bench::Table table("Netgauge-like LogGP parameter probe (direct verbs)",
                     {"parameter", "measured", "configured"});
  table.add_row({"G (ns/B)", bench::fmt(probe.G, 4),
                 bench::fmt(params.wire.G, 4)});
  table.add_row({"gap g (ns)", std::to_string(probe.gap),
                 std::to_string(params.wire.g)});
  table.add_row({"intercept g+o_s+L+o_r (ns)", std::to_string(probe.intercept),
                 std::to_string(params.wire.g + params.wire.o_s +
                                params.wire.L + params.wire.o_r)});
  cli.emit(table);
  return 0;
}
