// Connection-scale incast: N senders converging on one hot rank, swept
// to 1k-4k peers, dedicated per-channel resources vs the shared
// SRQ/shared-CQ/connection-manager fast path (ROADMAP item 2).
//
// Columns: mean round time per mode, hot-rank receive-side provisioning
// per peer, the provisioned-footprint ratio (the >= 4x acceptance bar),
// and the connection-manager establishment count in shared mode.
//
// --peers=N caps the sweep (CI smoke runs --peers=1024; the 4096 point
// is the paper-scale demonstration).
#include <cstring>
#include <string>
#include <vector>

#include "bench/connscale.hpp"
#include "bench/report.hpp"
#include "bench/trial.hpp"
#include "common/units.hpp"
#include "support/bench_main.hpp"

using namespace partib;

int main(int argc, char** argv) {
  int max_peers = 4096;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--peers=", 8) == 0) {
      max_peers = std::atoi(argv[i] + 8);
      if (max_peers <= 0) {
        std::fprintf(stderr, "bench: invalid --peers value \"%s\"\n",
                     argv[i] + 8);
        return 2;
      }
    }
  }
  const bench::Cli cli(argc, argv);

  std::vector<int> sweep;
  for (int p : {64, 256, 1024, 4096}) {
    if (p <= max_peers) sweep.push_back(p);
  }

  bench::Table table(
      "Connection-scale incast: N senders -> 1 rank, dedicated vs shared "
      "(SRQ + shared CQ + on-demand connections)",
      {"peers", "ded_round_us", "shr_round_us", "ded_kib_per_peer",
       "shr_kib_per_peer", "footprint_ratio", "establishments"});

  std::vector<bench::ConnScaleConfig> grid;
  for (int peers : sweep) {
    bench::ConnScaleConfig base;
    base.peers = peers;
    base.bytes = 16 * KiB;
    base.user_partitions = 8;
    base.rounds = 2;
    base.options = bench::static_options(/*tp=*/4, /*qps=*/1);
    base.world.copy_data = false;  // scale run: timing + footprint only
    grid.push_back(base);  // dedicated
    bench::ConnScaleConfig shared_cfg = base;
    shared_cfg.options.shared_resources = true;
    grid.push_back(shared_cfg);
  }
  const std::vector<bench::ConnScaleResult> results =
      bench::run_connscale_grid(grid, cli.run_options());

  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const bench::ConnScaleResult& ded = results[2 * i];
    const bench::ConnScaleResult& shr = results[2 * i + 1];
    const double peers = static_cast<double>(sweep[i]);
    table.add_row(
        {std::to_string(sweep[i]),
         bench::fmt(static_cast<double>(ded.mean_round) / 1000.0),
         bench::fmt(static_cast<double>(shr.mean_round) / 1000.0),
         bench::fmt(static_cast<double>(ded.hot_provisioned_bytes) / peers /
                    1024.0),
         bench::fmt(static_cast<double>(shr.hot_provisioned_bytes) / peers /
                    1024.0),
         bench::fmt(static_cast<double>(ded.hot_provisioned_bytes) /
                    static_cast<double>(shr.hot_provisioned_bytes)),
         std::to_string(shr.establishments)});
  }
  cli.emit(table);
  return 0;
}
