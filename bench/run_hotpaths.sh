#!/usr/bin/env bash
# Build the hot-path microbenchmarks in the measurement configuration
# (Release, PARTIB_CHECK=OFF — see docs/PERF.md) and run them through the
# regression gate in tools/bench_compare.py.
#
# Usage:
#   bench/run_hotpaths.sh              # compare against BENCH_hotpaths.json
#   bench/run_hotpaths.sh --update     # refresh the baseline
#   bench/run_hotpaths.sh --warn-only  # report but never fail (CI)
# Extra arguments are forwarded to bench_compare.py.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="$repo/build-rel"

cmake -S "$repo" -B "$build" \
  -DCMAKE_BUILD_TYPE=Release -DPARTIB_CHECK=OFF >/dev/null
cmake --build "$build" --target bench_micro_hotpaths -j "$(nproc)"

exec python3 "$repo/tools/bench_compare.py" \
  --binary "$build/bench/bench_micro_hotpaths" "$@"
