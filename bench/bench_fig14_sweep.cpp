// Fig 14: Sweep3D communication-pattern speedup at 1024 cores (8x8 ranks
// x 16 threads), PLogGP and Timer-based PLogGP vs the persistent
// implementation, for three (compute, noise) settings whose laggard
// delays are 10 us / 40 us / 400 us.
//
// Paper results at 1 MB: up to 1.60x / 1.63x / 1.04x respectively;
// Timer-based adds benefit for medium messages, both designs converge for
// large ones, and very large messages see no speedup.
#include <string>
#include <vector>

#include "bench/report.hpp"
#include "bench/sweep.hpp"
#include "bench/trial.hpp"
#include "common/units.hpp"
#include "support/bench_main.hpp"

using namespace partib;

int main(int argc, char** argv) {
  const bench::Cli cli(argc, argv);
  struct NoiseCase {
    const char* label;
    Duration compute;
    double noise;
  };
  const std::vector<NoiseCase> cases = {
      {"1ms compute, 1% noise (10us delay)", msec(1), 0.01},
      {"1ms compute, 4% noise (40us delay)", msec(1), 0.04},
      {"10ms compute, 4% noise (400us delay)", msec(10), 0.04},
  };
  const std::vector<std::size_t> sizes = {64 * KiB, 256 * KiB, 1 * MiB,
                                          4 * MiB, 16 * MiB};

  std::vector<bench::SweepConfig> grid;
  for (const NoiseCase& nc : cases) {
    for (std::size_t bytes : sizes) {
      for (const part::Options& opts :
           {bench::persistent_options(), bench::ploggp_options(),
            bench::timer_options(usec(35))}) {
        bench::SweepConfig cfg;
        cfg.message_bytes = bytes;
        cfg.options = opts;
        cfg.compute = nc.compute;
        cfg.noise = nc.noise;
        cfg.iterations = cli.iterations(5);
        cfg.warmup = 2;
        grid.push_back(cfg);
      }
    }
  }
  const std::vector<bench::SweepResult> results =
      bench::run_sweep_grid(grid, cli.run_options());

  std::size_t k = 0;
  for (const NoiseCase& nc : cases) {
    bench::Table table(
        std::string("Fig 14: sweep communication speedup vs persistent, ") +
            nc.label,
        {"msg_size", "ploggp", "timer_ploggp"});
    for (std::size_t bytes : sizes) {
      const Duration base = results[k++].comm_time;
      const Duration ploggp = results[k++].comm_time;
      const Duration timer = results[k++].comm_time;
      table.add_row({format_bytes(bytes),
                     bench::fmt(static_cast<double>(base) /
                                static_cast<double>(ploggp)),
                     bench::fmt(static_cast<double>(base) /
                                static_cast<double>(timer))});
    }
    cli.emit(table);
  }
  return 0;
}
