// Fig 3: PLogGP-modelled time to completion of a partitioned transfer for
// different transport-partition counts, with a 4 ms laggard delay
// (100 ms compute, 4% noise — the convention of prior work).
//
// Paper shape: for small/medium messages larger partition counts take
// longer (per-message overheads); for large messages the model favours
// larger counts (more of the buffer moves during the delay).
#include <string>
#include <vector>

#include "bench/report.hpp"
#include "common/units.hpp"
#include "model/ploggp.hpp"
#include "support/bench_main.hpp"

using namespace partib;

int main(int argc, char** argv) {
  const bench::Cli cli(argc, argv);
  const auto params = model::LogGPParams::niagara_mpi_measured();
  const std::vector<std::size_t> counts = {1, 2, 4, 8, 16, 32};

  std::vector<std::string> headers = {"msg_size"};
  for (std::size_t p : counts) headers.push_back("P" + std::to_string(p) + "_ms");
  bench::Table table(
      "Fig 3: PLogGP modelled completion time (4 ms laggard delay)",
      headers);

  for (std::size_t bytes : pow2_sizes(1 * KiB, 256 * MiB)) {
    std::vector<std::string> row = {format_bytes(bytes)};
    for (std::size_t p : counts) {
      const Duration t = model::completion_time(
          params, model::PLogGPQuery{bytes, p, msec(4)});
      row.push_back(bench::fmt(to_msec(t), 3));
    }
    table.add_row(std::move(row));
  }
  cli.emit(table);
  return 0;
}
