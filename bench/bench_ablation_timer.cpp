// Ablation (§V-C3): how sensitive is the Timer-based PLogGP aggregator to
// the delta value?  Sweeps delta across three orders of magnitude at a
// fixed medium message size and reports perceived bandwidth plus WRs per
// round.  Also compares the refined drain-aware PLogGP model against the
// headline model (the design-choice ablation DESIGN.md calls out).
#include <string>
#include <vector>

#include "bench/perceived.hpp"
#include "bench/report.hpp"
#include "bench/trial.hpp"
#include "common/units.hpp"
#include "model/ploggp.hpp"
#include "support/bench_main.hpp"

using namespace partib;

int main(int argc, char** argv) {
  const bench::Cli cli(argc, argv);
  constexpr std::size_t kPartitions = 32;
  constexpr std::size_t kBytes = 8 * MiB;
  const std::vector<Duration> deltas = {usec(1), usec(3), usec(10),
                                        usec(35), usec(100), usec(350),
                                        usec(1000), usec(3000)};

  std::vector<bench::PerceivedConfig> grid;
  for (Duration delta : deltas) {
    bench::PerceivedConfig cfg;
    cfg.total_bytes = kBytes;
    cfg.user_partitions = kPartitions;
    cfg.options = bench::timer_options(delta);
    cfg.iterations = cli.iterations(5);
    cfg.warmup = 2;
    grid.push_back(cfg);
  }
  const std::vector<bench::PerceivedResult> results =
      bench::run_perceived_grid(grid, cli.run_options());

  bench::Table table(
      "Ablation: timer delta sensitivity (8 MiB, 32 partitions, 100 ms "
      "compute, 4% noise)",
      {"delta_us", "perceived_gbps", "wrs_per_round"});
  for (std::size_t i = 0; i < deltas.size(); ++i) {
    table.add_row({bench::fmt(to_usec(deltas[i]), 0),
                   bench::fmt(results[i].mean_gbytes_per_s, 1),
                   bench::fmt(results[i].mean_wrs_per_round, 1)});
  }
  cli.emit(table);

  bench::Table model_table(
      "Ablation: headline vs drain-aware PLogGP completion model "
      "(4 ms delay, 32 transport partitions)",
      {"msg_size", "headline_ms", "with_drain_ms"});
  const auto params = model::LogGPParams::niagara_mpi_measured();
  for (std::size_t bytes : pow2_sizes(1 * MiB, 512 * MiB)) {
    const model::PLogGPQuery q{bytes, 32, msec(4)};
    model_table.add_row(
        {format_bytes(bytes),
         bench::fmt(to_msec(model::completion_time(params, q)), 3),
         bench::fmt(to_msec(model::completion_time_with_drain(params, q)),
                    3)});
  }
  cli.emit(model_table);
  return 0;
}
