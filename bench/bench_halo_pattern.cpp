// Halo-exchange application pattern (from the paper's micro-benchmark
// suite reference [14]) at the paper's 1024-core geometry: communication
// speedup of each design vs the persistent baseline.
#include <string>

#include "bench/halo.hpp"
#include "bench/report.hpp"
#include "common/units.hpp"
#include "support/bench_main.hpp"

using namespace partib;

int main(int argc, char** argv) {
  const bench::Cli cli(argc, argv);
  bench::Table table(
      "Halo exchange, 8x8 ranks x 16 threads, 1 ms compute, 4% noise: "
      "communication speedup vs persistent",
      {"face_size", "ploggp", "timer_ploggp"});
  for (std::size_t bytes :
       {64 * KiB, 256 * KiB, 1 * MiB, 4 * MiB}) {
    auto run = [&](const part::Options& opts) {
      bench::HaloConfig cfg;
      cfg.px = 8;
      cfg.py = 8;
      cfg.face_bytes = bytes;
      cfg.options = opts;
      cfg.iterations = cli.iterations(5);
      cfg.warmup = 2;
      return bench::run_halo(cfg).comm_time;
    };
    const Duration base = run(bench::persistent_options());
    table.add_row(
        {format_bytes(bytes),
         bench::fmt(static_cast<double>(base) /
                    static_cast<double>(run(bench::ploggp_options()))),
         bench::fmt(static_cast<double>(base) /
                    static_cast<double>(run(bench::timer_options(usec(35)))))});
  }
  cli.emit(table);
  return 0;
}
