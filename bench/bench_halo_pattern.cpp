// Halo-exchange application pattern (from the paper's micro-benchmark
// suite reference [14]) at the paper's 1024-core geometry: communication
// speedup of each design vs the persistent baseline.
#include <string>
#include <vector>

#include "bench/halo.hpp"
#include "bench/report.hpp"
#include "bench/trial.hpp"
#include "common/units.hpp"
#include "support/bench_main.hpp"

using namespace partib;

int main(int argc, char** argv) {
  const bench::Cli cli(argc, argv);
  const std::vector<std::size_t> sizes = {64 * KiB, 256 * KiB, 1 * MiB,
                                          4 * MiB};

  std::vector<bench::HaloConfig> grid;
  for (std::size_t bytes : sizes) {
    for (const part::Options& opts :
         {bench::persistent_options(), bench::ploggp_options(),
          bench::timer_options(usec(35))}) {
      bench::HaloConfig cfg;
      cfg.px = 8;
      cfg.py = 8;
      cfg.face_bytes = bytes;
      cfg.options = opts;
      cfg.iterations = cli.iterations(5);
      cfg.warmup = 2;
      grid.push_back(cfg);
    }
  }
  const std::vector<bench::HaloResult> results =
      bench::run_halo_grid(grid, cli.run_options());

  bench::Table table(
      "Halo exchange, 8x8 ranks x 16 threads, 1 ms compute, 4% noise: "
      "communication speedup vs persistent",
      {"face_size", "ploggp", "timer_ploggp"});
  std::size_t k = 0;
  for (std::size_t bytes : sizes) {
    const Duration base = results[k++].comm_time;
    const Duration ploggp = results[k++].comm_time;
    const Duration timer = results[k++].comm_time;
    table.add_row({format_bytes(bytes),
                   bench::fmt(static_cast<double>(base) /
                              static_cast<double>(ploggp)),
                   bench::fmt(static_cast<double>(base) /
                              static_cast<double>(timer))});
  }
  cli.emit(table);
  return 0;
}
