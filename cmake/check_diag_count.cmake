# Run an executable and require an exact number of checker diagnostic
# lines on stderr.  Used to pin the (known, documented) false-positive
# diagnostics the examples emit today — see docs/FAULTS.md and
# tests/check/example_diag_test.cpp for the root cause — so a checker or
# example change that moves the count is caught, in either direction.
#
# Usage:
#   cmake -DEXE=<path> -DPATTERN=<regex> -DEXPECTED=<n> -P check_diag_count.cmake
if(NOT DEFINED EXE OR NOT DEFINED PATTERN OR NOT DEFINED EXPECTED)
  message(FATAL_ERROR "check_diag_count.cmake needs -DEXE, -DPATTERN, -DEXPECTED")
endif()

execute_process(
  COMMAND ${EXE}
  OUTPUT_QUIET
  ERROR_VARIABLE diag_output
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "${EXE} exited with ${rc}")
endif()

string(REGEX MATCHALL "${PATTERN}" matches "${diag_output}")
list(LENGTH matches count)
if(NOT count EQUAL EXPECTED)
  message(FATAL_ERROR
    "${EXE}: expected ${EXPECTED} diagnostic lines matching '${PATTERN}', got ${count}")
endif()
message(STATUS "${EXE}: ${count} '${PATTERN}' diagnostics (pinned)")
