# Run an executable and require its stdout to hash to a pinned MD5.
# Pins the figure CSVs byte-for-byte (docs/PERF.md "fingerprints"): any
# change that perturbs simulated timings — however slightly — moves the
# hash.  The fault plane must keep these pins green when disabled.
#
# Usage:
#   cmake -DEXE=<path> "-DARGS=--csv;--no-cache" -DEXPECTED_MD5=<hex> \
#         -P check_output_md5.cmake
if(NOT DEFINED EXE OR NOT DEFINED EXPECTED_MD5)
  message(FATAL_ERROR "check_output_md5.cmake needs -DEXE and -DEXPECTED_MD5")
endif()

execute_process(
  COMMAND ${EXE} ${ARGS}
  OUTPUT_VARIABLE out
  ERROR_QUIET
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "${EXE} exited with ${rc}")
endif()

string(MD5 got "${out}")
if(NOT got STREQUAL EXPECTED_MD5)
  message(FATAL_ERROR
    "${EXE} ${ARGS}: stdout md5 ${got}, expected ${EXPECTED_MD5} — "
    "figure output is no longer byte-identical")
endif()
message(STATUS "${EXE}: stdout md5 ${got} (pinned)")
