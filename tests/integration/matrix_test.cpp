// Parameterized end-to-end matrix: every aggregator strategy across
// message sizes and partition counts must deliver byte-exact data and
// satisfy the channel invariants, over multiple reused rounds.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "common/units.hpp"
#include "support/test_world.hpp"

namespace partib::test {
namespace {

enum class AggKind { kPersistent, kStatic1, kStatic8, kPLogGP, kTimer };

const char* name_of(AggKind k) {
  switch (k) {
    case AggKind::kPersistent: return "persistent";
    case AggKind::kStatic1: return "static1";
    case AggKind::kStatic8: return "static8";
    case AggKind::kPLogGP: return "ploggp";
    case AggKind::kTimer: return "timer";
  }
  return "?";
}

part::Options options_for(AggKind k) {
  switch (k) {
    case AggKind::kPersistent: return persistent_options();
    case AggKind::kStatic1: return static_options(1, 1);
    case AggKind::kStatic8: return static_options(8, 2);
    case AggKind::kPLogGP: return ploggp_options();
    case AggKind::kTimer: return timer_options(usec(35));
  }
  return ploggp_options();
}

using MatrixParam = std::tuple<AggKind, std::size_t /*bytes*/,
                               std::size_t /*partitions*/>;

std::string matrix_name(const ::testing::TestParamInfo<MatrixParam>& info) {
  return std::string(name_of(std::get<0>(info.param))) + "_" +
         format_bytes(std::get<1>(info.param)) + "_p" +
         std::to_string(std::get<2>(info.param));
}

std::string size_name(const ::testing::TestParamInfo<std::size_t>& info) {
  return format_bytes(info.param);
}

class ChannelMatrix : public ::testing::TestWithParam<MatrixParam> {};

TEST_P(ChannelMatrix, ThreeRoundsByteExact) {
  const auto [kind, bytes, partitions] = GetParam();
  if (bytes < partitions) GTEST_SKIP() << "sub-byte partitions";
  ChannelFixture fx(bytes, partitions, options_for(kind));

  for (int round = 1; round <= 3; ++round) {
    fx.run_round(round);
    ASSERT_TRUE(fx.send->test()) << "round " << round;
    ASSERT_TRUE(fx.recv->test()) << "round " << round;
    ASSERT_TRUE(buffers_equal(fx.sbuf, fx.rbuf)) << "round " << round;
    for (std::size_t i = 0; i < partitions; ++i) {
      ASSERT_TRUE(fx.recv->parrived(i)) << "partition " << i;
    }
  }
  // Invariants on wire usage.
  const std::uint64_t wrs = fx.send->wrs_posted_total();
  EXPECT_EQ(fx.recv->messages_received_total(), wrs);
  EXPECT_GE(wrs, 3u * fx.send->transport_partitions());
  EXPECT_LE(wrs, 3u * partitions);
  EXPECT_LE(fx.send->transport_partitions(), partitions);
  EXPECT_EQ(partitions % fx.send->transport_partitions(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllAggregators, ChannelMatrix,
    ::testing::Combine(
        ::testing::Values(AggKind::kPersistent, AggKind::kStatic1,
                          AggKind::kStatic8, AggKind::kPLogGP,
                          AggKind::kTimer),
        ::testing::Values(std::size_t{4} * KiB, std::size_t{128} * KiB,
                          std::size_t{2} * MiB),
        ::testing::Values(std::size_t{4}, std::size_t{32},
                          std::size_t{128})),
    matrix_name);

// --- Out-of-order Pready ----------------------------------------------------

class PreadyOrder : public ::testing::TestWithParam<int> {};

TEST_P(PreadyOrder, PermutedReadyOrderStillByteExact) {
  constexpr std::size_t kParts = 16;
  ChannelFixture fx(64 * KiB, kParts, ploggp_options());
  fx.engine.run();
  fill_pattern(fx.sbuf, GetParam());
  ASSERT_TRUE(ok(fx.send->start()));
  ASSERT_TRUE(ok(fx.recv->start()));
  // Deterministic permutation: stride through the partitions.
  const std::size_t stride = static_cast<std::size_t>(GetParam());
  for (std::size_t i = 0; i < kParts; ++i) {
    const std::size_t p = (i * stride) % kParts;
    ASSERT_TRUE(ok(fx.send->pready(p)));
  }
  fx.engine.run();
  EXPECT_TRUE(fx.send->test());
  EXPECT_TRUE(fx.recv->test());
  EXPECT_TRUE(buffers_equal(fx.sbuf, fx.rbuf));
}

// Strides coprime with 16 enumerate full permutations.
INSTANTIATE_TEST_SUITE_P(Strides, PreadyOrder,
                         ::testing::Values(1, 3, 5, 7, 9, 11, 13, 15));

// --- Message-size sweep with real payload copies ----------------------------

class SizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SizeSweep, PLogGPPlanMatchesTableIAndDelivers) {
  const std::size_t bytes = GetParam();
  constexpr std::size_t kParts = 32;
  ChannelFixture fx(bytes, kParts, ploggp_options());
  const std::size_t expected_tp = model::optimal_transport_partitions(
      model::LogGPParams::niagara_mpi_measured(), bytes, kParts);
  EXPECT_EQ(fx.send->transport_partitions(), expected_tp);
  fx.run_round(1);
  EXPECT_TRUE(buffers_equal(fx.sbuf, fx.rbuf));
  EXPECT_EQ(fx.send->wrs_posted_total(), expected_tp);
}

INSTANTIATE_TEST_SUITE_P(
    Pow2Sizes, SizeSweep,
    ::testing::Values(std::size_t{64} * KiB, std::size_t{256} * KiB,
                      std::size_t{512} * KiB, std::size_t{2} * MiB,
                      std::size_t{8} * MiB, std::size_t{32} * MiB),
    size_name);

}  // namespace
}  // namespace partib::test
