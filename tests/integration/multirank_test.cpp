// Multi-rank integration: many concurrent channels, fan-in/fan-out, and a
// ring of partitioned channels driven to completion in one simulation.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/units.hpp"
#include "support/test_world.hpp"

namespace partib::test {
namespace {

struct Link {
  std::vector<std::byte> sbuf;
  std::vector<std::byte> rbuf;
  std::unique_ptr<part::PsendRequest> send;
  std::unique_ptr<part::PrecvRequest> recv;
};

TEST(MultiRank, RingOfChannels) {
  constexpr int kRanks = 6;
  constexpr std::size_t kParts = 8;
  constexpr std::size_t kBytes = 32 * KiB;
  sim::Engine engine;
  mpi::WorldOptions wo;
  wo.ranks = kRanks;
  mpi::World world(engine, wo);

  std::vector<Link> links(kRanks);
  for (int r = 0; r < kRanks; ++r) {
    Link& link = links[static_cast<std::size_t>(r)];
    link.sbuf.resize(kBytes);
    link.rbuf.resize(kBytes);
    const int next = (r + 1) % kRanks;
    ASSERT_TRUE(ok(part::psend_init(world.rank(r), link.sbuf, kParts, next,
                                    /*tag=*/1, 0, ploggp_options(),
                                    &link.send)));
  }
  for (int r = 0; r < kRanks; ++r) {
    // Receiver r gets from its predecessor's send (the predecessor's link).
    const int prev = (r + kRanks - 1) % kRanks;
    Link& link = links[static_cast<std::size_t>(prev)];
    ASSERT_TRUE(ok(part::precv_init(world.rank(r), link.rbuf, kParts, prev,
                                    1, 0, ploggp_options(), &link.recv)));
  }
  engine.run();

  for (int round = 1; round <= 2; ++round) {
    for (int r = 0; r < kRanks; ++r) {
      Link& link = links[static_cast<std::size_t>(r)];
      fill_pattern(link.sbuf, round * 10 + r);
      ASSERT_TRUE(ok(link.send->start()));
      ASSERT_TRUE(ok(link.recv->start()));
    }
    for (auto& link : links) {
      for (std::size_t i = 0; i < kParts; ++i) {
        ASSERT_TRUE(ok(link.send->pready(i)));
      }
    }
    engine.run();
    for (auto& link : links) {
      ASSERT_TRUE(link.send->test());
      ASSERT_TRUE(link.recv->test());
      ASSERT_TRUE(buffers_equal(link.sbuf, link.rbuf));
    }
  }
}

TEST(MultiRank, FanInManySendersOneReceiver) {
  constexpr int kSenders = 5;
  constexpr std::size_t kParts = 4;
  constexpr std::size_t kBytes = 16 * KiB;
  sim::Engine engine;
  mpi::WorldOptions wo;
  wo.ranks = kSenders + 1;
  mpi::World world(engine, wo);

  std::vector<Link> links(kSenders);
  for (int s = 0; s < kSenders; ++s) {
    Link& link = links[static_cast<std::size_t>(s)];
    link.sbuf.resize(kBytes);
    link.rbuf.resize(kBytes);
    ASSERT_TRUE(ok(part::psend_init(world.rank(s + 1), link.sbuf, kParts,
                                    /*dst=*/0, /*tag=*/s, 0,
                                    ploggp_options(), &link.send)));
    ASSERT_TRUE(ok(part::precv_init(world.rank(0), link.rbuf, kParts, s + 1,
                                    s, 0, ploggp_options(), &link.recv)));
  }
  engine.run();
  for (int s = 0; s < kSenders; ++s) {
    Link& link = links[static_cast<std::size_t>(s)];
    fill_pattern(link.sbuf, s + 1);
    ASSERT_TRUE(ok(link.send->start()));
    ASSERT_TRUE(ok(link.recv->start()));
    for (std::size_t i = 0; i < kParts; ++i) {
      ASSERT_TRUE(ok(link.send->pready(i)));
    }
  }
  engine.run();
  for (auto& link : links) {
    ASSERT_TRUE(link.recv->test());
    ASSERT_TRUE(buffers_equal(link.sbuf, link.rbuf));
  }
}

TEST(MultiRank, BidirectionalPairSimultaneously) {
  constexpr std::size_t kParts = 8;
  constexpr std::size_t kBytes = 64 * KiB;
  sim::Engine engine;
  mpi::World world(engine, {});

  Link ab, ba;
  ab.sbuf.resize(kBytes);
  ab.rbuf.resize(kBytes);
  ba.sbuf.resize(kBytes);
  ba.rbuf.resize(kBytes);
  ASSERT_TRUE(ok(part::psend_init(world.rank(0), ab.sbuf, kParts, 1, 0, 0,
                                  ploggp_options(), &ab.send)));
  ASSERT_TRUE(ok(part::precv_init(world.rank(1), ab.rbuf, kParts, 0, 0, 0,
                                  ploggp_options(), &ab.recv)));
  ASSERT_TRUE(ok(part::psend_init(world.rank(1), ba.sbuf, kParts, 0, 0, 0,
                                  ploggp_options(), &ba.send)));
  ASSERT_TRUE(ok(part::precv_init(world.rank(0), ba.rbuf, kParts, 1, 0, 0,
                                  ploggp_options(), &ba.recv)));
  engine.run();

  fill_pattern(ab.sbuf, 1);
  fill_pattern(ba.sbuf, 2);
  for (Link* l : {&ab, &ba}) {
    ASSERT_TRUE(ok(l->send->start()));
    ASSERT_TRUE(ok(l->recv->start()));
    for (std::size_t i = 0; i < kParts; ++i) {
      ASSERT_TRUE(ok(l->send->pready(i)));
    }
  }
  engine.run();
  EXPECT_TRUE(buffers_equal(ab.sbuf, ab.rbuf));
  EXPECT_TRUE(buffers_equal(ba.sbuf, ba.rbuf));
}

TEST(MultiRank, StaggeredRoundsAcrossChannelsDoNotInterfere) {
  // Channel A runs three rounds while channel B runs one; both share the
  // same pair of ranks and NICs.
  constexpr std::size_t kParts = 4;
  sim::Engine engine;
  mpi::World world(engine, {});
  Link a, b;
  a.sbuf.resize(8 * KiB);
  a.rbuf.resize(8 * KiB);
  b.sbuf.resize(16 * KiB);
  b.rbuf.resize(16 * KiB);
  ASSERT_TRUE(ok(part::psend_init(world.rank(0), a.sbuf, kParts, 1, 0, 0,
                                  ploggp_options(), &a.send)));
  ASSERT_TRUE(ok(part::precv_init(world.rank(1), a.rbuf, kParts, 0, 0, 0,
                                  ploggp_options(), &a.recv)));
  ASSERT_TRUE(ok(part::psend_init(world.rank(0), b.sbuf, kParts, 1, 1, 0,
                                  ploggp_options(), &b.send)));
  ASSERT_TRUE(ok(part::precv_init(world.rank(1), b.rbuf, kParts, 0, 1, 0,
                                  ploggp_options(), &b.recv)));
  engine.run();

  fill_pattern(b.sbuf, 99);
  ASSERT_TRUE(ok(b.send->start()));
  ASSERT_TRUE(ok(b.recv->start()));
  ASSERT_TRUE(ok(b.send->pready(0)));  // b stays incomplete for a while

  for (int round = 1; round <= 3; ++round) {
    fill_pattern(a.sbuf, round);
    ASSERT_TRUE(ok(a.send->start()));
    ASSERT_TRUE(ok(a.recv->start()));
    for (std::size_t i = 0; i < kParts; ++i) {
      ASSERT_TRUE(ok(a.send->pready(i)));
    }
    engine.run();
    ASSERT_TRUE(a.recv->test());
    ASSERT_TRUE(buffers_equal(a.sbuf, a.rbuf));
    ASSERT_FALSE(b.recv->test());
  }
  for (std::size_t i = 1; i < kParts; ++i) {
    ASSERT_TRUE(ok(b.send->pready(i)));
  }
  engine.run();
  EXPECT_TRUE(b.recv->test());
  EXPECT_TRUE(buffers_equal(b.sbuf, b.rbuf));
}

}  // namespace
}  // namespace partib::test
