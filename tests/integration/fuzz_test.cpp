// Randomized schedule fuzzing: across many seeds, random geometry, random
// aggregator, random Pready times (with occasional duplicates and bursts)
// — every run must end with a byte-exact buffer and coherent invariants.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "common/units.hpp"
#include "sim/rng.hpp"
#include "support/test_world.hpp"

namespace partib::test {
namespace {

part::Options random_options(sim::Rng& rng) {
  switch (rng.uniform_int(0, 3)) {
    case 0: return persistent_options();
    case 1: return ploggp_options();
    case 2:
      return timer_options(usec(rng.uniform_int(1, 200)));
    default:
      return static_options(std::size_t{1} << rng.uniform_int(0, 5),
                            static_cast<int>(rng.uniform_int(1, 4)));
  }
}

class FuzzSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSeeds, RandomScheduleStaysCoherent) {
  sim::Rng rng(GetParam());
  const std::size_t partitions = std::size_t{1}
                                 << rng.uniform_int(0, 7);  // 1..128
  const std::size_t psize = std::size_t{1}
                            << rng.uniform_int(6, 14);  // 64B..16KiB
  const std::size_t bytes = partitions * psize;
  const int rounds = static_cast<int>(rng.uniform_int(1, 4));

  ChannelFixture fx(bytes, partitions, random_options(rng));
  fx.engine.run();

  for (int round = 1; round <= rounds; ++round) {
    fill_pattern(fx.sbuf, round);
    ASSERT_TRUE(ok(fx.send->start()));
    ASSERT_TRUE(ok(fx.recv->start()));

    // Random Pready schedule: every partition exactly once, at a random
    // time in a window whose scale varies wildly across seeds.
    const Duration window = usec(rng.uniform_int(1, 2000));
    std::vector<std::size_t> order(partitions);
    for (std::size_t i = 0; i < partitions; ++i) order[i] = i;
    for (std::size_t i = partitions; i > 1; --i) {
      std::swap(order[i - 1], order[static_cast<std::size_t>(
                                  rng.uniform_int(0, static_cast<std::int64_t>(i) - 1))]);
    }
    const Time t0 = fx.engine.now();
    for (std::size_t i : order) {
      const Time at = t0 + rng.uniform_int(0, window);
      fx.engine.schedule_at(at, [&fx, i] {
        ASSERT_TRUE(ok(fx.send->pready(i)));
      });
    }
    // Occasionally poke Parrived mid-round like a receive-side worker.
    fx.engine.schedule_at(t0 + window / 2, [&fx, partitions] {
      for (std::size_t i = 0; i < partitions; ++i) {
        (void)fx.recv->parrived(i);  // must never crash or corrupt state
      }
    });
    fx.engine.run();

    ASSERT_TRUE(fx.send->test()) << "seed " << GetParam();
    ASSERT_TRUE(fx.recv->test()) << "seed " << GetParam();
    ASSERT_TRUE(buffers_equal(fx.sbuf, fx.rbuf)) << "seed " << GetParam();
  }
  // Conservation: one receive completion per posted WR, bounded counts.
  EXPECT_EQ(fx.recv->messages_received_total(), fx.send->wrs_posted_total());
  EXPECT_LE(fx.send->wrs_posted_total(),
            static_cast<std::uint64_t>(rounds) * partitions);
  EXPECT_GE(fx.send->wrs_posted_total(), static_cast<std::uint64_t>(rounds));
}

INSTANTIATE_TEST_SUITE_P(ManySeeds, FuzzSeeds,
                         ::testing::Range<std::uint64_t>(1, 41));

}  // namespace
}  // namespace partib::test
