// Stress: large partition counts, many rounds, deep channels — the
// boundaries a downstream user will eventually push.
#include <gtest/gtest.h>

#include "common/units.hpp"
#include "support/test_world.hpp"

namespace partib::test {
namespace {

TEST(Stress, MaxImmediatePartitionCount) {
  // 32768 partitions of 64 B — near the 16-bit immediate ceiling.
  constexpr std::size_t kParts = 32 * 1024;
  ChannelFixture fx(kParts * 64, kParts, static_options(32, 2));
  fx.run_round(1);
  EXPECT_TRUE(fx.send->test());
  EXPECT_TRUE(fx.recv->test());
  EXPECT_TRUE(buffers_equal(fx.sbuf, fx.rbuf));
  EXPECT_EQ(fx.send->wrs_posted_total(), 32u);
}

TEST(Stress, HundredRoundsNoStateLeak) {
  ChannelFixture fx(64 * KiB, 16, ploggp_options());
  for (int round = 1; round <= 100; ++round) {
    fx.run_round(round);
    ASSERT_TRUE(fx.send->test()) << round;
    ASSERT_TRUE(fx.recv->test()) << round;
  }
  EXPECT_EQ(fx.send->round(), 100);
  EXPECT_TRUE(buffers_equal(fx.sbuf, fx.rbuf));
  EXPECT_EQ(fx.recv->messages_received_total(),
            fx.send->wrs_posted_total());
}

TEST(Stress, PersistentBaselineAtHighPartitionCount) {
  // 1024 messages per round through a single QP: the software backlog
  // must absorb 64x the hardware outstanding limit.
  constexpr std::size_t kParts = 1024;
  ChannelFixture fx(kParts * 256, kParts, persistent_options());
  fx.run_round(1);
  EXPECT_TRUE(fx.send->test());
  EXPECT_EQ(fx.send->wrs_posted_total(), kParts);
  EXPECT_TRUE(buffers_equal(fx.sbuf, fx.rbuf));
}

TEST(Stress, TimerWorstCaseEveryPartitionAlone) {
  // 256 partitions arriving strictly serially, delta too small to group:
  // every partition ships alone; integrity must hold.
  constexpr std::size_t kParts = 256;
  part::Options opts = timer_options(nsec(1));
  opts.transport_partitions_override = 4;  // 4 groups of 64
  ChannelFixture fx(kParts * 128, kParts, opts);
  fx.engine.run();
  fill_pattern(fx.sbuf, 1);
  ASSERT_TRUE(ok(fx.send->start()));
  ASSERT_TRUE(ok(fx.recv->start()));
  const Time t0 = fx.engine.now();
  for (std::size_t i = 0; i < kParts; ++i) {
    fx.engine.schedule_at(t0 + usec(2) * static_cast<Duration>(i + 1),
                          [&fx, i] { ASSERT_TRUE(ok(fx.send->pready(i))); });
  }
  fx.engine.run();
  EXPECT_TRUE(fx.send->test());
  EXPECT_TRUE(fx.recv->test());
  EXPECT_TRUE(buffers_equal(fx.sbuf, fx.rbuf));
  EXPECT_EQ(fx.send->wrs_posted_total(), kParts);
}

TEST(Stress, ManyChannelsBetweenOnePair) {
  // 32 concurrent channels over the same two NICs, all active at once.
  constexpr int kChannels = 32;
  sim::Engine engine;
  mpi::World world(engine, {});
  struct Ch {
    std::vector<std::byte> sbuf = std::vector<std::byte>(8 * KiB);
    std::vector<std::byte> rbuf = std::vector<std::byte>(8 * KiB);
    std::unique_ptr<part::PsendRequest> send;
    std::unique_ptr<part::PrecvRequest> recv;
  };
  std::vector<Ch> chs(kChannels);
  for (int c = 0; c < kChannels; ++c) {
    Ch& ch = chs[static_cast<std::size_t>(c)];
    ASSERT_TRUE(ok(part::psend_init(world.rank(0), ch.sbuf, 8, 1, c, 0,
                                    ploggp_options(), &ch.send)));
    ASSERT_TRUE(ok(part::precv_init(world.rank(1), ch.rbuf, 8, 0, c, 0,
                                    ploggp_options(), &ch.recv)));
  }
  engine.run();
  for (int c = 0; c < kChannels; ++c) {
    Ch& ch = chs[static_cast<std::size_t>(c)];
    fill_pattern(ch.sbuf, c);
    ASSERT_TRUE(ok(ch.send->start()));
    ASSERT_TRUE(ok(ch.recv->start()));
    for (std::size_t i = 0; i < 8; ++i) {
      ASSERT_TRUE(ok(ch.send->pready(i)));
    }
  }
  engine.run();
  for (int c = 0; c < kChannels; ++c) {
    Ch& ch = chs[static_cast<std::size_t>(c)];
    ASSERT_TRUE(ch.recv->test()) << c;
    ASSERT_TRUE(buffers_equal(ch.sbuf, ch.rbuf)) << c;
  }
}

TEST(Stress, LargeMessageWithRealCopies) {
  // 256 MiB end to end with payload verification.
  ChannelFixture fx(256 * MiB, 32, ploggp_options());
  fx.run_round(1);
  EXPECT_TRUE(buffers_equal(fx.sbuf, fx.rbuf));
  EXPECT_EQ(fx.send->transport_partitions(), 32u);  // Table I: >=128MiB -> 32
}

}  // namespace
}  // namespace partib::test
