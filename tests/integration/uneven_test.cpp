// MPI-4.0 allows the sender and receiver to partition the same buffer
// differently; the receiver tracks arrival by byte coverage.  Also covers
// pbuf_prepare and DPU-offloaded aggregation.
#include <gtest/gtest.h>

#include "common/units.hpp"
#include "support/test_world.hpp"

namespace partib::test {
namespace {

struct UnevenFixture {
  sim::Engine engine;
  mpi::World world;
  std::vector<std::byte> sbuf;
  std::vector<std::byte> rbuf;
  std::unique_ptr<part::PsendRequest> send;
  std::unique_ptr<part::PrecvRequest> recv;

  UnevenFixture(std::size_t bytes, std::size_t send_parts,
                std::size_t recv_parts, mpi::WorldOptions wopts = {},
                part::Options opts = ploggp_options())
      : world(engine, wopts), sbuf(bytes), rbuf(bytes) {
    PARTIB_ASSERT(partib::ok(part::psend_init(world.rank(0), sbuf,
                                              send_parts, 1, 0, 0, opts,
                                              &send)));
    PARTIB_ASSERT(partib::ok(part::precv_init(world.rank(1), rbuf,
                                              recv_parts, 0, 0, 0, opts,
                                              &recv)));
    engine.run();
  }

  void run_round(int round) {
    fill_pattern(sbuf, round);
    PARTIB_ASSERT(partib::ok(send->start()));
    PARTIB_ASSERT(partib::ok(recv->start()));
    for (std::size_t i = 0; i < send->user_partitions(); ++i) {
      PARTIB_ASSERT(partib::ok(send->pready(i)));
    }
    engine.run();
  }
};

TEST(Uneven, SenderFinerThanReceiver) {
  // 16 send partitions -> 4 receive partitions.
  UnevenFixture fx(64 * KiB, 16, 4);
  fx.run_round(1);
  EXPECT_TRUE(fx.send->test());
  EXPECT_TRUE(fx.recv->test());
  EXPECT_TRUE(buffers_equal(fx.sbuf, fx.rbuf));
  for (std::size_t i = 0; i < 4; ++i) EXPECT_TRUE(fx.recv->parrived(i));
}

TEST(Uneven, ReceiverFinerThanSender) {
  // 4 send partitions -> 16 receive partitions: each send partition's
  // arrival completes four receive partitions at once.
  UnevenFixture fx(64 * KiB, 4, 16);
  fx.run_round(1);
  EXPECT_TRUE(fx.recv->test());
  EXPECT_TRUE(buffers_equal(fx.sbuf, fx.rbuf));
}

TEST(Uneven, PartialCoverageLeavesReceivePartitionPending) {
  // 8 send partitions -> 2 receive partitions, one message per send
  // partition (persistent plan).  Marking three of the four send
  // partitions of the first half leaves receive partition 0 pending;
  // the fourth completes it.
  UnevenFixture fx(32 * KiB, 8, 2, {}, persistent_options());
  fill_pattern(fx.sbuf, 1);
  ASSERT_TRUE(ok(fx.send->start()));
  ASSERT_TRUE(ok(fx.recv->start()));
  for (std::size_t i : {0u, 1u, 2u}) ASSERT_TRUE(ok(fx.send->pready(i)));
  fx.engine.run();
  EXPECT_FALSE(fx.recv->parrived(0));
  EXPECT_FALSE(fx.recv->parrived(1));
  ASSERT_TRUE(ok(fx.send->pready(3)));
  fx.engine.run();
  EXPECT_TRUE(fx.recv->parrived(0));
  EXPECT_FALSE(fx.recv->parrived(1));
  for (std::size_t i = 4; i < 8; ++i) ASSERT_TRUE(ok(fx.send->pready(i)));
  fx.engine.run();
  EXPECT_TRUE(fx.recv->test());
  EXPECT_TRUE(buffers_equal(fx.sbuf, fx.rbuf));
}

TEST(Uneven, SingleSendPartitionManyReceivePartitions) {
  UnevenFixture fx(16 * KiB, 1, 16);
  fx.run_round(1);
  EXPECT_TRUE(fx.recv->test());
  EXPECT_TRUE(buffers_equal(fx.sbuf, fx.rbuf));
}

TEST(Uneven, MultipleRoundsResetByteAccounting) {
  UnevenFixture fx(32 * KiB, 8, 4);
  for (int round = 1; round <= 3; ++round) {
    fx.run_round(round);
    ASSERT_TRUE(fx.recv->test()) << round;
    ASSERT_TRUE(buffers_equal(fx.sbuf, fx.rbuf)) << round;
  }
}

TEST(PbufPrepare, FiresAfterHandshake) {
  sim::Engine engine;
  mpi::World world(engine, {});
  std::vector<std::byte> sbuf(4 * KiB), rbuf(4 * KiB);
  std::unique_ptr<part::PsendRequest> send;
  std::unique_ptr<part::PrecvRequest> recv;
  ASSERT_TRUE(ok(part::psend_init(world.rank(0), sbuf, 4, 1, 0, 0,
                                  ploggp_options(), &send)));
  bool prepared = false;
  send->pbuf_prepare([&] { prepared = true; });
  EXPECT_FALSE(send->buffer_prepared());
  engine.run();  // receiver not posted yet: no handshake completes
  EXPECT_FALSE(prepared);
  ASSERT_TRUE(ok(part::precv_init(world.rank(1), rbuf, 4, 0, 0, 0,
                                  ploggp_options(), &recv)));
  engine.run();
  EXPECT_TRUE(prepared);
  EXPECT_TRUE(send->buffer_prepared());
}

TEST(PbufPrepare, ImmediateWhenAlreadyPrepared) {
  ChannelFixture fx(4 * KiB, 4, ploggp_options());
  fx.engine.run();
  ASSERT_TRUE(fx.send->buffer_prepared());
  bool prepared = false;
  fx.send->pbuf_prepare([&] { prepared = true; });
  fx.engine.run();
  EXPECT_TRUE(prepared);
}

TEST(DpuOffload, DeliversDataIdentically) {
  mpi::WorldOptions wopts;
  wopts.dpu_aggregation = true;
  UnevenFixture fx(64 * KiB, 16, 16, wopts);
  fx.run_round(1);
  EXPECT_TRUE(fx.send->test());
  EXPECT_TRUE(fx.recv->test());
  EXPECT_TRUE(buffers_equal(fx.sbuf, fx.rbuf));
}

TEST(DpuOffload, HostKeepsOnlyFlagCost) {
  // With DPU aggregation, the host-side CPU job per Pready is just the
  // flag update; the WR build runs on the DPU engine.  Verify by checking
  // the DPU resource accumulated busy time while the doorbell stayed idle.
  mpi::WorldOptions wopts;
  wopts.dpu_aggregation = true;
  UnevenFixture fx(64 * KiB, 16, 16, wopts);
  fx.run_round(1);
  ASSERT_NE(fx.world.rank(0).dpu(), nullptr);
  EXPECT_GT(fx.world.rank(0).dpu()->busy_time(), 0);
  EXPECT_EQ(fx.world.rank(0).doorbell().busy_time(), 0);
}

TEST(DpuOffload, BaselineUcxPathStaysOnHost) {
  mpi::WorldOptions wopts;
  wopts.dpu_aggregation = true;
  sim::Engine engine;
  mpi::World world(engine, wopts);
  std::vector<std::byte> sbuf(16 * KiB), rbuf(16 * KiB);
  std::unique_ptr<part::PsendRequest> send;
  std::unique_ptr<part::PrecvRequest> recv;
  ASSERT_TRUE(ok(part::psend_init(world.rank(0), sbuf, 4, 1, 0, 0,
                                  persistent_options(), &send)));
  ASSERT_TRUE(ok(part::precv_init(world.rank(1), rbuf, 4, 0, 0, 0,
                                  persistent_options(), &recv)));
  engine.run();
  ASSERT_TRUE(ok(send->start()));
  ASSERT_TRUE(ok(recv->start()));
  for (std::size_t i = 0; i < 4; ++i) ASSERT_TRUE(ok(send->pready(i)));
  engine.run();
  EXPECT_GT(world.rank(0).doorbell().busy_time(), 0);
  EXPECT_EQ(world.rank(0).dpu()->busy_time(), 0);
}

}  // namespace
}  // namespace partib::test
