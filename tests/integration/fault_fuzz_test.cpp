// The fault-fuzz harness entry point (see support/lifecycle_fuzz.hpp for
// the per-trial property checks).  Runs every trial TWICE: the second run
// must reproduce the first's event fingerprint exactly (invariant 3,
// deterministic replay), so a CI failure log's seed is always enough to
// reproduce the exact event stream locally:
//
//   ./integration_fault_fuzz_test --seed=<seed> --iters=1
//
// --seed=N   first seed of the contiguous block (default 1)
// --iters=N  number of seeds; trials = 2N (default 250 -> 500 trials)
#include <gtest/gtest.h>

#include <charconv>
#include <cstdio>
#include <cstring>
#include <set>

#include "support/lifecycle_fuzz.hpp"

namespace partib::test {
namespace {

std::uint64_t g_seed = 1;
int g_iters = 250;

TEST(FaultFuzz, LifecycleInvariantsAndReplayAcrossShapes) {
  std::set<FaultShape> shapes_that_bit;  // shapes that actually injected
  std::uint64_t total_faults = 0;
  std::uint64_t total_retransmits = 0;
  std::uint64_t total_failed_ops = 0;
  int structured_failures = 0;
  int absorbed_recoveries = 0;

  for (int i = 0; i < g_iters; ++i) {
    const std::uint64_t seed = g_seed + static_cast<std::uint64_t>(i);
    const LifecycleTrialResult a = run_lifecycle_trial(seed);
    const LifecycleTrialResult b = run_lifecycle_trial(seed);

    // Invariant 3: same seed, same event stream — bit for bit.
    ASSERT_EQ(a.fingerprint, b.fingerprint) << "seed " << seed;
    ASSERT_EQ(a.events, b.events) << "seed " << seed;
    ASSERT_EQ(a.channel_failed, b.channel_failed) << "seed " << seed;
    ASSERT_EQ(a.faults_injected, b.faults_injected) << "seed " << seed;

    if (a.faults_injected > 0) shapes_that_bit.insert(a.shape);
    total_faults += a.faults_injected;
    total_retransmits += a.retransmits;
    total_failed_ops += a.failed_ops;
    if (a.channel_failed) {
      ++structured_failures;
    } else if (a.failed_ops > 0) {
      ++absorbed_recoveries;  // WR-level errors retried to success
    }
  }

  // The run must have exercised the machinery it claims to fuzz: at
  // least five distinct fault shapes injected, drops retransmitted,
  // WR-level failures both absorbed by recovery and (elsewhere) driven
  // past the budget into the structured-error path.  Coverage is a
  // property of a full run, not of one seed — skip it for small --iters
  // so `--seed=<seed> --iters=1` replays judge only the lifecycle
  // invariants.
  if (g_iters >= 50) {
    EXPECT_GE(shapes_that_bit.size(), 5u);
    EXPECT_GT(total_faults, 0u);
    EXPECT_GT(total_retransmits, 0u);
    EXPECT_GT(total_failed_ops, 0u);
    EXPECT_GT(structured_failures, 0);
    EXPECT_GT(absorbed_recoveries, 0);
  }

  std::printf(
      "fault-fuzz: %d seeds x2 trials, %zu shapes injected, "
      "%llu faults / %llu retransmits / %llu failed WRs, "
      "%d structured failures, %d absorbed recoveries\n",
      g_iters, shapes_that_bit.size(),
      static_cast<unsigned long long>(total_faults),
      static_cast<unsigned long long>(total_retransmits),
      static_cast<unsigned long long>(total_failed_ops),
      structured_failures, absorbed_recoveries);
}

// bench/support/bench_main.hpp style: std::from_chars, reject garbage,
// exit 2 so CI distinguishes usage errors from test failures.
std::uint64_t parse_u64(const char* value, const char* flag) {
  std::uint64_t parsed = 0;
  const char* end = value + std::strlen(value);
  const auto [ptr, ec] = std::from_chars(value, end, parsed);
  if (ec != std::errc{} || ptr != end) {
    std::fprintf(stderr, "invalid %s value: '%s'\n", flag, value);
    std::exit(2);
  }
  return parsed;
}

}  // namespace
}  // namespace partib::test

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      partib::test::g_seed = partib::test::parse_u64(argv[i] + 7, "--seed");
    } else if (std::strncmp(argv[i], "--iters=", 8) == 0) {
      const std::uint64_t n =
          partib::test::parse_u64(argv[i] + 8, "--iters");
      if (n == 0 || n > 1'000'000) {
        std::fprintf(stderr, "--iters must be in [1, 1000000]\n");
        return 2;
      }
      partib::test::g_iters = static_cast<int>(n);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return 2;
    }
  }
  // Always log the seed block so a red CI run is replayable verbatim.
  std::printf("fault-fuzz: --seed=%llu --iters=%d\n",
              static_cast<unsigned long long>(partib::test::g_seed),
              partib::test::g_iters);
  return RUN_ALL_TESTS();
}
