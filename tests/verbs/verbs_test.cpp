// The verbs layer: QP state machine, memory registration and key checks,
// CQ semantics, the 16-outstanding-WR limit, immediate delivery, and
// error completions.
//
// Backend-parameterized (tests/support/backend_fixture.hpp): every test
// here runs against each conformance backend — the DES fluid fabric and
// the real-time shared-memory transport — because nothing below asserts
// virtual-time values, only ordering and verbs semantics.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/units.hpp"
#include "support/backend_fixture.hpp"
#include "verbs/verbs.hpp"

namespace partib::verbs {
namespace {

using Fx = test::BackendVerbsFx;

using QpStateMachine = test::BackendTest;
using Memory = test::BackendTest;
using RdmaWrite = test::BackendTest;
using OutstandingLimit = test::BackendTest;
using RecvQueueLimit = test::BackendTest;
using TwoSided = test::BackendTest;
using Cq = test::BackendTest;

TEST_P(QpStateMachine, LegalTransitionChain) {
  Fx fx;
  Qp& s = fx.spd->create_qp(*fx.scq, *fx.scq);
  Qp& r = fx.rpd->create_qp(*fx.rcq, *fx.rcq);
  EXPECT_EQ(s.state(), QpState::kReset);
  EXPECT_TRUE(ok(s.to_init()));
  EXPECT_EQ(s.state(), QpState::kInit);
  ASSERT_TRUE(ok(r.to_init()));
  EXPECT_TRUE(ok(s.to_rtr(r.qp_num())));
  EXPECT_EQ(s.state(), QpState::kRtr);
  EXPECT_TRUE(ok(s.to_rts()));
  EXPECT_EQ(s.state(), QpState::kRts);
}

TEST_P(QpStateMachine, IllegalTransitionsRejected) {
  Fx fx;
  Qp& s = fx.spd->create_qp(*fx.scq, *fx.scq);
  EXPECT_EQ(s.to_rts(), Status::kInvalidState);   // RESET -> RTS
  EXPECT_EQ(s.to_rtr(999), Status::kInvalidState);  // RESET -> RTR
  ASSERT_TRUE(ok(s.to_init()));
  EXPECT_EQ(s.to_init(), Status::kInvalidState);  // INIT -> INIT
  EXPECT_EQ(s.to_rts(), Status::kInvalidState);   // INIT -> RTS
}

TEST_P(QpStateMachine, RtrUnknownRemoteQpIsNotFound) {
  Fx fx;
  Qp& s = fx.spd->create_qp(*fx.scq, *fx.scq);
  ASSERT_TRUE(ok(s.to_init()));
  EXPECT_EQ(s.to_rtr(0xDEAD), Status::kNotFound);
  EXPECT_EQ(s.state(), QpState::kInit);  // unchanged on failure
}

TEST_P(QpStateMachine, PostSendRequiresRts) {
  Fx fx;
  Qp& s = fx.spd->create_qp(*fx.scq, *fx.scq);
  ASSERT_TRUE(ok(s.to_init()));
  EXPECT_EQ(s.post_send(fx.write_wr(16)), Status::kInvalidState);
}

TEST_P(QpStateMachine, PostRecvAllowedFromInit) {
  Fx fx;
  Qp& r = fx.rpd->create_qp(*fx.rcq, *fx.rcq);
  EXPECT_EQ(r.post_recv(RecvWr{}), Status::kInvalidState);  // RESET
  ASSERT_TRUE(ok(r.to_init()));
  EXPECT_TRUE(ok(r.post_recv(RecvWr{})));
}

TEST_P(Memory, MrContainsExactRange) {
  Fx fx;
  const auto base = fx.smr->addr();
  EXPECT_TRUE(fx.smr->contains(base, fx.sbuf.size()));
  EXPECT_TRUE(fx.smr->contains(base + 10, 100));
  EXPECT_FALSE(fx.smr->contains(base, fx.sbuf.size() + 1));
  EXPECT_FALSE(fx.smr->contains(base - 1, 10));
}

TEST_P(Memory, DistinctKeysPerRegistration) {
  Fx fx;
  Mr& a = fx.spd->register_mr(fx.sbuf, kLocalRead);
  Mr& b = fx.spd->register_mr(fx.sbuf, kLocalRead);
  EXPECT_NE(a.lkey(), b.lkey());
  EXPECT_NE(a.rkey(), b.rkey());
  EXPECT_NE(a.lkey(), a.rkey());
}

TEST_P(Memory, InvalidLkeyRejectedAtPost) {
  Fx fx;
  auto [s, r] = fx.connected_pair();
  SendWr wr = fx.write_wr(64);
  wr.sg_list[0].lkey = 0xBEEF;
  EXPECT_EQ(s->post_send(wr), Status::kInvalidArgument);
}

TEST_P(Memory, SgeOutsideMrRejectedAtPost) {
  Fx fx;
  auto [s, r] = fx.connected_pair();
  SendWr wr = fx.write_wr(64);
  wr.sg_list[0].length = static_cast<std::uint32_t>(fx.sbuf.size() + 64);
  EXPECT_EQ(s->post_send(wr), Status::kInvalidArgument);
}

TEST_P(Memory, RecvBufferNeedsLocalWrite) {
  Fx fx;
  Qp& r = fx.rpd->create_qp(*fx.rcq, *fx.rcq);
  ASSERT_TRUE(ok(r.to_init()));
  // Register a read-only region and try to use it as a receive buffer.
  std::vector<std::byte> ro(128);
  Mr& romr = fx.rpd->register_mr(ro, kLocalRead);
  RecvWr wr;
  wr.sg_list.push_back(Sge{romr.addr(), 64, romr.lkey()});
  EXPECT_EQ(r.post_recv(wr), Status::kInvalidArgument);
}

TEST_P(RdmaWrite, DeliversDataAndImm) {
  Fx fx;
  auto [s, r] = fx.connected_pair();
  std::memset(fx.sbuf.data(), 0xAB, 256);
  ASSERT_TRUE(ok(r->post_recv(RecvWr{42, {}})));
  ASSERT_TRUE(ok(s->post_send(fx.write_wr(256, 0x12340007))));
  fx.drive();

  Wc wc[4];
  ASSERT_EQ(fx.rcq->poll(std::span<Wc>(wc)), 1);
  EXPECT_EQ(wc[0].status, WcStatus::kSuccess);
  EXPECT_EQ(wc[0].opcode, WcOpcode::kRecvRdmaWithImm);
  EXPECT_EQ(wc[0].wr_id, 42u);
  EXPECT_TRUE(wc[0].has_imm);
  EXPECT_EQ(wc[0].imm, 0x12340007u);
  EXPECT_EQ(wc[0].byte_len, 256u);
  EXPECT_EQ(std::memcmp(fx.rbuf.data(), fx.sbuf.data(), 256), 0);

  ASSERT_EQ(fx.scq->poll(std::span<Wc>(wc)), 1);
  EXPECT_EQ(wc[0].status, WcStatus::kSuccess);
  EXPECT_EQ(wc[0].opcode, WcOpcode::kRdmaWrite);
  EXPECT_EQ(wc[0].wr_id, 77u);
}

TEST_P(RdmaWrite, PlainWriteRaisesNoRecvCompletion) {
  Fx fx;
  auto [s, r] = fx.connected_pair();
  ASSERT_TRUE(ok(s->post_send(fx.write_wr(64, 0, /*with_imm=*/false))));
  fx.drive();
  Wc wc[4];
  EXPECT_EQ(fx.rcq->poll(std::span<Wc>(wc)), 0);  // silent at receiver
  EXPECT_EQ(fx.scq->poll(std::span<Wc>(wc)), 1);  // sender still completes
}

TEST_P(RdmaWrite, WithImmWithoutRecvWrIsRemoteNotReady) {
  Fx fx;
  auto [s, r] = fx.connected_pair();
  ASSERT_TRUE(ok(s->post_send(fx.write_wr(64, 1))));
  fx.drive();
  Wc wc[4];
  ASSERT_EQ(fx.scq->poll(std::span<Wc>(wc)), 1);
  EXPECT_EQ(wc[0].status, WcStatus::kRemoteNotReady);
  EXPECT_EQ(s->state(), QpState::kError);
}

TEST_P(RdmaWrite, BadRkeyIsRemoteAccessError) {
  Fx fx;
  auto [s, r] = fx.connected_pair();
  ASSERT_TRUE(ok(r->post_recv(RecvWr{})));
  SendWr wr = fx.write_wr(64, 1);
  wr.rkey = 0xDEAD;
  ASSERT_TRUE(ok(s->post_send(wr)));
  fx.drive();
  Wc wc[4];
  ASSERT_EQ(fx.scq->poll(std::span<Wc>(wc)), 1);
  EXPECT_EQ(wc[0].status, WcStatus::kRemoteAccessError);
}

TEST_P(RdmaWrite, RangeBeyondRemoteMrIsRemoteAccessError) {
  Fx fx;
  auto [s, r] = fx.connected_pair();
  ASSERT_TRUE(ok(r->post_recv(RecvWr{})));
  SendWr wr = fx.write_wr(64, 1);
  wr.remote_addr = fx.rmr->addr() + fx.rbuf.size() - 16;
  ASSERT_TRUE(ok(s->post_send(wr)));
  fx.drive();
  Wc wc[4];
  ASSERT_EQ(fx.scq->poll(std::span<Wc>(wc)), 1);
  EXPECT_EQ(wc[0].status, WcStatus::kRemoteAccessError);
}

TEST_P(RdmaWrite, RemoteWriteAccessRequired) {
  Fx fx;
  auto [s, r] = fx.connected_pair();
  ASSERT_TRUE(ok(r->post_recv(RecvWr{})));
  std::vector<std::byte> ro(1024);
  Mr& romr = fx.rpd->register_mr(ro, kLocalWrite);  // no kRemoteWrite
  SendWr wr = fx.write_wr(64, 1);
  wr.remote_addr = romr.addr();
  wr.rkey = romr.rkey();
  ASSERT_TRUE(ok(s->post_send(wr)));
  fx.drive();
  Wc wc[4];
  ASSERT_EQ(fx.scq->poll(std::span<Wc>(wc)), 1);
  EXPECT_EQ(wc[0].status, WcStatus::kRemoteAccessError);
}

TEST_P(RdmaWrite, ErrorQpRejectsFurtherPosts) {
  Fx fx;
  auto [s, r] = fx.connected_pair();
  ASSERT_TRUE(ok(s->post_send(fx.write_wr(64, 1))));  // no recv WR -> RNR
  fx.drive();
  Wc wc[4];
  fx.scq->poll(std::span<Wc>(wc));
  EXPECT_EQ(s->post_send(fx.write_wr(64, 1)), Status::kInvalidState);
}

TEST_P(RdmaWrite, MultiSgeGathersContiguously) {
  Fx fx;
  auto [s, r] = fx.connected_pair();
  for (std::size_t i = 0; i < 128; ++i) {
    fx.sbuf[i] = static_cast<std::byte>(i);
  }
  ASSERT_TRUE(ok(r->post_recv(RecvWr{})));
  SendWr wr;
  wr.opcode = Opcode::kRdmaWriteWithImm;
  const auto base = reinterpret_cast<std::uint64_t>(fx.sbuf.data());
  wr.sg_list = {Sge{base, 64, fx.smr->lkey()},
                Sge{base + 64, 64, fx.smr->lkey()}};
  wr.remote_addr = fx.rmr->addr();
  wr.rkey = fx.rmr->rkey();
  ASSERT_TRUE(ok(s->post_send(wr)));
  fx.drive();
  EXPECT_EQ(std::memcmp(fx.rbuf.data(), fx.sbuf.data(), 128), 0);
}

TEST_P(OutstandingLimit, SixteenthPostSucceedsSeventeenthFails) {
  Fx fx;
  QpCaps caps;
  caps.max_send_wr = 16;  // the ConnectX-5 constraint from the paper
  auto [s, r] = fx.connected_pair(caps);
  for (int i = 0; i < 32; ++i) ASSERT_TRUE(ok(r->post_recv(RecvWr{})));
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(ok(s->post_send(fx.write_wr(64, 1)))) << i;
  }
  EXPECT_EQ(s->post_send(fx.write_wr(64, 1)), Status::kResourceExhausted);
  EXPECT_EQ(s->outstanding_send_wrs(), 16);
  // Completions free slots.
  fx.drive();
  EXPECT_EQ(s->outstanding_send_wrs(), 0);
  EXPECT_TRUE(ok(s->post_send(fx.write_wr(64, 1))));
}

TEST_P(RecvQueueLimit, PostRecvBeyondCapFails) {
  Fx fx;
  QpCaps caps;
  caps.max_recv_wr = 4;
  auto [s, r] = fx.connected_pair(caps);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(ok(r->post_recv(RecvWr{})));
  EXPECT_EQ(r->post_recv(RecvWr{}), Status::kResourceExhausted);
}

TEST_P(TwoSided, SendRecvDeliversIntoPostedBuffer) {
  Fx fx;
  auto [s, r] = fx.connected_pair();
  std::memset(fx.sbuf.data(), 0x5C, 512);
  RecvWr rwr;
  rwr.wr_id = 9;
  rwr.sg_list.push_back(Sge{fx.rmr->addr(), 1024, fx.rmr->lkey()});
  ASSERT_TRUE(ok(r->post_recv(rwr)));
  SendWr wr;
  wr.opcode = Opcode::kSend;
  wr.sg_list.push_back(Sge{reinterpret_cast<std::uint64_t>(fx.sbuf.data()),
                           512, fx.smr->lkey()});
  ASSERT_TRUE(ok(s->post_send(wr)));
  fx.drive();
  Wc wc[4];
  ASSERT_EQ(fx.rcq->poll(std::span<Wc>(wc)), 1);
  EXPECT_EQ(wc[0].opcode, WcOpcode::kRecv);
  EXPECT_EQ(wc[0].wr_id, 9u);
  EXPECT_EQ(wc[0].byte_len, 512u);
  EXPECT_FALSE(wc[0].has_imm);
  EXPECT_EQ(std::memcmp(fx.rbuf.data(), fx.sbuf.data(), 512), 0);
}

TEST_P(TwoSided, SendLargerThanRecvBufferIsLengthError) {
  Fx fx;
  auto [s, r] = fx.connected_pair();
  RecvWr rwr;
  rwr.sg_list.push_back(Sge{fx.rmr->addr(), 64, fx.rmr->lkey()});
  ASSERT_TRUE(ok(r->post_recv(rwr)));
  SendWr wr;
  wr.opcode = Opcode::kSend;
  wr.sg_list.push_back(Sge{reinterpret_cast<std::uint64_t>(fx.sbuf.data()),
                           128, fx.smr->lkey()});
  ASSERT_TRUE(ok(s->post_send(wr)));
  fx.drive();
  Wc wc[4];
  ASSERT_EQ(fx.rcq->poll(std::span<Wc>(wc)), 1);
  EXPECT_EQ(wc[0].status, WcStatus::kLocalLengthError);
}

TEST_P(Cq, PollReturnsAtMostRequested) {
  Fx fx;
  auto [s, r] = fx.connected_pair();
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(ok(r->post_recv(RecvWr{})));
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(ok(s->post_send(fx.write_wr(16, 1))));
  fx.drive();
  Wc wc[3];
  EXPECT_EQ(fx.rcq->poll(std::span<Wc>(wc)), 3);
  EXPECT_EQ(fx.rcq->poll(std::span<Wc>(wc)), 3);
  EXPECT_EQ(fx.rcq->poll(std::span<Wc>(wc)), 2);
  EXPECT_EQ(fx.rcq->poll(std::span<Wc>(wc)), 0);
}

TEST_P(Cq, OnPushHookFiresPerCompletion) {
  Fx fx;
  auto [s, r] = fx.connected_pair();
  int pushes = 0;
  fx.rcq->set_on_push([&] { ++pushes; });
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(ok(r->post_recv(RecvWr{})));
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(ok(s->post_send(fx.write_wr(16, 1))));
  fx.drive();
  EXPECT_EQ(pushes, 4);
}

TEST_P(Cq, CompletionTimesMonotonicPerQp) {
  Fx fx;
  auto [s, r] = fx.connected_pair();
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(ok(r->post_recv(RecvWr{})));
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(ok(s->post_send(fx.write_wr(4096, 1))));
  }
  fx.drive();
  Wc wc[8];
  ASSERT_EQ(fx.rcq->poll(std::span<Wc>(wc)), 8);
  for (int i = 1; i < 8; ++i) {
    EXPECT_GE(wc[i].completion_time, wc[i - 1].completion_time);
  }
}

PARTIB_INSTANTIATE_BACKENDS(QpStateMachine);
PARTIB_INSTANTIATE_BACKENDS(Memory);
PARTIB_INSTANTIATE_BACKENDS(RdmaWrite);
PARTIB_INSTANTIATE_BACKENDS(OutstandingLimit);
PARTIB_INSTANTIATE_BACKENDS(RecvQueueLimit);
PARTIB_INSTANTIATE_BACKENDS(TwoSided);
PARTIB_INSTANTIATE_BACKENDS(Cq);

}  // namespace
}  // namespace partib::verbs
