// Protection-domain isolation and CQ overrun behaviour.
#include <gtest/gtest.h>

#include <vector>

#include "common/units.hpp"
#include "fabric/fabric.hpp"
#include "sim/engine.hpp"
#include "verbs/verbs.hpp"

namespace partib::verbs {
namespace {

TEST(PdIsolation, LkeyFromAnotherPdRejected) {
  sim::Engine engine;
  fabric::Fabric fab(engine, fabric::NicParams::connectx5_edr(), true);
  Device dev(fab);
  const auto n0 = fab.add_node();
  const auto n1 = fab.add_node();
  Context& c0 = dev.open(n0);
  Context& c1 = dev.open(n1);
  Pd& pd_a = c0.alloc_pd();
  Pd& pd_b = c0.alloc_pd();  // second PD on the same node
  Pd& pd_r = c1.alloc_pd();
  Cq& cq = c0.create_cq(64);
  Cq& rcq = c1.create_cq(64);

  std::vector<std::byte> buf(4 * KiB), rbuf(4 * KiB);
  Mr& mr_b = pd_b.register_mr(buf, kLocalRead);  // registered in PD B
  Mr& rmr = pd_r.register_mr(rbuf, kLocalWrite | kRemoteWrite);

  Qp& qp = pd_a.create_qp(cq, cq);  // QP lives in PD A
  Qp& rqp = pd_r.create_qp(rcq, rcq);
  ASSERT_TRUE(ok(qp.to_init()));
  ASSERT_TRUE(ok(rqp.to_init()));
  ASSERT_TRUE(ok(qp.to_rtr(rqp.qp_num())));
  ASSERT_TRUE(ok(qp.to_rts()));

  SendWr wr;
  wr.opcode = Opcode::kRdmaWrite;
  wr.sg_list.push_back(Sge{reinterpret_cast<std::uint64_t>(buf.data()), 64,
                           mr_b.lkey()});
  wr.remote_addr = rmr.addr();
  wr.rkey = rmr.rkey();
  // PD A cannot use PD B's lkey.
  EXPECT_EQ(qp.post_send(wr), Status::kInvalidArgument);
}

TEST(PdIsolation, RkeyResolvedPerNodeNotPerPd) {
  // rkeys are validated against the *target node's* registry; a valid
  // rkey registered under any PD of the destination works (as with a real
  // HCA, the rkey itself carries the protection).
  sim::Engine engine;
  fabric::Fabric fab(engine, fabric::NicParams::connectx5_edr(), true);
  Device dev(fab);
  const auto n0 = fab.add_node();
  const auto n1 = fab.add_node();
  Context& c0 = dev.open(n0);
  Context& c1 = dev.open(n1);
  Pd& spd = c0.alloc_pd();
  Pd& rpd = c1.alloc_pd();
  Cq& scq = c0.create_cq(64);
  Cq& rcq = c1.create_cq(64);
  std::vector<std::byte> sbuf(1 * KiB, std::byte{0x42}), rbuf(1 * KiB);
  Mr& smr = spd.register_mr(sbuf, kLocalRead);
  Mr& rmr = rpd.register_mr(rbuf, kLocalWrite | kRemoteWrite);
  Qp& sqp = spd.create_qp(scq, scq);
  Qp& rqp = rpd.create_qp(rcq, rcq);
  ASSERT_TRUE(ok(sqp.to_init()) && ok(rqp.to_init()));
  ASSERT_TRUE(ok(sqp.to_rtr(rqp.qp_num())) && ok(rqp.to_rtr(sqp.qp_num())));
  ASSERT_TRUE(ok(sqp.to_rts()) && ok(rqp.to_rts()));
  SendWr wr;
  wr.opcode = Opcode::kRdmaWrite;
  wr.sg_list.push_back(Sge{reinterpret_cast<std::uint64_t>(sbuf.data()),
                           1 * KiB, smr.lkey()});
  wr.remote_addr = rmr.addr();
  wr.rkey = rmr.rkey();
  ASSERT_TRUE(ok(sqp.post_send(wr)));
  engine.run();
  EXPECT_EQ(rbuf, sbuf);
}

TEST(CqOverrunDeath, PushBeyondDepthAborts) {
  sim::Engine engine;
  fabric::Fabric fab(engine, fabric::NicParams::connectx5_edr(), false);
  Device dev(fab);
  const auto n0 = fab.add_node();
  (void)fab.add_node();
  Context& c0 = dev.open(n0);
  Cq& cq = c0.create_cq(2);
  cq.push(Wc{});
  cq.push(Wc{});
  EXPECT_DEATH(cq.push(Wc{}), "completion queue overrun");
}

}  // namespace
}  // namespace partib::verbs
