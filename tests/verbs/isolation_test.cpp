// Protection-domain isolation and CQ overrun behaviour.
//
// The PdIsolation suite is backend-parameterized: key and PD checks are
// node-local verbs state, so they must hold over any transport.  The
// overrun death test stays DES-only — it pokes a raw Cq directly and
// gains nothing from a second transport.
#include <gtest/gtest.h>

#include <vector>

#include "common/units.hpp"
#include "fabric/fabric.hpp"
#include "sim/engine.hpp"
#include "support/backend_fixture.hpp"
#include "verbs/verbs.hpp"

namespace partib::verbs {
namespace {

using PdIsolation = test::BackendTest;

TEST_P(PdIsolation, LkeyFromAnotherPdRejected) {
  test::BackendVerbsFx fx;
  Pd& pd_b = fx.sctx->alloc_pd();  // second PD on the sender's node
  std::vector<std::byte> buf(4 * KiB);
  Mr& mr_b = pd_b.register_mr(buf, kLocalRead);  // registered in PD B

  Qp& qp = fx.spd->create_qp(*fx.scq, *fx.scq);  // QP lives in PD A
  Qp& rqp = fx.rpd->create_qp(*fx.rcq, *fx.rcq);
  ASSERT_TRUE(ok(qp.to_init()));
  ASSERT_TRUE(ok(rqp.to_init()));
  ASSERT_TRUE(ok(qp.to_rtr(rqp.qp_num())));
  ASSERT_TRUE(ok(qp.to_rts()));

  SendWr wr;
  wr.opcode = Opcode::kRdmaWrite;
  wr.sg_list.push_back(Sge{reinterpret_cast<std::uint64_t>(buf.data()), 64,
                           mr_b.lkey()});
  wr.remote_addr = fx.rmr->addr();
  wr.rkey = fx.rmr->rkey();
  // PD A cannot use PD B's lkey.
  EXPECT_EQ(qp.post_send(wr), Status::kInvalidArgument);
}

TEST_P(PdIsolation, RkeyResolvedPerNodeNotPerPd) {
  // rkeys are validated against the *target node's* registry; a valid
  // rkey registered under any PD of the destination works (as with a real
  // HCA, the rkey itself carries the protection).
  test::BackendVerbsFx fx;
  std::fill(fx.sbuf.begin(), fx.sbuf.end(), std::byte{0x42});
  auto [s, r] = fx.connected_pair();
  (void)r;
  ASSERT_TRUE(ok(s->post_send(fx.write_wr(1 * KiB, 0, /*with_imm=*/false))));
  fx.drive();
  EXPECT_EQ(std::memcmp(fx.rbuf.data(), fx.sbuf.data(), 1 * KiB), 0);
}

PARTIB_INSTANTIATE_BACKENDS(PdIsolation);

TEST(CqOverrunDeath, PushBeyondDepthAborts) {
  sim::Engine engine;
  fabric::Fabric fab(engine, fabric::NicParams::connectx5_edr(), false);
  Device dev(fab);
  const auto n0 = fab.add_node();
  (void)fab.add_node();
  Context& c0 = dev.open(n0);
  Cq& cq = c0.create_cq(2);
  cq.push(Wc{});
  cq.push(Wc{});
  EXPECT_DEATH(cq.push(Wc{}), "completion queue overrun");
}

}  // namespace
}  // namespace partib::verbs
