// Fault-path verbs semantics: WQE slab flush on QP error, refcounted
// error-path slot release, the ERROR -> RESET -> INIT -> RTR -> RTS
// recycle, re-entrant posting from an error-CQE callback, and the
// WcStatus/QpState diagnostics plumbing.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "check/check.hpp"
#include "common/units.hpp"
#include "fabric/fault.hpp"
#include "support/backend_fixture.hpp"
#include "verbs/verbs.hpp"

namespace partib::verbs {
namespace {

using Fx = test::BackendVerbsFx;

/// This file's WRs are plain RDMA writes identified by wr_id.
inline SendWr flush_wr(Fx& fx, std::uint64_t wr_id, std::size_t bytes = 1024) {
  return fx.write_wr(bytes, 0, /*with_imm=*/false, wr_id);
}

TEST(WcStatusDiagnostics, ToStringAndStreamInsertion) {
  EXPECT_STREQ(to_string(WcStatus::kRetryExcErr), "RETRY_EXC_ERR");
  EXPECT_STREQ(to_string(WcStatus::kRnrRetryExcErr), "RNR_RETRY_EXC_ERR");
  EXPECT_STREQ(to_string(WcStatus::kWrFlushErr), "WR_FLUSH_ERR");
  std::ostringstream os;
  os << WcStatus::kWrFlushErr << "/" << QpState::kRtr;
  EXPECT_EQ(os.str(), "WR_FLUSH_ERR/RTR");
}

// Sequential Devices in one process restart rkey numbering, so the
// checker's thread-local MR shadow from an earlier test would alias the
// new registrations (see check/example_diag_test.cpp) — reset around
// every test.
struct FaultFlush : test::BackendTest {
  void SetUp() override {
    test::BackendTest::SetUp();
    check::reset();
  }
  void TearDown() override {
    check::reset();
    test::BackendTest::TearDown();
  }
};

TEST_P(FaultFlush, ErroredQpFlushesWholeSlabInPostOrder) {
  // A 16-deep flush burst also grows the CQ entry ring through several
  // power-of-two doublings before anything is polled.
  Fx fx;
  QpCaps caps;
  caps.max_send_wr = 16;
  auto [s, r] = fx.connected_pair(caps);
  fx.fab.inject_qp_error(s->qp_num());
  for (std::uint64_t i = 0; i < 16; ++i) {
    ASSERT_TRUE(ok(s->post_send(flush_wr(fx, i))));
  }
  EXPECT_EQ(s->outstanding_send_wrs(), 16);
  fx.drive();

  const std::vector<Wc> wcs = fx.drain(*fx.scq);
  ASSERT_EQ(wcs.size(), 16u);
  for (std::size_t i = 0; i < wcs.size(); ++i) {
    EXPECT_EQ(wcs[i].status, WcStatus::kWrFlushErr) << i;
    EXPECT_EQ(wcs[i].byte_len, 0u) << i;
  }
  EXPECT_EQ(s->outstanding_send_wrs(), 0);
  EXPECT_EQ(s->state(), QpState::kError);
  // No byte moved: a flushed WR never lands.
  for (std::byte b : fx.rbuf) EXPECT_EQ(b, std::byte{0});
}

TEST_P(FaultFlush, MidFlightErrorCompletesWireOpThenFlushesRest) {
  if (!des()) {
    // Mid-flight semantics are backend-specific by design: on shm,
    // inject_qp_error only fails ops posted *after* it, so all four ops
    // here would succeed (docs/BACKENDS.md, semantic deltas).
    GTEST_SKIP() << "DES chain-queue mid-flight semantics";
  }
  Fx fx;
  QpCaps caps;
  caps.max_send_wr = 8;
  auto [s, r] = fx.connected_pair(caps);
  for (std::uint64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(ok(s->post_send(flush_wr(fx, i))));
  }
  // The first op already owns the chain when the error lands; it rides
  // the wire to completion while the three queued behind it flush.  The
  // flush CQEs are raised at chain release, before the wire op's send
  // CQE (+L later), so CQ order is flush, flush, flush, success.
  fx.fab.inject_qp_error(s->qp_num());
  fx.drive();

  const std::vector<Wc> wcs = fx.drain(*fx.scq);
  ASSERT_EQ(wcs.size(), 4u);
  int successes = 0;
  int flushes = 0;
  for (const Wc& wc : wcs) {
    if (wc.status == WcStatus::kSuccess) ++successes;
    if (wc.status == WcStatus::kWrFlushErr) ++flushes;
  }
  EXPECT_EQ(successes, 1);
  EXPECT_EQ(flushes, 3);
  EXPECT_EQ(wcs.back().status, WcStatus::kSuccess);
  EXPECT_EQ(wcs.back().wr_id, 0u);
}

TEST_P(FaultFlush, RecycleRestoresDataPathAfterFlush) {
  // ERROR -> RESET -> INIT -> RTR -> RTS against the remembered peer; the
  // slab slots released on the error path must be reusable afterwards.
  Fx fx;
  QpCaps caps;
  caps.max_send_wr = 4;
  auto [s, r] = fx.connected_pair(caps);
  fx.fab.inject_qp_error(s->qp_num());
  for (std::uint64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(ok(s->post_send(flush_wr(fx, i))));
  }
  fx.drive();
  ASSERT_EQ(s->state(), QpState::kError);
  ASSERT_EQ(s->outstanding_send_wrs(), 0);
  (void)fx.drain(*fx.scq);

  const std::uint32_t peer = s->remote_qp_num();
  EXPECT_EQ(peer, r->qp_num());
  ASSERT_TRUE(ok(s->to_reset()));
  EXPECT_EQ(s->state(), QpState::kReset);
  ASSERT_TRUE(ok(s->to_init()));
  ASSERT_TRUE(ok(s->to_rtr(peer)));
  ASSERT_TRUE(ok(s->to_rts()));

  for (std::size_t i = 0; i < fx.sbuf.size(); ++i) {
    fx.sbuf[i] = static_cast<std::byte>(i * 37 + 5);
  }
  for (std::uint64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(ok(s->post_send(flush_wr(fx, 100 + i))));
  }
  fx.drive();
  const std::vector<Wc> wcs = fx.drain(*fx.scq);
  ASSERT_EQ(wcs.size(), 4u);
  for (const Wc& wc : wcs) EXPECT_EQ(wc.status, WcStatus::kSuccess);
  for (std::size_t i = 0; i < 1024; ++i) {
    EXPECT_EQ(fx.rbuf[i], fx.sbuf[i]) << i;
  }
}

TEST_P(FaultFlush, ResetWithOutstandingWrsIsRejected) {
  check::reset();
  check::ScopedPolicy policy(check::Policy::kCount);
  Fx fx;
  auto [s, r] = fx.connected_pair();
  ASSERT_TRUE(ok(s->post_send(flush_wr(fx, 1))));
  EXPECT_EQ(s->to_reset(), Status::kInvalidState);
  if (check::hooks_compiled_in()) {
    EXPECT_EQ(check::count_rule("qp.reset_outstanding"), 1u);
  }
  fx.drive();  // let the WR complete
  EXPECT_TRUE(ok(s->to_reset()));
  check::reset();
}

TEST_P(FaultFlush, ResetDropsPostedReceives) {
  Fx fx;
  auto [s, r] = fx.connected_pair();
  RecvWr rwr;
  rwr.wr_id = 9;
  ASSERT_TRUE(ok(r->post_recv(rwr)));
  ASSERT_TRUE(ok(r->to_reset()));
  ASSERT_TRUE(ok(r->to_init()));
  ASSERT_TRUE(ok(r->to_rtr(s->qp_num())));
  ASSERT_TRUE(ok(r->to_rts()));

  // An RDMA_WRITE_WITH_IMM now finds no receive WR: kRemoteNotReady.
  SendWr wr = flush_wr(fx, 2);
  wr.opcode = Opcode::kRdmaWriteWithImm;
  wr.imm = (1u << 16) | 1u;
  ASSERT_TRUE(ok(s->post_send(wr)));
  fx.drive();
  const std::vector<Wc> wcs = fx.drain(*fx.scq);
  ASSERT_EQ(wcs.size(), 1u);
  EXPECT_EQ(wcs[0].status, WcStatus::kRemoteNotReady);
}

TEST_P(FaultFlush, RetryStatusesDoNotErrorTheQp) {
  // Transport retry exhaustion is retryable on the same QP: the CQE
  // carries the error but the QP stays in RTS.
  Fx fx;
  fabric::FaultPlanConfig cfg;
  cfg.seed = 7;
  cfg.retry_exc_rate = 1.0;
  fx.fab.set_fault_plan(fabric::FaultPlan{cfg});
  auto [s, r] = fx.connected_pair();
  ASSERT_TRUE(ok(s->post_send(flush_wr(fx, 1))));
  fx.drive();
  const std::vector<Wc> wcs = fx.drain(*fx.scq);
  ASSERT_EQ(wcs.size(), 1u);
  EXPECT_EQ(wcs[0].status, WcStatus::kRetryExcErr);
  EXPECT_EQ(s->state(), QpState::kRts);
  EXPECT_EQ(s->outstanding_send_wrs(), 0);
}

TEST_P(FaultFlush, ReentrantRepostFromErrorCallbackFindsSlotFree) {
  // The single WQE slot must already be back on the free list when the
  // error CQE is raised, or a synchronous re-post from the completion
  // callback would trip the slab (the bug this ordering guards against).
  Fx fx;
  fabric::FaultPlanConfig cfg;
  cfg.seed = 13;
  cfg.retry_exc_rate = 1.0;
  cfg.fail_latency = usec(1);
  fx.fab.set_fault_plan(fabric::FaultPlan{cfg});
  QpCaps caps;
  caps.max_send_wr = 1;
  auto [s, r] = fx.connected_pair(caps);
  Qp* qp = s;

  int attempts = 0;
  fx.scq->set_on_push([&] {
    Wc wc;
    ASSERT_EQ(fx.scq->poll(std::span<Wc>(&wc, 1)), 1);
    ASSERT_EQ(wc.status, WcStatus::kRetryExcErr);
    ++attempts;
    if (attempts < 5) {
      // Re-post synchronously from inside the error completion.
      ASSERT_TRUE(ok(qp->post_send(flush_wr(fx, wc.wr_id + 1))));
    }
  });
  ASSERT_TRUE(ok(s->post_send(flush_wr(fx, 1))));
  fx.drive();
  EXPECT_EQ(attempts, 5);
  EXPECT_EQ(s->outstanding_send_wrs(), 0);
  EXPECT_EQ(s->state(), QpState::kRts);
  fx.scq->set_on_push(nullptr);
}

PARTIB_INSTANTIATE_BACKENDS(FaultFlush);

}  // namespace
}  // namespace partib::verbs
