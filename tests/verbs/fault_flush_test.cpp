// Fault-path verbs semantics: WQE slab flush on QP error, refcounted
// error-path slot release, the ERROR -> RESET -> INIT -> RTR -> RTS
// recycle, re-entrant posting from an error-CQE callback, and the
// WcStatus/QpState diagnostics plumbing.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "check/check.hpp"
#include "common/units.hpp"
#include "fabric/fabric.hpp"
#include "sim/engine.hpp"
#include "verbs/verbs.hpp"

namespace partib::verbs {
namespace {

struct Fx {
  sim::Engine engine;
  fabric::Fabric fab;
  Device dev;
  Context* sctx;
  Context* rctx;
  Pd* spd;
  Pd* rpd;
  Cq* scq;
  Cq* rcq;
  std::vector<std::byte> sbuf;
  std::vector<std::byte> rbuf;
  Mr* smr;
  Mr* rmr;

  Fx()
      : fab(engine, fabric::NicParams::connectx5_edr(), /*copy=*/true),
        dev(fab),
        sbuf(64 * KiB),
        rbuf(64 * KiB) {
    const auto n0 = fab.add_node();
    const auto n1 = fab.add_node();
    sctx = &dev.open(n0);
    rctx = &dev.open(n1);
    spd = &sctx->alloc_pd();
    rpd = &rctx->alloc_pd();
    scq = &sctx->create_cq(1024);
    rcq = &rctx->create_cq(1024);
    smr = &spd->register_mr(sbuf, kLocalRead);
    rmr = &rpd->register_mr(rbuf, kLocalWrite | kRemoteWrite);
  }

  std::pair<Qp*, Qp*> connected_pair(QpCaps caps = {}) {
    Qp& s = spd->create_qp(*scq, *scq, caps);
    Qp& r = rpd->create_qp(*rcq, *rcq, caps);
    EXPECT_TRUE(ok(s.to_init()));
    EXPECT_TRUE(ok(r.to_init()));
    EXPECT_TRUE(ok(s.to_rtr(r.qp_num())));
    EXPECT_TRUE(ok(r.to_rtr(s.qp_num())));
    EXPECT_TRUE(ok(s.to_rts()));
    EXPECT_TRUE(ok(r.to_rts()));
    return {&s, &r};
  }

  SendWr write_wr(std::uint64_t wr_id, std::size_t bytes = 1024) {
    SendWr wr;
    wr.wr_id = wr_id;
    wr.opcode = Opcode::kRdmaWrite;
    wr.sg_list.push_back(
        Sge{reinterpret_cast<std::uint64_t>(sbuf.data()),
            static_cast<std::uint32_t>(bytes), smr->lkey()});
    wr.remote_addr = rmr->addr();
    wr.rkey = rmr->rkey();
    return wr;
  }

  std::vector<Wc> drain(Cq& cq) {
    std::vector<Wc> out;
    Wc wcs[8];
    int n;
    while ((n = cq.poll(std::span<Wc>(wcs))) > 0) {
      out.insert(out.end(), wcs, wcs + n);
    }
    return out;
  }
};

TEST(WcStatusDiagnostics, ToStringAndStreamInsertion) {
  EXPECT_STREQ(to_string(WcStatus::kRetryExcErr), "RETRY_EXC_ERR");
  EXPECT_STREQ(to_string(WcStatus::kRnrRetryExcErr), "RNR_RETRY_EXC_ERR");
  EXPECT_STREQ(to_string(WcStatus::kWrFlushErr), "WR_FLUSH_ERR");
  std::ostringstream os;
  os << WcStatus::kWrFlushErr << "/" << QpState::kRtr;
  EXPECT_EQ(os.str(), "WR_FLUSH_ERR/RTR");
}

// Sequential Devices in one process restart rkey numbering, so the
// checker's thread-local MR shadow from an earlier test would alias the
// new registrations (see check/example_diag_test.cpp) — reset around
// every test.
struct FaultFlush : ::testing::Test {
  void SetUp() override { check::reset(); }
  void TearDown() override { check::reset(); }
};

TEST_F(FaultFlush, ErroredQpFlushesWholeSlabInPostOrder) {
  // A 16-deep flush burst also grows the CQ entry ring through several
  // power-of-two doublings before anything is polled.
  Fx fx;
  QpCaps caps;
  caps.max_send_wr = 16;
  auto [s, r] = fx.connected_pair(caps);
  fx.fab.inject_qp_error(s->qp_num());
  for (std::uint64_t i = 0; i < 16; ++i) {
    ASSERT_TRUE(ok(s->post_send(fx.write_wr(i))));
  }
  EXPECT_EQ(s->outstanding_send_wrs(), 16);
  fx.engine.run();

  const std::vector<Wc> wcs = fx.drain(*fx.scq);
  ASSERT_EQ(wcs.size(), 16u);
  for (std::size_t i = 0; i < wcs.size(); ++i) {
    EXPECT_EQ(wcs[i].status, WcStatus::kWrFlushErr) << i;
    EXPECT_EQ(wcs[i].byte_len, 0u) << i;
  }
  EXPECT_EQ(s->outstanding_send_wrs(), 0);
  EXPECT_EQ(s->state(), QpState::kError);
  // No byte moved: a flushed WR never lands.
  for (std::byte b : fx.rbuf) EXPECT_EQ(b, std::byte{0});
}

TEST_F(FaultFlush, MidFlightErrorCompletesWireOpThenFlushesRest) {
  Fx fx;
  QpCaps caps;
  caps.max_send_wr = 8;
  auto [s, r] = fx.connected_pair(caps);
  for (std::uint64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(ok(s->post_send(fx.write_wr(i))));
  }
  // The first op already owns the chain when the error lands; it rides
  // the wire to completion while the three queued behind it flush.  The
  // flush CQEs are raised at chain release, before the wire op's send
  // CQE (+L later), so CQ order is flush, flush, flush, success.
  fx.fab.inject_qp_error(s->qp_num());
  fx.engine.run();

  const std::vector<Wc> wcs = fx.drain(*fx.scq);
  ASSERT_EQ(wcs.size(), 4u);
  int successes = 0;
  int flushes = 0;
  for (const Wc& wc : wcs) {
    if (wc.status == WcStatus::kSuccess) ++successes;
    if (wc.status == WcStatus::kWrFlushErr) ++flushes;
  }
  EXPECT_EQ(successes, 1);
  EXPECT_EQ(flushes, 3);
  EXPECT_EQ(wcs.back().status, WcStatus::kSuccess);
  EXPECT_EQ(wcs.back().wr_id, 0u);
}

TEST_F(FaultFlush, RecycleRestoresDataPathAfterFlush) {
  // ERROR -> RESET -> INIT -> RTR -> RTS against the remembered peer; the
  // slab slots released on the error path must be reusable afterwards.
  Fx fx;
  QpCaps caps;
  caps.max_send_wr = 4;
  auto [s, r] = fx.connected_pair(caps);
  fx.fab.inject_qp_error(s->qp_num());
  for (std::uint64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(ok(s->post_send(fx.write_wr(i))));
  }
  fx.engine.run();
  ASSERT_EQ(s->state(), QpState::kError);
  ASSERT_EQ(s->outstanding_send_wrs(), 0);
  (void)fx.drain(*fx.scq);

  const std::uint32_t peer = s->remote_qp_num();
  EXPECT_EQ(peer, r->qp_num());
  ASSERT_TRUE(ok(s->to_reset()));
  EXPECT_EQ(s->state(), QpState::kReset);
  ASSERT_TRUE(ok(s->to_init()));
  ASSERT_TRUE(ok(s->to_rtr(peer)));
  ASSERT_TRUE(ok(s->to_rts()));

  for (std::size_t i = 0; i < fx.sbuf.size(); ++i) {
    fx.sbuf[i] = static_cast<std::byte>(i * 37 + 5);
  }
  for (std::uint64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(ok(s->post_send(fx.write_wr(100 + i))));
  }
  fx.engine.run();
  const std::vector<Wc> wcs = fx.drain(*fx.scq);
  ASSERT_EQ(wcs.size(), 4u);
  for (const Wc& wc : wcs) EXPECT_EQ(wc.status, WcStatus::kSuccess);
  for (std::size_t i = 0; i < 1024; ++i) {
    EXPECT_EQ(fx.rbuf[i], fx.sbuf[i]) << i;
  }
}

TEST_F(FaultFlush, ResetWithOutstandingWrsIsRejected) {
  check::reset();
  check::ScopedPolicy policy(check::Policy::kCount);
  Fx fx;
  auto [s, r] = fx.connected_pair();
  ASSERT_TRUE(ok(s->post_send(fx.write_wr(1))));
  EXPECT_EQ(s->to_reset(), Status::kInvalidState);
  if (check::hooks_compiled_in()) {
    EXPECT_EQ(check::count_rule("qp.reset_outstanding"), 1u);
  }
  fx.engine.run();  // let the WR complete
  EXPECT_TRUE(ok(s->to_reset()));
  check::reset();
}

TEST_F(FaultFlush, ResetDropsPostedReceives) {
  Fx fx;
  auto [s, r] = fx.connected_pair();
  RecvWr rwr;
  rwr.wr_id = 9;
  ASSERT_TRUE(ok(r->post_recv(rwr)));
  ASSERT_TRUE(ok(r->to_reset()));
  ASSERT_TRUE(ok(r->to_init()));
  ASSERT_TRUE(ok(r->to_rtr(s->qp_num())));
  ASSERT_TRUE(ok(r->to_rts()));

  // An RDMA_WRITE_WITH_IMM now finds no receive WR: kRemoteNotReady.
  SendWr wr = fx.write_wr(2);
  wr.opcode = Opcode::kRdmaWriteWithImm;
  wr.imm = (1u << 16) | 1u;
  ASSERT_TRUE(ok(s->post_send(wr)));
  fx.engine.run();
  const std::vector<Wc> wcs = fx.drain(*fx.scq);
  ASSERT_EQ(wcs.size(), 1u);
  EXPECT_EQ(wcs[0].status, WcStatus::kRemoteNotReady);
}

TEST_F(FaultFlush, RetryStatusesDoNotErrorTheQp) {
  // Transport retry exhaustion is retryable on the same QP: the CQE
  // carries the error but the QP stays in RTS.
  Fx fx;
  fabric::FaultPlanConfig cfg;
  cfg.seed = 7;
  cfg.retry_exc_rate = 1.0;
  fx.fab.set_fault_plan(fabric::FaultPlan{cfg});
  auto [s, r] = fx.connected_pair();
  ASSERT_TRUE(ok(s->post_send(fx.write_wr(1))));
  fx.engine.run();
  const std::vector<Wc> wcs = fx.drain(*fx.scq);
  ASSERT_EQ(wcs.size(), 1u);
  EXPECT_EQ(wcs[0].status, WcStatus::kRetryExcErr);
  EXPECT_EQ(s->state(), QpState::kRts);
  EXPECT_EQ(s->outstanding_send_wrs(), 0);
}

TEST_F(FaultFlush, ReentrantRepostFromErrorCallbackFindsSlotFree) {
  // The single WQE slot must already be back on the free list when the
  // error CQE is raised, or a synchronous re-post from the completion
  // callback would trip the slab (the bug this ordering guards against).
  Fx fx;
  fabric::FaultPlanConfig cfg;
  cfg.seed = 13;
  cfg.retry_exc_rate = 1.0;
  cfg.fail_latency = usec(1);
  fx.fab.set_fault_plan(fabric::FaultPlan{cfg});
  QpCaps caps;
  caps.max_send_wr = 1;
  auto [s, r] = fx.connected_pair(caps);
  Qp* qp = s;

  int attempts = 0;
  fx.scq->set_on_push([&] {
    Wc wc;
    ASSERT_EQ(fx.scq->poll(std::span<Wc>(&wc, 1)), 1);
    ASSERT_EQ(wc.status, WcStatus::kRetryExcErr);
    ++attempts;
    if (attempts < 5) {
      // Re-post synchronously from inside the error completion.
      ASSERT_TRUE(ok(qp->post_send(fx.write_wr(wc.wr_id + 1))));
    }
  });
  ASSERT_TRUE(ok(s->post_send(fx.write_wr(1))));
  fx.engine.run();
  EXPECT_EQ(attempts, 5);
  EXPECT_EQ(s->outstanding_send_wrs(), 0);
  EXPECT_EQ(s->state(), QpState::kRts);
  fx.scq->set_on_push(nullptr);
}

}  // namespace
}  // namespace partib::verbs
