// common::Ring and its two data-plane users: the CQ entry ring and the QP
// receive queue.  The Ring replaced std::deque on the pready→WQE→CQ fast
// path, so these tests pin the properties the data plane relies on — FIFO
// order across physical wraparound, order-preserving growth (including
// growth while the ring is wrapped), and move-only element support — plus
// a differential fuzz against std::deque as the oracle.
#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <memory>
#include <random>
#include <vector>

#include "common/ring.hpp"
#include "common/units.hpp"
#include "fabric/fabric.hpp"
#include "sim/engine.hpp"
#include "verbs/verbs.hpp"

namespace partib {
namespace {

TEST(Ring, StartsEmpty) {
  common::Ring<int> r;
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.size(), 0u);
  EXPECT_EQ(r.capacity(), 0u);  // storage is lazy: nothing until first push
}

TEST(Ring, FifoOrderAcrossWraparound) {
  common::Ring<int> r;
  for (int i = 0; i < 8; ++i) r.push_back(i);
  const std::size_t cap = r.capacity();
  // Drain half, refill past the physical end: head > 0, tail wraps.
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(r.front(), i);
    r.pop_front();
  }
  for (int i = 8; i < 13; ++i) r.push_back(i);
  EXPECT_EQ(r.capacity(), cap) << "wraparound must not grow the ring";
  for (int i = 5; i < 13; ++i) {
    EXPECT_EQ(r.front(), i);
    r.pop_front();
  }
  EXPECT_TRUE(r.empty());
}

TEST(Ring, GrowthWhileWrappedPreservesOrder) {
  common::Ring<int> r;
  r.reserve(8);
  for (int i = 0; i < 8; ++i) r.push_back(i);
  for (int i = 0; i < 6; ++i) r.pop_front();
  for (int i = 8; i < 14; ++i) r.push_back(i);  // tail wrapped, len 8
  for (int i = 14; i < 40; ++i) r.push_back(i);  // forces growth mid-wrap
  EXPECT_GE(r.capacity(), 34u);
  for (int i = 6; i < 40; ++i) {
    ASSERT_EQ(r.front(), i);
    r.pop_front();
  }
}

TEST(Ring, IndexingCountsFromFront) {
  common::Ring<int> r;
  for (int i = 0; i < 12; ++i) r.push_back(i);
  r.pop_front();
  r.pop_front();
  EXPECT_EQ(r[0], 2);
  EXPECT_EQ(r[9], 11);
  EXPECT_EQ(r.back(), 11);
}

TEST(Ring, MoveOnlyElements) {
  common::Ring<std::unique_ptr<int>> r;
  for (int i = 0; i < 20; ++i) r.push_back(std::make_unique<int>(i));
  for (int i = 0; i < 7; ++i) r.pop_front();
  for (int i = 20; i < 30; ++i) r.push_back(std::make_unique<int>(i));
  common::Ring<std::unique_ptr<int>> moved = std::move(r);
  for (int i = 7; i < 30; ++i) {
    ASSERT_NE(moved.front(), nullptr);
    EXPECT_EQ(*moved.front(), i);
    moved.pop_front();
  }
}

TEST(Ring, ReserveRoundsToPowerOfTwo) {
  common::Ring<int> r;
  r.reserve(100);
  EXPECT_EQ(r.capacity(), 128u);
  r.push_back(1);
  EXPECT_EQ(r.capacity(), 128u);
}

TEST(Ring, DifferentialFuzzAgainstDeque) {
  std::mt19937 rng(1337);
  common::Ring<std::uint32_t> ring;
  std::deque<std::uint32_t> deq;
  for (int op = 0; op < 100000; ++op) {
    // Push-biased so the ring grows; periodic full drains reset head to
    // exercise many alignments.
    const unsigned roll = rng() % 100;
    if (roll < 55 || deq.empty()) {
      const std::uint32_t v = rng();
      ring.push_back(v);
      deq.push_back(v);
    } else if (roll < 95) {
      ASSERT_EQ(ring.front(), deq.front());
      ring.pop_front();
      deq.pop_front();
    } else {
      ring.clear();
      deq.clear();
    }
    ASSERT_EQ(ring.size(), deq.size());
    if (!deq.empty()) {
      ASSERT_EQ(ring.front(), deq.front());
      ASSERT_EQ(ring.back(), deq.back());
      const std::size_t probe = rng() % deq.size();
      ASSERT_EQ(ring[probe], deq[probe]);
    }
  }
}

// ---------------------------------------------------------------------------
// The rings in anger: QP receive queue and CQ entry ring driven through the
// simulated verbs stack.

struct RingFx {
  sim::Engine engine;
  fabric::Fabric fab;
  verbs::Device dev;
  verbs::Context* sctx;
  verbs::Context* rctx;
  verbs::Cq* scq;
  verbs::Cq* rcq;
  std::vector<std::byte> sbuf;
  std::vector<std::byte> rbuf;
  verbs::Mr* smr;
  verbs::Mr* rmr;
  verbs::Qp* sqp;
  verbs::Qp* rqp;

  RingFx()
      : fab(engine, fabric::NicParams::connectx5_edr(), /*copy=*/true),
        dev(fab),
        sbuf(64 * KiB),
        rbuf(64 * KiB) {
    const auto n0 = fab.add_node();
    const auto n1 = fab.add_node();
    sctx = &dev.open(n0);
    rctx = &dev.open(n1);
    verbs::Pd& spd = sctx->alloc_pd();
    verbs::Pd& rpd = rctx->alloc_pd();
    scq = &sctx->create_cq(1024);
    rcq = &rctx->create_cq(1024);
    smr = &spd.register_mr(sbuf, verbs::kLocalRead);
    rmr = &rpd.register_mr(rbuf, verbs::kLocalWrite | verbs::kRemoteWrite);
    sqp = &spd.create_qp(*scq, *scq);
    rqp = &rpd.create_qp(*rcq, *rcq);
    EXPECT_TRUE(ok(sqp->to_init()));
    EXPECT_TRUE(ok(rqp->to_init()));
    EXPECT_TRUE(ok(sqp->to_rtr(rqp->qp_num())));
    EXPECT_TRUE(ok(rqp->to_rtr(sqp->qp_num())));
    EXPECT_TRUE(ok(sqp->to_rts()));
    EXPECT_TRUE(ok(rqp->to_rts()));
  }

  void post_recvs(std::uint64_t first_id, int n) {
    for (int i = 0; i < n; ++i) {
      verbs::RecvWr wr;
      wr.wr_id = first_id + static_cast<std::uint64_t>(i);
      ASSERT_TRUE(ok(rqp->post_recv(wr)));
    }
  }

  void send_imm_writes(std::uint32_t first_imm, int n) {
    for (int i = 0; i < n; ++i) {
      verbs::SendWr wr;
      wr.wr_id = first_imm + static_cast<std::uint64_t>(i);
      wr.opcode = verbs::Opcode::kRdmaWriteWithImm;
      wr.sg_list.push_back(
          verbs::Sge{reinterpret_cast<std::uint64_t>(sbuf.data()), 256,
                     smr->lkey()});
      wr.imm = first_imm + static_cast<std::uint32_t>(i);
      wr.remote_addr = rmr->addr();
      wr.rkey = rmr->rkey();
      ASSERT_TRUE(ok(sqp->post_send(wr)));
    }
    engine.run();
  }

  /// Drain `cq` and append completions in poll order.
  void drain(verbs::Cq* cq, std::vector<verbs::Wc>* out) {
    verbs::Wc wcs[4];
    int n;
    while ((n = cq->poll(std::span<verbs::Wc>(wcs))) > 0) {
      for (int i = 0; i < n; ++i) out->push_back(wcs[i]);
    }
  }
};

TEST(RecvQueueRing, FifoAcrossWraparoundAtRingCapacity) {
  // The recv queue's initial ring capacity is 8; three rounds of
  // post-6 / consume-6 march head and tail through two full physical
  // wraps.  WRs must be consumed strictly in posted order throughout.
  RingFx fx;
  std::vector<verbs::Wc> rwcs;
  for (int round = 0; round < 3; ++round) {
    fx.post_recvs(static_cast<std::uint64_t>(round) * 6, 6);
    fx.send_imm_writes(static_cast<std::uint32_t>(round) * 6, 6);
    fx.drain(fx.rcq, &rwcs);
  }
  ASSERT_EQ(rwcs.size(), 18u);
  for (std::size_t i = 0; i < rwcs.size(); ++i) {
    EXPECT_EQ(rwcs[i].status, verbs::WcStatus::kSuccess);
    EXPECT_EQ(rwcs[i].wr_id, i) << "recv WR consumed out of posted order";
    EXPECT_TRUE(rwcs[i].has_imm);
    EXPECT_EQ(rwcs[i].imm, i);
  }
}

TEST(RecvQueueRing, GrowthWhileWrappedKeepsPostedOrder) {
  RingFx fx;
  std::vector<verbs::Wc> rwcs;
  // Wrap the ring first (post 6, consume 6), then overfill it so it must
  // grow while head is mid-array.
  fx.post_recvs(0, 6);
  fx.send_imm_writes(0, 6);
  fx.drain(fx.rcq, &rwcs);
  fx.post_recvs(6, 12);
  fx.send_imm_writes(6, 12);
  fx.drain(fx.rcq, &rwcs);
  ASSERT_EQ(rwcs.size(), 18u);
  for (std::size_t i = 0; i < rwcs.size(); ++i) {
    EXPECT_EQ(rwcs[i].wr_id, i);
  }
}

TEST(CqRing, PollOrderSurvivesEntryRingWraparound) {
  // Drain the send CQ in small chunks between bursts so its entry ring
  // pops from the middle and wraps; completion order must stay the order
  // the WRs completed in.
  RingFx fx;
  std::vector<verbs::Wc> swcs;
  fx.post_recvs(0, 24);
  for (int burst = 0; burst < 4; ++burst) {
    fx.send_imm_writes(static_cast<std::uint32_t>(burst) * 6, 6);
    fx.drain(fx.scq, &swcs);
  }
  ASSERT_EQ(swcs.size(), 24u);
  for (std::size_t i = 0; i < swcs.size(); ++i) {
    EXPECT_EQ(swcs[i].status, verbs::WcStatus::kSuccess);
    EXPECT_EQ(swcs[i].opcode, verbs::WcOpcode::kRdmaWrite);
    EXPECT_EQ(swcs[i].wr_id, i) << "send CQEs reordered across ring wrap";
  }
}

}  // namespace
}  // namespace partib
