// Shared receive queues: ibv_srq-shaped create/post/limit/resize
// semantics, multi-QP draining with qp_num demultiplexing, reset
// isolation (a sibling QP reset must not drop SRQ WRs), and the
// provisioned/resident footprint accounting the connection-scale
// comparison (docs/PERF.md) is built on.
// Backend-parameterized (tests/support/backend_fixture.hpp): the SRQ is a
// verbs-layer structure, so every suite below must behave identically no
// matter which transport moves the bytes underneath.
#include <gtest/gtest.h>

#include <vector>

#include "common/units.hpp"
#include "support/backend_fixture.hpp"
#include "verbs/verbs.hpp"

namespace partib::verbs {
namespace {

using Fx = test::BackendVerbsFx;

using SrqBasics = test::BackendTest;
using SrqLimit = test::BackendTest;
using SrqResize = test::BackendTest;
using SrqQpInteraction = test::BackendTest;
using SrqFootprint = test::BackendTest;

TEST_P(SrqBasics, PostConsumeAndCapacity) {
  Fx fx;
  SrqAttrs attrs;
  attrs.max_wr = 4;
  Srq& srq = fx.rpd->create_srq(attrs);
  EXPECT_EQ(srq.posted(), 0u);
  for (int i = 0; i < 4; ++i) {
    RecvWr wr;
    wr.wr_id = static_cast<std::uint64_t>(i);
    EXPECT_TRUE(ok(srq.post_recv(wr)));
  }
  EXPECT_EQ(srq.posted(), 4u);
  // A fifth post overruns max_wr (cf. ibv_post_srq_recv ENOMEM).
  EXPECT_EQ(srq.post_recv(RecvWr{}), Status::kResourceExhausted);

  // Consumption is strict post order.
  PostedRecv out;
  ASSERT_TRUE(srq.consume(&out));
  EXPECT_EQ(out.wr.wr_id, 0u);
  ASSERT_TRUE(srq.consume(&out));
  EXPECT_EQ(out.wr.wr_id, 1u);
  EXPECT_EQ(srq.posted(), 2u);
}

TEST_P(SrqBasics, SgeValidationAgainstPd) {
  Fx fx;
  Srq& srq = fx.rpd->create_srq();
  RecvWr wr;
  wr.sg_list.push_back(Sge{fx.rmr->addr(), 64, 0xdead});  // bogus lkey
  EXPECT_EQ(srq.post_recv(wr), Status::kInvalidArgument);
}

TEST_P(SrqLimit, ArmValidationAndOneShotEvent) {
  Fx fx;
  SrqAttrs attrs;
  attrs.max_wr = 8;
  Srq& srq = fx.rpd->create_srq(attrs);
  EXPECT_EQ(srq.arm_limit(-1), Status::kInvalidArgument);
  EXPECT_EQ(srq.arm_limit(8), Status::kInvalidArgument);  // must be < max_wr
  ASSERT_TRUE(ok(srq.arm_limit(2)));

  int events = 0;
  srq.set_on_limit([&] { ++events; });
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(ok(srq.post_recv(RecvWr{})));

  PostedRecv out;
  ASSERT_TRUE(srq.consume(&out));  // 3 left: above the watermark
  EXPECT_EQ(events, 0);
  ASSERT_TRUE(srq.consume(&out));  // 2 left: not yet *below* the limit
  EXPECT_EQ(events, 0);
  ASSERT_TRUE(srq.consume(&out));  // 1 left: fires
  EXPECT_EQ(events, 1);
  ASSERT_TRUE(srq.consume(&out));  // 0 left: one-shot, already disarmed
  EXPECT_EQ(events, 1);

  // Re-arming restores the event.
  for (int i = 0; i < 2; ++i) ASSERT_TRUE(ok(srq.post_recv(RecvWr{})));
  ASSERT_TRUE(ok(srq.arm_limit(2)));
  ASSERT_TRUE(srq.consume(&out));
  EXPECT_EQ(events, 2);
}

TEST_P(SrqResize, GrowsButNeverBelowPostedOrLimit) {
  Fx fx;
  SrqAttrs attrs;
  attrs.max_wr = 4;
  attrs.srq_limit = 2;
  Srq& srq = fx.rpd->create_srq(attrs);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(ok(srq.post_recv(RecvWr{})));
  EXPECT_EQ(srq.post_recv(RecvWr{}), Status::kResourceExhausted);

  ASSERT_TRUE(ok(srq.resize(8)));
  EXPECT_TRUE(ok(srq.post_recv(RecvWr{})));  // capacity grew
  EXPECT_EQ(srq.resize(3), Status::kInvalidArgument);  // below posted (5)
  EXPECT_EQ(srq.resize(2), Status::kInvalidArgument);  // below limit too
}

TEST_P(SrqQpInteraction, PostRecvOnAttachedQpIsEinval) {
  Fx fx;
  Srq& srq = fx.rpd->create_srq();
  auto [s, r] = fx.connected_pair(QpCaps{}, &srq);
  (void)s;
  // cf. ibv_post_recv on an SRQ-attached QP failing with EINVAL.
  EXPECT_EQ(r->post_recv(RecvWr{}), Status::kInvalidArgument);
}

TEST_P(SrqQpInteraction, TwoQpsDrainOneSrqDemuxedByQpNum) {
  Fx fx;
  Srq& srq = fx.rpd->create_srq();
  auto [s1, r1] = fx.connected_pair(QpCaps{}, &srq);
  auto [s2, r2] = fx.connected_pair(QpCaps{}, &srq);
  for (int i = 0; i < 2; ++i) {
    RecvWr wr;
    wr.wr_id = 1000 + static_cast<std::uint64_t>(i);
    ASSERT_TRUE(ok(srq.post_recv(wr)));
  }

  ASSERT_TRUE(ok(s1->post_send(fx.write_wr(256, 11))));
  ASSERT_TRUE(ok(s2->post_send(fx.write_wr(256, 22))));
  fx.drive();

  // Both receive CQEs land on the shared recv CQ, each naming its
  // consuming QP — the demux contract a WcRouter builds on.
  Wc wcs[8];
  const int n = fx.rcq->poll(std::span<Wc>(wcs));
  ASSERT_EQ(n, 2);
  bool saw1 = false;
  bool saw2 = false;
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(wcs[i].status, WcStatus::kSuccess);
    EXPECT_EQ(wcs[i].opcode, WcOpcode::kRecvRdmaWithImm);
    if (wcs[i].qp_num == r1->qp_num()) {
      EXPECT_EQ(wcs[i].imm, 11u);
      saw1 = true;
    } else if (wcs[i].qp_num == r2->qp_num()) {
      EXPECT_EQ(wcs[i].imm, 22u);
      saw2 = true;
    }
  }
  EXPECT_TRUE(saw1 && saw2);
  EXPECT_EQ(srq.posted(), 0u);  // both WRs drawn from the shared pool
}

TEST_P(SrqQpInteraction, SiblingResetPreservesSrqWrs) {
  Fx fx;
  Srq& srq = fx.rpd->create_srq();
  auto [s1, r1] = fx.connected_pair(QpCaps{}, &srq);
  auto [s2, r2] = fx.connected_pair(QpCaps{}, &srq);
  (void)s2;
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(ok(srq.post_recv(RecvWr{})));

  // Resetting one consumer drops nothing from the shared queue: the WRs
  // belong to the SRQ, not the QP (a private-ring reset would drop them).
  ASSERT_TRUE(ok(r2->to_reset()));
  EXPECT_EQ(srq.posted(), 3u);

  // The surviving sibling still drains the shared queue.
  ASSERT_TRUE(ok(s1->post_send(fx.write_wr(128, 7))));
  fx.drive();
  Wc wcs[4];
  const int n = fx.rcq->poll(std::span<Wc>(wcs));
  ASSERT_EQ(n, 1);
  EXPECT_EQ(wcs[0].qp_num, r1->qp_num());
  EXPECT_EQ(srq.posted(), 2u);
}

TEST_P(SrqQpInteraction, EmptySrqIsRemoteNotReady) {
  Fx fx;
  Srq& srq = fx.rpd->create_srq();
  auto [s, r] = fx.connected_pair(QpCaps{}, &srq);
  (void)r;
  ASSERT_TRUE(ok(s->post_send(fx.write_wr(128, 1))));
  fx.drive();
  Wc wcs[4];
  const int n = fx.scq->poll(std::span<Wc>(wcs));
  ASSERT_EQ(n, 1);
  EXPECT_EQ(wcs[0].status, WcStatus::kRemoteNotReady);
}

TEST_P(SrqFootprint, SharedProvisioningBeatsPerQpRings) {
  Fx fx;
  // Dedicated shape: each of 8 QPs provisions its own receive ring.
  QpCaps dedicated;
  dedicated.max_recv_wr = 1024;
  for (int i = 0; i < 8; ++i) {
    (void)fx.spd->create_qp(*fx.scq, *fx.scq, dedicated);
  }
  const ResourceFootprint per_qp = fx.sctx->footprint();

  // Shared shape: 8 QPs draw from one 1024-WR SRQ.
  SrqAttrs attrs;
  attrs.max_wr = 1024;
  Srq& srq = fx.rpd->create_srq(attrs);
  for (int i = 0; i < 8; ++i) {
    (void)fx.rpd->create_qp(*fx.rcq, *fx.rcq, QpCaps{}, &srq);
  }
  const ResourceFootprint shared = fx.rctx->footprint();

  EXPECT_EQ(per_qp.qps, 8);
  EXPECT_EQ(per_qp.srqs, 0);
  EXPECT_EQ(shared.srqs, 1);
  // 8 x 1024 private WRs vs 1024 shared: the receive-side provisioning
  // shrinks by the QP count.
  EXPECT_LT(shared.provisioned_bytes, per_qp.provisioned_bytes);
}

PARTIB_INSTANTIATE_BACKENDS(SrqBasics);
PARTIB_INSTANTIATE_BACKENDS(SrqLimit);
PARTIB_INSTANTIATE_BACKENDS(SrqResize);
PARTIB_INSTANTIATE_BACKENDS(SrqQpInteraction);
PARTIB_INSTANTIATE_BACKENDS(SrqFootprint);

}  // namespace
}  // namespace partib::verbs
