// The checker's MR shadow is thread-local and process-lived, but each
// verbs::Device restarts rkey numbering.  A process that builds two
// simulated worlds back to back therefore re-registers the same rkeys;
// the shadow resolves the collision last-wins (keys are device-global, so
// a colliding rkey can only be a stale entry from a dead world), keeping
// find_remote() exact across sequential worlds without requiring a
// check::reset() in between.  These tests pin that: valid traffic in a
// second world emits no wr.rkey diagnostics, with or without reset().
// The example binaries' zero-diagnostic pins in examples/CMakeLists.txt
// guard the same property end to end.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "check/check.hpp"
#include "common/units.hpp"
#include "fabric/fabric.hpp"
#include "sim/engine.hpp"
#include "verbs/verbs.hpp"

namespace partib::check {
namespace {

// The smallest simulation that exercises an RDMA write: two nodes, one
// connected QP pair, one valid 1KiB write into a registered region.
struct Sim {
  sim::Engine engine;
  fabric::Fabric fab{engine, fabric::NicParams::connectx5_edr(),
                     /*copy_data=*/true};
  verbs::Device dev{fab};
  std::vector<std::byte> sbuf = std::vector<std::byte>(4 * KiB);
  std::vector<std::byte> rbuf = std::vector<std::byte>(4 * KiB);

  void run_one_valid_write() {
    verbs::Context& sctx = dev.open(fab.add_node());
    verbs::Context& rctx = dev.open(fab.add_node());
    verbs::Pd& spd = sctx.alloc_pd();
    verbs::Pd& rpd = rctx.alloc_pd();
    verbs::Cq& cq = sctx.create_cq(16);
    verbs::Mr& smr = spd.register_mr(sbuf, verbs::kLocalRead);
    verbs::Mr& rmr =
        rpd.register_mr(rbuf, verbs::kLocalWrite | verbs::kRemoteWrite);
    verbs::Qp& s = spd.create_qp(cq, cq, {});
    verbs::Qp& r = rpd.create_qp(rctx.create_cq(16), rctx.create_cq(16), {});
    ASSERT_TRUE(ok(s.to_init()));
    ASSERT_TRUE(ok(r.to_init()));
    ASSERT_TRUE(ok(s.to_rtr(r.qp_num())));
    ASSERT_TRUE(ok(r.to_rtr(s.qp_num())));
    ASSERT_TRUE(ok(s.to_rts()));
    ASSERT_TRUE(ok(r.to_rts()));

    verbs::SendWr wr;
    wr.wr_id = 1;
    wr.opcode = verbs::Opcode::kRdmaWrite;
    wr.sg_list.push_back(verbs::Sge{
        reinterpret_cast<std::uint64_t>(sbuf.data()), 1024, smr.lkey()});
    wr.remote_addr = rmr.addr();
    wr.rkey = rmr.rkey();
    ASSERT_TRUE(ok(s.post_send(wr)));
    engine.run();
  }
};

struct ExampleDiag : ::testing::Test {
  void SetUp() override {
    if (!hooks_compiled_in()) GTEST_SKIP();
    reset();
  }
  void TearDown() override { reset(); }
};

TEST_F(ExampleDiag, SequentialDevicesReplaceStaleShadowEntries) {
  ScopedPolicy policy(Policy::kCount);
  auto first = std::make_unique<Sim>();
  first->run_one_valid_write();
  EXPECT_EQ(count_rule("wr.rkey"), 0u);  // a lone world is clean

  // Second world in the same process, no reset in between.  Its rkeys
  // restart from the same counter; the shadow replaces the first world's
  // stale entries last-wins, so find_remote() resolves the reused rkeys
  // to the live regions and valid traffic stays clean.  `first` is kept
  // alive so the two worlds' buffers are guaranteed distinct addresses —
  // the case that produced false positives before last-wins.
  auto second = std::make_unique<Sim>();
  second->run_one_valid_write();
  EXPECT_EQ(count_rule("wr.rkey"), 0u);
}

TEST_F(ExampleDiag, ResetBetweenWorldsClearsTheShadow) {
  ScopedPolicy policy(Policy::kCount);
  auto first = std::make_unique<Sim>();
  first->run_one_valid_write();
  ASSERT_EQ(count_rule("wr.rkey"), 0u);

  // Same sequence, but the independent simulations are separated by
  // check::reset() — the documented protocol (see check/check.hpp).
  reset();
  ScopedPolicy again(Policy::kCount);
  auto second = std::make_unique<Sim>();
  second->run_one_valid_write();
  EXPECT_EQ(count_rule("wr.rkey"), 0u);
}

}  // namespace
}  // namespace partib::check
