// Root cause of the example-binary wr.rkey diagnostics (the counts pinned
// by examples/CMakeLists.txt): the checker's MR shadow is thread-local and
// process-lived, but each verbs::Device restarts rkey numbering.  A
// process that builds two simulated worlds back to back therefore aliases
// the second world's registrations onto the first's stale shadow entries,
// and find_remote() resolves the shared rkey to the dead (first) region —
// a false "RDMA target outside rkey region" diagnostic on perfectly valid
// traffic.  check::reset() between the worlds clears it.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "check/check.hpp"
#include "common/units.hpp"
#include "fabric/fabric.hpp"
#include "sim/engine.hpp"
#include "verbs/verbs.hpp"

namespace partib::check {
namespace {

// The smallest simulation that exercises an RDMA write: two nodes, one
// connected QP pair, one valid 1KiB write into a registered region.
struct Sim {
  sim::Engine engine;
  fabric::Fabric fab{engine, fabric::NicParams::connectx5_edr(),
                     /*copy_data=*/true};
  verbs::Device dev{fab};
  std::vector<std::byte> sbuf = std::vector<std::byte>(4 * KiB);
  std::vector<std::byte> rbuf = std::vector<std::byte>(4 * KiB);

  void run_one_valid_write() {
    verbs::Context& sctx = dev.open(fab.add_node());
    verbs::Context& rctx = dev.open(fab.add_node());
    verbs::Pd& spd = sctx.alloc_pd();
    verbs::Pd& rpd = rctx.alloc_pd();
    verbs::Cq& cq = sctx.create_cq(16);
    verbs::Mr& smr = spd.register_mr(sbuf, verbs::kLocalRead);
    verbs::Mr& rmr =
        rpd.register_mr(rbuf, verbs::kLocalWrite | verbs::kRemoteWrite);
    verbs::Qp& s = spd.create_qp(cq, cq, {});
    verbs::Qp& r = rpd.create_qp(rctx.create_cq(16), rctx.create_cq(16), {});
    ASSERT_TRUE(ok(s.to_init()));
    ASSERT_TRUE(ok(r.to_init()));
    ASSERT_TRUE(ok(s.to_rtr(r.qp_num())));
    ASSERT_TRUE(ok(r.to_rtr(s.qp_num())));
    ASSERT_TRUE(ok(s.to_rts()));
    ASSERT_TRUE(ok(r.to_rts()));

    verbs::SendWr wr;
    wr.wr_id = 1;
    wr.opcode = verbs::Opcode::kRdmaWrite;
    wr.sg_list.push_back(verbs::Sge{
        reinterpret_cast<std::uint64_t>(sbuf.data()), 1024, smr.lkey()});
    wr.remote_addr = rmr.addr();
    wr.rkey = rmr.rkey();
    ASSERT_TRUE(ok(s.post_send(wr)));
    engine.run();
  }
};

struct ExampleDiag : ::testing::Test {
  void SetUp() override {
    if (!hooks_compiled_in()) GTEST_SKIP();
    reset();
  }
  void TearDown() override { reset(); }
};

TEST_F(ExampleDiag, StaleMrShadowAliasesSequentialDevices) {
  ScopedPolicy policy(Policy::kCount);
  auto first = std::make_unique<Sim>();
  first->run_one_valid_write();
  EXPECT_EQ(count_rule("wr.rkey"), 0u);  // a lone world is clean

  // Second world in the same process, no reset in between.  Its rkeys
  // restart from the same counter, so find_remote() resolves them to the
  // first world's (stale, differently-addressed) regions.  `first` is
  // kept alive so the heap cannot hand the new buffers the old addresses.
  auto second = std::make_unique<Sim>();
  second->run_one_valid_write();
  EXPECT_GE(count_rule("wr.rkey"), 1u);  // false positive, by construction
}

TEST_F(ExampleDiag, ResetBetweenWorldsClearsTheShadow) {
  ScopedPolicy policy(Policy::kCount);
  auto first = std::make_unique<Sim>();
  first->run_one_valid_write();
  ASSERT_EQ(count_rule("wr.rkey"), 0u);

  // Same sequence, but the independent simulations are separated by
  // check::reset() — the documented protocol (see check/check.hpp).
  reset();
  ScopedPolicy again(Policy::kCount);
  auto second = std::make_unique<Sim>();
  second->run_one_valid_write();
  EXPECT_EQ(count_rule("wr.rkey"), 0u);
}

}  // namespace
}  // namespace partib::check
