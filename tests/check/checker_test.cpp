// The protocol checker: every rule must fire on its misuse pattern, clean
// runs must stay silent, and the PARTIB_CHECK=OFF build must compile the
// hook call sites away (verified behaviourally via hooks_compiled_in()).
//
// Rules are exercised two ways: end-to-end through the real verbs/part API
// where the library survives the misuse (it rejects with a Status and the
// checker records the attempt), and through direct hook calls where the
// misuse would otherwise abort the process (library-internal invariants).
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "check/check.hpp"
#include "check/part_check.hpp"
#include "check/rules.hpp"
#include "check/verbs_check.hpp"
#include "common/units.hpp"
#include "fabric/fabric.hpp"
#include "part/imm.hpp"
#include "support/test_world.hpp"
#include "verbs/verbs.hpp"

namespace partib::test {
namespace {

namespace check = partib::check;

// -- rule registry -----------------------------------------------------------

TEST(RuleRegistry, BuiltinsPresent) {
  for (const char* id :
       {"assert", "qp.transition", "qp.post_state", "wr.lkey", "wr.rkey",
        "cq.overflow", "imm.roundtrip", "part.start_inflight",
        "part.pready_double", "des.nondeterminism"}) {
    const check::RuleInfo* info = check::find_rule(id);
    ASSERT_NE(info, nullptr) << id;
    EXPECT_STREQ(info->id, id);
    EXPECT_NE(info->summary, nullptr);
  }
  EXPECT_EQ(check::find_rule("no.such.rule"), nullptr);
  EXPECT_GE(check::all_rules().size(), 18u);
}

TEST(RuleRegistry, RegisterExtensionRule) {
  const std::size_t before = check::all_rules().size();
  // Registry is append-only per process; a unique id never collides.
  EXPECT_TRUE(check::register_rule(
      {"test.extension_rule", "installed by checker_test"}));
  EXPECT_FALSE(check::register_rule({"test.extension_rule", "duplicate"}));
  EXPECT_FALSE(check::register_rule({"qp.transition", "shadows a builtin"}));
  EXPECT_EQ(check::all_rules().size(), before + 1);
  ASSERT_NE(check::find_rule("test.extension_rule"), nullptr);

  check::ScopedPolicy quiet(check::Policy::kCount);
  check::clear_violations();
  check::report("test.extension_rule", "widget", 3, "custom subsystems work");
  EXPECT_EQ(check::count_rule("test.extension_rule"), 1u);
}

TEST(Violations, RecordCarriesStructuredFields) {
  check::reset();
  check::ScopedPolicy quiet(check::Policy::kCount);
  check::report("qp.post_state", "qp#42", 1, "post_send while QP is in INIT");
  ASSERT_EQ(check::violation_count(), 1u);
  const check::Violation& v = check::violations().front();
  EXPECT_EQ(v.rule, "qp.post_state");
  EXPECT_EQ(v.object, "qp#42");
  EXPECT_EQ(v.rank, 1);
  EXPECT_NE(v.detail.find("INIT"), std::string::npos);
  check::clear_violations();
  EXPECT_EQ(check::violation_count(), 0u);
}

// -- compile-away configuration ----------------------------------------------

// The acceptance contract for PARTIB_CHECK=OFF: the same misuse that trips
// the checker in the default build leaves no trace, because the hook call
// sites in src/verbs vanish (PARTIB_CHECK_HOOK expands to nothing).
TEST(CheckConfig, HooksMatchBuildConfiguration) {
  check::reset();
  check::ScopedPolicy quiet(check::Policy::kCount);

  sim::Engine engine;
  fabric::Fabric fab(engine, fabric::NicParams::connectx5_edr(), true);
  verbs::Device dev(fab);
  verbs::Context& ctx = dev.open(fab.add_node());
  verbs::Pd& pd = ctx.alloc_pd();
  verbs::Cq& cq = ctx.create_cq(64);
  verbs::Qp& qp = pd.create_qp(cq, cq);
  EXPECT_EQ(qp.to_rts(), Status::kInvalidState);  // RESET -> RTS, illegal

#if PARTIB_CHECK_ENABLED
  EXPECT_TRUE(check::hooks_compiled_in());
  EXPECT_EQ(check::count_rule("qp.transition"), 1u);
#else
  EXPECT_FALSE(check::hooks_compiled_in());
  EXPECT_EQ(check::violation_count(), 0u);
#endif
}

// -- verbs rules through the real library ------------------------------------

struct VerbsFx {
  sim::Engine engine;
  fabric::Fabric fab;
  verbs::Device dev;
  verbs::Context* sctx;
  verbs::Context* rctx;
  verbs::Pd* spd;
  verbs::Pd* rpd;
  verbs::Cq* scq;
  verbs::Cq* rcq;
  std::vector<std::byte> sbuf;
  std::vector<std::byte> rbuf;
  verbs::Mr* smr;
  verbs::Mr* rmr;

  explicit VerbsFx(int cq_depth = 64)
      : fab(engine, fabric::NicParams::connectx5_edr(), /*copy=*/true),
        dev(fab),
        sbuf(4 * KiB),
        rbuf(4 * KiB) {
    check::reset();  // before object creation so shadows are registered
    sctx = &dev.open(fab.add_node());
    rctx = &dev.open(fab.add_node());
    spd = &sctx->alloc_pd();
    rpd = &rctx->alloc_pd();
    scq = &sctx->create_cq(cq_depth);
    rcq = &rctx->create_cq(cq_depth);
    smr = &spd->register_mr(sbuf, verbs::kLocalRead);
    rmr = &rpd->register_mr(rbuf, verbs::kLocalWrite | verbs::kRemoteWrite);
  }

  std::pair<verbs::Qp*, verbs::Qp*> connected_pair(verbs::QpCaps caps = {}) {
    verbs::Qp& s = spd->create_qp(*scq, *scq, caps);
    verbs::Qp& r = rpd->create_qp(*rcq, *rcq, caps);
    EXPECT_TRUE(ok(s.to_init()));
    EXPECT_TRUE(ok(r.to_init()));
    EXPECT_TRUE(ok(s.to_rtr(r.qp_num())));
    EXPECT_TRUE(ok(r.to_rtr(s.qp_num())));
    EXPECT_TRUE(ok(s.to_rts()));
    EXPECT_TRUE(ok(r.to_rts()));
    return {&s, &r};
  }

  verbs::SendWr write_wr(std::size_t bytes) {
    verbs::SendWr wr;
    wr.wr_id = 7;
    wr.opcode = verbs::Opcode::kRdmaWrite;
    wr.sg_list.push_back(verbs::Sge{wire_addr(sbuf.data()),
                                    static_cast<std::uint32_t>(bytes),
                                    smr->lkey()});
    wr.remote_addr = rmr->addr();
    wr.rkey = rmr->rkey();
    return wr;
  }
};

// The injected-bug demo from the issue: post to a QP still in INIT.  The
// library rejects with kInvalidState and the checker names the rule.
TEST(VerbsRules, PostToInitQpViolatesPostState) {
  if (!check::hooks_compiled_in()) GTEST_SKIP() << "PARTIB_CHECK=OFF build";
  VerbsFx fx;
  check::ScopedPolicy quiet(check::Policy::kCount);
  verbs::Qp& qp = fx.spd->create_qp(*fx.scq, *fx.scq);
  ASSERT_TRUE(ok(qp.to_init()));
  EXPECT_EQ(qp.post_send(fx.write_wr(64)), Status::kInvalidState);
  ASSERT_EQ(check::count_rule("qp.post_state"), 1u);
  const check::Violation& v = check::violations().back();
  EXPECT_EQ(v.rule, "qp.post_state");
  EXPECT_NE(v.detail.find("INIT"), std::string::npos);
}

TEST(VerbsRules, IllegalTransitionsViolateQpTransition) {
  if (!check::hooks_compiled_in()) GTEST_SKIP() << "PARTIB_CHECK=OFF build";
  VerbsFx fx;
  check::ScopedPolicy quiet(check::Policy::kCount);
  verbs::Qp& qp = fx.spd->create_qp(*fx.scq, *fx.scq);
  EXPECT_EQ(qp.to_rts(), Status::kInvalidState);  // RESET -> RTS
  EXPECT_EQ(qp.to_rtr(1), Status::kInvalidState);  // RESET -> RTR
  ASSERT_TRUE(ok(qp.to_init()));                   // legal, silent
  EXPECT_EQ(qp.to_init(), Status::kInvalidState);  // INIT -> INIT
  EXPECT_EQ(check::count_rule("qp.transition"), 3u);
}

TEST(VerbsRules, OutOfBoundsSgeViolatesWrLkey) {
  if (!check::hooks_compiled_in()) GTEST_SKIP() << "PARTIB_CHECK=OFF build";
  VerbsFx fx;
  check::ScopedPolicy quiet(check::Policy::kCount);
  auto [s, r] = fx.connected_pair();
  // SGE runs past the end of the registered region: no MR covers it.
  verbs::SendWr wr = fx.write_wr(fx.sbuf.size() + 1);
  EXPECT_EQ(s->post_send(wr), Status::kInvalidArgument);
  EXPECT_EQ(check::count_rule("wr.lkey"), 1u);
}

TEST(VerbsRules, UnknownRkeyViolatesWrRkey) {
  if (!check::hooks_compiled_in()) GTEST_SKIP() << "PARTIB_CHECK=OFF build";
  VerbsFx fx;
  check::ScopedPolicy quiet(check::Policy::kCount);
  auto [s, r] = fx.connected_pair();
  verbs::SendWr wr = fx.write_wr(64);
  wr.rkey = 0xDEAD;  // never registered
  ASSERT_TRUE(ok(s->post_send(wr)));  // library only validates on delivery
  EXPECT_EQ(check::count_rule("wr.rkey"), 1u);
}

TEST(VerbsRules, RdmaTargetPastRegionViolatesWrRkey) {
  if (!check::hooks_compiled_in()) GTEST_SKIP() << "PARTIB_CHECK=OFF build";
  VerbsFx fx;
  check::ScopedPolicy quiet(check::Policy::kCount);
  auto [s, r] = fx.connected_pair();
  verbs::SendWr wr = fx.write_wr(64);
  wr.remote_addr = fx.rmr->addr() + fx.rbuf.size() - 8;  // 64B won't fit
  ASSERT_TRUE(ok(s->post_send(wr)));
  EXPECT_EQ(check::count_rule("wr.rkey"), 1u);
}

TEST(VerbsRules, EmptyImmediateRangeViolatesImmRoundtrip) {
  if (!check::hooks_compiled_in()) GTEST_SKIP() << "PARTIB_CHECK=OFF build";
  VerbsFx fx;
  check::ScopedPolicy quiet(check::Policy::kCount);
  auto [s, r] = fx.connected_pair();
  verbs::RecvWr rwr;
  ASSERT_TRUE(ok(r->post_recv(rwr)));
  verbs::SendWr wr = fx.write_wr(64);
  wr.opcode = verbs::Opcode::kRdmaWriteWithImm;
  wr.imm = part::encode_imm(3, 0);  // count == 0: marks no partition
  ASSERT_TRUE(ok(s->post_send(wr)));
  EXPECT_EQ(check::count_rule("imm.roundtrip"), 1u);
}

// -- verbs rules via direct hooks (library would abort first) ----------------

TEST(VerbsShadow, CqOverflowAccounting) {
  check::reset();
  check::ScopedPolicy quiet(check::Policy::kCount);
  int tag = 0;  // any stable address works as the shadow key
  check::on_cq_created(&tag, /*depth=*/2);
  check::on_cq_push(&tag);
  check::on_cq_push(&tag);
  EXPECT_EQ(check::count_rule("cq.overflow"), 0u);
  check::on_cq_push(&tag);  // 3 pending > depth 2
  EXPECT_EQ(check::count_rule("cq.overflow"), 1u);
  check::on_cq_poll(&tag, 3);
  check::on_cq_push(&tag);  // drained: accounting recovered
  EXPECT_EQ(check::count_rule("cq.overflow"), 1u);
}

TEST(VerbsShadow, SendCapacityOverrunCaught) {
  check::reset();
  check::ScopedPolicy quiet(check::Policy::kCount);
  int tag = 0;
  verbs::QpCaps caps;
  caps.max_send_wr = 1;
  check::on_qp_created(&tag, 9, caps);
  check::on_send_accepted(&tag);
  EXPECT_EQ(check::count_rule("qp.send_capacity"), 0u);
  check::on_send_accepted(&tag);  // 2 outstanding > max_send_wr 1
  EXPECT_EQ(check::count_rule("qp.send_capacity"), 1u);
}

TEST(VerbsShadow, RecvCapacityOverrunCaught) {
  check::reset();
  check::ScopedPolicy quiet(check::Policy::kCount);
  int tag = 0;
  verbs::QpCaps caps;
  caps.max_recv_wr = 2;
  check::on_qp_created(&tag, 9, caps);
  check::on_recv_accepted(&tag);
  check::on_recv_accepted(&tag);
  EXPECT_EQ(check::count_rule("qp.recv_capacity"), 0u);
  check::on_recv_accepted(&tag);
  EXPECT_EQ(check::count_rule("qp.recv_capacity"), 1u);
}

// -- partitioned rules through the real library ------------------------------

TEST(PartRules, DoublePreadyViolatesPreadyDouble) {
  if (!check::hooks_compiled_in()) GTEST_SKIP() << "PARTIB_CHECK=OFF build";
  check::reset();  // before the fixture so request shadows are registered
  ChannelFixture fx(16 * KiB, 4, ploggp_options());
  check::ScopedPolicy quiet(check::Policy::kCount);
  ASSERT_TRUE(ok(fx.send->start()));
  ASSERT_TRUE(ok(fx.recv->start()));
  ASSERT_TRUE(ok(fx.send->pready(1)));
  EXPECT_EQ(fx.send->pready(1), Status::kInvalidArgument);
  ASSERT_EQ(check::count_rule("part.pready_double"), 1u);
  EXPECT_EQ(check::violations().back().rule, "part.pready_double");
}

TEST(PartRules, PreadyBeforeStartViolates) {
  if (!check::hooks_compiled_in()) GTEST_SKIP() << "PARTIB_CHECK=OFF build";
  check::reset();
  ChannelFixture fx(16 * KiB, 4, ploggp_options());
  check::ScopedPolicy quiet(check::Policy::kCount);
  fx.engine.run();  // handshake only; no Start issued
  EXPECT_EQ(fx.send->pready(0), Status::kInvalidState);
  EXPECT_EQ(check::count_rule("part.pready_before_start"), 1u);
}

TEST(PartRules, PreadyOutOfRangeViolates) {
  if (!check::hooks_compiled_in()) GTEST_SKIP() << "PARTIB_CHECK=OFF build";
  check::reset();
  ChannelFixture fx(16 * KiB, 4, ploggp_options());
  check::ScopedPolicy quiet(check::Policy::kCount);
  ASSERT_TRUE(ok(fx.send->start()));
  EXPECT_EQ(fx.send->pready(4), Status::kInvalidArgument);
  EXPECT_EQ(check::count_rule("part.pready_range"), 1u);
}

TEST(PartRules, StartWhileRoundInFlightViolates) {
  if (!check::hooks_compiled_in()) GTEST_SKIP() << "PARTIB_CHECK=OFF build";
  check::reset();
  ChannelFixture fx(16 * KiB, 4, ploggp_options());
  check::ScopedPolicy quiet(check::Policy::kCount);
  ASSERT_TRUE(ok(fx.send->start()));
  ASSERT_TRUE(ok(fx.recv->start()));
  ASSERT_TRUE(ok(fx.send->pready(0)));
  EXPECT_EQ(fx.send->start(), Status::kInvalidState);
  EXPECT_EQ(fx.recv->start(), Status::kInvalidState);
  EXPECT_EQ(check::count_rule("part.start_inflight"), 2u);
}

// A correct round must leave the checker silent — the no-false-positives
// contract that lets PARTIB_CHECK default to ON.
TEST(PartRules, CleanRoundsProduceNoViolations) {
  if (!check::hooks_compiled_in()) GTEST_SKIP() << "PARTIB_CHECK=OFF build";
  check::reset();
  ChannelFixture fx(64 * KiB, 16, ploggp_options());
  for (int round = 0; round < 3; ++round) fx.run_round(round);
  EXPECT_TRUE(fx.send->test());
  EXPECT_TRUE(fx.recv->test());
  EXPECT_EQ(check::violation_count(), 0u)
      << check::violations().front().rule << ": "
      << check::violations().front().detail;
}

// -- partitioned rules via direct hooks --------------------------------------

TEST(PartShadow, IncompleteCompletionCaught) {
  check::reset();
  check::ScopedPolicy quiet(check::Policy::kCount);
  int tag = 0;
  check::on_psend_init(&tag, 0, 4);
  check::on_psend_start(&tag);
  check::on_pready(&tag, 0);
  check::on_psend_round_complete(&tag);  // only 1/4 ready
  EXPECT_EQ(check::count_rule("part.incomplete_completion"), 1u);
}

TEST(PartShadow, ImmEncodeMismatchCaught) {
  check::reset();
  check::ScopedPolicy quiet(check::Policy::kCount);
  int tag = 0;
  check::on_psend_init(&tag, 0, 4);
  // Wrong immediate for the intended range: round-trip mismatch.
  check::on_imm_encoded(&tag, 1, 2, part::encode_imm(1, 3));
  EXPECT_EQ(check::count_rule("imm.roundtrip"), 1u);
  // Range exceeding the channel's partition count.
  check::on_imm_encoded(&tag, 2, 3, part::encode_imm(2, 3));
  EXPECT_EQ(check::count_rule("imm.roundtrip"), 2u);
  // Correct encoding stays silent.
  check::on_imm_encoded(&tag, 1, 2, part::encode_imm(1, 2));
  EXPECT_EQ(check::count_rule("imm.roundtrip"), 2u);
}

TEST(PartShadow, DuplicateArrivalBytesCaught) {
  check::reset();
  check::ScopedPolicy quiet(check::Policy::kCount);
  int tag = 0;
  check::on_precv_init(&tag, 1, /*partitions=*/2, /*partition_bytes=*/256);
  check::on_precv_start(&tag);
  check::on_precv_bytes(&tag, 0, 256);
  EXPECT_EQ(check::count_rule("part.duplicate_arrival"), 0u);
  check::on_precv_bytes(&tag, 0, 256);  // same partition lands twice
  EXPECT_EQ(check::count_rule("part.duplicate_arrival"), 1u);
  check::on_precv_bytes(&tag, 5, 1);  // partition index out of range
  EXPECT_EQ(check::count_rule("part.duplicate_arrival"), 2u);
}

// -- policies and the diagnostic path ----------------------------------------

using CheckerDeathTest = ::testing::Test;

TEST(CheckerDeathTest, AbortPolicyDiesWithRuleId) {
  EXPECT_DEATH(
      {
        check::set_policy(check::Policy::kAbort);
        check::report("qp.post_state", "qp#1", 0, "injected for death test");
      },
      "rule=qp\\.post_state");
}

// PARTIB_ASSERT failures flow through the same structured diagnostic
// channel as checker rules (rule id "assert").
TEST(CheckerDeathTest, AssertFailureCarriesRuleId) {
  EXPECT_DEATH(PARTIB_ASSERT_MSG(false, "boom for diag test"),
               "rule=assert.*boom for diag test");
}

// End to end: overflowing a real CQ emits the cq.overflow diagnostic before
// the library's fatal assert kills the process.
TEST(CheckerDeathTest, RealCqOverflowNamesRule) {
  if (!check::hooks_compiled_in()) GTEST_SKIP() << "PARTIB_CHECK=OFF build";
  VerbsFx fx(/*cq_depth=*/1);
  auto [s, r] = fx.connected_pair();
  EXPECT_DEATH(
      {
        // Two RDMA writes produce two send CQEs on a depth-1 CQ.
        ASSERT_TRUE(ok(s->post_send(fx.write_wr(64))));
        ASSERT_TRUE(ok(s->post_send(fx.write_wr(64))));
        fx.engine.run();
      },
      "rule=cq\\.overflow");
}

}  // namespace
}  // namespace partib::test
